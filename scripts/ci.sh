#!/bin/sh
# ci.sh — the full verification gate, in dependency order:
#
#   1. gofmt            formatting drift
#   2. go vet           stdlib static checks
#   3. simlint          project determinism rules (SL001..SL015),
#                       timed: the interprocedural facts engine must
#                       keep the full-module sweep under 60s
#   4. go build         both build-tag variants compile
#   5. go test -race    full suite under the race detector
#   6. go test -tags simcheck ./internal/...
#                       suite again with runtime invariant audits live
#                       (buddy allocator, TLB arrays, VM accounting,
#                       scheduler task conservation, promise quiescence)
#   7. zero-alloc + bench smoke
#                       the staged access engine's fast path, the bulk
#                       AccessRun path, and the gather AccessGather
#                       path must stay allocation-free, and every
#                       machine benchmark must still run (-benchtime=1x)
#   8. expdriver -j diff
#                       a bench-scale campaign subset run at -j 1 and
#                       -j 4 must be byte-identical on every surface
#   9. bulk-engine equivalence
#                       the same campaign subset with the bulk path
#                       force-disabled (GRAPHMEM_NO_BULK=1) must be
#                       byte-identical to the bulk-enabled run
#  10. gather-engine equivalence
#                       the same campaign subset with the gather path
#                       force-disabled (GRAPHMEM_NO_GATHER=1) must be
#                       byte-identical to the gather-enabled run
#  11. snapshot-layer equivalence
#                       the rollout-bearing campaign subset with the
#                       checkpoint/fork layer disabled
#                       (GRAPHMEM_NO_SNAPSHOT=1) must be byte-identical
#                       to the forking run at -j 1 and -j 4, and forking
#                       must cut the subset's wall-clock by >= 2x
#  12. sharded-engine equivalence
#                       the ext-shard campaign with fork bring-up
#                       disabled (GRAPHMEM_NO_SHARD=1, every extra shard
#                       replays its load phase) must be byte-identical
#                       to the forking run across -shards and -j worker
#                       counts, and fork bring-up must cut single-run
#                       wall-clock by >= 2x (TestShardBringupSpeedup,
#                       in-process paired timing)
#  13. frame-metadata budget
#                       unsafe.Sizeof(frameInfo{}) <= 8 (compile-time
#                       array assert plus TestFrameInfoSize), and the
#                       packed/unpacked differential property test
#  14. paper-geometry gate
#                       the ext-fullscale campaign ({Kron25,Twit} x
#                       {BFS,PR} x {THP,4KB}) stages >= 100 GB nodes,
#                       finishes inside its wall/host-memory budgets,
#                       and the compact metadata shows >= 2x footprint
#                       reduction (TestFullscaleGeometryGate); the gate
#                       points GRAPHMEM_CKPT_DIR at a persistent store
#                       so repetitions (bench.sh, reruns sharing the
#                       same GRAPHMEM_CKPT_DIR) reload staged nodes
#                       instead of re-faulting them
#  15. persistent checkpoint store
#                       one expdriver process populates a -ckpt-dir
#                       store, a second process reloads every load
#                       phase from it — both at -j 1 and -j 4 — and
#                       every byte surface must match the store-less
#                       run of step 8; then the in-process perf gate
#                       (TestCkptReloadSpeedup) requires loading a
#                       container to beat re-staging the node by >= 3x
#  16. docsplice -check
#                       EXPERIMENTS.md's measured blocks match results/
#
# Run from the repository root: ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== simlint"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
# Build untimed, so a cold build cache cannot eat into the lint budget:
# the 60s limit guards the facts engine's fixpoint, not the compiler.
go build -o "$tmp/simlint" ./cmd/simlint
lint_start=$(date +%s)
"$tmp/simlint" ./...
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "simlint took ${lint_elapsed}s"
if [ "$lint_elapsed" -gt 60 ]; then
    echo "simlint exceeded its 60s budget (${lint_elapsed}s): the facts engine is too slow" >&2
    exit 1
fi

echo "== build (default and simcheck)"
go build ./...
go build -tags simcheck ./...

echo "== test -race"
go test -race ./...

echo "== test -tags simcheck (runtime audits live)"
go test -tags simcheck ./internal/...

echo "== zero-alloc fast path + bench smoke"
go test -run 'TestAccessFastPathZeroAllocs|TestAccessRunZeroAllocs|TestAccessGatherZeroAllocs' -count=1 ./internal/machine
go test -run '^$' -bench '^Benchmark' -benchtime 1x ./internal/machine

echo "== expdriver determinism: bench-scale -j 1 vs -j 4"
go build -o "$tmp/expdriver" ./cmd/expdriver
subset="fig5,pagecache"
mkdir -p "$tmp/csv1" "$tmp/csv4"
"$tmp/expdriver" -scale bench -exp "$subset" -j 1 \
    -out "$tmp/out1.md" -csv "$tmp/csv1" > "$tmp/stdout1.txt"
"$tmp/expdriver" -scale bench -exp "$subset" -j 4 \
    -out "$tmp/out4.md" -csv "$tmp/csv4" > "$tmp/stdout4.txt"
diff "$tmp/stdout1.txt" "$tmp/stdout4.txt"
diff "$tmp/out1.md" "$tmp/out4.md"
diff -r "$tmp/csv1" "$tmp/csv4"

echo "== bulk-engine equivalence: GRAPHMEM_NO_BULK=1 vs bulk-enabled"
mkdir -p "$tmp/csvnb"
GRAPHMEM_NO_BULK=1 "$tmp/expdriver" -scale bench -exp "$subset" -j 1 \
    -out "$tmp/outnb.md" -csv "$tmp/csvnb" > "$tmp/stdoutnb.txt"
diff "$tmp/stdout1.txt" "$tmp/stdoutnb.txt"
diff "$tmp/out1.md" "$tmp/outnb.md"
diff -r "$tmp/csv1" "$tmp/csvnb"

echo "== gather-engine equivalence: GRAPHMEM_NO_GATHER=1 vs gather-enabled"
mkdir -p "$tmp/csvng"
GRAPHMEM_NO_GATHER=1 "$tmp/expdriver" -scale bench -exp "$subset" -j 1 \
    -out "$tmp/outng.md" -csv "$tmp/csvng" > "$tmp/stdoutng.txt"
diff "$tmp/stdout1.txt" "$tmp/stdoutng.txt"
diff "$tmp/out1.md" "$tmp/outng.md"
diff -r "$tmp/csv1" "$tmp/csvng"

echo "== snapshot-layer equivalence: GRAPHMEM_NO_SNAPSHOT=1 vs forking"
# ext-rollout is the fork-heavy experiment (one load phase, five forked
# candidates per dataset); fig5+pagecache ride along so the diff also
# covers checkpointed full runs and page-cache owner cloning.
snap_subset="fig5,pagecache,ext-rollout"
mkdir -p "$tmp/csvs1" "$tmp/csvs4" "$tmp/csvns"
snap_start=$(date +%s)
"$tmp/expdriver" -scale bench -exp "$snap_subset" -j 1 \
    -out "$tmp/outs1.md" -csv "$tmp/csvs1" > "$tmp/stdouts1.txt"
snap_elapsed=$(( $(date +%s) - snap_start ))
"$tmp/expdriver" -scale bench -exp "$snap_subset" -j 4 \
    -out "$tmp/outs4.md" -csv "$tmp/csvs4" > "$tmp/stdouts4.txt"
diff "$tmp/stdouts1.txt" "$tmp/stdouts4.txt"
diff "$tmp/outs1.md" "$tmp/outs4.md"
diff -r "$tmp/csvs1" "$tmp/csvs4"
nosnap_start=$(date +%s)
GRAPHMEM_NO_SNAPSHOT=1 "$tmp/expdriver" -scale bench -exp "$snap_subset" -j 1 \
    -out "$tmp/outns.md" -csv "$tmp/csvns" > "$tmp/stdoutns.txt"
nosnap_elapsed=$(( $(date +%s) - nosnap_start ))
diff "$tmp/stdouts1.txt" "$tmp/stdoutns.txt"
diff "$tmp/outs1.md" "$tmp/outns.md"
diff -r "$tmp/csvs1" "$tmp/csvns"
echo "snapshot on: ${snap_elapsed}s, off: ${nosnap_elapsed}s"
if [ "$nosnap_elapsed" -lt $(( 2 * snap_elapsed )) ]; then
    echo "snapshot layer speedup below 2x (on=${snap_elapsed}s off=${nosnap_elapsed}s): forks are not amortizing the load phase" >&2
    exit 1
fi

echo "== sharded-engine equivalence: GRAPHMEM_NO_SHARD=1 vs fork bring-up"
# ext-shard is the sharded-engine experiment: every cell runs its kernel
# phase as 16 owner-computes shards on a big-memory staged node, so the
# fork-vs-replay margin the hatch controls is first-order. -shards (the
# worker knob) and -j (the campaign knob) are both varied to prove
# neither changes a byte of output.
mkdir -p "$tmp/csvh1" "$tmp/csvh4" "$tmp/csvnh"
"$tmp/expdriver" -scale bench -exp ext-shard -shards 4 -j 1 \
    -out "$tmp/outh1.md" -csv "$tmp/csvh1" > "$tmp/stdouth1.txt"
"$tmp/expdriver" -scale bench -exp ext-shard -shards 2 -j 4 \
    -out "$tmp/outh4.md" -csv "$tmp/csvh4" > "$tmp/stdouth4.txt"
diff "$tmp/stdouth1.txt" "$tmp/stdouth4.txt"
diff "$tmp/outh1.md" "$tmp/outh4.md"
diff -r "$tmp/csvh1" "$tmp/csvh4"
GRAPHMEM_NO_SHARD=1 "$tmp/expdriver" -scale bench -exp ext-shard -shards 4 -j 1 \
    -out "$tmp/outnh.md" -csv "$tmp/csvnh" > "$tmp/stdoutnh.txt"
diff "$tmp/stdouth1.txt" "$tmp/stdoutnh.txt"
diff "$tmp/outh1.md" "$tmp/outnh.md"
diff -r "$tmp/csvh1" "$tmp/csvnh"
# The speedup gate times a single run in-process (min-of-3 per side):
# a whole-campaign subprocess wall-clock would fold dataset generation
# and sibling cells into both sides and drown the margin in host noise.
GRAPHMEM_SPEEDUP_GATE=1 go test -run '^TestShardBringupSpeedup$' -count=1 -v ./internal/exp

echo "== frame-metadata budget: 8 bytes per frame, packed == unpacked"
go test -run 'TestFrameInfoSize|TestFrameInfoPackRoundTrip' -count=1 ./internal/memsys
go test -run '^TestPackedFrameInfoDifferential$' -count=1 ./internal/machine

echo "== paper-geometry gate: ext-fullscale wall/footprint/host-memory budgets"
# GRAPHMEM_CKPT_DIR may be inherited from the environment to persist the
# staged 100 GB+ node images across CI repetitions (and into bench.sh);
# by default the store lives and dies with this run's scratch dir.
GRAPHMEM_FULLSCALE=1 GRAPHMEM_CKPT_DIR="${GRAPHMEM_CKPT_DIR:-$tmp/fsckpt}" \
    go test -run '^TestFullscaleGeometryGate$' -count=1 -v -timeout 900s ./internal/exp

echo "== persistent checkpoint store: cross-process reload equivalence + speedup gate"
# One process stages and saves, a second process reloads from the store;
# both must render the exact bytes of step 8's store-less run, at -j 1
# and -j 4. The store directory is shared, content-addressed by initKey.
mkdir -p "$tmp/csvc0" "$tmp/csvc1" "$tmp/csvc4"
"$tmp/expdriver" -scale bench -exp "$subset" -j 1 -ckpt-dir "$tmp/store" \
    -out "$tmp/outc0.md" -csv "$tmp/csvc0" > "$tmp/stdoutc0.txt"
"$tmp/expdriver" -scale bench -exp "$subset" -j 1 -ckpt-dir "$tmp/store" \
    -out "$tmp/outc1.md" -csv "$tmp/csvc1" > "$tmp/stdoutc1.txt"
"$tmp/expdriver" -scale bench -exp "$subset" -j 4 -ckpt-dir "$tmp/store" \
    -out "$tmp/outc4.md" -csv "$tmp/csvc4" > "$tmp/stdoutc4.txt"
for v in c0 c1 c4; do
    diff "$tmp/stdout1.txt" "$tmp/stdout$v.txt"
    diff "$tmp/out1.md" "$tmp/out$v.md"
    diff -r "$tmp/csv1" "$tmp/csv$v"
done
if [ -z "$(ls "$tmp/store"/*.ckpt 2>/dev/null)" ]; then
    echo "checkpoint store is empty after a populating campaign" >&2
    exit 1
fi
# The >= 3x reload-vs-restage gate times both sides in-process
# (min-of-3): subprocess wall-clocks would fold compilation, dataset
# generation, and kernel phases into both sides and drown the margin.
GRAPHMEM_CKPT_GATE=1 go test -run '^TestCkptReloadSpeedup$' -count=1 -v ./internal/exp

echo "== docsplice -check (EXPERIMENTS.md in sync with results/)"
go run ./cmd/docsplice -doc EXPERIMENTS.md -results results/expdriver_full.txt -check

echo "CI PASS"
