#!/bin/sh
# ci.sh — the full verification gate, in dependency order:
#
#   1. gofmt            formatting drift
#   2. go vet           stdlib static checks
#   3. simlint          project determinism rules (SL001..SL005)
#   4. go build         both build-tag variants compile
#   5. go test -race    full suite under the race detector
#   6. go test -tags simcheck ./internal/...
#                       suite again with runtime invariant audits live
#                       (buddy allocator, TLB arrays, VM accounting)
#
# Run from the repository root: ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== simlint"
go run ./cmd/simlint ./...

echo "== build (default and simcheck)"
go build ./...
go build -tags simcheck ./...

echo "== test -race"
go test -race ./...

echo "== test -tags simcheck (runtime audits live)"
go test -tags simcheck ./internal/...

echo "CI PASS"
