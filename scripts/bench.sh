#!/bin/sh
# bench.sh — record the simulator's performance trajectory.
#
# Runs the per-access microbenchmark (BenchmarkAccess: the steady-state
# fast path — TLB hit, mapped page, L1D hit), the bulk-engine benchmark
# (BenchmarkAccessRun: edge-scan-shaped sequential runs through
# AccessRun, ns per simulated access), the gather-engine pair
# (BenchmarkAccessGather vs BenchmarkAccessGatherScalar: the same
# irregular neighbor-gather-shaped stream through AccessGather and
# through per-element Access), the end-to-end headline experiment
# benchmark, a timed bench-scale campaign subset, the snapshot-layer
# wall-clock pair (the same rollout-bearing subset with checkpoint
# forking on vs GRAPHMEM_NO_SNAPSHOT=1), and the sharded-engine
# single-run pair (TestShardBringupSpeedup: the kr25 ext-shard cell
# with fork bring-up vs GRAPHMEM_NO_SHARD=1 replay), and the
# paper-geometry footprint gate (TestFullscaleGeometryGate: the
# ext-fullscale 128 GB staged campaign, recording bytes_per_frame and
# the stats.Footprint totals and reduction), and the checkpoint-store
# reload gate (TestCkptReloadSpeedup: save/load GB/s and the
# reload-vs-restage speedup on the bench-scale fullscale cell), then
# merges the figures into BENCH_access.json via cmd/benchjson — updated
# keys change in place, keys this script does not know about survive —
# so subsequent PRs have a recorded baseline to compare against.
#
# Engine perf gates are ratio-based, never absolute: the bulk and
# gather engines must each beat their same-host scalar counterpart by
# >= 2x per simulated access. Absolute ns/op budgets would encode one
# reference machine; a same-binary same-host ratio survives any host
# while still catching an engine that quietly degrades to its scalar
# path. The recorded host context (CPU model, GOMAXPROCS, go version)
# keys each snapshot so cross-PR comparisons know when the host moved.
#
# Usage: ./scripts/bench.sh [output.json]
#   BENCHTIME=5s ./scripts/bench.sh    # longer micro runs
set -eu

cd "$(dirname "$0")/.."
out=${1:-BENCH_access.json}

echo "== BenchmarkAccess (internal/machine)" >&2
micro=$(go test -run '^$' -bench '^BenchmarkAccess$' -benchmem \
    -benchtime "${BENCHTIME:-2s}" ./internal/machine)
echo "$micro" >&2
ns=$(echo "$micro" | awk '$1 ~ /^BenchmarkAccess(-[0-9]+)?$/ {print $3}')
bop=$(echo "$micro" | awk '$1 ~ /^BenchmarkAccess(-[0-9]+)?$/ {print $5}')
aop=$(echo "$micro" | awk '$1 ~ /^BenchmarkAccess(-[0-9]+)?$/ {print $7}')
if [ -z "$ns" ]; then
    echo "bench.sh: could not parse BenchmarkAccess output" >&2
    exit 1
fi

echo "== BenchmarkAccessRun (internal/machine, bulk engine)" >&2
bulk=$(go test -run '^$' -bench '^BenchmarkAccessRun$' -benchmem \
    -benchtime "${BENCHTIME:-2s}" ./internal/machine)
echo "$bulk" >&2
bns=$(echo "$bulk" | awk '$1 ~ /^BenchmarkAccessRun(-[0-9]+)?$/ {print $3}')
baop=$(echo "$bulk" | awk '$1 ~ /^BenchmarkAccessRun(-[0-9]+)?$/ {print $7}')
if [ -z "$bns" ]; then
    echo "bench.sh: could not parse BenchmarkAccessRun output" >&2
    exit 1
fi

echo "== BenchmarkAccessGather vs scalar (internal/machine, gather engine)" >&2
gather=$(go test -run '^$' -bench '^BenchmarkAccessGather(Scalar)?$' -benchmem \
    -benchtime "${BENCHTIME:-2s}" ./internal/machine)
echo "$gather" >&2
gns=$(echo "$gather" | awk '$1 ~ /^BenchmarkAccessGather(-[0-9]+)?$/ {print $3}')
gsns=$(echo "$gather" | awk '$1 ~ /^BenchmarkAccessGatherScalar(-[0-9]+)?$/ {print $3}')
gaop=$(echo "$gather" | awk '$1 ~ /^BenchmarkAccessGather(-[0-9]+)?$/ {print $7}')
if [ -z "$gns" ] || [ -z "$gsns" ]; then
    echo "bench.sh: could not parse BenchmarkAccessGather output" >&2
    exit 1
fi

echo "== engine perf gates (same-host ratios, >= 2x)" >&2
# BenchmarkAccess is the scalar per-access cost; the bulk and gather
# engines amortize it over coalesced batches, so their ns-per-access
# must stay well under it on the same binary and host.
bulk_ratio=$(awk "BEGIN { printf \"%.2f\", $ns / $bns }")
gather_ratio=$(awk "BEGIN { printf \"%.2f\", $gsns / $gns }")
echo "bulk engine: ${bns}ns vs scalar ${ns}ns per access (${bulk_ratio}x)" >&2
echo "gather engine: ${gns}ns vs scalar ${gsns}ns per access (${gather_ratio}x)" >&2
if ! awk "BEGIN { exit !($ns >= 2 * $bns) }"; then
    echo "bench.sh: bulk engine is under 2x the scalar path (${bulk_ratio}x): AccessRun is no longer amortizing" >&2
    exit 1
fi
if ! awk "BEGIN { exit !($gsns >= 2 * $gns) }"; then
    echo "bench.sh: gather engine is under 2x its scalar path (${gather_ratio}x): AccessGather is no longer amortizing" >&2
    exit 1
fi

echo "== BenchmarkHeadline (end-to-end, 1 iteration)" >&2
headline=$(go test -run '^$' -bench '^BenchmarkHeadline$' -benchtime 1x .)
echo "$headline" >&2
hns=$(echo "$headline" | awk '$1 ~ /^BenchmarkHeadline(-[0-9]+)?$/ {print $3}')

echo "== campaign phase wall-clock (bench scale, fig5+pagecache, -j 1)" >&2
bin=$(mktemp)
go build -o "$bin" ./cmd/expdriver
campaign_start=$(date +%s)
"$bin" -scale bench -exp fig5,pagecache -j 1 >/dev/null
campaign_end=$(date +%s)
wall=$((campaign_end - campaign_start))

echo "== snapshot-layer wall-clock (bench scale, fig5+pagecache+ext-rollout, -j 1)" >&2
snap_start=$(date +%s)
"$bin" -scale bench -exp fig5,pagecache,ext-rollout -j 1 >/dev/null
snap_wall=$(( $(date +%s) - snap_start ))
nosnap_start=$(date +%s)
GRAPHMEM_NO_SNAPSHOT=1 "$bin" -scale bench -exp fig5,pagecache,ext-rollout -j 1 >/dev/null
nosnap_wall=$(( $(date +%s) - nosnap_start ))
speedup=$(awk "BEGIN { printf \"%.2f\", $nosnap_wall / ($snap_wall > 0 ? $snap_wall : 1) }")
echo "snapshot on: ${snap_wall}s, off: ${nosnap_wall}s (speedup ${speedup}x)" >&2

rm -f "$bin"

echo "== sharded-engine single-run wall-clock (bench scale, kr25 ext-shard cell)" >&2
gate=$(GRAPHMEM_SPEEDUP_GATE=1 go test -run '^TestShardBringupSpeedup$' \
    -count=1 -v ./internal/exp)
echo "$gate" >&2
shard_line=$(echo "$gate" | grep shard_bringup)
fork_ms=$(echo "$shard_line" | sed 's/.*fork_ms=\([0-9]*\).*/\1/')
replay_ms=$(echo "$shard_line" | sed 's/.*replay_ms=\([0-9]*\).*/\1/')
shard_speedup=$(echo "$shard_line" | sed 's/.*speedup=\([0-9.]*\).*/\1/')
if [ -z "$fork_ms" ] || [ -z "$replay_ms" ] || [ -z "$shard_speedup" ]; then
    echo "bench.sh: could not parse TestShardBringupSpeedup output" >&2
    exit 1
fi
shard_wall=$(awk "BEGIN { printf \"%.2f\", $fork_ms / 1000 }")
noshard_wall=$(awk "BEGIN { printf \"%.2f\", $replay_ms / 1000 }")

echo "== frame-metadata byte budget (TestFrameInfoSize)" >&2
go test -run '^TestFrameInfoSize$' -count=1 ./internal/memsys >&2
bytes_per_frame=8

echo "== checkpoint-store reload gate (bench scale, fullscale cell)" >&2
ckpt=$(GRAPHMEM_CKPT_GATE=1 go test -run '^TestCkptReloadSpeedup$' \
    -count=1 -v ./internal/exp)
echo "$ckpt" >&2
ckpt_line=$(echo "$ckpt" | grep ckpt_reload)
ckpt_save=$(echo "$ckpt_line" | sed 's/.*save_gbps=\([0-9.]*\).*/\1/')
ckpt_load=$(echo "$ckpt_line" | sed 's/.*load_gbps=\([0-9.]*\).*/\1/')
ckpt_speedup=$(echo "$ckpt_line" | sed 's/.*speedup=\([0-9.]*\).*/\1/')
ckpt_bytes=$(echo "$ckpt_line" | sed 's/.*bytes=\([0-9]*\).*/\1/')
if [ -z "$ckpt_save" ] || [ -z "$ckpt_load" ] || [ -z "$ckpt_speedup" ]; then
    echo "bench.sh: could not parse TestCkptReloadSpeedup output" >&2
    exit 1
fi

echo "== paper-geometry footprint (full scale, ext-fullscale campaign)" >&2
# Reuse the node images ci.sh staged when both point GRAPHMEM_CKPT_DIR
# at the same store; without one the gate restages from scratch.
fsgate=$(GRAPHMEM_FULLSCALE=1 GRAPHMEM_CKPT_DIR="${GRAPHMEM_CKPT_DIR:-}" \
    go test -run '^TestFullscaleGeometryGate$' \
    -count=1 -v -timeout 900s ./internal/exp)
echo "$fsgate" >&2
fs_line=$(echo "$fsgate" | grep footprint_fullscale)
fs_bytes=$(echo "$fs_line" | sed 's/.*total_bytes=\([0-9]*\).*/\1/')
fs_legacy=$(echo "$fs_line" | sed 's/.*legacy_bytes=\([0-9]*\).*/\1/')
fs_reduction=$(echo "$fs_line" | sed 's/.*reduction=\([0-9.]*\).*/\1/')
fs_wall=$(echo "$fs_line" | sed 's/.*wall_s=\([0-9.]*\).*/\1/')
if [ -z "$fs_bytes" ] || [ -z "$fs_reduction" ]; then
    echo "bench.sh: could not parse TestFullscaleGeometryGate output" >&2
    exit 1
fi

echo "== host context" >&2
host_cpu=$(awk -F': ' '/^model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || true)
if [ -z "$host_cpu" ]; then
    host_cpu=$(uname -m)
fi
host_go=$(go env GOVERSION)
host_procs=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
echo "cpu: $host_cpu, go: $host_go, procs: $host_procs" >&2

go run ./cmd/benchjson -file "$out" \
    "host_cpu=$host_cpu" \
    "host_go_version=$host_go" \
    "host_gomaxprocs=$host_procs" \
    "microbenchmark=BenchmarkAccess (internal/machine, steady-state fast path)" \
    "ns_per_access=$ns" \
    "bytes_per_op=${bop:-0}" \
    "allocs_per_op=${aop:-0}" \
    "bulk_microbenchmark=BenchmarkAccessRun (internal/machine, edge-scan-shaped sequential runs)" \
    "ns_per_access_bulk=$bns" \
    "bulk_allocs_per_op=${baop:-0}" \
    "bulk_vs_scalar_ratio=$bulk_ratio" \
    "gather_microbenchmark=BenchmarkAccessGather vs BenchmarkAccessGatherScalar (internal/machine, irregular neighbor-gather-shaped stream)" \
    "ns_per_access_gather=$gns" \
    "ns_per_access_gather_scalar=$gsns" \
    "gather_allocs_per_op=${gaop:-0}" \
    "gather_vs_scalar_ratio=$gather_ratio" \
    "headline_benchmark=BenchmarkHeadline (-benchtime 1x, bench scale)" \
    "headline_ns_per_op=${hns:-0}" \
    "campaign=expdriver -scale bench -exp fig5,pagecache -j 1" \
    "campaign_wall_seconds=$wall" \
    "snapshot_campaign=expdriver -scale bench -exp fig5,pagecache,ext-rollout -j 1, forking vs GRAPHMEM_NO_SNAPSHOT=1" \
    "campaign_snapshot_wall_seconds=$snap_wall" \
    "campaign_nosnapshot_wall_seconds=$nosnap_wall" \
    "campaign_snapshot_speedup=$speedup" \
    "shard_single_run=TestShardBringupSpeedup (core.Run of the bench-scale kr25 ext-shard cell at 4 shard workers, fork bring-up vs GRAPHMEM_NO_SHARD=1 replay, min of 3)" \
    "run_shard_wall_seconds=$shard_wall" \
    "run_noshard_wall_seconds=$noshard_wall" \
    "run_shard_speedup=$shard_speedup" \
    "ckpt_store=TestCkptReloadSpeedup (bench-scale fullscale cell: ckpt.Save/LoadCheckpoint throughput and reload-vs-restage speedup, min of 3)" \
    "ckpt_save_gbps=$ckpt_save" \
    "ckpt_load_gbps=$ckpt_load" \
    "ckpt_reload_speedup=$ckpt_speedup" \
    "ckpt_image_bytes=$ckpt_bytes" \
    "footprint=stats.Footprint of the staged ext-fullscale cell (128 GB node, full scale) vs the legacy dense representation" \
    "bytes_per_frame=$bytes_per_frame" \
    "footprint_fullscale_bytes=$fs_bytes" \
    "footprint_fullscale_legacy_bytes=$fs_legacy" \
    "footprint_fullscale_reduction=$fs_reduction" \
    "footprint_fullscale_wall_seconds=$fs_wall"
echo "wrote $out" >&2
cat "$out"
