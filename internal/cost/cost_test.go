package cost

import "testing"

// orderings that every sane model must satisfy; the paper's crossovers
// all derive from these inequalities.
func checkOrdering(t *testing.T, name string, m Model) {
	t.Helper()
	if !(m.L1DHit < m.LLCHit && m.LLCHit < m.DRAM) {
		t.Errorf("%s: cache hierarchy ordering broken", name)
	}
	if !(m.WalkLevelPWC < m.WalkLevel) {
		t.Errorf("%s: PWC not cheaper than a memory walk level", name)
	}
	if !(m.STLBHit < m.WalkLevel*3) {
		t.Errorf("%s: STLB hit not clearly cheaper than a walk", name)
	}
	if !(m.MinorFault4K < m.MinorFault2M) {
		t.Errorf("%s: 2MB fault not costlier than 4KB fault", name)
	}
	if !(m.MinorFault2M < m.SwapInPage) {
		t.Errorf("%s: swap I/O not dominating fault costs", name)
	}
	if m.CompactPerPage == 0 || m.ReclaimPerPage == 0 || m.PromotionCopy == 0 {
		t.Errorf("%s: zero-cost memory management operation", name)
	}
	if m.PreprocPerVertex == 0 || m.PreprocPerEdge == 0 {
		t.Errorf("%s: zero-cost preprocessing", name)
	}
}

func TestDefaultOrdering(t *testing.T) { checkOrdering(t, "Default", Default()) }
func TestFastOrdering(t *testing.T)    { checkOrdering(t, "Fast", Fast()) }

// TestHugeFaultAmortizes: a 2MB fault must be cheaper than the 512 4KB
// faults it replaces — otherwise THP could never win on init time.
func TestHugeFaultAmortizes(t *testing.T) {
	for _, m := range []Model{Default(), Fast()} {
		if m.MinorFault2M >= 512*m.MinorFault4K {
			t.Fatalf("2M fault %d not cheaper than 512 4K faults %d",
				m.MinorFault2M, 512*m.MinorFault4K)
		}
	}
}

// TestSwapDominates: one swap I/O must exceed hundreds of DRAM
// accesses, or the paper's order-of-magnitude oversubscription cliff
// could not exist.
func TestSwapDominates(t *testing.T) {
	m := Default()
	if m.SwapInPage < 500*m.DRAM {
		t.Fatalf("swap %d vs DRAM %d: cliff impossible", m.SwapInPage, m.DRAM)
	}
}
