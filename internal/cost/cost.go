// Package cost defines the cycle-accounting model shared by the memory
// system simulator. All latencies are expressed in CPU core cycles of the
// simulated machine (a Haswell-class Xeon at ~3.2 GHz, per Table 1 of the
// paper). The individual constants are calibrated against published
// Haswell latencies; what matters for the reproduction is their relative
// magnitude (cache << DRAM << fault << swap), which drives every
// crossover the paper reports.
package cost

// Model holds every latency and penalty the simulator charges. A zero
// Model is not useful; construct one with Default or Fast.
type Model struct {
	// Data-side memory hierarchy.
	L1DHit  uint64 // L1 data cache hit latency
	LLCHit  uint64 // last-level cache hit latency
	DRAM    uint64 // DRAM access latency (local NUMA node)
	Compute uint64 // fixed per-access compute cost charged by the core

	// Address translation.
	STLBHit      uint64 // L1 TLB miss that hits in the unified STLB
	WalkLevel    uint64 // cost of one page-table level access during a walk (PWC miss)
	WalkLevelPWC uint64 // cost of one level satisfied by the page-walk cache

	// Page fault handling (kernel entry, PTE setup, zeroing).
	MinorFault4K uint64 // demand-zero 4KB fault
	MinorFault2M uint64 // demand-zero 2MB fault (includes clearing 2MB)

	// Memory management background work charged to the faulting task.
	CompactPerPage uint64 // migrating one 4KB page during compaction
	ReclaimPerPage uint64 // reclaiming one clean 4KB page (page cache drop)
	PromotionCopy  uint64 // khugepaged copying one 4KB page into a huge page
	DemotionFixed  uint64 // splitting one huge page into 512 PTEs

	// Swap device: a page-sized I/O to secondary storage.
	SwapInPage  uint64
	SwapOutPage uint64

	// Preprocessing (graph reordering) cost per traversal element.
	// Reordering streams arrays sequentially, so the per-element cost
	// is a few cycles of compute plus amortized streaming bandwidth —
	// far below the irregular-access costs the kernels pay, which is
	// why DBG's overhead lands at the paper's ~1–16% of runtime.
	PreprocPerVertex uint64
	PreprocPerEdge   uint64
}

// Default returns the reference cost model used by all paper-shape
// experiments. Latencies follow Haswell-era measurements: 4-cycle L1D,
// ~34-cycle LLC, ~200-cycle local DRAM, 7-cycle STLB hit, ~25 cycles per
// radix level on a walk that misses the page-walk caches. Fault and swap
// costs are the dominant asymmetries: a 2MB demand-zero fault costs
// roughly the time to clear 2MB (tens of microseconds), and a swap I/O
// costs ~1ms (the SATA-SSD class of the paper's 2016-era evaluation
// node), i.e. ~3.2M cycles — the constant behind the paper's
// order-of-magnitude slowdown when memory oversubscribes.
func Default() Model {
	return Model{
		L1DHit:  4,
		LLCHit:  34,
		DRAM:    200,
		Compute: 2,

		STLBHit:      7,
		WalkLevel:    25,
		WalkLevelPWC: 2,

		MinorFault4K: 2500,
		MinorFault2M: 90000,

		CompactPerPage: 1200,
		ReclaimPerPage: 600,
		PromotionCopy:  700,
		DemotionFixed:  12000,

		SwapInPage:  3_200_000,
		SwapOutPage: 3_200_000,

		PreprocPerVertex: 8,
		PreprocPerEdge:   10,
	}
}

// Fast returns a model with the same ordering of magnitudes but smaller
// absolute constants. It exists for tests that assert relative behaviour
// and want small cycle counts; experiments use Default.
func Fast() Model {
	return Model{
		L1DHit:  1,
		LLCHit:  10,
		DRAM:    50,
		Compute: 1,

		STLBHit:      3,
		WalkLevel:    10,
		WalkLevelPWC: 1,

		MinorFault4K: 500,
		MinorFault2M: 8000,

		CompactPerPage: 200,
		ReclaimPerPage: 100,
		PromotionCopy:  150,
		DemotionFixed:  2000,

		SwapInPage:  50000,
		SwapOutPage: 50000,

		PreprocPerVertex: 2,
		PreprocPerEdge:   3,
	}
}
