package cost

import "graphmem/internal/ckpt"

// Encode serializes the cost model (DESIGN.md §5e). The model is part
// of the checkpoint image rather than re-derived from the spec so that
// a loaded machine charges exactly the cycles the staged one would
// have — the serialization-is-determinism contract of MODEL.md §7.
func (m *Model) Encode(e *ckpt.Encoder) {
	e.U64(m.L1DHit)
	e.U64(m.LLCHit)
	e.U64(m.DRAM)
	e.U64(m.Compute)
	e.U64(m.STLBHit)
	e.U64(m.WalkLevel)
	e.U64(m.WalkLevelPWC)
	e.U64(m.MinorFault4K)
	e.U64(m.MinorFault2M)
	e.U64(m.CompactPerPage)
	e.U64(m.ReclaimPerPage)
	e.U64(m.PromotionCopy)
	e.U64(m.DemotionFixed)
	e.U64(m.SwapInPage)
	e.U64(m.SwapOutPage)
	e.U64(m.PreprocPerVertex)
	e.U64(m.PreprocPerEdge)
}

// Decode is Encode's inverse.
func (m *Model) Decode(d *ckpt.Decoder) {
	m.L1DHit = d.U64()
	m.LLCHit = d.U64()
	m.DRAM = d.U64()
	m.Compute = d.U64()
	m.STLBHit = d.U64()
	m.WalkLevel = d.U64()
	m.WalkLevelPWC = d.U64()
	m.MinorFault4K = d.U64()
	m.MinorFault2M = d.U64()
	m.CompactPerPage = d.U64()
	m.ReclaimPerPage = d.U64()
	m.PromotionCopy = d.U64()
	m.DemotionFixed = d.U64()
	m.SwapInPage = d.U64()
	m.SwapOutPage = d.U64()
	m.PreprocPerVertex = d.U64()
	m.PreprocPerEdge = d.U64()
}
