// Package cli holds the small parsing helpers shared by the command-line
// tools: resolving dataset / scale / app / policy / reorder names to
// library values, with uniform error messages.
//
// It sits outside the simulation path — parsing happens once per
// process, before any machine is built — so it carries none of the
// determinism obligations simlint enforces on simulator packages, only
// the convention that unknown names list the known ones in the error.
package cli

import (
	"fmt"
	"os"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/graph"
	"graphmem/internal/reorder"
)

// ParseScale resolves full|bench|test.
func ParseScale(name string) (gen.Scale, error) {
	switch name {
	case "full":
		return gen.ScaleFull, nil
	case "bench":
		return gen.ScaleBench, nil
	case "test":
		return gen.ScaleTest, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want full, bench, or test)", name)
}

// ParseApp resolves a workload name.
func ParseApp(name string) (analytics.App, error) {
	for _, a := range analytics.ExtendedApps {
		if string(a) == name {
			return a, nil
		}
	}
	return "", fmt.Errorf("unknown app %q (want bfs, sssp, pr, cc, or bc)", name)
}

// ParseDataset resolves a dataset name.
func ParseDataset(name string) (gen.Dataset, error) {
	for _, d := range gen.AllDatasets {
		if string(d) == name {
			return d, nil
		}
	}
	return "", fmt.Errorf("unknown dataset %q (want kr25, twit, web, or wiki)", name)
}

// ParseReorder resolves a reordering method name.
func ParseReorder(name string) (reorder.Method, error) {
	switch name {
	case "orig":
		return reorder.Identity, nil
	case "dbg":
		return reorder.DBG, nil
	case "sort":
		return reorder.FullSort, nil
	case "rand":
		return reorder.Random, nil
	}
	return "", fmt.Errorf("unknown reorder method %q (want orig, dbg, sort, or rand)", name)
}

// ParseOrder resolves an allocation order name.
func ParseOrder(name string) (analytics.AllocOrder, error) {
	switch name {
	case "natural":
		return analytics.Natural, nil
	case "prop-first":
		return analytics.PropFirst, nil
	}
	return 0, fmt.Errorf("unknown allocation order %q (want natural or prop-first)", name)
}

// ParsePolicy resolves a policy name; sel parameterizes selective/auto.
func ParsePolicy(name string, sel float64, app analytics.App, g *graph.Graph) (core.Policy, error) {
	switch name {
	case "4k":
		return core.Base4K(), nil
	case "thp":
		return core.THPAlways(), nil
	case "madvise-prop":
		return core.PerStructure("prop"), nil
	case "selective":
		return core.SelectiveTHP(sel), nil
	case "hugetlb":
		return core.HugetlbSelective(sel), nil
	case "auto":
		budget := uint64(sel * float64(analytics.WSSBytes(app, g)))
		if budget < 2<<20 {
			budget = 2 << 20
		}
		return core.AutoTHP(budget), nil
	case "ingens":
		return core.IngensLike(), nil
	case "hawkeye":
		return core.HawkEyeLike(), nil
	}
	return core.Policy{}, fmt.Errorf(
		"unknown policy %q (want 4k, thp, madvise-prop, selective, hugetlb, auto, ingens, or hawkeye)", name)
}

// LoadGraph loads a GMG1 or edge-list file (by extension: .txt/.el =
// edge list, anything else = GMG1), or generates a dataset when path is
// empty.
func LoadGraph(path string, ds gen.Dataset, scale gen.Scale, weighted bool) (*graph.Graph, error) {
	if path == "" {
		return gen.Generate(ds, scale, weighted), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if n := len(path); n > 4 && (path[n-4:] == ".txt" || path[n-3:] == ".el") {
		return graph.ReadEdgeList(f)
	}
	return graph.Read(f)
}
