package cli

import (
	"os"
	"path/filepath"
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/gen"
	"graphmem/internal/graph"
	"graphmem/internal/oskernel"
	"graphmem/internal/reorder"
)

func TestParseScale(t *testing.T) {
	for name, want := range map[string]gen.Scale{
		"full": gen.ScaleFull, "bench": gen.ScaleBench, "test": gen.ScaleTest,
	} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestParseApp(t *testing.T) {
	for _, name := range []string{"bfs", "sssp", "pr", "cc", "bc"} {
		if _, err := ParseApp(name); err != nil {
			t.Fatalf("ParseApp(%q): %v", name, err)
		}
	}
	if _, err := ParseApp("dijkstra"); err == nil {
		t.Fatal("bad app accepted")
	}
}

func TestParseDataset(t *testing.T) {
	for _, name := range []string{"kr25", "twit", "web", "wiki"} {
		if _, err := ParseDataset(name); err != nil {
			t.Fatalf("ParseDataset(%q): %v", name, err)
		}
	}
	if _, err := ParseDataset("livejournal"); err == nil {
		t.Fatal("bad dataset accepted")
	}
}

func TestParseReorderAndOrder(t *testing.T) {
	if m, err := ParseReorder("dbg"); err != nil || m != reorder.DBG {
		t.Fatal("dbg parse failed")
	}
	if _, err := ParseReorder("zigzag"); err == nil {
		t.Fatal("bad method accepted")
	}
	if o, err := ParseOrder("prop-first"); err != nil || o != analytics.PropFirst {
		t.Fatal("prop-first parse failed")
	}
	if _, err := ParseOrder("random"); err == nil {
		t.Fatal("bad order accepted")
	}
}

func TestParsePolicyVariants(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	for name, mode := range map[string]oskernel.THPMode{
		"4k":           oskernel.ModeNever,
		"thp":          oskernel.ModeAlways,
		"madvise-prop": oskernel.ModeMadvise,
		"selective":    oskernel.ModeMadvise,
		"hugetlb":      oskernel.ModeMadvise,
		"auto":         oskernel.ModeMadvise,
		"ingens":       oskernel.ModeAlways,
		"hawkeye":      oskernel.ModeAlways,
	} {
		p, err := ParsePolicy(name, 0.3, analytics.BFS, g)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Mode != mode {
			t.Fatalf("ParsePolicy(%q).Mode = %v, want %v", name, p.Mode, mode)
		}
	}
	if _, err := ParsePolicy("yolo", 0.5, analytics.BFS, g); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestLoadGraphGenerates(t *testing.T) {
	g, err := LoadGraph("", gen.Wiki, gen.ScaleTest, false)
	if err != nil || g.N == 0 {
		t.Fatalf("generate path failed: %v", err)
	}
}

func TestLoadGraphFiles(t *testing.T) {
	dir := t.TempDir()
	g := gen.Generate(gen.Wiki, gen.ScaleTest, true)

	bin := filepath.Join(dir, "g.gmg")
	f, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := LoadGraph(bin, "", 0, false)
	if err != nil || got.N != g.N {
		t.Fatalf("GMG1 load: %v", err)
	}

	txt := filepath.Join(dir, "g.txt")
	f2, err := os.Create(txt)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f2, g); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	got2, err := LoadGraph(txt, "", 0, false)
	if err != nil || got2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge-list load: %v", err)
	}

	if _, err := LoadGraph(filepath.Join(dir, "missing.gmg"), "", 0, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
