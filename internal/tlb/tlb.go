// Package tlb models the address-translation caching hierarchy of an
// x86-64 core: a first-level data TLB with separate arrays per page size
// (as on Intel Haswell), a unified second-level TLB (STLB) shared by 4KB
// and 2MB translations, and the page-walk caches (PML4E/PDPTE/PDE) that
// shorten radix walks on STLB misses.
//
// All structures are set-associative with true-LRU replacement inside
// each set, and all state updates are deterministic.
package tlb

import (
	"fmt"

	"graphmem/internal/check"
	"graphmem/internal/vm"
)

// SetConfig describes one set-associative structure.
type SetConfig struct {
	Entries int
	Ways    int
}

func (c SetConfig) sets() int {
	if c.Entries == 0 {
		return 0
	}
	if c.Ways <= 0 || c.Entries%c.Ways != 0 {
		panic(check.Failf("tlb: %d entries not divisible by %d ways", c.Entries, c.Ways))
	}
	return c.Entries / c.Ways
}

// Config describes a full translation-caching hierarchy.
type Config struct {
	Name  string
	L1D4K SetConfig // L1 DTLB array for 4KB translations
	L1D2M SetConfig // L1 DTLB array for 2MB translations
	STLB  SetConfig // unified L2 TLB (4KB + 2MB)

	// Page-walk caches by level, per Intel's paging-structure caches.
	PWCPDE   SetConfig // caches PD entries (keyed by va>>21)
	PWCPDPTE SetConfig // caches PDPT entries (keyed by va>>30)
	PWCPML4E SetConfig // caches PML4 entries (keyed by va>>39)
}

// Haswell returns the hierarchy of the paper's evaluation machine
// (Table 1: Xeon E5-2667 v3): 64-entry 4-way L1 DTLB for 4KB pages, a
// separate 32-entry 4-way array for 2MB pages, and a 1024-entry 8-way
// unified STLB. Paging-structure cache sizes follow Intel's published
// Haswell parameters.
func Haswell() Config {
	return Config{
		Name:     "haswell",
		L1D4K:    SetConfig{Entries: 64, Ways: 4},
		L1D2M:    SetConfig{Entries: 32, Ways: 4},
		STLB:     SetConfig{Entries: 1024, Ways: 8},
		PWCPDE:   SetConfig{Entries: 32, Ways: 4},
		PWCPDPTE: SetConfig{Entries: 4, Ways: 4},
		PWCPML4E: SetConfig{Entries: 2, Ways: 2},
	}
}

// Scaled divides every entry count of c by div (minimum one way per
// structure), preserving associativity where possible. Scaled TLBs let
// tests and quick benchmarks reproduce capacity effects on small graphs.
func Scaled(c Config, div int) Config {
	sc := func(s SetConfig) SetConfig {
		e := s.Entries / div
		if e < 1 {
			e = 1
		}
		// Round entries down to a power of two so any ways divisor
		// yields a power-of-two set count.
		for e&(e-1) != 0 {
			e &= e - 1
		}
		w := s.Ways
		if w > e {
			w = e
		}
		// Pick the largest associativity that leaves a power-of-two
		// set count; w == e (fully associative) always qualifies.
		for w > 1 {
			if e%w == 0 && (e/w)&(e/w-1) == 0 {
				break
			}
			w--
		}
		return SetConfig{Entries: e, Ways: w}
	}
	return Config{
		Name:     fmt.Sprintf("%s/%d", c.Name, div),
		L1D4K:    sc(c.L1D4K),
		L1D2M:    sc(c.L1D2M),
		STLB:     sc(c.STLB),
		PWCPDE:   sc(c.PWCPDE),
		PWCPDPTE: sc(c.PWCPDPTE),
		PWCPML4E: sc(c.PWCPML4E),
	}
}

// setAssoc is a generic set-associative tag array with per-set LRU.
type setAssoc struct {
	setsMask uint64
	ways     int
	tags     []uint64 // sets × ways; 0 means invalid (tags are shifted +1)
	stamp    []uint32 // LRU stamps parallel to tags
	clock    uint32
}

func newSetAssoc(c SetConfig) *setAssoc {
	sets := c.sets()
	if sets == 0 {
		return &setAssoc{}
	}
	if sets&(sets-1) != 0 {
		panic(check.Failf("tlb: set count %d not a power of two", sets))
	}
	return &setAssoc{
		setsMask: uint64(sets - 1),
		ways:     c.Ways,
		tags:     make([]uint64, sets*c.Ways),
		stamp:    make([]uint32, sets*c.Ways),
	}
}

// lookup probes for key; on hit it refreshes LRU and returns true.
func (s *setAssoc) lookup(key uint64) bool {
	if s.ways == 0 {
		return false
	}
	tag := key + 1
	base := int(key&s.setsMask) * s.ways
	for w := 0; w < s.ways; w++ {
		if s.tags[base+w] == tag {
			s.clock++
			s.stamp[base+w] = s.clock
			return true
		}
	}
	return false
}

// repeatHit refreshes key's LRU state as n consecutive hitting lookups
// would: each hit advances the set's clock by one and leaves the entry's
// stamp at the new clock, so n hits in a row net to clock += n with the
// stamp landing on the final value and no other way touched. Returns
// false when the entry is absent (the caller's residency guarantee was
// broken).
func (s *setAssoc) repeatHit(key, n uint64) bool {
	if s.ways == 0 {
		return false
	}
	tag := key + 1
	base := int(key&s.setsMask) * s.ways
	for w := 0; w < s.ways; w++ {
		if s.tags[base+w] == tag {
			s.clock += uint32(n)
			s.stamp[base+w] = s.clock
			return true
		}
	}
	return false
}

// insert fills key, evicting the LRU way of its set if necessary.
func (s *setAssoc) insert(key uint64) {
	if s.ways == 0 {
		return
	}
	tag := key + 1
	base := int(key&s.setsMask) * s.ways
	victim, oldest := base, s.stamp[base]
	for w := 0; w < s.ways; w++ {
		i := base + w
		if s.tags[i] == tag {
			s.clock++
			s.stamp[i] = s.clock
			return
		}
		if s.tags[i] == 0 {
			victim, oldest = i, 0
			// Prefer an invalid way but keep scanning for a tag match.
			continue
		}
		if s.stamp[i] < oldest {
			victim, oldest = i, s.stamp[i]
		}
	}
	s.clock++
	s.tags[victim] = tag
	s.stamp[victim] = s.clock
}

// invalidate removes key if present.
func (s *setAssoc) invalidate(key uint64) {
	if s.ways == 0 {
		return
	}
	tag := key + 1
	base := int(key&s.setsMask) * s.ways
	for w := 0; w < s.ways; w++ {
		if s.tags[base+w] == tag {
			s.tags[base+w] = 0
			s.stamp[base+w] = 0
		}
	}
}

// reset clears all entries.
func (s *setAssoc) reset() {
	for i := range s.tags {
		s.tags[i] = 0
		s.stamp[i] = 0
	}
	s.clock = 0
}

// Stats holds the hierarchy's counters. DTLB terminology follows the
// paper: a "DTLB miss" is a first-level miss; those either hit the STLB
// or walk.
type Stats struct {
	Lookups    uint64
	L1Misses   uint64
	STLBMisses uint64 // == page walks
	WalkCycles uint64
}

// Add returns the field-wise sum s + o (the sharded machine engine's
// per-shard merge).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Lookups:    s.Lookups + o.Lookups,
		L1Misses:   s.L1Misses + o.L1Misses,
		STLBMisses: s.STLBMisses + o.STLBMisses,
		WalkCycles: s.WalkCycles + o.WalkCycles,
	}
}

// DTLBMissRate is L1 misses ÷ lookups.
func (s Stats) DTLBMissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Lookups)
}

// STLBMissRate is walks ÷ lookups (the paper's "STLB miss" striped bars
// are relative to all TLB accesses).
func (s Stats) STLBMissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.STLBMisses) / float64(s.Lookups)
}

// Hierarchy is a live TLB + PWC instance.
type Hierarchy struct {
	cfg Config

	l14k *setAssoc
	l12m *setAssoc
	stlb *setAssoc

	pwcPDE   *setAssoc
	pwcPDPTE *setAssoc
	pwcPML4E *setAssoc

	stats Stats
}

// New builds a hierarchy from a config.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:      cfg,
		l14k:     newSetAssoc(cfg.L1D4K),
		l12m:     newSetAssoc(cfg.L1D2M),
		stlb:     newSetAssoc(cfg.STLB),
		pwcPDE:   newSetAssoc(cfg.PWCPDE),
		pwcPDPTE: newSetAssoc(cfg.PWCPDPTE),
		pwcPML4E: newSetAssoc(cfg.PWCPML4E),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters without touching cached state, so a
// measurement phase can exclude warm-up.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Reset clears all cached translations and counters.
func (h *Hierarchy) Reset() {
	h.l14k.reset()
	h.l12m.reset()
	h.stlb.reset()
	h.pwcPDE.reset()
	h.pwcPDPTE.reset()
	h.pwcPML4E.reset()
	h.stats = Stats{}
}

// stlbKey disambiguates page sizes sharing the unified STLB.
func stlbKey(va uint64, size vm.PageSizeClass) uint64 {
	if size == vm.Page2M {
		return (va>>21)<<1 | 1
	}
	return (va >> 12) << 1
}

// Result describes what one translation lookup did.
type Result struct {
	L1Hit   bool
	STLBHit bool
	Walked  bool
}

// Lookup simulates a data-side translation of va whose true mapping size
// is size (known only after the walk in hardware, but needed up front to
// probe the right arrays the way the physical tag match does). It
// returns what happened; the caller charges costs and, on a walk,
// invokes WalkCost.
func (h *Hierarchy) Lookup(va uint64, size vm.PageSizeClass) Result {
	h.stats.Lookups++
	switch size {
	case vm.Page4K:
		if h.l14k.lookup(va >> 12) {
			return Result{L1Hit: true}
		}
	case vm.Page2M:
		if h.l12m.lookup(va >> 21) {
			return Result{L1Hit: true}
		}
	}
	h.stats.L1Misses++
	if h.stlb.lookup(stlbKey(va, size)) {
		h.fillL1(va, size)
		return Result{STLBHit: true}
	}
	h.stats.STLBMisses++
	return Result{Walked: true}
}

// L1Holds reports whether the L1 array for the given page size has any
// capacity. A zero-way array can never retain a translation, so bulk
// batching that relies on residency after a fill must not engage.
func (h *Hierarchy) L1Holds(size vm.PageSizeClass) bool {
	if size == vm.Page2M {
		return h.l12m.ways != 0
	}
	return h.l14k.ways != 0
}

// LookupRepeatHit charges n translation lookups of va that are known to
// hit the L1 array: an earlier Lookup in the same access run installed
// or refreshed the entry and nothing has invalidated it since. Counters
// and the array's LRU clock advance exactly as n Lookup calls returning
// L1Hit would. It panics when the entry is absent, because that means a
// bulk caller's same-page residency guarantee does not hold.
func (h *Hierarchy) LookupRepeatHit(va uint64, size vm.PageSizeClass, n uint64) {
	h.stats.Lookups += n
	var ok bool
	if size == vm.Page2M {
		ok = h.l12m.repeatHit(va>>21, n)
	} else {
		ok = h.l14k.repeatHit(va>>12, n)
	}
	if !ok {
		panic(check.Failf("tlb: bulk repeat hit on absent translation va=%#x size=%v", va, size))
	}
}

// fillL1 installs the translation into the size-appropriate L1 array.
func (h *Hierarchy) fillL1(va uint64, size vm.PageSizeClass) {
	if size == vm.Page2M {
		h.l12m.insert(va >> 21)
	} else {
		h.l14k.insert(va >> 12)
	}
}

// Fill installs a completed walk's translation into the STLB and L1.
func (h *Hierarchy) Fill(va uint64, size vm.PageSizeClass) {
	h.stlb.insert(stlbKey(va, size))
	h.fillL1(va, size)
}

// WalkCost simulates the radix walk for va at the given mapping size and
// returns (memoryLevels, cachedLevels): how many paging-structure
// accesses went to the memory hierarchy versus were satisfied by the
// paging-structure caches. It also updates the PWCs.
func (h *Hierarchy) WalkCost(va uint64, size vm.PageSizeClass) (memLevels, cachedLevels int) {
	pde := va >> 21
	pdpte := va >> 30
	pml4e := va >> 39

	levels := 4
	if size == vm.Page2M {
		levels = 3 // walk terminates at the PDE
	}

	// Find the deepest cached level; everything above it is "cached",
	// everything below (including the terminal entry) goes to memory.
	switch {
	case levels == 4 && h.pwcPDE.lookup(pde):
		memLevels, cachedLevels = 1, 3 // only the PTE fetch
	case h.pwcPDPTE.lookup(pdpte):
		memLevels, cachedLevels = levels-2, 2
	case h.pwcPML4E.lookup(pml4e):
		memLevels, cachedLevels = levels-1, 1
	default:
		memLevels, cachedLevels = levels, 0
	}

	// The walk populates the paging-structure caches on its way down.
	h.pwcPML4E.insert(pml4e)
	h.pwcPDPTE.insert(pdpte)
	if levels == 4 {
		h.pwcPDE.insert(pde)
	}
	return memLevels, cachedLevels
}

// AddWalkCycles accumulates walk cost into the stats (charged by the
// machine layer which owns the cost model).
func (h *Hierarchy) AddWalkCycles(c uint64) { h.stats.WalkCycles += c }

// Invalidate performs a TLB shootdown of the translation for va at the
// given size (and conservatively drops the matching PWC entries).
func (h *Hierarchy) Invalidate(va uint64, size vm.PageSizeClass) {
	if size == vm.Page2M {
		h.l12m.invalidate(va >> 21)
	} else {
		h.l14k.invalidate(va >> 12)
	}
	h.stlb.invalidate(stlbKey(va, size))
	h.pwcPDE.invalidate(va >> 21)
}

// FootprintBytes reports the simulator-side bytes backing the TLB
// hierarchy's tag and LRU arrays, for the stats.Footprint report. The
// representation predates the frame-metadata compaction and is
// unchanged by it.
func (h *Hierarchy) FootprintBytes() uint64 {
	var b uint64
	for _, s := range []*setAssoc{h.l14k, h.l12m, h.stlb, h.pwcPDE, h.pwcPDPTE, h.pwcPML4E} {
		if s != nil {
			b += uint64(len(s.tags))*8 + uint64(len(s.stamp))*4
		}
	}
	return b
}
