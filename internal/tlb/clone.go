package tlb

// Clone returns an independent deep copy of the hierarchy: same
// configuration, same cached translations, same LRU clocks and stamps,
// same counters. A forked machine replays translation behaviour
// bit-exactly from the clone point, and nothing the clone does is
// visible to the original (or vice versa).
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		cfg:      h.cfg,
		l14k:     h.l14k.clone(),
		l12m:     h.l12m.clone(),
		stlb:     h.stlb.clone(),
		pwcPDE:   h.pwcPDE.clone(),
		pwcPDPTE: h.pwcPDPTE.clone(),
		pwcPML4E: h.pwcPML4E.clone(),
		stats:    h.stats,
	}
}

// clone deep-copies one set-associative array, tags and LRU state
// included.
func (s *setAssoc) clone() *setAssoc {
	return &setAssoc{
		setsMask: s.setsMask,
		ways:     s.ways,
		tags:     append([]uint64(nil), s.tags...),
		stamp:    append([]uint32(nil), s.stamp...),
		clock:    s.clock,
	}
}
