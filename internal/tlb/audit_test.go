package tlb

import (
	"testing"

	"graphmem/internal/vm"
)

// TestCheckInvariantsCleanAfterTraffic drives a realistic mixed-size
// access stream (lookups, fills, walks that populate the PWCs, and
// invalidations) and requires the structural audit to stay clean.
func TestCheckInvariantsCleanAfterTraffic(t *testing.T) {
	h := New(Haswell())
	for i := uint64(0); i < 20000; i++ {
		va := (i * 0x9E3779B97F4A7C15) &^ 0xFFF
		size := vm.Page4K
		if i%3 == 0 {
			size = vm.Page2M
			va &^= (1 << 21) - 1
		}
		r := h.Lookup(va, size)
		if r.Walked {
			h.WalkCost(va, size)
			h.Fill(va, size)
		}
		if i%97 == 0 {
			h.Invalidate(va, size)
		}
		if i%4096 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("audit failed mid-stream at op %d: %v", i, err)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("audit failed after traffic: %v", err)
	}
	h.Reset()
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("audit failed after Reset: %v", err)
	}
}

// The seeded-corruption tests plant one specific inconsistency each and
// require CheckInvariants to reject it.

func TestCheckInvariantsDetectsDuplicateTag(t *testing.T) {
	h := New(Haswell())
	s := h.stlb
	s.clock = 1
	s.tags[0], s.tags[1] = 1, 1 // key 0 planted in two ways of set 0
	s.stamp[0], s.stamp[1] = 1, 1
	if err := h.CheckInvariants(); err == nil {
		t.Fatal("duplicate tag within a set not detected")
	}
}

func TestCheckInvariantsDetectsWrongSet(t *testing.T) {
	h := New(Haswell())
	s := h.l14k
	s.clock = 1
	s.tags[0] = 2 // key 1 belongs to set 1, planted in set 0
	s.stamp[0] = 1
	if err := h.CheckInvariants(); err == nil {
		t.Fatal("tag resident in the wrong set not detected")
	}
}

func TestCheckInvariantsDetectsStampAheadOfClock(t *testing.T) {
	h := New(Haswell())
	s := h.l12m
	s.tags[0] = 1
	s.stamp[0] = 5 // clock is still 0
	if err := h.CheckInvariants(); err == nil {
		t.Fatal("stamp ahead of clock not detected")
	}
}

func TestCheckInvariantsDetectsStaleStampOnInvalidWay(t *testing.T) {
	h := New(Haswell())
	s := h.pwcPDE
	s.stamp[0] = 3 // tags[0] == 0: invalid entry must carry stamp 0
	if err := h.CheckInvariants(); err == nil {
		t.Fatal("nonzero stamp on invalid way not detected")
	}
}
