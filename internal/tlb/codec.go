package tlb

import "graphmem/internal/ckpt"

// Checkpoint codec (DESIGN.md §5e). The tag, stamp, and clock state of
// every set-associative array is serialized verbatim: replacement
// decisions depend on exact LRU stamps, so anything less would break
// the loaded-equals-staged determinism contract (MODEL.md §7). Decode
// validates each array's geometry against the decoded Config with the
// same rules New enforces — but by failing the Decoder instead of
// panicking, since the image may be hostile.

func (c *SetConfig) encode(e *ckpt.Encoder) {
	e.Int(c.Entries)
	e.Int(c.Ways)
}

func (c *SetConfig) decode(d *ckpt.Decoder) {
	c.Entries = d.Int()
	c.Ways = d.Int()
	if c.Entries < 0 || c.Entries > 1<<30 || c.Ways < 0 || c.Ways > 1<<20 {
		d.Failf("tlb: set config %d entries / %d ways out of range", c.Entries, c.Ways)
	}
}

func (c *Config) encode(e *ckpt.Encoder) {
	e.String(c.Name)
	c.L1D4K.encode(e)
	c.L1D2M.encode(e)
	c.STLB.encode(e)
	c.PWCPDE.encode(e)
	c.PWCPDPTE.encode(e)
	c.PWCPML4E.encode(e)
}

func (c *Config) decode(d *ckpt.Decoder) {
	c.Name = d.String()
	c.L1D4K.decode(d)
	c.L1D2M.decode(d)
	c.STLB.decode(d)
	c.PWCPDE.decode(d)
	c.PWCPDPTE.decode(d)
	c.PWCPML4E.decode(d)
}

func (s *setAssoc) encode(e *ckpt.Encoder) {
	e.U64(s.setsMask)
	e.Int(s.ways)
	ckpt.EncodeSlice(e, s.tags)
	ckpt.EncodeSlice(e, s.stamp)
	e.U32(s.clock)
}

func (s *setAssoc) decode(d *ckpt.Decoder) {
	s.setsMask = d.U64()
	s.ways = d.Int()
	s.tags = ckpt.DecodeSlice[uint64](d)
	s.stamp = ckpt.DecodeSlice[uint32](d)
	s.clock = d.U32()
}

// checkGeometry fails the decoder unless s has exactly the shape
// newSetAssoc(c) would build.
func (s *setAssoc) checkGeometry(d *ckpt.Decoder, c SetConfig, name string) {
	if d.Err() != nil {
		return
	}
	if c.Entries == 0 {
		if s.setsMask != 0 || s.ways != 0 || len(s.tags) != 0 || len(s.stamp) != 0 {
			d.Failf("tlb: %s: zero-entry config with non-empty array", name)
		}
		return
	}
	if c.Ways <= 0 || c.Entries%c.Ways != 0 {
		d.Failf("tlb: %s: %d entries not divisible by %d ways", name, c.Entries, c.Ways)
		return
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		d.Failf("tlb: %s: set count %d not a power of two", name, sets)
		return
	}
	if s.ways != c.Ways || s.setsMask != uint64(sets-1) ||
		len(s.tags) != sets*c.Ways || len(s.stamp) != len(s.tags) {
		d.Failf("tlb: %s: array shape does not match config (%d entries, %d ways)",
			name, c.Entries, c.Ways)
	}
}

func (s *Stats) Encode(e *ckpt.Encoder) {
	e.U64(s.Lookups)
	e.U64(s.L1Misses)
	e.U64(s.STLBMisses)
	e.U64(s.WalkCycles)
}

func (s *Stats) Decode(d *ckpt.Decoder) {
	s.Lookups = d.U64()
	s.L1Misses = d.U64()
	s.STLBMisses = d.U64()
	s.WalkCycles = d.U64()
}

// Encode serializes the hierarchy: config, the six set-associative
// arrays, and the counters.
func (h *Hierarchy) Encode(e *ckpt.Encoder) {
	h.cfg.encode(e)
	h.l14k.encode(e)
	h.l12m.encode(e)
	h.stlb.encode(e)
	h.pwcPDE.encode(e)
	h.pwcPDPTE.encode(e)
	h.pwcPML4E.encode(e)
	h.stats.Encode(e)
}

// Decode is Encode's inverse, into a fresh receiver. On any decoder
// error the receiver must be discarded.
func (h *Hierarchy) Decode(d *ckpt.Decoder) {
	h.cfg.decode(d)
	h.l14k = new(setAssoc)
	h.l14k.decode(d)
	h.l12m = new(setAssoc)
	h.l12m.decode(d)
	h.stlb = new(setAssoc)
	h.stlb.decode(d)
	h.pwcPDE = new(setAssoc)
	h.pwcPDE.decode(d)
	h.pwcPDPTE = new(setAssoc)
	h.pwcPDPTE.decode(d)
	h.pwcPML4E = new(setAssoc)
	h.pwcPML4E.decode(d)
	h.stats.Decode(d)
	h.l14k.checkGeometry(d, h.cfg.L1D4K, "l14k")
	h.l12m.checkGeometry(d, h.cfg.L1D2M, "l12m")
	h.stlb.checkGeometry(d, h.cfg.STLB, "stlb")
	h.pwcPDE.checkGeometry(d, h.cfg.PWCPDE, "pwcPDE")
	h.pwcPDPTE.checkGeometry(d, h.cfg.PWCPDPTE, "pwcPDPTE")
	h.pwcPML4E.checkGeometry(d, h.cfg.PWCPML4E, "pwcPML4E")
}
