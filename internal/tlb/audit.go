package tlb

import "fmt"

// CheckInvariants validates the structural invariants of every array in
// the hierarchy and returns an error describing the first violation.
// The simcheck runtime sanitizer (check.Audit) calls it at policy
// boundaries; tests call it after operation sequences.
//
// Checked per set-associative structure:
//
//   - occupancy: each set holds at most `ways` valid entries (the tag
//     array is sets×ways, so a violation means index corruption);
//   - no duplicate tags within a set (a duplicate would make hit/evict
//     behaviour depend on way-scan order);
//   - set residency: a tag's key hashes to the set that holds it;
//   - LRU sanity: stamps never exceed the structure's clock, and
//     invalid ways carry a zero stamp.
func (h *Hierarchy) CheckInvariants() error {
	structs := []struct {
		name string
		s    *setAssoc
	}{
		{"l1d4k", h.l14k},
		{"l1d2m", h.l12m},
		{"stlb", h.stlb},
		{"pwc-pde", h.pwcPDE},
		{"pwc-pdpte", h.pwcPDPTE},
		{"pwc-pml4e", h.pwcPML4E},
	}
	for _, st := range structs {
		if err := st.s.checkInvariants(); err != nil {
			return fmt.Errorf("%s: %v", st.name, err)
		}
	}
	return nil
}

func (s *setAssoc) checkInvariants() error {
	if s.ways == 0 {
		if len(s.tags) != 0 {
			return fmt.Errorf("zero ways but %d tag slots", len(s.tags))
		}
		return nil
	}
	sets := int(s.setsMask) + 1
	if len(s.tags) != sets*s.ways || len(s.stamp) != sets*s.ways {
		return fmt.Errorf("geometry mismatch: %d sets × %d ways but %d tags, %d stamps",
			sets, s.ways, len(s.tags), len(s.stamp))
	}
	for set := 0; set < sets; set++ {
		base := set * s.ways
		occupied := 0
		for w := 0; w < s.ways; w++ {
			i := base + w
			tag := s.tags[i]
			if tag == 0 {
				if s.stamp[i] != 0 {
					return fmt.Errorf("set %d way %d: invalid entry with nonzero stamp %d", set, w, s.stamp[i])
				}
				continue
			}
			occupied++
			if got := int((tag - 1) & s.setsMask); got != set {
				return fmt.Errorf("set %d way %d: tag %#x belongs to set %d", set, w, tag, got)
			}
			if s.stamp[i] > s.clock {
				return fmt.Errorf("set %d way %d: stamp %d exceeds clock %d", set, w, s.stamp[i], s.clock)
			}
			for w2 := w + 1; w2 < s.ways; w2++ {
				if s.tags[base+w2] == tag {
					return fmt.Errorf("set %d: duplicate tag %#x in ways %d and %d", set, tag, w, w2)
				}
			}
		}
		if occupied > s.ways {
			return fmt.Errorf("set %d: occupancy %d exceeds associativity %d", set, occupied, s.ways)
		}
	}
	return nil
}
