package tlb

import (
	"testing"
	"testing/quick"

	"graphmem/internal/vm"
)

func TestHaswellGeometry(t *testing.T) {
	c := Haswell()
	if c.L1D4K.Entries != 64 || c.L1D2M.Entries != 32 || c.STLB.Entries != 1024 {
		t.Fatalf("unexpected Haswell geometry: %+v", c)
	}
	New(c) // must not panic
}

func TestScaledKeepsStructure(t *testing.T) {
	for _, div := range []int{1, 2, 4, 8, 16, 32, 3, 7, 100} {
		c := Scaled(Haswell(), div)
		New(c) // set counts must stay powers of two
		if c.L1D4K.Entries < 1 || c.STLB.Entries < 1 {
			t.Fatalf("div %d produced empty structure: %+v", div, c)
		}
	}
}

func TestLookupMissThenHit(t *testing.T) {
	h := New(Haswell())
	va := uint64(0x2000_0000)
	r := h.Lookup(va, vm.Page4K)
	if !r.Walked {
		t.Fatalf("first lookup = %+v, want walk", r)
	}
	h.Fill(va, vm.Page4K)
	r = h.Lookup(va+100, vm.Page4K) // same page
	if !r.L1Hit {
		t.Fatalf("post-fill lookup = %+v, want L1 hit", r)
	}
	s := h.Stats()
	if s.Lookups != 2 || s.L1Misses != 1 || s.STLBMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSizedArraysAreSeparate(t *testing.T) {
	h := New(Haswell())
	va := uint64(0x4000_0000) // 1GB: aligned for both page sizes
	h.Lookup(va, vm.Page4K)
	h.Fill(va, vm.Page4K)
	// The same address as a 2MB translation must not hit the 4K entry.
	r := h.Lookup(va, vm.Page2M)
	if r.L1Hit {
		t.Fatal("2M lookup hit the 4K entry")
	}
}

func TestL1Capacity4K(t *testing.T) {
	h := New(Haswell())
	// Fill far beyond L1 capacity with distinct pages.
	n := 64 * 4
	for i := 0; i < n; i++ {
		va := uint64(i) << 12
		h.Lookup(va, vm.Page4K)
		h.Fill(va, vm.Page4K)
	}
	h.ResetStats()
	// Re-touch: everything still fits in the STLB (1024 entries), so
	// lookups must be at worst STLB hits, and the oldest pages must
	// have been evicted from the 64-entry L1.
	var l1Hits int
	for i := 0; i < n; i++ {
		r := h.Lookup(uint64(i)<<12, vm.Page4K)
		if r.Walked {
			t.Fatalf("page %d walked despite STLB capacity", i)
		}
		if r.L1Hit {
			l1Hits++
		}
	}
	if l1Hits > 64 {
		t.Fatalf("%d L1 hits from a 64-entry L1", l1Hits)
	}
}

func TestSTLBEviction(t *testing.T) {
	h := New(Scaled(Haswell(), 16)) // STLB = 64 entries
	n := 64 * 8
	for i := 0; i < n; i++ {
		va := uint64(i) << 12
		if r := h.Lookup(va, vm.Page4K); r.Walked {
			h.Fill(va, vm.Page4K)
		}
	}
	h.ResetStats()
	for i := 0; i < n; i++ {
		h.Lookup(uint64(i)<<12, vm.Page4K)
	}
	if h.Stats().STLBMisses == 0 {
		t.Fatal("no STLB misses despite 8x capacity pressure")
	}
}

func TestLRUWithinSet(t *testing.T) {
	// Single-set fully-associative config for precise LRU checks.
	cfg := Config{
		Name:  "tiny",
		L1D4K: SetConfig{Entries: 4, Ways: 4},
		L1D2M: SetConfig{Entries: 1, Ways: 1},
		STLB:  SetConfig{Entries: 8, Ways: 8},
	}
	h := New(cfg)
	pages := []uint64{1, 2, 3, 4}
	for _, p := range pages {
		h.Lookup(p<<12, vm.Page4K)
		h.Fill(p<<12, vm.Page4K)
	}
	// Touch page 1 so page 2 becomes LRU, then insert page 5.
	h.Lookup(1<<12, vm.Page4K)
	h.Lookup(5<<12, vm.Page4K)
	h.Fill(5<<12, vm.Page4K)
	if r := h.Lookup(1<<12, vm.Page4K); !r.L1Hit {
		t.Fatal("recently used page 1 was evicted")
	}
	if r := h.Lookup(2<<12, vm.Page4K); r.L1Hit {
		t.Fatal("LRU page 2 survived eviction")
	}
}

func TestInvalidate(t *testing.T) {
	h := New(Haswell())
	va := uint64(0x12345000)
	h.Lookup(va, vm.Page4K)
	h.Fill(va, vm.Page4K)
	h.Invalidate(va, vm.Page4K)
	if r := h.Lookup(va, vm.Page4K); r.L1Hit || r.STLBHit {
		t.Fatalf("lookup after shootdown = %+v", r)
	}
}

func TestWalkCostLevels(t *testing.T) {
	h := New(Haswell())
	va := uint64(0x7000_1234_5678)
	memLv, pwcLv := h.WalkCost(va, vm.Page4K)
	if memLv != 4 || pwcLv != 0 {
		t.Fatalf("cold 4K walk = (%d,%d), want (4,0)", memLv, pwcLv)
	}
	// Second walk in the same 2MB region: PDE cached, 1 memory level.
	memLv, pwcLv = h.WalkCost(va+4096, vm.Page4K)
	if memLv != 1 || pwcLv != 3 {
		t.Fatalf("warm 4K walk = (%d,%d), want (1,3)", memLv, pwcLv)
	}
	h.Reset()
	memLv, _ = h.WalkCost(va, vm.Page2M)
	if memLv != 3 {
		t.Fatalf("cold 2M walk = %d memory levels, want 3", memLv)
	}
	// Same 1GB region: PDPTE cached → only the PDE fetch.
	memLv, pwcLv = h.WalkCost(va+2<<21, vm.Page2M)
	if memLv != 1 || pwcLv != 2 {
		t.Fatalf("warm 2M walk = (%d,%d), want (1,2)", memLv, pwcLv)
	}
}

func TestStatsRates(t *testing.T) {
	s := Stats{Lookups: 100, L1Misses: 30, STLBMisses: 10}
	if s.DTLBMissRate() != 0.3 || s.STLBMissRate() != 0.1 {
		t.Fatalf("rates = %v, %v", s.DTLBMissRate(), s.STLBMissRate())
	}
	var zero Stats
	if zero.DTLBMissRate() != 0 || zero.STLBMissRate() != 0 {
		t.Fatal("zero stats rates not zero")
	}
}

func TestResetClearsEverything(t *testing.T) {
	h := New(Haswell())
	va := uint64(0xABC000)
	h.Lookup(va, vm.Page4K)
	h.Fill(va, vm.Page4K)
	h.Reset()
	if s := h.Stats(); s.Lookups != 0 {
		t.Fatal("stats survived reset")
	}
	if r := h.Lookup(va, vm.Page4K); !r.Walked {
		t.Fatal("entry survived reset")
	}
}

// TestQuickFillThenHit: any filled translation must hit until something
// else could have evicted it; immediately after Fill, a lookup of the
// same page always hits L1.
func TestQuickFillThenHit(t *testing.T) {
	h := New(Haswell())
	f := func(page uint64, huge bool) bool {
		size := vm.Page4K
		if huge {
			size = vm.Page2M
		}
		va := (page % (1 << 36)) << 12
		h.Fill(va, size)
		r := h.Lookup(va, size)
		return r.L1Hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatsConsistent: misses never exceed lookups; walks never
// exceed L1 misses.
func TestQuickStatsConsistent(t *testing.T) {
	f := func(pages []uint32) bool {
		h := New(Scaled(Haswell(), 8))
		for _, p := range pages {
			va := uint64(p) << 12
			if r := h.Lookup(va, vm.Page4K); r.Walked {
				h.Fill(va, vm.Page4K)
			}
		}
		s := h.Stats()
		return s.L1Misses <= s.Lookups && s.STLBMisses <= s.L1Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
