package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AllRules returns the project rule table. IDs are stable: tests,
// fixtures, and review waivers refer to them by name.
func AllRules() []Rule {
	return []Rule{
		{
			ID:   "SL000",
			Name: "waiver",
			Doc: "//simlint:ignore directives must name a rule and carry a reason: " +
				"a waiver without a justification is a suppressed finding nobody " +
				"can review; malformed directives are findings themselves and " +
				"suppress nothing",
			Check: checkWaiverDirectives,
		},
		{
			ID:   "SL001",
			Name: "wallclock",
			Doc: "no time.Now/Since/Until in simulation packages: simulated time " +
				"is cycle counts; wall-clock reads make runs irreproducible",
			Applies: internalOnly,
			Check:   checkWallclock,
		},
		{
			ID:   "SL002",
			Name: "globalrand",
			Doc: "no global math/rand functions: randomness must flow through an " +
				"explicitly seeded *rand.Rand (or the project's SplitMix64) so " +
				"identical seeds give identical runs",
			Check: checkGlobalRand,
		},
		{
			ID:   "SL003",
			Name: "maprange",
			Doc: "no calls inside a range over a map in simulation packages: map " +
				"iteration order is randomized per process, so order-dependent " +
				"work must collect and sort keys first",
			Applies: internalOnly,
			Check:   checkMapRange,
		},
		{
			ID:   "SL004",
			Name: "rawcycle",
			Doc: "no raw cycle-count constants in arithmetic outside internal/cost: " +
				"latencies and penalties belong in the cost model where " +
				"experiments can vary them",
			Applies: func(path string) bool {
				return !strings.HasPrefix(path, ModulePath+"/internal/cost")
			},
			Check: checkRawCycle,
		},
		{
			ID:   "SL005",
			Name: "panic",
			Doc: "no bare panic in library packages: fail through " +
				"panic(check.Failf(...)) so tests and the simcheck sanitizer can " +
				"recognize simulator failures by type",
			Applies: func(path string) bool {
				return internalOnly(path) &&
					!strings.HasPrefix(path, ModulePath+"/internal/check")
			},
			Check: checkPanic,
		},
		{
			ID:   "SL006",
			Name: "suitecache",
			Doc: "no unsynchronized writes to Suite caches outside the promise API: " +
				"the experiment suite is shared by campaign workers, so its memo " +
				"state must live in sched.Cache promises — index-assigning or " +
				"deleting on a map-typed Suite field reintroduces the data race",
			Applies: internalOnly,
			Check:   checkSuiteCache,
		},
		{
			ID:   "SL007",
			Name: "fastpath",
			Doc: "no allocation risks in files tagged //simlint:fastpath: the " +
				"per-access engine's zero-alloc contract forbids append, map " +
				"writes, and closures capturing local variables there — " +
				"anything that can heap-allocate belongs in setup or slow-path " +
				"files",
			Applies: internalOnly,
			Check:   checkFastPath,
		},
		{
			ID:   "SL008",
			Name: "scalarstream",
			Doc: "no scalar Access loops over a constant address delta in files " +
				"tagged //simlint:fastpath: a loop whose post statement steps a " +
				"variable by a constant and whose body calls Access on an " +
				"address derived from that variable is a sequential stream " +
				"that belongs on the bulk AccessRun path",
			Applies: internalOnly,
			Check:   checkScalarStream,
		},
		{
			ID:   "SL009",
			Name: "gatherstream",
			Doc: "no scalar Access loops over collected VA slices in files " +
				"tagged //simlint:fastpath: a loop that walks a []uint64 of " +
				"addresses and dispatches each element through Access is the " +
				"irregular batch that belongs on the AccessGather path",
			Applies: internalOnly,
			Check:   checkGatherStream,
		},
		{
			ID:   "SL010",
			Name: "simpath",
			Doc: "no nondeterminism reachable from a simulation entrypoint: no " +
				"function transitively callable from core.Run, machine.Access*, " +
				"or the oskernel tick/fault handlers may read the wall clock, " +
				"consult global rand, or depend on map iteration order — the " +
				"interprocedural closure of SL001–SL003, with the full call " +
				"chain printed in each diagnostic",
			Applies: simEntrypointPackage,
			Check:   checkSimPath,
		},
		{
			ID:   "SL011",
			Name: "isolation",
			Doc: "no shared mutable package state on the simulation path: packages " +
				"reachable from the simulation entrypoints may not declare " +
				"package-level variables that are written after init, nor write " +
				"other packages' globals — the precondition for running pooled " +
				"Machine instances concurrently (sharded engine, service mode)",
			Applies: internalOnly,
			Check:   checkIsolation,
		},
		{
			ID:   "SL012",
			Name: "fastpath-reach",
			Doc: "functions called from files tagged //simlint:fastpath must be " +
				"allocation-free per the facts engine: SL007 polices the tagged " +
				"file's own body, this rule follows every call out of it " +
				"(transitively, panic paths exempt) so the zero-alloc contract " +
				"cannot leak through a helper",
			Applies: internalOnly,
			Check:   checkFastPathReach,
		},
		{
			ID:   "SL013",
			Name: "snapshot-completeness",
			Doc: "every Clone/Fork/Rebind method must reference every field of " +
				"its receiver struct (selector, composite-literal key, or " +
				"unkeyed literal), in its own body or a same-package function " +
				"it transitively reaches — a field the clone never mentions is " +
				"state a fork silently drops, the exact bug the snapshot " +
				"equivalence gate exists to catch; machine.Machine must have " +
				"a Fork method to anchor the contract",
			Applies: internalOnly,
			Check:   checkSnapshotCompleteness,
		},
		{
			ID:   "SL014",
			Name: "shard-isolation",
			Doc: "functions declared in files tagged //simlint:shardworker may not " +
				"reach a package-level state write: shard workers run " +
				"concurrently on scheduler goroutines between barriers, so any " +
				"global a worker (or anything it transitively calls) mutates is " +
				"shared across shards and breaks the deterministic merge — the " +
				"per-shard state vector is the only legal home for kernel-phase " +
				"state; diagnostics print the call chain, same as SL010",
			Applies: internalOnly,
			Check:   checkShardWorker,
		},
		{
			ID:   "SL015",
			Name: "codec-completeness",
			Doc: "every Encode/Decode (and encode/decode) method must reference " +
				"every field of its receiver struct (selector, composite-literal " +
				"key, or unkeyed literal), in its own body or a same-package " +
				"function it transitively reaches — a field a codec never " +
				"mentions is state a saved checkpoint silently drops, the exact " +
				"bug the reload equivalence gate exists to catch; " +
				"machine.Machine must have an Encode/Decode pair to anchor the " +
				"contract",
			Applies: internalOnly,
			Check:   checkCodecCompleteness,
		},
	}
}

// simEntrypointPackage restricts SL010 to the packages that define
// simulation entrypoints; its diagnostics still point anywhere the
// chains lead.
func simEntrypointPackage(path string) bool {
	switch path {
	case ModulePath + "/internal/core",
		ModulePath + "/internal/machine",
		ModulePath + "/internal/oskernel":
		return true
	}
	return false
}

// RuleByID returns the rule with the given ID, or false.
func RuleByID(id string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}

func internalOnly(path string) bool {
	return strings.HasPrefix(path, ModulePath+"/internal/")
}

// calleeFunc resolves the called function of a CallExpr, or nil when the
// callee is a builtin, a type conversion, or a function-typed value.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// inspectCalls visits every call expression in the pass's files.
func inspectCalls(p *Pass, visit func(call *ast.CallExpr)) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				visit(call)
			}
			return true
		})
	}
}

// --- SL001: wallclock ---------------------------------------------------

func checkWallclock(p *Pass) {
	inspectCalls(p, func(call *ast.CallExpr) {
		f := calleeFunc(p.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" {
			return
		}
		switch f.Name() {
		case "Now", "Since", "Until":
			p.Reportf(call.Pos(), "time.%s in simulation code: simulated time is cycle counts; wall-clock reads are irreproducible", f.Name())
		}
	})
}

// --- SL002: globalrand --------------------------------------------------

// globalRandAllowed lists the math/rand package-level functions that do
// not touch the shared global source: they construct the threaded state
// the rule wants callers to use.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func checkGlobalRand(p *Pass) {
	inspectCalls(p, func(call *ast.CallExpr) {
		f := calleeFunc(p.Info, call)
		if f == nil || f.Pkg() == nil {
			return
		}
		path := f.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // method on an explicit *rand.Rand: the sanctioned form
		}
		if globalRandAllowed[f.Name()] {
			return
		}
		p.Reportf(call.Pos(), "global rand.%s: thread an explicitly seeded *rand.Rand through the call path", f.Name())
	})
}

// --- SL003: maprange ----------------------------------------------------

func checkMapRange(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isOrderInsensitiveCall(p.Info, call) {
					return true
				}
				p.Reportf(call.Pos(), "call to %s inside range over map: iteration order is randomized; collect keys, sort, then iterate (append-then-sort is exempt)", types.ExprString(call.Fun))
				return true
			})
			return true
		})
	}
}

// isOrderInsensitiveCall reports whether a call inside a map-range body
// cannot leak iteration order into simulator state: builtins (append
// for the collect-then-sort pattern, delete, len, cap, make, ...) and
// type conversions.
func isOrderInsensitiveCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return true // conversion
	}
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// --- SL004: rawcycle ----------------------------------------------------

func checkRawCycle(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				switch e.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
				default:
					return true
				}
				if (cycleNamed(e.X) && rawIntLit(e.Y)) || (cycleNamed(e.Y) && rawIntLit(e.X)) {
					p.Reportf(e.Pos(), "raw cycle constant in %q: latency and penalty constants belong in internal/cost", types.ExprString(e))
				}
			case *ast.AssignStmt:
				switch e.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				default:
					return true
				}
				if len(e.Lhs) == 1 && len(e.Rhs) == 1 && cycleNamed(e.Lhs[0]) && rawIntLit(e.Rhs[0]) {
					p.Reportf(e.Pos(), "raw cycle constant in %q: latency and penalty constants belong in internal/cost",
						types.ExprString(e.Lhs[0])+" "+e.Tok.String()+" "+types.ExprString(e.Rhs[0]))
				}
			}
			return true
		})
	}
}

// cycleNamed reports whether expr is an identifier or field selection
// whose name mentions cycles.
func cycleNamed(expr ast.Expr) bool {
	var name string
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "cycle")
}

// rawIntLit reports whether expr is an integer literal ≥ 2 — the
// threshold exempts the shift/halving idioms (x*1, x/2 is borderline
// but /2 and *2 DO count; only 0 and 1 are structural).
func rawIntLit(expr ast.Expr) bool {
	lit, ok := ast.Unparen(expr).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return false
	}
	v, err := strconv.ParseUint(strings.ReplaceAll(lit.Value, "_", ""), 0, 64)
	return err == nil && v >= 2
}

// --- SL005: panic -------------------------------------------------------

func checkPanic(p *Pass) {
	inspectCalls(p, func(call *ast.CallExpr) {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" {
			return
		}
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return // shadowed: some local function named panic
		}
		if len(call.Args) == 1 && isCheckFailf(p.Info, call.Args[0]) {
			return
		}
		p.Reportf(call.Pos(), "bare panic in library package: use panic(check.Failf(...)) so failures carry a typed check.Failure")
	})
}

// --- SL006: suitecache --------------------------------------------------

// checkSuiteCache flags mutating accesses to map-typed fields of a type
// named Suite: `s.runs[k] = v` and `delete(s.graphs, k)`. Since the
// campaign scheduler landed, the experiment suite is shared across
// worker goroutines and all memoization must go through the sched.Cache
// promise API; a plain-map cache field is exactly the state such writes
// would race on. Reads are not flagged — the rule targets the mutation,
// which is what the promise cache removes.
func checkSuiteCache(p *Pass) {
	report := func(pos token.Pos, sel *ast.SelectorExpr, verb string) {
		p.Reportf(pos, "%s map-typed Suite cache field %s outside the promise API: use sched.Cache.Get so campaign workers cannot race",
			verb, types.ExprString(sel))
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range e.Lhs {
					idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
					if !ok {
						continue
					}
					if sel, ok := suiteMapField(p.Info, idx.X); ok {
						report(lhs.Pos(), sel, "write to")
					}
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(e.Fun).(*ast.Ident)
				if !ok || id.Name != "delete" || len(e.Args) != 2 {
					return true
				}
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if sel, ok := suiteMapField(p.Info, e.Args[0]); ok {
					report(e.Pos(), sel, "delete on")
				}
			}
			return true
		})
	}
}

// suiteMapField reports whether expr selects a map-typed field of a
// named type called Suite (directly or through a pointer).
func suiteMapField(info *types.Info, expr ast.Expr) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	if _, isMap := s.Type().Underlying().(*types.Map); !isMap {
		return nil, false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return sel, ok && named.Obj().Name() == "Suite"
}

// --- SL007: fastpath ----------------------------------------------------

// checkFastPath enforces the zero-alloc contract on files carrying a
// //simlint:fastpath directive comment (the per-access engine, e.g.
// internal/machine/access.go). Three allocation hazards are flagged:
// append calls (slice growth), map writes (insert/rehash), and function
// literals that capture local variables (the capture forces a heap
// closure). The AllocsPerRun test proves the contract holds today; this
// rule keeps regressions from compiling in silently.
func checkFastPath(p *Pass) {
	for _, file := range p.Files {
		if !hasFastPathDirective(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				id, ok := ast.Unparen(e.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					return true
				}
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					p.Reportf(e.Pos(), "append in fast-path file: slice growth can allocate per access; preallocate in setup code")
				}
			case *ast.AssignStmt:
				for _, lhs := range e.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(p.Info, idx) {
						p.Reportf(lhs.Pos(), "map write in fast-path file: map assignment can allocate and rehash per access; use preallocated arrays or slices")
					}
				}
			case *ast.IncDecStmt:
				if idx, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok && isMapIndex(p.Info, idx) {
					p.Reportf(e.Pos(), "map write in fast-path file: map assignment can allocate and rehash per access; use preallocated arrays or slices")
				}
			case *ast.FuncLit:
				reportClosureCaptures(p, e)
			}
			return true
		})
	}
}

// hasFastPathDirective reports whether the file carries a
// //simlint:fastpath comment (conventionally the first line).
func hasFastPathDirective(f *ast.File) bool {
	return hasFileDirective(f, "//simlint:fastpath")
}

// hasShardWorkerDirective reports whether the file carries a
// //simlint:shardworker comment — the tag on files whose functions run
// concurrently on shard worker goroutines (SL014).
func hasShardWorkerDirective(f *ast.File) bool {
	return hasFileDirective(f, "//simlint:shardworker")
}

// hasFileDirective reports whether any comment in the file is exactly
// the given directive (conventionally the first line).
func hasFileDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == directive {
				return true
			}
		}
	}
	return false
}

// isMapIndex reports whether idx indexes a map-typed operand.
func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	tv, ok := info.Types[idx.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// reportClosureCaptures flags local variables a function literal closes
// over: the capture forces both the closure and (usually) the variable
// onto the heap. Package-level variables and the literal's own
// parameters and locals (whose declarations sit inside the literal's
// source range) are free.
func reportClosureCaptures(p *Pass, lit *ast.FuncLit) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pkg() != p.Pkg || v.Parent() == p.Pkg.Scope() {
			return true // package-level or foreign: not a capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own parameter or local
		}
		seen[v] = true
		p.Reportf(id.Pos(), "closure capturing %q in fast-path file: captured locals escape to the heap; pass state explicitly or hoist the function", v.Name())
		return true
	})
}

// --- SL008: scalarstream ------------------------------------------------

// checkScalarStream keeps the engine honest about its own streams: in a
// //simlint:fastpath file, a for loop whose post statement advances a
// variable by a compile-time-constant step, with a body calling Access
// on an address derived from that variable, is exactly the sequential
// scan AccessRun coalesces — dispatching it scalar forfeits the bulk
// engine. Loops that step a plain counter while the address advances by
// a runtime stride in the body (AccessRun's own fallback shape) are not
// flagged: their post-updated variable never feeds the address.
func checkScalarStream(p *Pass) {
	for _, file := range p.Files {
		if !hasFastPathDirective(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Post == nil {
				return true
			}
			iv := postStepVar(p.Info, loop.Post)
			if iv == nil {
				return true
			}
			ast.Inspect(loop.Body, func(b ast.Node) bool {
				call, ok := b.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(p.Info, call)
				if f == nil || f.Name() != "Access" {
					return true
				}
				for _, arg := range call.Args {
					if !exprUsesVar(p.Info, arg, iv) {
						continue
					}
					if indexedUint64Slice(p.Info, arg, iv) {
						// The variable feeds the address through a
						// collected VA slice, not stride arithmetic:
						// that is SL009's gatherstream shape.
						continue
					}
					p.Reportf(call.Pos(), "scalar Access in a constant-stride loop over %q: a sequential stream belongs on the bulk AccessRun path", iv.Name())
					break
				}
				return true
			})
			return true
		})
	}
}

// --- SL009: gatherstream ------------------------------------------------

// checkGatherStream is checkScalarStream's irregular twin: in a
// //simlint:fastpath file, a loop that walks a []uint64 of collected
// addresses and dispatches each element through scalar Access is
// exactly the batch AccessGather coalesces. Both walking shapes are
// flagged: range statements over the slice (whether the body uses the
// value variable or indexes through the key), and for loops whose
// post-stepped variable indexes the slice. The engines' own
// precondition-gated fallback loops advance their index in the loop
// body, not the post statement — degradation must re-check batching
// preconditions per element, and that is the shape the rule exempts.
func checkGatherStream(p *Pass) {
	for _, file := range p.Files {
		if !hasFastPathDirective(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch loop := n.(type) {
			case *ast.RangeStmt:
				if !isUint64Slice(p.Info, loop.X) {
					return true
				}
				value := identVar(p.Info, loop.Value)
				key := identVar(p.Info, loop.Key)
				reportGatherAccess(p, loop.Body, func(arg ast.Expr) bool {
					return (value != nil && exprUsesVar(p.Info, arg, value)) ||
						(key != nil && indexedUint64Slice(p.Info, arg, key))
				})
			case *ast.ForStmt:
				if loop.Post == nil {
					return true
				}
				iv := postStepVar(p.Info, loop.Post)
				if iv == nil {
					return true
				}
				reportGatherAccess(p, loop.Body, func(arg ast.Expr) bool {
					return indexedUint64Slice(p.Info, arg, iv)
				})
			}
			return true
		})
	}
}

// reportGatherAccess flags every Access call in body that has an
// argument matching isVA.
func reportGatherAccess(p *Pass, body *ast.BlockStmt, isVA func(ast.Expr) bool) {
	ast.Inspect(body, func(b ast.Node) bool {
		call, ok := b.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(p.Info, call)
		if f == nil || f.Name() != "Access" {
			return true
		}
		for _, arg := range call.Args {
			if isVA(arg) {
				p.Reportf(call.Pos(), "scalar Access over a collected VA slice: an irregular batch belongs on the AccessGather path")
				break
			}
		}
		return true
	})
}

// isUint64Slice reports whether expr's type is (or underlies) []uint64
// — the address-slice type every gather batch uses.
func isUint64Slice(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	s, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// indexedUint64Slice reports whether expr contains an index into a
// []uint64-typed operand whose index expression mentions v.
func indexedUint64Slice(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if idx, ok := n.(*ast.IndexExpr); ok &&
			isUint64Slice(info, idx.X) && exprUsesVar(info, idx.Index, v) {
			found = true
		}
		return !found
	})
	return found
}

// postStepVar returns the variable a loop post statement advances by a
// compile-time-constant step (i++, i--, a += 64), or nil when the step
// is not constant or the statement has another shape.
func postStepVar(info *types.Info, post ast.Stmt) *types.Var {
	switch s := post.(type) {
	case *ast.IncDecStmt:
		return identVar(info, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return nil
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
		default:
			return nil
		}
		if tv, ok := info.Types[s.Rhs[0]]; !ok || tv.Value == nil {
			return nil // step is not a compile-time constant
		}
		return identVar(info, s.Lhs[0])
	}
	return nil
}

// identVar resolves expr to the variable it names, or nil.
func identVar(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Defs[id].(*types.Var)
	return v
}

// exprUsesVar reports whether expr mentions v.
func exprUsesVar(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == types.Object(v) {
			found = true
		}
		return !found
	})
	return found
}

// isCheckFailf reports whether expr is a call to
// graphmem/internal/check.Failf.
func isCheckFailf(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	f := calleeFunc(info, call)
	return f != nil && f.Name() == "Failf" &&
		f.Pkg() != nil && f.Pkg().Path() == ModulePath+"/internal/check"
}
