package lint

// SL015: codec completeness — SL013's twin for the persistence layer.
// The persistent checkpoint store's correctness argument (DESIGN.md
// §5e) is that Encode/Decode pairs serialize the *entire* state vector
// of their receiver: a field an encoder never mentions is state a
// reloaded checkpoint silently loses, and the differential reload gate
// only catches that for state the campaign happens to exercise. This
// rule closes the gap statically, exactly as SL013 does for forks: for
// every struct with a codec method declared in the pass's package, each
// declared field must be referenced — selector read/write, composite-
// literal key, or unkeyed literal — inside the method or inside a
// same-package function the method transitively reaches. A field a
// codec deliberately skips (rebuilt by Decode, bound by the caller,
// forbidden live state guarded by Failf) still satisfies the rule by
// being mentioned (`_ = x.field` with a comment, or an explicit zero
// assignment); a field the codec has never heard of does not.

// isCodecMethodName reports the method names that promise an exhaustive
// serialization (or deserialization) of their receiver's state. The
// unexported spellings cover internal codecs like machine.shardState's.
func isCodecMethodName(name string) bool {
	switch name {
	case "Encode", "encode", "Decode", "decode":
		return true
	}
	return false
}

// checkCodecCompleteness verifies every codec method declared in the
// package mentions every field of its receiver struct, and anchors the
// contract by requiring that machine.Machine — the root of the
// serialized object graph — has both an Encode and a Decode method.
func checkCodecCompleteness(p *Pass) {
	targets, decls := methodTargets(p, isCodecMethodName)

	// Anchor: the machine package must expose Machine.Encode and
	// Machine.Decode. Without this, deleting the persistence layer
	// wholesale would also delete every struct this rule checks, and
	// the rule would pass vacuously.
	if p.Path == ModulePath+"/internal/machine" {
		var enc, dec bool
		for _, t := range targets {
			if t.named.Obj().Name() == "Machine" {
				switch t.fn.Name() {
				case "Encode":
					enc = true
				case "Decode":
					dec = true
				}
			}
		}
		if !enc || !dec {
			if pos := typeDeclPos(p, "Machine"); pos.IsValid() {
				p.Reportf(pos, "machine.Machine lacks an Encode/Decode pair: the persistence layer's root codec is missing (SL015's completeness contract has nothing to anchor to)")
			}
		}
	}

	reportUnmentionedFields(p, targets, decls,
		"field %s.%s is never referenced by %s or any same-package function it reaches: a saved checkpoint would silently drop it; serialize it (or mention it with a deliberate zero/rebuild and a comment)")
}
