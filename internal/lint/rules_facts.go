package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The interprocedural rules: thin consumers of the facts engine
// (callgraph.go, facts.go). All three report through Runner.reportOnce,
// since several passes — or several entrypoints — can derive the same
// finding.

// --- SL010: simpath -----------------------------------------------------

// checkSimPath walks the summaries of every simulation entrypoint
// declared in the pass's package and reports each reachable
// nondeterminism source once, with the shortest call chain from the
// entrypoint. Diagnostics anchor at the offending construct (where
// SL001–SL003 would fire file-locally), and waiverCovers (waiver.go)
// makes a waiver for the local rule suppress this one at the same
// line, so a single reviewed directive clears both findings.
func checkSimPath(p *Pass) {
	fe := p.runner.factsEngine()
	const det = factWallclock | factGlobalRand | factMapRange
	for _, ep := range fe.entrypoints {
		n := ep.node
		if n.pkg != p.Pkg || n.summary&det == 0 {
			continue
		}
		for _, c := range fe.findChains(n, det) {
			key := "SL010|" + p.Fset.Position(c.source.pos).String() + "|" + c.source.desc
			if !p.runner.reportOnce(key) {
				continue
			}
			p.Reportf(c.source.pos, "%s reachable from simulation entrypoint %s: %s",
				factName(c.fact), n.name, c.chainString())
		}
	}
}

// --- SL011: isolation ---------------------------------------------------

// checkIsolation enforces state isolation on simulation-path packages
// (those with functions reachable from the entrypoints): no
// package-level variable written after init may be declared there, and
// no function there may write another package's globals. Variables only
// ever assigned in init (or by their initializers) are effectively
// immutable and exempt — lookup tables stay legal.
func checkIsolation(p *Pass) {
	fe := p.runner.factsEngine()
	if !fe.simPathPkgs[p.Path] {
		return
	}
	g := fe.graph

	// Declarations in this package that some module function mutates.
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					v, ok := p.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					sites := g.writes[v]
					if len(sites) == 0 {
						continue
					}
					p.Reportf(name.Pos(), "package-level var %q on the simulation path is written by %s: pooled Machine instances would share it; move the state into a struct",
						name.Name, writerList(sites))
				}
			}
		}
	}

	// Writes from this package's functions to globals declared outside
	// the simulation-path module packages (stdlib included); breaches
	// of sim-path-declared vars are reported at their declaration.
	for _, v := range g.sortedWrittenVars() {
		if v.Pkg() != nil && fe.simPathPkgs[v.Pkg().Path()] {
			continue
		}
		for _, site := range g.writes[v] {
			if site.node.pkg != p.Pkg {
				continue
			}
			p.Reportf(site.pos, "write to package-level var %s.%s from the simulation path: pooled Machine instances would share it; thread the state through a struct",
				v.Pkg().Name(), v.Name())
		}
	}
}

// writerList names up to three writing functions for an SL011 message.
func writerList(sites []writeSite) string {
	var names []string
	seen := make(map[string]bool)
	for _, s := range sites {
		if !seen[s.node.name] {
			seen[s.node.name] = true
			names = append(names, s.node.name)
		}
	}
	if len(names) > 3 {
		names = append(names[:3], fmt.Sprintf("and %d more", len(names)-3))
	}
	return strings.Join(names, ", ")
}

// --- SL012: fastpath-reach ----------------------------------------------

// checkFastPathReach closes SL007's gap: every call out of a
// //simlint:fastpath file must land on a function that is transitively
// allocation-free (panic paths exempt). The diagnostic anchors at the
// call site in the tagged file — the boundary where a waiver, if the
// escape is architectural (fault handling, observer fan-out), belongs.
func checkFastPathReach(p *Pass) {
	fastFiles := make(map[string]bool)
	for _, file := range p.Files {
		if hasFastPathDirective(file) {
			fastFiles[p.Fset.Position(file.Pos()).Filename] = true
		}
	}
	if len(fastFiles) == 0 {
		return
	}
	fe := p.runner.factsEngine()
	for _, n := range fe.graph.nodes {
		if n.pkg != p.Pkg || !fastFiles[p.Fset.Position(n.pos).Filename] {
			continue
		}
		for _, e := range n.out {
			if e.panicArg || e.to.summary&factAllocates == 0 {
				continue
			}
			chain, ok := fe.allocationChain(e.to)
			if !ok {
				continue
			}
			key := "SL012|" + p.Fset.Position(e.pos).String() + "|" + e.to.name
			if !p.runner.reportOnce(key) {
				continue
			}
			p.Reportf(e.pos, "call to %s from a fast-path file can allocate (%s): the zero-alloc contract extends to everything the fast path calls",
				e.to.name, chain.chainString())
		}
	}
}

// --- SL014: shard-isolation ---------------------------------------------

// checkShardWorker enforces state isolation on shard worker bodies:
// functions declared in a //simlint:shardworker file run concurrently
// on scheduler goroutines between barriers (the sharded machine
// engine's kernel phase), so neither they nor anything they
// transitively call may write package-level state — a global one shard
// mutates is visible to every other shard, and the merge stops being a
// pure reduction over per-shard state. Like SL010, each diagnostic
// anchors at the offending write and prints the shortest call chain
// from the worker function that reaches it.
func checkShardWorker(p *Pass) {
	shardFiles := make(map[string]bool)
	for _, file := range p.Files {
		if hasShardWorkerDirective(file) {
			shardFiles[p.Fset.Position(file.Pos()).Filename] = true
		}
	}
	if len(shardFiles) == 0 {
		return
	}
	fe := p.runner.factsEngine()
	for _, n := range fe.graph.nodes {
		if n.pkg != p.Pkg || !shardFiles[p.Fset.Position(n.pos).Filename] {
			continue
		}
		if n.summary&factWritesGlobal == 0 {
			continue
		}
		for _, c := range fe.findChains(n, factWritesGlobal) {
			key := "SL014|" + p.Fset.Position(c.source.pos).String() + "|" + c.source.desc
			if !p.runner.reportOnce(key) {
				continue
			}
			p.Reportf(c.source.pos, "%s reachable from shard worker %s: shards run this concurrently, so shared globals break the deterministic merge: %s",
				factName(c.fact), n.name, c.chainString())
		}
	}
}
