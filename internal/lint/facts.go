package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// This file is the fixpoint layer over the call graph (callgraph.go):
// per-function facts, their propagation to a module-wide fixed point,
// simulation entrypoints, and the chain explainer behind SL010's
// diagnostics and `simlint -why`.
//
// The fact lattice is a five-bit powerset ordered by inclusion; each
// function's summary is its intrinsic facts joined with the summaries
// of everything it may call, so propagation is monotone and the
// iteration terminates. The single refinement: the allocates fact does
// not cross panic-argument edges — code building a panic value never
// returns, so its allocations cannot break the fast path's steady-state
// zero-alloc contract.

// factSet is a set of function facts.
type factSet uint8

const (
	// factWallclock: may read the wall clock (time.Now/Since/Until).
	factWallclock factSet = 1 << iota
	// factGlobalRand: may consult global math/rand state.
	factGlobalRand
	// factMapRange: may do order-dependent work inside a range over a
	// map (randomized iteration order).
	factMapRange
	// factWritesGlobal: may write package-level state after init.
	factWritesGlobal
	// factAllocates: may heap-allocate on a non-panicking path.
	factAllocates
)

// factName renders one fact bit for messages and -why output.
func factName(f factSet) string {
	switch f {
	case factWallclock:
		return "wall-clock read"
	case factGlobalRand:
		return "global rand"
	case factMapRange:
		return "map-iteration-order dependence"
	case factWritesGlobal:
		return "package-level state write"
	case factAllocates:
		return "allocation"
	}
	return fmt.Sprintf("fact(%d)", f)
}

// factSource ties an intrinsic fact to the source construct that
// produces it.
type factSource struct {
	fact factSet
	pos  token.Pos
	desc string
}

// simEntrypoint is one function the simulation path starts at.
type simEntrypoint struct {
	node *graphNode
}

// factsEngine owns one built-and-solved call graph.
type factsEngine struct {
	graph       *callGraph
	entrypoints []simEntrypoint
	// simPathPkgs holds the import paths of packages containing at
	// least one function reachable from a simulation entrypoint — the
	// packages SL011's isolation requirement covers.
	simPathPkgs map[string]bool
}

// factsEngine returns the engine for the runner's currently loaded
// package set, rebuilding it only when new packages have been loaded
// since the last build.
func (r *Runner) factsEngine() *factsEngine {
	if r.fe != nil && r.feGen == r.gen {
		return r.fe
	}
	var pkgs []loadedPkg
	paths := make([]string, 0, len(r.pkgs))
	for path := range r.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		c := r.pkgs[path]
		if c == nil || c.err != nil || c.pkg == nil {
			continue
		}
		pkgs = append(pkgs, loadedPkg{path: path, pkg: c.pkg, files: c.files, info: c.info})
	}
	fe := &factsEngine{graph: buildCallGraph(r.fset, pkgs)}
	fe.solve()
	fe.findEntrypoints()
	r.fe, r.feGen = fe, r.gen
	return fe
}

// solve iterates summaries to the least fixed point.
func (fe *factsEngine) solve() {
	nodes := fe.graph.nodes
	for _, n := range nodes {
		n.summary = n.intrinsicSet()
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			s := n.summary
			for _, e := range n.out {
				cs := e.to.summary
				if e.panicArg {
					cs &^= factAllocates
				}
				s |= cs
			}
			if s != n.summary {
				n.summary = s
				changed = true
			}
		}
	}
}

// isSimEntrypointFunc reports whether a declared function is one of the
// simulation entrypoints the paper's reproducibility argument rests on:
// core.Run, the machine's Access* family, and the kernel's tick/fault
// handlers.
func isSimEntrypointFunc(pkgPath, name string) bool {
	switch pkgPath {
	case ModulePath + "/internal/core":
		return name == "Run"
	case ModulePath + "/internal/machine":
		return strings.HasPrefix(name, "Access")
	case ModulePath + "/internal/oskernel":
		return name == "Tick" || name == "HandleFault" || name == "NextTickAt"
	}
	return false
}

// findEntrypoints collects entrypoint nodes and the packages reachable
// from them.
func (fe *factsEngine) findEntrypoints() {
	fe.simPathPkgs = make(map[string]bool)
	var roots []*graphNode
	for _, n := range fe.graph.nodes {
		if n.fn == nil || n.fn.Pkg() == nil {
			continue
		}
		if isSimEntrypointFunc(n.fn.Pkg().Path(), n.fn.Name()) {
			fe.entrypoints = append(fe.entrypoints, simEntrypoint{node: n})
			roots = append(roots, n)
		}
	}
	seen := make(map[*graphNode]bool)
	queue := roots
	for _, n := range queue {
		seen[n] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		fe.simPathPkgs[n.pkg.Path()] = true
		for _, e := range n.out {
			if !seen[e.to] {
				seen[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
}

// chainFinding is one explained fact: the shortest call path from a
// root to a function whose body produces the fact intrinsically.
type chainFinding struct {
	fact   factSet
	path   []*graphNode // root first, producing function last
	source factSource
}

// chainString renders "a → b → c calls/does <desc>".
func (c chainFinding) chainString() string {
	names := make([]string, len(c.path))
	for i, n := range c.path {
		names[i] = n.name
	}
	return strings.Join(names, " → ") + ": " + c.source.desc
}

// findChains BFSes from root and returns one shortest chain per
// intrinsic fact source of the requested kinds, in deterministic
// (breadth-first, then source-order) order. For factAllocates,
// panic-argument edges are not traversed.
func (fe *factsEngine) findChains(root *graphNode, facts factSet) []chainFinding {
	type item struct {
		n    *graphNode
		path []*graphNode
	}
	var out []chainFinding
	seen := map[*graphNode]bool{root: true}
	queue := []item{{n: root, path: []*graphNode{root}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, src := range it.n.intrinsic {
			if src.fact&facts != 0 {
				out = append(out, chainFinding{fact: src.fact, path: it.path, source: src})
			}
		}
		for _, e := range it.n.out {
			remaining := facts
			if e.panicArg {
				remaining &^= factAllocates
			}
			if seen[e.to] || e.to.summary&remaining == 0 {
				continue
			}
			seen[e.to] = true
			path := make([]*graphNode, len(it.path), len(it.path)+1)
			copy(path, it.path)
			queue = append(queue, item{n: e.to, path: append(path, e.to)})
		}
	}
	return out
}

// allocationChain returns the shortest allocation chain from node, or
// false when node cannot allocate outside panic paths.
func (fe *factsEngine) allocationChain(n *graphNode) (chainFinding, bool) {
	if n.summary&factAllocates == 0 {
		return chainFinding{}, false
	}
	chains := fe.findChains(n, factAllocates)
	if len(chains) == 0 {
		return chainFinding{}, false
	}
	return chains[0], true
}

// ruleFacts maps the interprocedural rule IDs onto the facts they
// consult, for `simlint -why`.
func ruleFacts(ruleID string) (factSet, bool) {
	switch ruleID {
	case "SL010":
		return factWallclock | factGlobalRand | factMapRange, true
	case "SL011":
		return factWritesGlobal, true
	case "SL012":
		return factAllocates, true
	case "SL014":
		return factWritesGlobal, true
	}
	return 0, false
}

// Explain renders why ruleID's facts hold (or do not) for every loaded
// function matching pattern — the engine behind `simlint -why
// SLxxx:func`. Patterns match display names exactly or by suffix:
// "Run", "core.Run", and "(*Machine).Access" all work.
func (r *Runner) Explain(ruleID, pattern string) ([]string, error) {
	facts, ok := ruleFacts(ruleID)
	if !ok {
		return nil, fmt.Errorf("lint: -why supports the interprocedural rules SL010, SL011, SL012, SL014; %q is not one", ruleID)
	}
	fe := r.factsEngine()
	var matched []*graphNode
	for _, n := range fe.graph.nodes {
		if n.matchName(pattern) {
			matched = append(matched, n)
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("lint: no loaded function matches %q", pattern)
	}
	var lines []string
	for _, n := range matched {
		lines = append(lines, fmt.Sprintf("%s (%s)", n.name, r.fset.Position(n.pos)))
		chains := fe.findChains(n, facts)
		if len(chains) == 0 {
			lines = append(lines, fmt.Sprintf("  clean: no %s fact is reachable", ruleID))
			continue
		}
		for _, c := range chains {
			lines = append(lines, fmt.Sprintf("  %s: %s (%s)",
				factName(c.fact), c.chainString(), r.fset.Position(c.source.pos)))
		}
	}
	return lines, nil
}
