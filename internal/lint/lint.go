// Package lint implements simlint, the project's determinism linter.
//
// The simulator's central contract is that identical call sequences
// produce identical physical layouts and statistics — the paper's
// experiments are only reproducible if nothing in the simulation path
// consults wall-clock time, global random state, or Go's randomized map
// iteration order. simlint enforces that contract statically, plus two
// hygiene rules (cost constants live in internal/cost; library packages
// fail through check.Failf, never bare panic) and one concurrency rule
// (experiment-suite caches mutate only through the sched.Cache promise
// API, never as plain maps), and three performance-contract rules
// (files tagged //simlint:fastpath stay free of allocation risks, never
// dispatch a constant-stride access stream through the scalar path, and
// never walk a collected VA slice through scalar Access instead of the
// gather path).
//
// Each rule is a table entry with a stable ID (SL001…SL009) so tests
// can seed violations in testdata fixtures and assert exact
// diagnostics, and so waivers in code review can name the rule they
// waive. Test files are exempt from every rule: tests may time
// themselves, seed global rand, or panic freely.
//
// The implementation is stdlib-only (go/parser, go/types, go/build,
// go/importer) — no analysis framework dependency. Type information is
// required: the rules must distinguish `time.Now` the stdlib function
// from a local identifier that happens to be called "time", and a
// *rand.Rand method from a math/rand package-level function.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath is the import-path root of the project this linter serves.
const ModulePath = "graphmem"

// Diagnostic is one finding, addressed by rule ID and source position.
type Diagnostic struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule is one table-driven check.
type Rule struct {
	ID   string
	Name string
	Doc  string

	// Applies reports whether the rule runs on the package with the
	// given import path. Nil means module-wide.
	Applies func(pkgPath string) bool

	Check func(p *Pass)
}

// Pass hands one type-checked package to a rule's Check.
type Pass struct {
	Fset  *token.FileSet
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	rule  Rule
	diags *[]Diagnostic
}

// Reportf records a finding at pos under the pass's rule ID.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule: p.rule.ID,
		Pos:  p.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Runner loads, type-checks and lints packages of the module rooted at
// ModuleRoot. It caches type-checked packages, so linting the whole
// tree type-checks each package (and each stdlib dependency) once.
type Runner struct {
	ModuleRoot string
	Rules      []Rule

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*checked
}

type checked struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

// NewRunner builds a runner over the module rooted at moduleRoot (the
// directory holding go.mod).
func NewRunner(moduleRoot string) *Runner {
	fset := token.NewFileSet()
	return &Runner{
		ModuleRoot: moduleRoot,
		Rules:      AllRules(),
		fset:       fset,
		// The "source" importer type-checks stdlib dependencies from
		// $GOROOT source — no export data or network required.
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*checked),
	}
}

// Import implements types.Importer: module-internal paths are loaded
// recursively from ModuleRoot; everything else (stdlib) is delegated to
// the source importer. This chaining is what lets fixtures and real
// packages import graphmem/internal/check during type-checking.
func (r *Runner) Import(path string) (*types.Package, error) {
	if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
		c := r.load(path, r.dirFor(path))
		return c.pkg, c.err
	}
	return r.std.Import(path)
}

func (r *Runner) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, ModulePath), "/")
	return filepath.Join(r.ModuleRoot, filepath.FromSlash(rel))
}

// load parses and type-checks the package in dir under importPath,
// memoizing by import path. Only non-test files selected by the default
// build context are considered — matching what `go build` compiles, and
// making test files exempt from every rule.
func (r *Runner) load(importPath, dir string) *checked {
	if c, ok := r.pkgs[importPath]; ok {
		if c == nil {
			return &checked{err: fmt.Errorf("lint: import cycle through %s", importPath)}
		}
		return c
	}
	r.pkgs[importPath] = nil // cycle sentinel
	c := r.loadUncached(importPath, dir)
	r.pkgs[importPath] = c
	return c
}

func (r *Runner) loadUncached(importPath, dir string) *checked {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return &checked{err: fmt.Errorf("lint: %s: %v", importPath, err)}
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		// ParseComments is needed for the file-level lint directives
		// (//simlint:fastpath, consumed by SL007).
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, name), nil,
			parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return &checked{err: fmt.Errorf("lint: %v", err)}
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	cfg := types.Config{
		Importer: r,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := cfg.Check(importPath, r.fset, files, info)
	if err == nil {
		err = firstErr
	}
	if err != nil {
		return &checked{err: fmt.Errorf("lint: typecheck %s: %v", importPath, err)}
	}
	return &checked{pkg: pkg, files: files, info: info}
}

// LintDir lints the package found in dir as if its import path were
// importPath (which decides which rules apply — testdata fixtures use
// this to impersonate internal/ packages).
func (r *Runner) LintDir(importPath, dir string) ([]Diagnostic, error) {
	c := r.load(importPath, dir)
	if c.err != nil {
		return nil, c.err
	}
	var diags []Diagnostic
	for _, rule := range r.Rules {
		if rule.Applies != nil && !rule.Applies(importPath) {
			continue
		}
		p := &Pass{
			Fset: r.fset, Path: importPath,
			Files: c.files, Pkg: c.pkg, Info: c.info,
			rule: rule, diags: &diags,
		}
		rule.Check(p)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// LintTree lints every package under root (a directory inside the
// module), skipping testdata, vendor, and hidden directories. Hard
// errors (unparsable or untypeable packages) are returned alongside any
// diagnostics gathered before the failure.
func (r *Runner) LintTree(root string) ([]Diagnostic, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		rel, err := filepath.Rel(r.ModuleRoot, dir)
		if err != nil {
			return diags, err
		}
		importPath := ModulePath
		if rel != "." {
			importPath = ModulePath + "/" + filepath.ToSlash(rel)
		}
		ds, err := r.LintDir(importPath, dir)
		if err != nil {
			if _, ok := errNoGo(err); ok {
				continue // directory without buildable Go files
			}
			return diags, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func errNoGo(err error) (*build.NoGoError, bool) {
	for e := err; e != nil; {
		if ng, ok := e.(*build.NoGoError); ok {
			return ng, true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			break
		}
		e = u.Unwrap()
	}
	// fmt.Errorf with %v does not wrap; fall back to the message.
	if strings.Contains(err.Error(), "no buildable Go source files") ||
		strings.Contains(err.Error(), "no Go files in") {
		return nil, true
	}
	return nil, false
}

// packageDirs walks root collecting directories that contain at least
// one .go file, skipping testdata, vendor, results, and hidden dirs.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	var walk func(dir string) error
	walk = func(dir string) error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() {
				if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor" || name == "results" {
					continue
				}
				if err := walk(filepath.Join(dir, name)); err != nil {
					return err
				}
				continue
			}
			if strings.HasSuffix(name, ".go") {
				hasGo = true
			}
		}
		if hasGo {
			dirs = append(dirs, dir)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
