// Package lint implements simlint, the project's determinism linter.
//
// The simulator's central contract is that identical call sequences
// produce identical physical layouts and statistics — the paper's
// experiments are only reproducible if nothing in the simulation path
// consults wall-clock time, global random state, or Go's randomized map
// iteration order. simlint enforces that contract statically, plus two
// hygiene rules (cost constants live in internal/cost; library packages
// fail through check.Failf, never bare panic) and one concurrency rule
// (experiment-suite caches mutate only through the sched.Cache promise
// API, never as plain maps), and three performance-contract rules
// (files tagged //simlint:fastpath stay free of allocation risks, never
// dispatch a constant-stride access stream through the scalar path, and
// never walk a collected VA slice through scalar Access instead of the
// gather path).
//
// Each rule is a table entry with a stable ID (SL001…SL014) so tests
// can seed violations in testdata fixtures and assert exact
// diagnostics, and so waivers in code review can name the rule they
// waive. Test files are exempt from every rule: tests may time
// themselves, seed global rand, or panic freely.
//
// The implementation is stdlib-only (go/parser, go/types, go/build,
// go/importer) — no analysis framework dependency. Type information is
// required: the rules must distinguish `time.Now` the stdlib function
// from a local identifier that happens to be called "time", and a
// *rand.Rand method from a math/rand package-level function.
package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath is the import-path root of the project this linter serves.
const ModulePath = "graphmem"

// Diagnostic is one finding, addressed by rule ID and source position.
type Diagnostic struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule is one table-driven check.
type Rule struct {
	ID   string
	Name string
	Doc  string

	// Applies reports whether the rule runs on the package with the
	// given import path. Nil means module-wide.
	Applies func(pkgPath string) bool

	Check func(p *Pass)
}

// Pass hands one type-checked package to a rule's Check.
type Pass struct {
	Fset  *token.FileSet
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	rule   Rule
	diags  *[]Diagnostic
	runner *Runner
}

// Reportf records a finding at pos under the pass's rule ID.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule: p.rule.ID,
		Pos:  p.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Runner loads, type-checks and lints packages of the module rooted at
// ModuleRoot. It caches type-checked packages, so linting the whole
// tree type-checks each package (and each stdlib dependency) once.
type Runner struct {
	ModuleRoot string
	Rules      []Rule

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*checked

	// gen counts successful package loads; the facts engine (facts.go)
	// caches its call graph against it and rebuilds only when new
	// packages have been type-checked since the last build.
	gen   int
	fe    *factsEngine
	feGen int

	// waivers and badWaivers index //simlint:ignore directives by
	// filename (waiver.go), populated at parse time so interprocedural
	// diagnostics pointing into dependency packages honor them too.
	waivers    map[string][]waiver
	badWaivers map[string][]badWaiver

	// reported dedupes interprocedural findings: SL010/SL012/SL014 may
	// derive the same finding from several entrypoints or passes.
	reported map[string]bool
}

type checked struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

// NewRunner builds a runner over the module rooted at moduleRoot (the
// directory holding go.mod).
func NewRunner(moduleRoot string) *Runner {
	fset := token.NewFileSet()
	return &Runner{
		ModuleRoot: moduleRoot,
		Rules:      AllRules(),
		fset:       fset,
		// The "source" importer type-checks stdlib dependencies from
		// $GOROOT source — no export data or network required.
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*checked),
		waivers:    make(map[string][]waiver),
		badWaivers: make(map[string][]badWaiver),
		reported:   make(map[string]bool),
	}
}

// Import implements types.Importer: module-internal paths are loaded
// recursively from ModuleRoot; everything else (stdlib) is delegated to
// the source importer. This chaining is what lets fixtures and real
// packages import graphmem/internal/check during type-checking.
func (r *Runner) Import(path string) (*types.Package, error) {
	if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
		c := r.load(path, r.dirFor(path))
		return c.pkg, c.err
	}
	return r.std.Import(path)
}

func (r *Runner) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, ModulePath), "/")
	return filepath.Join(r.ModuleRoot, filepath.FromSlash(rel))
}

// load parses and type-checks the package in dir under importPath,
// memoizing by import path. Only non-test files selected by the default
// build context are considered — matching what `go build` compiles, and
// making test files exempt from every rule.
func (r *Runner) load(importPath, dir string) *checked {
	if c, ok := r.pkgs[importPath]; ok {
		if c == nil {
			return &checked{err: fmt.Errorf("lint: import cycle through %s", importPath)}
		}
		return c
	}
	r.pkgs[importPath] = nil // cycle sentinel
	c := r.loadUncached(importPath, dir)
	r.pkgs[importPath] = c
	r.gen++ // invalidate the cached facts engine
	return c
}

func (r *Runner) loadUncached(importPath, dir string) *checked {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return &checked{err: fmt.Errorf("lint: %s: %w", importPath, err)}
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		// The source is read here (not left to the parser) because the
		// waiver index needs the raw lines to tell trailing directives
		// from standalone ones.
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return &checked{err: fmt.Errorf("lint: %w", err)}
		}
		// ParseComments is needed for the file-level lint directives
		// (//simlint:fastpath consumed by SL007, //simlint:ignore
		// waivers).
		f, err := parser.ParseFile(r.fset, path, src,
			parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return &checked{err: fmt.Errorf("lint: %w", err)}
		}
		r.indexWaivers(f, src)
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	cfg := types.Config{
		Importer: r,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := cfg.Check(importPath, r.fset, files, info)
	if err == nil {
		err = firstErr
	}
	if err != nil {
		return &checked{err: fmt.Errorf("lint: typecheck %s: %w", importPath, err)}
	}
	return &checked{pkg: pkg, files: files, info: info}
}

// LintDir lints the package found in dir as if its import path were
// importPath (which decides which rules apply — testdata fixtures use
// this to impersonate internal/ packages).
func (r *Runner) LintDir(importPath, dir string) ([]Diagnostic, error) {
	c := r.load(importPath, dir)
	if c.err != nil {
		return nil, c.err
	}
	var diags []Diagnostic
	for _, rule := range r.Rules {
		if rule.Applies != nil && !rule.Applies(importPath) {
			continue
		}
		p := &Pass{
			Fset: r.fset, Path: importPath,
			Files: c.files, Pkg: c.pkg, Info: c.info,
			rule: rule, diags: &diags, runner: r,
		}
		rule.Check(p)
	}
	diags = r.applyWaivers(diags)
	sortDiagnostics(diags)
	return diags, nil
}

// reportOnce dedupes interprocedural findings that several passes (or
// several entrypoints) would otherwise derive independently.
func (r *Runner) reportOnce(key string) bool {
	if r.reported[key] {
		return false
	}
	r.reported[key] = true
	return true
}

// LoadTree parses and type-checks every package under root without
// linting, priming the runner's caches — the `-why` explainer uses it
// to build the facts engine over the whole module.
func (r *Runner) LoadTree(root string) error {
	dirs, err := packageDirs(root)
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		rel, err := filepath.Rel(r.ModuleRoot, dir)
		if err != nil {
			return err
		}
		importPath := ModulePath
		if rel != "." {
			importPath = ModulePath + "/" + filepath.ToSlash(rel)
		}
		if c := r.load(importPath, dir); c.err != nil && !isNoGoErr(c.err) {
			return c.err
		}
	}
	return nil
}

// LintTree lints every package under root (a directory inside the
// module), skipping testdata, vendor, and hidden directories. Hard
// errors (unparsable or untypeable packages) are returned alongside any
// diagnostics gathered before the failure.
//
// The whole tree is loaded before any rule runs: the interprocedural
// rules (SL010–SL013) consult a module-wide facts engine, and building
// it over a partially loaded module would make their findings depend on
// directory sort order — a package linted early would miss call-graph
// edges and global writes contributed by packages outside its import
// cone. After the sweep, waivers that suppressed nothing are reported
// as SL000 findings so stale directives cannot linger.
func (r *Runner) LintTree(root string) ([]Diagnostic, error) {
	if err := r.LoadTree(root); err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	linted := make(map[string]bool)
	for _, dir := range dirs {
		rel, err := filepath.Rel(r.ModuleRoot, dir)
		if err != nil {
			return diags, err
		}
		importPath := ModulePath
		if rel != "." {
			importPath = ModulePath + "/" + filepath.ToSlash(rel)
		}
		ds, err := r.LintDir(importPath, dir)
		if err != nil {
			if isNoGoErr(err) {
				continue // directory without buildable Go files
			}
			return diags, err
		}
		diags = append(diags, ds...)
		if c := r.pkgs[importPath]; c != nil && c.err == nil {
			for _, f := range c.files {
				linted[r.fset.Position(f.Pos()).Filename] = true
			}
		}
	}
	diags = append(diags, r.unusedWaiverDiags(linted)...)
	sortDiagnostics(diags)
	return diags, nil
}

// isNoGoErr reports whether err is (or wraps) build.NoGoError — a
// directory with no buildable Go files, which tree walks skip. Load
// errors are wrapped with %w, so errors.As sees through the chain.
func isNoGoErr(err error) bool {
	var ng *build.NoGoError
	return errors.As(err, &ng)
}

// packageDirs walks root collecting directories that contain at least
// one .go file, skipping testdata, vendor, results, and hidden dirs.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	var walk func(dir string) error
	walk = func(dir string) error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() {
				if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor" || name == "results" {
					continue
				}
				if err := walk(filepath.Join(dir, name)); err != nil {
					return err
				}
				continue
			}
			if strings.HasSuffix(name, ".go") {
				hasGo = true
			}
		}
		if hasGo {
			dirs = append(dirs, dir)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
