// Package clean follows every project rule; the lint tests assert it
// produces zero diagnostics even with all rules applied.
package clean

import (
	"math/rand"
	"sort"

	"graphmem/internal/check"
)

// Walk produces a deterministic traversal: explicit rand state, sorted
// map iteration, typed failure, no wall clock, no raw cycle constants.
func Walk(weights map[uint64]uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	if len(keys) == 0 {
		panic(check.Failf("clean: empty weight table"))
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}
