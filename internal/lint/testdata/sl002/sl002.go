// Package sl002 seeds SL002 (globalrand) violations for lint tests.
package sl002

import "math/rand"

// Roll uses the shared global source; both calls must be flagged.
func Roll() int {
	rand.Seed(42)       // line 8: SL002
	return rand.Intn(6) // line 9: SL002
}

// OK threads explicit state: methods on *rand.Rand are the sanctioned
// form and must not be flagged.
func OK(r *rand.Rand) int { return r.Intn(6) }

// Make constructs threaded state; the constructors are exempt.
func Make(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
