// Package sl005 seeds SL005 (panic) violations for lint tests.
package sl005

import (
	"fmt"

	"graphmem/internal/check"
)

// MustPositive panics with a bare string; must be flagged.
func MustPositive(n int) {
	if n <= 0 {
		panic("not positive") // line 13: SL005
	}
}

// MustEven panics with a formatted string; must be flagged.
func MustEven(n int) {
	if n%2 != 0 {
		panic(fmt.Sprintf("odd %d", n)) // line 20: SL005
	}
}

// MustAligned uses the sanctioned panic(check.Failf(...)) form: exempt.
func MustAligned(n int) {
	if n%8 != 0 {
		panic(check.Failf("misaligned %d", n))
	}
}
