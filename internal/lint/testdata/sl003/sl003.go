// Package sl003 seeds SL003 (maprange) violations for lint tests.
package sl003

import "sort"

// Table wraps a map the methods below iterate.
type Table struct {
	m    map[int]int
	sink func(int)
	log  []int
}

func (t *Table) note(k int) { t.log = append(t.log, k) }

// Emit leaks iteration order into a function-typed field; flagged.
func (t *Table) Emit() {
	for k := range t.m {
		t.sink(k) // line 18: SL003
	}
}

// Record calls a method per entry in map order; flagged.
func (t *Table) Record() {
	for k := range t.m {
		t.note(k) // line 25: SL003
	}
}

// Sum is order-independent arithmetic with no calls: not flagged.
func (t *Table) Sum() (total int) {
	for _, v := range t.m {
		total += v
	}
	return total
}

// Keys is the sanctioned append-then-sort pattern: builtins and
// conversions inside the loop are exempt.
func (t *Table) Keys() []int64 {
	keys := make([]int64, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, int64(k))
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}
