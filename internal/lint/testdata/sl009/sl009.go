//simlint:fastpath

// Package sl009 seeds SL009 violations: scalar Access dispatch over
// collected VA slices in a file tagged //simlint:fastpath — the
// irregular batches the AccessGather path exists to coalesce.
package sl009

type machine struct{ n uint64 }

func (m *machine) Access(va uint64)          { m.n++ }
func (m *machine) AccessGather(vas []uint64) { m.n += uint64(len(vas)) }

func (m *machine) bad(vas []uint64) {
	for _, va := range vas {
		m.Access(va) // SL009: range value feeds Access
	}
	for i := range vas {
		m.Access(vas[i]) // SL009: range key indexes the VA slice
	}
	for i := 0; i < len(vas); i++ {
		m.Access(vas[i]) // SL009: post-stepped index into the VA slice
	}
}

func (m *machine) fine(vas []uint64, ids []uint32, base uint64) {
	m.AccessGather(vas) // the gather path itself: free
	for i := 0; i < len(vas); {
		m.Access(vas[i]) // index advanced in the body: a degradation
		i++              // loop re-checking preconditions per element
	}
	for _, id := range ids {
		m.Access(base + uint64(id)*8) // not a collected VA slice: free
	}
}
