// Package sl004 seeds SL004 (rawcycle) violations for lint tests.
package sl004

// Stats carries a cycle counter under a selector, like the simulator's
// stats structs.
type Stats struct {
	KernelCycles uint64
}

// Charge mixes raw constants into cycle arithmetic; three sites must be
// flagged.
func Charge(s *Stats, n uint64) uint64 {
	var cycles uint64
	cycles += 200                       // line 14: SL004 (aug-assign with raw literal)
	cycles = cycles + 3                 // line 15: SL004 (binary expr, literal on right)
	s.KernelCycles = 7 * s.KernelCycles // line 16: SL004 (selector operand, literal on left)

	latency := 5 * n     // no cycle-named operand: not flagged
	cycles += latency    // no literal: not flagged
	cycles += n / 2      // rhs is not a literal on a cycle-named lhs... (binary n/2 has no cycle operand)
	halved := cycles / 2 // line 21: SL004 (/2 still counts; only 0 and 1 are structural)
	_ = halved
	return cycles + n // literal-free: not flagged
}
