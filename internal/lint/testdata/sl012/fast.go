//simlint:fastpath

// Package sl012 seeds SL012 violations: calls out of a fastpath-tagged
// file that reach allocations SL007 cannot see file-locally.
package sl012

// step is the per-access fast path. Its own body is allocation-free
// (SL007 stays quiet); two of its callees are not.
func (e *engine) step(va uint64) {
	e.count(va)
	e.record(va)
	e.grow()
	if va == 0 {
		e.fail(va)
	}
}
