// Slow-path helpers for the sl012 fixture: only the fastpath file is
// tagged, so SL007 ignores these bodies — SL012 must follow the calls.
package sl012

import "graphmem/internal/check"

type engine struct {
	n   int
	vas []uint64
}

// count is transitively allocation-free: calls to it are clean.
func (e *engine) count(va uint64) {
	e.n++
	_ = va
}

// record appends: one hop from the fast path.
func (e *engine) record(va uint64) {
	e.vas = append(e.vas, va)
}

// grow reaches make two hops down.
func (e *engine) grow() {
	e.reserve(e.n)
}

func (e *engine) reserve(n int) {
	e.vas = make([]uint64, 0, n)
}

// fail allocates only while building a panic value — the panicking
// path never returns, so calls to it are clean under SL012.
func (e *engine) fail(va uint64) {
	panic(check.Failf("sl012: unmapped va %#x", va))
}
