// Package sl010 seeds SL010 violations. The fixture is linted under
// the import path graphmem/internal/core, so Run is a simulation
// entrypoint and the facts engine must trace nondeterminism SL001–SL003
// can only see file-locally back to it through the call chain.
package sl010

import (
	"math/rand"
	"time"
)

// Run impersonates core.Run, the simulation entrypoint.
func Run(n int, m map[string]uint64) uint64 {
	total := advance(n)
	total += jitter()
	total += tally(m)
	total += stampWaived()
	return total
}

// advance is the middle hop of the wall-clock chain.
func advance(n int) uint64 {
	var t uint64
	for i := 0; i < n; i++ {
		t += stamp()
	}
	return t
}

// stamp is the leaf: SL001 flags the call file-locally, SL010 flags it
// as reachable from Run with the chain Run → advance → stamp.
func stamp() uint64 {
	return uint64(time.Now().UnixNano())
}

// jitter consults global rand state one hop from the entrypoint.
func jitter() uint64 {
	return uint64(rand.Intn(8))
}

// tally does order-dependent work inside a range over a map.
func tally(m map[string]uint64) uint64 {
	var t uint64
	for k := range m {
		t += cost(k)
	}
	return t
}

func cost(k string) uint64 {
	return uint64(len(k))
}

// stampWaived is reachable from Run, but its wall-clock read carries an
// SL001 waiver — which also covers SL010's interprocedural echo at the
// same line, so neither rule fires here.
func stampWaived() uint64 {
	return uint64(time.Now().UnixNano()) //simlint:ignore SL001 fixture: a local-rule waiver covers the SL010 echo too
}
