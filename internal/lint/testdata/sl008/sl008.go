//simlint:fastpath

// Package sl008 seeds SL008 violations: scalar Access calls inside
// constant-stride loops in a file tagged //simlint:fastpath — the
// sequential streams the bulk AccessRun path exists to coalesce.
package sl008

type machine struct{ n uint64 }

func (m *machine) Access(va uint64)                     { m.n++ }
func (m *machine) AccessRun(va uint64, c int, s uint64) { m.n += uint64(c) }

func (m *machine) bad(base, end uint64) {
	for a := base; a < end; a += 64 {
		m.Access(a) // SL008: constant post delta feeds the address
	}
	for i := 0; i < 128; i++ {
		m.Access(base + uint64(i)*8) // SL008: address derived from i
	}
}

func (m *machine) fine(base uint64, count int, stride uint64) {
	for ; count > 0; count-- {
		m.Access(base) // post updates count, not the address: free
		base += stride
	}
	for a := base; a < base+1024; a += stride {
		m.Access(a) // runtime stride: not provably constant, free
	}
	m.AccessRun(base, count, 64) // the bulk path itself: free
}
