// Package sl013 exercises SL013: a snapshot method (Clone/Fork/Rebind)
// must reference every field of its receiver struct, directly or via a
// same-package function it reaches.
package sl013

// Engine's Clone is complete: every field appears as a literal key.
type Engine struct {
	cfg   int
	ticks []uint64
}

func (e *Engine) Clone() *Engine {
	return &Engine{
		cfg:   e.cfg,
		ticks: append([]uint64(nil), e.ticks...),
	}
}

// Tracker's Fork copies seen through a helper (the transitive-reach
// case) but never mentions count — the seeded violation — while note
// carries a reviewed waiver.
type Tracker struct {
	id    uint32
	seen  []uint32
	count uint64
	note  string //simlint:ignore SL013 scratch label; deliberately reset on fork
}

func (t *Tracker) Fork() *Tracker {
	return &Tracker{id: t.id, seen: copySeen(t)}
}

func copySeen(t *Tracker) []uint32 {
	return append([]uint32(nil), t.seen...)
}

// pair's clone uses an unkeyed literal, which covers every field.
type pair struct {
	a int
	b int
}

func (p pair) clone() pair { return pair{p.a + 1, p.b} }
