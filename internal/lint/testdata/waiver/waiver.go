// Package waiver exercises //simlint:ignore: a reasoned directive
// suppresses matching diagnostics on its line (trailing form) or the
// next line (standalone form); a directive without a rule or reason is
// itself a finding (SL000) and suppresses nothing.
package waiver

import "time"

// stampWaived carries a trailing waiver covering its own line.
func stampWaived() int64 {
	return time.Now().UnixNano() //simlint:ignore SL001 fixture exercises the trailing waiver form
}

// stampWaivedAbove is covered by a standalone directive on the line
// above the finding.
func stampWaivedAbove() int64 {
	//simlint:ignore SL001 fixture exercises the standalone waiver form
	return time.Now().UnixNano()
}

// stampBad carries a reason-less directive: SL000 fires on the
// directive and the SL001 finding is NOT suppressed.
func stampBad() int64 {
	return time.Now().UnixNano() //simlint:ignore SL001
}

// stampUnknown names no known rule: SL000, and SL001 still fires.
func stampUnknown() int64 {
	return time.Now().UnixNano() //simlint:ignore determinism is overrated
}
