// Package sl011 seeds SL011 violations. The fixture is linted under
// the import path graphmem/internal/oskernel, so Tick is a simulation
// entrypoint and the package is on the simulation path: it may not
// declare package-level state written after init, nor write another
// package's globals.
package sl011

import "os"

// promotions is written by Tick after init: flagged at this
// declaration, naming the writer.
var promotions int

// thresholds is only assigned during package initialization — an
// immutable lookup table, exempt.
var thresholds [4]uint64

func init() {
	for i := range thresholds {
		thresholds[i] = uint64(16 << i)
	}
}

// Tick impersonates oskernel.Tick, a simulation entrypoint.
func Tick(now uint64) {
	if now&1 == 0 {
		promotions++
	}
	record(now)
}

// record writes a foreign package's global: flagged at the write site.
func record(now uint64) {
	os.Args = os.Args[:1]
	_ = now
}
