//simlint:fastpath

// Package sl007 seeds SL007 violations: allocation hazards inside a
// file tagged //simlint:fastpath (append, map writes, and closures
// capturing local variables).
package sl007

var calls uint64

type engine struct {
	log  []uint64
	memo map[uint64]uint64
	hook func()
}

func (e *engine) bad(va uint64) {
	e.log = append(e.log, va) // SL007: append can grow the slice
	e.memo[va] = va           // SL007: map write
	e.memo[va]++              // SL007: map write (inc/dec form)
	local := va
	e.hook = func() { local++ } // SL007: closure captures a local
}

func (e *engine) fine(va uint64) uint64 {
	v := e.memo[va]                         // map read: not flagged
	f := func(x uint64) uint64 { return x } // captures nothing: free
	e.hook = func() { calls++ }             // package-level var: free
	e.log[0] = va                           // slice write: free
	return v + f(va)
}
