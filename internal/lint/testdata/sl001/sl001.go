// Package sl001 seeds SL001 (wallclock) violations for lint tests.
package sl001

import "time"

// Tick reads the wall clock twice; both reads must be flagged.
func Tick() int64 {
	t := time.Now()    // line 8: SL001
	d := time.Since(t) // line 9: SL001
	return t.Unix() + int64(d)
}

// Format-only uses of package time are fine.
func Label(d time.Duration) string { return d.String() }
