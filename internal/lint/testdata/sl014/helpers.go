// Helpers for the sl014 fixture: this file is untagged, so only SL014's
// interprocedural reach — not any file-local rule — connects the shard
// worker to the write.
package sl014

// rounds is the shared global the fixture's workers illegally touch.
var rounds uint64

type shard struct {
	local uint64
}

// tally forwards one more hop before the write.
func (s *shard) tally(v uint32) {
	s.count(v)
}

// count performs the package-level write scatter reaches transitively.
func (s *shard) count(v uint32) {
	rounds += uint64(v)
}
