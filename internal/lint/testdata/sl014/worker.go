//simlint:shardworker

// Package sl014 seeds SL014 violations: shard worker functions that
// reach package-level state writes the file-local rules cannot see.
package sl014

// scatter is one shard's kernel step: its own body only touches
// shard-owned state, but a helper two hops away bumps a global.
func (s *shard) scatter(v uint32) {
	s.local += uint64(v)
	s.tally(v)
}

// apply writes the global directly from the tagged file.
func (s *shard) apply(v uint32) {
	rounds++
	_ = v
}

// drain stays on shard-owned state only: no diagnostic.
func (s *shard) drain() uint64 {
	out := s.local
	s.local = 0
	return out
}
