// Package waiverunused seeds a stale waiver: the directive is
// well-formed but suppresses nothing on its line, so a LintTree sweep
// reports it under SL000 instead of letting it linger silently.
package waiverunused

// nothingToSuppress is rule-clean; the trailing directive once waived a
// wall-clock read that has since been removed.
func nothingToSuppress() int { //simlint:ignore SL001 stale: the wall-clock read here was removed
	return 42
}
