// Package sl015 exercises SL015: a codec method (Encode/Decode, either
// case) must reference every field of its receiver struct, directly or
// via a same-package function it reaches.
package sl015

type sink struct{ buf []byte }

func (s *sink) u64(v uint64) { s.buf = append(s.buf, byte(v)) }
func (s *sink) next() uint64 { return uint64(len(s.buf)) }

// Header's codec pair is complete: Encode writes both fields, Decode
// assigns both.
type Header struct {
	version uint64
	count   uint64
}

func (h *Header) Encode(s *sink) {
	s.u64(h.version)
	s.u64(h.count)
}

func (h *Header) Decode(s *sink) {
	h.version = s.next()
	h.count = s.next()
}

// Record's Encode serializes payload through a helper (the
// transitive-reach case) but never mentions checksum — the seeded
// violation — while scratch carries a reviewed waiver.
type Record struct {
	id       uint64
	payload  []uint64
	checksum uint64
	scratch  []uint64 //simlint:ignore SL015 derived cache; rebuilt lazily after load
}

func (r *Record) Encode(s *sink) {
	s.u64(r.id)
	encodePayload(s, r)
}

func encodePayload(s *sink, r *Record) {
	for _, v := range r.payload {
		s.u64(v)
	}
}

// cursor's unexported codec pair uses an unkeyed literal, which covers
// every field.
type cursor struct {
	pos  uint64
	mark uint64
}

func (c cursor) encode(s *sink) { s.u64(c.pos + c.mark) }

func (c *cursor) decode(s *sink) { *c = cursor{s.next(), s.next()} }
