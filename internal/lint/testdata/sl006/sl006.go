// Package sl006 seeds SL006 violations: direct writes to an experiment
// Suite's plain-map memo fields, which bypass the promise-cache API that
// makes the suite safe to share across campaign workers.
package sl006

type result struct{ cycles uint64 }

// Suite mimics the experiment suite from before the campaign scheduler:
// plain-map caches, safe only single-threaded.
type Suite struct {
	runs   map[string]*result
	graphs map[string]int
	name   string
}

func (s *Suite) bad(k string, r *result) {
	s.runs[k] = r       // SL006: unsynchronized cache write
	delete(s.graphs, k) // SL006: unsynchronized cache delete
}

func (s *Suite) fine(k string) *result {
	s.name = k       // non-map field: not a cache
	return s.runs[k] // reads are not flagged
}
