package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural rules
// (SL010 simpath, SL011 isolation, SL012 fastpath-reach, SL014
// shard-isolation) run on. Nodes
// are module functions — declared functions, methods, and function
// literals — and edges are possible calls:
//
//   - static calls and method calls on concrete receivers resolve
//     directly through the type checker;
//   - interface method calls are devirtualized by class-hierarchy
//     analysis: an edge is added to every module type's method that
//     implements the called interface;
//   - calls through function-typed values are resolved conservatively
//     to every address-taken module function (and every function
//     literal) with an identical signature;
//   - creating a function literal adds an edge to it, conservatively
//     assuming any created closure may later run.
//
// Calls into packages outside the module (the stdlib) are not edges:
// their effects are modeled as intrinsic facts at the call site instead
// (facts.go) — time.Now is a wall-clock fact, rand.Intn a global-rand
// fact, and so on. Package-level variable initializer expressions run
// before any entrypoint and contribute no edges.

// graphNode is one function in the call graph.
type graphNode struct {
	fn  *types.Func  // declared function or method; nil for literals
	lit *ast.FuncLit // function literal; nil for declared functions

	name string // qualified display name, e.g. "machine.(*Machine).Access"
	pkg  *types.Package
	pos  token.Pos
	sig  *types.Signature

	// inInit marks bodies that run only during package initialization
	// (func init and literals created inside it): their package-level
	// writes do not break post-init isolation.
	inInit bool

	// addrTaken marks functions referenced as values: candidates for
	// conservative indirect-call resolution. Literals always are.
	addrTaken bool

	out       []graphEdge
	intrinsic []factSource
	summary   factSet

	litSeq int // counter naming nested literals deterministically
}

// graphEdge is one possible call.
type graphEdge struct {
	to  *graphNode
	pos token.Pos
	// panicArg marks calls that occur only while building a panic
	// argument: code on a panicking edge never returns, so allocation
	// there is exempt from the fast-path contract (determinism facts
	// still propagate).
	panicArg bool
}

// writeSite records one write to a package-level variable.
type writeSite struct {
	node *graphNode
	pos  token.Pos
}

// callGraph is the assembled module graph plus the global write index.
type callGraph struct {
	fset   *token.FileSet
	nodes  []*graphNode // deterministic order: packages by path, files in order
	byFunc map[*types.Func]*graphNode

	// writes indexes every non-init write to a package-level variable,
	// module-wide (SL011's evidence).
	writes map[*types.Var][]writeSite
}

// loadedPkg bundles what the graph builder needs per package.
type loadedPkg struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// pendingIface is an unresolved interface method call site.
type pendingIface struct {
	from     *graphNode
	iface    *types.Interface
	method   string
	pos      token.Pos
	panicArg bool
}

// pendingIndirect is an unresolved call through a function-typed value.
type pendingIndirect struct {
	from     *graphNode
	sig      *types.Signature
	pos      token.Pos
	panicArg bool
}

type graphBuilder struct {
	g         *callGraph
	pkgs      []loadedPkg
	ifaces    []pendingIface
	indirects []pendingIndirect
}

// buildCallGraph constructs the graph over the given packages (already
// sorted by import path for determinism).
func buildCallGraph(fset *token.FileSet, pkgs []loadedPkg) *callGraph {
	b := &graphBuilder{
		g: &callGraph{
			fset:   fset,
			byFunc: make(map[*types.Func]*graphNode),
			writes: make(map[*types.Var][]writeSite),
		},
		pkgs: pkgs,
	}
	// Phase 1: a node per function declaration, so cross-package call
	// edges can resolve regardless of build order.
	for _, lp := range pkgs {
		for _, file := range lp.files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := lp.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &graphNode{
					fn:     fn,
					name:   funcDisplayName(fn),
					pkg:    lp.pkg,
					pos:    fd.Name.Pos(),
					sig:    fn.Type().(*types.Signature),
					inInit: fd.Recv == nil && fd.Name.Name == "init",
				}
				b.g.byFunc[fn] = n
				b.g.nodes = append(b.g.nodes, n)
			}
		}
	}
	// Phase 2: walk bodies, creating literal nodes, intrinsic facts,
	// direct edges, and the pending indirect/interface call lists.
	for _, lp := range pkgs {
		for _, file := range lp.files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := lp.info.Defs[fd.Name].(*types.Func)
				if n := b.g.byFunc[fn]; n != nil {
					b.walkBody(n, fd.Body, lp)
				}
			}
		}
	}
	// Phase 3: conservative resolution of the pending call sites.
	b.resolveInterfaces()
	b.resolveIndirects()
	return b.g
}

// funcDisplayName renders "pkg.Func" or "pkg.(*Recv).Method".
func funcDisplayName(fn *types.Func) string {
	pkg := fn.Pkg()
	qual := types.RelativeTo(pkg)
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return fmt.Sprintf("%s.(%s).%s", pkg.Name(), types.TypeString(recv.Type(), qual), fn.Name())
	}
	return pkg.Name() + "." + fn.Name()
}

// walkBody records owner's intrinsic facts and outgoing calls. Nested
// function literals become child nodes walked recursively; their
// statements do not contribute to owner.
func (b *graphBuilder) walkBody(owner *graphNode, body *ast.BlockStmt, lp loadedPkg) {
	info := lp.info
	// Call-position identifiers: a function name used as a call's Fun
	// is not address-taken; any other use of it is.
	calleeIdents := make(map[*ast.Ident]bool)
	// Source spans of panic arguments seen so far; preorder traversal
	// guarantees a panic call is visited before its argument subtree.
	var panicSpans [][2]token.Pos
	inPanicArg := func(pos token.Pos) bool {
		for _, s := range panicSpans {
			if pos >= s[0] && pos < s[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			owner.litSeq++
			child := &graphNode{
				lit:       e,
				name:      fmt.Sprintf("%s.func%d", owner.name, owner.litSeq),
				pkg:       owner.pkg,
				pos:       e.Pos(),
				inInit:    owner.inInit,
				addrTaken: true,
			}
			if sig, ok := info.Types[e].Type.(*types.Signature); ok {
				child.sig = sig
			}
			b.g.nodes = append(b.g.nodes, child)
			owner.out = append(owner.out, graphEdge{to: child, pos: e.Pos(), panicArg: inPanicArg(e.Pos())})
			// Creating a capturing closure heap-allocates both the
			// closure and the captured variables.
			if !inPanicArg(e.Pos()) && capturesLocal(info, owner.pkg, e) {
				owner.addIntrinsic(factAllocates, e.Pos(), "closure capturing locals")
			}
			b.walkBody(child, e.Body, lp)
			return false

		case *ast.CallExpr:
			b.recordCall(owner, e, lp, calleeIdents, &panicSpans, inPanicArg)

		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					recordMapRangeFact(owner, info, e)
				}
			}

		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				b.recordWrite(owner, lhs, info, inPanicArg)
			}

		case *ast.IncDecStmt:
			b.recordWrite(owner, e.X, info, inPanicArg)

		case *ast.CompositeLit:
			if !inPanicArg(e.Pos()) {
				if tv, ok := info.Types[e]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Map:
						owner.addIntrinsic(factAllocates, e.Pos(), "composite literal")
					}
				}
			}

		case *ast.UnaryExpr:
			if e.Op == token.AND && !inPanicArg(e.Pos()) {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					owner.addIntrinsic(factAllocates, e.Pos(), "&composite literal")
				}
			}

		case *ast.Ident:
			if !calleeIdents[e] {
				if fn, ok := info.Uses[e].(*types.Func); ok {
					if n := b.g.byFunc[fn]; n != nil {
						n.addrTaken = true
					}
				}
			}
		}
		return true
	})
}

// recordCall classifies one call expression: builtin, stdlib intrinsic,
// direct module call, interface call, conversion, or indirect call.
func (b *graphBuilder) recordCall(owner *graphNode, call *ast.CallExpr, lp loadedPkg,
	calleeIdents map[*ast.Ident]bool, panicSpans *[][2]token.Pos, inPanicArg func(token.Pos) bool) {
	info := lp.info
	fun := ast.Unparen(call.Fun)
	panicArg := inPanicArg(call.Pos())

	// Note the callee identifier so the address-taken scan skips it.
	switch f := fun.(type) {
	case *ast.Ident:
		calleeIdents[f] = true
	case *ast.SelectorExpr:
		calleeIdents[f.Sel] = true
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "make", "new":
				if !panicArg {
					owner.addIntrinsic(factAllocates, call.Pos(), id.Name)
				}
			case "panic":
				for _, arg := range call.Args {
					*panicSpans = append(*panicSpans, [2]token.Pos{arg.Pos(), arg.End()})
				}
			case "delete":
				if len(call.Args) == 2 {
					b.recordWrite(owner, call.Args[0], info, inPanicArg)
				}
			}
			return
		}
	}

	// Type conversions carry no edge.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}

	if f := calleeFunc(info, call); f != nil {
		b.recordFuncCall(owner, f, call.Pos(), panicArg)
		return
	}

	// A call through a function-typed value: resolve conservatively
	// against the address-taken set later.
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			b.indirects = append(b.indirects, pendingIndirect{
				from: owner, sig: sig, pos: call.Pos(), panicArg: panicArg,
			})
		}
	}
}

// recordFuncCall handles a call whose callee object is known: stdlib
// intrinsics, interface method calls, and direct module calls.
func (b *graphBuilder) recordFuncCall(owner *graphNode, f *types.Func, pos token.Pos, panicArg bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return // error.Error and other universe-scope methods
	}
	sig, _ := f.Type().(*types.Signature)

	// Nondeterministic stdlib state becomes an intrinsic fact at the
	// call site; other stdlib calls are fact-free (their bodies are not
	// analyzed).
	switch pkg.Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until":
			owner.addIntrinsic(factWallclock, pos, "time."+f.Name())
			return
		}
	case "math/rand", "math/rand/v2":
		if (sig == nil || sig.Recv() == nil) && !globalRandAllowed[f.Name()] {
			owner.addIntrinsic(factGlobalRand, pos, "rand."+f.Name())
			return
		}
	}

	if sig != nil && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				b.ifaces = append(b.ifaces, pendingIface{
					from: owner, iface: iface, method: f.Name(), pos: pos, panicArg: panicArg,
				})
			}
			return
		}
	}
	if callee := b.g.byFunc[f]; callee != nil {
		owner.out = append(owner.out, graphEdge{to: callee, pos: pos, panicArg: panicArg})
	}
}

// recordWrite inspects an assignment target (or delete operand): a
// package-level variable as the base of the target is a global write.
func (b *graphBuilder) recordWrite(owner *graphNode, target ast.Expr, info *types.Info, inPanicArg func(token.Pos) bool) {
	v := baseGlobalVar(info, target)
	if v == nil || v.Name() == "_" || owner.inInit {
		return
	}
	desc := fmt.Sprintf("write to package-level var %s.%s", v.Pkg().Name(), v.Name())
	owner.addIntrinsic(factWritesGlobal, target.Pos(), desc)
	b.g.writes[v] = append(b.g.writes[v], writeSite{node: owner, pos: target.Pos()})
	// Inserting into a package-level map can also allocate.
	if idx, ok := ast.Unparen(target).(*ast.IndexExpr); ok && isMapIndex(info, idx) && !inPanicArg(target.Pos()) {
		owner.addIntrinsic(factAllocates, target.Pos(), "map write")
	}
}

// baseGlobalVar strips index, selector, star, and paren layers off an
// assignment target and reports the package-level variable at its base,
// or nil. Writes through pointers obtained from a global are tracked
// one level deep (*g = x); aliases that escape through calls are not.
func baseGlobalVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			// A qualified reference (pkg.Var) resolves through Sel; a
			// field selection recurses into its operand.
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
				return v
			}
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && isPackageLevel(v) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// recordMapRangeFact mirrors SL003's detection as an intrinsic fact:
// a range over a map whose body makes order-sensitive calls.
func recordMapRangeFact(owner *graphNode, info *types.Info, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isOrderInsensitiveCall(info, call) {
			owner.addIntrinsic(factMapRange, call.Pos(),
				fmt.Sprintf("order-dependent call to %s inside range over map", types.ExprString(call.Fun)))
		}
		return true
	})
}

// capturesLocal reports whether lit closes over a variable declared
// outside it (the condition that forces a heap closure). Mirrors
// SL007's capture scan.
func capturesLocal(info *types.Info, pkg *types.Package, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != pkg || v.Parent() == pkg.Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		captures = true
		return false
	})
	return captures
}

// resolveInterfaces devirtualizes pending interface method calls by
// class-hierarchy analysis over every named type in the module.
func (b *graphBuilder) resolveInterfaces() {
	if len(b.ifaces) == 0 {
		return
	}
	concrete := b.moduleNamedTypes()
	for _, pc := range b.ifaces {
		for _, named := range concrete {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, pc.iface) && !types.Implements(named, pc.iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), pc.method)
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if callee := b.g.byFunc[m]; callee != nil {
				pc.from.out = append(pc.from.out, graphEdge{to: callee, pos: pc.pos, panicArg: pc.panicArg})
			}
		}
	}
}

// moduleNamedTypes lists every non-interface named type declared in the
// loaded packages, in deterministic order.
func (b *graphBuilder) moduleNamedTypes() []*types.Named {
	var out []*types.Named
	for _, lp := range b.pkgs {
		scope := lp.pkg.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// resolveIndirects links calls through function-typed values to every
// address-taken module function with an identical signature.
func (b *graphBuilder) resolveIndirects() {
	if len(b.indirects) == 0 {
		return
	}
	var candidates []*graphNode
	for _, n := range b.g.nodes {
		if n.addrTaken && n.sig != nil {
			candidates = append(candidates, n)
		}
	}
	for _, pc := range b.indirects {
		for _, cand := range candidates {
			if !types.Identical(valueSignature(cand.sig), pc.sig) {
				continue
			}
			pc.from.out = append(pc.from.out, graphEdge{to: cand, pos: pc.pos, panicArg: pc.panicArg})
		}
	}
}

// valueSignature strips the receiver: a method used as a value (bound
// method value) has the receiver folded away from its type.
func valueSignature(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

func (n *graphNode) addIntrinsic(fact factSet, pos token.Pos, desc string) {
	n.intrinsic = append(n.intrinsic, factSource{fact: fact, pos: pos, desc: desc})
}

func (n *graphNode) intrinsicSet() factSet {
	var s factSet
	for _, src := range n.intrinsic {
		s |= src.fact
	}
	return s
}

// sortedWrittenVars returns the write index's keys ordered by their
// declaration position, for deterministic reporting.
func (g *callGraph) sortedWrittenVars() []*types.Var {
	vars := make([]*types.Var, 0, len(g.writes))
	for v := range g.writes {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := vars[i], vars[j]
		if a.Pos() != b.Pos() {
			return a.Pos() < b.Pos()
		}
		return a.Name() < b.Name() // stdlib vars share NoPos
	})
	return vars
}

// matchName reports whether a node's display name matches a user
// pattern: exact, or a suffix at a qualifier boundary ("Run",
// "core.Run", "(*Machine).Access" all match "core.(*...)..." forms —
// but "Run" does not match "core.DryRun").
func (n *graphNode) matchName(pattern string) bool {
	return n.name == pattern || strings.HasSuffix(n.name, "."+pattern)
}
