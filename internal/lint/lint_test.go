package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot locates the repository root (the directory with go.mod)
// relative to this package.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

type want struct {
	rule string
	line int
}

// TestRuleFixtures lints each seeded-violation fixture as if it lived
// in internal/ and asserts the exact (rule, line) diagnostics.
func TestRuleFixtures(t *testing.T) {
	cases := []struct {
		dir  string
		want []want
	}{
		{"sl001", []want{{"SL001", 8}, {"SL001", 9}}},
		{"sl002", []want{{"SL002", 8}, {"SL002", 9}}},
		{"sl003", []want{{"SL003", 18}, {"SL003", 25}}},
		{"sl004", []want{{"SL004", 14}, {"SL004", 15}, {"SL004", 16}, {"SL004", 21}}},
		{"sl005", []want{{"SL005", 13}, {"SL005", 20}}},
		{"sl006", []want{{"SL006", 17}, {"SL006", 18}}},
		{"sl007", []want{{"SL007", 17}, {"SL007", 18}, {"SL007", 19}, {"SL007", 21}}},
		{"sl008", []want{{"SL008", 15}, {"SL008", 18}}},
		{"sl009", []want{{"SL009", 15}, {"SL009", 18}, {"SL009", 21}}},
		{"clean", nil},
	}
	r := NewRunner(moduleRoot(t))
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			importPath := ModulePath + "/internal/" + tc.dir
			dir := filepath.Join("testdata", tc.dir)
			diags, err := r.LintDir(importPath, dir)
			if err != nil {
				t.Fatalf("LintDir: %v", err)
			}
			if len(diags) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(tc.want), render(diags))
			}
			for i, w := range tc.want {
				d := diags[i]
				if d.Rule != w.rule || d.Pos.Line != w.line {
					t.Errorf("diag %d = %s at line %d, want %s at line %d", i, d.Rule, d.Pos.Line, w.rule, w.line)
				}
			}
		})
	}
}

func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFixturesExemptOutsideInternal verifies the Applies predicates:
// linted under a cmd/ path, only the module-wide rules (SL002, SL004)
// still fire on the same fixture sources.
func TestFixturesExemptOutsideInternal(t *testing.T) {
	r := NewRunner(moduleRoot(t))
	diags, err := r.LintDir(ModulePath+"/cmd/sl001", filepath.Join("testdata", "sl001"))
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("SL001 fired outside internal/:\n%s", render(diags))
	}
	diags, err = r.LintDir(ModulePath+"/cmd/sl002", filepath.Join("testdata", "sl002"))
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("SL002 must stay module-wide, got:\n%s", render(diags))
	}
}

// TestRuleTableIsWellFormed checks IDs are unique, sequential, and
// resolvable through RuleByID.
func TestRuleTableIsWellFormed(t *testing.T) {
	rules := AllRules()
	seen := make(map[string]bool)
	for _, r := range rules {
		if !strings.HasPrefix(r.ID, "SL") || len(r.ID) != 5 {
			t.Errorf("rule ID %q is not of the form SLnnn", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Name == "" || r.Doc == "" || r.Check == nil {
			t.Errorf("rule %s is missing name/doc/check", r.ID)
		}
		got, ok := RuleByID(r.ID)
		if !ok || got.Name != r.Name {
			t.Errorf("RuleByID(%s) failed", r.ID)
		}
	}
	if _, ok := RuleByID("SL999"); ok {
		t.Error("RuleByID invented a rule")
	}
}

// TestRepoIsClean runs every rule over the whole module — the same
// sweep as `go run ./cmd/simlint ./...` in CI — and requires zero
// findings. Any rule violation introduced into the simulator fails
// here first, with the exact file:line in the failure message.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	root := moduleRoot(t)
	r := NewRunner(root)
	diags, err := r.LintTree(root)
	if err != nil {
		t.Fatalf("LintTree: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("repository has lint findings:\n%s", render(diags))
	}
}
