package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot locates the repository root (the directory with go.mod)
// relative to this package.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

type want struct {
	rule string
	line int
}

// TestRuleFixtures lints each seeded-violation fixture as if it lived
// in internal/ and asserts the exact (rule, line) diagnostics. A case
// may override the import path: the interprocedural fixtures
// impersonate the real entrypoint packages so the facts engine treats
// their Run/Tick as simulation entrypoints.
func TestRuleFixtures(t *testing.T) {
	cases := []struct {
		dir  string
		path string // import path override; default internal/<dir>
		want []want
	}{
		{dir: "sl001", want: []want{{"SL001", 8}, {"SL001", 9}}},
		{dir: "sl002", want: []want{{"SL002", 8}, {"SL002", 9}}},
		{dir: "sl003", want: []want{{"SL003", 18}, {"SL003", 25}}},
		{dir: "sl004", want: []want{{"SL004", 14}, {"SL004", 15}, {"SL004", 16}, {"SL004", 21}}},
		{dir: "sl005", want: []want{{"SL005", 13}, {"SL005", 20}}},
		{dir: "sl006", want: []want{{"SL006", 17}, {"SL006", 18}}},
		{dir: "sl007", want: []want{{"SL007", 17}, {"SL007", 18}, {"SL007", 19}, {"SL007", 21}}},
		{dir: "sl008", want: []want{{"SL008", 15}, {"SL008", 18}}},
		{dir: "sl009", want: []want{{"SL009", 15}, {"SL009", 18}, {"SL009", 21}}},
		// The fixture's stampWaived leaf (line 58) is reachable from Run
		// too, but its SL001 waiver also covers SL010's echo at that
		// line, so no diagnostic is expected there.
		{dir: "sl010", path: ModulePath + "/internal/core", want: []want{
			{"SL001", 33}, {"SL010", 33},
			{"SL002", 38}, {"SL010", 38},
			{"SL003", 45}, {"SL010", 45},
		}},
		{dir: "sl011", path: ModulePath + "/internal/oskernel", want: []want{
			{"SL011", 12}, {"SL011", 34},
		}},
		{dir: "sl012", want: []want{{"SL012", 11}, {"SL012", 12}}},
		// Tracker.count (line 25) is the seeded gap; note is waived on
		// its declaration line, and pair's unkeyed literal is exempt.
		{dir: "sl013", want: []want{{"SL013", 25}}},
		// helpers.go:20 is the write scatter reaches through two untagged
		// hops; worker.go:16 is the direct write in the tagged file.
		// drain (shard-owned state only) stays silent.
		{dir: "sl014", want: []want{{"SL014", 20}, {"SL014", 16}}},
		// Record.checksum (line 34) is the seeded gap; scratch is waived
		// on its declaration line, and cursor's unkeyed decode literal
		// plus Header's complete pair stay silent.
		{dir: "sl015", want: []want{{"SL015", 34}}},
		{dir: "waiver", want: []want{
			{"SL001", 24}, {"SL000", 24},
			{"SL001", 29}, {"SL000", 29},
		}},
		{dir: "clean"},
	}
	r := NewRunner(moduleRoot(t))
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			importPath := tc.path
			if importPath == "" {
				importPath = ModulePath + "/internal/" + tc.dir
			}
			dir := filepath.Join("testdata", tc.dir)
			diags, err := r.LintDir(importPath, dir)
			if err != nil {
				t.Fatalf("LintDir: %v", err)
			}
			if len(diags) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(tc.want), render(diags))
			}
			for i, w := range tc.want {
				d := diags[i]
				if d.Rule != w.rule || d.Pos.Line != w.line {
					t.Errorf("diag %d = %s at line %d, want %s at line %d", i, d.Rule, d.Pos.Line, w.rule, w.line)
				}
			}
		})
	}
}

func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFixturesExemptOutsideInternal verifies the Applies predicates:
// linted under a cmd/ path, only the module-wide rules (SL002, SL004)
// still fire on the same fixture sources.
func TestFixturesExemptOutsideInternal(t *testing.T) {
	r := NewRunner(moduleRoot(t))
	diags, err := r.LintDir(ModulePath+"/cmd/sl001", filepath.Join("testdata", "sl001"))
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("SL001 fired outside internal/:\n%s", render(diags))
	}
	diags, err = r.LintDir(ModulePath+"/cmd/sl002", filepath.Join("testdata", "sl002"))
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("SL002 must stay module-wide, got:\n%s", render(diags))
	}
}

// TestRuleTableIsWellFormed checks IDs are unique, sequential, and
// resolvable through RuleByID.
func TestRuleTableIsWellFormed(t *testing.T) {
	rules := AllRules()
	seen := make(map[string]bool)
	for _, r := range rules {
		if !strings.HasPrefix(r.ID, "SL") || len(r.ID) != 5 {
			t.Errorf("rule ID %q is not of the form SLnnn", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Name == "" || r.Doc == "" || r.Check == nil {
			t.Errorf("rule %s is missing name/doc/check", r.ID)
		}
		got, ok := RuleByID(r.ID)
		if !ok || got.Name != r.Name {
			t.Errorf("RuleByID(%s) failed", r.ID)
		}
	}
	if _, ok := RuleByID("SL999"); ok {
		t.Error("RuleByID invented a rule")
	}
}

// TestInterprocChainMessages pins the exact diagnostic text of the
// interprocedural rules: SL010 must print the full call chain from the
// entrypoint to the offending construct, SL012 the allocation chain
// from the call site out of the fastpath file.
func TestInterprocChainMessages(t *testing.T) {
	r := NewRunner(moduleRoot(t))

	diags, err := r.LintDir(ModulePath+"/internal/core", filepath.Join("testdata", "sl010"))
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	wantMsg := "wall-clock read reachable from simulation entrypoint sl010.Run: " +
		"sl010.Run → sl010.advance → sl010.stamp: time.Now"
	assertMsg(t, diags, "SL010", 33, wantMsg)

	diags, err = r.LintDir(ModulePath+"/internal/sl012", filepath.Join("testdata", "sl012"))
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	wantMsg = "call to sl012.(*engine).grow from a fast-path file can allocate " +
		"(sl012.(*engine).grow → sl012.(*engine).reserve: make): " +
		"the zero-alloc contract extends to everything the fast path calls"
	assertMsg(t, diags, "SL012", 12, wantMsg)

	diags, err = r.LintDir(ModulePath+"/internal/sl014", filepath.Join("testdata", "sl014"))
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	wantMsg = "package-level state write reachable from shard worker sl014.(*shard).scatter: " +
		"shards run this concurrently, so shared globals break the deterministic merge: " +
		"sl014.(*shard).scatter → sl014.(*shard).tally → sl014.(*shard).count: " +
		"write to package-level var sl014.rounds"
	assertMsg(t, diags, "SL014", 20, wantMsg)
}

func assertMsg(t *testing.T, diags []Diagnostic, rule string, line int, want string) {
	t.Helper()
	for _, d := range diags {
		if d.Rule == rule && d.Pos.Line == line {
			if d.Msg != want {
				t.Errorf("%s at line %d:\n got %q\nwant %q", rule, line, d.Msg, want)
			}
			return
		}
	}
	t.Errorf("no %s diagnostic at line %d:\n%s", rule, line, render(diags))
}

// TestExplain exercises the -why chain explainer over the sl010
// fixture: the entrypoint explains its reachable facts, a clean helper
// reports none.
func TestExplain(t *testing.T) {
	r := NewRunner(moduleRoot(t))
	if _, err := r.LintDir(ModulePath+"/internal/core", filepath.Join("testdata", "sl010")); err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	lines, err := r.Explain("SL010", "sl010.Run")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{
		"sl010.Run → sl010.advance → sl010.stamp: time.Now",
		"sl010.Run → sl010.jitter: rand.Intn",
		"sl010.Run → sl010.tally: order-dependent call to cost inside range over map",
	} {
		if !strings.Contains(joined, frag) {
			t.Errorf("Explain output missing %q:\n%s", frag, joined)
		}
	}
	lines, err = r.Explain("SL010", "sl010.cost")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(lines) != 2 || !strings.Contains(lines[1], "clean") {
		t.Errorf("Explain on a clean function = %q, want a clean line", lines)
	}
	if _, err := r.Explain("SL007", "sl010.Run"); err == nil {
		t.Error("Explain accepted a non-interprocedural rule")
	}
	if _, err := r.Explain("SL010", "noSuchFunc"); err == nil {
		t.Error("Explain matched a nonexistent function")
	}
}

// TestUnusedWaiverReported runs LintTree sweeps over the waiver
// fixtures: a well-formed directive that suppresses nothing is itself
// an SL000 finding, while the used waivers of the waiver fixture stay
// silent (its expected findings are the seeded malformed-directive
// ones, same as the LintDir case).
func TestUnusedWaiverReported(t *testing.T) {
	fixtures := filepath.Join(moduleRoot(t), "internal", "lint", "testdata")

	r := NewRunner(moduleRoot(t))
	diags, err := r.LintTree(filepath.Join(fixtures, "waiverunused"))
	if err != nil {
		t.Fatalf("LintTree: %v", err)
	}
	if len(diags) != 1 || diags[0].Rule != "SL000" || diags[0].Pos.Line != 8 ||
		!strings.Contains(diags[0].Msg, "unused") {
		t.Fatalf("want one SL000 unused-waiver finding at line 8, got:\n%s", render(diags))
	}

	r = NewRunner(moduleRoot(t))
	diags, err = r.LintTree(filepath.Join(fixtures, "waiver"))
	if err != nil {
		t.Fatalf("LintTree: %v", err)
	}
	for _, d := range diags {
		if strings.Contains(d.Msg, "unused") {
			t.Errorf("used waiver reported as unused: %s", d)
		}
	}
	if len(diags) != 4 {
		t.Errorf("waiver fixture sweep: got %d diagnostics, want 4:\n%s", len(diags), render(diags))
	}
}

// TestModuleIsLintClean runs every rule over the whole module — the
// same sweep as `go run ./cmd/simlint ./...` in CI — and requires zero
// findings. Any rule violation introduced into the simulator fails
// here first, with the exact file:line in the failure message.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	root := moduleRoot(t)
	r := NewRunner(root)
	diags, err := r.LintTree(root)
	if err != nil {
		t.Fatalf("LintTree: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("repository has lint findings:\n%s", render(diags))
	}
}
