package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SL013: snapshot completeness. The fork layer's correctness argument
// (DESIGN.md §5b) is that every Clone/Fork method is an exhaustive
// field-by-field copy — a field silently dropped by a clone is exactly
// the bug the byte-identical CI gate exists to catch, but that gate
// only covers state the campaign happens to exercise. This rule closes
// the gap statically: for every struct with a snapshot method declared
// in the pass's package, each declared field must be *referenced* —
// read through a selector, named as a composite-literal key, or
// covered by an unkeyed literal — inside the method or inside a
// same-package function the method transitively reaches (per the facts
// engine's call graph). A field the clone deliberately resets still
// satisfies the rule by being mentioned (e.g. `lastVMA: nil` with a
// comment); a field the clone has never heard of does not, which is
// the failure mode this rule is for: someone adds state to a forked
// struct and forgets the clone.

// snapshotMethodNames are the method names that promise an exhaustive
// copy of their receiver's state. Rebind is the image's fork
// constructor (analytics.Image.Rebind), included so adding an Image
// field without rebinding it is caught like any other clone gap.
func isSnapshotMethodName(name string) bool {
	switch name {
	case "Clone", "clone", "Fork", "Rebind":
		return true
	}
	return false
}

// checkSnapshotCompleteness verifies every snapshot method declared in
// the package copies (or deliberately mentions) every field of its
// receiver struct, and anchors the whole contract by requiring that
// machine.Machine — the root of the forked object graph — has a Fork
// method at all.
func checkSnapshotCompleteness(p *Pass) {
	targets, decls := methodTargets(p, isSnapshotMethodName)

	// Anchor: the machine package must expose Machine.Fork. Without
	// this, deleting the fork layer wholesale would also delete every
	// struct this rule checks, and the rule would pass vacuously.
	if p.Path == ModulePath+"/internal/machine" {
		found := false
		for _, t := range targets {
			if t.named.Obj().Name() == "Machine" && t.fn.Name() == "Fork" {
				found = true
			}
		}
		if !found {
			if pos := typeDeclPos(p, "Machine"); pos.IsValid() {
				p.Reportf(pos, "machine.Machine has no Fork method: the snapshot layer's root clone is missing (SL013's completeness contract has nothing to anchor to)")
			}
		}
	}

	reportUnmentionedFields(p, targets, decls,
		"field %s.%s is never referenced by %s or any same-package function it reaches: a fork would silently drop it; copy it (or mention it with a deliberate zero and a comment)")
}

// methodTarget names one completeness-checked method: a method matching
// the rule's name predicate, declared in the pass's package on a struct
// receiver.
type methodTarget struct {
	named *types.Named
	fn    *types.Func
}

// methodTargets collects the pass's completeness targets per the name
// predicate, plus the package's full func→decl index (which the
// reachability walk needs for every rule that calls this).
func methodTargets(p *Pass, nameMatch func(string) bool) ([]methodTarget, map[*types.Func]*ast.FuncDecl) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	var targets []methodTarget
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if fd.Recv == nil || !nameMatch(fd.Name.Name) {
				continue
			}
			named := receiverStruct(fn)
			if named == nil || named.Obj().Pkg() != p.Pkg {
				continue
			}
			targets = append(targets, methodTarget{named, fn})
		}
	}
	return targets, decls
}

// reportUnmentionedFields reports, for each target method, every field
// of its receiver struct that neither the method nor any same-package
// function it transitively reaches ever references. format receives
// (type, field, method).
func reportUnmentionedFields(p *Pass, targets []methodTarget, decls map[*types.Func]*ast.FuncDecl, format string) {
	if len(targets) == 0 {
		return
	}
	fe := p.runner.factsEngine()
	for _, t := range targets {
		st, ok := t.named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		refs := make(map[types.Object]bool)
		for _, fd := range reachableDecls(p, fe, t.fn, decls) {
			collectFieldRefs(p, fd, refs)
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || refs[f] {
				continue
			}
			p.Reportf(f.Pos(), format, t.named.Obj().Name(), f.Name(), t.fn.Name())
		}
	}
}

// typeDeclPos finds the declaration position of a named type in the
// pass's files (token.NoPos when absent).
func typeDeclPos(p *Pass, name string) token.Pos {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return ts.Name.Pos()
				}
			}
		}
	}
	return token.NoPos
}

// receiverStruct resolves a method's receiver to its named struct
// type, looking through one level of pointer.
func receiverStruct(fn *types.Func) *types.Named {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// reachableDecls returns the function declarations in the pass's
// package transitively reachable from fn (fn included), per the facts
// engine's call graph. Function literals need no separate handling:
// a literal's body is nested inside some declaration's AST, and
// ast.Inspect over that declaration walks it.
func reachableDecls(p *Pass, fe *factsEngine, fn *types.Func, decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	root := fe.graph.byFunc[fn]
	if root == nil {
		if fd := decls[fn]; fd != nil {
			return []*ast.FuncDecl{fd}
		}
		return nil
	}
	seen := map[*graphNode]bool{root: true}
	queue := []*graphNode{root}
	var out []*ast.FuncDecl
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.fn != nil {
			if fd := decls[n.fn]; fd != nil {
				out = append(out, fd)
			}
		}
		for _, e := range n.out {
			if e.to.pkg != p.Pkg || seen[e.to] {
				continue
			}
			seen[e.to] = true
			queue = append(queue, e.to)
		}
	}
	return out
}

// collectFieldRefs records every struct field the declaration's body
// references: selector reads/writes (types.FieldVal selections), keys
// of keyed struct composite literals, and — for unkeyed struct
// literals — every field of the literal's type.
func collectFieldRefs(p *Pass, fd *ast.FuncDecl, refs map[types.Object]bool) {
	ast.Inspect(fd, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				refs[sel.Obj()] = true
			}
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[e]
			if !ok {
				return true
			}
			st, ok := tv.Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			keyed := false
			for _, elt := range e.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyed = true
				if key, ok := kv.Key.(*ast.Ident); ok {
					if obj := p.Info.Uses[key]; obj != nil {
						refs[obj] = true
					}
				}
			}
			if !keyed && len(e.Elts) > 0 {
				for i := 0; i < st.NumFields(); i++ {
					refs[st.Field(i)] = true
				}
			}
		}
		return true
	})
}
