package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Inline waivers. A line-scoped directive
//
//	//simlint:ignore SL0xx reason the rule does not apply here
//
// suppresses matching diagnostics: a trailing directive covers its own
// line, a directive alone on its line covers the next line. The reason
// is mandatory — a reason-less or otherwise malformed directive is
// itself a finding (rule SL000) and suppresses nothing. A waiver for
// one of the file-local determinism rules (SL001–SL003) also covers
// SL010, whose diagnostics anchor at the same construct, so one
// reviewed directive clears both the local finding and its
// interprocedural echo. Tree sweeps (LintTree) additionally report
// waivers that suppressed nothing, so stale directives surface as
// SL000 findings instead of lingering silently.

const ignoreDirective = "//simlint:ignore"

// waiver is one well-formed parsed directive.
type waiver struct {
	rule   string // the waived rule, e.g. "SL012"
	reason string
	line   int       // the source line the waiver covers
	pos    token.Pos // the directive itself, for unused-waiver reports
	used   bool
}

// badWaiver is a malformed directive, reported by SL000.
type badWaiver struct {
	pos token.Pos
	msg string
}

// indexWaivers scans a parsed file's comments for ignore directives and
// records them (valid and malformed) in the runner's indexes. src is
// the file's source, used to distinguish trailing directives from
// standalone ones.
func (r *Runner) indexWaivers(f *ast.File, src []byte) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if text != ignoreDirective && !strings.HasPrefix(text, ignoreDirective+" ") {
				continue
			}
			pos := r.fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
			id, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if _, known := RuleByID(id); !known {
				r.badWaivers[pos.Filename] = append(r.badWaivers[pos.Filename], badWaiver{
					pos: c.Pos(),
					msg: "ignore directive must name a rule: //simlint:ignore SL0xx reason",
				})
				continue
			}
			if reason == "" {
				r.badWaivers[pos.Filename] = append(r.badWaivers[pos.Filename], badWaiver{
					pos: c.Pos(),
					msg: "ignore directive for " + id + " is missing its mandatory reason",
				})
				continue
			}
			line := pos.Line
			if standaloneComment(src, pos.Offset) {
				line++ // a directive alone on its line covers the next
			}
			r.waivers[pos.Filename] = append(r.waivers[pos.Filename], waiver{
				rule: id, reason: reason, line: line, pos: c.Pos(),
			})
		}
	}
}

// standaloneComment reports whether only whitespace precedes the
// comment starting at offset on its line.
func standaloneComment(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case ' ', '\t':
			continue
		case '\n', '\r':
			return true
		default:
			return false
		}
	}
	return true // first line of the file
}

// applyWaivers filters diagnostics through the waiver index. Waivers
// are looked up by the diagnostic's own file, so interprocedural
// findings (SL010 chains, SL012 callees) are waived where they point.
func (r *Runner) applyWaivers(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if r.waived(d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func (r *Runner) waived(d Diagnostic) bool {
	ws := r.waivers[d.Pos.Filename]
	for i := range ws {
		if waiverCovers(ws[i].rule, d.Rule) && ws[i].line == d.Pos.Line {
			ws[i].used = true
			return true
		}
	}
	return false
}

// waiverCovers reports whether a directive naming waivedRule suppresses
// a diagnostic from diagRule on its line. Exact matches always do; in
// addition, a waiver for one of the file-local determinism rules
// (SL001–SL003) covers SL010, which anchors its diagnostic at the same
// offending construct — so a single reviewed directive clears both the
// local finding and its interprocedural echo. The reverse does not
// hold: an SL010 waiver names the reachability finding only, leaving
// the local rule to demand its own justification.
func waiverCovers(waivedRule, diagRule string) bool {
	if waivedRule == diagRule {
		return true
	}
	if diagRule != "SL010" {
		return false
	}
	switch waivedRule {
	case "SL001", "SL002", "SL003":
		return true
	}
	return false
}

// unusedWaiverDiags returns SL000 findings for well-formed waivers in
// the given files that suppressed nothing — stale directives whose
// finding has since been fixed (or never existed). Only files that
// were actually linted are eligible: a dependency package loaded for
// type-checking but outside the linted tree never had its rules run,
// so its waivers had no chance to be used.
func (r *Runner) unusedWaiverDiags(lintedFiles map[string]bool) []Diagnostic {
	files := make([]string, 0, len(r.waivers))
	for f := range r.waivers {
		if lintedFiles[f] {
			files = append(files, f)
		}
	}
	sort.Strings(files)
	var out []Diagnostic
	for _, f := range files {
		for _, w := range r.waivers[f] {
			if w.used {
				continue
			}
			out = append(out, Diagnostic{
				Rule: "SL000",
				Pos:  r.fset.Position(w.pos),
				Msg: "unused //simlint:ignore " + w.rule +
					" waiver: it suppresses no finding; remove the stale directive",
			})
		}
	}
	return out
}

// checkWaiverDirectives is SL000: malformed ignore directives in the
// pass's files.
func checkWaiverDirectives(p *Pass) {
	for _, file := range p.Files {
		filename := p.Fset.Position(file.Pos()).Filename
		for _, bw := range p.runner.badWaivers[filename] {
			p.Reportf(bw.pos, "%s", bw.msg)
		}
	}
}
