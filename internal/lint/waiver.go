package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Inline waivers. A line-scoped directive
//
//	//simlint:ignore SL0xx reason the rule does not apply here
//
// suppresses matching diagnostics: a trailing directive covers its own
// line, a directive alone on its line covers the next line. The reason
// is mandatory — a reason-less or otherwise malformed directive is
// itself a finding (rule SL000) and suppresses nothing.

const ignoreDirective = "//simlint:ignore"

// waiver is one well-formed parsed directive.
type waiver struct {
	rule   string // the waived rule, e.g. "SL012"
	reason string
	line   int // the source line the waiver covers
	used   bool
}

// badWaiver is a malformed directive, reported by SL000.
type badWaiver struct {
	pos token.Pos
	msg string
}

// indexWaivers scans a parsed file's comments for ignore directives and
// records them (valid and malformed) in the runner's indexes. src is
// the file's source, used to distinguish trailing directives from
// standalone ones.
func (r *Runner) indexWaivers(f *ast.File, src []byte) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if text != ignoreDirective && !strings.HasPrefix(text, ignoreDirective+" ") {
				continue
			}
			pos := r.fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
			id, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if _, known := RuleByID(id); !known {
				r.badWaivers[pos.Filename] = append(r.badWaivers[pos.Filename], badWaiver{
					pos: c.Pos(),
					msg: "ignore directive must name a rule: //simlint:ignore SL0xx reason",
				})
				continue
			}
			if reason == "" {
				r.badWaivers[pos.Filename] = append(r.badWaivers[pos.Filename], badWaiver{
					pos: c.Pos(),
					msg: "ignore directive for " + id + " is missing its mandatory reason",
				})
				continue
			}
			line := pos.Line
			if standaloneComment(src, pos.Offset) {
				line++ // a directive alone on its line covers the next
			}
			r.waivers[pos.Filename] = append(r.waivers[pos.Filename], waiver{
				rule: id, reason: reason, line: line,
			})
		}
	}
}

// standaloneComment reports whether only whitespace precedes the
// comment starting at offset on its line.
func standaloneComment(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case ' ', '\t':
			continue
		case '\n', '\r':
			return true
		default:
			return false
		}
	}
	return true // first line of the file
}

// applyWaivers filters diagnostics through the waiver index. Waivers
// are looked up by the diagnostic's own file, so interprocedural
// findings (SL010 chains, SL012 callees) are waived where they point.
func (r *Runner) applyWaivers(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if r.waived(d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func (r *Runner) waived(d Diagnostic) bool {
	ws := r.waivers[d.Pos.Filename]
	for i := range ws {
		if ws[i].rule == d.Rule && ws[i].line == d.Pos.Line {
			ws[i].used = true
			return true
		}
	}
	return false
}

// checkWaiverDirectives is SL000: malformed ignore directives in the
// pass's files.
func checkWaiverDirectives(p *Pass) {
	for _, file := range p.Files {
		filename := p.Fset.Position(file.Pos()).Filename
		for _, bw := range p.runner.badWaivers[filename] {
			p.Reportf(bw.pos, "%s", bw.msg)
		}
	}
}
