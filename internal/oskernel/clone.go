package oskernel

import (
	"graphmem/internal/memsys"
	"graphmem/internal/vm"
)

// Clone returns an independent copy of the policy engine bound to a
// cloned physical node and address space (the caller clones those
// first; the kernel layer holds no mapping state of its own). Scan and
// demotion cursors, the last-khugepaged-scan deadline, counters, and
// the hugetlbfs reservation pool all carry over, so the forked
// kernel's next decision — which region khugepaged scans, when the
// next tick fires, which huge frame a reservation hands out — is
// exactly the decision the original would have made.
func (k *Kernel) Clone(mem *memsys.Memory, space *vm.AddressSpace) *Kernel {
	return &Kernel{
		cfg:          k.cfg,
		mem:          mem,
		space:        space,
		model:        k.model,
		stats:        k.stats,
		scanVMA:      k.scanVMA,
		scanRegion:   k.scanRegion,
		lastScan:     k.lastScan,
		demoteVMA:    k.demoteVMA,
		demoteRegion: k.demoteRegion,
		hugetlbPool:  append([]memsys.Frame(nil), k.hugetlbPool...),
		// heatCands is per-scan scratch, cleared at the end of every
		// scan; the clone starts with an empty buffer and re-grows it.
		heatCands: nil,
	}
}
