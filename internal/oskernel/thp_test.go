package oskernel

import (
	"testing"

	"graphmem/internal/cost"
	"graphmem/internal/memsys"
	"graphmem/internal/vm"
)

func newKernel(t *testing.T, cfg Config) (*Kernel, *vm.AddressSpace, *memsys.Memory) {
	t.Helper()
	mem := memsys.New(64 << 20)
	space := vm.NewAddressSpace(mem)
	return New(cfg, space, cost.Fast()), space, mem
}

// fault triggers the fault path for page p of v.
func fault(t *testing.T, k *Kernel, space *vm.AddressSpace, v *vm.VMA, p int) uint64 {
	t.Helper()
	_, fi, ok := space.Translate(v.PageVA(p))
	if ok {
		t.Fatalf("page %d already mapped", p)
	}
	if fi == nil {
		t.Fatalf("page %d not in any VMA", p)
	}
	_, cycles := k.HandleFault(fi)
	return cycles
}

func TestModeNeverNeverHuge(t *testing.T) {
	k, space, _ := newKernel(t, BaselineConfig())
	v := space.Mmap("a", 4*memsys.HugeSize)
	v.Madvise(0, v.Bytes, vm.AdviceHuge) // advice must be ignored
	fault(t, k, space, v, 0)
	if v.HugeMapped(0) {
		t.Fatal("huge page under ModeNever")
	}
	if k.Stats().Faults4K != 1 {
		t.Fatalf("stats = %+v", k.Stats())
	}
}

func TestModeAlwaysHugeOnFirstTouch(t *testing.T) {
	k, space, _ := newKernel(t, DefaultConfig())
	v := space.Mmap("a", 4*memsys.HugeSize)
	cycles := fault(t, k, space, v, 700) // page in region 1
	if !v.HugeMapped(1) {
		t.Fatal("no huge page under ModeAlways on first touch")
	}
	if cycles < cost.Fast().MinorFault2M {
		t.Fatalf("huge fault cost %d below MinorFault2M", cycles)
	}
	// The rest of the region must now translate without faulting.
	if _, _, ok := space.Translate(v.PageVA(512)); !ok {
		t.Fatal("region not fully mapped after huge fault")
	}
}

func TestModeMadviseRequiresAdvice(t *testing.T) {
	k, space, _ := newKernel(t, MadviseConfig())
	v := space.Mmap("a", 4*memsys.HugeSize)
	v.Madvise(0, memsys.HugeSize, vm.AdviceHuge) // region 0 only
	fault(t, k, space, v, 0)
	fault(t, k, space, v, 512)
	if !v.HugeMapped(0) {
		t.Fatal("advised region not huge")
	}
	if v.HugeMapped(1) {
		t.Fatal("unadvised region huge under ModeMadvise")
	}
}

func TestNoHugeAdviceBlocksAlways(t *testing.T) {
	k, space, _ := newKernel(t, DefaultConfig())
	v := space.Mmap("a", 2*memsys.HugeSize)
	v.Madvise(0, memsys.HugeSize, vm.AdviceNoHuge)
	fault(t, k, space, v, 0)
	if v.HugeMapped(0) {
		t.Fatal("MADV_NOHUGEPAGE ignored")
	}
}

func TestPartialTailRegionNeverHuge(t *testing.T) {
	k, space, _ := newKernel(t, DefaultConfig())
	v := space.Mmap("a", memsys.HugeSize+memsys.PageSize)
	fault(t, k, space, v, vm.RegionPages) // the lone tail page
	if v.HugeMapped(1) {
		t.Fatal("partial region mapped huge")
	}
}

func TestRegionWith4KPagesFaultsBase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KhugepagedEnabled = false
	k, space, mem := newKernel(t, cfg)
	v := space.Mmap("a", 2*memsys.HugeSize)
	// Pre-map one 4K page in region 0: subsequent faults in that
	// region must use base pages (no huge fault over existing PTEs).
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	space.MapBase(v, 3, f)
	fault(t, k, space, v, 10)
	if v.HugeMapped(0) {
		t.Fatal("huge fault over populated region")
	}
}

// exhaustHuge consumes every free huge block, then frees every other
// page of the last block so plenty of 4K memory remains free but no
// contiguous 2MB region exists.
func exhaustHuge(t *testing.T, mem *memsys.Memory) {
	t.Helper()
	last := memsys.NoFrame
	for {
		f := mem.Alloc(memsys.HugeOrder, memsys.Unmovable, nil, 0)
		if f == memsys.NoFrame {
			break
		}
		last = f
	}
	if last == memsys.NoFrame {
		t.Fatal("exhaustHuge: no huge block was available")
	}
	mem.SplitAllocated(last, memsys.HugeOrder)
	for i := memsys.Frame(0); i < memsys.HugePages; i += 2 {
		mem.Free(last+i, 0)
	}
	if mem.FreeHugeBlocks() != 0 {
		t.Fatal("exhaustHuge: huge blocks remain")
	}
}

// hogAllButScattered allocates every free huge block, then splits the
// last `split` of them and frees every other constituent page: plenty of
// scattered 4K memory remains free, but no 2MB contiguity. It returns
// the intact hog blocks so tests can release contiguity later.
func hogAllButScattered(t *testing.T, mem *memsys.Memory, split int) []memsys.Frame {
	t.Helper()
	var hogs []memsys.Frame
	for {
		f := mem.Alloc(memsys.HugeOrder, memsys.Unmovable, nil, 0)
		if f == memsys.NoFrame {
			break
		}
		hogs = append(hogs, f)
	}
	if len(hogs) < split {
		t.Fatal("hogAllButScattered: not enough huge blocks")
	}
	for i := 0; i < split; i++ {
		f := hogs[len(hogs)-1]
		hogs = hogs[:len(hogs)-1]
		mem.SplitAllocated(f, memsys.HugeOrder)
		for j := memsys.Frame(0); j < memsys.HugePages; j += 2 {
			mem.Free(f+j, 0)
		}
	}
	if mem.FreeHugeBlocks() != 0 {
		t.Fatal("hogAllButScattered: huge blocks remain")
	}
	return hogs
}

func TestFallbackTo4KWithoutDefrag(t *testing.T) {
	cfg := DefaultConfig() // Defrag=madvise; VMA not advised → no stall
	k, space, mem := newKernel(t, cfg)
	exhaustHuge(t, mem)
	v := space.Mmap("a", 2*memsys.HugeSize)
	fault(t, k, space, v, 0)
	if v.HugeMapped(0) {
		t.Fatal("huge page appeared with no free huge blocks")
	}
	s := k.Stats()
	if s.HugeFallbacks != 1 || s.Faults4K != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CompactionRuns != 0 {
		t.Fatal("non-advised fault ran direct compaction under defrag=madvise")
	}
}

func TestDefragMadviseStallsForAdvised(t *testing.T) {
	k, space, mem := newKernel(t, MadviseConfig())
	// Fragment all memory with movable pages so compaction CAN fix it.
	owner := space // any Owner works; frames here are never mapped
	_ = owner
	total := memsys.Frame(mem.TotalPages())
	for f := memsys.Frame(0); f < total; f += memsys.HugePages {
		if !mem.AllocAt(f+1, 0, memsys.Pinned, nil, 0) {
			t.Fatal("setup alloc failed")
		}
	}
	if mem.FreeHugeBlocks() != 0 {
		t.Fatal("setup: huge blocks remain")
	}
	v := space.Mmap("a", 2*memsys.HugeSize)
	v.Madvise(0, v.Bytes, vm.AdviceHuge)
	fault(t, k, space, v, 0)
	if !v.HugeMapped(0) {
		t.Fatal("advised fault did not compact its way to a huge page")
	}
	s := k.Stats()
	if s.CompactionRuns == 0 || s.PagesMigrated == 0 {
		t.Fatalf("no compaction recorded: %+v", s)
	}
}

func TestSwapInCost(t *testing.T) {
	cfg := BaselineConfig()
	k, space, mem := newKernel(t, cfg)
	v := space.Mmap("a", memsys.HugeSize)
	fault(t, k, space, v, 0)
	if d, s := mem.ReclaimPages(1); d+s != 1 {
		t.Fatal("reclaim failed")
	}
	_, fi, _ := space.Translate(v.PageVA(0))
	if fi == nil || !fi.Swapped {
		t.Fatal("page not swapped")
	}
	_, cycles := k.HandleFault(fi)
	if cycles < cost.Fast().SwapInPage {
		t.Fatalf("swap-in fault cost %d below device latency", cycles)
	}
	if k.Stats().SwapIns != 1 {
		t.Fatalf("stats = %+v", k.Stats())
	}
}

func TestKhugepagedPromotes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeAlways
	cfg.KhugepagedInterval = 1
	cfg.KhugepagedRegionsPerScan = 64
	k, space, mem := newKernel(t, cfg)

	// Consume free huge blocks so the faults all land on 4K pages,
	// leaving scattered 4K holes to fault into...
	hogs := hogAllButScattered(t, mem, 2)
	v := space.Mmap("a", memsys.HugeSize)
	for p := 0; p < vm.RegionPages; p++ {
		fault(t, k, space, v, p)
	}
	if v.HugeMapped(0) {
		t.Fatal("setup: region went huge at fault time")
	}
	// ...then release contiguity and let khugepaged collapse it.
	for _, f := range hogs {
		mem.Free(f, memsys.HugeOrder)
	}
	k.Tick(100)
	if !v.HugeMapped(0) {
		t.Fatal("khugepaged did not promote a fully-populated region")
	}
	s := k.Stats()
	if s.Promotions != 1 || s.KhugepagedCycles == 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Promotion must not leak the old 4K frames: only the huge page
	// (plus the hog-era splits) remain.
	if _, _, ok := space.Translate(v.PageVA(100)); !ok {
		t.Fatal("translation broken after promotion")
	}
}

func TestKhugepagedMaxPtesNone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KhugepagedInterval = 1
	cfg.MaxPtesNone = 0 // require fully-populated regions
	k, space, mem := newKernel(t, cfg)
	hogs := hogAllButScattered(t, mem, 2)
	v := space.Mmap("a", memsys.HugeSize)
	for p := 0; p < vm.RegionPages/2; p++ {
		fault(t, k, space, v, p)
	}
	for _, f := range hogs {
		mem.Free(f, memsys.HugeOrder)
	}
	k.Tick(100)
	if v.HugeMapped(0) {
		t.Fatal("half-populated region promoted despite MaxPtesNone=0")
	}
}

func TestDemoteSplitsMapping(t *testing.T) {
	k, space, _ := newKernel(t, DefaultConfig())
	v := space.Mmap("a", memsys.HugeSize)
	fault(t, k, space, v, 0)
	if !v.HugeMapped(0) {
		t.Fatal("setup: not huge")
	}
	k.Demote(v, 0)
	if v.HugeMapped(0) {
		t.Fatal("still huge after Demote")
	}
	if k.Stats().Demotions != 1 {
		t.Fatalf("stats = %+v", k.Stats())
	}
}

func TestReclaimDemotesHugeUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KhugepagedEnabled = false
	k, space, mem := newKernel(t, cfg)
	v := space.Mmap("a", 2*uint64(mem.TotalPages())*memsys.PageSize)
	// Fault everything huge until memory is exhausted, then one more
	// 4K fault forces reclaim, which must demote+swap.
	r := 0
	for mem.FreeHugeBlocks() > 0 {
		fault(t, k, space, v, r*vm.RegionPages)
		r++
	}
	free := mem.FreePages()
	if free != 0 {
		t.Fatalf("setup: %d pages still free", free)
	}
	fault(t, k, space, v, r*vm.RegionPages)
	s := k.Stats()
	if space.ReclaimDemotions == 0 {
		t.Fatalf("pressure fault did not split a THP: %+v", s)
	}
	if s.SwapOuts == 0 {
		t.Fatalf("pressure fault did not swap: %+v", s)
	}
}

func TestTickCadence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KhugepagedInterval = 1000
	k, space, _ := newKernel(t, cfg)
	_ = space.Mmap("a", memsys.HugeSize)
	k.Tick(500) // before the interval elapses: no scan
	k.Tick(999)
	if k.lastScan != 0 {
		t.Fatal("scan ran before interval")
	}
	k.Tick(1500)
	if k.lastScan != 1500 {
		t.Fatal("scan did not run after interval")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeAlways.String() != "always" || ModeNever.String() != "never" ||
		ModeMadvise.String() != "madvise" {
		t.Fatal("THPMode strings wrong")
	}
	if DefragMadvise.String() != "madvise" || DefragNever.String() != "never" ||
		DefragAlways.String() != "always" {
		t.Fatal("DefragMode strings wrong")
	}
}

func TestIngensNoFaultTimeHuge(t *testing.T) {
	k, space, _ := newKernel(t, IngensConfig())
	v := space.Mmap("a", 4*memsys.HugeSize)
	fault(t, k, space, v, 0)
	if v.HugeMapped(0) {
		t.Fatal("Ingens-style engine allocated a huge page at fault time")
	}
}

func TestIngensPromotesAtUtilization(t *testing.T) {
	cfg := IngensConfig()
	cfg.KhugepagedInterval = 1
	k, space, _ := newKernel(t, cfg)
	v := space.Mmap("a", memsys.HugeSize)
	// Populate just below the 90% threshold: no promotion.
	for p := 0; p < vm.RegionPages-cfg.MaxPtesNone-1; p++ {
		fault(t, k, space, v, p)
	}
	k.Tick(10)
	if v.HugeMapped(0) {
		t.Fatal("promoted below utilization threshold")
	}
	// Cross the threshold: promotion follows.
	for p := vm.RegionPages - cfg.MaxPtesNone - 1; p < vm.RegionPages; p++ {
		fault(t, k, space, v, p)
	}
	k.Tick(20)
	if !v.HugeMapped(0) {
		t.Fatal("did not promote at utilization threshold")
	}
}

func TestHawkEyePromotesHottestFirst(t *testing.T) {
	cfg := HawkEyeConfig()
	cfg.KhugepagedInterval = 1
	cfg.KhugepagedRegionsPerScan = 1 // one promotion per scan: order is observable
	k, space, _ := newKernel(t, cfg)
	v := space.Mmap("a", 3*memsys.HugeSize)
	for p := 0; p < 3*vm.RegionPages; p++ {
		fault(t, k, space, v, p)
	}
	// Region 1 is the hottest, region 0 cold, region 2 warm.
	v.AddHeat(0, 10)
	v.AddHeat(1, 1000)
	v.AddHeat(2, 100)
	k.Tick(10)
	if !v.HugeMapped(1) || v.HugeMapped(0) || v.HugeMapped(2) {
		t.Fatalf("first promotion order wrong: %v %v %v",
			v.HugeMapped(0), v.HugeMapped(1), v.HugeMapped(2))
	}
	k.Tick(20)
	if !v.HugeMapped(2) {
		t.Fatal("second promotion did not take the next-hottest region")
	}
}

func TestHugetlbReservationSurvivesFragmentation(t *testing.T) {
	cfg := MadviseConfig()
	cfg.HugetlbReserve = 2
	k, space, mem := newKernel(t, cfg)
	if k.HugetlbFree() != 2 {
		t.Fatalf("reserved %d, want 2", k.HugetlbFree())
	}
	// Destroy all remaining contiguity with unmovable litter.
	total := memsys.Frame(mem.TotalPages())
	for f := memsys.Frame(0); f < total; f += memsys.HugePages {
		mem.AllocAt(f+3, 0, memsys.Unmovable, nil, 0)
	}
	if mem.FreeHugeBlocks() != 0 {
		t.Fatal("setup: contiguity remains")
	}
	v := space.Mmap("a", 3*memsys.HugeSize)
	v.Madvise(0, 2*memsys.HugeSize, vm.AdviceHuge)
	fault(t, k, space, v, 0)
	fault(t, k, space, v, 512)
	fault(t, k, space, v, 1024) // unadvised region: not pool-eligible
	if !v.HugeMapped(0) || !v.HugeMapped(1) {
		t.Fatal("reserved pool did not back the advised regions")
	}
	if v.HugeMapped(2) {
		t.Fatal("unadvised region stole from the pool")
	}
	if k.HugetlbFree() != 0 {
		t.Fatalf("pool remaining %d, want 0", k.HugetlbFree())
	}
	// Pool-backed mappings are immune to reclaim splitting.
	d, s := mem.ReclaimPages(4)
	if v.HugeMapped(0) != true || space.ReclaimDemotions != 0 {
		t.Fatalf("reserved mapping split under reclaim (d=%d s=%d)", d, s)
	}
}

func TestHugetlbReserveTruncatesGracefully(t *testing.T) {
	cfg := MadviseConfig()
	cfg.HugetlbReserve = 1 << 20 // far beyond memory
	k, _, _ := newKernel(t, cfg)
	if k.HugetlbFree() == 0 || k.HugetlbFree() >= 1<<20 {
		t.Fatalf("reservation = %d, want truncated to memory size", k.HugetlbFree())
	}
}

func TestConfigAccessorsAndSetMode(t *testing.T) {
	k, space, _ := newKernel(t, DefaultConfig())
	if k.Config().Mode != ModeAlways {
		t.Fatal("Config() wrong")
	}
	k.SetMode(ModeNever)
	v := space.Mmap("a", 2*memsys.HugeSize)
	fault(t, k, space, v, 0)
	if v.HugeMapped(0) {
		t.Fatal("SetMode(never) ignored")
	}
	k.ResetStats()
	if k.Stats().Faults4K != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestDefragAlwaysStallsForUnadvised(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Defrag = DefragAlways
	k, space, mem := newKernel(t, cfg)
	// Movable fragmentation everywhere: only compaction can produce a
	// huge page.
	total := memsys.Frame(mem.TotalPages())
	for f := memsys.Frame(0); f < total; f += memsys.HugePages {
		if !mem.AllocAt(f+1, 0, memsys.Pinned, nil, 0) {
			t.Fatal("setup failed")
		}
	}
	v := space.Mmap("a", 2*memsys.HugeSize) // NOT advised
	fault(t, k, space, v, 0)
	if !v.HugeMapped(0) {
		t.Fatal("defrag=always did not compact for an unadvised fault")
	}
}

func TestDemoteOneHugeFallbackUnderReclaim(t *testing.T) {
	// When reclaim's split-THP path is unavailable (mappings vetoed by
	// their owner), the kernel-side demotion cursor must still find and
	// split huge mappings. Simulate by exhausting movable candidates:
	// map everything huge, then force a 4K allocation.
	cfg := DefaultConfig()
	cfg.KhugepagedEnabled = false
	k, space, mem := newKernel(t, cfg)
	v := space.Mmap("a", 2*uint64(mem.TotalPages())*memsys.PageSize)
	r := 0
	for mem.FreeHugeBlocks() > 0 {
		fault(t, k, space, v, r*vm.RegionPages)
		r++
	}
	// All memory is huge-mapped; the next fault must make progress via
	// splitting (either reclaim path), not OOM.
	fault(t, k, space, v, r*vm.RegionPages)
	if _, _, ok := space.Translate(v.PageVA(r * vm.RegionPages)); !ok {
		t.Fatal("fault under total huge occupancy did not map")
	}
}

func TestPromoteRegionCompactsWhenFragmented(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KhugepagedInterval = 1
	cfg.KhugepagedRegionsPerScan = 4
	k, space, mem := newKernel(t, cfg)
	// Fill the region's pages as 4K despite eligibility by exhausting
	// contiguity first (movable litter), then khugepaged must compact
	// its way to a promotion.
	total := memsys.Frame(mem.TotalPages())
	for f := memsys.Frame(0); f < total; f += memsys.HugePages {
		if !mem.AllocAt(f+1, 0, memsys.Pinned, nil, 0) {
			t.Fatal("setup failed")
		}
	}
	v := space.Mmap("a", memsys.HugeSize)
	for p := 0; p < vm.RegionPages; p++ {
		fault(t, k, space, v, p)
	}
	if v.HugeMapped(0) {
		t.Fatal("setup: fault-time huge unexpectedly succeeded")
	}
	k.Tick(10)
	if !v.HugeMapped(0) {
		t.Fatal("khugepaged did not compact+promote")
	}
	if k.Stats().Promotions != 1 {
		t.Fatalf("stats: %+v", k.Stats())
	}
}

// TestHandleFaultReturnsMappedTranslation pins the staged-engine
// contract: the translation HandleFault returns must equal what a fresh
// page-table walk reports afterwards, on the huge, base, and swap-in
// paths — the machine seeds its translation cache from it without a
// second Translate.
func TestHandleFaultReturnsMappedTranslation(t *testing.T) {
	// Huge path: first touch of a full region under ModeAlways.
	k, space, _ := newKernel(t, DefaultConfig())
	v := space.Mmap("a", memsys.HugeSize+memsys.PageSize)
	_, fi, ok := space.Translate(v.PageVA(0))
	if ok || fi == nil {
		t.Fatal("expected a demand fault")
	}
	tr, cycles := k.HandleFault(fi)
	if cycles == 0 {
		t.Fatal("fault charged no cycles")
	}
	want, _, ok := space.Translate(v.PageVA(0))
	if !ok || tr != want {
		t.Fatalf("huge fault returned %+v, fresh walk reports %+v", tr, want)
	}
	if tr.Size != vm.Page2M {
		t.Fatalf("huge fault returned size %v", tr.Size)
	}

	// Base path: the partial tail region is never huge-eligible.
	tail := vm.RegionPages
	_, fi, _ = space.Translate(v.PageVA(tail))
	tr, _ = k.HandleFault(fi)
	want, _, ok = space.Translate(v.PageVA(tail))
	if !ok || tr != want {
		t.Fatalf("base fault returned %+v, fresh walk reports %+v", tr, want)
	}
	if tr.Size != vm.Page4K {
		t.Fatalf("base fault returned size %v", tr.Size)
	}

	// Swap path: evict a 4K page and fault it back in.
	k2, space2, mem2 := newKernel(t, BaselineConfig())
	w := space2.Mmap("b", memsys.PageSize)
	fault(t, k2, space2, w, 0)
	if d, s := mem2.ReclaimPages(1); d+s != 1 {
		t.Fatal("reclaim failed")
	}
	_, fi2, _ := space2.Translate(w.PageVA(0))
	if fi2 == nil || !fi2.Swapped {
		t.Fatal("page not swapped")
	}
	tr2, _ := k2.HandleFault(fi2)
	want2, _, ok := space2.Translate(w.PageVA(0))
	if !ok || tr2 != want2 {
		t.Fatalf("swap-in returned %+v, fresh walk reports %+v", tr2, want2)
	}
}
