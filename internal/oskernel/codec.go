package oskernel

import (
	"graphmem/internal/ckpt"
	"graphmem/internal/memsys"
	"graphmem/internal/vm"
)

// Checkpoint codec (DESIGN.md §5e). Mirrors Clone: config, counters,
// scan/demotion cursors, the khugepaged deadline, and the hugetlbfs
// reservation pool persist — the loaded kernel's next decision must be
// exactly the staged one's — while the mem/space bindings are supplied
// by the caller (which decodes those subsystems itself) and the
// PromoteByHeat scratch buffer stays dead.

func (c *Config) encode(e *ckpt.Encoder) {
	e.U8(uint8(c.Mode))
	e.U8(uint8(c.Defrag))
	e.Bool(c.FaultTimeHuge)
	e.Bool(c.PromoteByHeat)
	e.Bool(c.KhugepagedEnabled)
	e.U64(c.KhugepagedInterval)
	e.Int(c.KhugepagedRegionsPerScan)
	e.Int(c.MaxPtesNone)
	e.Int(c.ReclaimBatch)
	e.Int(c.HugetlbReserve)
}

func (c *Config) decode(d *ckpt.Decoder) {
	c.Mode = THPMode(d.U8())
	c.Defrag = DefragMode(d.U8())
	c.FaultTimeHuge = d.Bool()
	c.PromoteByHeat = d.Bool()
	c.KhugepagedEnabled = d.Bool()
	c.KhugepagedInterval = d.U64()
	c.KhugepagedRegionsPerScan = d.Int()
	c.MaxPtesNone = d.Int()
	c.ReclaimBatch = d.Int()
	c.HugetlbReserve = d.Int()
	if c.Mode > ModeAlways || c.Defrag > DefragAlways {
		d.Failf("oskernel: THP mode %d / defrag mode %d unknown", c.Mode, c.Defrag)
	}
}

func (s *Stats) encode(e *ckpt.Encoder) {
	e.U64(s.Faults4K)
	e.U64(s.FaultsHuge)
	e.U64(s.HugeFallbacks)
	e.U64(s.CompactionRuns)
	e.U64(s.PagesMigrated)
	e.U64(s.PagesDropped)
	e.U64(s.SwapIns)
	e.U64(s.SwapOuts)
	e.U64(s.Promotions)
	e.U64(s.Demotions)
	e.U64(s.FaultCycles)
	e.U64(s.KhugepagedCycles)
}

func (s *Stats) decode(d *ckpt.Decoder) {
	s.Faults4K = d.U64()
	s.FaultsHuge = d.U64()
	s.HugeFallbacks = d.U64()
	s.CompactionRuns = d.U64()
	s.PagesMigrated = d.U64()
	s.PagesDropped = d.U64()
	s.SwapIns = d.U64()
	s.SwapOuts = d.U64()
	s.Promotions = d.U64()
	s.Demotions = d.U64()
	s.FaultCycles = d.U64()
	s.KhugepagedCycles = d.U64()
}

// Encode serializes the policy engine's own state.
func (k *Kernel) Encode(e *ckpt.Encoder) {
	k.cfg.encode(e)
	_ = k.mem   // binding; the loaded kernel is handed its decoded node
	_ = k.space // binding; likewise
	k.model.Encode(e)
	k.stats.encode(e)
	e.Int(k.scanVMA)
	e.Int(k.scanRegion)
	e.U64(k.lastScan)
	e.Int(k.demoteVMA)
	e.Int(k.demoteRegion)
	ckpt.EncodeSlice(e, k.hugetlbPool)
	if len(k.heatCands) != 0 {
		// Per-scan scratch, cleared after every scan; a checkpoint can
		// only be cut between scans.
		e.Failf("oskernel: heat-candidate scratch is live mid-scan")
	}
}

// Decode is Encode's inverse, into a fresh receiver bound to the
// caller's decoded node and space. On any decoder error the receiver
// must be discarded.
func (k *Kernel) Decode(d *ckpt.Decoder, mem *memsys.Memory, space *vm.AddressSpace) {
	k.cfg.decode(d)
	k.mem = mem
	k.space = space
	k.model.Decode(d)
	k.stats.decode(d)
	k.scanVMA = d.Int()
	k.scanRegion = d.Int()
	k.lastScan = d.U64()
	k.demoteVMA = d.Int()
	k.demoteRegion = d.Int()
	k.hugetlbPool = ckpt.DecodeSlice[memsys.Frame](d)
	k.heatCands = nil
	if d.Err() != nil {
		return
	}
	// The scan loops self-heal a VMA cursor past the list (VMAs can be
	// unmapped) but dereference the region cursor before bounding it,
	// so the region cursor must sit inside its VMA.
	vmas := space.VMAs()
	checkCursor := func(vi, ri int, regions func(*vm.VMA) int, name string) {
		if vi < 0 || vi > len(vmas) || ri < 0 {
			d.Failf("oskernel: %s cursor (%d,%d) out of range", name, vi, ri)
			return
		}
		if vi < len(vmas) {
			if max := regions(vmas[vi]); ri >= max && ri != 0 {
				d.Failf("oskernel: %s cursor region %d beyond VMA's %d regions", name, ri, max)
			}
		}
	}
	checkCursor(k.scanVMA, k.scanRegion, (*vm.VMA).FullRegions, "scan")
	checkCursor(k.demoteVMA, k.demoteRegion, (*vm.VMA).Regions, "demotion")
	total := mem.TotalPages()
	for _, hf := range k.hugetlbPool {
		if hf%memsys.HugePages != 0 || uint64(hf)+memsys.HugePages > total {
			d.Failf("oskernel: hugetlb pool frame %d misaligned or out of range", hf)
			return
		}
	}
}
