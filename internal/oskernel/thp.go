// Package oskernel implements the operating-system policy layer of the
// simulation: transparent huge page (THP) modes, page-fault handling
// with the Linux fault-time huge page allocation chain (free block →
// compaction → reclaim → 4KB fallback), the khugepaged background
// promoter, huge page demotion, and swap-in/out.
//
// Package vm provides mechanism; this package decides. The split mirrors
// the paper's distinction between what the hardware/VM can do and what
// Linux's policy chooses to do with it.
package oskernel

import (
	"fmt"

	"graphmem/internal/check"
	"graphmem/internal/cost"
	"graphmem/internal/memsys"
	"graphmem/internal/vm"
)

// THPMode mirrors /sys/kernel/mm/transparent_hugepage/enabled.
type THPMode uint8

const (
	// ModeNever disables THP: all mappings use 4KB pages.
	ModeNever THPMode = iota
	// ModeMadvise uses huge pages only inside MADV_HUGEPAGE regions.
	ModeMadvise
	// ModeAlways uses huge pages for any eligible region.
	ModeAlways
)

func (m THPMode) String() string {
	switch m {
	case ModeNever:
		return "never"
	case ModeMadvise:
		return "madvise"
	case ModeAlways:
		return "always"
	}
	return fmt.Sprintf("THPMode(%d)", uint8(m))
}

// Stats counts kernel activity. Cycle figures separate work charged to
// the faulting task (FaultCycles) from background daemon work
// (KhugepagedCycles), as the paper separates user and kernel time.
type Stats struct {
	Faults4K       uint64
	FaultsHuge     uint64
	HugeFallbacks  uint64 // huge-eligible faults that fell back to 4KB
	CompactionRuns uint64
	PagesMigrated  uint64
	PagesDropped   uint64 // page cache reclaimed
	SwapIns        uint64
	SwapOuts       uint64
	Promotions     uint64
	Demotions      uint64

	FaultCycles      uint64
	KhugepagedCycles uint64
}

// Add returns the field-wise sum s + o. The sharded machine engine
// merges per-shard kernel stats with it (core), so it must cover every
// counter.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Faults4K:         s.Faults4K + o.Faults4K,
		FaultsHuge:       s.FaultsHuge + o.FaultsHuge,
		HugeFallbacks:    s.HugeFallbacks + o.HugeFallbacks,
		CompactionRuns:   s.CompactionRuns + o.CompactionRuns,
		PagesMigrated:    s.PagesMigrated + o.PagesMigrated,
		PagesDropped:     s.PagesDropped + o.PagesDropped,
		SwapIns:          s.SwapIns + o.SwapIns,
		SwapOuts:         s.SwapOuts + o.SwapOuts,
		Promotions:       s.Promotions + o.Promotions,
		Demotions:        s.Demotions + o.Demotions,
		FaultCycles:      s.FaultCycles + o.FaultCycles,
		KhugepagedCycles: s.KhugepagedCycles + o.KhugepagedCycles,
	}
}

// Sub returns the field-wise difference s − o, for subtracting the
// pre-fork baseline each shard machine inherited (every shard carries
// the load phase's counters; summing S shards counts them S times).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Faults4K:         s.Faults4K - o.Faults4K,
		FaultsHuge:       s.FaultsHuge - o.FaultsHuge,
		HugeFallbacks:    s.HugeFallbacks - o.HugeFallbacks,
		CompactionRuns:   s.CompactionRuns - o.CompactionRuns,
		PagesMigrated:    s.PagesMigrated - o.PagesMigrated,
		PagesDropped:     s.PagesDropped - o.PagesDropped,
		SwapIns:          s.SwapIns - o.SwapIns,
		SwapOuts:         s.SwapOuts - o.SwapOuts,
		Promotions:       s.Promotions - o.Promotions,
		Demotions:        s.Demotions - o.Demotions,
		FaultCycles:      s.FaultCycles - o.FaultCycles,
		KhugepagedCycles: s.KhugepagedCycles - o.KhugepagedCycles,
	}
}

// DefragMode mirrors /sys/kernel/mm/transparent_hugepage/defrag: how
// hard a page fault may work (direct compaction + reclaim) to produce a
// huge page when no free 2MB block exists.
type DefragMode uint8

const (
	// DefragNever: a failed huge allocation falls straight back to 4KB.
	DefragNever DefragMode = iota
	// DefragMadvise (the Linux default): only faults inside
	// MADV_HUGEPAGE regions stall for compaction/reclaim. This is the
	// setting behind the paper's "huge pages cannot be created in
	// time" observations for plain THP=always runs.
	DefragMadvise
	// DefragAlways: every eligible fault may stall for defragmentation.
	DefragAlways
)

func (d DefragMode) String() string {
	switch d {
	case DefragNever:
		return "never"
	case DefragMadvise:
		return "madvise"
	case DefragAlways:
		return "always"
	}
	return fmt.Sprintf("DefragMode(%d)", uint8(d))
}

// Config tunes the policy engine.
type Config struct {
	Mode THPMode

	// Defrag controls fault-time compaction/reclaim effort.
	Defrag DefragMode

	// FaultTimeHuge permits huge page allocation directly in the page
	// fault path (Linux THP behaviour). Utilization-driven designs in
	// the paper's related work (Ingens, HawkEye) disable it: faults
	// always map base pages and a background scanner promotes regions
	// that earn it, trading first-touch latency for less bloat.
	FaultTimeHuge bool

	// PromoteByHeat makes the background scanner promote the
	// most-accessed eligible regions first (HawkEye-style access-
	// frequency ranking) instead of round-robin scanning.
	PromoteByHeat bool

	// KhugepagedEnabled turns on the background promoter.
	KhugepagedEnabled bool

	// KhugepagedInterval is the simulated-cycle cadence between
	// background scan batches (driven by the machine's Tick).
	KhugepagedInterval uint64

	// KhugepagedRegionsPerScan bounds promotions per scan batch.
	KhugepagedRegionsPerScan int

	// MaxPtesNone is khugepaged's promotion threshold: a region with
	// more than this many unmapped base pages is not promoted. Linux's
	// default of 511 promotes aggressively; 0 requires full population.
	MaxPtesNone int

	// ReclaimBatch is how many pages direct reclaim frees at once when
	// a 4KB allocation fails.
	ReclaimBatch int

	// HugetlbReserve reserves this many 2MB pages at kernel
	// construction ("boot time"), before any workload or interference
	// touches memory — the hugetlbfs mechanism of §2.3. Reserved pages
	// back MADV_HUGEPAGE regions with priority and are immune to
	// fragmentation, pressure, and reclaim; the price is that the
	// reservation is subtracted from everyone's free memory whether
	// used or not.
	HugetlbReserve int
}

// DefaultConfig returns the policy configuration matching the paper's
// "Linux THP policy" runs: THP always on, fault-time defrag permitted,
// khugepaged enabled with the kernel default promotion threshold.
func DefaultConfig() Config {
	return Config{
		Mode:                     ModeAlways,
		Defrag:                   DefragMadvise,
		FaultTimeHuge:            true,
		KhugepagedEnabled:        true,
		KhugepagedInterval:       10_000_000,
		KhugepagedRegionsPerScan: 8,
		MaxPtesNone:              511,
		ReclaimBatch:             64,
	}
}

// IngensConfig approximates Ingens' utilization-based management
// (Kwon et al., OSDI'16): no fault-time huge pages; an asynchronous
// promoter collapses regions once ≥90% of their base pages are
// populated. This curbs bloat but, as the paper's related work notes,
// utilization is blind to access frequency.
func IngensConfig() Config {
	c := DefaultConfig()
	c.FaultTimeHuge = false
	c.KhugepagedInterval = 2_000_000 // more eager than khugepaged
	c.KhugepagedRegionsPerScan = 16
	c.MaxPtesNone = 51 // ≈90% utilization threshold
	return c
}

// HawkEyeConfig approximates HawkEye's access-driven management
// (Panwar et al., ASPLOS'19): no fault-time huge pages; the promoter
// ranks eligible regions by observed access heat and collapses the
// hottest first.
func HawkEyeConfig() Config {
	c := DefaultConfig()
	c.FaultTimeHuge = false
	c.PromoteByHeat = true
	c.KhugepagedInterval = 2_000_000
	c.KhugepagedRegionsPerScan = 16
	c.MaxPtesNone = 256 // promote hot regions even when half-populated
	return c
}

// BaselineConfig returns the paper's baseline: THP disabled system-wide.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Mode = ModeNever
	c.KhugepagedEnabled = false
	return c
}

// MadviseConfig returns programmer-directed mode: huge pages only where
// madvise(MADV_HUGEPAGE) was applied.
func MadviseConfig() Config {
	c := DefaultConfig()
	c.Mode = ModeMadvise
	return c
}

// Kernel is the live policy engine for one address space.
type Kernel struct {
	cfg   Config
	mem   *memsys.Memory
	space *vm.AddressSpace
	model cost.Model

	stats Stats

	// khugepaged scan cursor (vma index, region index) so repeated
	// batches make progress across the whole address space.
	scanVMA    int
	scanRegion int
	lastScan   uint64

	// demotion cursor for reclaim-driven huge page splitting.
	demoteVMA    int
	demoteRegion int

	// hugetlbPool holds boot-time reserved huge frames (hugetlbfs).
	hugetlbPool []memsys.Frame

	// heatCands is the reusable candidate buffer for PromoteByHeat
	// scans, retained (capacity only) across ticks so steady-state
	// khugepaged batches allocate nothing even at large VMA counts.
	// Contents are scratch — dead between scans and cleared after each
	// one so retained capacity pins no VMAs.
	heatCands []heatCand
}

// heatCand is one PromoteByHeat candidate: a region, its accumulated
// heat, and its discovery ordinal (VMA order, then region ascending),
// which is the deterministic tie-break for equal heat.
type heatCand struct {
	v    *vm.VMA
	r    int
	heat uint64
	ord  int
}

// New wires a kernel to an address space and cost model. If the config
// reserves a hugetlb pool, the reservation happens here — at "boot",
// before any interference can fragment memory. Reservations the memory
// cannot satisfy are silently truncated, as the real sysctl is.
func New(cfg Config, space *vm.AddressSpace, model cost.Model) *Kernel {
	k := &Kernel{cfg: cfg, mem: space.Mem(), space: space, model: model}
	for i := 0; i < cfg.HugetlbReserve; i++ {
		f := k.mem.Alloc(memsys.HugeOrder, memsys.Unmovable, nil, 0)
		if f == memsys.NoFrame {
			break
		}
		k.hugetlbPool = append(k.hugetlbPool, f)
	}
	return k
}

// HugetlbFree reports how many reserved huge pages remain unused.
func (k *Kernel) HugetlbFree() int { return len(k.hugetlbPool) }

// Stats returns a copy of the counters.
func (k *Kernel) Stats() Stats { return k.stats }

// ResetStats zeroes the counters.
func (k *Kernel) ResetStats() { k.stats = Stats{} }

// Config returns the active configuration.
func (k *Kernel) Config() Config { return k.cfg }

// SetMode changes the THP mode at runtime (like writing the sysfs knob).
func (k *Kernel) SetMode(m THPMode) { k.cfg.Mode = m }

// hugeEligible reports whether region r of v may be backed by a huge
// page under the current mode and the region's madvise state. Partial
// tail regions are never eligible (the kernel requires a full 2MB span).
func (k *Kernel) hugeEligible(v *vm.VMA, r int) bool {
	if r >= v.FullRegions() {
		return false
	}
	switch v.AdviceAt(r) {
	case vm.AdviceNoHuge:
		return false
	case vm.AdviceHuge:
		return k.cfg.Mode != ModeNever
	default:
		return k.cfg.Mode == ModeAlways
	}
}

// HandleFault services a page fault and returns the translation of the
// mapping it installed plus the cycle cost charged to the faulting task.
// Returning the translation lets the machine seed its TLB-side state
// without a second radix walk: every fault path installs its mapping as
// its final page-table mutation, so the returned translation is exactly
// what Space.Translate would report afterwards. It panics on
// out-of-memory with all reclaim exhausted, which in this simulator
// indicates a mis-sized experiment rather than a modelled condition.
func (k *Kernel) HandleFault(f *vm.FaultInfo) (vm.Translation, uint64) {
	var tr vm.Translation
	var cycles uint64
	if f.Swapped {
		tr, cycles = k.swapIn(f)
	} else {
		tr, cycles = k.demandFault(f)
	}
	k.stats.FaultCycles += cycles
	return tr, cycles
}

// demandFault maps a never-touched page, choosing huge vs base.
func (k *Kernel) demandFault(f *vm.FaultInfo) (vm.Translation, uint64) {
	v, p := f.VMA, f.Page
	r := p / vm.RegionPages
	if k.cfg.FaultTimeHuge && k.hugeEligible(v, r) && v.Present4KInRegion(r) == 0 && !v.HugeMapped(r) {
		if tr, cycles, ok := k.tryMapHuge(v, r); ok {
			return tr, cycles
		}
		k.stats.HugeFallbacks++
	}
	return k.mapBase(v, p, k.model.MinorFault4K)
}

// mayDefrag reports whether a fault in region r of v is allowed to stall
// for compaction and direct reclaim under the defrag setting.
func (k *Kernel) mayDefrag(v *vm.VMA, r int) bool {
	switch k.cfg.Defrag {
	case DefragAlways:
		return true
	case DefragMadvise:
		return v.AdviceAt(r) == vm.AdviceHuge
	default:
		return false
	}
}

// hugeTranslation is the translation of region r of v after MapHuge,
// mirroring what AddressSpace.Translate reports for a huge mapping.
func hugeTranslation(v *vm.VMA, r int, hf memsys.Frame) vm.Translation {
	return vm.Translation{
		Frame:  hf,
		Size:   vm.Page2M,
		BaseVA: v.Base + uint64(r)*memsys.HugeSize,
		VMA:    v,
	}
}

// tryMapHuge attempts the huge allocation chain: the hugetlb
// reservation first (for advised regions), then the Linux fault-time
// path (free block → compaction → reclaim).
func (k *Kernel) tryMapHuge(v *vm.VMA, r int) (vm.Translation, uint64, bool) {
	if len(k.hugetlbPool) > 0 && v.AdviceAt(r) == vm.AdviceHuge {
		hf := k.hugetlbPool[len(k.hugetlbPool)-1]
		k.hugetlbPool = k.hugetlbPool[:len(k.hugetlbPool)-1]
		// Reserved frames were allocated Unmovable at boot; hand the
		// block to the mapping as-is (it stays exempt from reclaim
		// because its migrate type never becomes Movable).
		k.space.MapHuge(v, r, hf)
		k.stats.FaultsHuge++
		return hugeTranslation(v, r, hf), k.model.MinorFault2M, true
	}
	var cycles uint64
	hf := k.mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	if hf == memsys.NoFrame && k.mayDefrag(v, r) {
		// Direct compaction.
		res := k.mem.TryCompactHuge()
		k.stats.CompactionRuns++
		k.stats.PagesMigrated += uint64(res.Migrated)
		cycles += uint64(res.Migrated) * k.model.CompactPerPage
		if res.Succeeded {
			hf = k.mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
		}
		if hf == memsys.NoFrame {
			// Direct reclaim to open up room, then compact again.
			cycles += k.reclaim(2 * memsys.HugePages)
			res = k.mem.TryCompactHuge()
			k.stats.CompactionRuns++
			k.stats.PagesMigrated += uint64(res.Migrated)
			cycles += uint64(res.Migrated) * k.model.CompactPerPage
			if res.Succeeded {
				hf = k.mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
			}
		}
	}
	if hf == memsys.NoFrame {
		return vm.Translation{}, cycles, false
	}
	k.space.MapHuge(v, r, hf)
	k.stats.FaultsHuge++
	return hugeTranslation(v, r, hf), cycles + k.model.MinorFault2M, true
}

// mapBase maps page p with a 4KB frame, reclaiming if needed.
func (k *Kernel) mapBase(v *vm.VMA, p int, faultCost uint64) (vm.Translation, uint64) {
	var cycles uint64
	f := k.mem.Alloc(0, memsys.Movable, nil, 0)
	if f == memsys.NoFrame {
		cycles += k.reclaim(k.cfg.ReclaimBatch)
		f = k.mem.Alloc(0, memsys.Movable, nil, 0)
		if f == memsys.NoFrame {
			panic(check.Failf("oskernel: OOM mapping %s page %d (free=%d)",
				v.Name, p, k.mem.FreePages()))
		}
	}
	k.space.MapBase(v, p, f)
	k.stats.Faults4K++
	tr := vm.Translation{Frame: f, Size: vm.Page4K, BaseVA: v.PageVA(p), VMA: v}
	return tr, cycles + faultCost
}

// swapIn brings a swapped page back from the swap device.
func (k *Kernel) swapIn(f *vm.FaultInfo) (vm.Translation, uint64) {
	cycles := k.model.SwapInPage
	k.stats.SwapIns++
	tr, mapCycles := k.mapBase(f.VMA, f.Page, k.model.MinorFault4K)
	return tr, cycles + mapCycles
}

// reclaim frees up to want pages and returns the cycle cost of doing so
// (page cache drops are cheap; swap-outs pay device I/O). When base
// pages run out, huge pages are demoted back to base pages so their
// constituents become swappable — Linux's split-under-reclaim behaviour,
// without which a fully-THP-backed workload could never be swapped and
// would OOM instead of thrashing.
func (k *Kernel) reclaim(want int) uint64 {
	var cycles uint64
	got := 0
	for {
		dropped, swapped := k.mem.ReclaimPages(want - got)
		k.stats.PagesDropped += uint64(dropped)
		k.stats.SwapOuts += uint64(swapped)
		cycles += uint64(dropped)*k.model.ReclaimPerPage + uint64(swapped)*k.model.SwapOutPage
		got += dropped + swapped
		if got >= want {
			return cycles
		}
		if !k.demoteOneHuge() {
			return cycles
		}
		cycles += k.model.DemotionFixed
	}
}

// demoteOneHuge splits the next huge-mapped region (round-robin over the
// address space) so reclaim can make progress. Returns false when no
// huge mapping remains.
func (k *Kernel) demoteOneHuge() bool {
	vmas := k.space.VMAs()
	if len(vmas) == 0 {
		return false
	}
	if k.demoteVMA >= len(vmas) {
		k.demoteVMA, k.demoteRegion = 0, 0
	}
	total := 0
	for _, v := range vmas {
		total += v.Regions()
	}
	for visited := 0; visited < total; visited++ {
		v := vmas[k.demoteVMA]
		r := k.demoteRegion
		k.demoteRegion++
		if k.demoteRegion >= v.Regions() {
			k.demoteVMA = (k.demoteVMA + 1) % len(vmas)
			k.demoteRegion = 0
		}
		if r < v.Regions() && v.HugeMapped(r) {
			k.space.DemoteHuge(v, r)
			k.stats.Demotions++
			return true
		}
	}
	return false
}

// NextTickAt returns the simulated cycle at which Tick next has
// background work to consider, or ^uint64(0) when khugepaged is off
// entirely. The Mode knob is deliberately not consulted: it can change
// at runtime (SetMode), so a mode-disabled kernel keeps a deadline in
// the past and Tick's own guard decides — exactly the behaviour of an
// engine that calls Tick on every access.
func (k *Kernel) NextTickAt() uint64 {
	if !k.cfg.KhugepagedEnabled {
		return ^uint64(0)
	}
	return k.lastScan + k.cfg.KhugepagedInterval
}

// Tick drives background work. now is the machine's accumulated cycle
// count; khugepaged runs one scan batch per configured interval. The
// returned cycles are daemon time (recorded in stats, not charged to the
// application, which matches khugepaged running on a spare core).
func (k *Kernel) Tick(now uint64) {
	if !k.cfg.KhugepagedEnabled || k.cfg.Mode == ModeNever {
		return
	}
	if now-k.lastScan < k.cfg.KhugepagedInterval {
		return
	}
	k.lastScan = now
	k.stats.KhugepagedCycles += k.khugepagedScan()
}

// khugepagedScan promotes up to KhugepagedRegionsPerScan eligible
// regions, resuming from the previous cursor position (or, under
// PromoteByHeat, taking the hottest candidates first).
func (k *Kernel) khugepagedScan() uint64 {
	var cycles uint64
	vmas := k.space.VMAs()
	if len(vmas) == 0 {
		return 0
	}
	if k.cfg.PromoteByHeat {
		return k.heatScan(vmas)
	}
	promoted := 0
	if k.scanVMA >= len(vmas) {
		k.scanVMA, k.scanRegion = 0, 0
	}
	// Visit every (vma, region) pair at most once per scan.
	total := 0
	for _, v := range vmas {
		total += v.FullRegions()
	}
	for visited := 0; visited < total && promoted < k.cfg.KhugepagedRegionsPerScan; visited++ {
		v := vmas[k.scanVMA]
		r := k.scanRegion
		k.scanRegion++
		if k.scanRegion >= v.FullRegions() {
			k.scanVMA = (k.scanVMA + 1) % len(vmas)
			k.scanRegion = 0
		}
		if r >= v.FullRegions() {
			continue
		}
		if c, ok := k.promoteRegion(v, r); ok {
			cycles += c
			promoted++
		}
	}
	return cycles
}

// heatScan is the PromoteByHeat scan body: rank every eligible region by
// accumulated access heat and promote the hottest few. Candidates are
// collected into the kernel-owned reusable buffer and ordered by an
// in-place heapsort over a total order (heat descending, discovery order
// ascending), which reproduces the old stable-sort-by-heat result
// without the per-scan slice and closure allocations.
func (k *Kernel) heatScan(vmas []*vm.VMA) uint64 {
	cands := k.heatCands[:0]
	for _, v := range vmas {
		for r := 0; r < v.FullRegions(); r++ {
			if !k.hugeEligible(v, r) || v.HugeMapped(r) {
				continue
			}
			present := v.Present4KInRegion(r)
			if present == 0 || vm.RegionPages-present > k.cfg.MaxPtesNone {
				continue
			}
			cands = append(cands, heatCand{v, r, v.HeatAt(r), len(cands)})
		}
	}
	sortHeatCands(cands)
	var cycles uint64
	promoted := 0
	for _, c := range cands {
		if promoted >= k.cfg.KhugepagedRegionsPerScan {
			break
		}
		if cyc, ok := k.promoteRegion(c.v, c.r); ok {
			cycles += cyc
			promoted++
		}
	}
	clear(cands) // drop VMA pointers; keep only the capacity
	k.heatCands = cands[:0]
	return cycles
}

// heatAfter reports whether candidate a sorts after b: colder regions
// after hotter ones, later-discovered after earlier on equal heat. The
// ordinal makes this a total order, so any comparison sort yields the
// permutation the previous stable sort produced.
func heatAfter(a, b heatCand) bool {
	if a.heat != b.heat {
		return a.heat < b.heat
	}
	return a.ord > b.ord
}

// sortHeatCands heapsorts the candidate buffer in place (hottest first).
// Hand-rolled because sort.Slice/sort.SliceStable box the slice and
// closure into interfaces, allocating on every khugepaged tick.
func sortHeatCands(s []heatCand) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownHeat(s, i, n)
	}
	for end := n - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		siftDownHeat(s, 0, end)
	}
}

func siftDownHeat(s []heatCand, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && heatAfter(s[child+1], s[child]) {
			child++
		}
		if !heatAfter(s[child], s[root]) {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}

// promoteRegion collapses region r of v into a huge page if it meets the
// max_ptes_none threshold and a huge frame can be obtained.
func (k *Kernel) promoteRegion(v *vm.VMA, r int) (uint64, bool) {
	if !k.hugeEligible(v, r) || v.HugeMapped(r) {
		return 0, false
	}
	present := v.Present4KInRegion(r)
	if present == 0 || vm.RegionPages-present > k.cfg.MaxPtesNone {
		return 0, false
	}
	var cycles uint64
	hf := k.mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	if hf == memsys.NoFrame {
		// khugepaged always defragments (khugepaged_defrag default).
		res := k.mem.TryCompactHuge()
		k.stats.CompactionRuns++
		k.stats.PagesMigrated += uint64(res.Migrated)
		cycles += uint64(res.Migrated) * k.model.CompactPerPage
		if !res.Succeeded {
			return cycles, false
		}
		hf = k.mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
		if hf == memsys.NoFrame {
			return cycles, false
		}
	}
	// Copy the present pages into the huge frame, release the old 4KB
	// frames, and install the huge mapping.
	lo := r * vm.RegionPages
	for i := 0; i < vm.RegionPages; i++ {
		p := lo + i
		if v.Present4KInRegion(r) == 0 {
			break
		}
		// UnmapBase panics on unmapped pages; probe via translation.
		if tr, _, ok := k.space.Translate(v.PageVA(p)); ok && tr.Size == vm.Page4K {
			old := k.space.UnmapBase(v, p)
			k.mem.Free(old, 0)
			cycles += k.model.PromotionCopy
		}
	}
	k.space.MapHuge(v, r, hf)
	k.stats.Promotions++
	return cycles, true
}

// Demote splits the huge mapping of region r in v back into base pages
// (used by reclaim pressure paths and exposed for experiments).
func (k *Kernel) Demote(v *vm.VMA, r int) uint64 {
	k.space.DemoteHuge(v, r)
	k.stats.Demotions++
	return k.model.DemotionFixed
}
