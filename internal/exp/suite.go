// Package exp defines the paper's experiments — one per figure/table of
// the evaluation — on top of the core library, with run memoization so
// figures that share configurations (e.g. Figs. 1–3) reuse each other's
// runs.
//
// Campaigns may execute their simulation cells in parallel: the suite's
// run and graph memo tables are sched.Cache promise caches (first
// requester computes, later requesters block on the same result), each
// experiment declares its cell list up front via Experiment.Cells, and
// RunCampaign fans the deduplicated frontier over a sched.Pool before
// rendering tables sequentially in registry order. Because every cell
// owns its machine and is a pure function of its RunSpec, campaign
// output is byte-identical for every worker count — see DESIGN.md §5
// for the protocol and the argument.
//
// Cells that share a load phase — same graph, machine config, and
// environment, differing only in kernel-phase knobs — do not each
// replay it: a third promise cache holds post-init checkpoints
// (core.Prepare) keyed by the cell key minus those knobs, and every
// sharing cell runs its kernel on an independent fork of the frozen
// machine (DESIGN.md §5b). Forking is a pure optimization: output is
// byte-identical with GRAPHMEM_NO_SNAPSHOT=1, which replays every load
// phase monolithically, and CI diffs the two.
//
// Memory-pressure levels are specified in the paper's units (GB of
// slack beyond the working set on their 3–25GB footprints) and scaled to
// the simulated working set through Table 2's footprints, so "+0.5GB on
// Twitter/BFS" stresses the simulated run exactly as hard, relatively,
// as it stressed the paper's machine.
package exp

import (
	"fmt"
	"io"
	"sync"

	"graphmem/internal/analytics"
	"graphmem/internal/check"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/graph"
	"graphmem/internal/reorder"
	"graphmem/internal/sched"
	"graphmem/internal/tlb"
)

// paperWSSGB is Table 2's memory footprints (GB).
var paperWSSGB = map[analytics.App]map[gen.Dataset]float64{
	analytics.BFS:  {gen.Kron25: 8.5, gen.Twit: 16, gen.Web: 16.5, gen.Wiki: 3},
	analytics.SSSP: {gen.Kron25: 12.5, gen.Twit: 24, gen.Web: 25, gen.Wiki: 5},
	analytics.PR:   {gen.Kron25: 9, gen.Twit: 16, gen.Web: 17, gen.Wiki: 3},
}

// Pressure levels used across the suite, in paper GB.
const (
	highPressureGB = 0.5 // Fig. 7's "+0.5GB"
	lowPressureGB  = 3.0 // Figs. 8–11's "+3GB"
)

// Suite runs experiments at a chosen scale, caching datasets (original
// and reordered) and memoizing individual runs. A Suite is safe for
// concurrent use by scheduler workers: both memo tables are promise
// caches, so duplicate cell requests collapse onto one computation and
// every requester receives the identical *core.RunResult.
type Suite struct {
	Scale gen.Scale
	// PRMaxIters caps PageRank iterations. Every configuration of one
	// comparison runs the same number of iterations, so speedups are
	// unaffected; the cap only bounds simulation time.
	PRMaxIters int
	// Log receives progress lines (one per fresh run); nil silences.
	// Writes are serialized by the suite, but under a parallel campaign
	// their order reflects completion order, not registry order — only
	// rendered tables carry the determinism guarantee.
	Log io.Writer
	// TLB optionally overrides the hardware TLB geometry for every run
	// (zero value = the paper's Haswell hierarchy). Shape tests use a
	// scaled hierarchy so bench-sized graphs exert full-sized pressure.
	TLB tlb.Config
	// CkptDir, when non-empty, backs the checkpoint cache with the
	// persistent store in that directory (ckptstore.go): load phases
	// staged by earlier processes are reloaded instead of replayed, and
	// fresh stagings are saved for later ones. Empty disables the store.
	CkptDir string

	logMu  sync.Mutex
	graphs sched.Cache[graphKey, *graphEntry]
	runs   sched.Cache[string, *core.RunResult]
	inits  sched.Cache[string, *core.Checkpoint]

	// onRun, when non-nil, observes every cell request (before
	// memoization) — the hook the cells-coverage test uses to prove
	// each experiment's declared frontier matches what it runs.
	onRun func(runCfg)
}

// NewSuite constructs a suite. ScaleFull reproduces the paper's
// geometry; ScaleBench is for quick looks and benchmarks.
func NewSuite(scale gen.Scale, log io.Writer) *Suite {
	return &Suite{
		Scale:      scale,
		PRMaxIters: 3,
		Log:        log,
	}
}

type graphKey struct {
	ds       gen.Dataset
	weighted bool
	method   reorder.Method
}

type graphEntry struct {
	g    *graph.Graph
	cost reorder.Cost
	root uint32
}

// graph returns the cached dataset variant, generating (and for
// non-identity methods, reordering) it on first request. The promise
// cache recurses: a reordered variant's compute requests the identity
// base, which is a different key, so two workers racing on DBG and
// identity variants of one dataset still generate the base exactly
// once.
func (s *Suite) graph(ds gen.Dataset, weighted bool, method reorder.Method) *graphEntry {
	k := graphKey{ds, weighted, method}
	return s.graphs.Get(k, func() *graphEntry {
		var e graphEntry
		if method == reorder.Identity {
			e.g = gen.Generate(ds, s.Scale, weighted)
		} else {
			base := s.graph(ds, weighted, reorder.Identity)
			e.g, e.cost = reorder.Apply(base.g, method, 1)
		}
		e.root = e.g.MaxDegreeVertex()
		return &e
	})
}

// runCfg names one full configuration (one campaign cell).
type runCfg struct {
	app    analytics.App
	ds     gen.Dataset
	method reorder.Method
	order  analytics.AllocOrder
	policy core.Policy
	env    core.Environment

	// sampleEvery enables the huge-page-economy timeline (Fig. 6);
	// zero for every other cell.
	sampleEvery uint64

	// shards, when >1, runs the kernel phase on the sharded machine
	// engine (core.RunSpec.Shards). Like every other field here it is a
	// modeling knob — the worker count driving the shards is not part
	// of the cell (GRAPHMEM_SHARD_WORKERS / expdriver -shards), so cell
	// results stay byte-identical at any parallelism.
	shards int
}

func (c runCfg) key() string {
	return fmt.Sprintf("%s|%s|%s|%v|%s|%.3f|%+v|%d|%d",
		c.app, c.ds, c.method, c.order, c.policy.Name, c.policy.PropPercent, c.env, c.sampleEvery, c.shards)
}

// initKey names the cell's load phase: every field that shapes machine
// state through the end of init. Cells with equal initKeys reach
// byte-identical post-init state, so they may fork from one shared
// Checkpoint. sampleEvery is omitted deliberately — sampled cells never
// take the snapshot path (core.SnapshotSafe), so it cannot split a
// load phase. shards is included: a sharded cell's Checkpoint carries
// the partition (and its preprocessing charge) in its prepared state,
// so sharded and monolithic cells may not share one.
func (c runCfg) initKey() string {
	return fmt.Sprintf("%s|%s|%s|%v|%s|%.3f|%+v|%d",
		c.app, c.ds, c.method, c.order, c.policy.Name, c.policy.PropPercent, c.env, c.shards)
}

// label is the short operator-facing cell name used in progress lines.
func (c runCfg) label() string {
	return fmt.Sprintf("%s/%s/%s/%s/%s", c.app, c.ds, c.method, c.policy.Name, c.order)
}

// spec materializes the RunSpec a cell names, resolving the graph
// variant through the graph cache.
func (s *Suite) spec(c runCfg) core.RunSpec {
	e := s.graph(c.ds, c.app == analytics.SSSP, c.method)
	spec := core.RunSpec{
		Graph:             e.g,
		App:               c.app,
		Reorder:           c.method,
		Order:             c.order,
		Policy:            c.policy,
		Env:               c.env,
		TLB:               s.TLB,
		SampleSupplyEvery: c.sampleEvery,
		Shards:            c.shards,
		Run: analytics.RunOptions{
			Root:       e.root,
			PREpsilon:  1e-4,
			PRMaxIters: s.PRMaxIters,
		},
	}
	if c.method != reorder.Identity {
		cost := e.cost
		spec.PreReorderCost = &cost
	}
	return spec
}

// checkpoint returns the shared post-init snapshot for one load phase,
// preparing it on first request. Like the graph cache, the promise
// cache collapses concurrent requests for one load phase onto a single
// preparation; spec must be SnapshotSafe (Prepare rejects the rest).
// With the persistent store enabled (Suite.CkptDir), a first request
// consults the store before staging and saves what it staged on a miss
// — forks from a loaded machine are byte-identical to forks from a
// staged one (core.LoadCheckpoint), so memoization semantics are
// unchanged.
func (s *Suite) checkpoint(initKey string, spec core.RunSpec) *core.Checkpoint {
	return s.inits.Get(initKey, func() *core.Checkpoint {
		if cp := s.loadCheckpoint(initKey, spec); cp != nil {
			return cp
		}
		cp, err := core.Prepare(spec)
		if err != nil {
			panic(check.Failf("exp: prepare %s: %v", initKey, err))
		}
		s.saveCheckpoint(initKey, cp)
		return cp
	})
}

// run executes (or recalls) one configuration. Under a parallel
// campaign the first requester computes and every concurrent duplicate
// blocks on the same promise; the returned pointer is identical across
// all requesters.
//
// Snapshot-safe cells (no churn co-runner, no supply sampler) run their
// kernel on a fork of the shared post-init Checkpoint for their load
// phase, so N policies sharing one (graph, machine config, load phase)
// pay for init once instead of N times. Cells that register machine
// tickers replay monolithically via core.Run — and so does everything
// when GRAPHMEM_NO_SNAPSHOT is set, which is exactly the equivalence
// CI's byte-diff gate checks (scripts/ci.sh step 11).
func (s *Suite) run(c runCfg) *core.RunResult {
	if s.onRun != nil {
		s.onRun(c)
	}
	return s.runs.Get(c.key(), func() *core.RunResult {
		spec := s.spec(c)
		var r *core.RunResult
		var err error
		if core.SnapshotSafe(spec) {
			r, err = s.checkpoint(c.initKey(), spec).Run()
		} else {
			r, err = core.Run(spec)
		}
		if err != nil {
			panic(check.Failf("exp: run %s: %v", c.key(), err))
		}
		if s.Log != nil {
			s.logMu.Lock()
			fmt.Fprintf(s.Log, "  ran %-4s %-4s %-4s %-10s order=%-10s cycles=%d\n",
				c.app, c.ds, c.method, c.policy.Name, c.order, r.TotalCycles)
			s.logMu.Unlock()
		}
		return r
	})
}

// delta converts a paper-scale pressure level (GB beyond the WSS on the
// paper machine) to simulated bytes for one app/dataset configuration.
func (s *Suite) delta(app analytics.App, ds gen.Dataset, paperGB float64) int64 {
	e := s.graph(ds, app == analytics.SSSP, reorder.Identity)
	wssSim := float64(analytics.WSSBytes(app, e.g))
	paper := paperWSSGB[app][ds]
	if paper == 0 {
		// Extension workloads (e.g. CC) have no Table 2 row; their
		// footprints match BFS's, so scale through that.
		paper = paperWSSGB[analytics.BFS][ds]
	}
	return int64(paperGB * (1 << 30) * wssSim / (paper * (1 << 30)))
}

// envPressured is the paper's constrained-memory environment at a
// paper-scale delta.
func (s *Suite) envPressured(app analytics.App, ds gen.Dataset, paperGB float64) core.Environment {
	return core.Pressured(s.delta(app, ds, paperGB))
}

// envFragmented is the paper's fragmentation environment: low pressure
// plus non-movable fragmentation of the available memory.
func (s *Suite) envFragmented(app analytics.App, ds gen.Dataset, paperGB, level float64) core.Environment {
	return core.Fragmented(s.delta(app, ds, paperGB), level)
}

// baseline returns the 4KB-pages fresh-boot run — the denominator of
// every speedup in the paper.
func (s *Suite) baseline(app analytics.App, ds gen.Dataset) *core.RunResult {
	return s.run(baselineCfg(app, ds))
}

// baselineCfg names the baseline cell so cell declarations and run
// paths agree on one definition.
func baselineCfg(app analytics.App, ds gen.Dataset) runCfg {
	return runCfg{
		app: app, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.Base4K(), env: core.FreshBoot(),
	}
}

// CachedRunCount reports how many distinct runs the suite has executed.
func (s *Suite) CachedRunCount() int { return s.runs.Len() }

// CheckInvariants audits the suite's promise caches. quiesced asserts
// the barrier state (no Get in flight): every installed promise
// resolved. RunCampaign invokes it through check.Audit after each pool
// barrier.
func (s *Suite) CheckInvariants(quiesced bool) error {
	if err := s.graphs.CheckInvariants(quiesced); err != nil {
		return fmt.Errorf("graph cache: %v", err)
	}
	if err := s.runs.CheckInvariants(quiesced); err != nil {
		return fmt.Errorf("run cache: %v", err)
	}
	if err := s.inits.CheckInvariants(quiesced); err != nil {
		return fmt.Errorf("checkpoint cache: %v", err)
	}
	return nil
}
