package exp

import (
	"io"
	"strings"
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
	"graphmem/internal/stats"
)

func testSuite() *Suite {
	s := NewSuite(gen.ScaleTest, nil)
	s.PRMaxIters = 2
	return s
}

func TestGraphCacheReuses(t *testing.T) {
	s := testSuite()
	a := s.graph(gen.Wiki, false, reorder.Identity)
	b := s.graph(gen.Wiki, false, reorder.Identity)
	if a != b {
		t.Fatal("graph not cached")
	}
	d := s.graph(gen.Wiki, false, reorder.DBG)
	if d == a || d.cost.EdgeTraversals == 0 {
		t.Fatal("DBG variant not built with cost")
	}
}

func TestRunMemoized(t *testing.T) {
	s := testSuite()
	r1 := s.baseline(analytics.BFS, gen.Wiki)
	n := s.CachedRunCount()
	r2 := s.baseline(analytics.BFS, gen.Wiki)
	if r1 != r2 || s.CachedRunCount() != n {
		t.Fatal("run not memoized")
	}
}

func TestDeltaScalesWithPaperWSS(t *testing.T) {
	s := testSuite()
	// +1GB on Kron/BFS (paper WSS 8.5GB) must scale to a larger
	// simulated delta than +1GB on Twitter/BFS (paper WSS 16GB) for
	// similarly-sized simulated graphs — the ratio is what matters.
	dk := float64(s.delta(analytics.BFS, gen.Kron25, 1))
	wssK := float64(analytics.WSSBytes(analytics.BFS, s.graph(gen.Kron25, false, reorder.Identity).g))
	if got := dk / wssK; got < 1/8.5*0.99 || got > 1/8.5*1.01 {
		t.Fatalf("delta/wss = %v, want 1/8.5", got)
	}
}

func TestFindAndRegistry(t *testing.T) {
	if _, ok := Find("fig1"); !ok {
		t.Fatal("fig1 missing")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("found nonexistent experiment")
	}
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Desc == "" {
			t.Fatalf("incomplete registry entry %s", e.ID)
		}
	}
}

func TestRunAndRenderUnknownID(t *testing.T) {
	s := testSuite()
	if _, err := RunAndRender(s, []string{"bogus"}, io.Discard); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTablesSmall(t *testing.T) {
	// Run the cheap structural experiments end to end at test scale.
	s := testSuite()
	out := &strings.Builder{}
	res, err := RunAndRender(s, []string{"table1", "table2", "fig4"}, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if !strings.Contains(out.String(), "STLB") {
		t.Fatal("table1 content missing")
	}
	f4 := res["fig4"][0]
	if len(f4.Rows) < 9 { // 3 apps × ≥3 arrays
		t.Fatalf("fig4 rows = %d", len(f4.Rows))
	}
}

func TestFig5ShapeAtTestScale(t *testing.T) {
	// Even at tiny scale the table must produce parsable rows for all
	// datasets (values may be ~1.0 because arrays are sub-2MB).
	s := testSuite()
	tbl := s.Fig5()[0]
	if len(tbl.Rows) != len(gen.AllDatasets) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		for _, c := range r[1:] {
			if !strings.ContainsRune(c, '.') {
				t.Fatalf("non-numeric cell %q", c)
			}
		}
	}
}

// TestFullRegistryAtTestScale runs every registered experiment at tiny
// scale: a smoke test that no experiment panics, divides by zero, or
// regresses structurally.
func TestFullRegistryAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	s := testSuite()
	out := &strings.Builder{}
	res, err := RunAndRender(s, nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Registry) {
		t.Fatalf("ran %d of %d experiments", len(res), len(Registry))
	}
	for id, tables := range res {
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced an empty table %q", id, tb.Title)
			}
		}
	}
}

func TestExtensionExperimentsSmall(t *testing.T) {
	s := testSuite()
	for _, fn := range []func() []*stats.Table{
		func() []*stats.Table { return s.Baselines() },
		func() []*stats.Table { return s.AutoSelective() },
		func() []*stats.Table { return s.CCWorkload() },
	} {
		tables := fn()
		if len(tables) != 1 || len(tables[0].Rows) != len(gen.AllDatasets) {
			t.Fatalf("extension table malformed: %+v", tables[0].Title)
		}
	}
}
