package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
)

// renderAll runs the full campaign on n workers at the given scale and
// returns every byte surface expdriver exposes — streamed text, the
// markdown tables, and the CSV tables, all in registry order — plus the
// distinct-run count (which the markdown header embeds).
func renderAll(t *testing.T, scale gen.Scale, ids []string, workers int) (text, markdown, csv string, runs int) {
	t.Helper()
	s := NewSuite(scale, nil)
	s.PRMaxIters = 2
	var out strings.Builder
	res, err := RunCampaign(s, ids, CampaignOptions{Workers: workers}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var md, cs strings.Builder
	for _, e := range Registry {
		tables, ok := res[e.ID]
		if !ok {
			continue
		}
		for i, tb := range tables {
			md.WriteString(tb.Markdown())
			fmt.Fprintf(&cs, "-- %s_%d --\n%s", e.ID, i, tb.CSV())
		}
	}
	return out.String(), md.String(), cs.String(), s.CachedRunCount()
}

// TestCampaignDeterministicAcrossWorkers is the tentpole regression
// test: the full registry, rendered through every output surface, must
// be byte-identical for every worker count.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry several times")
	}
	if raceEnabled {
		t.Skip("several full-registry passes overrun the race-instrumented timeout; TestPromiseCacheUnderRace covers the concurrency")
	}
	refText, refMD, refCSV, refRuns := renderAll(t, gen.ScaleTest, nil, 1)
	for _, workers := range []int{2, 4, 8} {
		text, md, csv, runs := renderAll(t, gen.ScaleTest, nil, workers)
		if runs != refRuns {
			t.Errorf("-j %d executed %d distinct runs, -j 1 executed %d", workers, runs, refRuns)
		}
		if text != refText {
			t.Errorf("-j %d text output differs from -j 1 (%d vs %d bytes)", workers, len(text), len(refText))
		}
		if md != refMD {
			t.Errorf("-j %d markdown differs from -j 1", workers)
		}
		if csv != refCSV {
			t.Errorf("-j %d CSV differs from -j 1", workers)
		}
	}
}

// TestCampaignDeterministicAtBenchScale is the committed bench-scale
// assertion from the acceptance criteria, on an experiment subset to
// bound runtime: -j 1 and -j 4 must agree byte-for-byte.
func TestCampaignDeterministicAtBenchScale(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale simulation")
	}
	if raceEnabled {
		t.Skip("bench-scale under race instrumentation is too slow")
	}
	ids := []string{"fig5", "pagecache"}
	text1, md1, csv1, runs1 := renderAll(t, gen.ScaleBench, ids, 1)
	text4, md4, csv4, runs4 := renderAll(t, gen.ScaleBench, ids, 4)
	if runs1 != runs4 {
		t.Errorf("distinct runs: -j 1 %d, -j 4 %d", runs1, runs4)
	}
	if text1 != text4 || md1 != md4 || csv1 != csv4 {
		t.Errorf("bench-scale output differs between -j 1 and -j 4 (text %v, md %v, csv %v)",
			text1 == text4, md1 == md4, csv1 == csv4)
	}
}

// TestCampaignProgressAccounting checks the Progress callback: done
// counts each frontier cell exactly once and worker indices stay in
// range.
func TestCampaignProgressAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	const workers = 3
	s := testSuite()
	var mu sync.Mutex
	seen := make(map[int]bool)
	total := -1
	opt := CampaignOptions{Workers: workers, Progress: func(worker, done, tot int, cell string) {
		mu.Lock()
		defer mu.Unlock()
		if worker < 0 || worker >= workers {
			t.Errorf("worker index %d outside [0,%d)", worker, workers)
		}
		if seen[done] {
			t.Errorf("done=%d reported twice", done)
		}
		seen[done] = true
		total = tot
		if cell == "" {
			t.Error("empty cell label")
		}
	}}
	if _, err := RunCampaign(s, []string{"fig4", "fig5"}, opt, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != total {
		t.Errorf("progress reported %d cells, frontier total %d", len(seen), total)
	}
}

func TestCampaignUnknownExperiment(t *testing.T) {
	s := testSuite()
	if _, err := RunCampaign(s, []string{"nope"}, CampaignOptions{Workers: 2}, &strings.Builder{}); err == nil {
		t.Fatal("campaign accepted an unknown experiment id")
	}
}

// TestPromiseCacheUnderRace hammers the suite's promise caches with
// duplicate cell requests from many goroutines — the run and graph
// caches must compute once per key and hand every requester the
// identical pointer. This test is the designated -race exercise for the
// suite (the full-campaign determinism tests skip under race).
func TestPromiseCacheUnderRace(t *testing.T) {
	s := testSuite()
	cfgs := []runCfg{
		baselineCfg(analytics.BFS, gen.Wiki),
		baselineCfg(analytics.PR, gen.Wiki),
		s.fig6Cfg(analytics.Natural),
	}
	const dup = 8
	got := make([]map[string]interface{}, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := make(map[string]interface{})
			for _, c := range cfgs {
				m["run:"+c.key()] = s.run(c)
			}
			m["graph"] = s.graph(gen.Wiki, false, reorder.DBG)
			got[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < dup; i++ {
		for k, v := range got[0] {
			if got[i][k] != v {
				t.Fatalf("goroutine %d saw a different pointer for %s", i, k)
			}
		}
	}
	if n := s.CachedRunCount(); n != len(cfgs) {
		t.Errorf("CachedRunCount = %d, want %d (duplicates must collapse)", n, len(cfgs))
	}
	if err := s.CheckInvariants(true); err != nil {
		t.Error(err)
	}
}

// keySet reduces a cell list to its set of memo keys.
func keySet(cells []runCfg) map[string]bool {
	set := make(map[string]bool, len(cells))
	for _, c := range cells {
		set[c.key()] = true
	}
	return set
}

func sortedKeys(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TestCapsMatchCells proves every registry entry's advertised capability
// list (what expdriver -list prints) is derived from, not asserted over,
// its declared cells: snapshot-forkable iff some cell's spec passes
// core.SnapshotSafe, sharded iff some cell runs more than one shard, and
// full-scale-gated reserved for the experiment the CI fullscale gate
// wraps. Experiments without declarable cells may still claim
// snapshot-forkable when they fork checkpoints outside the cell space
// (ext-rollout), but never sharded or full-scale-gated.
func TestCapsMatchCells(t *testing.T) {
	known := map[string]bool{CapSnapshot: true, CapSharded: true, CapFullScale: true}
	for _, e := range Registry {
		t.Run(e.ID, func(t *testing.T) {
			caps := make(map[string]bool)
			if e.Caps != "" {
				for _, c := range strings.Split(e.Caps, ",") {
					if !known[c] {
						t.Errorf("unknown capability %q", c)
					}
					if caps[c] {
						t.Errorf("duplicate capability %q", c)
					}
					caps[c] = true
				}
			}
			if caps[CapFullScale] != (e.ID == "ext-fullscale") {
				t.Errorf("full-scale-gated = %v, want it on ext-fullscale only", caps[CapFullScale])
			}
			if e.Cells == nil {
				if caps[CapSharded] {
					t.Error("sharded capability without declarable cells")
				}
				return
			}
			s := testSuite()
			var snapshot, sharded bool
			for _, c := range e.Cells(s) {
				if core.SnapshotSafe(s.spec(c)) {
					snapshot = true
				}
				if c.shards > 1 {
					sharded = true
				}
			}
			if caps[CapSnapshot] != snapshot {
				t.Errorf("snapshot-forkable = %v, but cells derive %v", caps[CapSnapshot], snapshot)
			}
			if caps[CapSharded] != sharded {
				t.Errorf("sharded = %v, but cells derive %v", caps[CapSharded], sharded)
			}
		})
	}
}

// TestCellsMatchRuns proves every experiment's declared frontier equals
// the set of cells its Run method actually requests — the invariant that
// makes campaign run counts (and the parallel speedup) independent of
// worker count. Experiments with nil Cells must either request nothing
// through the suite (table1, table2) or run entirely outside the cell
// space (ext-grid simulates ad-hoc graphs directly).
func TestCellsMatchRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range Registry {
		t.Run(e.ID, func(t *testing.T) {
			s := testSuite()
			var declared map[string]bool
			if e.Cells != nil {
				declared = keySet(e.Cells(s))
			}
			requested := make(map[string]bool)
			var mu sync.Mutex
			s.onRun = func(c runCfg) {
				mu.Lock()
				requested[c.key()] = true
				mu.Unlock()
			}
			e.Run(s)
			if e.Cells == nil {
				if len(requested) != 0 {
					t.Errorf("nil Cells but Run requested %d cells:\n  %s",
						len(requested), strings.Join(sortedKeys(requested), "\n  "))
				}
				return
			}
			for _, k := range sortedKeys(declared) {
				if !requested[k] {
					t.Errorf("declared but never requested: %s", k)
				}
			}
			for _, k := range sortedKeys(requested) {
				if !declared[k] {
					t.Errorf("requested but not declared (would serialize into the render phase): %s", k)
				}
			}
		})
	}
}
