package exp

import (
	"fmt"

	"graphmem/internal/analytics"
	"graphmem/internal/cache"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
	"graphmem/internal/stats"
	"graphmem/internal/tlb"
)

// All speedups are end-to-end cycle ratios (preprocessing + init +
// kernel), against the 4KB-pages fresh-boot baseline of the same
// app/dataset, matching the paper's accounting.
func (s *Suite) speedup(base *core.RunResult, r *core.RunResult) float64 {
	return stats.Speedup(base.TotalCycles, r.TotalCycles)
}

func label(app analytics.App, ds gen.Dataset) string {
	return fmt.Sprintf("%s/%s", app, ds)
}

// Fig1 — application speedup from Linux THP at fresh boot versus under
// memory pressure (+0.5GB), relative to 4KB pages.
func (s *Suite) Fig1() []*stats.Table {
	t := stats.NewTable("Fig 1: Linux THP speedup over 4KB pages",
		"config", "thp-fresh", "thp-pressured", "4k-pressured")
	t.Note = "pressured = aged system, memhog leaves WSS+0.5GB(scaled); natural allocation order"
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			base := s.baseline(app, ds)
			fresh := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
			env := s.envPressured(app, ds, highPressureGB)
			press := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env})
			press4k := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.Base4K(), env: env})
			t.AddRow(label(app, ds),
				stats.F(s.speedup(base, fresh), 3),
				stats.F(s.speedup(base, press), 3),
				stats.F(s.speedup(base, press4k), 3))
		}
	}
	return []*stats.Table{t}
}

// Fig2 — address translation overhead: the share of kernel-phase cycles
// spent on STLB hits and page walks with 4KB pages, and with THP.
func (s *Suite) Fig2() []*stats.Table {
	t := stats.NewTable("Fig 2: address translation share of kernel runtime",
		"config", "4k", "thp-fresh")
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			base := s.baseline(app, ds)
			fresh := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
			t.AddRow(label(app, ds),
				stats.Pct(base.Kernel.TranslationShare()),
				stats.Pct(fresh.Kernel.TranslationShare()))
		}
	}
	return []*stats.Table{t}
}

// Fig3 — DTLB and STLB miss rates, 4KB pages versus THP.
func (s *Suite) Fig3() []*stats.Table {
	t := stats.NewTable("Fig 3: TLB miss rates (kernel phase)",
		"config", "4k-dtlb", "4k-stlb", "thp-dtlb", "thp-stlb")
	t.Note = "stlb rate = page walks / TLB lookups, as in the paper's striped bars"
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			base := s.baseline(app, ds)
			fresh := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
			t.AddRow(label(app, ds),
				stats.Pct(base.Kernel.TLB.DTLBMissRate()),
				stats.Pct(base.Kernel.TLB.STLBMissRate()),
				stats.Pct(fresh.Kernel.TLB.DTLBMissRate()),
				stats.Pct(fresh.Kernel.TLB.STLBMissRate()))
		}
	}
	return []*stats.Table{t}
}

// Fig4 — per-data-structure access characterization (4KB pages): the
// property array takes the most irregular (walk-causing) accesses, the
// edge array the most accesses overall.
func (s *Suite) Fig4() []*stats.Table {
	t := stats.NewTable("Fig 4: per-array access breakdown (4KB pages, kernel phase)",
		"config", "array", "accesses", "l1tlb-misses", "walks")
	for _, app := range analytics.AllApps {
		base := s.baseline(app, gen.Kron25)
		for _, a := range base.Arrays {
			t.AddRow(label(app, gen.Kron25), a.Name,
				fmt.Sprint(a.Accesses), fmt.Sprint(a.L1Misses), fmt.Sprint(a.Walks))
		}
	}
	return []*stats.Table{t}
}

// Fig5 — madvise THP applied to one data structure at a time (BFS, no
// memory pressure): the property array alone nearly matches system-wide
// THP.
func (s *Suite) Fig5() []*stats.Table {
	t := stats.NewTable("Fig 5: per-structure THP speedups (BFS, fresh boot)",
		"dataset", "thp-vertex", "thp-edge", "thp-prop", "thp-all")
	for _, ds := range gen.AllDatasets {
		base := s.baseline(analytics.BFS, ds)
		row := []string{string(ds)}
		for _, st := range []string{"vertex", "edge", "prop"} {
			r := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.PerStructure(st), env: core.FreshBoot()})
			row = append(row, stats.F(s.speedup(base, r), 3))
		}
		all := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
		row = append(row, stats.F(s.speedup(base, all), 3))
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// Fig7 — high memory pressure (+0.5GB): natural versus graph-optimized
// (property-first) allocation order.
func (s *Suite) Fig7() []*stats.Table {
	t := stats.NewTable("Fig 7: THP under high memory pressure (WSS+0.5GB scaled)",
		"config", "thp-ideal", "thp-natural", "thp-optimized", "prop-huge-nat", "prop-huge-opt")
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			base := s.baseline(app, ds)
			ideal := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
			env := s.envPressured(app, ds, highPressureGB)
			nat := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env})
			opt := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.PropFirst, policy: core.THPAlways(), env: env})
			t.AddRow(label(app, ds),
				stats.F(s.speedup(base, ideal), 3),
				stats.F(s.speedup(base, nat), 3),
				stats.F(s.speedup(base, opt), 3),
				stats.MB(nat.PropHugeBytes),
				stats.MB(opt.PropHugeBytes))
		}
	}
	return []*stats.Table{t}
}

// PressureSweep — §4.3.1: speedups across 8 pressure levels from
// oversubscribed (−0.5GB) to +3GB, BFS on all datasets.
func (s *Suite) PressureSweep() []*stats.Table {
	levels := []float64{-0.5, 0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	var tables []*stats.Table
	for _, pol := range []struct {
		name   string
		policy core.Policy
	}{
		{"4k", core.Base4K()},
		{"thp", core.THPAlways()},
	} {
		t := stats.NewTable(
			fmt.Sprintf("§4.3.1 pressure sweep: %s speedup vs 4K fresh (BFS)", pol.name),
			append([]string{"dataset"}, func() []string {
				var h []string
				for _, l := range levels {
					h = append(h, fmt.Sprintf("%+.1fGB", l))
				}
				return h
			}()...)...)
		for _, ds := range gen.AllDatasets {
			base := s.baseline(analytics.BFS, ds)
			row := []string{string(ds)}
			for _, l := range levels {
				r := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
					order: analytics.Natural, policy: pol.policy,
					env: s.envPressured(analytics.BFS, ds, l)})
				row = append(row, stats.F(s.speedup(base, r), 3))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig8 — 50% non-movable fragmentation at low pressure (+3GB): natural
// versus optimized allocation order.
func (s *Suite) Fig8() []*stats.Table {
	t := stats.NewTable("Fig 8: THP under 50% fragmentation (WSS+3GB scaled)",
		"config", "thp-ideal", "thp-natural", "thp-optimized", "prop-huge-nat", "prop-huge-opt")
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			base := s.baseline(app, ds)
			ideal := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
			env := s.envFragmented(app, ds, lowPressureGB, 0.5)
			nat := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env})
			opt := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.PropFirst, policy: core.THPAlways(), env: env})
			t.AddRow(label(app, ds),
				stats.F(s.speedup(base, ideal), 3),
				stats.F(s.speedup(base, nat), 3),
				stats.F(s.speedup(base, opt), 3),
				stats.MB(nat.PropHugeBytes),
				stats.MB(opt.PropHugeBytes))
		}
	}
	return []*stats.Table{t}
}

// Fig9 — fragmentation sweep {0,25,50,75}% for BFS: natural vs
// optimized allocation order.
func (s *Suite) Fig9() []*stats.Table {
	levels := []float64{0, 0.25, 0.5, 0.75}
	t := stats.NewTable("Fig 9: fragmentation sweep (BFS, WSS+3GB scaled)",
		"dataset", "order", "frag-0%", "frag-25%", "frag-50%", "frag-75%")
	for _, ds := range gen.AllDatasets {
		base := s.baseline(analytics.BFS, ds)
		for _, order := range []analytics.AllocOrder{analytics.Natural, analytics.PropFirst} {
			row := []string{string(ds), order.String()}
			for _, l := range levels {
				r := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
					order: order, policy: core.THPAlways(),
					env: s.envFragmented(analytics.BFS, ds, lowPressureGB, l)})
				row = append(row, stats.F(s.speedup(base, r), 3))
			}
			t.AddRow(row...)
		}
	}
	return []*stats.Table{t}
}

// Fig10 — DBG preprocessing and selective THP under pressure+frag: the
// paper's headline configuration matrix.
func (s *Suite) Fig10() []*stats.Table {
	t := stats.NewTable("Fig 10: DBG + selective THP (WSS+3GB scaled, 50% fragmentation)",
		"config", "dbg-4k", "thp", "dbg+thp", "dbg+sel50", "dbg+sel100", "sel100-huge-share")
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			base := s.baseline(app, ds)
			env := s.envFragmented(app, ds, lowPressureGB, 0.5)
			dbg4k := s.run(runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.Base4K(), env: env})
			thp := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env})
			dbgThp := s.run(runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.THPAlways(), env: env})
			sel50 := s.run(runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.SelectiveTHP(0.5), env: env})
			sel100 := s.run(runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.SelectiveTHP(1.0), env: env})
			t.AddRow(label(app, ds),
				stats.F(s.speedup(base, dbg4k), 3),
				stats.F(s.speedup(base, thp), 3),
				stats.F(s.speedup(base, dbgThp), 3),
				stats.F(s.speedup(base, sel50), 3),
				stats.F(s.speedup(base, sel100), 3),
				stats.Pct(sel100.HugeShareOfFootprint()))
		}
	}
	return []*stats.Table{t}
}

// Fig11 — selectivity sweep: huge pages over 0–100% of the property
// array, original versus DBG-reordered datasets (BFS).
func (s *Suite) Fig11() []*stats.Table {
	selLevels := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	t := stats.NewTable("Fig 11: selective THP sensitivity (BFS, WSS+3GB scaled, 50% frag)",
		"dataset", "order", "s=0%", "s=20%", "s=40%", "s=60%", "s=80%", "s=100%")
	for _, ds := range gen.AllDatasets {
		base := s.baseline(analytics.BFS, ds)
		env := s.envFragmented(analytics.BFS, ds, lowPressureGB, 0.5)
		for _, method := range []reorder.Method{reorder.Identity, reorder.DBG} {
			row := []string{string(ds), string(method)}
			for _, sel := range selLevels {
				policy := core.Base4K()
				if sel > 0 {
					policy = core.SelectiveTHP(sel)
				}
				r := s.run(runCfg{app: analytics.BFS, ds: ds, method: method,
					order: analytics.Natural, policy: policy, env: env})
				row = append(row, stats.F(s.speedup(base, r), 3))
			}
			t.AddRow(row...)
		}
	}
	return []*stats.Table{t}
}

// DBGOverhead — §5.1.2: preprocessing share of end-to-end runtime.
func (s *Suite) DBGOverhead() []*stats.Table {
	t := stats.NewTable("§5.1.2: DBG preprocessing overhead",
		"config", "preproc-share")
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			env := s.envFragmented(app, ds, lowPressureGB, 0.5)
			r := s.run(runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.SelectiveTHP(1.0), env: env})
			t.AddRow(label(app, ds),
				stats.Pct(float64(r.PreprocessCycles)/float64(r.TotalCycles)))
		}
	}
	return []*stats.Table{t}
}

// Headline — the abstract's summary metrics: speedup of the paper's
// strategy (degree-aware preprocessing where it helps + selective THP)
// over 4KB pages, the fraction of unbounded-THP performance achieved,
// and the huge page share of application memory. Per §5.1.1, networks
// whose hot vertices are naturally adjacent (Twitter, Wikipedia) don't
// need DBG, so the strategy is the best of {orig, DBG} × {s=50, s=100},
// preprocessing charged where used.
func (s *Suite) Headline() []*stats.Table {
	t := stats.NewTable("Headline: selective THP (+DBG where beneficial) under pressure+fragmentation",
		"config", "strategy", "speedup-vs-4k", "speedup-vs-linux-thp", "pct-of-unbounded", "huge-mem-share")
	var sp, vsLinux, ofUnbounded, share []float64
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			base := s.baseline(app, ds)
			env := s.envFragmented(app, ds, lowPressureGB, 0.5)
			var sel *core.RunResult
			strategy := ""
			for _, method := range []reorder.Method{reorder.Identity, reorder.DBG} {
				for _, pct := range []float64{0.5, 1.0} {
					r := s.run(runCfg{app: app, ds: ds, method: method,
						order: analytics.Natural, policy: core.SelectiveTHP(pct), env: env})
					if sel == nil || r.TotalCycles < sel.TotalCycles {
						sel = r
						strategy = fmt.Sprintf("%s+sel%d", method, int(pct*100))
					}
				}
			}
			linux := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env})
			unbounded := s.run(runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
			a := s.speedup(base, sel)
			b := stats.Speedup(linux.TotalCycles, sel.TotalCycles)
			c := float64(unbounded.TotalCycles) / float64(sel.TotalCycles)
			d := sel.HugeShareOfFootprint()
			sp = append(sp, a)
			vsLinux = append(vsLinux, b)
			ofUnbounded = append(ofUnbounded, c)
			share = append(share, d)
			t.AddRow(label(app, ds), strategy, stats.F(a, 3), stats.F(b, 3), stats.Pct(c), stats.Pct(d))
		}
	}
	lo, hi := stats.MinMax(sp)
	l2, h2 := stats.MinMax(vsLinux)
	l3, h3 := stats.MinMax(ofUnbounded)
	l4, h4 := stats.MinMax(share)
	t.Note = fmt.Sprintf(
		"ranges: %.2f–%.2fx vs 4K (paper 1.26–1.57x); %.2f–%.2fx vs Linux THP (paper 1.18–1.49x); "+
			"%.0f%%–%.0f%% of unbounded (paper 77.3–96.3%%); %.2f%%–%.2f%% huge memory (paper 0.58–2.92%%)",
		lo, hi, l2, h2, 100*l3, 100*h3, 100*l4, 100*h4)
	return []*stats.Table{t}
}

// PageCache — §4.3: single-use page cache interference during loading.
func (s *Suite) PageCache() []*stats.Table {
	t := stats.NewTable("§4.3: page cache interference (THP, BFS, WSS+1GB scaled)",
		"dataset", "tmpfs-load", "page-cache-load", "huge-tmpfs", "huge-cached")
	for _, ds := range gen.AllDatasets {
		base := s.baseline(analytics.BFS, ds)
		env := s.envPressured(analytics.BFS, ds, 1.0)
		clean := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: env})
		g := s.graph(ds, false, reorder.Identity).g
		dirty := env
		// The CSR files (vertex + edge arrays) pass through the cache.
		dirty.PageCacheBytes = uint64(len(g.Offsets))*8 + uint64(g.NumEdges())*4
		cached := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: dirty})
		t.AddRow(string(ds),
			stats.F(s.speedup(base, clean), 3),
			stats.F(s.speedup(base, cached), 3),
			stats.MB(clean.TotalHugeBytes),
			stats.MB(cached.TotalHugeBytes))
	}
	return []*stats.Table{t}
}

// Table1 — the simulated machine's parameters.
func (s *Suite) Table1() []*stats.Table {
	h := tlb.Haswell()
	c := cache.Haswell()
	t := stats.NewTable("Table 1: simulated system parameters", "component", "value")
	t.AddRow("L1 DTLB 4K", fmt.Sprintf("%d entries, %d-way", h.L1D4K.Entries, h.L1D4K.Ways))
	t.AddRow("L1 DTLB 2M", fmt.Sprintf("%d entries, %d-way", h.L1D2M.Entries, h.L1D2M.Ways))
	t.AddRow("STLB (unified)", fmt.Sprintf("%d entries, %d-way", h.STLB.Entries, h.STLB.Ways))
	t.AddRow("PWC PDE/PDPTE/PML4E", fmt.Sprintf("%d/%d/%d entries",
		h.PWCPDE.Entries, h.PWCPDPTE.Entries, h.PWCPML4E.Entries))
	t.AddRow("L1D cache", fmt.Sprintf("%dKB, %d-way", c.L1D.Bytes>>10, c.L1D.Ways))
	t.AddRow("LLC slice", fmt.Sprintf("%dKB, %d-way", c.LLC.Bytes>>10, c.LLC.Ways))
	return []*stats.Table{t}
}

// Table2 — the dataset inventory with simulated footprints.
func (s *Suite) Table2() []*stats.Table {
	t := stats.NewTable("Table 2: applications and inputs (simulated scale)",
		"app", "input", "nodes", "edges", "footprint", "paper-footprint")
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			e := s.graph(ds, app == analytics.SSSP, reorder.Identity)
			t.AddRow(string(app), string(ds),
				fmt.Sprint(e.g.N), fmt.Sprint(e.g.NumEdges()),
				stats.MB(analytics.WSSBytes(app, e.g)),
				fmt.Sprintf("%.1fGB", paperWSSGB[app][ds]))
		}
	}
	return []*stats.Table{t}
}
