//go:build race

package exp

// raceEnabled mirrors whether the race detector is compiled into the
// test binary. The full-scale shape suites run single-threaded
// simulations for a minute-plus each; under race instrumentation they
// overrun the per-package test timeout while exercising no concurrency,
// so they skip themselves when this is set.
const raceEnabled = true
