package exp

import (
	"fmt"

	"graphmem/internal/analytics"
	"graphmem/internal/check"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/machine"
	"graphmem/internal/oskernel"
	"graphmem/internal/reorder"
	"graphmem/internal/stats"
	"graphmem/internal/vm"
)

// The ext-rollout experiment is the snapshot layer's headline use case:
// online page-size policy search. A real system cannot try five THP
// configurations on one process — every trial would perturb the mapping
// state the next trial starts from. With checkpoint forking it can, in
// simulation: freeze the machine right after initialization, fork one
// independent copy per candidate policy, apply the candidate to the
// fork (madvise calls, sysfs-style mode flips), and probe each copy
// with a short burst of the kernel's most translation-hostile traffic.
// Every candidate is scored from the *same* starting state, and the
// load phase — the expensive part — is paid once instead of once per
// candidate. This experiment is also the wall-clock witness for the
// snapshot layer: scripts/ci.sh and scripts/bench.sh time it with
// GRAPHMEM_NO_SNAPSHOT on and off, diff the outputs byte-for-byte, and
// record the speedup in BENCH_access.json.

// rolloutCandidate is one runtime page-size configuration applied to a
// fresh fork before probing.
type rolloutCandidate struct {
	name  string
	apply func(fm *machine.Machine, img *analytics.Image)
}

// rolloutCandidates are the policies the rollout scores. They span the
// paper's decision space: stay at 4KB, advise the whole property array,
// advise only its hot prefix (§5.2's selective knob), advise the
// sequentially-streamed edge array instead (Fig. 5's per-structure
// question), or flip system-wide THP on (the Linux default).
var rolloutCandidates = []rolloutCandidate{
	{"stay-4k", func(fm *machine.Machine, img *analytics.Image) {}},
	{"advise-prop", func(fm *machine.Machine, img *analytics.Image) {
		img.Prop.Madvise(0, img.Prop.Bytes, vm.AdviceHuge)
	}},
	{"advise-hot-prop", func(fm *machine.Machine, img *analytics.Image) {
		img.Prop.Madvise(0, img.Prop.Bytes/8, vm.AdviceHuge)
	}},
	{"advise-edge", func(fm *machine.Machine, img *analytics.Image) {
		img.Edge.Madvise(0, img.Edge.Bytes, vm.AdviceHuge)
	}},
	{"thp-always", func(fm *machine.Machine, img *analytics.Image) {
		fm.Kernel.SetMode(oskernel.ModeAlways)
	}},
}

// Rollout environment: generous slack with light fragmentation. The
// slack is deliberately larger than the evaluation's pressure levels —
// at simulated scale the paper's "+3GB" maps to less free memory than
// ONE 2MB huge block, a granularity artifact under which no policy can
// promote anything and every candidate ties. +24GB-equivalent keeps
// several huge blocks' worth of slack at every scale, and 25%
// fragmentation keeps compaction live without starving it.
const (
	rolloutSlackGB   = 24.0
	rolloutFragLevel = 0.25
)

// rolloutCfg names the shared load phase every candidate forks from:
// BFS at 4KB under madvise mode with nothing advised (core.DeferredTHP)
// in a moderately fragmented environment, so candidates start from a
// realistic contended state.
func rolloutCfg(ds gen.Dataset, env core.Environment) runCfg {
	return runCfg{
		app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.DeferredTHP(), env: env,
	}
}

// probeBudget sizes the per-candidate probe: enough gather traffic to
// span several khugepaged scan periods (so background promotion shows
// up in the scores) while staying far below the warmup.
func probeBudget(n int) int {
	b := n
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

// warmupBudget sizes the shared pre-fork execution. The warmup stands
// in for the application's already-elapsed run — the state a live
// rollout would fork from — and it is the expensive phase the snapshot
// layer amortizes: paid once per dataset with snapshots on, once per
// candidate with GRAPHMEM_NO_SNAPSHOT set.
func warmupBudget(n int) int { return 8 * probeBudget(n) }

// Rollout runs the candidate tournament per dataset and reports each
// candidate's probe score, marking the per-dataset winner. The
// experiment performs its forks during rendering (its cells are not
// pre-declarable runs — each fork is probed, not run to completion), so
// its registry entry declares no cells, like ext-grid.
func (s *Suite) Rollout() []*stats.Table {
	t := stats.NewTable(
		"Extension: online policy rollout on checkpoint forks (BFS, +24GB, 25% frag)",
		"dataset", "candidate", "cyc/access", "walks/1k", "promoted", "img-huge", "pick")
	t.Note = "one load+warmup phase per dataset, one fork per candidate; lowest cycles/access wins"
	for _, ds := range gen.AllDatasets {
		e := s.graph(ds, false, reorder.Identity)
		env := s.envFragmented(analytics.BFS, ds, rolloutSlackGB, rolloutFragLevel)
		cfg := rolloutCfg(ds, env)
		cp := s.checkpoint(cfg.initKey(), s.spec(cfg))
		warm, probe := warmupBudget(e.g.N), probeBudget(e.g.N)

		type scored struct {
			name string
			r    analytics.ProbeResult
		}
		rows := make([]scored, 0, len(rolloutCandidates))
		if core.SnapshotsDisabled() {
			// Escape-hatch path: no machine is ever forked. Each candidate
			// replays init (via the deferred checkpoint) and the warmup
			// from scratch — determinism makes the replayed state
			// identical to a fork, which is what the CI byte-diff checks.
			for _, cand := range rolloutCandidates {
				fm, img, err := cp.Fork()
				if err != nil {
					panic(check.Failf("exp: rollout replay %s/%s: %v", ds, cand.name, err))
				}
				img.RunProbe(warm)
				cand.apply(fm, img)
				rows = append(rows, scored{cand.name, img.RunProbe(probe)})
			}
		} else {
			fm0, img0, err := cp.Fork()
			if err != nil {
				panic(check.Failf("exp: rollout fork %s: %v", ds, err))
			}
			img0.RunProbe(warm)
			for _, cand := range rolloutCandidates {
				fm, img := core.ForkPair(fm0, img0)
				cand.apply(fm, img)
				rows = append(rows, scored{cand.name, img.RunProbe(probe)})
			}
		}
		best := 0
		for i := range rows {
			if rows[i].r.CyclesPerAccess() < rows[best].r.CyclesPerAccess() {
				best = i
			}
		}
		for i, sc := range rows {
			pick := ""
			if i == best {
				pick = "<="
			}
			acc := sc.r.Accesses
			if acc == 0 {
				acc = 1
			}
			t.AddRow(string(ds), sc.name,
				stats.F(sc.r.CyclesPerAccess(), 2),
				stats.F(float64(sc.r.Walks)*1000/float64(acc), 1),
				fmt.Sprint(sc.r.Promotions),
				stats.MB(sc.r.HugeBytes),
				pick)
		}
	}
	return []*stats.Table{t}
}
