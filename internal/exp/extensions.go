package exp

import (
	"fmt"

	"graphmem/internal/analytics"
	"graphmem/internal/check"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
	"graphmem/internal/stats"
)

// The experiments in this file extend the paper's evaluation: the
// related-work baselines it discusses but does not run (Ingens- and
// HawkEye-style management), and the "automated systems" future
// direction implemented as static-profile-guided madvise.

// Baselines compares the huge page management engines under the paper's
// hostile environment: stock Linux THP, utilization-threshold
// (Ingens-like), access-heat (HawkEye-like), and the paper's manual
// DBG+selective strategy.
func (s *Suite) Baselines() []*stats.Table {
	t := stats.NewTable(
		"Extension: management engines under pressure+fragmentation (BFS)",
		"dataset", "thp", "ingens", "hawkeye", "dbg+sel50", "hawkeye-huge", "sel-huge")
	t.Note = "speedups vs 4KB fresh baseline; huge columns are MB of huge-backed memory at end"
	for _, ds := range gen.AllDatasets {
		base := s.baseline(analytics.BFS, ds)
		env := s.envFragmented(analytics.BFS, ds, lowPressureGB, 0.5)
		thp := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: env})
		ing := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.IngensLike(), env: env})
		hawk := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.HawkEyeLike(), env: env})
		sel := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.DBG,
			order: analytics.Natural, policy: core.SelectiveTHP(0.5), env: env})
		t.AddRow(string(ds),
			stats.F(s.speedup(base, thp), 3),
			stats.F(s.speedup(base, ing), 3),
			stats.F(s.speedup(base, hawk), 3),
			stats.F(s.speedup(base, sel), 3),
			stats.MB(hawk.TotalHugeBytes),
			stats.MB(sel.TotalHugeBytes))
	}
	return []*stats.Table{t}
}

// AutoSelective compares the automatic profile-guided madvise plan
// against the manual DBG+prefix strategy — on original (scattered-hub)
// and DBG datasets — under the headline environment. The automatic plan
// needs no reordering: it finds hot regions wherever they live.
func (s *Suite) AutoSelective() []*stats.Table {
	t := stats.NewTable(
		"Extension: automatic profile-guided THP vs manual selective (BFS)",
		"dataset", "manual:dbg+sel20", "auto:orig", "auto:dbg", "auto-huge-share")
	for _, ds := range gen.AllDatasets {
		base := s.baseline(analytics.BFS, ds)
		env := s.envFragmented(analytics.BFS, ds, lowPressureGB, 0.5)
		manual := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.DBG,
			order: analytics.Natural, policy: core.SelectiveTHP(0.2), env: env})
		// Budget the auto plan identically to manual sel-20: 20% of the
		// property array.
		e := s.graph(ds, false, reorder.Identity)
		budget := uint64(float64(e.g.N) * 8 * 0.2)
		if budget < 2<<20 {
			budget = 2 << 20
		}
		autoOrig := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.AutoTHP(budget), env: env})
		autoDBG := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.DBG,
			order: analytics.Natural, policy: core.AutoTHP(budget), env: env})
		t.AddRow(string(ds),
			stats.F(s.speedup(base, manual), 3),
			stats.F(s.speedup(base, autoOrig), 3),
			stats.F(s.speedup(base, autoDBG), 3),
			stats.Pct(autoDBG.HugeShareOfFootprint()))
	}
	return []*stats.Table{t}
}

// CCWorkload runs the Connected Components extension through the main
// policy comparison, showing the paper's findings transfer to workloads
// built on its building blocks.
func (s *Suite) CCWorkload() []*stats.Table {
	t := stats.NewTable(
		"Extension: Connected Components under the paper's policies",
		"dataset", "thp-fresh", "thp-pressured", "dbg+sel50")
	for _, ds := range gen.AllDatasets {
		base := s.run(runCfg{app: analytics.CC, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.Base4K(), env: core.FreshBoot()})
		fresh := s.run(runCfg{app: analytics.CC, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
		envP := s.envPressured(analytics.CC, ds, highPressureGB)
		press := s.run(runCfg{app: analytics.CC, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: envP})
		envF := s.envFragmented(analytics.CC, ds, lowPressureGB, 0.5)
		sel := s.run(runCfg{app: analytics.CC, ds: ds, method: reorder.DBG,
			order: analytics.Natural, policy: core.SelectiveTHP(0.5), env: envF})
		t.AddRow(string(ds),
			stats.F(s.speedup(base, fresh), 3),
			stats.F(s.speedup(base, press), 3),
			stats.F(s.speedup(base, sel), 3))
	}
	return []*stats.Table{t}
}

// GridControl is the negative control for the paper's *selective*
// strategy: a road-network-like 2D grid has perfectly uniform degree,
// so there is no hot subset for DBG to concentrate or for a madvise
// prefix to capture (per-region heat Gini ≈ 0). System-wide THP still
// helps — the BFS wavefront streams a footprint far beyond TLB reach —
// but partial coverage is strictly worse than full coverage and
// preprocessing is pure overhead. If selective ever beat THP here, the
// model would be broken.
func (s *Suite) GridControl() []*stats.Table {
	var side int
	switch s.Scale {
	case gen.ScaleTest:
		side = 64
	case gen.ScaleBench:
		side = 256
	default:
		side = 1024
	}
	g := gen.Grid(side, side, false, 0, 7)

	runOne := func(p core.Policy, method reorder.Method, env core.Environment) *core.RunResult {
		spec := core.RunSpec{
			Graph: g, App: analytics.BFS, Reorder: method,
			Order: analytics.Natural, Policy: p, Env: env,
			TLB: s.TLB,
		}
		r, err := core.Run(spec)
		if err != nil {
			panic(check.Failf("exp: %v", err))
		}
		return r
	}

	t := stats.NewTable(
		"Extension: grid negative control (BFS on a road-network-like graph)",
		"metric", "value")
	base := runOne(core.Base4K(), reorder.Identity, core.FreshBoot())
	thp := runOne(core.THPAlways(), reorder.Identity, core.FreshBoot())
	dbgSel := runOne(core.SelectiveTHP(0.5), reorder.DBG, core.FreshBoot())
	t.AddRow("vertices", fmt.Sprint(g.N))
	t.AddRow("4k dtlb miss", stats.Pct(base.Kernel.TLB.DTLBMissRate()))
	t.AddRow("thp speedup", stats.F(s.speedup(base, thp), 3))
	t.AddRow("dbg+sel50 speedup", stats.F(s.speedup(base, dbgSel), 3))
	t.Note = "uniform heat: no hot subset exists, so selective policies cannot beat full THP here"
	return []*stats.Table{t}
}

// fig6Cfg names one Fig. 6 cell: a pressured BFS/Kron run with the
// huge-page-economy timeline sampled ~12 times across initialization
// (interval from the expected init access count — WSS/64 cache lines
// at tens of cycles each). Shared by Fig6 and its cell declaration.
func (s *Suite) fig6Cfg(order analytics.AllocOrder) runCfg {
	e := s.graph(gen.Kron25, false, reorder.Identity)
	wss := analytics.WSSBytes(analytics.BFS, e.g)
	return runCfg{
		app: analytics.BFS, ds: gen.Kron25, method: reorder.Identity,
		order: order, policy: core.THPAlways(),
		env:         s.envPressured(analytics.BFS, gen.Kron25, highPressureGB),
		sampleEvery: wss / 64 * 30 / 12,
	}
}

// Fig6 reproduces the paper's Fig. 6 narrative with measured data: as
// initialization streams the arrays in (natural order), the free 2MB
// supply drains into the CSR arrays and runs out before the property
// array arrives; with the graph-optimized order the property array
// drinks first.
func (s *Suite) Fig6() []*stats.Table {
	var tables []*stats.Table
	for _, order := range []analytics.AllocOrder{analytics.Natural, analytics.PropFirst} {
		e := s.graph(gen.Kron25, false, reorder.Identity)
		r := s.run(s.fig6Cfg(order))
		t := stats.NewTable(
			fmt.Sprintf("Fig 6 (measured): huge page supply during init, %s order", order),
			"sample", "free-2MB-blocks", "edge-huge", "prop-huge")
		samples := r.Supply
		if len(samples) > 14 {
			samples = samples[:14]
		}
		for i, sm := range samples {
			t.AddRow(fmt.Sprint(i),
				fmt.Sprint(sm.FreeHugeBlocks),
				stats.MB(sm.EdgeHugeBytes),
				stats.MB(sm.PropHugeBytes))
		}
		t.Note = fmt.Sprintf("end state: prop huge = %s of %s", stats.MB(r.PropHugeBytes),
			stats.MB(uint64(e.g.N)*8))
		tables = append(tables, t)
	}
	return tables
}
