package exp

import (
	"fmt"
	"io"
	"strings"

	"graphmem/internal/stats"
)

// Experiment couples an id with its runner and description.
type Experiment struct {
	ID    string
	Paper string // the paper artifact it reproduces
	Desc  string
	Run   func(*Suite) []*stats.Table
}

// Registry lists every experiment in presentation order.
var Registry = []Experiment{
	{"table1", "Table 1", "simulated system parameters", (*Suite).Table1},
	{"table2", "Table 2", "applications and inputs", (*Suite).Table2},
	{"fig1", "Fig. 1", "THP speedup: fresh boot vs memory pressure", (*Suite).Fig1},
	{"fig2", "Fig. 2", "address translation overhead share", (*Suite).Fig2},
	{"fig3", "Fig. 3", "TLB miss rates, 4KB vs THP", (*Suite).Fig3},
	{"fig4", "Fig. 4", "per-data-structure access breakdown", (*Suite).Fig4},
	{"fig5", "Fig. 5", "per-structure madvise THP speedups (BFS)", (*Suite).Fig5},
	{"fig6", "Fig. 6", "huge page supply timeline during initialization", (*Suite).Fig6},
	{"fig7", "Fig. 7", "high pressure: natural vs optimized allocation order", (*Suite).Fig7},
	{"sweep", "§4.3.1", "memory pressure sweep incl. oversubscription", (*Suite).PressureSweep},
	{"fig8", "Fig. 8", "50% fragmentation: natural vs optimized order", (*Suite).Fig8},
	{"fig9", "Fig. 9", "fragmentation level sweep (BFS)", (*Suite).Fig9},
	{"fig10", "Fig. 10", "DBG + selective THP under pressure+frag", (*Suite).Fig10},
	{"fig11", "Fig. 11", "selective THP sensitivity sweep (BFS)", (*Suite).Fig11},
	{"dbg", "§5.1.2", "DBG preprocessing overhead", (*Suite).DBGOverhead},
	{"headline", "Abstract", "headline metrics vs the paper's ranges", (*Suite).Headline},
	{"pagecache", "§4.3", "page cache single-use memory interference", (*Suite).PageCache},
	{"ext-baselines", "Related work", "Ingens/HawkEye-style engines vs selective THP", (*Suite).Baselines},
	{"ext-auto", "§7 future work", "automatic profile-guided madvise plans", (*Suite).AutoSelective},
	{"ext-cc", "§3.2", "Connected Components extension workload", (*Suite).CCWorkload},
	{"ext-grid", "control", "road-network negative control", (*Suite).GridControl},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAndRender executes the selected experiments (all when ids is
// empty), streaming rendered text tables to out and returning the
// tables keyed by experiment for further formatting.
func RunAndRender(s *Suite, ids []string, out io.Writer) (map[string][]*stats.Table, error) {
	selected := Registry
	if len(ids) > 0 {
		selected = nil
		for _, id := range ids {
			e, ok := Find(strings.TrimSpace(id))
			if !ok {
				return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)", id, knownIDs())
			}
			selected = append(selected, e)
		}
	}
	results := make(map[string][]*stats.Table, len(selected))
	for _, e := range selected {
		fmt.Fprintf(out, "\n### %s (%s): %s\n", e.ID, e.Paper, e.Desc)
		tables := e.Run(s)
		results[e.ID] = tables
		for _, t := range tables {
			fmt.Fprintln(out, t.String())
		}
	}
	return results, nil
}

func knownIDs() string {
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	return strings.Join(ids, ", ")
}
