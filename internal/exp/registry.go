package exp

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"graphmem/internal/check"
	"graphmem/internal/sched"
	"graphmem/internal/stats"
)

// Experiment couples an id with its runner, its declared simulation
// cells, and a description.
type Experiment struct {
	ID    string
	Paper string // the paper artifact it reproduces
	Desc  string
	Run   func(*Suite) []*stats.Table

	// Cells declares, up front, every simulation cell Run will request,
	// so RunCampaign can fan the whole campaign frontier over a worker
	// pool before any table is rendered. Nil means the experiment has
	// no pre-declarable cells (it either performs no runs, or — like
	// the grid control — simulates ad-hoc graphs outside the cell
	// space) and simply computes during rendering. For experiments with
	// a non-nil Cells, the declared list must equal the set of cells
	// Run requests — TestCellsMatchRuns enforces the equality, which is
	// also what makes run counts independent of the worker count.
	Cells func(*Suite) []runCfg

	// Caps is a comma-separated capability list shown by expdriver
	// -list. CapSnapshot marks experiments whose cells take the
	// checkpoint/fork path (and so benefit from -ckpt-dir); CapSharded
	// marks cells running the sharded machine engine; CapFullScale
	// marks the experiment whose full-geometry budgets are gated behind
	// GRAPHMEM_FULLSCALE=1 in CI. TestCapsMatchCells derives the first
	// two from each experiment's declared cells.
	Caps string
}

// Capability labels used in Experiment.Caps.
const (
	CapSnapshot  = "snapshot-forkable"
	CapSharded   = "sharded"
	CapFullScale = "full-scale-gated"
)

// Registry lists every experiment in presentation order.
var Registry = []Experiment{
	{"table1", "Table 1", "simulated system parameters", (*Suite).Table1, nil, ""},
	{"table2", "Table 2", "applications and inputs", (*Suite).Table2, nil, ""},
	{"fig1", "Fig. 1", "THP speedup: fresh boot vs memory pressure", (*Suite).Fig1, (*Suite).fig1Cells, CapSnapshot},
	{"fig2", "Fig. 2", "address translation overhead share", (*Suite).Fig2, (*Suite).fig2Cells, CapSnapshot},
	{"fig3", "Fig. 3", "TLB miss rates, 4KB vs THP", (*Suite).Fig3, (*Suite).fig2Cells, CapSnapshot},
	{"fig4", "Fig. 4", "per-data-structure access breakdown", (*Suite).Fig4, (*Suite).fig4Cells, CapSnapshot},
	{"fig5", "Fig. 5", "per-structure madvise THP speedups (BFS)", (*Suite).Fig5, (*Suite).fig5Cells, CapSnapshot},
	{"fig6", "Fig. 6", "huge page supply timeline during initialization", (*Suite).Fig6, (*Suite).fig6Cells, ""},
	{"fig7", "Fig. 7", "high pressure: natural vs optimized allocation order", (*Suite).Fig7, (*Suite).fig7Cells, CapSnapshot},
	{"sweep", "§4.3.1", "memory pressure sweep incl. oversubscription", (*Suite).PressureSweep, (*Suite).sweepCells, CapSnapshot},
	{"fig8", "Fig. 8", "50% fragmentation: natural vs optimized order", (*Suite).Fig8, (*Suite).fig8Cells, CapSnapshot},
	{"fig9", "Fig. 9", "fragmentation level sweep (BFS)", (*Suite).Fig9, (*Suite).fig9Cells, CapSnapshot},
	{"fig10", "Fig. 10", "DBG + selective THP under pressure+frag", (*Suite).Fig10, (*Suite).fig10Cells, CapSnapshot},
	{"fig11", "Fig. 11", "selective THP sensitivity sweep (BFS)", (*Suite).Fig11, (*Suite).fig11Cells, CapSnapshot},
	{"dbg", "§5.1.2", "DBG preprocessing overhead", (*Suite).DBGOverhead, (*Suite).dbgCells, CapSnapshot},
	{"headline", "Abstract", "headline metrics vs the paper's ranges", (*Suite).Headline, (*Suite).headlineCells, CapSnapshot},
	{"pagecache", "§4.3", "page cache single-use memory interference", (*Suite).PageCache, (*Suite).pagecacheCells, CapSnapshot},
	{"ext-baselines", "Related work", "Ingens/HawkEye-style engines vs selective THP", (*Suite).Baselines, (*Suite).baselinesCells, CapSnapshot},
	{"ext-auto", "§7 future work", "automatic profile-guided madvise plans", (*Suite).AutoSelective, (*Suite).autoSelectiveCells, CapSnapshot},
	{"ext-cc", "§3.2", "Connected Components extension workload", (*Suite).CCWorkload, (*Suite).ccCells, CapSnapshot},
	{"ext-grid", "control", "road-network negative control", (*Suite).GridControl, nil, ""},
	{"ext-rollout", "§7 future work", "online policy rollout via checkpoint forks", (*Suite).Rollout, nil, CapSnapshot},
	{"ext-shard", "§6 scaling", "sharded machine engine: modeled intra-run scaling", (*Suite).ShardScaling, (*Suite).shardCells, CapSnapshot + "," + CapSharded},
	{"ext-fullscale", "§4 geometry", "paper-geometry campaign: footprint & sharded kernels at true scale", (*Suite).Fullscale, (*Suite).fullscaleCells, CapSnapshot + "," + CapSharded + "," + CapFullScale},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// selectExperiments resolves ids (all of Registry when empty) in
// presentation order.
func selectExperiments(ids []string) ([]Experiment, error) {
	if len(ids) == 0 {
		return Registry, nil
	}
	var selected []Experiment
	for _, id := range ids {
		e, ok := Find(strings.TrimSpace(id))
		if !ok {
			return nil, fmt.Errorf("exp: unknown experiment %q (known: %s)", id, knownIDs())
		}
		selected = append(selected, e)
	}
	return selected, nil
}

// CampaignOptions configures RunCampaign.
type CampaignOptions struct {
	// Workers is the number of concurrent simulation workers (minimum
	// 1). The campaign's rendered output is byte-identical for every
	// value — parallelism only changes wall-clock time.
	Workers int

	// Progress, when non-nil, is invoked from worker goroutines as
	// frontier cells finish: worker is the executing worker's index,
	// done the number of cells completed so far, total the frontier
	// size. Calls are serialized by the campaign.
	Progress func(worker, done, total int, cell string)
}

// RunCampaign executes the selected experiments (all when ids is empty)
// in three phases: declare (collect every experiment's cell list,
// generating datasets through the graph promise cache), execute (fan
// the deduplicated frontier over a sched.Pool of opt.Workers workers),
// and render (run each experiment in registry order against the warmed
// run cache, streaming text tables to out). Rendering consumes only
// memoized, deterministic results, so the returned tables and
// everything written to out are byte-identical for every worker count.
func RunCampaign(s *Suite, ids []string, opt CampaignOptions, out io.Writer) (map[string][]*stats.Table, error) {
	selected, err := selectExperiments(ids)
	if err != nil {
		return nil, err
	}

	pool := sched.NewPool(opt.Workers)
	defer pool.Close()
	auditSuite := func() { check.Audit("exp.suite", func() error { return s.CheckInvariants(true) }) }

	// Phase 1 — declare. Cells functions request graphs through the
	// promise cache, so dataset generation and reordering parallelize
	// across experiments here.
	cellLists := make([][]runCfg, len(selected))
	for i, e := range selected {
		if e.Cells == nil {
			continue
		}
		pool.Go(func(int) { cellLists[i] = e.Cells(s) })
	}
	pool.Wait()
	auditSuite()

	// Phase 2 — execute. Dedup the frontier in declaration order and
	// fan it out; duplicate requests that slip through (none, given the
	// key dedup) would collapse onto one promise anyway.
	seen := make(map[string]bool)
	var frontier []runCfg
	for _, cells := range cellLists {
		for _, c := range cells {
			if k := c.key(); !seen[k] {
				seen[k] = true
				frontier = append(frontier, c)
			}
		}
	}
	var progressMu sync.Mutex
	done := 0
	for _, c := range frontier {
		pool.Go(func(worker int) {
			s.run(c)
			if opt.Progress != nil {
				progressMu.Lock()
				done++
				n := done
				progressMu.Unlock()
				opt.Progress(worker, n, len(frontier), c.label())
			}
		})
	}
	pool.Wait()
	auditSuite()

	// Phase 3 — render, sequentially in registry order.
	results := make(map[string][]*stats.Table, len(selected))
	for _, e := range selected {
		fmt.Fprintf(out, "\n### %s (%s): %s\n", e.ID, e.Paper, e.Desc)
		tables := e.Run(s)
		results[e.ID] = tables
		for _, t := range tables {
			fmt.Fprintln(out, t.String())
		}
	}
	return results, nil
}

// RunAndRender executes the selected experiments (all when ids is
// empty) single-threaded, streaming rendered text tables to out and
// returning the tables keyed by experiment for further formatting. It
// is RunCampaign with one worker.
func RunAndRender(s *Suite, ids []string, out io.Writer) (map[string][]*stats.Table, error) {
	return RunCampaign(s, ids, CampaignOptions{Workers: 1}, out)
}

func knownIDs() string {
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	return strings.Join(ids, ", ")
}
