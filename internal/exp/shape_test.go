package exp

import (
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
)

// shapeSuite runs at full scale on the paper's Haswell TLB geometry;
// the assertions need property arrays spanning multiple 2MB regions,
// which bench-scale graphs do not have. The full test takes a couple of
// minutes and is skipped under -short.
func shapeSuite() *Suite {
	s := NewSuite(gen.ScaleFull, nil)
	s.PRMaxIters = 2
	return s
}

// TestPaperShape asserts DESIGN.md §6's validation targets — the
// qualitative claims of the paper — on the Kronecker BFS configuration.
// It is the regression net for the whole model: if a change to the
// allocator, policy engine, or cost model breaks any paper-shape
// property, this fails.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	if raceEnabled {
		t.Skip("full-scale single-threaded simulation; too slow under race instrumentation")
	}
	s := shapeSuite()
	const ds = gen.Kron25

	base := s.baseline(analytics.BFS, ds)
	thpFresh := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})

	// 1. Fresh-boot THP cuts the DTLB miss rate and beats the baseline.
	if r := thpFresh.Kernel.TLB.DTLBMissRate(); r > base.Kernel.TLB.DTLBMissRate()/2 {
		t.Errorf("THP dtlb %.3f not under half of 4K %.3f",
			r, base.Kernel.TLB.DTLBMissRate())
	}
	if thpFresh.TotalCycles >= base.TotalCycles {
		t.Error("THP fresh not faster than 4K")
	}

	// 2. Per-structure: property-only ≈ system-wide; edge-only ≪ that.
	prop := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.PerStructure("prop"), env: core.FreshBoot()})
	edge := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.PerStructure("edge"), env: core.FreshBoot()})
	gainAll := float64(base.TotalCycles) / float64(thpFresh.TotalCycles)
	gainProp := float64(base.TotalCycles) / float64(prop.TotalCycles)
	gainEdge := float64(base.TotalCycles) / float64(edge.TotalCycles)
	if gainProp < 1+(gainAll-1)*0.6 {
		t.Errorf("prop-only gain %.3f too far below system-wide %.3f", gainProp, gainAll)
	}
	if gainEdge >= gainProp {
		t.Errorf("edge-only gain %.3f not below prop-only %.3f", gainEdge, gainProp)
	}

	// 3. Pressure erodes THP; optimized allocation order recovers it.
	envHigh := s.envPressured(analytics.BFS, ds, highPressureGB)
	nat := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.THPAlways(), env: envHigh})
	opt := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.PropFirst, policy: core.THPAlways(), env: envHigh})
	if nat.PropHugeBytes >= opt.PropHugeBytes {
		t.Errorf("natural order prop huge %d not below optimized %d",
			nat.PropHugeBytes, opt.PropHugeBytes)
	}
	if nat.TotalCycles <= opt.TotalCycles {
		t.Error("natural order not slower than optimized under pressure")
	}

	// 4. Fragmentation sweep: THP-natural decays as frag rises.
	envFrag := func(level float64) core.Environment {
		return s.envFragmented(analytics.BFS, ds, lowPressureGB, level)
	}
	prev := uint64(0)
	for _, level := range []float64{0, 0.5, 0.75} {
		r := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: envFrag(level)})
		if r.TotalCycles < prev {
			t.Errorf("THP at frag %.0f%% faster than at lower level", level*100)
		}
		prev = r.TotalCycles
	}

	// 5. DBG + selective beats Linux THP under pressure+frag with a
	// small huge page budget.
	sel := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.DBG,
		order: analytics.Natural, policy: core.SelectiveTHP(0.5), env: envFrag(0.5)})
	linux := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.THPAlways(), env: envFrag(0.5)})
	if sel.TotalCycles >= linux.TotalCycles {
		t.Errorf("selective %d not faster than Linux THP %d under pressure+frag",
			sel.TotalCycles, linux.TotalCycles)
	}
	if share := sel.HugeShareOfFootprint(); share > 0.15 {
		t.Errorf("selective used %.1f%% of footprint as huge pages, want small", share*100)
	}

	// 6. Oversubscription: order-of-magnitude slowdown.
	over := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.Base4K(),
		env: s.envPressured(analytics.BFS, ds, -0.5)})
	if slow := float64(over.TotalCycles) / float64(base.TotalCycles); slow < 3 {
		t.Errorf("oversubscription slowdown only %.1fx", slow)
	}
	if over.OS.SwapIns == 0 {
		t.Error("oversubscription produced no swap traffic")
	}
}

// TestShapeBaselineInsensitiveToEnvironment: the paper's green bars —
// 4KB-page performance is unaffected by pressure and fragmentation (as
// long as memory is not oversubscribed).
func TestShapeBaselineInsensitiveToEnvironment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	if raceEnabled {
		t.Skip("full-scale single-threaded simulation; too slow under race instrumentation")
	}
	s := shapeSuite()
	const ds = gen.Wiki
	base := s.baseline(analytics.BFS, ds)
	for i, env := range []core.Environment{
		s.envPressured(analytics.BFS, ds, highPressureGB),
		s.envFragmented(analytics.BFS, ds, lowPressureGB, 0.75),
	} {
		r := s.run(runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.Base4K(), env: env})
		ratio := float64(r.KernelCycles) / float64(base.KernelCycles)
		if ratio > 1.05 || ratio < 0.95 {
			t.Errorf("env %d moved the 4K baseline by %.1f%%", i, 100*(ratio-1))
		}
	}
}
