package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"graphmem/internal/core"
	"graphmem/internal/gen"
)

// renderWithStore runs the given experiments on a fresh suite, with the
// persistent store at dir (empty disables), and returns every rendered
// byte surface.
func renderWithStore(t *testing.T, dir string, ids []string, workers int) (text, markdown, csv string) {
	t.Helper()
	s := NewSuite(gen.ScaleTest, nil)
	s.PRMaxIters = 2
	s.CkptDir = dir
	var out strings.Builder
	res, err := RunCampaign(s, ids, CampaignOptions{Workers: workers}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var md, cs strings.Builder
	for _, e := range Registry {
		for _, tb := range res[e.ID] {
			md.WriteString(tb.Markdown())
			cs.WriteString(tb.CSV())
		}
	}
	return out.String(), md.String(), cs.String()
}

// TestCheckpointStoreReloadMatchesFresh is the in-process version of
// ci.sh's reload gate: a campaign that populates the store, a second
// process-equivalent campaign that reloads every load phase from it
// (at -j 1 and -j 4), and a store-less campaign must all render
// byte-identical text, markdown, and CSV. It also proves the store was
// actually exercised: the populating run must leave container files
// behind, and a reloading run must not add any.
func TestCheckpointStoreReloadMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one experiment four times")
	}
	if core.SnapshotsDisabled() {
		t.Skip("GRAPHMEM_NO_SNAPSHOT disables the store")
	}
	dir := t.TempDir()
	ids := []string{"fig5"}

	freshText, freshMD, freshCSV := renderWithStore(t, "", ids, 1)
	popText, popMD, popCSV := renderWithStore(t, dir, ids, 1)
	saved, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) == 0 {
		t.Fatal("populating campaign saved no checkpoint containers")
	}
	reloadText, reloadMD, reloadCSV := renderWithStore(t, dir, ids, 1)
	reload4Text, reload4MD, reload4CSV := renderWithStore(t, dir, ids, 4)
	after, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(saved) {
		t.Errorf("reloading campaigns changed the store from %d to %d containers", len(saved), len(after))
	}

	for _, c := range []struct {
		name          string
		text, md, csv string
	}{
		{"populate", popText, popMD, popCSV},
		{"reload -j 1", reloadText, reloadMD, reloadCSV},
		{"reload -j 4", reload4Text, reload4MD, reload4CSV},
	} {
		if c.text != freshText {
			t.Errorf("%s text differs from the store-less campaign (%d vs %d bytes)", c.name, len(c.text), len(freshText))
		}
		if c.md != freshMD {
			t.Errorf("%s markdown differs from the store-less campaign", c.name)
		}
		if c.csv != freshCSV {
			t.Errorf("%s CSV differs from the store-less campaign", c.name)
		}
	}
}

// TestCheckpointStoreSurvivesCorruption proves the store degrades, never
// errors: campaigns pointed at a store of truncated containers restage
// and still render the store-less bytes.
func TestCheckpointStoreSurvivesCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one experiment three times")
	}
	if core.SnapshotsDisabled() {
		t.Skip("GRAPHMEM_NO_SNAPSHOT disables the store")
	}
	dir := t.TempDir()
	ids := []string{"fig4"}
	freshText, _, _ := renderWithStore(t, "", ids, 1)
	renderWithStore(t, dir, ids, 1)
	saved, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(saved) == 0 {
		t.Fatalf("populate left no containers (err %v)", err)
	}
	for _, path := range saved {
		img, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img[:len(img)/2], 0o600); err != nil {
			t.Fatal(err)
		}
	}
	text, _, _ := renderWithStore(t, dir, ids, 1)
	if text != freshText {
		t.Error("campaign over a corrupted store rendered different bytes than the store-less campaign")
	}
}

// TestCkptReloadSpeedup is the perf gate behind the persistent store's
// existence: on the bench-scale flagship fullscale cell, loading a
// saved container must beat re-staging the node by at least 3x, and the
// loaded checkpoint's forks must produce the staged forks' results.
// Wall-clock assertions are meaningless under -race or on a loaded
// host, so the gate runs only when GRAPHMEM_CKPT_GATE is set; ci.sh
// step 15 and bench.sh opt in, and bench.sh records the parseable
// ckpt_reload line (cmd/benchjson keys).
func TestCkptReloadSpeedup(t *testing.T) {
	if os.Getenv("GRAPHMEM_CKPT_GATE") == "" {
		t.Skip("set GRAPHMEM_CKPT_GATE=1 to run the reload perf gate (ci.sh)")
	}
	if core.SnapshotsDisabled() {
		t.Skip("GRAPHMEM_NO_SNAPSHOT disables checkpoints")
	}
	s := NewSuite(gen.ScaleBench, nil)
	c := s.fullscaleCfg()
	spec := s.spec(c) // generates the graph outside the timers
	key := c.initKey()

	const reps = 3
	stageMin := time.Duration(1 << 62)
	var cp *core.Checkpoint
	for i := 0; i < reps; i++ {
		start := time.Now()
		fresh, err := core.Prepare(spec)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < stageMin {
			stageMin = d
		}
		cp = fresh
	}

	var buf bytes.Buffer
	saveStart := time.Now()
	n, err := cp.Save(&buf, key)
	saveWall := time.Since(saveStart)
	if err != nil {
		t.Fatal(err)
	}

	loadMin := time.Duration(1 << 62)
	var loaded *core.Checkpoint
	for i := 0; i < reps; i++ {
		start := time.Now()
		lp, err := core.LoadCheckpoint(spec, key, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < loadMin {
			loadMin = d
		}
		loaded = lp
	}

	fresh, err := cp.Run()
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := loaded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, reloaded) {
		t.Error("reloaded checkpoint's fork produced a different RunResult than the staged one")
	}

	gbps := func(d time.Duration) float64 {
		return float64(n) / (1 << 30) / d.Seconds()
	}
	speedup := float64(stageMin) / float64(loadMin)
	t.Logf("ckpt_reload save_gbps=%.3f load_gbps=%.3f stage_ms=%.1f load_ms=%.1f speedup=%.2f bytes=%d",
		gbps(saveWall), gbps(loadMin), float64(stageMin.Microseconds())/1e3,
		float64(loadMin.Microseconds())/1e3, speedup, n)
	if speedup < 3 {
		t.Errorf("reload speedup %.2fx, want >= 3x over re-staging", speedup)
	}
}
