//go:build !race

package exp

// raceEnabled mirrors whether the race detector is compiled into the
// test binary. See race_on_test.go.
const raceEnabled = false
