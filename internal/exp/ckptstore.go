package exp

import (
	"fmt"
	"os"
	"path/filepath"

	"graphmem/internal/ckpt"
	"graphmem/internal/core"
)

// The persistent checkpoint store (DESIGN.md §5e): when Suite.CkptDir
// is set, the suite's in-memory checkpoint cache is backed by ckpt
// containers on disk, content-addressed by initKey — the exact string
// that already names a load phase for the in-memory cache. A campaign
// in a fresh process then forks loaded machines instead of replaying
// environment staging and init faulting; CI's reload gate proves the
// two are byte-identical and ≥3× faster at bench scale.
//
// The store is an optimization with escape hatches on both sides: it is
// inert without -ckpt-dir, disabled alongside GRAPHMEM_NO_SNAPSHOT
// (no resident machine to save or load), and every store failure —
// missing file, stale format version, corrupt or truncated image,
// mismatched key — degrades to staging from the spec, never to an
// error. Failures other than a store miss are logged.

// storeEnabled reports whether the persistent store participates in
// checkpoint requests.
func (s *Suite) storeEnabled() bool {
	return s.CkptDir != "" && !core.SnapshotsDisabled()
}

// storeLog records a store event on the suite's progress stream.
func (s *Suite) storeLog(format string, args ...any) {
	if s.Log == nil {
		return
	}
	s.logMu.Lock()
	fmt.Fprintf(s.Log, "  ckpt "+format+"\n", args...)
	s.logMu.Unlock()
}

// loadCheckpoint tries the store for initKey's staged state. It returns
// nil — stage from the spec — on any miss or failure.
func (s *Suite) loadCheckpoint(initKey string, spec core.RunSpec) *core.Checkpoint {
	if !s.storeEnabled() {
		return nil
	}
	path := ckpt.Path(s.CkptDir, initKey)
	f, err := os.Open(path)
	if err != nil {
		return nil // store miss
	}
	defer f.Close()
	cp, err := core.LoadCheckpoint(spec, initKey, f)
	if err != nil {
		// Stale version, corruption, or a hash collision with a
		// different key: restage (and let the save below overwrite).
		s.storeLog("load %s failed, restaging: %v", filepath.Base(path), err)
		return nil
	}
	return cp
}

// saveCheckpoint writes a freshly staged checkpoint to the store. The
// image is written to a temp file and renamed so concurrent campaigns
// sharing one store directory only ever observe complete containers.
func (s *Suite) saveCheckpoint(initKey string, cp *core.Checkpoint) {
	if !s.storeEnabled() {
		return
	}
	path := ckpt.Path(s.CkptDir, initKey)
	tmp, err := os.CreateTemp(s.CkptDir, ".ckpt-*")
	if err != nil {
		s.storeLog("save %s failed: %v", filepath.Base(path), err)
		return
	}
	_, err = cp.Save(tmp, initKey)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		s.storeLog("save %s failed: %v", filepath.Base(path), err)
	}
}
