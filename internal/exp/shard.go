package exp

import (
	"fmt"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
	"graphmem/internal/stats"
)

// The ext-shard experiment exercises the sharded machine engine
// (DESIGN.md §5c) as a modeling extension: the kernel phase of the
// paper's pressured BFS configuration is split across extShards
// owner-computes shards, and the table reports how well the modeled
// per-shard timelines overlap — the merged kernel time is the barrier
// makespan, so serial-sum/makespan is the modeled intra-run scaling
// and max/mean over ShardKernelCycles is the partition balance.
//
// Every ext-shard cell is sharded; the experiment deliberately has no
// monolithic comparator cells, so the ci.sh shard-equivalence campaign
// (step 12) measures fork-vs-replay bring-up undiluted.

// extShards is the shard count the ext-shard experiment models.
// Sixteen is large enough that partition balance and barrier overlap
// are non-trivial on every dataset, and it makes shard bring-up a
// first-order cost: the NO_SHARD reference replays the load phase per
// shard where the engine forks it, which is exactly the margin the
// ci.sh step-12 speedup gate measures.
const extShards = 16

// shardNodeBytes is the modeled node memory of the ext-shard cells.
// The paper's evaluation machine holds hundreds of GB against working
// sets a fraction of that; the other experiments shrink the node to
// 4×WSS because only the free tail matters to them, but the sharded
// engine exists to model big-memory nodes, so its cells stage the full
// (scaled) node: memhog pins everything beyond WSS+delta, making
// environment bring-up — the cost sharding amortizes — as prominent as
// it is on real hardware.
func (s *Suite) shardNodeBytes() uint64 {
	switch s.Scale {
	case gen.ScaleFull, gen.ScaleBench:
		return 16 << 30
	default:
		return 128 << 20
	}
}

// shardCfg names one ext-shard cell: pressured BFS on a big-memory
// node with the kernel phase sharded. Shared by ShardScaling and its
// cell declaration.
func (s *Suite) shardCfg(ds gen.Dataset) runCfg {
	env := s.envPressured(analytics.BFS, ds, highPressureGB)
	env.MemoryBytes = s.shardNodeBytes()
	return runCfg{
		app: analytics.BFS, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: core.THPAlways(),
		env:    env,
		shards: extShards,
	}
}

func (s *Suite) shardCells() []runCfg {
	var cells []runCfg
	for _, ds := range gen.AllDatasets {
		cells = append(cells, s.shardCfg(ds))
	}
	return cells
}

// ShardScaling renders the modeled intra-run scaling of the sharded
// engine: makespan (the merged kernel time), the serial sum of the
// per-shard kernel cycles, their ratio (modeled scaling at extShards
// shards), and the partition balance (slowest shard over the mean —
// 1.0 is a perfect split).
func (s *Suite) ShardScaling() []*stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Extension: sharded machine engine, %d-shard BFS kernel under pressure", extShards),
		"dataset", "makespan", "serial-sum", "scale-x", "balance")
	t.Note = "scale-x = serial-sum/makespan (modeled overlap); balance = slowest shard / mean shard"
	for _, ds := range gen.AllDatasets {
		r := s.run(s.shardCfg(ds))
		var sum, slowest uint64
		for _, c := range r.ShardKernelCycles {
			sum += c
			if c > slowest {
				slowest = c
			}
		}
		mean := float64(sum) / float64(len(r.ShardKernelCycles))
		t.AddRow(string(ds),
			fmt.Sprint(r.KernelCycles),
			fmt.Sprint(sum),
			stats.F(float64(sum)/float64(r.KernelCycles), 3),
			stats.F(float64(slowest)/mean, 3))
	}
	return []*stats.Table{t}
}
