package exp

import (
	"os"
	"testing"
	"time"

	"graphmem/internal/core"
	"graphmem/internal/gen"
)

// TestShardBringupSpeedup is the ci.sh step-12 performance gate: on a
// big-memory cell, fork-based shard bring-up must cut single-run
// wall-clock at least 2x against the GRAPHMEM_NO_SHARD=1 reference,
// which replays the load phase once per shard. The cell is the
// ext-shard kr25 configuration — the largest working set in the
// suite, so bring-up dominates and the ratio is stable.
//
// The gate times one simulation in-process (min of three runs per
// side, fork and replay interleaved) rather than a whole campaign
// from the shell: dataset generation, process start-up, and sibling
// cells would otherwise dilute the margin under measurement, and on a
// busy host the min-of-N of a paired in-process comparison is far
// less noisy than one subprocess wall-clock sample.
//
// Wall-clock assertions are meaningless under -race or on an
// arbitrarily loaded host, so the test skips unless
// GRAPHMEM_SPEEDUP_GATE is set; ci.sh and bench.sh opt in.
func TestShardBringupSpeedup(t *testing.T) {
	if os.Getenv("GRAPHMEM_SPEEDUP_GATE") == "" {
		t.Skip("set GRAPHMEM_SPEEDUP_GATE=1 to run the wall-clock gate (ci.sh step 12)")
	}
	if os.Getenv("GRAPHMEM_NO_SHARD") != "" {
		t.Fatal("GRAPHMEM_NO_SHARD is set; the gate toggles the hatch itself")
	}
	// Measure at the worker count ci.sh campaigns use (-shards 4). The
	// worker knob cannot change output and barely moves single-core
	// timing; pinning it just makes the recorded figure reproducible.
	os.Setenv("GRAPHMEM_SHARD_WORKERS", "4")
	defer os.Unsetenv("GRAPHMEM_SHARD_WORKERS")
	s := NewSuite(gen.ScaleBench, nil)
	spec := s.spec(s.shardCfg(gen.Kron25))
	oneRun := func() time.Duration {
		start := time.Now()
		if _, err := core.Run(spec); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	oneRun() // warm-up: page in the dataset and settle the heap

	const reps = 3
	fork := time.Duration(1 << 62)
	replay := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		if d := oneRun(); d < fork {
			fork = d
		}
		os.Setenv("GRAPHMEM_NO_SHARD", "1")
		d := oneRun()
		os.Unsetenv("GRAPHMEM_NO_SHARD")
		if d < replay {
			replay = d
		}
	}
	speedup := float64(replay) / float64(fork)
	t.Logf("shard_bringup fork_ms=%d replay_ms=%d speedup=%.2f",
		fork.Milliseconds(), replay.Milliseconds(), speedup)
	if speedup < 2 {
		t.Errorf("fork bring-up speedup %.2fx (fork=%v replay=%v), want >= 2x: forks are not amortizing shard bring-up",
			speedup, fork, replay)
	}
}
