package exp

import (
	"os"
	"runtime"
	"testing"
	"time"

	"graphmem/internal/analytics"
	"graphmem/internal/gen"
)

// TestFullscaleGeometryGate is the paper-geometry CI gate: the
// ext-fullscale campaign must stage its {Kron25, Twit} × {BFS, PR} ×
// {THP, 4KB} grid of ≥100 GB nodes, run every sharded kernel
// end-to-end inside a wall-clock budget, keep the whole process inside
// a host-memory budget, and show the frame-metadata/VM compaction
// delivering at least a 2x reduction in simulator bytes against the
// legacy dense representation on the flagship node.
//
// Budgets are deliberately loose multiples of the measured figures:
// they exist to catch regressions back to dense metadata — which would
// roughly double memsys bytes and blow the reduction floor — not to
// benchmark the host. Wall-clock assertions are meaningless under
// -race or on an arbitrarily loaded machine, so the test skips unless
// GRAPHMEM_FULLSCALE is set; ci.sh and bench.sh opt in.
//
// When GRAPHMEM_CKPT_DIR is also set, the campaign backs its
// checkpoint cache with the persistent store there, so repeated gate
// runs (CI repetitions, bench.sh after ci.sh) reload the staged nodes
// from disk instead of re-faulting 100 GB+ of state per node — ci.sh
// step 14 points both repetitions at one store directory.
func TestFullscaleGeometryGate(t *testing.T) {
	if os.Getenv("GRAPHMEM_FULLSCALE") == "" {
		t.Skip("set GRAPHMEM_FULLSCALE=1 to run the paper-geometry gate (ci.sh)")
	}
	s := NewSuite(gen.ScaleFull, nil)
	s.CkptDir = os.Getenv("GRAPHMEM_CKPT_DIR")
	if node := s.fullscaleNodeBytes(); node < 100<<30 {
		t.Fatalf("full-scale node is %d bytes, want >= 100 GB of staged geometry", node)
	}

	// The declared grid must stay a real campaign: at least two
	// datasets, two kernels, and two policies at full geometry.
	apps := make(map[analytics.App]bool)
	dss := make(map[gen.Dataset]bool)
	pols := make(map[string]bool)
	cells := s.fullscaleCells()
	for _, c := range cells {
		apps[c.app] = true
		dss[c.ds] = true
		pols[c.policy.Name] = true
		if c.shards <= 1 {
			t.Errorf("cell %s is not sharded", c.label())
		}
	}
	if len(apps) < 2 || len(dss) < 2 || len(pols) < 2 {
		t.Fatalf("campaign grid is %d kernels x %d datasets x %d policies, want >= 2 of each",
			len(apps), len(dss), len(pols))
	}

	start := time.Now()
	tables := s.Fullscale()
	wall := time.Since(start)
	if len(tables) < 2 {
		t.Fatalf("Fullscale rendered %d tables, want kernel campaign + footprint", len(tables))
	}
	if rows := len(tables[0].Rows); rows != len(cells) {
		t.Errorf("campaign table has %d rows, want %d (one per cell)", rows, len(cells))
	}

	fp, ok := s.FullscaleFootprint()
	if !ok {
		t.Fatal("no resident machine to introspect (GRAPHMEM_NO_SNAPSHOT set?)")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	// The parseable line bench.sh records (cmd/benchjson keys).
	t.Logf("footprint_fullscale total_bytes=%d legacy_bytes=%d reduction=%.3f bytes_per_sim_gb=%.0f wall_s=%.1f heap_sys_mb=%.0f",
		fp.TotalBytes(), fp.LegacyBytes(), fp.Reduction(), fp.BytesPerSimGB(),
		wall.Seconds(), float64(ms.Sys)/(1<<20))

	// A cold run stages all eight 128 GB nodes (~9.5 min measured); a
	// warm run reloads them from GRAPHMEM_CKPT_DIR in a fraction of
	// that. The budget covers the cold case with headroom for a loaded
	// host — it catches order-of-magnitude staging regressions, not
	// few-percent drift.
	if wall > 15*time.Minute {
		t.Errorf("paper-geometry campaign took %v, budget 15m", wall)
	}
	if red := fp.Reduction(); red < 2.0 {
		t.Errorf("footprint reduction %.2fx, want >= 2x vs the legacy dense representation", red)
	}
	// Eight resident 128 GB-geometry nodes measure ~9.3 GB staged cold
	// and ~10.0 GB reloaded warm (the loader's decode buffers retire a
	// little later). A dense-metadata regression adds ~0.4 GB per node
	// (+3.2 GB for the campaign), which still blows this budget.
	if budget := uint64(12 << 30); ms.Sys > budget {
		t.Errorf("process took %d bytes from the OS, budget %d", ms.Sys, budget)
	}
}
