package exp

import (
	"os"
	"runtime"
	"testing"
	"time"

	"graphmem/internal/gen"
)

// TestFullscaleGeometryGate is the paper-geometry CI gate: the
// ext-fullscale cell must stage a ≥100 GB node, run its sharded kernel
// end-to-end inside a wall-clock budget, keep the whole process inside
// a host-memory budget, and show the frame-metadata/VM compaction
// delivering at least a 2x reduction in simulator bytes against the
// legacy dense representation.
//
// Budgets are deliberately loose multiples of the measured figures
// (~40 s wall, ~2.3x reduction, ~3 GB heap on the reference host):
// they exist to catch regressions back to dense metadata — which would
// roughly double memsys bytes and blow the reduction floor — not to
// benchmark the host. Wall-clock assertions are meaningless under
// -race or on an arbitrarily loaded machine, so the test skips unless
// GRAPHMEM_FULLSCALE is set; ci.sh and bench.sh opt in.
func TestFullscaleGeometryGate(t *testing.T) {
	if os.Getenv("GRAPHMEM_FULLSCALE") == "" {
		t.Skip("set GRAPHMEM_FULLSCALE=1 to run the paper-geometry gate (ci.sh)")
	}
	s := NewSuite(gen.ScaleFull, nil)
	if node := s.fullscaleNodeBytes(); node < 100<<30 {
		t.Fatalf("full-scale node is %d bytes, want >= 100 GB of staged geometry", node)
	}

	start := time.Now()
	tables := s.Fullscale()
	wall := time.Since(start)
	if len(tables) < 2 {
		t.Fatalf("Fullscale rendered %d tables, want kernel + footprint", len(tables))
	}

	fp, ok := s.FullscaleFootprint()
	if !ok {
		t.Fatal("no resident machine to introspect (GRAPHMEM_NO_SNAPSHOT set?)")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	// The parseable line bench.sh records (cmd/benchjson keys).
	t.Logf("footprint_fullscale total_bytes=%d legacy_bytes=%d reduction=%.3f bytes_per_sim_gb=%.0f wall_s=%.1f heap_sys_mb=%.0f",
		fp.TotalBytes(), fp.LegacyBytes(), fp.Reduction(), fp.BytesPerSimGB(),
		wall.Seconds(), float64(ms.Sys)/(1<<20))

	if wall > 10*time.Minute {
		t.Errorf("paper-geometry cell took %v, budget 10m", wall)
	}
	if red := fp.Reduction(); red < 2.0 {
		t.Errorf("footprint reduction %.2fx, want >= 2x vs the legacy dense representation", red)
	}
	if budget := uint64(10 << 30); ms.Sys > budget {
		t.Errorf("process took %d bytes from the OS, budget %d", ms.Sys, budget)
	}
}
