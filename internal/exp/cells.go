package exp

// This file declares, for each experiment, the simulation cells its Run
// method requests — the campaign frontier RunCampaign fans over the
// scheduler. Each declaration mirrors its experiment's configuration
// loops exactly; TestCellsMatchRuns proves the mirror is faithful (the
// declared set equals the requested set), so a cell added to an
// experiment without a matching declaration fails the suite instead of
// silently serializing.

import (
	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
)

// appDS invokes fn over the paper's full app × dataset matrix in
// presentation order.
func appDS(fn func(app analytics.App, ds gen.Dataset)) {
	for _, app := range analytics.AllApps {
		for _, ds := range gen.AllDatasets {
			fn(app, ds)
		}
	}
}

func (s *Suite) fig1Cells() []runCfg {
	var cells []runCfg
	appDS(func(app analytics.App, ds gen.Dataset) {
		env := s.envPressured(app, ds, highPressureGB)
		cells = append(cells,
			baselineCfg(app, ds),
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()},
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env},
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.Base4K(), env: env})
	})
	return cells
}

// fig2Cells also serves Fig. 3: both figures read the same two runs per
// configuration (the 4KB baseline and fresh-boot THP).
func (s *Suite) fig2Cells() []runCfg {
	var cells []runCfg
	appDS(func(app analytics.App, ds gen.Dataset) {
		cells = append(cells,
			baselineCfg(app, ds),
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
	})
	return cells
}

func (s *Suite) fig4Cells() []runCfg {
	var cells []runCfg
	for _, app := range analytics.AllApps {
		cells = append(cells, baselineCfg(app, gen.Kron25))
	}
	return cells
}

func (s *Suite) fig5Cells() []runCfg {
	var cells []runCfg
	for _, ds := range gen.AllDatasets {
		cells = append(cells, baselineCfg(analytics.BFS, ds))
		for _, st := range []string{"vertex", "edge", "prop"} {
			cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.PerStructure(st), env: core.FreshBoot()})
		}
		cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
	}
	return cells
}

func (s *Suite) fig6Cells() []runCfg {
	return []runCfg{
		s.fig6Cfg(analytics.Natural),
		s.fig6Cfg(analytics.PropFirst),
	}
}

func (s *Suite) fig7Cells() []runCfg {
	var cells []runCfg
	appDS(func(app analytics.App, ds gen.Dataset) {
		env := s.envPressured(app, ds, highPressureGB)
		cells = append(cells,
			baselineCfg(app, ds),
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()},
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env},
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.PropFirst, policy: core.THPAlways(), env: env})
	})
	return cells
}

func (s *Suite) sweepCells() []runCfg {
	levels := []float64{-0.5, 0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	var cells []runCfg
	for _, policy := range []core.Policy{core.Base4K(), core.THPAlways()} {
		for _, ds := range gen.AllDatasets {
			cells = append(cells, baselineCfg(analytics.BFS, ds))
			for _, l := range levels {
				cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
					order: analytics.Natural, policy: policy,
					env: s.envPressured(analytics.BFS, ds, l)})
			}
		}
	}
	return cells
}

func (s *Suite) fig8Cells() []runCfg {
	var cells []runCfg
	appDS(func(app analytics.App, ds gen.Dataset) {
		env := s.envFragmented(app, ds, lowPressureGB, 0.5)
		cells = append(cells,
			baselineCfg(app, ds),
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()},
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env},
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.PropFirst, policy: core.THPAlways(), env: env})
	})
	return cells
}

func (s *Suite) fig9Cells() []runCfg {
	levels := []float64{0, 0.25, 0.5, 0.75}
	var cells []runCfg
	for _, ds := range gen.AllDatasets {
		cells = append(cells, baselineCfg(analytics.BFS, ds))
		for _, order := range []analytics.AllocOrder{analytics.Natural, analytics.PropFirst} {
			for _, l := range levels {
				cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
					order: order, policy: core.THPAlways(),
					env: s.envFragmented(analytics.BFS, ds, lowPressureGB, l)})
			}
		}
	}
	return cells
}

func (s *Suite) fig10Cells() []runCfg {
	var cells []runCfg
	appDS(func(app analytics.App, ds gen.Dataset) {
		env := s.envFragmented(app, ds, lowPressureGB, 0.5)
		cells = append(cells,
			baselineCfg(app, ds),
			runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.Base4K(), env: env},
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env},
			runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.THPAlways(), env: env},
			runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.SelectiveTHP(0.5), env: env},
			runCfg{app: app, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.SelectiveTHP(1.0), env: env})
	})
	return cells
}

func (s *Suite) fig11Cells() []runCfg {
	selLevels := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	var cells []runCfg
	for _, ds := range gen.AllDatasets {
		cells = append(cells, baselineCfg(analytics.BFS, ds))
		env := s.envFragmented(analytics.BFS, ds, lowPressureGB, 0.5)
		for _, method := range []reorder.Method{reorder.Identity, reorder.DBG} {
			for _, sel := range selLevels {
				policy := core.Base4K()
				if sel > 0 {
					policy = core.SelectiveTHP(sel)
				}
				cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: method,
					order: analytics.Natural, policy: policy, env: env})
			}
		}
	}
	return cells
}

func (s *Suite) dbgCells() []runCfg {
	var cells []runCfg
	appDS(func(app analytics.App, ds gen.Dataset) {
		cells = append(cells, runCfg{app: app, ds: ds, method: reorder.DBG,
			order: analytics.Natural, policy: core.SelectiveTHP(1.0),
			env: s.envFragmented(app, ds, lowPressureGB, 0.5)})
	})
	return cells
}

func (s *Suite) headlineCells() []runCfg {
	var cells []runCfg
	appDS(func(app analytics.App, ds gen.Dataset) {
		env := s.envFragmented(app, ds, lowPressureGB, 0.5)
		cells = append(cells, baselineCfg(app, ds))
		for _, method := range []reorder.Method{reorder.Identity, reorder.DBG} {
			for _, pct := range []float64{0.5, 1.0} {
				cells = append(cells, runCfg{app: app, ds: ds, method: method,
					order: analytics.Natural, policy: core.SelectiveTHP(pct), env: env})
			}
		}
		cells = append(cells,
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: env},
			runCfg{app: app, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()})
	})
	return cells
}

func (s *Suite) pagecacheCells() []runCfg {
	var cells []runCfg
	for _, ds := range gen.AllDatasets {
		cells = append(cells, baselineCfg(analytics.BFS, ds))
		env := s.envPressured(analytics.BFS, ds, 1.0)
		cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: env})
		g := s.graph(ds, false, reorder.Identity).g
		dirty := env
		// The CSR files (vertex + edge arrays) pass through the cache.
		dirty.PageCacheBytes = uint64(len(g.Offsets))*8 + uint64(g.NumEdges())*4
		cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
			order: analytics.Natural, policy: core.THPAlways(), env: dirty})
	}
	return cells
}

func (s *Suite) baselinesCells() []runCfg {
	var cells []runCfg
	for _, ds := range gen.AllDatasets {
		cells = append(cells, baselineCfg(analytics.BFS, ds))
		env := s.envFragmented(analytics.BFS, ds, lowPressureGB, 0.5)
		for _, policy := range []core.Policy{core.THPAlways(), core.IngensLike(), core.HawkEyeLike()} {
			cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: policy, env: env})
		}
		cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.DBG,
			order: analytics.Natural, policy: core.SelectiveTHP(0.5), env: env})
	}
	return cells
}

func (s *Suite) autoSelectiveCells() []runCfg {
	var cells []runCfg
	for _, ds := range gen.AllDatasets {
		cells = append(cells, baselineCfg(analytics.BFS, ds))
		env := s.envFragmented(analytics.BFS, ds, lowPressureGB, 0.5)
		cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: reorder.DBG,
			order: analytics.Natural, policy: core.SelectiveTHP(0.2), env: env})
		// Budget the auto plan identically to manual sel-20: 20% of the
		// property array (mirrors AutoSelective).
		e := s.graph(ds, false, reorder.Identity)
		budget := uint64(float64(e.g.N) * 8 * 0.2)
		if budget < 2<<20 {
			budget = 2 << 20
		}
		for _, method := range []reorder.Method{reorder.Identity, reorder.DBG} {
			cells = append(cells, runCfg{app: analytics.BFS, ds: ds, method: method,
				order: analytics.Natural, policy: core.AutoTHP(budget), env: env})
		}
	}
	return cells
}

func (s *Suite) ccCells() []runCfg {
	var cells []runCfg
	for _, ds := range gen.AllDatasets {
		cells = append(cells,
			runCfg{app: analytics.CC, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.Base4K(), env: core.FreshBoot()},
			runCfg{app: analytics.CC, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(), env: core.FreshBoot()},
			runCfg{app: analytics.CC, ds: ds, method: reorder.Identity,
				order: analytics.Natural, policy: core.THPAlways(),
				env: s.envPressured(analytics.CC, ds, highPressureGB)},
			runCfg{app: analytics.CC, ds: ds, method: reorder.DBG,
				order: analytics.Natural, policy: core.SelectiveTHP(0.5),
				env: s.envFragmented(analytics.CC, ds, lowPressureGB, 0.5)})
	}
	return cells
}
