package exp

import (
	"fmt"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
	"graphmem/internal/stats"
)

// The ext-fullscale experiment is a small campaign at the paper's node
// geometry: {Kron25, Twit} × {BFS, PR} × {THP always, 4KB baseline},
// each cell a ≥100 GB physical node with memhog pinning everything
// beyond WSS+Δ and the kernel phase sharded. Where ext-shard studies
// modeled intra-run scaling across all datasets on a mid-size node,
// ext-fullscale exists to prove the simulator itself survives true
// scale — tens of millions of frames of metadata per node, a
// terabyte-order address-space budget across the campaign — which is
// exactly what the compact frame metadata, sparse VM chunking, and the
// persistent checkpoint store pay for: with -ckpt-dir set, repeated
// campaigns reload each staged node instead of re-faulting 100 GB+ of
// state. The table reports the modeled kernel numbers per cell plus the
// flagship cell's stats.Footprint totals; the env-gated CI test
// (GRAPHMEM_FULLSCALE=1) asserts wall-clock, RSS, and ≥2× footprint-
// reduction budgets on top.

// fullscaleShards is the shard count of every fullscale cell. Eight
// keeps shard forks of a paper-geometry node within a few GB of host
// RSS while still exercising the sharded bring-up path at scale.
const fullscaleShards = 8

// fullscaleNodeBytes is the modeled node memory of each ext-fullscale
// cell: the paper's evaluation machine holds hundreds of GB, so the
// full-scale cells stage 128 GB each. The bench and test scales shrink
// it so the experiment stays cheap enough for routine campaigns while
// running the same staging code.
func (s *Suite) fullscaleNodeBytes() uint64 {
	switch s.Scale {
	case gen.ScaleFull:
		return 128 << 30
	case gen.ScaleBench:
		return 2 << 30
	default:
		return 128 << 20
	}
}

// fullscaleCell names one cell of the paper-geometry campaign: the
// given kernel and dataset, pressured, on the big node, sharded.
func (s *Suite) fullscaleCell(app analytics.App, ds gen.Dataset, pol core.Policy) runCfg {
	env := s.envPressured(app, ds, highPressureGB)
	env.MemoryBytes = s.fullscaleNodeBytes()
	return runCfg{
		app: app, ds: ds, method: reorder.Identity,
		order: analytics.Natural, policy: pol,
		env:    env,
		shards: fullscaleShards,
	}
}

// fullscaleCfg is the campaign's flagship cell (BFS on Kron25 under
// THP), whose staged machine the footprint report and the CI budgets
// introspect. It leads fullscaleCells so a sequential campaign stages
// it first.
func (s *Suite) fullscaleCfg() runCfg {
	return s.fullscaleCell(analytics.BFS, gen.Kron25, core.THPAlways())
}

// fullscaleCells declares the campaign grid, flagship first, then the
// remaining dataset × kernel × policy combinations in table order.
func (s *Suite) fullscaleCells() []runCfg {
	cells := []runCfg{s.fullscaleCfg()}
	for _, ds := range []gen.Dataset{gen.Kron25, gen.Twit} {
		for _, app := range []analytics.App{analytics.BFS, analytics.PR} {
			for _, pol := range []core.Policy{core.THPAlways(), core.Base4K()} {
				c := s.fullscaleCell(app, ds, pol)
				if c.key() == cells[0].key() {
					continue
				}
				cells = append(cells, c)
			}
		}
	}
	return cells
}

// FullscaleFootprint stages (or recalls) the flagship cell's load
// phase and returns the frozen machine's simulator-footprint report.
// ok is false when GRAPHMEM_NO_SNAPSHOT is set — there is no resident
// machine to introspect then.
func (s *Suite) FullscaleFootprint() (stats.Footprint, bool) {
	c := s.fullscaleCfg()
	if !core.SnapshotSafe(s.spec(c)) || core.SnapshotsDisabled() {
		return stats.Footprint{}, false
	}
	return s.checkpoint(c.initKey(), s.spec(c)).Footprint()
}

// Fullscale renders the paper-geometry campaign: per-cell node geometry
// and modeled kernel numbers, then the flagship machine's per-subsystem
// simulator footprint. Footprint bytes are a pure function of the
// staged machine state, so the tables are as byte-stable across worker
// counts as every other experiment's.
func (s *Suite) Fullscale() []*stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Extension: paper-geometry campaign (%d MB nodes, %d-shard kernels)",
			s.fullscaleNodeBytes()>>20, fullscaleShards),
		"kernel", "dataset", "policy", "makespan", "serial-sum", "scale-x", "speedup")
	cells := s.fullscaleCells()
	results := make([]*core.RunResult, len(cells))
	base := make(map[string]uint64)
	for i, c := range cells {
		results[i] = s.run(c)
		if c.policy.Name == core.Base4K().Name {
			base[string(c.app)+"|"+string(c.ds)] = results[i].TotalCycles
		}
	}
	for i, c := range cells {
		r := results[i]
		var sum uint64
		for _, kc := range r.ShardKernelCycles {
			sum += kc
		}
		speedup := "-"
		if b := base[string(c.app)+"|"+string(c.ds)]; b != 0 && c.policy.Name != core.Base4K().Name {
			speedup = stats.F(float64(b)/float64(r.TotalCycles), 3)
		}
		t.AddRow(string(c.app), string(c.ds), c.policy.Name,
			fmt.Sprint(r.KernelCycles),
			fmt.Sprint(sum),
			stats.F(float64(sum)/float64(r.KernelCycles), 3),
			speedup)
	}
	tables := []*stats.Table{t}
	if fp, ok := s.FullscaleFootprint(); ok {
		tables = append(tables, fp.Table())
	}
	return tables
}
