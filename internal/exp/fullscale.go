package exp

import (
	"fmt"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
	"graphmem/internal/stats"
)

// The ext-fullscale experiment stages one cell at the paper's node
// geometry: a ≥100 GB physical node with memhog pinning everything
// beyond WSS+Δ, the kernel phase sharded. Where ext-shard studies
// modeled intra-run scaling across all datasets on a mid-size node,
// ext-fullscale exists to prove the simulator itself survives true
// scale — tens of millions of frames of metadata, a terabyte-order
// address-space budget — which is exactly what the compact frame
// metadata and sparse VM chunking pay for. The table reports the
// modeled kernel numbers plus the stats.Footprint totals of the staged
// machine; the env-gated CI test (GRAPHMEM_FULLSCALE=1) asserts the
// wall-clock, RSS, and ≥2× footprint-reduction budgets on top.

// fullscaleShards is the shard count of the fullscale cell. Eight keeps
// shard forks of a paper-geometry node within a few GB of host RSS
// while still exercising the sharded bring-up path at scale.
const fullscaleShards = 8

// fullscaleNodeBytes is the modeled node memory of the ext-fullscale
// cell: the paper's evaluation machine holds hundreds of GB, so the
// full-scale cell stages 128 GB. The bench and test scales shrink it so
// the experiment stays cheap enough for routine campaigns while running
// the same staging code.
func (s *Suite) fullscaleNodeBytes() uint64 {
	switch s.Scale {
	case gen.ScaleFull:
		return 128 << 30
	case gen.ScaleBench:
		return 2 << 30
	default:
		return 128 << 20
	}
}

// fullscaleCfg names the single ext-fullscale cell: pressured BFS on
// the paper-geometry node with the kernel phase sharded.
func (s *Suite) fullscaleCfg() runCfg {
	env := s.envPressured(analytics.BFS, gen.Kron25, highPressureGB)
	env.MemoryBytes = s.fullscaleNodeBytes()
	return runCfg{
		app: analytics.BFS, ds: gen.Kron25, method: reorder.Identity,
		order: analytics.Natural, policy: core.THPAlways(),
		env:    env,
		shards: fullscaleShards,
	}
}

func (s *Suite) fullscaleCells() []runCfg {
	return []runCfg{s.fullscaleCfg()}
}

// FullscaleFootprint stages (or recalls) the fullscale cell's load
// phase and returns the frozen machine's simulator-footprint report.
// ok is false when GRAPHMEM_NO_SNAPSHOT is set — there is no resident
// machine to introspect then.
func (s *Suite) FullscaleFootprint() (stats.Footprint, bool) {
	c := s.fullscaleCfg()
	if !core.SnapshotSafe(s.spec(c)) || core.SnapshotsDisabled() {
		return stats.Footprint{}, false
	}
	return s.checkpoint(c.initKey(), s.spec(c)).Footprint()
}

// Fullscale renders the paper-geometry cell: node geometry and modeled
// kernel numbers, then the staged machine's per-subsystem simulator
// footprint. Footprint bytes are a pure function of the staged machine
// state, so the table is as byte-stable across worker counts as every
// other experiment's.
func (s *Suite) Fullscale() []*stats.Table {
	c := s.fullscaleCfg()
	r := s.run(c)
	t := stats.NewTable(
		fmt.Sprintf("Extension: paper-geometry node (%d MB staged, %d-shard BFS kernel)",
			s.fullscaleNodeBytes()>>20, fullscaleShards),
		"dataset", "node-mb", "shards", "makespan", "serial-sum", "scale-x")
	var sum uint64
	for _, kc := range r.ShardKernelCycles {
		sum += kc
	}
	t.AddRow(string(gen.Kron25),
		fmt.Sprint(s.fullscaleNodeBytes()>>20),
		fmt.Sprint(fullscaleShards),
		fmt.Sprint(r.KernelCycles),
		fmt.Sprint(sum),
		stats.F(float64(sum)/float64(r.KernelCycles), 3))

	tables := []*stats.Table{t}
	if fp, ok := s.FullscaleFootprint(); ok {
		tables = append(tables, fp.Table())
	}
	return tables
}
