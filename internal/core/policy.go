// Package core is the library's top-level API: it expresses the paper's
// page-size-management strategies as composable policies and runs graph
// workloads under them on the simulated machine, returning the runtime
// and translation statistics the evaluation reports.
//
// The headline strategy — degree-aware preprocessing plus selective huge
// pages over the hot prefix of the property array — is
// SelectiveTHP(pct) combined with reorder.DBG.
package core

import (
	"fmt"

	"graphmem/internal/check"
	"graphmem/internal/oskernel"
)

// Engine selects which huge page management engine the kernel runs.
type Engine uint8

const (
	// EngineLinux is the stock Linux THP machinery.
	EngineLinux Engine = iota
	// EngineIngens is the utilization-threshold baseline (OSDI'16).
	EngineIngens
	// EngineHawkEye is the access-heat-ranked baseline (ASPLOS'19).
	EngineHawkEye
)

// Policy describes one page-size management configuration: the
// system-wide THP mode plus any programmer-directed madvise calls
// applied to the workload's arrays before they are faulted in.
type Policy struct {
	// Name labels results tables.
	Name string

	// Engine picks the kernel management engine (Linux by default).
	Engine Engine

	// Mode is the system-wide THP setting.
	Mode oskernel.THPMode

	// Defrag is the fault-time defragmentation effort setting.
	Defrag oskernel.DefragMode

	// Advise* apply MADV_HUGEPAGE to whole arrays (the paper's Fig. 5
	// per-data-structure analysis).
	AdviseVertex bool
	AdviseEdge   bool
	AdviseValues bool
	AdviseWork   bool

	// PropPercent in (0,1] applies MADV_HUGEPAGE to the leading
	// fraction of the property array — the paper's selective THP knob
	// (s). Zero leaves the property array unadvised.
	PropPercent float64

	// AutoBudgetBytes, when non-zero, derives the madvise plan
	// automatically: the runner profiles the graph's in-degree
	// distribution and advises the hottest property-array regions that
	// fit the budget — the paper's "automated runtime systems" future
	// direction, made possible because in-degree is a static oracle
	// for property access frequency. Unlike PropPercent it needs no
	// prior reordering: it finds the hot regions wherever they are.
	AutoBudgetBytes uint64

	// AutoCoverage, when in (0,1], instead sizes the plan to capture
	// that fraction of the estimated property accesses.
	AutoCoverage float64

	// DisableKhugepaged turns off background promotion (for ablation
	// studies isolating fault-time allocation).
	DisableKhugepaged bool

	// HugetlbProp backs the advised property prefix with a boot-time
	// hugetlbfs reservation instead of opportunistic THP: guaranteed
	// huge pages under any pressure or fragmentation, at the cost of
	// permanently reserving the memory (§2.3's explicit mechanism).
	HugetlbProp bool
}

// Base4K is the paper's baseline: THP disabled system-wide.
func Base4K() Policy {
	return Policy{Name: "4k", Mode: oskernel.ModeNever, Defrag: oskernel.DefragNever}
}

// THPAlways is Linux's transparent huge page policy with the default
// defrag=madvise setting — the paper's "Linux THP" configuration.
func THPAlways() Policy {
	return Policy{Name: "thp", Mode: oskernel.ModeAlways, Defrag: oskernel.DefragMadvise}
}

// PerStructure advises huge pages for exactly one array under
// THP=madvise (Fig. 5). structName is one of "vertex", "edge",
// "values", "prop".
func PerStructure(structName string) Policy {
	p := Policy{
		Name:   "thp-" + structName,
		Mode:   oskernel.ModeMadvise,
		Defrag: oskernel.DefragMadvise,
	}
	switch structName {
	case "vertex":
		p.AdviseVertex = true
	case "edge":
		p.AdviseEdge = true
	case "values":
		p.AdviseValues = true
	case "prop":
		p.PropPercent = 1
	default:
		panic(check.Failf("core: unknown structure %q", structName))
	}
	return p
}

// SelectiveTHP advises huge pages for the leading pct (0..1] of the
// property array only, under THP=madvise — the paper's §5.2 strategy.
// Pair with reorder.DBG so the hot vertices occupy that prefix.
func SelectiveTHP(pct float64) Policy {
	if pct <= 0 || pct > 1 {
		panic(check.Failf("core: SelectiveTHP pct %v out of (0,1]", pct))
	}
	return Policy{
		Name:        fmt.Sprintf("sel-%d", int(pct*100+0.5)),
		Mode:        oskernel.ModeMadvise,
		Defrag:      oskernel.DefragMadvise,
		PropPercent: pct,
	}
}

// DeferredTHP is THP=madvise with no regions advised at load time: the
// whole image faults in at 4KB and the page-size decision is deferred
// to runtime. This is the starting state of the ext-rollout experiment,
// which forks a post-init checkpoint and applies candidate madvise/mode
// settings to each fork before probing them.
func DeferredTHP() Policy {
	return Policy{Name: "madv-defer", Mode: oskernel.ModeMadvise, Defrag: oskernel.DefragMadvise}
}

// AutoTHP advises the hottest property-array regions fitting a huge
// page budget, chosen by static in-degree profiling (no reordering or
// manual tuning required).
func AutoTHP(budgetBytes uint64) Policy {
	if budgetBytes == 0 {
		panic(check.Failf("core: AutoTHP with zero budget"))
	}
	return Policy{
		Name:            fmt.Sprintf("auto-%dM", budgetBytes>>20),
		Mode:            oskernel.ModeMadvise,
		Defrag:          oskernel.DefragMadvise,
		AutoBudgetBytes: budgetBytes,
	}
}

// AutoTHPCoverage sizes the automatic plan to capture the given
// fraction of estimated property-array accesses.
func AutoTHPCoverage(frac float64) Policy {
	if frac <= 0 || frac > 1 {
		panic(check.Failf("core: AutoTHPCoverage frac %v out of (0,1]", frac))
	}
	return Policy{
		Name:         fmt.Sprintf("auto-cov%d", int(frac*100+0.5)),
		Mode:         oskernel.ModeMadvise,
		Defrag:       oskernel.DefragMadvise,
		AutoCoverage: frac,
	}
}

// HugetlbSelective is SelectiveTHP backed by an explicit boot-time
// hugetlbfs reservation sized to the advised prefix: the guaranteed-
// but-inflexible alternative the paper contrasts THP against in §2.3.
func HugetlbSelective(pct float64) Policy {
	p := SelectiveTHP(pct)
	p.Name = fmt.Sprintf("hugetlb-%d", int(pct*100+0.5))
	p.HugetlbProp = true
	return p
}

// IngensLike is the utilization-threshold huge page manager from the
// paper's related work: no fault-time huge pages, asynchronous promotion
// of ≥90%-populated regions.
func IngensLike() Policy {
	return Policy{
		Name:   "ingens",
		Engine: EngineIngens,
		Mode:   oskernel.ModeAlways,
		Defrag: oskernel.DefragMadvise,
	}
}

// HawkEyeLike is the access-heat-driven manager from the paper's related
// work: no fault-time huge pages, hottest eligible regions promoted
// first.
func HawkEyeLike() Policy {
	return Policy{
		Name:   "hawkeye",
		Engine: EngineHawkEye,
		Mode:   oskernel.ModeAlways,
		Defrag: oskernel.DefragMadvise,
	}
}

// kernelConfig translates the policy into the OS configuration.
func (p Policy) kernelConfig() oskernel.Config {
	var cfg oskernel.Config
	switch p.Engine {
	case EngineIngens:
		cfg = oskernel.IngensConfig()
	case EngineHawkEye:
		cfg = oskernel.HawkEyeConfig()
	default:
		cfg = oskernel.DefaultConfig()
	}
	cfg.Mode = p.Mode
	cfg.Defrag = p.Defrag
	if p.Mode == oskernel.ModeNever || p.DisableKhugepaged {
		cfg.KhugepagedEnabled = false
	}
	return cfg
}
