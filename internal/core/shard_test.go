package core_test

import (
	"math"
	"reflect"
	"strconv"
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/graph"
)

// shardedSpec is quickSpec with the sharded engine enabled.
func shardedSpec(t *testing.T, app analytics.App, p core.Policy, shards int) core.RunSpec {
	t.Helper()
	spec := quickSpec(t, app, p, stressedEnv())
	spec.Shards = shards
	return spec
}

// TestShardedDeterministicAcrossWorkers is the tentpole property test:
// for every standard machine configuration, a 4-shard run must produce
// a deeply equal RunResult — every cycle count, fault counter, array
// statistic, per-shard kernel cycle, and output bit — whether 1, 2, 4,
// or 8 worker goroutines drive the shards. The worker count is an
// execution knob, never a modeling knob.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	for _, pol := range snapshotConfigs() {
		t.Run(pol.Name, func(t *testing.T) {
			spec := shardedSpec(t, analytics.BFS, pol, 4)
			var ref *core.RunResult
			for _, workers := range []int{1, 2, 4, 8} {
				t.Setenv("GRAPHMEM_SHARD_WORKERS", strconv.Itoa(workers))
				got, err := core.Run(spec)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = got
					continue
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("%d workers diverged from 1 worker:\n--- 1 worker ---\n%s--- %d workers ---\n%s",
						workers, formatResult(ref), workers, formatResult(got))
				}
			}
			if len(ref.ShardKernelCycles) != 4 {
				t.Fatalf("ShardKernelCycles = %v, want 4 entries", ref.ShardKernelCycles)
			}
		})
	}
}

// TestShardedForkMatchesReplay is the GRAPHMEM_NO_SHARD equivalence:
// fork-based shard bring-up must be byte-identical to bringing every
// shard up by replaying the load phase from the spec — the property
// ci.sh step 12 verifies on a whole campaign. The Checkpoint path must
// agree too (the campaign layer runs sharded cells through it).
func TestShardedForkMatchesReplay(t *testing.T) {
	for _, app := range []analytics.App{analytics.BFS, analytics.PR} {
		t.Run(string(app), func(t *testing.T) {
			spec := shardedSpec(t, app, core.THPAlways(), 4)
			ref, err := core.Run(spec)
			if err != nil {
				t.Fatal(err)
			}

			cp, err := core.Prepare(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cp.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("checkpointed sharded run diverged from monolithic path:\n--- Run ---\n%s--- Checkpoint.Run ---\n%s",
					formatResult(ref), formatResult(got))
			}

			t.Setenv("GRAPHMEM_NO_SHARD", "1")
			got, err = core.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("replay bring-up diverged from fork bring-up:\n--- fork ---\n%s--- replay ---\n%s",
					formatResult(ref), formatResult(got))
			}
		})
	}
}

// TestShardedOutputsCorrect checks the sharded kernels still compute
// the right answers: traversal outputs (hops, distances, labels) must
// equal the monolithic kernel's exactly; the float workloads (PR
// ranks, BC centrality) accumulate in a different — but deterministic
// — order, so they match to a tolerance.
func TestShardedOutputsCorrect(t *testing.T) {
	for _, app := range analytics.ExtendedApps {
		t.Run(string(app), func(t *testing.T) {
			mono := quickSpec(t, app, core.THPAlways(), core.FreshBoot())
			ref, err := core.Run(mono)
			if err != nil {
				t.Fatal(err)
			}
			spec := mono
			spec.Shards = 4
			got, err := core.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			r, g := ref.Output, got.Output
			if !reflect.DeepEqual(r.Hops, g.Hops) || !reflect.DeepEqual(r.Dist, g.Dist) || !reflect.DeepEqual(r.Labels, g.Labels) {
				t.Fatal("sharded traversal output diverged from monolithic kernel")
			}
			close := func(a, b []float64) {
				if len(a) != len(b) {
					t.Fatalf("float output length %d != %d", len(a), len(b))
				}
				for i := range a {
					if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
						t.Fatalf("float output [%d]: %g (monolithic) vs %g (sharded)", i, a[i], b[i])
					}
				}
			}
			close(r.Ranks, g.Ranks)
			close(r.Centrality, g.Centrality)
			if r.Iterations != g.Iterations {
				t.Fatalf("PR iterations %d (monolithic) vs %d (sharded)", r.Iterations, g.Iterations)
			}
		})
	}
}

// TestShardedWorkerHammer drives every extended app sharded with more
// workers than shards, twice, comparing results — the -race target for
// the barrier protocol (shared state is only ever written by the
// owning shard between barriers; the race detector proves it while the
// comparison proves the schedule cannot leak into the output).
func TestShardedWorkerHammer(t *testing.T) {
	t.Setenv("GRAPHMEM_SHARD_WORKERS", "8")
	for _, app := range analytics.ExtendedApps {
		spec := shardedSpec(t, app, core.SelectiveTHP(0.5), 8)
		a, err := core.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: back-to-back hammer runs diverged", app)
		}
	}
}

// TestShardedRejectsUnsafeSpecs: sharding forks the prepared machine,
// so the same tickered specs Prepare refuses must be refused by Run,
// and the owner table bounds the shard count.
func TestShardedRejectsUnsafeSpecs(t *testing.T) {
	env := stressedEnv()
	env.ChurnBytes = 1 << 20
	spec := quickSpec(t, analytics.BFS, core.THPAlways(), env)
	spec.Shards = 4
	if _, err := core.Run(spec); err == nil {
		t.Fatal("Run accepted a churning sharded spec")
	}
	spec = shardedSpec(t, analytics.BFS, core.THPAlways(), 256)
	if _, err := core.Run(spec); err == nil {
		t.Fatal("Run accepted 256 shards (owner table is uint8)")
	}
}

// TestShardedMoreShardsThanVertices: every shard count must be valid
// on every graph; shards past the vertex count simply come out empty.
func TestShardedMoreShardsThanVertices(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	spec := shardedSpec(t, analytics.BFS, core.THPAlways(), 8)
	spec.Graph = g
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2}
	if !reflect.DeepEqual(res.Output.Hops, want) {
		t.Fatalf("hops = %v, want %v", res.Output.Hops, want)
	}
}

// TestShardsOneIsMonolithic: Shards values 0 and 1 must take the
// monolithic path exactly — bit-identical results, no shard vector.
func TestShardsOneIsMonolithic(t *testing.T) {
	ref, err := core.Run(quickSpec(t, analytics.BFS, core.THPAlways(), stressedEnv()))
	if err != nil {
		t.Fatal(err)
	}
	spec := quickSpec(t, analytics.BFS, core.THPAlways(), stressedEnv())
	spec.Shards = 1
	got, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got.Spec.Shards = 0
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("Shards=1 diverged from the monolithic engine")
	}
	if got.ShardKernelCycles != nil {
		t.Fatal("monolithic run carries ShardKernelCycles")
	}
}

// TestShardedMakespan: the merged kernel time must be the barrier
// makespan — at least the slowest shard, at most the serial sum — and
// TotalCycles must be built from it.
func TestShardedMakespan(t *testing.T) {
	res, err := core.Run(shardedSpec(t, analytics.BFS, core.THPAlways(), 4))
	if err != nil {
		t.Fatal(err)
	}
	var sum, max uint64
	for _, c := range res.ShardKernelCycles {
		sum += c
		if c > max {
			max = c
		}
	}
	if res.KernelCycles < max || res.KernelCycles > sum {
		t.Fatalf("makespan %d outside [slowest shard %d, serial sum %d]", res.KernelCycles, max, sum)
	}
	if res.TotalCycles != res.PreprocessCycles+res.InitCycles+res.KernelCycles {
		t.Fatal("TotalCycles does not decompose into preprocess+init+makespan")
	}
	if res.KernelCycles >= sum {
		t.Fatalf("4-shard makespan %d shows no overlap over serial sum %d", res.KernelCycles, sum)
	}
}
