package core

import (
	"os"

	"graphmem/internal/machine"
)

// Hatch names one of the byte-identity escape hatches: subsystems whose
// optimized path is observationally invisible by construction (bulk and
// gather access charging, checkpoint forking, the sharded machine
// engine) each carry a GRAPHMEM_NO_<hatch>=1 environment variable that
// forces the reference path instead. CI diffs campaign output with each
// hatch open against the optimized run byte for byte (scripts/ci.sh
// steps 9–12) — the hatches exist only to prove equivalence.
type Hatch string

const (
	// HatchBulk gates machine.AccessRun's coalesced charging
	// (GRAPHMEM_NO_BULK): open, every run degrades to per-access
	// dispatch.
	HatchBulk Hatch = "BULK"
	// HatchGather gates machine.AccessGather's batched charging
	// (GRAPHMEM_NO_GATHER): open, every batch degrades to per-access
	// dispatch.
	HatchGather Hatch = "GATHER"
	// HatchSnapshot gates the checkpoint/fork layer (GRAPHMEM_NO_SNAPSHOT):
	// open, every fork replays its load phase monolithically.
	HatchSnapshot Hatch = "SNAPSHOT"
	// HatchShard gates the sharded machine engine's fork-based shard
	// bring-up (GRAPHMEM_NO_SHARD): open, every shard machine replays
	// the load phase from the spec instead of forking the prepared one.
	HatchShard Hatch = "SHARD"
)

// AllHatches lists the escape hatches, in subsystem order.
var AllHatches = []Hatch{HatchBulk, HatchGather, HatchSnapshot, HatchShard}

// HatchDisabled reports whether the hatch's environment variable
// (GRAPHMEM_NO_<hatch>) is set non-empty — the optimized path is then
// disabled in favour of the reference path. Read per call so one
// process can host both sides of an equivalence test.
func HatchDisabled(h Hatch) bool {
	return os.Getenv("GRAPHMEM_NO_"+string(h)) != ""
}

// applyAccessHatches routes the machine's access engines through the
// bulk and gather hatches. machine.New enables both by default; the
// hatch check lives here so every env read shares one helper.
func applyAccessHatches(m *machine.Machine) {
	m.SetBulk(!HatchDisabled(HatchBulk))
	m.SetGather(!HatchDisabled(HatchGather))
}
