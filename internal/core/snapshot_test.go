package core_test

import (
	"reflect"
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/machine"
	"graphmem/internal/oskernel"
	"graphmem/internal/vm"
)

// snapshotConfigs are the five standard machine configurations the
// fork-fidelity property test sweeps: the paper's baseline, plain THP,
// a per-structure advise, the selective knob, and the rollout
// experiment's deferred starting state. Together they exercise every
// state the fork layer must carry — unadvised and advised VMAs, huge
// mappings from fault time and from khugepaged, and both defrag
// settings.
func snapshotConfigs() []core.Policy {
	return []core.Policy{
		core.Base4K(),
		core.THPAlways(),
		core.PerStructure("prop"),
		core.SelectiveTHP(0.5),
		core.DeferredTHP(),
	}
}

// stressedEnv is the snapshot tests' environment: pressure, aging,
// fragmentation, and a resident page cache, so forks must carry memhog
// and page-cache owner state, not just the application image.
func stressedEnv() core.Environment {
	env := core.Pressured(12 << 20)
	env.FragLevel = 0.3
	env.PageCacheBytes = 2 << 20
	env.Seed = 42
	return env
}

// TestForkMatchesReplay is the fork-fidelity property test: for each
// standard configuration, a kernel phase run on a checkpoint fork must
// produce a RunResult deeply equal to the monolithic Run — every cycle
// count, fault counter, array statistic, and kernel output bit. Two
// consecutive Runs from one checkpoint must both match: forking is
// read-only on the frozen state.
func TestForkMatchesReplay(t *testing.T) {
	env := stressedEnv()
	for _, pol := range snapshotConfigs() {
		t.Run(pol.Name, func(t *testing.T) {
			spec := quickSpec(t, analytics.BFS, pol, env)
			spec.SimulatePageTables = true
			ref, err := core.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := core.Prepare(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				got, err := cp.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("fork run %d diverged from monolithic run:\n--- monolithic ---\n%s--- fork ---\n%s",
						i, formatResult(ref), formatResult(got))
				}
			}
		})
	}
}

// TestForkMatchesReplayDisabled re-runs one fidelity case with the
// GRAPHMEM_NO_SNAPSHOT escape hatch set: the checkpoint then replays
// the load phase per Run, and the results must still be deeply equal —
// the property the CI campaign byte-diff checks end to end.
func TestForkMatchesReplayDisabled(t *testing.T) {
	t.Setenv("GRAPHMEM_NO_SNAPSHOT", "1")
	if !core.SnapshotsDisabled() {
		t.Fatal("GRAPHMEM_NO_SNAPSHOT not observed")
	}
	spec := quickSpec(t, analytics.BFS, core.THPAlways(), stressedEnv())
	ref, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("disabled-snapshot replay diverged:\n--- monolithic ---\n%s--- replay ---\n%s",
			formatResult(ref), formatResult(got))
	}
}

// TestPrepareRejectsTickeredSpecs: specs that register machine tickers
// (churn co-runner, supply sampler) close over state a deep copy
// cannot capture, so Prepare must refuse them rather than fork a
// machine that silently lost its co-runner.
func TestPrepareRejectsTickeredSpecs(t *testing.T) {
	env := stressedEnv()
	env.ChurnBytes = 1 << 20
	if _, err := core.Prepare(quickSpec(t, analytics.BFS, core.THPAlways(), env)); err == nil {
		t.Fatal("Prepare accepted a churning spec")
	}
	spec := quickSpec(t, analytics.BFS, core.THPAlways(), stressedEnv())
	spec.SampleSupplyEvery = 100_000
	if _, err := core.Prepare(spec); err == nil {
		t.Fatal("Prepare accepted a supply-sampling spec")
	}
}

// splitmix64 is the test's deterministic op-sequence generator.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// stressOp applies one pseudo-random operation — a probe burst
// interleaved with whatever faults and khugepaged ticks it provokes,
// optionally preceded by a madvise or THP-mode flip — and returns the
// probe's statistics.
func stressOp(op uint64, fm *machine.Machine, img *analytics.Image) analytics.ProbeResult {
	switch op % 4 {
	case 1:
		img.Prop.Madvise(0, img.Prop.Bytes/(1+op%4), vm.AdviceHuge)
	case 2:
		img.Edge.Madvise(0, img.Edge.Bytes, vm.AdviceHuge)
	case 3:
		if op&16 != 0 {
			fm.Kernel.SetMode(oskernel.ModeAlways)
		} else {
			fm.Kernel.SetMode(oskernel.ModeMadvise)
		}
	}
	return img.RunProbe(int(1<<15 + op%(1<<15)))
}

// TestForkInterleavingStress interleaves forking with faulting and
// background kernel activity: two forks of one checkpoint are driven
// through an identical pseudo-random op sequence (probe bursts,
// madvise calls, mode flips) and must stay cycle-identical at every
// step; a third fork taken mid-sequence from a live, warmed machine
// must replay the remaining ops to the same end state, while the
// machine it was forked from keeps running unperturbed.
func TestForkInterleavingStress(t *testing.T) {
	spec := quickSpec(t, analytics.BFS, core.DeferredTHP(), stressedEnv())
	cp, err := core.Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	fmA, imgA, err := cp.Fork()
	if err != nil {
		t.Fatal(err)
	}
	fmB, imgB, err := cp.Fork()
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 12
	const forkAt = rounds / 2
	var fmC *machine.Machine
	var imgC *analytics.Image
	var tail []uint64 // ops after the mid-sequence fork
	state := uint64(0xbadc0ffee)
	next0 := fmA.Kernel.NextTickAt()
	for i := 0; i < rounds; i++ {
		if i == forkAt {
			fmC, imgC = core.ForkPair(fmA, imgA)
		}
		op := splitmix64(&state)
		ra := stressOp(op, fmA, imgA)
		rb := stressOp(op, fmB, imgB)
		if ra != rb {
			t.Fatalf("round %d: identical op diverged across forks:\nA=%+v\nB=%+v", i, ra, rb)
		}
		if fmA.Cycles() != fmB.Cycles() {
			t.Fatalf("round %d: fork cycle counters diverged: %d vs %d", i, fmA.Cycles(), fmB.Cycles())
		}
		if i >= forkAt {
			tail = append(tail, op)
		}
	}

	// The mid-sequence fork froze A's state at round forkAt; driving A
	// onward must not have advanced C.
	if fmC.Cycles() >= fmA.Cycles() {
		t.Fatalf("mid-sequence fork advanced with its parent: C=%d A=%d", fmC.Cycles(), fmA.Cycles())
	}
	for i, op := range tail {
		rc := stressOp(op, fmC, imgC)
		if rc.Accesses == 0 {
			t.Fatalf("tail round %d issued no accesses", i)
		}
	}
	if fmC.Cycles() != fmA.Cycles() {
		t.Fatalf("mid-sequence fork replayed the tail to a different state: C=%d A=%d", fmC.Cycles(), fmA.Cycles())
	}

	// Coverage guard: the sequence must actually have interleaved
	// khugepaged scans (NextTickAt advances only when a tick fires),
	// or the "with background ticks" claim is vacuous.
	if fmA.Kernel.NextTickAt() == next0 {
		t.Fatal("no khugepaged tick fired during the stress; grow the probe budgets")
	}
}
