package core

import (
	"os"
	"testing"
)

// TestHatchDisabled covers the consolidated escape-hatch helper: each
// hatch reads its own GRAPHMEM_NO_<name> variable, any non-empty value
// (including "0") opens it, the empty string does not, and the reads
// happen per call so one process can host both sides of an
// equivalence test.
func TestHatchDisabled(t *testing.T) {
	for _, h := range AllHatches {
		key := "GRAPHMEM_NO_" + string(h)
		if os.Getenv(key) != "" {
			t.Fatalf("%s set in the test environment", key)
		}
		if HatchDisabled(h) {
			t.Fatalf("HatchDisabled(%s) with %s unset", h, key)
		}
		t.Setenv(key, "1")
		if !HatchDisabled(h) {
			t.Fatalf("HatchDisabled(%s) false with %s=1", h, key)
		}
		// Any non-empty value opens the hatch — the historical
		// semantics of the three copy-pasted os.Getenv checks this
		// helper replaced.
		t.Setenv(key, "0")
		if !HatchDisabled(h) {
			t.Fatalf("HatchDisabled(%s) false with %s=0 (non-empty means open)", h, key)
		}
		t.Setenv(key, "")
		if HatchDisabled(h) {
			t.Fatalf("HatchDisabled(%s) true with %s empty", h, key)
		}
	}
}

// TestHatchIndependence: opening one hatch must not open any other.
func TestHatchIndependence(t *testing.T) {
	t.Setenv("GRAPHMEM_NO_SHARD", "1")
	for _, h := range AllHatches {
		if h != HatchShard && HatchDisabled(h) {
			t.Fatalf("GRAPHMEM_NO_SHARD leaked into hatch %s", h)
		}
	}
	t.Setenv("GRAPHMEM_NO_SNAPSHOT", "1")
	if !SnapshotsDisabled() {
		t.Fatal("SnapshotsDisabled no longer routes through the snapshot hatch")
	}
}
