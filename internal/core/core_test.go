package core_test

import (
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/cache"
	"graphmem/internal/core"
	"graphmem/internal/cost"
	"graphmem/internal/gen"
	"graphmem/internal/graph"
	"graphmem/internal/oskernel"
	"graphmem/internal/reorder"
	"graphmem/internal/tlb"
)

// quickSpec builds a fast small-scale spec (scaled TLB so capacity
// effects still appear).
func quickSpec(t testing.TB, app analytics.App, p core.Policy, env core.Environment) core.RunSpec {
	t.Helper()
	model := cost.Fast()
	return core.RunSpec{
		Graph:   gen.Generate(gen.Kron25, gen.ScaleTest, app == analytics.SSSP),
		App:     app,
		Reorder: reorder.Identity,
		Order:   analytics.Natural,
		Policy:  p,
		Env:     env,
		TLB:     tlb.Scaled(tlb.Haswell(), 16),
		Cache:   cache.Scaled(cache.Haswell(), 16),
		Cost:    &model,
	}
}

// widePropGraph returns a graph whose property array spans several 2MB
// regions (1M vertices) but with few edges, so huge-page placement can
// be exercised without a long kernel simulation.
func widePropGraph(t *testing.T) *graph.Graph {
	t.Helper()
	const n = 1 << 20
	edges := make([]graph.Edge, 1<<14)
	state := uint64(12345)
	next := func() uint32 {
		state = state*6364136223846793005 + 1442695040888963407
		return uint32(state>>33) % n
	}
	for i := range edges {
		edges[i] = graph.Edge{Src: next(), Dst: next()}
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// wideSpec is quickSpec on the wide-property graph.
func wideSpec(t *testing.T, p core.Policy, env core.Environment) core.RunSpec {
	t.Helper()
	s := quickSpec(t, analytics.BFS, p, env)
	s.Graph = widePropGraph(t)
	return s
}

func TestPolicyConstructors(t *testing.T) {
	if core.Base4K().Mode != oskernel.ModeNever {
		t.Fatal("Base4K mode")
	}
	if core.THPAlways().Mode != oskernel.ModeAlways {
		t.Fatal("THPAlways mode")
	}
	p := core.PerStructure("edge")
	if !p.AdviseEdge || p.AdviseVertex || p.Mode != oskernel.ModeMadvise {
		t.Fatalf("PerStructure = %+v", p)
	}
	s := core.SelectiveTHP(0.4)
	if s.PropPercent != 0.4 || s.Name != "sel-40" {
		t.Fatalf("SelectiveTHP = %+v", s)
	}
}

func TestSelectiveTHPValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SelectiveTHP(%v) did not panic", bad)
				}
			}()
			core.SelectiveTHP(bad)
		}()
	}
}

func TestPerStructureUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown structure did not panic")
		}
	}()
	core.PerStructure("nope")
}

func TestRunRejectsNilGraph(t *testing.T) {
	if _, err := core.Run(core.RunSpec{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestRunProducesCorrectOutput(t *testing.T) {
	spec := quickSpec(t, analytics.BFS, core.Base4K(), core.FreshBoot())
	r, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := analytics.NativeBFS(spec.Graph, spec.Graph.MaxDegreeVertex())
	for i := range want {
		if r.Output.Hops[i] != want[i] {
			t.Fatalf("hops[%d] = %d, want %d", i, r.Output.Hops[i], want[i])
		}
	}
	if r.KernelCycles == 0 || r.InitCycles == 0 {
		t.Fatalf("cycles: init=%d kernel=%d", r.InitCycles, r.KernelCycles)
	}
	if r.TotalCycles != r.PreprocessCycles+r.InitCycles+r.KernelCycles {
		t.Fatal("total cycles inconsistent")
	}
}

func TestTHPBeatsBaselineWhenFree(t *testing.T) {
	base, err := core.Run(wideSpec(t, core.Base4K(), core.FreshBoot()))
	if err != nil {
		t.Fatal(err)
	}
	thp, err := core.Run(wideSpec(t, core.THPAlways(), core.FreshBoot()))
	if err != nil {
		t.Fatal(err)
	}
	if thp.KernelCycles >= base.KernelCycles {
		t.Fatalf("THP (%d) not faster than 4K (%d)", thp.KernelCycles, base.KernelCycles)
	}
	if thp.TotalHugeBytes == 0 || base.TotalHugeBytes != 0 {
		t.Fatalf("huge bytes: thp=%d base=%d", thp.TotalHugeBytes, base.TotalHugeBytes)
	}
}

func TestSelectiveAdvisesOnlyPropPrefix(t *testing.T) {
	spec := wideSpec(t, core.SelectiveTHP(0.5), core.FreshBoot())
	r, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.PropHugeBytes == 0 {
		t.Fatal("selective policy gave the property array no huge pages")
	}
	if r.TotalHugeBytes != r.PropHugeBytes {
		t.Fatalf("huge pages outside the property array: total=%d prop=%d",
			r.TotalHugeBytes, r.PropHugeBytes)
	}
	if r.PropHugeBytes >= uint64(spec.Graph.N)*8 {
		t.Fatal("selective 50% covered the whole property array")
	}
}

func TestReorderChargesPreprocessing(t *testing.T) {
	spec := quickSpec(t, analytics.BFS, core.Base4K(), core.FreshBoot())
	spec.Reorder = reorder.DBG
	r, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.PreprocessCycles == 0 {
		t.Fatal("DBG charged no preprocessing time")
	}
	// Correctness after reordering: reachable count must match the
	// original graph (hop values are permutation-equivariant).
	orig := analytics.NativeBFS(spec.Graph, spec.Graph.MaxDegreeVertex())
	reach := func(h []int64) int {
		n := 0
		for _, x := range h {
			if x >= 0 {
				n++
			}
		}
		return n
	}
	if reach(orig) != reach(r.Output.Hops) {
		t.Fatalf("reachable %d != %d after DBG", reach(r.Output.Hops), reach(orig))
	}
}

func TestPressureReducesHugeShare(t *testing.T) {
	fresh, err := core.Run(wideSpec(t, core.THPAlways(), core.FreshBoot()))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := core.Run(wideSpec(t, core.THPAlways(), core.Pressured(0)))
	if err != nil {
		t.Fatal(err)
	}
	if tight.TotalHugeBytes >= fresh.TotalHugeBytes {
		t.Fatalf("pressure did not reduce huge usage: %d >= %d",
			tight.TotalHugeBytes, fresh.TotalHugeBytes)
	}
}

func TestOversubscriptionSwaps(t *testing.T) {
	// The ScaleTest working set is ~230KB; a 64KB deficit oversubscribes
	// it by the same ~5% proportion as the paper's −0.5GB on 8.5GB.
	r, err := core.Run(quickSpec(t, analytics.BFS, core.Base4K(), core.Pressured(-64<<10)))
	if err != nil {
		t.Fatal(err)
	}
	if r.OS.SwapIns == 0 || r.OS.SwapOuts == 0 {
		t.Fatalf("no swap under oversubscription: %+v", r.OS)
	}
}

func TestPageCacheInterference(t *testing.T) {
	// With the page cache squatting on the slack, THP gets fewer huge
	// pages than with tmpfs-style loading.
	env := core.Pressured(2 << 20)
	clean, err := core.Run(wideSpec(t, core.THPAlways(), env))
	if err != nil {
		t.Fatal(err)
	}
	env.PageCacheBytes = 6 << 20
	dirty, err := core.Run(wideSpec(t, core.THPAlways(), env))
	if err != nil {
		t.Fatal(err)
	}
	if dirty.TotalHugeBytes >= clean.TotalHugeBytes {
		t.Fatalf("page cache did not suppress huge pages: %d >= %d",
			dirty.TotalHugeBytes, clean.TotalHugeBytes)
	}
}

func TestAllAppsRunUnderAllPolicies(t *testing.T) {
	for _, app := range analytics.AllApps {
		for _, p := range []core.Policy{core.Base4K(), core.THPAlways(), core.SelectiveTHP(0.6)} {
			r, err := core.Run(quickSpec(t, app, p, core.FreshBoot()))
			if err != nil {
				t.Fatalf("%s/%s: %v", app, p.Name, err)
			}
			if r.KernelCycles == 0 {
				t.Fatalf("%s/%s: empty kernel", app, p.Name)
			}
		}
	}
}

func TestHugeShareOfFootprint(t *testing.T) {
	r := core.RunResult{MappedBytes: 100, TotalHugeBytes: 25}
	if r.HugeShareOfFootprint() != 0.25 {
		t.Fatal("share wrong")
	}
	var zero core.RunResult
	if zero.HugeShareOfFootprint() != 0 {
		t.Fatal("zero share wrong")
	}
}

func TestAutoTHPTargetsHotRegions(t *testing.T) {
	// Hubs scattered: prefix selection is useless, but the automatic
	// profiler finds hot regions wherever they are.
	spec := wideSpec(t, core.AutoTHP(4<<20), core.FreshBoot())
	r, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.PropHugeBytes == 0 || r.PropHugeBytes > 4<<20 {
		t.Fatalf("auto plan mapped %d huge bytes, want (0,4MB]", r.PropHugeBytes)
	}
	if r.TotalHugeBytes != r.PropHugeBytes {
		t.Fatal("auto policy advised outside the property array")
	}
}

func TestAutoTHPCoverageRuns(t *testing.T) {
	spec := wideSpec(t, core.AutoTHPCoverage(0.5), core.FreshBoot())
	r, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.PropHugeBytes == 0 {
		t.Fatal("coverage plan mapped nothing")
	}
}

func TestAutoTHPValidation(t *testing.T) {
	for _, f := range []func(){
		func() { core.AutoTHP(0) },
		func() { core.AutoTHPCoverage(0) },
		func() { core.AutoTHPCoverage(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid auto policy did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBaselineEnginesRun(t *testing.T) {
	for _, p := range []core.Policy{core.IngensLike(), core.HawkEyeLike()} {
		r, err := core.Run(wideSpec(t, p, core.FreshBoot()))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// Both engines refuse fault-time huge pages; promotion is
		// asynchronous, so huge usage stays behind Linux THP's.
		if r.OS.FaultsHuge != 0 {
			t.Fatalf("%s allocated huge pages at fault time", p.Name)
		}
	}
}

func TestCCRunsUnderPolicies(t *testing.T) {
	spec := quickSpec(t, analytics.CC, core.THPAlways(), core.FreshBoot())
	r, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := analytics.NativeCC(spec.Graph)
	for i := range want {
		if r.Output.Labels[i] != want[i] {
			t.Fatalf("label[%d] mismatch", i)
		}
	}
}

// TestRandomizedConfigStress drives random (policy, environment,
// reorder, order) combinations at tiny scale and checks the system-wide
// invariants that must hold for every one of them: the algorithm output
// matches the native reference, cycle accounting is consistent, and the
// physical allocator survives an invariant audit.
func TestRandomizedConfigStress(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	want := analytics.NativeBFS(g, g.MaxDegreeVertex())
	reach := 0
	for _, h := range want {
		if h >= 0 {
			reach++
		}
	}

	policies := []core.Policy{
		core.Base4K(), core.THPAlways(), core.SelectiveTHP(0.3),
		core.PerStructure("edge"), core.IngensLike(), core.HawkEyeLike(),
		core.AutoTHP(2 << 20),
	}
	envs := []core.Environment{
		core.FreshBoot(),
		core.Pressured(0),
		core.Pressured(-16 << 10),
		core.Fragmented(1<<20, 0.75),
		{AgedFraction: 0.5, PressureDelta: 2 << 20, FragLevel: 0.25, PageCacheBytes: 1 << 20},
	}
	methods := []reorder.Method{reorder.Identity, reorder.DBG, reorder.Random, reorder.FullSort}
	orders := []analytics.AllocOrder{analytics.Natural, analytics.PropFirst}

	state := uint64(2024)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	model := cost.Fast()
	for i := 0; i < 25; i++ {
		p := policies[next(len(policies))]
		e := envs[next(len(envs))]
		mth := methods[next(len(methods))]
		ord := orders[next(len(orders))]
		r, err := core.Run(core.RunSpec{
			Graph: g, App: analytics.BFS, Reorder: mth, Order: ord,
			Policy: p, Env: e,
			TLB:   tlb.Scaled(tlb.Haswell(), 16),
			Cache: cache.Scaled(cache.Haswell(), 16),
			Cost:  &model,
		})
		if err != nil {
			t.Fatalf("iter %d (%s/%v/%s/%v): %v", i, p.Name, e, mth, ord, err)
		}
		got := 0
		for _, h := range r.Output.Hops {
			if h >= 0 {
				got++
			}
		}
		if got != reach {
			t.Fatalf("iter %d (%s): reached %d, want %d", i, p.Name, got, reach)
		}
		if r.TotalCycles != r.PreprocessCycles+r.InitCycles+r.KernelCycles {
			t.Fatalf("iter %d: cycle accounting broken", i)
		}
		if r.MappedBytes == 0 || r.MappedBytes < r.TotalHugeBytes {
			t.Fatalf("iter %d: mapped/huge accounting broken: %d/%d",
				i, r.MappedBytes, r.TotalHugeBytes)
		}
	}
}

func TestHugetlbSelectiveImmuneToFragmentation(t *testing.T) {
	// Under total fragmentation, opportunistic selective THP gets
	// nothing, but the hugetlbfs reservation — made at boot — delivers
	// the full advised prefix.
	env := core.Fragmented(2<<20, 1.0)
	thp, err := core.Run(wideSpec(t, core.SelectiveTHP(0.5), env))
	if err != nil {
		t.Fatal(err)
	}
	htlb, err := core.Run(wideSpec(t, core.HugetlbSelective(0.5), env))
	if err != nil {
		t.Fatal(err)
	}
	if htlb.PropHugeBytes == 0 {
		t.Fatal("hugetlb reservation delivered no huge pages")
	}
	if htlb.PropHugeBytes <= thp.PropHugeBytes {
		t.Fatalf("hugetlb %d not above opportunistic %d under total fragmentation",
			htlb.PropHugeBytes, thp.PropHugeBytes)
	}
	if htlb.TotalCycles >= thp.TotalCycles {
		t.Fatal("guaranteed huge pages did not help under total fragmentation")
	}
}

func TestChurnCreatesDynamicPressure(t *testing.T) {
	// A churner cycling through most of the slack must depress THP's
	// huge page usage relative to a quiet machine at the same static
	// pressure level.
	base := core.Pressured(8 << 20)
	quiet, err := core.Run(wideSpec(t, core.THPAlways(), base))
	if err != nil {
		t.Fatal(err)
	}
	churnEnv := base
	churnEnv.ChurnBytes = 16 << 20
	churnEnv.ChurnIntervalCycles = 5_000
	churny, err := core.Run(wideSpec(t, core.THPAlways(), churnEnv))
	if err != nil {
		t.Fatal(err)
	}
	if churny.TotalHugeBytes >= quiet.TotalHugeBytes {
		t.Fatalf("churn did not depress huge usage: %d >= %d",
			churny.TotalHugeBytes, quiet.TotalHugeBytes)
	}
	// The workload still completes correctly.
	if len(churny.Output.Hops) != len(quiet.Output.Hops) {
		t.Fatal("output shape changed under churn")
	}
}

// TestDeterminism: identical specs produce bit-identical results —
// cycles, stats, and memory layouts. This is what makes every table in
// EXPERIMENTS.md exactly reproducible.
func TestDeterminism(t *testing.T) {
	spec := func() core.RunSpec {
		s := quickSpec(t, analytics.BFS, core.THPAlways(), core.Fragmented(1<<20, 0.5))
		s.Reorder = reorder.DBG
		return s
	}
	a, err := core.Run(spec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(spec())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("cycles differ: %d vs %d", a.TotalCycles, b.TotalCycles)
	}
	if a.OS != b.OS {
		t.Fatalf("kernel stats differ:\n%+v\n%+v", a.OS, b.OS)
	}
	if a.TotalHugeBytes != b.TotalHugeBytes || a.PropHugeBytes != b.PropHugeBytes {
		t.Fatal("huge page layout differs")
	}
}
