package core_test

import (
	"fmt"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
)

// Example demonstrates the library's central workflow: run the same
// workload under the 4KB baseline and under Linux's THP policy, and
// compare.
func Example() {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)

	run := func(p core.Policy) *core.RunResult {
		r, err := core.Run(core.RunSpec{
			Graph:   g,
			App:     analytics.BFS,
			Reorder: reorder.Identity,
			Order:   analytics.Natural,
			Policy:  p,
			Env:     core.FreshBoot(),
		})
		if err != nil {
			panic(err)
		}
		return r
	}

	base := run(core.Base4K())
	thp := run(core.THPAlways())
	fmt.Println("same BFS result:", len(base.Output.Hops) == len(thp.Output.Hops))
	fmt.Println("baseline used huge pages:", base.TotalHugeBytes > 0)
	// Output:
	// same BFS result: true
	// baseline used huge pages: false
}

// ExampleSelectiveTHP shows the paper's §5.2 strategy: degree-based
// grouping plus MADV_HUGEPAGE over a prefix of the property array.
func ExampleSelectiveTHP() {
	g := gen.Generate(gen.Kron25, gen.ScaleTest, false)
	r, err := core.Run(core.RunSpec{
		Graph:   g,
		App:     analytics.BFS,
		Reorder: reorder.DBG, // hot vertices to the front
		Order:   analytics.Natural,
		Policy:  core.SelectiveTHP(0.2), // huge pages on the first 20%
		Env:     core.Fragmented(1<<20, 0.5),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", r.Spec.Policy.Name)
	fmt.Println("preprocessing charged:", r.PreprocessCycles > 0)
	// Output:
	// policy: sel-20
	// preprocessing charged: true
}

// ExamplePressured shows how environments model the paper's memhog
// experiments: the free memory beyond the working set is the knob.
func ExamplePressured() {
	env := core.Pressured(8 << 20) // WSS + 8MB free
	fmt.Println("aged fraction:", env.AgedFraction)
	fmt.Println("delta MB:", env.PressureDelta>>20)
	// Output:
	// aged fraction: 0.125
	// delta MB: 8
}
