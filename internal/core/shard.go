package core

import (
	"fmt"
	"os"
	"runtime"
	"strconv"

	"graphmem/internal/analytics"
	"graphmem/internal/check"
	"graphmem/internal/machine"
	"graphmem/internal/sched"
	"graphmem/internal/vm"
)

// This file is the core half of the sharded machine engine (DESIGN.md
// §5c): shard bring-up (forking the prepared machine once per extra
// shard, or replaying the load phase when the GRAPHMEM_NO_SHARD or
// GRAPHMEM_NO_SNAPSHOT hatch is open), the worker pool that drives the
// shards between barriers, and the deterministic merge of per-shard
// statistics into one RunResult. The shard count is part of the spec
// (RunSpec.Shards — it changes the modeled system); the worker count
// is not (GRAPHMEM_SHARD_WORKERS — it may only change wall-clock
// time), so a sharded run's output is byte-identical at any worker
// count, which the differential tests and ci.sh step 12 verify.

// shardWorkers picks how many worker goroutines drive a sharded run:
// the GRAPHMEM_SHARD_WORKERS environment variable when set to a
// positive integer (the expdriver -shards flag routes through it),
// otherwise GOMAXPROCS — both clamped to the shard count. Read per run
// so one process can host differential tests across worker counts.
func shardWorkers(shards int) int {
	n := 0
	if v := os.Getenv("GRAPHMEM_SHARD_WORKERS"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > shards {
		n = shards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// finishSharded runs the kernel phase as spec.Shards owner-computes
// shards and merges the per-shard outcomes into one RunResult. m/img
// are the prepared (or forked) pair positioned at the end of the load
// phase; they become shard 0, and every extra shard is a ForkPair of
// them — or, with the GRAPHMEM_NO_SHARD hatch open (or snapshots
// disabled entirely), an independent replay of the load phase, the
// reference bring-up the CI equivalence gate diffs against.
func (p *prepared) finishSharded(m *machine.Machine, img *analytics.Image, opts analytics.RunOptions) *RunResult {
	s := p.spec.Shards

	// Every shard machine inherits the load phase's counters; the
	// merge below subtracts the extra s−1 copies of this baseline.
	baseArrays := m.ArrayStats()
	baseOS := m.Kernel.Stats()

	ms := make([]*machine.Machine, s)
	imgs := make([]*analytics.Image, s)
	ms[0], imgs[0] = m, img
	replay := HatchDisabled(HatchShard) || SnapshotsDisabled()
	for sh := 1; sh < s; sh++ {
		if replay {
			q, err := prepare(p.spec)
			if err != nil {
				// Impossible: the identical spec already prepared once,
				// and the load phase is deterministic.
				panic(check.Failf("core: shard %d load-phase replay failed after the original succeeded: %v", sh, err))
			}
			ms[sh], imgs[sh] = q.m, q.img
		} else {
			ms[sh], imgs[sh] = ForkPair(m, img)
		}
	}

	serial := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	parallel := serial
	if workers := shardWorkers(s); workers > 1 {
		pool := sched.NewPool(workers)
		defer pool.Close()
		parallel = pool.RunN
	}

	out, makespan := analytics.RunSharded(imgs, p.cuts, opts, parallel)
	for _, sm := range ms {
		auditMachine(sm) // end of kernel: every shard's layout must balance
	}

	// Per-shard phase extraction, in shard index order. The init phase
	// is identical on every shard (forks and replays of one load
	// phase), so shard 0's copy represents it.
	shardKernel := make([]machine.PhaseStats, s)
	shardCycles := make([]uint64, s)
	var init machine.PhaseStats
	for sh, sm := range ms {
		for _, ph := range sm.FinishPhases() {
			switch ph.Name {
			case "init":
				if sh == 0 {
					init = ph
				}
			case "kernel":
				shardKernel[sh] = ph
				shardCycles[sh] = ph.Cycles
			}
		}
	}

	// Kernel merge: every counter is the exact sum over shards, while
	// Cycles becomes the barrier makespan RunSharded measured — the
	// modeled time of shards executing concurrently and meeting at
	// every phase boundary. The per-phase accounting identity
	// (Cycles == Data + Translation + Fault) intentionally does not
	// hold for the merged phase; ShardKernelCycles preserves the
	// per-shard values for which it does.
	kernel := shardKernel[0]
	for sh := 1; sh < s; sh++ {
		kernel = kernel.Add(shardKernel[sh])
	}
	kernel.Cycles = makespan

	osStats := ms[0].Kernel.Stats()
	for sh := 1; sh < s; sh++ {
		osStats = osStats.Add(ms[sh].Kernel.Stats().Sub(baseOS))
	}

	arrays := ms[0].ArrayStats()
	for sh := 1; sh < s; sh++ {
		for i, a := range ms[sh].ArrayStats() {
			arrays[i].Accesses += a.Accesses - baseArrays[i].Accesses
			arrays[i].L1Misses += a.L1Misses - baseArrays[i].L1Misses
			arrays[i].Walks += a.Walks - baseArrays[i].Walks
		}
	}

	// The merge must stay a commutative reduction consumed in fixed
	// shard order: under -tags simcheck, re-reduce in reverse order and
	// demand identical results.
	check.Audit("shardmerge", func() error {
		rev := shardKernel[s-1]
		for sh := s - 2; sh >= 0; sh-- {
			rev = rev.Add(shardKernel[sh])
		}
		rev.Cycles = makespan
		rev.Name = kernel.Name
		if rev != kernel {
			return fmt.Errorf("kernel-phase merge is order-dependent: forward %+v != reverse %+v", kernel, rev)
		}
		osRev := ms[s-1].Kernel.Stats()
		for sh := s - 2; sh >= 0; sh-- {
			osRev = osRev.Add(ms[sh].Kernel.Stats())
		}
		for sh := 1; sh < s; sh++ {
			osRev = osRev.Sub(baseOS)
		}
		if osRev != osStats {
			return fmt.Errorf("OS-stats merge is order-dependent: forward %+v != reverse %+v", osStats, osRev)
		}
		return nil
	})

	res := &RunResult{
		Spec:              p.spec,
		WSSBytes:          p.wss,
		MemoryBytes:       p.memBytes,
		PreprocessCycles:  p.preCycles,
		InitCycles:        init.Cycles,
		KernelCycles:      makespan,
		Init:              init,
		Kernel:            kernel,
		Arrays:            arrays,
		OS:                osStats,
		ShardKernelCycles: shardCycles,
		Output:            out,
	}
	res.TotalCycles = res.PreprocessCycles + res.InitCycles + res.KernelCycles

	// Layout metrics: the shards' address spaces evolve independently
	// during the kernel phase (each faults and promotes its own
	// windows), so report the integer mean over shards — the "one
	// machine's worth" figure comparable to a monolithic run.
	var mapped, huge, propHuge uint64
	for _, im := range imgs {
		for _, v := range []*vm.VMA{im.Vertex, im.Edge, im.Values, im.Prop, im.Work} {
			if v == nil {
				continue
			}
			total, h := v.MappedBytes()
			mapped += total
			huge += h
			if v == im.Prop {
				propHuge += h
			}
		}
	}
	res.MappedBytes = mapped / uint64(s)
	res.TotalHugeBytes = huge / uint64(s)
	res.PropHugeBytes = propHuge / uint64(s)
	return res
}
