package core_test

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/ckpt"
	"graphmem/internal/core"
)

// persistSpec is the persistence tests' configuration: the stressed
// environment (memhog pin runs and a resident page cache must ride
// through the external-owner codecs) with simulated page tables (the
// radix tree and PT-frame accounting must survive the trip).
func persistSpec(t *testing.T, pol core.Policy) core.RunSpec {
	t.Helper()
	spec := quickSpec(t, analytics.BFS, pol, stressedEnv())
	spec.SimulatePageTables = true
	return spec
}

// TestSaveLoadForkMatchesFresh is the persistence fidelity property
// test: for each standard configuration, a checkpoint written to a
// buffer and loaded back in must produce RunResults deeply equal to the
// resident checkpoint's — every cycle count, fault counter, array
// statistic, and kernel output bit — and Save must be byte-
// deterministic so the content-addressed store never flip-flops.
func TestSaveLoadForkMatchesFresh(t *testing.T) {
	for _, pol := range snapshotConfigs() {
		t.Run(pol.Name, func(t *testing.T) {
			spec := persistSpec(t, pol)
			key := "persist:" + pol.Name
			cp, err := core.Prepare(spec)
			if err != nil {
				t.Fatal(err)
			}
			var buf, buf2 bytes.Buffer
			n, err := cp.Save(&buf, key)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("Save reported %d bytes, wrote %d", n, buf.Len())
			}
			if _, err := cp.Save(&buf2, key); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("two Saves of one checkpoint produced different bytes")
			}
			ref, err := cp.Run()
			if err != nil {
				t.Fatal(err)
			}
			lcp, err := core.LoadCheckpoint(spec, key, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				got, err := lcp.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("loaded fork run %d diverged from fresh checkpoint:\n--- fresh ---\n%s--- loaded ---\n%s",
						i, formatResult(ref), formatResult(got))
				}
			}
		})
	}
}

// savedImage builds one saved checkpoint container (and its spec/key)
// once for the corruption tests and the fuzzer.
var savedImage struct {
	once sync.Once
	spec core.RunSpec
	key  string
	data []byte
	err  error
}

func savedCheckpoint(t testing.TB) (core.RunSpec, string, []byte) {
	t.Helper()
	savedImage.once.Do(func() {
		savedImage.spec = quickSpec(t, analytics.BFS, core.THPAlways(), stressedEnv())
		savedImage.spec.SimulatePageTables = true
		savedImage.key = "persist:corruption"
		cp, err := core.Prepare(savedImage.spec)
		if err != nil {
			savedImage.err = err
			return
		}
		var buf bytes.Buffer
		if _, err := cp.Save(&buf, savedImage.key); err != nil {
			savedImage.err = err
			return
		}
		savedImage.data = buf.Bytes()
	})
	if savedImage.err != nil {
		t.Fatal(savedImage.err)
	}
	return savedImage.spec, savedImage.key, savedImage.data
}

// mustReject asserts LoadCheckpoint refuses a corrupted image: an
// error, no half-initialized checkpoint, and no panic (the deferred
// recover converts one into a test failure with context).
func mustReject(t *testing.T, spec core.RunSpec, key string, img []byte, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("LoadCheckpoint panicked on %s: %v", what, r)
		}
	}()
	cp, err := core.LoadCheckpoint(spec, key, bytes.NewReader(img))
	if err == nil {
		t.Fatalf("LoadCheckpoint accepted %s", what)
	}
	if cp != nil {
		t.Fatalf("LoadCheckpoint returned a checkpoint alongside the %s error", what)
	}
}

// TestLoadCheckpointRejectsCorruption truncates and bit-flips a real
// saved image at positions spread over the whole container — the
// header, key, payload, and trailer all see hits — and requires every
// variant to be rejected errors-only.
func TestLoadCheckpointRejectsCorruption(t *testing.T) {
	spec, key, img := savedCheckpoint(t)
	stride := len(img)/257 + 1
	for off := 0; off < len(img); off += stride {
		mustReject(t, spec, key, img[:off], "a truncated image")
		flipped := append([]byte(nil), img...)
		flipped[off] ^= 1 << (off % 8)
		mustReject(t, spec, key, flipped, "a bit-flipped image")
	}
	mustReject(t, spec, key, nil, "an empty image")
	if _, err := core.LoadCheckpoint(spec, "persist:other", bytes.NewReader(img)); err == nil {
		t.Fatal("LoadCheckpoint accepted an image saved under a different key")
	}
}

// FuzzLoadCheckpoint drives arbitrary bytes through the whole decode
// stack. Raw container mutations mostly die at the CRC, so the fuzz
// input is treated as the PAYLOAD and wrapped in a valid container
// (correct magic, key, length, checksum) — every mutation then reaches
// the per-subsystem Decode validation, which must error, never panic,
// never hand back a half-initialized checkpoint.
func FuzzLoadCheckpoint(f *testing.F) {
	spec, key, img := savedCheckpoint(f)
	// Container layout (ckpt package doc): 17 fixed header bytes
	// (magic, version, endian, key length), the key, the payload, and a
	// 12-byte length+CRC trailer.
	hdr := 17 + len(key)
	payload := img[hdr : len(img)-12]
	f.Add(payload)
	f.Add(payload[:len(payload)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf bytes.Buffer
		if _, err := ckpt.Save(&buf, key, func(e *ckpt.Encoder) { e.Raw(data) }); err != nil {
			t.Fatal(err)
		}
		cp, err := core.LoadCheckpoint(spec, key, bytes.NewReader(buf.Bytes()))
		if err == nil {
			// Only the exact original payload decodes; anything the
			// fuzzer changed must have been caught by some validator.
			if !bytes.Equal(data, payload) {
				t.Fatalf("LoadCheckpoint accepted a mutated payload (%d bytes)", len(data))
			}
			if _, err := cp.Run(); err != nil {
				t.Fatal(err)
			}
		} else if cp != nil {
			t.Fatal("LoadCheckpoint returned a checkpoint alongside an error")
		}
	})
}
