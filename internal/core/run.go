package core

import (
	"fmt"
	"math"

	"graphmem/internal/analytics"
	"graphmem/internal/cache"
	"graphmem/internal/check"
	"graphmem/internal/cost"
	"graphmem/internal/graph"
	"graphmem/internal/machine"
	"graphmem/internal/memsys"
	"graphmem/internal/oskernel"
	"graphmem/internal/profile"
	"graphmem/internal/reorder"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
	"graphmem/internal/workload"
)

// NoPressure as Environment.PressureDelta means "do not run memhog".
const NoPressure = int64(math.MaxInt64)

// Environment describes the system state the workload runs in.
type Environment struct {
	// MemoryBytes is the node's physical memory. Zero selects a
	// default of 4× the working set (the paper's node holds 2.5–7.5×
	// the WSS of its configurations).
	MemoryBytes uint64

	// AgedFraction poisons this fraction of all 2MB regions with one
	// scattered non-movable page before anything runs, emulating a
	// long-running host. Zero is a fresh boot.
	AgedFraction float64

	// PressureDelta is the free memory left beyond the working set
	// after memhog pins the rest (the paper's "WSS+Δ" levels). It may
	// be negative (oversubscription). NoPressure disables memhog.
	PressureDelta int64

	// FragLevel fragments this fraction of the available memory with
	// non-movable pages after memhog (the paper's frag utility).
	FragLevel float64

	// PageCacheBytes models naive file loading: this much single-use
	// page cache is resident when the application starts faulting.
	// Zero models the paper's tmpfs-on-remote-node mitigation.
	PageCacheBytes uint64

	// ChurnBytes, when non-zero, runs a co-runner whose anonymous
	// footprint oscillates between 0 and this many bytes while the
	// application executes — dynamic memory pressure, the case the
	// paper's static memhog levels approximate. ChurnIntervalCycles
	// sets the oscillation step cadence (default ~1M cycles).
	ChurnBytes          uint64
	ChurnIntervalCycles uint64

	Seed uint64
}

// FreshBoot is the unconstrained environment of Fig. 1's "no memory
// pressure" bars: all memory free and contiguous.
func FreshBoot() Environment {
	return Environment{PressureDelta: NoPressure}
}

// AgedFractionDefault is the ambient non-movable fragmentation used by
// the pressured environments. Calibrated so the paper's "low pressure"
// threshold (≈2.5GB of slack on 8.5–25GB working sets) scales through:
// huge page supply ≈ (1−f)·(WSS+Δ) crosses WSS at Δ ≈ WSS·f/(1−f) ≈
// 0.14·WSS, matching the paper's phase boundaries at their footprints.
const AgedFractionDefault = 0.125

// Pressured is the paper's constrained-memory environment: an aged
// system with memhog pinning all but WSS+delta bytes.
func Pressured(delta int64) Environment {
	return Environment{AgedFraction: AgedFractionDefault, PressureDelta: delta}
}

// Fragmented is the paper's fragmentation environment: low memory
// pressure (WSS+delta free) with `level` of the available memory
// poisoned by non-movable pages.
func Fragmented(delta int64, level float64) Environment {
	return Environment{
		AgedFraction:  AgedFractionDefault,
		PressureDelta: delta,
		FragLevel:     level,
	}
}

// RunSpec fully describes one experiment run.
type RunSpec struct {
	Graph   *graph.Graph
	App     analytics.App
	Reorder reorder.Method
	Order   analytics.AllocOrder
	Policy  Policy
	Env     Environment

	// Hardware configuration; zero values select the paper's Table 1
	// machine and default cost model.
	TLB   tlb.Config
	Cache cache.Config
	Cost  *cost.Model

	// SimulatePageTables enables the high-fidelity walk model: paging
	// structures consume simulated memory and walks fetch entries
	// through the cache hierarchy (see machine.Config).
	SimulatePageTables bool

	// SampleSupplyEvery, when non-zero, samples the huge page economy
	// every that-many simulated cycles into RunResult.Supply — the
	// measured version of the paper's Fig. 6 narrative (huge page
	// regions being consumed as arrays allocate).
	SampleSupplyEvery uint64

	// Run selects kernel parameters; zero selects defaults (max-degree
	// root, ε=1e-4, ≤10 PR iterations).
	Run analytics.RunOptions

	// Shards selects the sharded machine engine (DESIGN.md §5c): the
	// graph is partitioned into this many contiguous vertex windows,
	// each simulated by its own forked machine, with the kernel run as
	// an owner-computes bulk-synchronous program. 0 or 1 runs the
	// monolithic engine. The shard count is semantic — it changes the
	// modeled system — while the number of worker goroutines driving
	// the shards is an execution detail (GRAPHMEM_SHARD_WORKERS,
	// expdriver -shards) that never changes output. Sharded runs
	// require SnapshotSafe specs (no churn co-runner, no supply
	// sampler).
	Shards int

	// PreReorderCost, when non-nil, declares that Graph has already
	// been reordered externally (by the method named in Reorder) at
	// this preprocessing cost. Run charges the cost but performs no
	// relabeling — the experiment harness uses this to reorder each
	// dataset once and share it across dozens of runs.
	PreReorderCost *reorder.Cost
}

// RunResult carries everything the experiment harness reports.
type RunResult struct {
	Spec RunSpec

	WSSBytes    uint64
	MemoryBytes uint64

	PreprocessCycles uint64
	InitCycles       uint64
	KernelCycles     uint64

	// TotalCycles = preprocess + init + kernel: the paper's
	// end-to-end accounting (preprocessing "accounted for when
	// measuring application runtimes").
	TotalCycles uint64

	Init   machine.PhaseStats
	Kernel machine.PhaseStats

	Arrays []machine.ArrayStats
	OS     oskernel.Stats

	// Huge page usage at the end of the run.
	PropHugeBytes  uint64
	TotalHugeBytes uint64
	MappedBytes    uint64

	// Supply holds the huge-page-economy timeline when
	// RunSpec.SampleSupplyEvery was set.
	Supply []SupplySample

	// ShardKernelCycles holds each shard machine's kernel-phase cycles
	// when RunSpec.Shards > 1 (KernelCycles is then the barrier
	// makespan over these, not their sum). Nil for monolithic runs.
	ShardKernelCycles []uint64

	Output analytics.Result
}

// SupplySample is one point of the huge page economy: how many free 2MB
// blocks remain and how much of each key array is huge-backed.
type SupplySample struct {
	Cycles         uint64
	FreeHugeBlocks uint64
	EdgeHugeBytes  uint64
	PropHugeBytes  uint64
}

// HugeShareOfFootprint is the fraction of the application's mapped
// memory backed by huge pages — the paper's "x% of the memory
// resources" headline metric.
func (r *RunResult) HugeShareOfFootprint() float64 {
	if r.MappedBytes == 0 {
		return 0
	}
	return float64(r.TotalHugeBytes) / float64(r.MappedBytes)
}

// Run executes one configuration end to end: the load phase
// (environment staging, mmap, madvise, init faulting) followed by the
// kernel phase on the same machine. Campaign cells that share a load
// phase can instead Prepare once and fork per kernel (snapshot.go);
// Run remains the monolithic reference path the fork layer is diffed
// against.
func Run(spec RunSpec) (*RunResult, error) {
	p, err := prepare(spec)
	if err != nil {
		return nil, err
	}
	return p.finish(p.m, p.img), nil
}

// prepared is a machine carried through the load phase: environment
// staged, image mapped and advised, init phase complete and audited.
// It is the state a Checkpoint snapshots; finish runs the kernel phase
// on it (or on a fork of it) and assembles the RunResult.
type prepared struct {
	spec      RunSpec // normalized: hardware defaults filled in
	g         *graph.Graph
	wss       uint64
	memBytes  uint64
	preCycles uint64
	m         *machine.Machine
	img       *analytics.Image
	supply    []SupplySample

	// cuts holds the shard vertex partition (len Shards+1) when
	// spec.Shards > 1; nil otherwise (shard.go).
	cuts []uint32
}

// stage computes everything prepare derives before a machine exists:
// spec normalization (hardware defaults), preprocessing (reordering and
// shard partitioning, with their charged cycles), the working-set size
// and the node size. It is pure — no simulator state, no randomness —
// which is what lets LoadCheckpoint re-derive this half of a prepared
// run from the spec and splice the serialized machine underneath it
// (persist.go).
func stage(spec RunSpec) (*prepared, error) {
	if spec.Graph == nil {
		return nil, fmt.Errorf("core: RunSpec.Graph is nil")
	}
	if spec.TLB.Name == "" {
		spec.TLB = tlb.Haswell()
	}
	if spec.Cache.Name == "" {
		spec.Cache = cache.Haswell()
	}
	model := cost.Default()
	if spec.Cost != nil {
		model = *spec.Cost
	}
	spec.Cost = &model

	// Preprocessing (reordering) happens before the machine exists:
	// the paper performs it "separately in order to not interfere with
	// the available memory for huge pages" but charges its time.
	if spec.Shards > 1 && !SnapshotSafe(spec) {
		return nil, fmt.Errorf("core: RunSpec.Shards=%d requires a snapshot-safe spec (no churn co-runner, no supply sampler): shard bring-up forks the prepared machine", spec.Shards)
	}
	if spec.Shards > 255 {
		return nil, fmt.Errorf("core: RunSpec.Shards=%d exceeds the engine's 255-shard owner table", spec.Shards)
	}

	g := spec.Graph
	var preCycles uint64
	switch {
	case spec.PreReorderCost != nil:
		c := *spec.PreReorderCost
		preCycles = uint64(c.VertexTraversals)*model.PreprocPerVertex +
			uint64(c.EdgeTraversals)*model.PreprocPerEdge
	case spec.Reorder != reorder.Identity:
		var c reorder.Cost
		g, c = reorder.Apply(g, spec.Reorder, spec.Env.Seed+1)
		preCycles = uint64(c.VertexTraversals)*model.PreprocPerVertex +
			uint64(c.EdgeTraversals)*model.PreprocPerEdge
	}

	// Shard partitioning is preprocessing too: a degree scan over the
	// final (post-reorder) vertex order, charged like reordering.
	var cuts []uint32
	if spec.Shards > 1 {
		var c reorder.Cost
		cuts, c = reorder.Partition(g, spec.Shards)
		preCycles += uint64(c.VertexTraversals)*model.PreprocPerVertex +
			uint64(c.EdgeTraversals)*model.PreprocPerEdge
	}

	wss := analytics.WSSBytes(spec.App, g)

	memBytes := spec.Env.MemoryBytes
	if memBytes == 0 {
		memBytes = 4 * wss
		const minMem = 64 << 20
		if memBytes < minMem {
			memBytes = minMem
		}
	}
	return &prepared{
		spec:      spec,
		g:         g,
		wss:       wss,
		memBytes:  memBytes,
		preCycles: preCycles,
		cuts:      cuts,
	}, nil
}

// prepare executes everything up to (and including) the init phase.
func prepare(spec RunSpec) (*prepared, error) {
	p, err := stage(spec)
	if err != nil {
		return nil, err
	}
	spec = p.spec
	g, wss, memBytes := p.g, p.wss, p.memBytes
	model := *spec.Cost

	kcfg := spec.Policy.kernelConfig()
	if spec.Policy.HugetlbProp && spec.Policy.PropPercent > 0 {
		propBytes := uint64(g.N) * analytics.PropEntryBytes(spec.App)
		fullRegions := propBytes / memsys.HugeSize
		kcfg.HugetlbReserve = int(math.Ceil(spec.Policy.PropPercent * float64(fullRegions)))
	}
	m := machine.New(machine.Config{
		MemoryBytes:        memBytes,
		TLB:                spec.TLB,
		Cache:              spec.Cache,
		Cost:               model,
		Kernel:             kcfg,
		SimulatePageTables: spec.SimulatePageTables,
	})
	applyAccessHatches(m)

	// Stage the environment: age → memhog → frag → page cache.
	workload.AgeSystem(m.Mem, spec.Env.AgedFraction, spec.Env.Seed)
	if spec.Env.PressureDelta != NoPressure {
		freeB := int64(m.Mem.FreePages()) * memsys.PageSize
		hog := freeB - int64(wss) - spec.Env.PressureDelta
		// Even under deep oversubscription a real machine keeps a
		// minimum free pool (watermarks); without it the application
		// could not fault in its first pages to have anything to swap.
		if max := freeB - 16*memsys.PageSize; hog > max {
			hog = max
		}
		if hog > 0 {
			workload.NewMemhog(m.Mem, uint64(hog))
		}
	}
	if spec.Env.FragLevel > 0 {
		workload.Fragment(m.Mem, spec.Env.FragLevel)
	}
	if spec.Env.PageCacheBytes > 0 {
		pc := workload.NewPageCache(m.Mem)
		pc.Fill(spec.Env.PageCacheBytes)
	}
	if spec.Env.ChurnBytes > 0 {
		interval := spec.Env.ChurnIntervalCycles
		if interval == 0 {
			interval = 1_000_000
		}
		ch := workload.NewChurner(m.Mem, spec.Env.ChurnBytes, 256)
		// The co-runner was already mid-phase when the application
		// started: grow to half footprint so initialization contends
		// with it from the first fault.
		for ch.ResidentBytes() < spec.Env.ChurnBytes/2 {
			before := ch.ResidentBytes()
			ch.Step()
			if ch.ResidentBytes() == before {
				break // memory exhausted; churner backed off
			}
		}
		m.AddTicker(interval, func(uint64) { ch.Step() })
	}

	auditMachine(m) // environment staged: allocator must already be consistent

	img, err := analytics.NewImage(m, g, spec.App)
	if err != nil {
		return nil, err
	}
	applyAdvice(img, spec.Policy)

	p.m = m
	p.img = img
	if spec.SampleSupplyEvery > 0 {
		m.AddTicker(spec.SampleSupplyEvery, func(now uint64) {
			_, edgeHuge := img.Edge.MappedBytes()
			_, propHuge := img.Prop.MappedBytes()
			p.supply = append(p.supply, SupplySample{
				Cycles:         now,
				FreeHugeBlocks: m.Mem.FreeHugeBlocks(),
				EdgeHugeBytes:  edgeHuge,
				PropHugeBytes:  propHuge,
			})
		})
	}

	img.Init(spec.Order)
	auditMachine(m) // faults, THP promotion, compaction and reclaim all ran
	return p, nil
}

// finish runs the kernel phase on m/img — either the prepared machine
// itself (the monolithic Run path) or a Fork of it (the Checkpoint
// path; forking is what lets several kernels share one load phase) —
// and assembles the RunResult. It reads the prepared state but never
// mutates it, so one Checkpoint can finish any number of forks.
func (p *prepared) finish(m *machine.Machine, img *analytics.Image) *RunResult {
	opts := p.spec.Run
	if opts.Root == 0 && opts.PRMaxIters == 0 {
		opts = analytics.DefaultRunOptions(p.g)
	}
	if p.spec.Shards > 1 {
		return p.finishSharded(m, img, opts)
	}
	out := img.Run(opts)
	auditMachine(m) // end of kernel: final layout must balance

	phases := m.FinishPhases()
	res := &RunResult{
		Spec:             p.spec,
		WSSBytes:         p.wss,
		MemoryBytes:      p.memBytes,
		PreprocessCycles: p.preCycles,
		Arrays:           m.ArrayStats(),
		OS:               m.Kernel.Stats(),
		Supply:           p.supply,
		Output:           out,
	}
	for _, p := range phases {
		switch p.Name {
		case "init":
			res.Init = p
			res.InitCycles = p.Cycles
		case "kernel":
			res.Kernel = p
			res.KernelCycles = p.Cycles
		}
	}
	res.TotalCycles = res.PreprocessCycles + res.InitCycles + res.KernelCycles

	for _, v := range []*vm.VMA{img.Vertex, img.Edge, img.Values, img.Prop, img.Work} {
		if v == nil {
			continue
		}
		total, huge := v.MappedBytes()
		res.MappedBytes += total
		res.TotalHugeBytes += huge
		if v == img.Prop {
			res.PropHugeBytes = huge
		}
	}
	return res
}

// auditMachine runs the simcheck invariant audits over every stateful
// simulator layer. Under the default build (check.Enabled == false) the
// scans are skipped entirely; under -tags simcheck a violated invariant
// panics with a check.Failure naming the broken structure.
func auditMachine(m *machine.Machine) {
	check.Audit("memsys", m.Mem.CheckInvariants)
	check.Audit("vm", m.Space.CheckInvariants)
	check.Audit("tlb", m.TLB.CheckInvariants)
}

// applyAdvice issues the policy's madvise calls on the freshly-mapped
// image, before any page faults occur.
func applyAdvice(img *analytics.Image, p Policy) {
	advise := func(v *vm.VMA, on bool) {
		if v != nil && on {
			v.Madvise(0, v.Bytes, vm.AdviceHuge)
		}
	}
	advise(img.Vertex, p.AdviseVertex)
	advise(img.Edge, p.AdviseEdge)
	advise(img.Values, p.AdviseValues)
	advise(img.Work, p.AdviseWork)
	if p.PropPercent > 0 {
		bytes := uint64(p.PropPercent * float64(img.Prop.Bytes))
		if bytes > 0 {
			img.Prop.Madvise(0, bytes, vm.AdviceHuge)
		}
	}
	if p.AutoBudgetBytes > 0 || p.AutoCoverage > 0 {
		prof := profile.New(img.G, analytics.PropEntryBytes(img.App))
		var plan profile.Plan
		if p.AutoBudgetBytes > 0 {
			plan = prof.PlanBudget(p.AutoBudgetBytes)
		} else {
			plan = prof.PlanCoverage(p.AutoCoverage)
		}
		for _, r := range plan.Regions {
			img.Prop.Madvise(uint64(r)*memsys.HugeSize, memsys.HugeSize, vm.AdviceHuge)
		}
	}
}
