package core

import (
	"fmt"
	"io"

	"graphmem/internal/analytics"
	"graphmem/internal/ckpt"
	"graphmem/internal/machine"
	"graphmem/internal/memsys"
	"graphmem/internal/workload"
)

// This file is the persistent half of the snapshot layer (DESIGN.md
// §5e): a Checkpoint's frozen machine can be written to a ckpt
// container and spliced back under a freshly staged spec in another
// process. The split follows the prepared struct: everything stage()
// derives is pure recomputation from the spec (graph, cuts, sizes,
// preprocessing cycles) and is NOT serialized — only the machine and
// its image, the two things that cost a load-phase replay, go to disk.
// Decode therefore cannot drift from prepare: the spec side is the same
// code path either way, and the machine side is cross-checked against
// it before the checkpoint is handed out.

// External frame-owner subtags written by prepared.encode, mirroring
// the owner types ForkPair knows how to clone.
const (
	ownerMemhog    = 1 // *workload.Memhog
	ownerPageCache = 2 // *workload.PageCache
)

func encodeExternalOwner(e *ckpt.Encoder, o memsys.Owner) {
	switch o := o.(type) {
	case *workload.Memhog:
		e.U8(ownerMemhog)
		o.Encode(e)
	case *workload.PageCache:
		e.U8(ownerPageCache)
		o.Encode(e)
	default:
		// The ForkPair rule, applied to disk: an owner without a codec
		// means the snapshot would be incomplete.
		e.Failf("core: frame owner %T has no checkpoint codec", o)
	}
}

func decodeExternalOwner(d *ckpt.Decoder, mem *memsys.Memory) memsys.Owner {
	switch tag := d.U8(); tag {
	case ownerMemhog:
		h := new(workload.Memhog)
		h.Decode(d, mem)
		return h
	case ownerPageCache:
		pc := new(workload.PageCache)
		pc.Decode(d, mem)
		return pc
	default:
		d.Failf("core: external owner subtag %d unknown", tag)
		return nil
	}
}

// encode writes the prepared run's machine half. The spec half — the
// graph, partition cuts, working-set and node sizes, preprocessing
// cycles — is stage()'s deterministic output and is recomputed from the
// spec on load rather than stored.
func (p *prepared) encode(e *ckpt.Encoder) {
	_ = p.spec      // the loader's key; re-supplied by the caller
	_ = p.g         // re-derived by stage (reorder is deterministic)
	_ = p.wss       // recomputed by stage
	_ = p.memBytes  // recomputed by stage
	_ = p.preCycles // recomputed by stage
	_ = p.cuts      // recomputed by stage (partitioning is deterministic)
	if len(p.supply) != 0 {
		// Supply sampling registers a ticker, so such specs are not
		// SnapshotSafe and never reach Prepare, let alone Save.
		e.Failf("core: prepared run carries %d supply samples; sampled specs are not checkpointable", len(p.supply))
		return
	}
	p.m.Encode(e, encodeExternalOwner)
	p.img.Encode(e)
}

// Save writes the checkpoint's frozen post-init machine state to w as a
// versioned, checksummed ckpt container under the given key (the
// campaign's staging identity — exp uses the initKey hash). It returns
// the container size in bytes. Saving requires a resident machine:
// with GRAPHMEM_NO_SNAPSHOT open there is nothing to persist.
func (cp *Checkpoint) Save(w io.Writer, key string) (int64, error) {
	if cp.pre == nil {
		return 0, fmt.Errorf("core: checkpoint holds no machine (GRAPHMEM_NO_SNAPSHOT is open); nothing to save")
	}
	return ckpt.Save(w, key, cp.pre.encode)
}

// LoadCheckpoint reconstructs a Checkpoint saved under key from r,
// splicing the serialized machine under a freshly staged spec. The spec
// must be the one the checkpoint was prepared from — the caller's store
// guarantees that by keying containers on the staging identity, and
// LoadCheckpoint cross-checks the machine's geometry and cost model
// against the spec so a mismatched pairing fails loudly instead of
// producing plausible wrong numbers. The loaded checkpoint's forks are
// byte-identical to the saving process's: Decode is exact inverse
// state transfer, and everything not serialized is recomputed through
// the same stage() path Prepare uses (MODEL.md §7).
func LoadCheckpoint(spec RunSpec, key string, r io.Reader) (*Checkpoint, error) {
	if !SnapshotSafe(spec) {
		return nil, fmt.Errorf("core: spec registers machine tickers (churn or supply sampling); it cannot have been checkpointed")
	}
	if SnapshotsDisabled() {
		return nil, fmt.Errorf("core: GRAPHMEM_NO_SNAPSHOT is open; checkpoints replay their load phase instead of loading")
	}
	d, err := ckpt.Load(r, key)
	if err != nil {
		return nil, err
	}
	p, err := stage(spec)
	if err != nil {
		return nil, err
	}
	m := new(machine.Machine)
	m.Decode(d, decodeExternalOwner)
	img := new(analytics.Image)
	img.Decode(d, m, p.g)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", key, err)
	}
	if m.Model != *p.spec.Cost {
		return nil, fmt.Errorf("core: checkpoint %s was saved under a different cost model", key)
	}
	if got := m.Mem.TotalPages() * memsys.PageSize; got != p.memBytes {
		return nil, fmt.Errorf("core: checkpoint %s holds a %d-byte node, spec stages %d bytes", key, got, p.memBytes)
	}
	if m.Space.SimPageTables != p.spec.SimulatePageTables {
		return nil, fmt.Errorf("core: checkpoint %s disagrees with the spec on page-table simulation", key)
	}
	if !img.Initialized() {
		return nil, fmt.Errorf("core: checkpoint %s holds an uninitialized image", key)
	}
	if img.App != p.spec.App {
		return nil, fmt.Errorf("core: checkpoint %s holds a %s image, spec runs %s", key, img.App, p.spec.App)
	}
	// The hatches are per-process environment, not machine state:
	// normalize them exactly as prepare does for a fresh machine.
	applyAccessHatches(m)
	auditMachine(m)
	p.m = m
	p.img = img
	return &Checkpoint{spec: spec, pre: p}, nil
}
