package core_test

import (
	"fmt"
	"strings"
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
)

// formatResult renders every statistic a run produces into a canonical
// string. Spec is deliberately excluded (it holds pointers whose
// rendering would differ between processes); everything else is plain
// values, so two equal results format byte-identically.
func formatResult(r *core.RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "wss=%d mem=%d\n", r.WSSBytes, r.MemoryBytes)
	fmt.Fprintf(&b, "cycles pre=%d init=%d kernel=%d total=%d\n",
		r.PreprocessCycles, r.InitCycles, r.KernelCycles, r.TotalCycles)
	fmt.Fprintf(&b, "init=%+v\n", r.Init)
	fmt.Fprintf(&b, "kernel=%+v\n", r.Kernel)
	fmt.Fprintf(&b, "os=%+v\n", r.OS)
	for _, a := range r.Arrays {
		fmt.Fprintf(&b, "array %+v\n", a)
	}
	fmt.Fprintf(&b, "huge prop=%d total=%d mapped=%d share=%.9f\n",
		r.PropHugeBytes, r.TotalHugeBytes, r.MappedBytes, r.HugeShareOfFootprint())
	for _, s := range r.Supply {
		fmt.Fprintf(&b, "supply %+v\n", s)
	}
	fmt.Fprintf(&b, "output iters=%d hops=%v\n", r.Output.Iterations, r.Output.Hops)
	return b.String()
}

// TestRunIsDeterministic runs the same stressed BFS+THP configuration
// twice in one process and requires byte-identical statistics. The
// environment deliberately stacks every nondeterminism-prone subsystem:
// an aged fragmented node, memhog pressure, single-use page cache,
// an oscillating co-runner, compaction-vs-reclaim interleavings, and
// supply-timeline sampling. This is the regression test for the
// project's central contract — identical call sequences produce
// identical physical layouts — which simlint enforces statically and
// the simcheck audits enforce structurally.
func TestRunIsDeterministic(t *testing.T) {
	env := core.Pressured(12 << 20)
	env.FragLevel = 0.3
	env.PageCacheBytes = 2 << 20
	env.ChurnBytes = 1 << 20
	env.ChurnIntervalCycles = 50_000
	env.Seed = 42

	spec := quickSpec(t, analytics.BFS, core.THPAlways(), env)
	spec.SampleSupplyEvery = 100_000
	spec.SimulatePageTables = true

	run := func() string {
		t.Helper()
		res, err := core.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return formatResult(res)
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("identical specs produced different stats:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "supply ") {
		t.Fatal("supply timeline was not sampled; the test lost coverage")
	}
}

// TestRunDeterminismAcrossSeeds is the control: different seeds must
// change the environment layout (otherwise the seed is not actually
// threaded through and the determinism test proves nothing).
func TestRunDeterminismAcrossSeeds(t *testing.T) {
	// Same stressed environment as TestRunIsDeterministic: huge page
	// allocation must partially succeed, because when every region is
	// poisoned the stats degenerate to pure 4K behaviour, which is
	// insensitive to where the poison sits.
	env := core.Pressured(12 << 20)
	env.FragLevel = 0.3
	env.PageCacheBytes = 2 << 20
	env.Seed = 1 // stride phase 1 (see workload.AgeSystem)

	specA := quickSpec(t, analytics.BFS, core.THPAlways(), env)
	specA.SampleSupplyEvery = 100_000
	resA, err := core.Run(specA)
	if err != nil {
		t.Fatal(err)
	}

	env.Seed = 2 // stride phase 6: a different set of poisoned regions
	specB := quickSpec(t, analytics.BFS, core.THPAlways(), env)
	specB.SampleSupplyEvery = 100_000
	resB, err := core.Run(specB)
	if err != nil {
		t.Fatal(err)
	}

	// The graph kernel's answer must not depend on the seed...
	if fmt.Sprintf("%v", resA.Output.Hops) != fmt.Sprintf("%v", resB.Output.Hops) {
		t.Fatal("BFS output changed with the environment seed")
	}
	// ...but the aged layout (and thus the run's physical behaviour)
	// should: AgeSystem hashes the seed into poison placement.
	if formatResult(resA) == formatResult(resB) {
		t.Fatal("seeds 1 and 2 produced identical stats; seed is not threaded through the environment")
	}
}
