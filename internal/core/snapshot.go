package core

import (
	"fmt"

	"graphmem/internal/analytics"
	"graphmem/internal/machine"
	"graphmem/internal/memsys"
	"graphmem/internal/stats"
	"graphmem/internal/workload"
)

// This file is the snapshot/fork layer over the load phase (DESIGN.md
// §5b): a Checkpoint freezes a machine immediately after the init
// phase, and every kernel that shares that load phase runs on a fork
// of the frozen state instead of replaying environment staging and
// init faulting from scratch. Forks are audited deep copies — the
// machine, its address space, physical node, kernel policy engine, TLB
// and cache hierarchies are cloned, and frame owners that live outside
// the machine (memhog, page cache) are cloned and remapped — so a
// forked kernel produces bit-identical cycles and statistics to the
// monolithic Run path. The GRAPHMEM_NO_SNAPSHOT escape hatch proves
// it: with the variable set, Fork replays the load phase monolithically
// and CI diffs the two campaign outputs byte for byte (scripts/ci.sh),
// exactly as GRAPHMEM_NO_BULK and GRAPHMEM_NO_GATHER gate the access
// engines.

// SnapshotsDisabled reports whether the GRAPHMEM_NO_SNAPSHOT escape
// hatch is open (HatchDisabled): checkpoints then hold no machine and
// every fork replays its load phase from the spec.
func SnapshotsDisabled() bool { return HatchDisabled(HatchSnapshot) }

// SnapshotSafe reports whether spec's load phase can be checkpointed
// and forked. Specs that register machine tickers — a churning
// co-runner or a supply sampler — are excluded: tickers are closures
// over state outside the machine, which a deep copy cannot capture
// (machine.Forkable). Such cells run monolithically via Run.
func SnapshotSafe(spec RunSpec) bool {
	return spec.Env.ChurnBytes == 0 && spec.SampleSupplyEvery == 0
}

// Checkpoint is a load phase frozen for forking: the machine state the
// moment init completed. Fork yields independent machine+image pairs
// that all start from that state; Run executes the spec's own kernel
// phase on such a fork.
//
// With GRAPHMEM_NO_SNAPSHOT set the checkpoint holds no machine at
// all: Prepare defers the load phase, and each Fork replays it from
// the spec — the pre-snapshot behaviour, preserved as the reference
// side of the CI equivalence diff.
type Checkpoint struct {
	spec RunSpec
	pre  *prepared // nil when snapshotting is disabled
}

// Prepare runs spec's load phase once and freezes it. It fails on
// specs that are not SnapshotSafe and on any load-phase error Run
// would report. When GRAPHMEM_NO_SNAPSHOT is set, the load phase is
// deferred to Fork time instead (so disabling snapshots costs one
// replay per fork, not one extra replay overall).
func Prepare(spec RunSpec) (*Checkpoint, error) {
	if !SnapshotSafe(spec) {
		return nil, fmt.Errorf("core: spec registers machine tickers (churn or supply sampling); run it monolithically")
	}
	cp := &Checkpoint{spec: spec}
	if SnapshotsDisabled() {
		return cp, nil
	}
	p, err := prepare(spec)
	if err != nil {
		return nil, err
	}
	cp.pre = p
	return cp, nil
}

// Spec returns the spec the checkpoint was prepared from.
func (cp *Checkpoint) Spec() RunSpec { return cp.spec }

// Fork returns an independent machine+image pair positioned at the end
// of the load phase. Snapshot-on, that is a deep copy of the frozen
// machine: the address space is cloned, frame owners living outside
// the machine (the memhog's pin list, the page cache's resident set)
// are cloned and remapped, the image is rebound to the forked space,
// and the result is audited (under -tags simcheck) before use.
// Snapshot-off, the load phase is replayed from the spec — identical
// state by the simulator's determinism, at full load-phase cost.
func (cp *Checkpoint) Fork() (*machine.Machine, *analytics.Image, error) {
	if cp.pre == nil {
		p, err := prepare(cp.spec)
		if err != nil {
			return nil, nil, err
		}
		return p.m, p.img, nil
	}
	fm, img := ForkPair(cp.pre.m, cp.pre.img)
	return fm, img, nil
}

// ForkPair deep-copies a machine+image pair positioned anywhere in a
// run — right after init (what Checkpoint.Fork does) or mid-kernel (the
// rollout experiment forks a warmed machine once per candidate policy).
// Frame owners living outside the machine (the memhog's pin list, the
// page cache's resident set) are cloned exactly once per fork and
// remapped; an owner type this switch does not know makes the memsys
// clone panic, because an unaccounted owner means an incomplete
// snapshot. The image is rebound to the forked space and the result is
// audited (under -tags simcheck) before use.
func ForkPair(m *machine.Machine, img *analytics.Image) (*machine.Machine, *analytics.Image) {
	clones := make(map[memsys.Owner]memsys.Owner)
	fm := m.Fork(func(old memsys.Owner, mem *memsys.Memory) memsys.Owner {
		if n, ok := clones[old]; ok {
			return n
		}
		var n memsys.Owner
		switch o := old.(type) {
		case *workload.Memhog:
			n = o.Clone(mem)
		case *workload.PageCache:
			n = o.Clone(mem)
		default:
			return nil // unknown owner: memsys.Clone fails loudly
		}
		clones[old] = n
		return n
	})
	fimg := img.Rebind(fm)
	auditMachine(fm)
	return fm, fimg
}

// Run executes the spec's kernel phase on a fresh Fork and assembles
// the RunResult, exactly as the monolithic Run would have — fork
// fidelity is what the CI equivalence gate verifies.
func (cp *Checkpoint) Run() (*RunResult, error) {
	if cp.pre == nil {
		p, err := prepare(cp.spec)
		if err != nil {
			return nil, err
		}
		return p.finish(p.m, p.img), nil
	}
	fm, img, err := cp.Fork()
	if err != nil {
		return nil, err
	}
	return cp.pre.finish(fm, img), nil
}

// Footprint reports the frozen machine's simulator-side memory
// breakdown (stats.Footprint). It returns false when snapshotting is
// disabled — there is no resident machine to introspect until a fork
// replays the load phase.
func (cp *Checkpoint) Footprint() (stats.Footprint, bool) {
	if cp.pre == nil {
		return stats.Footprint{}, false
	}
	return cp.pre.m.Footprint(), true
}
