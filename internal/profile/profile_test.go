package profile

import (
	"math"
	"testing"
	"testing/quick"

	"graphmem/internal/gen"
	"graphmem/internal/graph"
	"graphmem/internal/memsys"
	"graphmem/internal/reorder"
)

// hubGraph builds a graph where all edges point at vertices inside one
// chosen property region, so heat is perfectly concentrated.
func hubGraph(t *testing.T, n int, hotRegion int, entryBytes uint64) *graph.Graph {
	t.Helper()
	perRegion := int(memsys.HugeSize / entryBytes)
	base := hotRegion * perRegion
	var edges []graph.Edge
	for i := 0; i < 4*n/perRegion+64; i++ {
		edges = append(edges, graph.Edge{
			Src: uint32(i % n),
			Dst: uint32(base + i%perRegion),
		})
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewAccounting(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	p := New(g, 8)
	var sum uint64
	for _, h := range p.Heat {
		sum += h
	}
	if sum != uint64(g.NumEdges()) {
		t.Fatalf("heat sum %d != edges %d", sum, g.NumEdges())
	}
	if p.TotalAccesses != sum {
		t.Fatal("TotalAccesses inconsistent")
	}
	wantRegions := (uint64(g.N)*8 + memsys.HugeSize - 1) / memsys.HugeSize
	if p.Regions != int(wantRegions) {
		t.Fatalf("regions = %d, want %d", p.Regions, wantRegions)
	}
}

func TestHottestOrdering(t *testing.T) {
	const n = 1 << 20 // 4 regions at 8B entries
	g := hubGraph(t, n, 2, 8)
	p := New(g, 8)
	hot := p.Hottest()
	if hot[0].Region != 2 {
		t.Fatalf("hottest region = %d, want 2", hot[0].Region)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Heat > hot[i-1].Heat {
			t.Fatal("Hottest not descending")
		}
	}
}

func TestPlanBudgetPicksHotRegion(t *testing.T) {
	const n = 1 << 20
	g := hubGraph(t, n, 3, 8)
	p := New(g, 8)
	plan := p.PlanBudget(memsys.HugeSize) // budget: exactly one huge page
	if len(plan.Regions) != 1 || plan.Regions[0] != 3 {
		t.Fatalf("plan = %+v, want region 3", plan)
	}
	if plan.Coverage < 0.999 {
		t.Fatalf("coverage = %v, want ~1 (all heat in one region)", plan.Coverage)
	}
}

func TestPlanBudgetLimits(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	p := New(g, 8)
	if got := p.PlanBudget(0); len(got.Regions) != 0 {
		t.Fatal("zero budget produced a plan")
	}
	all := p.PlanBudget(1 << 40)
	if len(all.Regions) != p.Regions {
		t.Fatalf("unbounded budget selected %d/%d regions", len(all.Regions), p.Regions)
	}
	if math.Abs(all.Coverage-1) > 1e-9 {
		t.Fatalf("full plan coverage = %v", all.Coverage)
	}
}

func TestPlanCoverage(t *testing.T) {
	const n = 1 << 21 // 8 regions
	g := gen.PowerLaw(gen.PowerLawConfig{
		N: n, AvgDegree: 4, Alpha: 0.9, HubsClustered: true, Seed: 1,
	})
	p := New(g, 8)
	half := p.PlanCoverage(0.5)
	if half.Coverage < 0.5 {
		t.Fatalf("coverage plan under target: %v", half.Coverage)
	}
	full := p.PlanCoverage(1)
	if len(full.Regions) < len(half.Regions) {
		t.Fatal("higher coverage selected fewer regions")
	}
	// Clustered hubs: half the accesses must need only a small minority
	// of regions.
	if len(half.Regions) > p.Regions/2 {
		t.Fatalf("half coverage needed %d/%d regions despite clustering",
			len(half.Regions), p.Regions)
	}
}

func TestPrefixCurveMonotone(t *testing.T) {
	g := gen.Generate(gen.Kron25, gen.ScaleTest, false)
	p := New(g, 8)
	curve := p.PrefixCurve()
	prev := 0.0
	for i, c := range curve {
		if c < prev-1e-12 {
			t.Fatalf("curve not monotone at %d", i)
		}
		prev = c
	}
	if math.Abs(curve[len(curve)-1]-1) > 1e-9 {
		t.Fatalf("curve end = %v, want 1", curve[len(curve)-1])
	}
}

func TestDBGSteepensPrefixCurve(t *testing.T) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	dbg, _ := reorder.Apply(g, reorder.DBG, 0)
	orig := New(g, 8).PrefixCurve()
	sorted := New(dbg, 8).PrefixCurve()
	if len(orig) < 2 {
		t.Skip("graph too small for multiple regions")
	}
	if sorted[0] <= orig[0] {
		t.Fatalf("DBG did not steepen the curve: %v vs %v", sorted[0], orig[0])
	}
}

func TestGini(t *testing.T) {
	const n = 1 << 21
	uniform := gen.Uniform(n, 4, false, 0, 3)
	skewed := hubGraph(t, n, 0, 8)
	gu := New(uniform, 8).Gini()
	gs := New(skewed, 8).Gini()
	if gu < 0 || gu > 1 || gs < 0 || gs > 1 {
		t.Fatalf("gini out of range: %v %v", gu, gs)
	}
	if gs <= gu {
		t.Fatalf("skewed gini %v not above uniform %v", gs, gu)
	}
}

// TestQuickPlanSubsetInvariants: any budget plan is a subset of regions,
// sorted, deduplicated, with coverage in [0,1].
func TestQuickPlanSubsetInvariants(t *testing.T) {
	g := gen.Generate(gen.Twit, gen.ScaleTest, false)
	p := New(g, 8)
	f := func(budgetMB uint8) bool {
		plan := p.PlanBudget(uint64(budgetMB) << 20)
		last := -1
		for _, r := range plan.Regions {
			if r <= last || r >= p.Regions {
				return false
			}
			last = r
		}
		return plan.Coverage >= 0 && plan.Coverage <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
