// Package profile derives page-size guidance from graph structure: it
// estimates, per 2MB region of the property array, how many accesses the
// push-based kernels will make, and turns a huge page budget into the
// madvise plan that captures the most misses. This is the paper's
// closing direction — "automated software … to exploit these trends" —
// implemented as a static analysis: in push-based kernels the property
// entry of vertex v is touched once per in-edge per relevant iteration,
// so in-degree IS the access-frequency oracle, no runtime profiling
// needed.
//
// The analysis is a pure function of the input graph: it reads only the
// CSR arrays, allocates its own heat and plan slices, and breaks heat
// ties by region index, so concurrent simulation cells profiling the
// same shared *graph.Graph get identical plans without synchronization.
package profile

import (
	"sort"

	"graphmem/internal/graph"
	"graphmem/internal/memsys"
)

// RegionHeat is the estimated access count for one 2MB-aligned region of
// the property array.
type RegionHeat struct {
	Region int
	Heat   uint64
}

// Profile summarizes the property-array access distribution of a graph
// under a given property entry size.
type Profile struct {
	EntryBytes    uint64
	Regions       int
	TotalAccesses uint64
	Heat          []uint64 // per region, index = region number
}

// New builds a profile for a graph whose property entries are entryBytes
// wide (8 for BFS/SSSP, 16 for PageRank).
func New(g *graph.Graph, entryBytes uint64) *Profile {
	perRegion := memsys.HugeSize / entryBytes
	regions := (uint64(g.N) + perRegion - 1) / perRegion
	p := &Profile{
		EntryBytes: entryBytes,
		Regions:    int(regions),
		Heat:       make([]uint64, regions),
	}
	in := g.InDegrees()
	for v, d := range in {
		p.Heat[uint64(v)/perRegion] += uint64(d)
		p.TotalAccesses += uint64(d)
	}
	return p
}

// Hottest returns the regions sorted by descending heat (ties by lower
// region number, so results are deterministic).
func (p *Profile) Hottest() []RegionHeat {
	rs := make([]RegionHeat, p.Regions)
	for i, h := range p.Heat {
		rs[i] = RegionHeat{Region: i, Heat: h}
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].Heat != rs[b].Heat {
			return rs[a].Heat > rs[b].Heat
		}
		return rs[a].Region < rs[b].Region
	})
	return rs
}

// Plan is a set of property-array regions to madvise(MADV_HUGEPAGE).
type Plan struct {
	Regions []int // ascending region numbers
	// Coverage is the fraction of estimated property accesses the
	// selected regions capture.
	Coverage float64
}

// PlanBudget selects the highest-heat regions that fit within a huge
// page budget of budgetBytes, mirroring what a programmer would do with
// the paper's §5.2 guidance if they could only afford N huge pages.
func (p *Profile) PlanBudget(budgetBytes uint64) Plan {
	n := int(budgetBytes / memsys.HugeSize)
	if n > p.Regions {
		n = p.Regions
	}
	if n <= 0 {
		return Plan{}
	}
	hottest := p.Hottest()[:n]
	var plan Plan
	var captured uint64
	for _, rh := range hottest {
		plan.Regions = append(plan.Regions, rh.Region)
		captured += rh.Heat
	}
	sort.Ints(plan.Regions)
	if p.TotalAccesses > 0 {
		plan.Coverage = float64(captured) / float64(p.TotalAccesses)
	}
	return plan
}

// PlanCoverage selects the fewest hottest regions that capture at least
// `coverage` (0..1] of the estimated accesses — the dual of PlanBudget.
func (p *Profile) PlanCoverage(coverage float64) Plan {
	if coverage <= 0 {
		return Plan{}
	}
	if coverage > 1 {
		coverage = 1
	}
	target := uint64(coverage * float64(p.TotalAccesses))
	var plan Plan
	var captured uint64
	for _, rh := range p.Hottest() {
		if captured >= target && len(plan.Regions) > 0 {
			break
		}
		plan.Regions = append(plan.Regions, rh.Region)
		captured += rh.Heat
	}
	sort.Ints(plan.Regions)
	if p.TotalAccesses > 0 {
		plan.Coverage = float64(captured) / float64(p.TotalAccesses)
	}
	return plan
}

// PrefixCurve returns the cumulative access coverage of region prefixes:
// element i is the coverage of regions [0, i]. A steep curve (after DBG)
// means a small madvise prefix suffices; a flat curve (scattered hubs)
// means prefix advice is wasted without reordering.
func (p *Profile) PrefixCurve() []float64 {
	out := make([]float64, p.Regions)
	var acc uint64
	for i, h := range p.Heat {
		acc += h
		if p.TotalAccesses > 0 {
			out[i] = float64(acc) / float64(p.TotalAccesses)
		}
	}
	return out
}

// Gini returns the Gini coefficient of the per-region heat distribution
// in [0,1]: 0 means uniform heat (selective THP can't beat a prefix),
// values near 1 mean a few regions dominate (selective THP shines).
func (p *Profile) Gini() float64 {
	if p.Regions == 0 || p.TotalAccesses == 0 {
		return 0
	}
	heat := append([]uint64(nil), p.Heat...)
	sort.Slice(heat, func(a, b int) bool { return heat[a] < heat[b] })
	var cum, weighted float64
	for i, h := range heat {
		cum += float64(h)
		weighted += cum
		_ = i
	}
	n := float64(len(heat))
	total := float64(p.TotalAccesses)
	// Gini = (n + 1 - 2 * sum(cumshare)/total) / n
	return (n + 1 - 2*weighted/total) / n
}
