package profile_test

import (
	"fmt"

	"graphmem/internal/graph"
	"graphmem/internal/profile"
)

// ExampleProfile_PlanBudget shows static huge page planning: a graph
// whose hot vertices all live in one 2MB region needs exactly one huge
// page to cover all irregular accesses.
func ExampleProfile_PlanBudget() {
	// 512K vertices = two 2MB regions of 8-byte property entries; every
	// edge targets the second region.
	const n = 512 << 10
	var edges []graph.Edge
	for i := 0; i < 1000; i++ {
		edges = append(edges, graph.Edge{
			Src: uint32(i),
			Dst: uint32(n/2 + i), // region 1
		})
	}
	g, err := graph.FromEdges(n, edges, false)
	if err != nil {
		panic(err)
	}

	p := profile.New(g, 8)
	plan := p.PlanBudget(2 << 20) // budget: one huge page
	fmt.Println("regions chosen:", plan.Regions)
	fmt.Printf("coverage: %.0f%%\n", plan.Coverage*100)
	// Output:
	// regions chosen: [1]
	// coverage: 100%
}
