// Package graph provides the Compressed Sparse Row graph representation
// used by every workload in the paper: a vertex (offset) array, an edge
// (neighbor) array, an optional values (weight) array, and — at run time
// — a property array owned by the algorithm.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Element sizes in bytes, used for footprint computations and simulated
// address arithmetic. They match the paper's data layout: 8-byte vertex
// offsets, 4-byte neighbor IDs, 4-byte edge weights, 8-byte property
// entries.
const (
	VertexEntryBytes = 8
	EdgeEntryBytes   = 4
	ValueEntryBytes  = 4
	PropEntryBytes   = 8
)

// Edge is one directed edge with an optional weight.
type Edge struct {
	Src, Dst uint32
	Weight   uint32
}

// Graph is a directed graph in CSR form. Offsets has N+1 entries;
// Neighbors[Offsets[v]:Offsets[v+1]] are v's out-neighbors. Weights is
// either nil (unweighted) or parallel to Neighbors.
type Graph struct {
	N         int
	Offsets   []uint64
	Neighbors []uint32
	Weights   []uint32
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Neighbors) }

// OutDegree returns v's out-degree.
func (g *Graph) OutDegree(v uint32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.N)
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.Weights != nil }

// FootprintBytes returns the graph's resident data size plus the
// property array an algorithm would allocate — the paper's "memory
// footprint" for one application/dataset configuration.
func (g *Graph) FootprintBytes() uint64 {
	b := uint64(len(g.Offsets)) * VertexEntryBytes
	b += uint64(len(g.Neighbors)) * EdgeEntryBytes
	if g.Weights != nil {
		b += uint64(len(g.Weights)) * ValueEntryBytes
	}
	b += uint64(g.N) * PropEntryBytes
	return b
}

// InDegrees computes the in-degree of every vertex. In push-based
// kernels the property array entry for vertex v is touched once per
// in-edge, so in-degree is the access-frequency ("hotness") signal the
// paper's preprocessing bins on.
func (g *Graph) InDegrees() []uint32 {
	in := make([]uint32, g.N)
	for _, w := range g.Neighbors {
		in[w]++
	}
	return in
}

// FromEdges builds a CSR graph from an edge list over n vertices. Edges
// are kept in input order within each source bucket (counting sort), so
// construction is deterministic. weighted controls whether the Weights
// array is materialized (from Edge.Weight).
func FromEdges(n int, edges []Edge, weighted bool) (*Graph, error) {
	if n <= 0 {
		return nil, errors.New("graph: non-positive vertex count")
	}
	g := &Graph{
		N:         n,
		Offsets:   make([]uint64, n+1),
		Neighbors: make([]uint32, len(edges)),
	}
	if weighted {
		g.Weights = make([]uint32, len(edges))
	}
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.Src, e.Dst, n)
		}
		g.Offsets[e.Src+1]++
	}
	for v := 0; v < n; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	cursor := make([]uint64, n)
	copy(cursor, g.Offsets[:n])
	for _, e := range edges {
		i := cursor[e.Src]
		cursor[e.Src]++
		g.Neighbors[i] = e.Dst
		if weighted {
			g.Weights[i] = e.Weight
		}
	}
	return g, nil
}

// Validate checks CSR structural invariants.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d != N+1=%d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 {
		return errors.New("graph: offsets[0] != 0")
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	if g.Offsets[g.N] != uint64(len(g.Neighbors)) {
		return fmt.Errorf("graph: offsets[N]=%d != edges=%d", g.Offsets[g.N], len(g.Neighbors))
	}
	for i, w := range g.Neighbors {
		if int(w) >= g.N {
			return fmt.Errorf("graph: neighbor %d at %d out of range", w, i)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Neighbors) {
		return fmt.Errorf("graph: weights length %d != edges %d", len(g.Weights), len(g.Neighbors))
	}
	return nil
}

// Relabel returns a new graph where every vertex v becomes perm[v].
// perm must be a bijection on [0,N). Neighbor lists of the new graph are
// sorted to keep the result canonical.
func (g *Graph) Relabel(perm []uint32) (*Graph, error) {
	if len(perm) != g.N {
		return nil, fmt.Errorf("graph: perm length %d != N %d", len(perm), g.N)
	}
	seen := make([]bool, g.N)
	for _, p := range perm {
		if int(p) >= g.N || seen[p] {
			return nil, errors.New("graph: perm is not a bijection")
		}
		seen[p] = true
	}
	ng := &Graph{
		N:         g.N,
		Offsets:   make([]uint64, g.N+1),
		Neighbors: make([]uint32, len(g.Neighbors)),
	}
	if g.Weights != nil {
		ng.Weights = make([]uint32, len(g.Weights))
	}
	// New degree of perm[v] = old degree of v.
	for v := 0; v < g.N; v++ {
		ng.Offsets[perm[v]+1] = g.Offsets[v+1] - g.Offsets[v]
	}
	for v := 0; v < g.N; v++ {
		ng.Offsets[v+1] += ng.Offsets[v]
	}
	for v := 0; v < g.N; v++ {
		nv := perm[v]
		dst := ng.Offsets[nv]
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			ng.Neighbors[dst] = perm[g.Neighbors[i]]
			if g.Weights != nil {
				ng.Weights[dst] = g.Weights[i]
			}
			dst++
		}
		// Sort each adjacency run (with weights attached) for a
		// canonical result.
		lo, hi := ng.Offsets[nv], ng.Offsets[nv+1]
		if ng.Weights == nil {
			s := ng.Neighbors[lo:hi]
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		} else {
			idx := make([]int, hi-lo)
			for i := range idx {
				idx[i] = i
			}
			nb, wt := ng.Neighbors[lo:hi], ng.Weights[lo:hi]
			sort.Slice(idx, func(a, b int) bool { return nb[idx[a]] < nb[idx[b]] })
			nb2 := make([]uint32, len(nb))
			wt2 := make([]uint32, len(wt))
			for i, j := range idx {
				nb2[i], wt2[i] = nb[j], wt[j]
			}
			copy(nb, nb2)
			copy(wt, wt2)
		}
	}
	return ng, nil
}

// MaxDegreeVertex returns the vertex with the largest out-degree
// (lowest ID wins ties); it is the canonical BFS/SSSP root in the
// experiments, guaranteeing a large traversal.
func (g *Graph) MaxDegreeVertex() uint32 {
	best, bestDeg := uint32(0), -1
	for v := 0; v < g.N; v++ {
		d := g.OutDegree(uint32(v))
		if d > bestDeg {
			best, bestDeg = uint32(v), d
		}
	}
	return best
}
