package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary graph container format ("GMG1"): a little-endian header
// followed by the raw CSR arrays. The format exists so generated
// datasets can be produced once by cmd/gengraph and reused across
// experiment runs.
//
//	magic    [4]byte  "GMG1"
//	flags    uint32   bit0: weighted
//	n        uint64   vertices
//	m        uint64   edges
//	offsets  (n+1) × uint64
//	neighbors m × uint32
//	weights  m × uint32  (only if weighted)
var magic = [4]byte{'G', 'M', 'G', '1'}

const flagWeighted = 1

// Write serializes g to w.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	if err := binary.Write(bw, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.N)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumEdges())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Neighbors); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a graph written by Write and validates it.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("graph: bad magic (not a GMG1 file)")
	}
	var flags uint32
	var n, edges uint64
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &edges); err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 33
	if n == 0 || n > maxReasonable || edges > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, edges)
	}
	g := &Graph{
		N:         int(n),
		Offsets:   make([]uint64, n+1),
		Neighbors: make([]uint32, edges),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Neighbors); err != nil {
		return nil, err
	}
	if flags&flagWeighted != 0 {
		g.Weights = make([]uint32, edges)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
