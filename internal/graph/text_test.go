package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
0 1
1 2
% another comment style

2 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 3 || g.Weighted() {
		t.Fatalf("N=%d M=%d weighted=%v", g.N, g.NumEdges(), g.Weighted())
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	in := "0 1 5\n1 0\n" // mixed: missing weight defaults to 1
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weights not detected")
	}
	if g.Weights[g.Offsets[0]] != 5 || g.Weights[g.Offsets[1]] != 1 {
		t.Fatalf("weights = %v", g.Weights)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{
		"",                // empty
		"0\n",             // too few columns
		"0 1 2 3\n",       // too many
		"a b\n",           // non-numeric
		"0 -5\n",          // negative
		"0 1 notanum\n",   // bad weight
		"99999999999 1\n", // out of range
	} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := tiny(t, weighted)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// The tiny graph has max vertex 4 and all vertices appear in
		// edges, so the round trip is exact.
		if !reflect.DeepEqual(edgeSet(g), edgeSet(got)) {
			t.Fatalf("round trip mismatch (weighted=%v)", weighted)
		}
	}
}
