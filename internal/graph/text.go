package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list interop (SNAP / Graph500 style): one "src dst [weight]"
// line per edge, '#' comments. This lets the tools ingest real datasets
// (the paper's Twitter/Sd1/Wikipedia inputs ship in this shape) in place
// of the generated analogues.

// ReadEdgeList parses a whitespace-separated edge list. Vertex IDs may
// be arbitrary non-negative integers; they are kept as-is, with the
// vertex count set by the maximum ID seen (plus one). If any line
// carries a third column, the graph is weighted and lines missing
// weights default to weight 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	weighted := false
	maxID := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		if src < 0 || dst < 0 || src > 1<<31 || dst > 1<<31 {
			return nil, fmt.Errorf("graph: line %d: vertex ID out of range", lineNo)
		}
		e := Edge{Src: uint32(src), Dst: uint32(dst), Weight: 1}
		if len(fields) == 3 {
			w, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
			e.Weight = uint32(w)
			weighted = true
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxID < 0 {
		return nil, errors.New("graph: empty edge list")
	}
	return FromEdges(int(maxID+1), edges, weighted)
}

// WriteEdgeList emits the graph as a text edge list (with weights when
// present).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# graphmem edge list: %d vertices, %d edges\n", g.N, g.NumEdges())
	for v := 0; v < g.N; v++ {
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			if g.Weighted() {
				fmt.Fprintf(bw, "%d %d %d\n", v, g.Neighbors[i], g.Weights[i])
			} else {
				fmt.Fprintf(bw, "%d %d\n", v, g.Neighbors[i])
			}
		}
	}
	return bw.Flush()
}
