package graph

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the GMG1 parser: arbitrary bytes must produce either
// a valid graph or an error — never a panic or runaway allocation.
func FuzzRead(f *testing.F) {
	// Seed with a valid file and some truncations of it.
	g, err := FromEdges(4, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2, Weight: 3}}, true)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("GMG1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Read returned an invalid graph: %v", err)
		}
	})
}

// FuzzRelabel hardens the permutation validator.
func FuzzRelabel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, permBytes []byte) {
		g, err := FromEdges(4, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}, false)
		if err != nil {
			t.Fatal(err)
		}
		perm := make([]uint32, len(permBytes))
		for i, b := range permBytes {
			perm[i] = uint32(b)
		}
		ng, err := g.Relabel(perm)
		if err != nil {
			return // rejected, fine
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("Relabel accepted bad perm and produced invalid graph: %v", err)
		}
	})
}
