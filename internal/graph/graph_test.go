package graph

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// tiny returns the CSR of the 5-vertex example network used throughout:
// 0→{1,2}, 1→{2}, 2→{3,4}, 3→{}, 4→{0}.
func tiny(t *testing.T, weighted bool) *Graph {
	t.Helper()
	edges := []Edge{
		{0, 1, 10}, {0, 2, 20}, {1, 2, 5}, {2, 3, 1}, {2, 4, 2}, {4, 0, 7},
	}
	g, err := FromEdges(5, edges, weighted)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasics(t *testing.T) {
	g := tiny(t, true)
	if g.N != 5 || g.NumEdges() != 6 {
		t.Fatalf("N=%d M=%d", g.N, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantOff := []uint64{0, 2, 3, 5, 5, 6}
	if !reflect.DeepEqual(g.Offsets, wantOff) {
		t.Fatalf("offsets = %v, want %v", g.Offsets, wantOff)
	}
	if g.OutDegree(2) != 2 || g.OutDegree(3) != 0 {
		t.Fatal("degrees wrong")
	}
	if g.AvgDegree() != 1.2 {
		t.Fatalf("avg degree = %v", g.AvgDegree())
	}
	if !g.Weighted() {
		t.Fatal("weights missing")
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(0, nil, false); err == nil {
		t.Fatal("accepted zero vertices")
	}
	if _, err := FromEdges(2, []Edge{{0, 5, 0}}, false); err == nil {
		t.Fatal("accepted out-of-range edge")
	}
}

func TestInDegrees(t *testing.T) {
	g := tiny(t, false)
	in := g.InDegrees()
	want := []uint32{1, 1, 2, 1, 1}
	if !reflect.DeepEqual(in, want) {
		t.Fatalf("in-degrees = %v, want %v", in, want)
	}
}

func TestFootprintBytes(t *testing.T) {
	g := tiny(t, true)
	want := uint64(6*VertexEntryBytes + 6*EdgeEntryBytes + 6*ValueEntryBytes + 5*PropEntryBytes)
	if g.FootprintBytes() != want {
		t.Fatalf("footprint = %d, want %d", g.FootprintBytes(), want)
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := tiny(t, false)
	// Vertices 0 and 2 both have out-degree 2; the lowest ID wins.
	if got := g.MaxDegreeVertex(); got != 0 {
		t.Fatalf("MaxDegreeVertex = %d", got)
	}
}

// edgeSet canonicalizes a graph to a sorted (src,dst,weight) list.
func edgeSet(g *Graph) [][3]uint32 {
	var out [][3]uint32
	for v := 0; v < g.N; v++ {
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			w := uint32(0)
			if g.Weights != nil {
				w = g.Weights[i]
			}
			out = append(out, [3]uint32{uint32(v), g.Neighbors[i], w})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		if out[a][1] != out[b][1] {
			return out[a][1] < out[b][1]
		}
		return out[a][2] < out[b][2]
	})
	return out
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := tiny(t, true)
	perm := []uint32{4, 3, 2, 1, 0} // reverse
	ng, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mapping edges through perm must give the same edge set.
	want := edgeSet(g)
	for i := range want {
		want[i][0] = perm[want[i][0]]
		want[i][1] = perm[want[i][1]]
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a][0] != want[b][0] {
			return want[a][0] < want[b][0]
		}
		if want[a][1] != want[b][1] {
			return want[a][1] < want[b][1]
		}
		return want[a][2] < want[b][2]
	})
	if got := edgeSet(ng); !reflect.DeepEqual(got, want) {
		t.Fatalf("relabelled edges = %v, want %v", got, want)
	}
}

func TestRelabelRejectsNonBijection(t *testing.T) {
	g := tiny(t, false)
	if _, err := g.Relabel([]uint32{0, 0, 1, 2, 3}); err == nil {
		t.Fatal("accepted duplicate mapping")
	}
	if _, err := g.Relabel([]uint32{0, 1, 2}); err == nil {
		t.Fatal("accepted short permutation")
	}
	if _, err := g.Relabel([]uint32{0, 1, 2, 3, 9}); err == nil {
		t.Fatal("accepted out-of-range mapping")
	}
}

func TestIORoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := tiny(t, weighted)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, got) {
			t.Fatalf("round trip mismatch (weighted=%v)", weighted)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a graph"))); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}

// TestQuickFromEdgesPreservesEdges: CSR construction preserves the edge
// multiset for arbitrary edge lists.
func TestQuickFromEdgesPreservesEdges(t *testing.T) {
	f := func(raw []uint32) bool {
		const n = 16
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Src: raw[i] % n, Dst: raw[i+1] % n})
		}
		g, err := FromEdges(n, edges, false)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		if g.NumEdges() != len(edges) {
			return false
		}
		// Per-source degree must match.
		deg := make([]uint64, n)
		for _, e := range edges {
			deg[e.Src]++
		}
		for v := 0; v < n; v++ {
			if g.Offsets[v+1]-g.Offsets[v] != deg[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRelabelRoundTrip: relabelling by perm then by its inverse
// yields the original edge set.
func TestQuickRelabelRoundTrip(t *testing.T) {
	f := func(raw []uint32, seed uint64) bool {
		const n = 12
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Src: raw[i] % n, Dst: raw[i+1] % n, Weight: raw[i] % 7})
		}
		g, err := FromEdges(n, edges, true)
		if err != nil {
			return false
		}
		// Build a permutation from the seed (rotation).
		perm := make([]uint32, n)
		inv := make([]uint32, n)
		for i := range perm {
			perm[i] = uint32((uint64(i) + seed) % n)
			inv[perm[i]] = uint32(i)
		}
		ng, err := g.Relabel(perm)
		if err != nil {
			return false
		}
		back, err := ng.Relabel(inv)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(edgeSet(g), edgeSet(back))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
