package gen

import (
	"graphmem/internal/check"
	"graphmem/internal/graph"
)

// Dataset names the four networks of Table 2.
type Dataset string

const (
	Kron25 Dataset = "kr25" // synthetic power-law, scattered hubs
	Twit   Dataset = "twit" // social network, clustered hubs
	Web    Dataset = "web"  // web graph, clustered hubs + link locality
	Wiki   Dataset = "wiki" // small social network, clustered hubs
)

// AllDatasets lists the evaluation networks in the paper's order.
var AllDatasets = []Dataset{Kron25, Twit, Web, Wiki}

// Scale selects dataset size. The paper's networks are 12M–95M vertices
// against a 6MB-reach STLB; simulating that volume per experiment is
// wasteful, so each scale preserves the footprint-to-TLB-reach ratio's
// order of magnitude instead of the absolute size.
type Scale int

const (
	// ScaleTest is for unit tests: tiny graphs, milliseconds per run.
	ScaleTest Scale = iota
	// ScaleBench is for `go test -bench`: small enough to sweep.
	ScaleBench
	// ScaleFull is for the experiment driver: property arrays several
	// times the STLB reach, edge arrays tens of times larger.
	ScaleFull
)

// params maps (dataset, scale) to generator parameters.
type params struct {
	kind      Dataset
	logN      int // Kronecker scale or log2 of N
	n         int // used when not power-of-two
	deg       int
	alpha     float64
	clustered bool
	locality  float64
	localWin  int
}

func paramsFor(d Dataset, s Scale) params {
	p := params{kind: d}
	switch d {
	case Kron25:
		p.alpha = 0 // RMAT path
		switch s {
		case ScaleTest:
			p.logN, p.deg = 12, 8
		case ScaleBench:
			p.logN, p.deg = 16, 12
		default:
			p.logN, p.deg = 20, 16
		}
		p.n = 1 << p.logN
	case Twit:
		p.alpha, p.clustered = 0.75, true
		switch s {
		case ScaleTest:
			p.n, p.deg = 5000, 8
		case ScaleBench:
			p.n, p.deg = 80_000, 12
		default:
			p.n, p.deg = 1_300_000, 18
		}
	case Web:
		p.alpha, p.clustered = 0.65, true
		p.locality, p.localWin = 0.5, 256
		switch s {
		case ScaleTest:
			p.n, p.deg = 8000, 6
		case ScaleBench:
			p.n, p.deg = 120_000, 8
		default:
			p.n, p.deg = 2_000_000, 10
		}
	case Wiki:
		p.alpha, p.clustered = 0.8, true
		switch s {
		case ScaleTest:
			p.n, p.deg = 3000, 8
		case ScaleBench:
			p.n, p.deg = 40_000, 12
		default:
			// Large enough that the property array spans several 2MB
			// regions (needed by the selectivity sweep), while staying
			// the smallest network, as Wikipedia is in Table 2.
			p.n, p.deg = 640_000, 15
		}
	default:
		panic(check.Failf("gen: unknown dataset %q", d))
	}
	return p
}

// Generate materializes a dataset at the given scale. weighted adds the
// values array needed by SSSP. The seed is fixed per dataset so every
// experiment sees identical inputs.
func Generate(d Dataset, s Scale, weighted bool) *graph.Graph {
	p := paramsFor(d, s)
	const maxWeight = 8
	seed := uint64(0xC0FFEE) ^ uint64(len(d))<<32 ^ uint64(d[0])<<16 ^ uint64(s)
	if d == Kron25 {
		return Kronecker(p.logN, p.deg, weighted, maxWeight, seed)
	}
	return PowerLaw(PowerLawConfig{
		N:              p.n,
		AvgDegree:      p.deg,
		Alpha:          p.alpha,
		HubsClustered:  p.clustered,
		Locality:       p.locality,
		LocalityWindow: p.localWin,
		Weighted:       weighted,
		MaxWeight:      maxWeight,
		Seed:           seed,
	})
}
