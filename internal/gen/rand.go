package gen

import "graphmem/internal/check"

// rng is a SplitMix64 pseudo-random generator: tiny, fast, and fully
// deterministic across platforms, which the experiment harness requires
// (math/rand would also work but carries global-state hazards).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	return &rng{state: seed + 0x9E3779B97F4A7C15}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0,1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic(check.Failf("gen: intn with non-positive n"))
	}
	return int(r.next() % uint64(n))
}

// perm returns a random permutation of [0,n) as uint32s
// (Fisher–Yates).
func (r *rng) perm(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
