// Package gen produces the synthetic input networks for the experiment
// suite. The paper evaluates one synthetic power-law network (Kronecker
// scale-25) and three real networks (Twitter, Sd1 Arc, Wikipedia); real
// traces are not redistributable at simulation scale, so each real
// network is replaced by a generated analogue that preserves the two
// properties the paper's results hinge on:
//
//  1. the degree distribution's skew (a small hot set dominates property
//     array accesses), and
//  2. how clustered the hot vertices are in vertex-ID space (Kronecker
//     hubs are scattered by the Graph500 relabeling, so DBG helps;
//     Twitter/Wikipedia hubs arrive with low, adjacent IDs, so DBG is
//     nearly a no-op — exactly the behaviour in Fig. 10).
//
// All generators are deterministic in their seed.
package gen

import (
	"math"

	"graphmem/internal/check"
	"graphmem/internal/graph"
)

// Kronecker generates an RMAT/Kronecker graph of 2^scale vertices with
// edgeFactor edges per vertex, using the Graph500 initiator
// probabilities (A=0.57, B=0.19, C=0.19) and the Graph500 random vertex
// relabeling that scatters hubs across the ID space. If weighted, edge
// weights are uniform in [1, maxWeight].
func Kronecker(scale, edgeFactor int, weighted bool, maxWeight uint32, seed uint64) *graph.Graph {
	n := 1 << scale
	m := n * edgeFactor
	r := newRNG(seed)
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		var src, dst int
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.float64()
			switch {
			case p < a:
				// top-left: neither bit set
			case p < a+b:
				dst |= 1 << bit
			case p < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		e := graph.Edge{Src: uint32(src), Dst: uint32(dst)}
		if weighted {
			e.Weight = uint32(r.intn(int(maxWeight))) + 1
		}
		edges = append(edges, e)
	}
	// Graph500 step: relabel vertices with a random permutation so that
	// hub IDs are uncorrelated with vertex position.
	perm := r.perm(n)
	for i := range edges {
		edges[i].Src = perm[edges[i].Src]
		edges[i].Dst = perm[edges[i].Dst]
	}
	g, err := graph.FromEdges(n, edges, weighted)
	if err != nil {
		panic(check.Failf("gen: %v", err)) // generator bug, not an input error
	}
	return g
}

// PowerLawConfig drives the configurable power-law generator used for
// the real-network analogues.
type PowerLawConfig struct {
	N         int     // vertices
	AvgDegree int     // mean out-degree
	Alpha     float64 // Zipf exponent of the degree distribution (≈0.6–1.0)
	// HubsClustered places the high-degree vertices at low adjacent IDs
	// (natural community structure, Twitter/Wikipedia-like). When
	// false, hub positions are scattered randomly (Kronecker-like).
	HubsClustered bool
	// Locality in [0,1) is the probability that an edge's destination
	// is drawn from a window near the source ID rather than from the
	// global degree-weighted distribution; it models the link locality
	// of web graphs.
	Locality float64
	// LocalityWindow is the half-width of the near-ID window.
	LocalityWindow int

	Weighted  bool
	MaxWeight uint32

	Seed uint64
}

// PowerLaw generates a directed graph by a Chung–Lu-style process: each
// vertex gets a Zipf target weight, destinations are sampled with
// probability proportional to weight, and sources are sampled the same
// way, so in- and out-degree distributions are both skewed.
func PowerLaw(cfg PowerLawConfig) *graph.Graph {
	n := cfg.N
	if n <= 1 {
		panic(check.Failf("gen: PowerLaw needs at least two vertices"))
	}
	m := n * cfg.AvgDegree
	r := newRNG(cfg.Seed)

	// Zipf weights over ranks; rank→vertex assignment controls hub
	// placement.
	weights := make([]float64, n)
	var total float64
	for rank := 0; rank < n; rank++ {
		w := 1 / math.Pow(float64(rank+1), cfg.Alpha)
		weights[rank] = w
		total += w
	}
	// cum[i] is the cumulative weight up to rank i, for inverse-CDF
	// sampling via binary search.
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	rankToVertex := make([]uint32, n)
	if cfg.HubsClustered {
		for i := range rankToVertex {
			rankToVertex[i] = uint32(i) // rank 0 (hottest) = vertex 0
		}
	} else {
		perm := r.perm(n)
		copy(rankToVertex, perm)
	}

	sampleRank := func() int {
		x := r.float64() * total
		// Binary search the cumulative array.
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		src := rankToVertex[sampleRank()]
		var dst uint32
		if cfg.Locality > 0 && r.float64() < cfg.Locality {
			// Destination near the source in ID space.
			w := cfg.LocalityWindow
			if w < 1 {
				w = 64
			}
			off := r.intn(2*w+1) - w
			d := int(src) + off
			if d < 0 {
				d += n
			}
			if d >= n {
				d -= n
			}
			dst = uint32(d)
		} else {
			dst = rankToVertex[sampleRank()]
		}
		e := graph.Edge{Src: src, Dst: dst}
		if cfg.Weighted {
			e.Weight = uint32(r.intn(int(cfg.MaxWeight))) + 1
		}
		edges = append(edges, e)
	}
	g, err := graph.FromEdges(n, edges, cfg.Weighted)
	if err != nil {
		panic(check.Failf("gen: %v", err))
	}
	return g
}

// Uniform generates an Erdős–Rényi-style graph (no skew); useful as a
// control in tests.
func Uniform(n, avgDegree int, weighted bool, maxWeight uint32, seed uint64) *graph.Graph {
	r := newRNG(seed)
	m := n * avgDegree
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		e := graph.Edge{Src: uint32(r.intn(n)), Dst: uint32(r.intn(n))}
		if weighted {
			e.Weight = uint32(r.intn(int(maxWeight))) + 1
		}
		edges = append(edges, e)
	}
	g, err := graph.FromEdges(n, edges, weighted)
	if err != nil {
		panic(check.Failf("gen: %v", err))
	}
	return g
}

// Grid generates a 2D grid ("road network") of w×h vertices with edges
// to the four neighbours. Grids are the structural opposite of the
// paper's power-law networks — uniform degree, huge diameter, perfect
// spatial locality — and serve as the negative control: selective THP
// and DBG should buy almost nothing here, because no vertex is hotter
// than any other.
func Grid(w, h int, weighted bool, maxWeight uint32, seed uint64) *graph.Graph {
	if w < 2 || h < 2 {
		panic(check.Failf("gen: Grid needs at least 2x2"))
	}
	r := newRNG(seed)
	n := w * h
	edges := make([]graph.Edge, 0, 4*n)
	id := func(x, y int) uint32 { return uint32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var nbrs []uint32
			if x+1 < w {
				nbrs = append(nbrs, id(x+1, y))
			}
			if x > 0 {
				nbrs = append(nbrs, id(x-1, y))
			}
			if y+1 < h {
				nbrs = append(nbrs, id(x, y+1))
			}
			if y > 0 {
				nbrs = append(nbrs, id(x, y-1))
			}
			for _, nb := range nbrs {
				e := graph.Edge{Src: id(x, y), Dst: nb}
				if weighted {
					e.Weight = uint32(r.intn(int(maxWeight))) + 1
				}
				edges = append(edges, e)
			}
		}
	}
	g, err := graph.FromEdges(n, edges, weighted)
	if err != nil {
		panic(check.Failf("gen: %v", err))
	}
	return g
}
