package gen

import (
	"reflect"
	"sort"
	"testing"

	"graphmem/internal/graph"
)

func TestKroneckerDeterministic(t *testing.T) {
	a := Kronecker(10, 8, true, 8, 42)
	b := Kronecker(10, 8, true, 8, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different graphs")
	}
	c := Kronecker(10, 8, true, 8, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestKroneckerShape(t *testing.T) {
	g := Kronecker(12, 8, false, 0, 1)
	if g.N != 1<<12 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() != g.N*8 {
		t.Fatalf("M = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("unexpected weights")
	}
}

func TestKroneckerWeightsInRange(t *testing.T) {
	g := Kronecker(10, 8, true, 8, 7)
	for _, w := range g.Weights {
		if w < 1 || w > 8 {
			t.Fatalf("weight %d out of [1,8]", w)
		}
	}
}

// skew returns the fraction of in-edges pointing at the hottest 1% of
// vertices.
func skew(g *graph.Graph) float64 {
	in := g.InDegrees()
	sorted := append([]uint32(nil), in...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	cut := len(sorted) / 100
	if cut == 0 {
		cut = 1
	}
	var hot, all uint64
	for i, d := range sorted {
		all += uint64(d)
		if i < cut {
			hot += uint64(d)
		}
	}
	return float64(hot) / float64(all)
}

func TestKroneckerIsSkewed(t *testing.T) {
	g := Kronecker(14, 16, false, 0, 1)
	if s := skew(g); s < 0.10 {
		t.Fatalf("Kronecker hot-1%% share = %.3f, want power-law skew", s)
	}
	u := Uniform(1<<14, 16, false, 0, 1)
	if su, sk := skew(u), skew(g); su >= sk {
		t.Fatalf("uniform skew %.3f >= kronecker skew %.3f", su, sk)
	}
}

func TestPowerLawSkewAndClustering(t *testing.T) {
	base := PowerLawConfig{N: 10000, AvgDegree: 12, Alpha: 0.8, Seed: 5}

	clustered := base
	clustered.HubsClustered = true
	gc := PowerLaw(clustered)
	if err := gc.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := skew(gc); s < 0.15 {
		t.Fatalf("power-law skew = %.3f, too flat", s)
	}

	// With clustered hubs, the first 5% of vertex IDs must absorb far
	// more in-edges than under scattered hubs.
	scattered := base
	scattered.HubsClustered = false
	gs := PowerLaw(scattered)

	prefixShare := func(g *graph.Graph) float64 {
		in := g.InDegrees()
		cut := g.N / 20
		var pre, all uint64
		for v, d := range in {
			all += uint64(d)
			if v < cut {
				pre += uint64(d)
			}
		}
		return float64(pre) / float64(all)
	}
	pc, ps := prefixShare(gc), prefixShare(gs)
	if pc < 2*ps {
		t.Fatalf("clustered prefix share %.3f not >> scattered %.3f", pc, ps)
	}
}

func TestPowerLawLocality(t *testing.T) {
	cfg := PowerLawConfig{
		N: 20000, AvgDegree: 10, Alpha: 0.6, HubsClustered: true,
		Locality: 0.8, LocalityWindow: 64, Seed: 9,
	}
	g := PowerLaw(cfg)
	near := 0
	for v := 0; v < g.N; v++ {
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			d := int(g.Neighbors[i]) - v
			if d < 0 {
				d = -d
			}
			if d <= 64 || d >= g.N-64 {
				near++
			}
		}
	}
	frac := float64(near) / float64(g.NumEdges())
	if frac < 0.5 {
		t.Fatalf("near-ID edge fraction = %.3f, locality not applied", frac)
	}
}

func TestGenerateAllDatasets(t *testing.T) {
	for _, d := range AllDatasets {
		for _, weighted := range []bool{false, true} {
			g := Generate(d, ScaleTest, weighted)
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: %v", d, err)
			}
			if g.Weighted() != weighted {
				t.Fatalf("%s: weighted = %v", d, g.Weighted())
			}
			if g.N < 1000 {
				t.Fatalf("%s: suspiciously small (%d)", d, g.N)
			}
		}
	}
}

func TestGenerateDeterministicPerDataset(t *testing.T) {
	a := Generate(Wiki, ScaleTest, false)
	b := Generate(Wiki, ScaleTest, false)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("dataset generation not deterministic")
	}
}

func TestScaleOrdering(t *testing.T) {
	small := Generate(Twit, ScaleTest, false)
	mid := Generate(Twit, ScaleBench, false)
	if small.N >= mid.N {
		t.Fatalf("scales not increasing: %d >= %d", small.N, mid.N)
	}
}

func TestRNGUniformish(t *testing.T) {
	r := newRNG(123)
	var buckets [8]int
	for i := 0; i < 8000; i++ {
		buckets[r.intn(8)]++
	}
	for i, b := range buckets {
		if b < 800 || b > 1200 {
			t.Fatalf("bucket %d = %d, grossly non-uniform", i, b)
		}
	}
}

func TestPermIsBijection(t *testing.T) {
	r := newRNG(77)
	p := r.perm(1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in permutation")
		}
		seen[v] = true
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(20, 10, false, 0, 1)
	if g.N != 200 {
		t.Fatalf("N = %d", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior vertices have degree 4; corners 2.
	if g.OutDegree(0) != 2 {
		t.Fatalf("corner degree = %d", g.OutDegree(0))
	}
	if d := g.OutDegree(uint32(5*20 + 5)); d != 4 {
		t.Fatalf("interior degree = %d", d)
	}
	// Uniform degrees: no skew at all.
	if s := skew(g); s > 0.03 {
		t.Fatalf("grid skew = %.3f, want ~uniform", s)
	}
}

func TestGridIsNegativeControlForDBG(t *testing.T) {
	g := Grid(64, 64, false, 0, 1)
	// Hot-prefix coverage of a grid is proportional to the prefix:
	// there is nothing for DBG to concentrate.
	in := g.InDegrees()
	var pre, all uint64
	cut := g.N / 10
	for v, d := range in {
		all += uint64(d)
		if v < cut {
			pre += uint64(d)
		}
	}
	frac := float64(pre) / float64(all)
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("grid prefix coverage = %.3f, want ≈ prefix size", frac)
	}
}

func TestGridPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1xN grid accepted")
		}
	}()
	Grid(1, 5, false, 0, 0)
}
