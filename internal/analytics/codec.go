package analytics

import (
	"graphmem/internal/ckpt"
	"graphmem/internal/graph"
	"graphmem/internal/machine"
	"graphmem/internal/vm"
)

// Checkpoint codec (DESIGN.md §5e). The image's array state lives
// entirely in the machine (the VMAs and their mapped pages); the image
// itself is bindings plus the init flag. VMAs are referenced by base
// address (0 = absent) and resolved against the loaded machine's
// address space; the graph is NOT serialized — it is immutable input,
// re-derived from the experiment spec by the caller, and Decode
// cross-checks every array's extent against it so an image can never be
// attached to the wrong graph.

func encodeVMARef(e *ckpt.Encoder, v *vm.VMA) {
	if v == nil {
		e.U64(0)
		return
	}
	e.U64(v.Base)
}

func decodeVMARef(d *ckpt.Decoder, space *vm.AddressSpace, name string) *vm.VMA {
	base := d.U64()
	if base == 0 {
		return nil
	}
	v := space.FindVMA(base)
	if v == nil || v.Base != base {
		d.Failf("analytics: image array %q names no VMA at %#x", name, base)
		return nil
	}
	return v
}

// Initialized reports whether the image's init phase has run — a
// checkpointed image always has; loaders reject one that claims
// otherwise rather than letting Run panic later.
func (img *Image) Initialized() bool { return img.initialized }

// Encode serializes the image's own state. The machine and graph
// bindings are supplied by the caller on decode.
func (img *Image) Encode(e *ckpt.Encoder) {
	_ = img.G // immutable input; re-derived from the spec on load
	_ = img.M // binding; the loaded image is handed its decoded machine
	e.String(string(img.App))
	encodeVMARef(e, img.Vertex)
	encodeVMARef(e, img.Edge)
	encodeVMARef(e, img.Values)
	encodeVMARef(e, img.Prop)
	encodeVMARef(e, img.Work)
	encodeVMARef(e, img.Misc)
	e.Bool(img.initialized)
	_ = img.gbuf // per-vertex gather scratch, dead between accesses
}

// Decode is Encode's inverse, into a fresh receiver bound to the
// caller's decoded machine and re-derived graph. On any decoder error
// the receiver must be discarded.
func (img *Image) Decode(d *ckpt.Decoder, m *machine.Machine, g *graph.Graph) {
	img.M = m
	img.G = g
	img.App = App(d.String())
	img.Vertex = decodeVMARef(d, m.Space, "vertex")
	img.Edge = decodeVMARef(d, m.Space, "edge")
	img.Values = decodeVMARef(d, m.Space, "values")
	img.Prop = decodeVMARef(d, m.Space, "prop")
	img.Work = decodeVMARef(d, m.Space, "worklist")
	img.Misc = decodeVMARef(d, m.Space, "process")
	img.initialized = d.Bool()
	img.gbuf = make([]uint64, 0, 256)
	if d.Err() != nil {
		return
	}
	switch img.App {
	case BFS, SSSP, PR, CC, BC:
	default:
		d.Failf("analytics: unknown app %q", img.App)
		return
	}
	// The address helpers index these VMAs straight from graph extents;
	// every array must exist exactly when NewImage would create it and
	// span exactly what the graph needs.
	check := func(v *vm.VMA, name string, want uint64) {
		if want == 0 {
			if v != nil {
				d.Failf("analytics: image carries a %q array the app does not use", name)
			}
			return
		}
		if v == nil {
			d.Failf("analytics: image is missing its %q array", name)
			return
		}
		if v.Bytes != want {
			d.Failf("analytics: %q array spans %d bytes, graph needs %d", name, v.Bytes, want)
		}
	}
	check(img.Vertex, "vertex", uint64(len(g.Offsets))*graph.VertexEntryBytes)
	check(img.Edge, "edge", uint64(g.NumEdges())*graph.EdgeEntryBytes)
	valBytes := uint64(0)
	if img.App == SSSP {
		valBytes = uint64(g.NumEdges()) * graph.ValueEntryBytes
	}
	check(img.Values, "values", valBytes)
	check(img.Prop, "prop", uint64(g.N)*PropEntryBytes(img.App))
	check(img.Work, "worklist", WorklistBytes(img.App, g.N))
	check(img.Misc, "process", MiscBytes)
}
