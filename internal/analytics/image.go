// Package analytics implements the paper's three evaluation workloads —
// push-based BFS, SSSP, and PageRank — running against the simulated
// memory system. Each algorithm computes real results over the graph
// while routing every access to the vertex, edge, values, property, and
// worklist arrays through the machine's access engine (scalar Access,
// sequential AccessRun, irregular AccessGather), so the simulator
// observes the exact access stream the paper characterizes.
package analytics

import (
	"fmt"

	"graphmem/internal/check"
	"graphmem/internal/graph"
	"graphmem/internal/machine"
	"graphmem/internal/vm"
)

// App names a workload.
type App string

const (
	BFS  App = "bfs"
	SSSP App = "sssp"
	PR   App = "pr"
	// CC (Connected Components) is an extension beyond the paper's
	// evaluation matrix; see cc.go.
	CC App = "cc"
	// BC (Betweenness Centrality, k-source Brandes) is an extension
	// beyond the paper's evaluation matrix; see bc.go.
	BC App = "bc"
)

// AllApps lists the paper's evaluation workloads, in its order.
var AllApps = []App{BFS, SSSP, PR}

// ExtendedApps adds the extension workloads built on the paper's
// building blocks.
var ExtendedApps = []App{BFS, SSSP, PR, CC, BC}

// AllocOrder is the initialization-time memory allocation order studied
// in Figs. 7–9: Natural loads the CSR arrays first and allocates the
// property array last; PropFirst is the paper's graph-analytics-
// optimized order that allocates (and faults in) the property array
// before anything else, so it wins the competition for huge pages.
type AllocOrder uint8

const (
	Natural AllocOrder = iota
	PropFirst
)

func (o AllocOrder) String() string {
	if o == PropFirst {
		return "prop-first"
	}
	return "natural"
}

// PropEntryBytes returns the property-array element size for an app.
// PageRank keeps (rank, next-rank) pairs in one entry so the single
// "property array" of the paper's model holds all irregularly-updated
// state.
func PropEntryBytes(app App) uint64 {
	switch app {
	case PR:
		return 16
	case BC:
		return bcPropEntryBytes
	default:
		return graph.PropEntryBytes
	}
}

// WorklistBytes returns the worklist footprint for an app (two frontier
// arrays for BFS/SSSP/CC; PageRank is not frontier-based).
func WorklistBytes(app App, n int) uint64 {
	if app == PR {
		return 0
	}
	return 2 * uint64(n) * 4
}

// MiscBytes is the non-graph resident footprint every process carries —
// stack, loader, malloc metadata, kernel bookkeeping. It is NOT part of
// WSSBytes (the paper's footprints, like Table 2's, count graph data
// only), which is exactly why the paper sees an order-of-magnitude
// cliff at "no additional memory available": the process needs slightly
// more than its data footprint, so Δ=0 is already a deficit.
const MiscBytes = 256 << 10

// WSSBytes computes the working-set size of an app/dataset pair — the
// graph-data footprint that is the denominator of every memory-pressure
// level in the paper. Each array is counted at page granularity, since
// that is what it occupies.
func WSSBytes(app App, g *graph.Graph) uint64 {
	pageCeil := func(b uint64) uint64 {
		const pg = 4096
		return (b + pg - 1) / pg * pg
	}
	b := pageCeil(uint64(len(g.Offsets)) * graph.VertexEntryBytes)
	b += pageCeil(uint64(g.NumEdges()) * graph.EdgeEntryBytes)
	if app == SSSP {
		b += pageCeil(uint64(g.NumEdges()) * graph.ValueEntryBytes)
	}
	b += pageCeil(uint64(g.N) * PropEntryBytes(app))
	if wb := WorklistBytes(app, g.N); wb > 0 {
		b += pageCeil(wb)
	}
	return b
}

// Image is a graph loaded into a machine's simulated address space.
type Image struct {
	App App
	G   *graph.Graph
	M   *machine.Machine

	Vertex *vm.VMA
	Edge   *vm.VMA
	Values *vm.VMA // SSSP only
	Prop   *vm.VMA
	Work   *vm.VMA // BFS/SSSP/CC/BC frontier double-buffer
	Misc   *vm.VMA // process overhead (stack, loader, heap metadata)

	initialized bool

	// gbuf is the reusable gather buffer: kernels collect one vertex's
	// irregular neighbor/property addresses into it, in exact scalar
	// access order, and issue them as a single machine.AccessGather
	// batch (DESIGN.md §4e). Reused across vertices, so it allocates
	// only while growing toward the maximum per-vertex batch size.
	gbuf []uint64
}

// NewImage mmaps the arrays an app needs. Nothing is faulted in yet:
// callers apply madvise policy first, then call Init, which touches the
// arrays in the configured order (triggering demand faults exactly as
// initialization I/O would).
func NewImage(m *machine.Machine, g *graph.Graph, app App) (*Image, error) {
	if app == SSSP && !g.Weighted() {
		return nil, fmt.Errorf("analytics: SSSP requires a weighted graph")
	}
	img := &Image{App: app, G: g, M: m, gbuf: make([]uint64, 0, 256)}
	img.Vertex = m.Space.Mmap("vertex", uint64(len(g.Offsets))*graph.VertexEntryBytes)
	img.Edge = m.Space.Mmap("edge", uint64(g.NumEdges())*graph.EdgeEntryBytes)
	if app == SSSP {
		img.Values = m.Space.Mmap("values", uint64(g.NumEdges())*graph.ValueEntryBytes)
	}
	img.Prop = m.Space.Mmap("prop", uint64(g.N)*PropEntryBytes(app))
	if wb := WorklistBytes(app, g.N); wb > 0 {
		img.Work = m.Space.Mmap("worklist", wb)
	}
	img.Misc = m.Space.Mmap("process", MiscBytes)
	img.Misc.Madvise(0, MiscBytes, vm.AdviceNoHuge)
	m.RegisterArray(img.Vertex)
	m.RegisterArray(img.Edge)
	if img.Values != nil {
		m.RegisterArray(img.Values)
	}
	m.RegisterArray(img.Prop)
	if img.Work != nil {
		m.RegisterArray(img.Work)
	}
	return img, nil
}

// Init simulates the paper's initialization phase: each array is
// streamed through once (file read or zero-fill), faulting its pages in.
// The order argument selects which array faults first and therefore wins
// scarce huge pages. Init runs inside an "init" machine phase.
func (img *Image) Init(order AllocOrder) {
	if img.initialized {
		panic(check.Failf("analytics: double Init"))
	}
	img.M.BeginPhase("init")
	touch := func(v *vm.VMA) {
		if v != nil {
			img.M.Touch(v.Base, v.Bytes)
		}
	}
	// Process overhead (stack, loader pages) is resident before any
	// graph data arrives.
	touch(img.Misc)
	if order == PropFirst {
		touch(img.Prop)
	}
	touch(img.Vertex)
	touch(img.Edge)
	touch(img.Values)
	touch(img.Work)
	if order == Natural {
		touch(img.Prop)
	}
	img.initialized = true
}

// Run executes the app's kernel inside a "kernel" machine phase and
// returns the algorithm's result for validation:
//
//   - BFS: hop counts (int64, -1 unreached)
//   - SSSP: distances (int64, -1 unreached)
//   - PR: ranks (float64)
func (img *Image) Run(opt RunOptions) Result {
	if !img.initialized {
		panic(check.Failf("analytics: Run before Init"))
	}
	img.M.BeginPhase("kernel")
	var res Result
	switch img.App {
	case BFS:
		res.Hops = img.runBFS(opt.Root)
	case SSSP:
		res.Dist = img.runSSSP(opt.Root)
	case PR:
		res.Ranks, res.Iterations = img.runPR(opt.PREpsilon, opt.PRMaxIters)
	case CC:
		res.Labels = img.runCC()
	case BC:
		k := opt.BCSources
		if k <= 0 {
			k = 4
		}
		res.Centrality = img.runBC(k)
	default:
		panic(check.Failf("analytics: unknown app %s", img.App))
	}
	return res
}

// RunOptions parameterizes a kernel execution.
type RunOptions struct {
	Root       uint32  // BFS/SSSP source
	PREpsilon  float64 // PageRank convergence threshold (default 1e-4)
	PRMaxIters int     // PageRank iteration cap (default 10)
	BCSources  int     // Betweenness Centrality source sample size (default 4)
}

// DefaultRunOptions picks the max-degree vertex as root (a large
// traversal, deterministic) and the paper-style PR parameters.
func DefaultRunOptions(g *graph.Graph) RunOptions {
	return RunOptions{
		Root:       g.MaxDegreeVertex(),
		PREpsilon:  1e-4,
		PRMaxIters: 10,
		BCSources:  4,
	}
}

// Result carries whichever output the app produced.
type Result struct {
	Hops       []int64
	Dist       []int64
	Ranks      []float64
	Labels     []int64
	Centrality []float64
	Iterations int
}

// --- simulated address helpers ----------------------------------------

func (img *Image) vertexAddr(v uint32) uint64 {
	return img.Vertex.Base + uint64(v)*graph.VertexEntryBytes
}

func (img *Image) edgeAddr(i uint64) uint64 {
	return img.Edge.Base + i*graph.EdgeEntryBytes
}

func (img *Image) valueAddr(i uint64) uint64 {
	return img.Values.Base + i*graph.ValueEntryBytes
}

func (img *Image) propAddr(v uint32) uint64 {
	return img.Prop.Base + uint64(v)*PropEntryBytes(img.App)
}

// workAddr addresses slot i of frontier buffer buf (0 or 1).
func (img *Image) workAddr(buf int, i int) uint64 {
	return img.Work.Base + uint64(buf)*uint64(img.G.N)*4 + uint64(i)*4
}
