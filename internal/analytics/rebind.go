package analytics

import (
	"graphmem/internal/machine"
	"graphmem/internal/vm"
)

// Rebind returns a copy of the image attached to a fork of its
// machine: the array VMA pointers are translated to the forked address
// space's counterparts (same virtual layout, same stats tags — Fork
// copies the per-array counters), the immutable graph is shared, and
// the gather buffer starts fresh (it is scratch space; its capacity is
// pre-grown to match so the fork allocates no differently than the
// original would have). Kernels run on the rebound image drive the
// forked machine exactly as they would have driven the original.
func (img *Image) Rebind(m *machine.Machine) *Image {
	re := func(v *vm.VMA) *vm.VMA {
		if v == nil {
			return nil
		}
		return m.Space.Counterpart(v)
	}
	return &Image{
		App:         img.App,
		G:           img.G,
		M:           m,
		Vertex:      re(img.Vertex),
		Edge:        re(img.Edge),
		Values:      re(img.Values),
		Prop:        re(img.Prop),
		Work:        re(img.Work),
		Misc:        re(img.Misc),
		initialized: img.initialized,
		gbuf:        make([]uint64, 0, cap(img.gbuf)),
	}
}
