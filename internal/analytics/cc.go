package analytics

import "graphmem/internal/graph"

// Connected Components is the paper's canonical example of a workload
// "built on top of" BFS (§3.2). It is provided as an extension beyond
// the paper's three-app evaluation matrix: frontier-based label
// propagation whose property array holds each vertex's current
// component label, updated through the same pointer-indirect pattern
// that makes BFS TLB-hostile. Edges are treated as undirected for
// labelling purposes by propagating along out-edges until fixpoint, so
// on directed inputs it computes the weakly-reachable fixpoint of
// min-label propagation.

// runCC executes label propagation against the simulated memory system.
// Per-neighbor label reads/writes and frontier pushes gather-batch per
// vertex, exactly as in BFS.
func (img *Image) runCC() []int64 {
	g := img.G
	m := img.M
	gb := img.gbuf

	label := make([]int64, g.N)
	cur := make([]uint32, 0, g.N)
	next := make([]uint32, 0, g.N)
	inNext := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		label[v] = int64(v)
		m.Access(img.propAddr(uint32(v))) // initialize label
		m.Access(img.workAddr(0, v))      // enqueue everyone
		cur = append(cur, uint32(v))
	}

	buf := 0
	for len(cur) > 0 {
		next = next[:0]
		for i, v := range cur {
			m.Access(img.workAddr(buf, i))
			m.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
			lv := label[v]
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			m.AccessRun(img.edgeAddr(lo), int(hi-lo), graph.EdgeEntryBytes)
			gb = gb[:0]
			for e := lo; e < hi; e++ {
				w := g.Neighbors[e]
				gb = append(gb, img.propAddr(w)) // read neighbor label
				if label[w] > lv {
					label[w] = lv
					gb = append(gb, img.propAddr(w)) // write
					if !inNext[w] {
						inNext[w] = true
						gb = append(gb, img.workAddr(1-buf, len(next)))
						next = append(next, w)
					}
				}
			}
			m.AccessGather(gb)
		}
		for _, w := range next {
			inNext[w] = false
		}
		cur, next = next, cur
		buf = 1 - buf
	}
	img.gbuf = gb
	return label
}

// NativeCC is the uninstrumented reference implementation.
func NativeCC(g *graph.Graph) []int64 {
	label := make([]int64, g.N)
	var cur, next []uint32
	inNext := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		label[v] = int64(v)
		cur = append(cur, uint32(v))
	}
	for len(cur) > 0 {
		next = next[:0]
		for _, v := range cur {
			lv := label[v]
			for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
				w := g.Neighbors[e]
				if label[w] > lv {
					label[w] = lv
					if !inNext[w] {
						inNext[w] = true
						next = append(next, w)
					}
				}
			}
		}
		for _, w := range next {
			inNext[w] = false
		}
		cur, next = next, cur
	}
	return label
}
