package analytics

import (
	"graphmem/internal/check"
	"graphmem/internal/graph"
	"graphmem/internal/vm"
)

// This file implements the bounded rollout probe behind the ext-rollout
// experiment: a short, deterministic burst of the translation-hostile
// traffic a graph kernel produces — offset reads, neighbor-run streams,
// and irregular property gathers — swept across the whole graph, used
// to score candidate page-size policies on forks of one warmed machine
// (core.Checkpoint / core.ForkPair) without paying for a full kernel
// per candidate.

// ProbeResult summarizes one rollout probe: the simulated cost of a
// fixed sweep-gather access burst under whatever policy the machine was
// configured with at probe time. All counters are deltas over the probe
// except HugeBytes, which is the image's total huge-mapped bytes when
// the probe ended.
type ProbeResult struct {
	Accesses   uint64 // property-gather accesses issued (== the budget, edge-permitting)
	Cycles     uint64 // total simulated cycles consumed by the probe
	Walks      uint64 // STLB misses → page table walks during the probe
	WalkCycles uint64 // cycles spent walking page tables
	Promotions uint64 // khugepaged promotions that landed during the probe
	HugeBytes  uint64 // image bytes huge-mapped at probe end (all arrays)
}

// CyclesPerAccess is the probe's scalar figure of merit.
func (r ProbeResult) CyclesPerAccess() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Accesses)
}

// probeNeighborCap bounds the neighbor run consumed per vertex visit,
// so a single mega-hub cannot swallow the whole budget and the sweep
// keeps touching pages across the full footprint.
const probeNeighborCap = 64

// RunProbe issues a deterministic burst of budget property-gather
// accesses, visiting vertices in a full-range stride permutation. Per
// visit it replays the kernel access shape exactly: two CSR offset
// reads, a sequential neighbor-run stream (capped at probeNeighborCap),
// then one AccessGather batch of those neighbors' property entries. The
// stride keeps the touched footprint as wide as the kernel's — beyond
// TLB reach — so the probe pays realistic translation costs, and
// background kernel activity (khugepaged scans and promotions) keeps
// running on the probe's cycle clock, which is exactly what lets probes
// discriminate between THP policies applied after a fork.
//
// The probe runs inside a "probe" machine phase. It is read-only on the
// algorithm state (no worklists, no property mutation bookkeeping), so
// it can run on any initialized image, including forks, any number of
// times.
func (img *Image) RunProbe(budget int) ProbeResult {
	if !img.initialized {
		panic(check.Failf("analytics: RunProbe before Init"))
	}
	g := img.G
	m := img.M
	stride := probeStride(g.N)

	cycles0 := m.Cycles()
	tlb0 := m.TLB.Stats()
	os0 := m.Kernel.Stats()

	m.BeginPhase("probe")
	gb := img.gbuf
	var accesses uint64
	rem := budget
	v := uint64(0)
	for rem > 0 {
		issued := false
		for i := 0; i < g.N && rem > 0; i++ {
			v = (v + stride) % uint64(g.N)
			m.AccessRun(img.vertexAddr(uint32(v)), 2, graph.VertexEntryBytes)
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			n := int(hi - lo)
			if n > probeNeighborCap {
				n = probeNeighborCap
			}
			if n > rem {
				n = rem
			}
			if n == 0 {
				continue
			}
			m.AccessRun(img.edgeAddr(lo), n, graph.EdgeEntryBytes)
			gb = gb[:0]
			for e := lo; e < lo+uint64(n); e++ {
				gb = append(gb, img.propAddr(g.Neighbors[e]))
			}
			m.AccessGather(gb)
			accesses += uint64(n)
			rem -= n
			issued = true
		}
		if !issued {
			break // edgeless graph: no gather traffic to issue
		}
	}
	img.gbuf = gb

	tlb1 := m.TLB.Stats()
	os1 := m.Kernel.Stats()
	var huge uint64
	addHuge := func(v *vm.VMA) {
		if v != nil {
			_, h := v.MappedBytes()
			huge += h
		}
	}
	addHuge(img.Vertex)
	addHuge(img.Edge)
	addHuge(img.Values)
	addHuge(img.Prop)
	addHuge(img.Work)
	return ProbeResult{
		Accesses:   accesses,
		Cycles:     m.Cycles() - cycles0,
		Walks:      tlb1.STLBMisses - tlb0.STLBMisses,
		WalkCycles: tlb1.WalkCycles - tlb0.WalkCycles,
		Promotions: os1.Promotions - os0.Promotions,
		HugeBytes:  huge,
	}
}

// probeStride picks a deterministic stride coprime to n near the golden
// ratio of n, so successive visits are spread across the whole vertex
// range instead of walking it sequentially (which would let bulk
// translation reuse hide all TLB pressure).
func probeStride(n int) uint64 {
	if n <= 2 {
		return 1
	}
	s := uint64(float64(n)*0.618)>>1<<1 + 1 // odd, ≈0.618n
	for gcd(s, uint64(n)) != 1 {
		s += 2
	}
	return s
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
