package analytics

import (
	"math"

	"graphmem/internal/graph"
)

// The Native* functions are plain-Go reference implementations with no
// simulation instrumentation. Tests compare their outputs against the
// simulated kernels to prove the instrumentation does not alter
// algorithmic behaviour, and they also serve as the "ground truth" for
// example programs.

// NativeBFS returns hop counts from root (-1 for unreachable vertices).
func NativeBFS(g *graph.Graph, root uint32) []int64 {
	hops := make([]int64, g.N)
	for i := range hops {
		hops[i] = -1
	}
	hops[root] = 0
	cur := []uint32{root}
	level := int64(0)
	for len(cur) > 0 {
		level++
		var next []uint32
		for _, v := range cur {
			for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
				w := g.Neighbors[e]
				if hops[w] == -1 {
					hops[w] = level
					next = append(next, w)
				}
			}
		}
		cur = next
	}
	return hops
}

// NativeSSSP returns shortest-path distances from root (-1 if
// unreachable), by frontier Bellman–Ford relaxation.
func NativeSSSP(g *graph.Graph, root uint32) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	inNext := make([]bool, g.N)
	cur := []uint32{root}
	for len(cur) > 0 {
		var next []uint32
		for _, v := range cur {
			dv := dist[v]
			for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
				w := g.Neighbors[e]
				nd := dv + int64(g.Weights[e])
				if dist[w] == -1 || nd < dist[w] {
					dist[w] = nd
					if !inNext[w] {
						inNext[w] = true
						next = append(next, w)
					}
				}
			}
		}
		for _, w := range next {
			inNext[w] = false
		}
		cur = next
	}
	return dist
}

// NativePR returns PageRank scores with the same damping, epsilon, and
// iteration-cap semantics as the simulated kernel.
func NativePR(g *graph.Graph, eps float64, maxIters int) ([]float64, int) {
	n := g.N
	if eps <= 0 {
		eps = 1e-4
	}
	if maxIters <= 0 {
		maxIters = 10
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	init := 1 / float64(n)
	base := (1 - prDamping) / float64(n)
	for i := range rank {
		rank[i] = init
	}
	iters := 0
	for iters < maxIters {
		iters++
		for i := range next {
			next[i] = 0
		}
		for v := uint32(0); int(v) < n; v++ {
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			deg := hi - lo
			if deg == 0 {
				continue
			}
			contrib := prDamping * rank[v] / float64(deg)
			for e := lo; e < hi; e++ {
				next[g.Neighbors[e]] += contrib
			}
		}
		var maxDelta float64
		for v := 0; v < n; v++ {
			nr := next[v] + base
			if d := math.Abs(nr - rank[v]); d > maxDelta {
				maxDelta = d
			}
			rank[v] = nr
		}
		if maxDelta < eps {
			break
		}
	}
	return rank, iters
}
