package analytics

import (
	"graphmem/internal/check"
)

// This file orchestrates the sharded kernel mode (DESIGN.md §5c): one
// logical simulation decomposed into S owner-computes shards, each
// backed by its own forked machine over a contiguous vertex window.
// Kernels run as bulk-synchronous programs — a scatter phase where
// every shard pops its own frontier window and streams its own vertex
// and edge windows, a barrier, and an apply phase where each shard
// drains cross-shard messages in fixed source order and performs the
// irregular property work for the vertices it owns. The orchestration
// here (phase sequencing, barriers, termination counts, makespan
// accounting) is deliberately separate from the per-shard worker
// bodies in shard_kernels.go, which are tagged //simlint:shardworker
// so rule SL014 can verify nothing they reach writes shared globals.
//
// Determinism contract: output is a pure function of (graph, cuts,
// options) — never of the worker count driving the shards. Shared
// algorithm state (hops, dist, rank, …) is only ever written by the
// owning shard, message outboxes are only appended by their source
// shard and drained in fixed source order, and every reduction in this
// file iterates shards in index order.

// shardMsg is one owner-computes message: scatter work for vertex w,
// owned by the receiving shard. The payload carries the app-specific
// datum (candidate SSSP distance, PageRank contribution bits, BC sigma
// bits); BFS and CC discovery needs only the target.
type shardMsg struct {
	w uint32
	x uint64
}

// shardGatherChunk bounds the gather batch the apply phase accumulates
// before flushing to AccessGather, so inbox drains reuse one bounded
// buffer instead of materializing an addresses-per-round slice.
const shardGatherChunk = 1 << 14

// ShardGroup drives one sharded kernel execution over S images.
type ShardGroup struct {
	imgs  []*Image
	cuts  []uint32
	owner []uint8

	// parallel executes fn(0..n-1) and returns when all are done — the
	// execution knob. A serial loop and a sched.Pool are both valid;
	// the simulation cannot observe which ran (or in what order),
	// because shards only share state across the barrier.
	parallel func(n int, fn func(i int))

	// out[src][dst] is src's outbox of messages for dst-owned vertices.
	// Scatter appends to row src; apply drains column dst and truncates
	// each cell it consumed. Reused across rounds.
	out [][][]shardMsg

	// cur/next are the per-shard frontier double buffers.
	cur, next [][]uint32

	// Barrier-makespan accounting: last[sh] is shard sh's cycle counter
	// at the previous barrier; every step adds the maximum per-shard
	// delta, modeling shards running concurrently and meeting at each
	// barrier (the merged kernel time core reports).
	last     []uint64
	makespan uint64
}

// RunSharded executes the app's kernel across the shard images and
// returns the result plus the barrier makespan in cycles. imgs[sh]
// simulates shard sh, which owns vertices [cuts[sh], cuts[sh+1]); all
// images must be forks (or deterministic replays) of one prepared
// machine, each with the full address space mapped. Every image enters
// its own "kernel" phase; the caller finishes phases and merges stats.
func RunSharded(imgs []*Image, cuts []uint32, opt RunOptions, parallel func(int, func(int))) (Result, uint64) {
	s := len(imgs)
	if s < 2 {
		panic(check.Failf("analytics: RunSharded with %d shards; use Image.Run for monolithic execution", s))
	}
	if len(cuts) != s+1 {
		panic(check.Failf("analytics: RunSharded with %d cuts for %d shards; want shards+1", len(cuts), s))
	}
	g := imgs[0].G
	app := imgs[0].App
	for _, img := range imgs {
		if !img.initialized {
			panic(check.Failf("analytics: RunSharded before Init"))
		}
		if img.App != app || img.G.N != g.N {
			panic(check.Failf("analytics: RunSharded over mismatched shard images"))
		}
	}
	if int(cuts[s]) != g.N {
		panic(check.Failf("analytics: shard cuts end at %d, graph has %d vertices", cuts[s], g.N))
	}

	sg := &ShardGroup{
		imgs:     imgs,
		cuts:     cuts,
		owner:    make([]uint8, g.N),
		parallel: parallel,
		out:      make([][][]shardMsg, s),
		cur:      make([][]uint32, s),
		next:     make([][]uint32, s),
		last:     make([]uint64, s),
	}
	for sh := 0; sh < s; sh++ {
		sg.out[sh] = make([][]shardMsg, s)
		for v := cuts[sh]; v < cuts[sh+1]; v++ {
			sg.owner[v] = uint8(sh)
		}
	}
	for sh, img := range imgs {
		img.M.BeginPhase("kernel")
		sg.last[sh] = img.M.Cycles()
	}

	var res Result
	switch app {
	case BFS:
		res.Hops = sg.runBFS(opt.Root)
	case SSSP:
		res.Dist = sg.runSSSP(opt.Root)
	case PR:
		res.Ranks, res.Iterations = sg.runPR(opt.PREpsilon, opt.PRMaxIters)
	case CC:
		res.Labels = sg.runCC()
	case BC:
		k := opt.BCSources
		if k <= 0 {
			k = 4
		}
		res.Centrality = sg.runBC(k)
	default:
		panic(check.Failf("analytics: unknown app %s", app))
	}
	return res, sg.makespan
}

// step runs one bulk-synchronous superstep — fn on every shard, then a
// barrier — and folds the slowest shard's cycle delta into the
// makespan. Iterating shards in index order here (not completion
// order) is what keeps the accounting independent of worker count.
func (sg *ShardGroup) step(fn func(sh int)) {
	sg.parallel(len(sg.imgs), fn)
	var maxd uint64
	for sh, img := range sg.imgs {
		c := img.M.Cycles()
		d := c - sg.last[sh]
		sg.last[sh] = c
		if d > maxd {
			maxd = d
		}
	}
	sg.makespan += maxd
}

// swapFrontiers flips every shard's frontier double buffer and returns
// the total new frontier size (the BSP termination count).
func (sg *ShardGroup) swapFrontiers() int {
	total := 0
	for sh := range sg.imgs {
		sg.cur[sh], sg.next[sh] = sg.next[sh], sg.cur[sh]
		total += len(sg.cur[sh])
	}
	return total
}

// --- orchestrators -----------------------------------------------------

func (sg *ShardGroup) runBFS(root uint32) []int64 {
	n := sg.imgs[0].G.N
	hops := make([]int64, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[root] = 0
	r := &bfsShardRun{sg: sg, hops: hops, root: root}
	rootSh := int(sg.owner[root])
	sg.step(func(sh int) {
		if sh == rootSh {
			r.seed(sh)
		}
	})
	total := 1
	for total > 0 {
		r.level++
		sg.step(r.scatter)
		sg.step(r.apply)
		total = sg.swapFrontiers()
		r.buf = 1 - r.buf
	}
	return hops
}

func (sg *ShardGroup) runSSSP(root uint32) []int64 {
	n := sg.imgs[0].G.N
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	r := &ssspShardRun{sg: sg, dist: dist, inNext: make([]bool, n), root: root}
	rootSh := int(sg.owner[root])
	sg.step(func(sh int) {
		if sh == rootSh {
			r.seed(sh)
		}
	})
	total := 1
	for total > 0 {
		sg.step(r.scatter)
		sg.step(r.apply)
		total = sg.swapFrontiers()
		r.buf = 1 - r.buf
	}
	return dist
}

func (sg *ShardGroup) runPR(eps float64, maxIters int) ([]float64, int) {
	if eps <= 0 {
		eps = 1e-4
	}
	if maxIters <= 0 {
		maxIters = 10
	}
	n := sg.imgs[0].G.N
	r := &prShardRun{
		sg:       sg,
		rank:     make([]float64, n),
		nextRank: make([]float64, n),
		base:     (1 - prDamping) / float64(n),
		localMax: make([]float64, len(sg.imgs)),
	}
	init := 1 / float64(n)
	for i := range r.rank {
		r.rank[i] = init
	}
	iters := 0
	for iters < maxIters {
		iters++
		sg.step(r.scatter)
		sg.step(r.apply)
		var maxDelta float64
		for _, d := range r.localMax {
			if d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < eps {
			break
		}
	}
	return r.rank, iters
}

func (sg *ShardGroup) runCC() []int64 {
	n := sg.imgs[0].G.N
	r := &ccShardRun{sg: sg, label: make([]int64, n), inNext: make([]bool, n)}
	sg.step(r.seed)
	total := sg.swapFrontiers()
	// seed filled next; after the swap every vertex sits on cur.
	for total > 0 {
		sg.step(r.scatter)
		sg.step(r.apply)
		total = sg.swapFrontiers()
		r.buf = 1 - r.buf
	}
	return r.label
}

func (sg *ShardGroup) runBC(k int) []float64 {
	g := sg.imgs[0].G
	n := g.N
	r := &bcShardRun{
		sg:     sg,
		bc:     make([]float64, n),
		dist:   make([]int32, n),
		sigma:  make([]float64, n),
		delta:  make([]float64, n),
		revCnt: make([]int, len(sg.imgs)),
	}
	for _, src := range bcSources(g, k) {
		r.src = src
		sg.step(r.reset)
		total := sg.swapFrontiers()
		r.level = 0
		r.buf = 0
		for total > 0 {
			r.level++
			sg.step(r.scatter)
			sg.step(r.apply)
			total = sg.swapFrontiers()
			r.buf = 1 - r.buf
		}
		// Pull-based level-synchronous reverse sweep: vertices at the
		// deepest level carry no successors, each earlier level reads
		// only finalized deeper-level state across the barrier.
		for lvl := r.level - 1; lvl >= 0; lvl-- {
			r.level = lvl
			sg.step(r.reverse)
		}
	}
	return r.bc
}
