package analytics

import (
	"math"

	"graphmem/internal/graph"
)

// prDamping is the standard PageRank damping factor.
const prDamping = 0.85

// runPR executes push-based PageRank. Each property entry holds the
// (rank, next-rank) pair for one vertex, so the irregular "scatter"
// update next[w] += contrib(v) lands in the same property array whose
// prefix the selective-THP policy covers. Iteration stops when the
// largest per-vertex rank change falls below eps, or after maxIters.
func (img *Image) runPR(eps float64, maxIters int) ([]float64, int) {
	g := img.G
	m := img.M
	n := g.N
	gb := img.gbuf

	if eps <= 0 {
		eps = 1e-4
	}
	if maxIters <= 0 {
		maxIters = 10
	}

	rank := make([]float64, n)
	nextRank := make([]float64, n)
	init := 1 / float64(n)
	base := (1 - prDamping) / float64(n)
	for i := range rank {
		rank[i] = init
	}

	// Simulated addresses: rank at propAddr(v), next-rank at +8.
	iters := 0
	for iters < maxIters {
		iters++
		for i := range nextRank {
			nextRank[i] = 0
		}
		for v := uint32(0); int(v) < n; v++ {
			m.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			deg := hi - lo
			if deg == 0 {
				continue
			}
			m.Access(img.propAddr(v)) // sequential read of rank[v]
			contrib := prDamping * rank[v] / float64(deg)
			// The neighbor IDs stream from the edge array in one run.
			m.AccessRun(img.edgeAddr(lo), int(deg), graph.EdgeEntryBytes)
			// Irregular read-modify-write scatter of next-rank[w],
			// gather-batched per vertex.
			gb = gb[:0]
			for e := lo; e < hi; e++ {
				w := g.Neighbors[e]
				gb = append(gb, img.propAddr(w)+8)
				nextRank[w] += contrib
			}
			m.AccessGather(gb)
		}
		// Sequential pass folding next into rank: one property write
		// per vertex, streamed as a single bulk run.
		m.AccessRun(img.propAddr(0), n, PropEntryBytes(img.App))
		var maxDelta float64
		for v := 0; v < n; v++ {
			nr := nextRank[v] + base
			if d := math.Abs(nr - rank[v]); d > maxDelta {
				maxDelta = d
			}
			rank[v] = nr
		}
		if maxDelta < eps {
			break
		}
	}
	img.gbuf = gb
	return rank, iters
}
