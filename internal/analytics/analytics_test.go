package analytics

import (
	"math"
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/gen"
	"graphmem/internal/graph"
	"graphmem/internal/machine"
	"graphmem/internal/oskernel"
	"graphmem/internal/reorder"
	"graphmem/internal/tlb"
)

func testMachine(t *testing.T, kcfg oskernel.Config) *machine.Machine {
	t.Helper()
	return machine.New(machine.Config{
		MemoryBytes: 256 << 20,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Fast(),
		Kernel:      kcfg,
	})
}

func loadAndRun(t *testing.T, g *graph.Graph, app App, kcfg oskernel.Config, order AllocOrder) Result {
	t.Helper()
	m := testMachine(t, kcfg)
	img, err := NewImage(m, g, app)
	if err != nil {
		t.Fatal(err)
	}
	img.Init(order)
	return img.Run(DefaultRunOptions(g))
}

func eqInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSimulatedMatchesNative is the load-bearing correctness check: the
// instrumented kernels must compute exactly what the plain-Go reference
// implementations compute, for every app, under both page policies and
// both allocation orders, on every test dataset.
func TestSimulatedMatchesNative(t *testing.T) {
	for _, ds := range gen.AllDatasets {
		for _, app := range AllApps {
			g := gen.Generate(ds, gen.ScaleTest, app == SSSP)
			opt := DefaultRunOptions(g)
			for _, kcfg := range []oskernel.Config{oskernel.BaselineConfig(), oskernel.DefaultConfig()} {
				for _, order := range []AllocOrder{Natural, PropFirst} {
					res := loadAndRun(t, g, app, kcfg, order)
					switch app {
					case BFS:
						want := NativeBFS(g, opt.Root)
						if !eqInt64(res.Hops, want) {
							t.Fatalf("%s/%s/%v/%v: BFS mismatch", ds, app, kcfg.Mode, order)
						}
					case SSSP:
						want := NativeSSSP(g, opt.Root)
						if !eqInt64(res.Dist, want) {
							t.Fatalf("%s/%s/%v/%v: SSSP mismatch", ds, app, kcfg.Mode, order)
						}
					case PR:
						want, iters := NativePR(g, opt.PREpsilon, opt.PRMaxIters)
						if res.Iterations != iters {
							t.Fatalf("%s PR iterations %d != %d", ds, res.Iterations, iters)
						}
						for i := range want {
							if math.Abs(want[i]-res.Ranks[i]) > 1e-12 {
								t.Fatalf("%s PR rank[%d] = %g, want %g", ds, i, res.Ranks[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestReorderingPreservesResults: BFS distances are permutation-
// equivariant — hop count of vertex v in g equals hop of perm[v] in the
// relabelled graph (from the corresponding root).
func TestReorderingPreservesResults(t *testing.T) {
	g := gen.Generate(gen.Kron25, gen.ScaleTest, false)
	perm, _ := reorder.Compute(g, reorder.DBG, 0)
	ng, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	root := g.MaxDegreeVertex()
	a := NativeBFS(g, root)
	b := NativeBFS(ng, perm[root])
	for v := 0; v < g.N; v++ {
		if a[v] != b[perm[v]] {
			t.Fatalf("hops differ after relabel: v=%d", v)
		}
	}
}

func TestWSSBytes(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, true)
	n, m := uint64(g.N), uint64(g.NumEdges())
	ceil := func(b uint64) uint64 { return (b + 4095) / 4096 * 4096 }
	if got, want := WSSBytes(BFS, g), ceil((n+1)*8)+ceil(m*4)+ceil(n*8)+ceil(2*n*4); got != want {
		t.Fatalf("BFS WSS = %d, want %d", got, want)
	}
	if got, want := WSSBytes(SSSP, g), ceil((n+1)*8)+ceil(m*4)+ceil(m*4)+ceil(n*8)+ceil(2*n*4); got != want {
		t.Fatalf("SSSP WSS = %d, want %d", got, want)
	}
	if got, want := WSSBytes(PR, g), ceil((n+1)*8)+ceil(m*4)+ceil(n*16); got != want {
		t.Fatalf("PR WSS = %d, want %d", got, want)
	}
	// The process-overhead region is deliberately not part of the
	// graph-data working set.
	if WSSBytes(BFS, g)%4096 != 0 {
		t.Fatal("WSS not page-granular")
	}
}

func TestImageRequiresWeightsForSSSP(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	m := testMachine(t, oskernel.BaselineConfig())
	if _, err := NewImage(m, g, SSSP); err == nil {
		t.Fatal("SSSP accepted unweighted graph")
	}
}

func TestInitFaultsEverything(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	m := testMachine(t, oskernel.BaselineConfig())
	img, err := NewImage(m, g, BFS)
	if err != nil {
		t.Fatal(err)
	}
	img.Init(Natural)
	for _, v := range []struct {
		vma interface{ MappedBytes() (uint64, uint64) }
	}{
		{img.Vertex}, {img.Edge}, {img.Prop}, {img.Work},
	} {
		total, _ := v.vma.MappedBytes()
		if total == 0 {
			t.Fatal("array not faulted in by Init")
		}
	}
	// The kernel phase must then run fault-free.
	m.BeginPhase("probe")
	img.Run(DefaultRunOptions(g))
	k, _ := func() (machine.PhaseStats, bool) { m.FinishPhases(); return m.Phase("kernel") }()
	if k.FaultCycles != 0 {
		t.Fatalf("kernel phase faulted: %d cycles", k.FaultCycles)
	}
}

func TestAllocOrderControlsFaultOrder(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	for _, order := range []AllocOrder{Natural, PropFirst} {
		m := testMachine(t, oskernel.BaselineConfig())
		img, err := NewImage(m, g, BFS)
		if err != nil {
			t.Fatal(err)
		}
		img.Init(order)
		// Find the lowest frame of prop vs edge: PropFirst must give
		// prop lower frames than the edge array and vice versa.
		propTr, _, ok1 := m.Space.Translate(img.Prop.Base)
		edgeTr, _, ok2 := m.Space.Translate(img.Edge.Base)
		if !ok1 || !ok2 {
			t.Fatal("arrays unmapped")
		}
		propBeforeEdge := propTr.Frame < edgeTr.Frame
		if (order == PropFirst) != propBeforeEdge {
			t.Fatalf("order %v: prop frame %d, edge frame %d", order, propTr.Frame, edgeTr.Frame)
		}
	}
}

func TestDoubleInitPanics(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	m := testMachine(t, oskernel.BaselineConfig())
	img, _ := NewImage(m, g, BFS)
	img.Init(Natural)
	defer func() {
		if recover() == nil {
			t.Fatal("double Init did not panic")
		}
	}()
	img.Init(Natural)
}

func TestRunBeforeInitPanics(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	m := testMachine(t, oskernel.BaselineConfig())
	img, _ := NewImage(m, g, BFS)
	defer func() {
		if recover() == nil {
			t.Fatal("Run before Init did not panic")
		}
	}()
	img.Run(DefaultRunOptions(g))
}

func TestPropEntryBytes(t *testing.T) {
	if PropEntryBytes(BFS) != 8 || PropEntryBytes(SSSP) != 8 || PropEntryBytes(PR) != 16 {
		t.Fatal("property entry sizes wrong")
	}
}

func TestPRConvergesWithLooseEpsilon(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	_, iters := NativePR(g, 0.5, 50)
	if iters >= 50 {
		t.Fatal("PR did not converge with loose epsilon")
	}
}

// TestPropArrayDominatesIrregularAccesses verifies the paper's Fig. 4
// premise on our workloads: the property array absorbs by far the most
// TLB-hostile (walk-causing) accesses in the 4KB configuration.
func TestPropArrayDominatesIrregularAccesses(t *testing.T) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	// Scale the TLB down so the property array exceeds STLB reach at
	// bench-scale graph sizes, as it does at full scale.
	m := machine.New(machine.Config{
		MemoryBytes: 256 << 20,
		TLB:         tlb.Scaled(tlb.Haswell(), 16),
		Cache:       cache.Haswell(),
		Cost:        cost.Fast(),
		Kernel:      oskernel.BaselineConfig(),
	})
	img, err := NewImage(m, g, BFS)
	if err != nil {
		t.Fatal(err)
	}
	img.Init(Natural)
	img.Run(DefaultRunOptions(g))
	var prop, rest machine.ArrayStats
	for _, a := range m.ArrayStats() {
		if a.Name == "prop" {
			prop = a
		} else {
			rest.Walks += a.Walks
		}
	}
	if prop.Accesses == 0 {
		t.Fatal("no property accesses recorded")
	}
	if prop.Walks <= rest.Walks {
		t.Fatalf("prop walks %d not dominant over others %d (graph too small for this check?)",
			prop.Walks, rest.Walks)
	}
}

// TestCCMatchesNative validates the Connected Components extension the
// same way as the paper workloads.
func TestCCMatchesNative(t *testing.T) {
	for _, ds := range gen.AllDatasets {
		g := gen.Generate(ds, gen.ScaleTest, false)
		res := loadAndRun(t, g, CC, oskernel.DefaultConfig(), Natural)
		want := NativeCC(g)
		if !eqInt64(res.Labels, want) {
			t.Fatalf("%s: CC labels mismatch", ds)
		}
	}
}

// TestCCLabelsAreComponentRepresentatives: every vertex's label is the
// minimum vertex ID reachable to it along the propagation closure, so
// labels must be ≤ the vertex's own ID and stable under one more native
// iteration.
func TestCCLabelsAreComponentRepresentatives(t *testing.T) {
	g := gen.Generate(gen.Kron25, gen.ScaleTest, false)
	labels := NativeCC(g)
	for v, l := range labels {
		if l > int64(v) {
			t.Fatalf("label[%d] = %d exceeds own ID", v, l)
		}
	}
	// Fixpoint check: no edge can still lower a label.
	for v := 0; v < g.N; v++ {
		for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
			w := g.Neighbors[e]
			if labels[w] > labels[v] {
				t.Fatalf("not a fixpoint: %d -> %d", v, w)
			}
		}
	}
}

// TestBCMatchesNative validates the Betweenness Centrality extension
// against the reference implementation.
func TestBCMatchesNative(t *testing.T) {
	for _, ds := range []gen.Dataset{gen.Kron25, gen.Wiki} {
		g := gen.Generate(ds, gen.ScaleTest, false)
		res := loadAndRun(t, g, BC, oskernel.DefaultConfig(), Natural)
		want := NativeBC(g, 4)
		for v := range want {
			if math.Abs(res.Centrality[v]-want[v]) > 1e-9 {
				t.Fatalf("%s: bc[%d] = %g, want %g", ds, v, res.Centrality[v], want[v])
			}
		}
	}
}

// TestBCAgainstBruteForce cross-checks single-source Brandes against a
// brute-force all-shortest-paths count on a small fixed graph.
func TestBCAgainstBruteForce(t *testing.T) {
	// Diamond: 0→{1,2}, 1→3, 2→3, 3→4. Two shortest paths 0→3.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2},
		{Src: 1, Dst: 3}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4},
	}
	g, err := graph.FromEdges(5, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	// Force the single source 0 by using k=1 (stride picks vertex 0).
	got := NativeBC(g, 1)
	// Dependencies from source 0:
	//   delta(3) counts pairs (0,4): sigma(3)=2 paths... delta(3) = sigma3/sigma4*(1+delta4) = 2/2*(1+0) = 1
	//   delta(1) = sigma1/sigma3*(1+delta3) = 1/2*2 = 1; same for delta(2)
	want := []float64{0, 1, 1, 1, 0}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("bc[%d] = %g, want %g (all: %v)", v, got[v], want[v], got)
		}
	}
}

func TestBCSourceSelection(t *testing.T) {
	g := gen.Generate(gen.Wiki, gen.ScaleTest, false)
	srcs := bcSources(g, 4)
	if len(srcs) == 0 || len(srcs) > 4 {
		t.Fatalf("sources = %v", srcs)
	}
	seen := map[uint32]bool{}
	for _, s := range srcs {
		if seen[s] {
			t.Fatal("duplicate source")
		}
		seen[s] = true
		if g.OutDegree(s) == 0 {
			t.Fatal("isolated source selected")
		}
	}
}

// TestAccountingIdentityStressedBFS runs BFS under the full THP policy
// on a machine deliberately smaller than the workload's footprint, so
// the run exercises every cycle source at once: demand faults (huge and
// base), reclaim, swap-in/out, demotion, khugepaged promotion, and TLB
// walks. The staged access engine must preserve the accounting identity
// exactly: per phase, Cycles = TranslationCycles + DataCycles +
// FaultCycles, and the phases sum to the machine's total cycle counter.
func TestAccountingIdentityStressedBFS(t *testing.T) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	m := machine.New(machine.Config{
		MemoryBytes: 4 << 20, // footprint is ~4.9MB: forces reclaim and swap
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Fast(),
		Kernel:      oskernel.DefaultConfig(),
	})
	img, err := NewImage(m, g, BFS)
	if err != nil {
		t.Fatal(err)
	}
	m.BeginPhase("init")
	img.Init(Natural)
	m.BeginPhase("kernel")
	img.Run(DefaultRunOptions(g))
	phases := m.FinishPhases()

	var sum uint64
	for _, p := range phases {
		if p.Cycles != p.TranslationCycles+p.DataCycles+p.FaultCycles {
			t.Fatalf("phase %q: cycles %d != translation %d + data %d + fault %d",
				p.Name, p.Cycles, p.TranslationCycles, p.DataCycles, p.FaultCycles)
		}
		sum += p.Cycles
	}
	if sum != m.Cycles() {
		t.Fatalf("phases sum to %d cycles, machine counted %d", sum, m.Cycles())
	}

	// The identity only means something if the run was actually
	// stressed: demand faults, swap traffic, and huge page churn.
	s := m.Kernel.Stats()
	if s.Faults4K == 0 || s.FaultsHuge == 0 {
		t.Fatalf("run not stressed: kernel stats %+v", s)
	}
	if s.SwapOuts == 0 || s.SwapIns == 0 {
		t.Fatalf("no swap pressure: kernel stats %+v", s)
	}
}
