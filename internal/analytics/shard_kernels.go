//simlint:shardworker

// Per-shard worker bodies of the sharded kernel mode (DESIGN.md §5c).
// Every function in this file runs concurrently with its siblings, one
// invocation per shard, between two barriers. The isolation contract —
// enforced interprocedurally by rule SL014 — is that nothing here (or
// anything reachable from here) writes shared global state: a worker
// may touch only its own shard's machine, its own windows of the
// shared algorithm slices (hops, dist, rank, …), its own outbox row,
// and the inbox cells it owns as the destination. Simulated addresses
// are not so restricted: each shard machine maps the full logical
// address space, and the BC reverse sweep deliberately reads
// finalized remote property addresses, charged to the local machine
// (MODEL.md).
package analytics

import (
	"math"

	"graphmem/internal/graph"
)

// sendAll scatters one vertex's full neighbor run as messages: the
// CSR offsets are read (two adjacent vertex-array entries), the
// neighbor IDs stream from the edge array in one bulk run, and each
// edge enqueues (w, x(e)) on the owner's inbox. Message transport
// itself charges nothing — it models on-chip work distribution, not a
// memory access (MODEL.md).
func (sg *ShardGroup) sendAll(sh int, img *Image, v uint32, x func(e uint64, w uint32) uint64) {
	g := img.G
	img.M.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	img.M.AccessRun(img.edgeAddr(lo), int(hi-lo), graph.EdgeEntryBytes)
	row := sg.out[sh]
	for e := lo; e < hi; e++ {
		w := g.Neighbors[e]
		d := sg.owner[w]
		row[d] = append(row[d], shardMsg{w: w, x: x(e, w)})
	}
}

// flushGather issues gb when it reached the chunk bound (or force) and
// returns the emptied buffer.
func flushGather(img *Image, gb []uint64, force bool) []uint64 {
	if (force && len(gb) > 0) || len(gb)+3 > shardGatherChunk {
		img.M.AccessGather(gb)
		gb = gb[:0]
	}
	return gb
}

// --- BFS ---------------------------------------------------------------

type bfsShardRun struct {
	sg    *ShardGroup
	hops  []int64
	root  uint32
	level int64
	buf   int
}

func (r *bfsShardRun) seed(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	img.M.Access(img.workAddr(0, int(sg.cuts[sh]))) // push root
	img.M.Access(img.propAddr(r.root))              // initialize root's property entry
	sg.cur[sh] = append(sg.cur[sh][:0], r.root)
}

func (r *bfsShardRun) scatter(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	base := int(sg.cuts[sh])
	for i, v := range sg.cur[sh] {
		img.M.Access(img.workAddr(r.buf, base+i)) // pop v from the worklist
		sg.sendAll(sh, img, v, func(uint64, uint32) uint64 { return 0 })
	}
}

func (r *bfsShardRun) apply(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	base := int(sg.cuts[sh])
	next := sg.next[sh][:0]
	gb := img.gbuf[:0]
	for src := range sg.imgs {
		msgs := sg.out[src][sh]
		for _, msg := range msgs {
			gb = flushGather(img, gb, false)
			w := msg.w
			gb = append(gb, img.propAddr(w)) // irregular property read
			if r.hops[w] == -1 {
				r.hops[w] = r.level
				gb = append(gb,
					img.propAddr(w), // property write
					img.workAddr(1-r.buf, base+len(next)))
				next = append(next, w)
			}
		}
		sg.out[src][sh] = msgs[:0]
	}
	img.gbuf = flushGather(img, gb, true)
	sg.next[sh] = next
}

// --- SSSP --------------------------------------------------------------

type ssspShardRun struct {
	sg     *ShardGroup
	dist   []int64
	inNext []bool
	root   uint32
	buf    int
}

func (r *ssspShardRun) seed(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	img.M.Access(img.workAddr(0, int(sg.cuts[sh])))
	img.M.Access(img.propAddr(r.root))
	sg.cur[sh] = append(sg.cur[sh][:0], r.root)
}

func (r *ssspShardRun) scatter(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	g := img.G
	base := int(sg.cuts[sh])
	for i, v := range sg.cur[sh] {
		img.M.Access(img.workAddr(r.buf, base+i))
		dv := r.dist[v]
		// The weights stream alongside the neighbor IDs.
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		img.M.AccessRun(img.valueAddr(lo), int(hi-lo), graph.ValueEntryBytes)
		sg.sendAll(sh, img, v, func(e uint64, _ uint32) uint64 {
			return uint64(dv + int64(g.Weights[e]))
		})
	}
}

func (r *ssspShardRun) apply(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	base := int(sg.cuts[sh])
	next := sg.next[sh][:0]
	gb := img.gbuf[:0]
	for src := range sg.imgs {
		msgs := sg.out[src][sh]
		for _, msg := range msgs {
			gb = flushGather(img, gb, false)
			w := msg.w
			nd := int64(msg.x)
			gb = append(gb, img.propAddr(w)) // property read
			if r.dist[w] == -1 || nd < r.dist[w] {
				r.dist[w] = nd
				gb = append(gb, img.propAddr(w)) // property write
				if !r.inNext[w] {
					r.inNext[w] = true
					gb = append(gb, img.workAddr(1-r.buf, base+len(next)))
					next = append(next, w)
				}
			}
		}
		sg.out[src][sh] = msgs[:0]
	}
	img.gbuf = flushGather(img, gb, true)
	for _, w := range next {
		r.inNext[w] = false
	}
	sg.next[sh] = next
}

// --- PageRank ----------------------------------------------------------

type prShardRun struct {
	sg       *ShardGroup
	rank     []float64
	nextRank []float64
	base     float64
	localMax []float64 // per-shard max rank delta this iteration
}

func (r *prShardRun) scatter(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	g := img.G
	for v := sg.cuts[sh]; v < sg.cuts[sh+1]; v++ {
		img.M.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		deg := hi - lo
		if deg == 0 {
			continue
		}
		img.M.Access(img.propAddr(v)) // sequential read of rank[v]
		contrib := prDamping * r.rank[v] / float64(deg)
		bits := math.Float64bits(contrib)
		img.M.AccessRun(img.edgeAddr(lo), int(deg), graph.EdgeEntryBytes)
		row := sg.out[sh]
		for e := lo; e < hi; e++ {
			w := g.Neighbors[e]
			d := sg.owner[w]
			row[d] = append(row[d], shardMsg{w: w, x: bits})
		}
	}
}

func (r *prShardRun) apply(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	lo, hi := sg.cuts[sh], sg.cuts[sh+1]
	for v := lo; v < hi; v++ {
		r.nextRank[v] = 0
	}
	gb := img.gbuf[:0]
	for src := range sg.imgs {
		msgs := sg.out[src][sh]
		for _, msg := range msgs {
			gb = flushGather(img, gb, false)
			gb = append(gb, img.propAddr(msg.w)+8) // next-rank RMW scatter
			r.nextRank[msg.w] += math.Float64frombits(msg.x)
		}
		sg.out[src][sh] = msgs[:0]
	}
	img.gbuf = flushGather(img, gb, true)
	// Sequential fold of next into rank over the owned window: one
	// property write per vertex, streamed as a single bulk run.
	if hi > lo {
		img.M.AccessRun(img.propAddr(lo), int(hi-lo), PropEntryBytes(img.App))
	}
	var maxDelta float64
	for v := lo; v < hi; v++ {
		nr := r.nextRank[v] + r.base
		if d := math.Abs(nr - r.rank[v]); d > maxDelta {
			maxDelta = d
		}
		r.rank[v] = nr
	}
	r.localMax[sh] = maxDelta
}

// --- Connected Components ----------------------------------------------

type ccShardRun struct {
	sg     *ShardGroup
	label  []int64
	inNext []bool
	buf    int
}

// seed is CC's initial superstep: every shard initializes and enqueues
// its own window (label write + worklist push per vertex).
func (r *ccShardRun) seed(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	next := sg.next[sh][:0]
	for v := sg.cuts[sh]; v < sg.cuts[sh+1]; v++ {
		r.label[v] = int64(v)
		img.M.Access(img.propAddr(v))         // initialize label
		img.M.Access(img.workAddr(0, int(v))) // enqueue everyone
		next = append(next, v)
	}
	sg.next[sh] = next
}

func (r *ccShardRun) scatter(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	base := int(sg.cuts[sh])
	for i, v := range sg.cur[sh] {
		img.M.Access(img.workAddr(r.buf, base+i))
		lv := uint64(r.label[v])
		sg.sendAll(sh, img, v, func(uint64, uint32) uint64 { return lv })
	}
}

func (r *ccShardRun) apply(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	base := int(sg.cuts[sh])
	next := sg.next[sh][:0]
	gb := img.gbuf[:0]
	for src := range sg.imgs {
		msgs := sg.out[src][sh]
		for _, msg := range msgs {
			gb = flushGather(img, gb, false)
			w := msg.w
			lv := int64(msg.x)
			gb = append(gb, img.propAddr(w)) // read neighbor label
			if r.label[w] > lv {
				r.label[w] = lv
				gb = append(gb, img.propAddr(w)) // write
				if !r.inNext[w] {
					r.inNext[w] = true
					gb = append(gb, img.workAddr(1-r.buf, base+len(next)))
					next = append(next, w)
				}
			}
		}
		sg.out[src][sh] = msgs[:0]
	}
	img.gbuf = flushGather(img, gb, true)
	for _, w := range next {
		r.inNext[w] = false
	}
	sg.next[sh] = next
}

// --- Betweenness Centrality --------------------------------------------

type bcShardRun struct {
	sg     *ShardGroup
	bc     []float64
	dist   []int32
	sigma  []float64
	delta  []float64
	src    uint32
	level  int32
	buf    int
	revCnt []int // per-shard reverse-sweep pop counter (resets per source)
}

// reset is the per-source superstep: each shard streams a dist-field
// reset over its property window and the source's owner seeds the
// frontier.
func (r *bcShardRun) reset(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	lo, hi := sg.cuts[sh], sg.cuts[sh+1]
	if hi > lo {
		img.M.AccessRun(img.propAddr(lo), int(hi-lo), bcPropEntryBytes)
	}
	for v := lo; v < hi; v++ {
		r.dist[v] = -1
		r.sigma[v] = 0
		r.delta[v] = 0
	}
	r.revCnt[sh] = 0
	next := sg.next[sh][:0]
	if r.src >= lo && r.src < hi {
		r.dist[r.src] = 0
		r.sigma[r.src] = 1
		img.M.Access(img.propAddr(r.src) + 8) // sigma write
		img.M.Access(img.workAddr(0, int(lo)))
		next = append(next, r.src)
	}
	sg.next[sh] = next
}

func (r *bcShardRun) scatter(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	base := int(sg.cuts[sh])
	for i, v := range sg.cur[sh] {
		img.M.Access(img.workAddr(r.buf, base+i))
		sv := math.Float64bits(r.sigma[v])
		sg.sendAll(sh, img, v, func(uint64, uint32) uint64 { return sv })
	}
}

func (r *bcShardRun) apply(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	base := int(sg.cuts[sh])
	next := sg.next[sh][:0]
	gb := img.gbuf[:0]
	for src := range sg.imgs {
		msgs := sg.out[src][sh]
		for _, msg := range msgs {
			gb = flushGather(img, gb, false)
			w := msg.w
			gb = append(gb, img.propAddr(w)) // dist read
			if r.dist[w] == -1 {
				r.dist[w] = r.level
				gb = append(gb, img.workAddr(1-r.buf, base+len(next)))
				next = append(next, w)
			}
			if r.dist[w] == r.level {
				r.sigma[w] += math.Float64frombits(msg.x)
				gb = append(gb, img.propAddr(w)+8) // sigma RMW
			}
		}
		sg.out[src][sh] = msgs[:0]
	}
	img.gbuf = flushGather(img, gb, true)
	sg.next[sh] = next
}

// reverse processes the shard's window vertices sitting at the current
// level: Brandes' dependency accumulation over out-edges, reading each
// successor's finalized dist/sigma/delta (possibly remote, charged
// locally) and writing the owned delta and centrality entries.
func (r *bcShardRun) reverse(sh int) {
	sg := r.sg
	img := sg.imgs[sh]
	g := img.G
	base := int(sg.cuts[sh])
	gb := img.gbuf[:0]
	for v := sg.cuts[sh]; v < sg.cuts[sh+1]; v++ {
		if r.dist[v] != r.level {
			continue
		}
		img.M.Access(img.workAddr(0, base+r.revCnt[sh])) // pop the order stack
		r.revCnt[sh]++
		img.M.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
		dv := r.dist[v]
		sv := r.sigma[v]
		img.M.Access(img.propAddr(v) + 8) // sigma read
		acc := 0.0
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		img.M.AccessRun(img.edgeAddr(lo), int(hi-lo), graph.EdgeEntryBytes)
		gb = gb[:0]
		for e := lo; e < hi; e++ {
			w := g.Neighbors[e]
			gb = append(gb, img.propAddr(w)) // dist read
			if r.dist[w] == dv+1 {
				gb = append(gb, img.propAddr(w)+8, img.propAddr(w)+16)
				acc += sv / r.sigma[w] * (1 + r.delta[w])
			}
		}
		img.M.AccessGather(gb)
		r.delta[v] = acc
		img.M.Access(img.propAddr(v) + 16) // delta write
		if v != r.src {
			r.bc[v] += r.delta[v]
		}
	}
	img.gbuf = gb
}
