package analytics

import "graphmem/internal/graph"

// Betweenness Centrality is the second application §3.2 names as built
// on BFS. This is the k-source approximation of Brandes' algorithm:
// from each of k sampled sources, a forward BFS computes shortest-path
// counts (sigma) and a reverse sweep accumulates dependencies (delta)
// onto the centrality scores.
//
// The property array holds per-vertex algorithm state — (dist, sigma,
// delta) — in 24-byte entries, all updated through the same
// pointer-indirect neighbor accesses as BFS, tripling the irregular
// bytes per touch: BC is the most property-hungry workload in the
// repository.

// bcPropEntryBytes is the BC property entry size (three 8-byte fields).
const bcPropEntryBytes = 24

// bcSources picks k deterministic, distinct, non-isolated source
// vertices spread over the degree distribution.
func bcSources(g *graph.Graph, k int) []uint32 {
	if k < 1 {
		k = 1
	}
	var sources []uint32
	stride := g.N/k + 1
	for v := 0; v < g.N && len(sources) < k; v += stride {
		// Walk forward to the next vertex with outgoing edges.
		for u := v; u < g.N; u++ {
			if g.OutDegree(uint32(u)) > 0 {
				sources = append(sources, uint32(u))
				break
			}
		}
	}
	if len(sources) == 0 {
		sources = []uint32{g.MaxDegreeVertex()}
	}
	return sources
}

// runBC executes k-source Brandes against the simulated memory system
// and returns the (unnormalized) centrality scores. Both phases'
// per-neighbor dist/sigma/delta accesses gather-batch per vertex,
// exactly as in BFS.
func (img *Image) runBC(k int) []float64 {
	g := img.G
	m := img.M
	n := g.N
	gb := img.gbuf

	bc := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)

	// visit order stack (vertices in BFS discovery order) lives in the
	// worklist array; the frontier reuses its second half.
	order := make([]uint32, 0, n)

	distAddr := func(v uint32) uint64 { return img.propAddr(v) }
	sigmaAddr := func(v uint32) uint64 { return img.propAddr(v) + 8 }
	deltaAddr := func(v uint32) uint64 { return img.propAddr(v) + 16 }

	for _, src := range bcSources(g, k) {
		// Reset per-source state: streaming pass over the property
		// array, one bulk run of dist-field writes.
		m.AccessRun(distAddr(0), n, bcPropEntryBytes)
		for v := 0; v < n; v++ {
			dist[v] = -1
			sigma[v] = 0
			delta[v] = 0
		}
		dist[src] = 0
		sigma[src] = 1
		m.Access(sigmaAddr(src))

		order = order[:0]
		cur := []uint32{src}
		m.Access(img.workAddr(0, 0))
		level := int32(0)
		buf := 0
		for len(cur) > 0 {
			level++
			var next []uint32
			for i, v := range cur {
				m.Access(img.workAddr(buf, i))
				order = append(order, v)
				m.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
				sv := sigma[v]
				lo, hi := g.Offsets[v], g.Offsets[v+1]
				m.AccessRun(img.edgeAddr(lo), int(hi-lo), graph.EdgeEntryBytes)
				gb = gb[:0]
				for e := lo; e < hi; e++ {
					w := g.Neighbors[e]
					gb = append(gb, distAddr(w))
					if dist[w] == -1 {
						dist[w] = level
						gb = append(gb, img.workAddr(1-buf, len(next)))
						next = append(next, w)
					}
					if dist[w] == level {
						sigma[w] += sv
						gb = append(gb, sigmaAddr(w))
					}
				}
				m.AccessGather(gb)
			}
			cur = next
			buf = 1 - buf
		}

		// Reverse sweep: process vertices farthest-first; every
		// successor w (at dist+1) already carries its final dependency,
		// so v accumulates sigma(v)/sigma(w) * (1 + delta(w)) over its
		// successors (Brandes' accumulation over out-edges).
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			m.Access(img.workAddr(0, i))
			m.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
			dv := dist[v]
			sv := sigma[v]
			m.Access(sigmaAddr(v))
			acc := 0.0
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			m.AccessRun(img.edgeAddr(lo), int(hi-lo), graph.EdgeEntryBytes)
			gb = gb[:0]
			for e := lo; e < hi; e++ {
				w := g.Neighbors[e]
				gb = append(gb, distAddr(w))
				if dist[w] == dv+1 {
					gb = append(gb, sigmaAddr(w), deltaAddr(w))
					acc += sv / sigma[w] * (1 + delta[w])
				}
			}
			m.AccessGather(gb)
			delta[v] = acc
			m.Access(deltaAddr(v))
			if v != src {
				bc[v] += delta[v]
			}
		}
	}
	img.gbuf = gb
	return bc
}

// NativeBC is the uninstrumented reference implementation with
// identical source selection and accumulation order.
func NativeBC(g *graph.Graph, k int) []float64 {
	n := g.N
	bc := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]uint32, 0, n)

	for _, src := range bcSources(g, k) {
		for v := 0; v < n; v++ {
			dist[v] = -1
			sigma[v] = 0
			delta[v] = 0
		}
		dist[src] = 0
		sigma[src] = 1
		order = order[:0]
		cur := []uint32{src}
		level := int32(0)
		for len(cur) > 0 {
			level++
			var next []uint32
			for _, v := range cur {
				order = append(order, v)
				sv := sigma[v]
				for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
					w := g.Neighbors[e]
					if dist[w] == -1 {
						dist[w] = level
						next = append(next, w)
					}
					if dist[w] == level {
						sigma[w] += sv
					}
				}
			}
			cur = next
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			dv := dist[v]
			sv := sigma[v]
			acc := 0.0
			for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
				w := g.Neighbors[e]
				if dist[w] == dv+1 {
					acc += sv / sigma[w] * (1 + delta[w])
				}
			}
			delta[v] = acc
			if v != src {
				bc[v] += delta[v]
			}
		}
	}
	return bc
}
