package analytics

import "graphmem/internal/graph"

// runSSSP executes frontier-based Bellman–Ford relaxation: like BFS but
// reading the values (weight) array alongside each neighbor and
// re-enqueueing vertices whose distance improves. A membership bitmap
// deduplicates frontier insertions, as work-efficient CPU
// implementations do. The per-neighbor relaxation accesses gather-batch
// per vertex, exactly as in BFS.
func (img *Image) runSSSP(root uint32) []int64 {
	g := img.G
	m := img.M
	gb := img.gbuf

	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = -1 // unreached
	}
	dist[root] = 0

	inNext := make([]bool, g.N)
	cur := make([]uint32, 0, g.N)
	next := make([]uint32, 0, g.N)
	cur = append(cur, root)
	m.Access(img.workAddr(0, 0))
	m.Access(img.propAddr(root))

	buf := 0
	for len(cur) > 0 {
		next = next[:0]
		for i, v := range cur {
			m.Access(img.workAddr(buf, i))
			m.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
			dv := dist[v]
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			// The neighbor IDs and their weights stream sequentially
			// from the edge and values arrays before the relaxations.
			m.AccessRun(img.edgeAddr(lo), int(hi-lo), graph.EdgeEntryBytes)
			m.AccessRun(img.valueAddr(lo), int(hi-lo), graph.ValueEntryBytes)
			gb = gb[:0]
			for e := lo; e < hi; e++ {
				w := g.Neighbors[e]
				nd := dv + int64(g.Weights[e])
				gb = append(gb, img.propAddr(w)) // property read
				if dist[w] == -1 || nd < dist[w] {
					dist[w] = nd
					gb = append(gb, img.propAddr(w)) // property write
					if !inNext[w] {
						inNext[w] = true
						gb = append(gb, img.workAddr(1-buf, len(next)))
						next = append(next, w)
					}
				}
			}
			m.AccessGather(gb)
		}
		for _, w := range next {
			inNext[w] = false
		}
		cur, next = next, cur
		buf = 1 - buf
	}
	img.gbuf = gb
	return dist
}
