package analytics

import "graphmem/internal/graph"

// runBFS executes the paper's push-based frontier BFS (Fig. 4's
// programming model): iterate the current worklist, read each vertex's
// CSR offsets, stream its neighbor IDs from the edge array (one bulk
// run), and perform the pointer-indirect read-modify-write of the
// property array entry for every unvisited neighbor. The per-neighbor
// property reads/writes and frontier pushes are collected into the
// image's gather buffer in exact scalar order and issued as one
// AccessGather batch per vertex — the simulated stream is unchanged,
// only the simulator's dispatch is batched.
func (img *Image) runBFS(root uint32) []int64 {
	g := img.G
	m := img.M
	gb := img.gbuf

	hops := make([]int64, g.N)
	for i := range hops {
		hops[i] = -1
	}
	hops[root] = 0

	cur := make([]uint32, 0, g.N)
	next := make([]uint32, 0, g.N)
	cur = append(cur, root)
	m.Access(img.workAddr(0, 0)) // push root
	m.Access(img.propAddr(root)) // initialize root's property entry

	level := int64(0)
	buf := 0
	for len(cur) > 0 {
		level++
		next = next[:0]
		for i, v := range cur {
			m.Access(img.workAddr(buf, i)) // pop v from the worklist
			// Two adjacent offset reads delimit the neighbor run.
			m.AccessRun(img.vertexAddr(v), 2, graph.VertexEntryBytes)
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			// Sequential neighbor fetch: the whole run streams from the
			// edge array before the per-neighbor property work.
			m.AccessRun(img.edgeAddr(lo), int(hi-lo), graph.EdgeEntryBytes)
			gb = gb[:0]
			for e := lo; e < hi; e++ {
				w := g.Neighbors[e]
				gb = append(gb, img.propAddr(w)) // irregular property read
				if hops[w] == -1 {
					hops[w] = level
					gb = append(gb,
						img.propAddr(w), // property write
						img.workAddr(1-buf, len(next)))
					next = append(next, w)
				}
			}
			m.AccessGather(gb)
		}
		cur, next = next, cur
		buf = 1 - buf
	}
	img.gbuf = gb
	return hops
}
