//go:build !simcheck

package check

// Enabled reports whether runtime invariant audits are compiled in.
// Without the simcheck build tag audits vanish at compile time.
const Enabled = false
