//go:build simcheck

package check

// Enabled reports whether runtime invariant audits are compiled in.
// This build has the simcheck tag: Audit calls run their scans.
const Enabled = true
