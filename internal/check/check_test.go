package check

import (
	"errors"
	"testing"
)

func TestAssertfTruePasses(t *testing.T) {
	Assertf(true, "should not fire")
}

func TestAssertfFalsePanicsWithFailure(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Assertf(false) did not panic")
		}
		if !IsFailure(v) {
			t.Fatalf("panic value %T is not a check.Failure", v)
		}
		f := v.(Failure)
		if f.Error() != "boom 7" {
			t.Fatalf("message = %q, want %q", f.Error(), "boom 7")
		}
	}()
	Assertf(false, "boom %d", 7)
}

func TestFailfIsAnError(t *testing.T) {
	var err error = Failf("x %s", "y")
	if err.Error() != "x y" {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestAuditRespectsEnabled(t *testing.T) {
	ran := false
	fire := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				if !IsFailure(v) {
					t.Fatalf("panic value %T is not a check.Failure", v)
				}
				err = v.(Failure)
			}
		}()
		Audit("test", func() error {
			ran = true
			return errors.New("broken invariant")
		})
		return nil
	}
	err := fire()
	if Enabled {
		if !ran {
			t.Fatal("simcheck build: Audit did not run its scan")
		}
		if err == nil {
			t.Fatal("simcheck build: failing audit did not panic")
		}
	} else {
		if ran {
			t.Fatal("plain build: Audit ran its scan despite Enabled=false")
		}
		if err != nil {
			t.Fatalf("plain build: Audit raised %v", err)
		}
	}
}

func TestAuditPassesCleanScan(t *testing.T) {
	// Must not panic under either build.
	Audit("clean", func() error { return nil })
}
