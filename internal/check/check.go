// Package check is the simulator's shared assertion and runtime
// invariant-sanitizer layer.
//
// Two pieces live here:
//
//   - Failf / Assertf: the project-wide replacement for bare panic(...)
//     in library packages. Invariant violations construct a typed
//     Failure via Failf and raise it with panic(check.Failf(...)), so
//     every abort in the simulator carries a uniform, greppable value
//     and the simlint rule SL005 can verify no untyped panics sneak in.
//
//   - Audit: a build-tag-gated hook (-tags simcheck) that runs an
//     expensive structural audit (buddy allocator, TLB, address space)
//     at policy-decision boundaries. Without the tag, Enabled is a
//     false constant and the compiler removes the audit calls entirely,
//     so the hot path pays nothing in normal builds. The campaign
//     scheduler audits through the same hook: sched.Pool verifies task
//     conservation at every barrier, and exp.Suite verifies its promise
//     caches quiesced (every installed promise resolved) after each
//     campaign phase.
package check

import "fmt"

// Failure is the value carried by every simulator invariant panic. It
// implements error so recovered failures can flow through error paths.
type Failure struct {
	msg string
}

// Error returns the failure message.
func (f Failure) Error() string { return f.msg }

// String returns the failure message.
func (f Failure) String() string { return f.msg }

// Failf constructs a Failure. It does not raise it: call sites abort
// with panic(check.Failf(...)), which keeps the compiler's control-flow
// analysis intact (a trailing panic still terminates the branch).
func Failf(format string, args ...any) Failure {
	return Failure{msg: fmt.Sprintf(format, args...)}
}

// Assertf raises a Failure when cond is false. It is always on — use it
// for cheap preconditions whose violation means a simulator bug, not a
// modelled condition.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(Failf(format, args...))
	}
}

// Audit runs an invariant scan when the simcheck build tag is active
// and raises a Failure describing the first violation. name labels the
// audited structure in the failure message. Without the tag this is a
// no-op and the fn closure is never invoked, so audits may capture
// expensive state freely.
func Audit(name string, fn func() error) {
	if !Enabled {
		return
	}
	if err := fn(); err != nil {
		panic(Failf("simcheck: %s audit: %v", name, err))
	}
}

// IsFailure reports whether a recovered panic value originated from
// this package (Assertf, Audit, or a panic(check.Failf(...)) site).
func IsFailure(v any) bool {
	_, ok := v.(Failure)
	return ok
}
