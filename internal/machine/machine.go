// Package machine assembles the full simulated system — physical memory,
// an address space, the kernel's THP policy, the TLB hierarchy, and the
// data caches — behind a single Access entry point that charges cycle
// costs the way the paper's hardware does: data latency plus translation
// latency plus any fault-handling work on the critical path.
//
// Simulated time is a cycle counter; "runtime" comparisons across
// configurations are ratios of these counters over identical access
// streams.
//
// The access engine is staged across six files (DESIGN.md §4):
//
//   - access.go        the branch-lean fast path: one translation-cache
//     compare, TLB probe, data-cache probe, and inlined allocation-free
//     accounting. Tagged //simlint:fastpath (rule SL007).
//   - access_run.go    the bulk path: AccessRun coalesces sequential
//     streams into page segments and line batches with aggregated,
//     scalar-identical accounting. Tagged //simlint:fastpath.
//   - access_gather.go the gather path: AccessGather batches irregular
//     (data-dependent) address vectors, exploiting same-page and
//     same-line runs inside a batch. Tagged //simlint:fastpath.
//   - access_slow.go   everything rare: page faults, STLB probes, page
//     walks, simulated-PTE fetches, TLB fills, scalar degradation loops.
//   - events.go       the event layer: background actors (khugepaged,
//     tickers) register cycle deadlines; the fast path pays a single
//     compare per access and dispatches only when a deadline is due.
//   - stats.go        phases, per-array attribution, and the observer
//     spine (tracer and other composable per-access hooks).
//
// This file holds construction and the cross-cutting small pieces.
package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/memsys"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

// Config bundles everything needed to build a Machine.
type Config struct {
	MemoryBytes uint64
	TLB         tlb.Config
	Cache       cache.Config
	Cost        cost.Model
	Kernel      oskernel.Config

	// SimulatePageTables switches page walks from the constant
	// per-level cost model to real fetches: paging structures live in
	// simulated frames (unmovable kernel memory) and walk entries are
	// read through the data cache hierarchy, so hot page-table entries
	// cost an L1 hit and cold ones cost DRAM.
	SimulatePageTables bool
}

// DefaultConfig returns a machine mirroring the paper's evaluation node
// (Table 1), with memory scaled to memBytes.
func DefaultConfig(memBytes uint64) Config {
	return Config{
		MemoryBytes: memBytes,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Default(),
		Kernel:      oskernel.DefaultConfig(),
	}
}

// trCacheWays is the number of victim entries behind the primary
// translation-cache entry. Gathers over power-law neighbor lists revisit
// a small working set of hot property pages; a handful of ways captures
// most of the revisits without turning the refill probe into a scan.
const trCacheWays = 8

// trEntry is one VA-tagged victim entry of the translation cache.
// span == 0 means empty.
type trEntry struct {
	base, span uint64
	tr         vm.Translation
}

// Machine is one simulated host running one workload.
//
// The fields a sharded run must keep private per shard — the TLB and
// cache hierarchies, the translation cache, and all phase/array
// accounting — live in the embedded shardState vector (shardstate.go);
// field promotion keeps every access site unchanged. The remaining
// fields are either per-machine infrastructure that forks wholesale
// (memory, address space, kernel) or configuration identical across
// shards.
type Machine struct {
	Mem    *memsys.Memory
	Space  *vm.AddressSpace
	Kernel *oskernel.Kernel
	Model  cost.Model

	cycles uint64
	simPT  bool

	// noBulk forces AccessRun onto the per-access path (access_run.go).
	// Bulk charging is cycle-identical by construction, so this exists
	// only to prove it: the CI gate diffs a campaign run both ways. Set
	// by SetBulk (core opens it via the GRAPHMEM_NO_BULK hatch).
	noBulk bool

	// noGather forces AccessGather onto the per-access path
	// (access_gather.go). Like noBulk it exists to prove equivalence:
	// set by SetGather (core opens it via the GRAPHMEM_NO_GATHER hatch).
	noGather bool

	// Event layer state (events.go): the earliest cycle at which any
	// background actor is due. The fast path compares cycles against
	// this once per access.
	nextEvent uint64
	tickers   []ticker

	// Observer spine (stats.go). The fast path tests emptiness only.
	observers []Observer
	ev        AccessEvent // reused per-notify to keep dispatch alloc-free

	shardState
}

// New builds a machine.
func New(cfg Config) *Machine {
	mem := memsys.New(cfg.MemoryBytes)
	space := vm.NewAddressSpace(mem)
	space.SimPageTables = cfg.SimulatePageTables
	m := &Machine{
		simPT:  cfg.SimulatePageTables,
		Mem:    mem,
		Space:  space,
		Kernel: oskernel.New(cfg.Kernel, space, cfg.Cost),
		Model:  cfg.Cost,
		shardState: shardState{
			TLB:   tlb.New(cfg.TLB),
			Cache: cache.New(cfg.Cache),
		},
	}
	space.Shootdown = m.shootdown
	m.phase = PhaseStats{Name: "boot"}
	m.armEvents()
	return m
}

// shootdown is the address space's mapping-change callback: it drops
// every entry of the machine's translation cache — the primary entry and
// the whole victim array, conservatively, whatever the changed range was
// — and forwards the invalidation to the TLB hierarchy. Clearing
// everything keeps the widened cache trivially coherent: no entry can
// outlive any mapping change.
func (m *Machine) shootdown(va uint64, size vm.PageSizeClass) {
	m.trSpan = 0
	for i := range m.trWide {
		m.trWide[i].span = 0
	}
	m.TLB.Invalidate(va, size)
}

// Cycles returns total simulated time so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// AddCycles charges pure compute time (no memory access) to the current
// phase, used for modelling non-memory work such as preprocessing CPU
// time. It does not dispatch background events: only Access drives them,
// matching the pre-event-layer engine.
func (m *Machine) AddCycles(c uint64) {
	m.cycles += c
	m.phase.Cycles += c
}

// SetBulk enables or disables the bulk access engine (AccessRun's
// coalesced path). Disabling is observationally invisible — bulk
// charging is cycle-identical to per-access dispatch — and exists for
// the equivalence gate in CI and for differential tests.
func (m *Machine) SetBulk(enabled bool) { m.noBulk = !enabled }

// SetGather enables or disables the gather access engine (AccessGather's
// batched path). Like SetBulk, disabling is observationally invisible —
// gather charging is cycle-identical to per-access dispatch — and exists
// for the equivalence gate in CI and for differential tests.
func (m *Machine) SetGather(enabled bool) { m.noGather = !enabled }

// Touch faults in (and accesses) every page of the byte range
// [va, va+bytes), in ascending order — the simulator's equivalent of an
// initialization loop writing an array sequentially. It charges one
// access per cache line to approximate streaming initialization.
func (m *Machine) Touch(va, bytes uint64) {
	if bytes == 0 {
		return
	}
	lines := (bytes-1)>>cache.LineShift + 1
	m.AccessRun(va, int(lines), 1<<cache.LineShift)
}
