// Package machine assembles the full simulated system — physical memory,
// an address space, the kernel's THP policy, the TLB hierarchy, and the
// data caches — behind a single Access entry point that charges cycle
// costs the way the paper's hardware does: data latency plus translation
// latency plus any fault-handling work on the critical path.
//
// Simulated time is a cycle counter; "runtime" comparisons across
// configurations are ratios of these counters over identical access
// streams.
package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/check"
	"graphmem/internal/cost"
	"graphmem/internal/memsys"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

// Config bundles everything needed to build a Machine.
type Config struct {
	MemoryBytes uint64
	TLB         tlb.Config
	Cache       cache.Config
	Cost        cost.Model
	Kernel      oskernel.Config

	// SimulatePageTables switches page walks from the constant
	// per-level cost model to real fetches: paging structures live in
	// simulated frames (unmovable kernel memory) and walk entries are
	// read through the data cache hierarchy, so hot page-table entries
	// cost an L1 hit and cold ones cost DRAM.
	SimulatePageTables bool
}

// DefaultConfig returns a machine mirroring the paper's evaluation node
// (Table 1), with memory scaled to memBytes.
func DefaultConfig(memBytes uint64) Config {
	return Config{
		MemoryBytes: memBytes,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Default(),
		Kernel:      oskernel.DefaultConfig(),
	}
}

// ArrayStats attributes memory behaviour to one registered array (VMA),
// reproducing the paper's per-data-structure analysis (Fig. 4/5).
type ArrayStats struct {
	Name     string
	Accesses uint64
	L1Misses uint64
	Walks    uint64
}

// PhaseStats aggregates behaviour over one named phase of execution
// (the paper reports initialization and kernel time separately).
type PhaseStats struct {
	Name   string
	Cycles uint64

	Accesses uint64

	DataCycles        uint64 // time in the data cache/DRAM hierarchy
	TranslationCycles uint64 // STLB hits + page walks
	FaultCycles       uint64 // kernel fault handling on the critical path

	TLB   tlb.Stats
	Cache cache.Stats
}

// TranslationShare is the fraction of phase cycles spent translating
// (the paper's Fig. 2 metric, extended with fault time excluded).
func (p PhaseStats) TranslationShare() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return float64(p.TranslationCycles) / float64(p.Cycles)
}

// Machine is one simulated host running one workload.
type Machine struct {
	Mem    *memsys.Memory
	Space  *vm.AddressSpace
	Kernel *oskernel.Kernel
	TLB    *tlb.Hierarchy
	Cache  *cache.Hierarchy
	Model  cost.Model

	cycles uint64
	simPT  bool

	// Tracer, when non-nil, receives every access (virtual address and
	// the VMA's StatsTag) — the hook for trace capture.
	Tracer interface{ Trace(va uint64, tag uint8) }

	tickers []ticker

	phase      PhaseStats
	tlbAtPhase tlb.Stats
	cchAtPhase cache.Stats
	done       []PhaseStats

	arrays []ArrayStats
}

// New builds a machine.
func New(cfg Config) *Machine {
	mem := memsys.New(cfg.MemoryBytes)
	space := vm.NewAddressSpace(mem)
	space.SimPageTables = cfg.SimulatePageTables
	m := &Machine{
		simPT:  cfg.SimulatePageTables,
		Mem:    mem,
		Space:  space,
		Kernel: oskernel.New(cfg.Kernel, space, cfg.Cost),
		TLB:    tlb.New(cfg.TLB),
		Cache:  cache.New(cfg.Cache),
		Model:  cfg.Cost,
	}
	space.Shootdown = m.TLB.Invalidate
	m.phase = PhaseStats{Name: "boot"}
	return m
}

// Cycles returns total simulated time so far.
func (m *Machine) Cycles() uint64 { return m.cycles }

// AddCycles charges pure compute time (no memory access) to the current
// phase, used for modelling non-memory work such as preprocessing CPU
// time.
func (m *Machine) AddCycles(c uint64) {
	m.cycles += c
	m.phase.Cycles += c
}

// RegisterArray tags a VMA for per-array attribution and returns its
// stats index.
func (m *Machine) RegisterArray(v *vm.VMA) int {
	v.StatsTag = len(m.arrays)
	m.arrays = append(m.arrays, ArrayStats{Name: v.Name})
	return v.StatsTag
}

// ArrayStats returns a copy of the per-array counters.
func (m *Machine) ArrayStats() []ArrayStats {
	out := make([]ArrayStats, len(m.arrays))
	copy(out, m.arrays)
	return out
}

// BeginPhase closes the current phase and starts a new one.
func (m *Machine) BeginPhase(name string) {
	m.closePhase()
	m.phase = PhaseStats{Name: name}
	m.tlbAtPhase = m.TLB.Stats()
	m.cchAtPhase = m.Cache.Stats()
}

func (m *Machine) closePhase() {
	cur := m.TLB.Stats()
	m.phase.TLB = tlb.Stats{
		Lookups:    cur.Lookups - m.tlbAtPhase.Lookups,
		L1Misses:   cur.L1Misses - m.tlbAtPhase.L1Misses,
		STLBMisses: cur.STLBMisses - m.tlbAtPhase.STLBMisses,
		WalkCycles: cur.WalkCycles - m.tlbAtPhase.WalkCycles,
	}
	cch := m.Cache.Stats()
	m.phase.Cache = cache.Stats{
		Accesses: cch.Accesses - m.cchAtPhase.Accesses,
		L1Misses: cch.L1Misses - m.cchAtPhase.L1Misses,
		LLCMiss:  cch.LLCMiss - m.cchAtPhase.LLCMiss,
	}
	m.done = append(m.done, m.phase)
}

// FinishPhases closes the current phase and returns all completed
// phases in order.
func (m *Machine) FinishPhases() []PhaseStats {
	m.closePhase()
	m.phase = PhaseStats{Name: "after"}
	m.tlbAtPhase = m.TLB.Stats()
	m.cchAtPhase = m.Cache.Stats()
	return m.done
}

// Phase returns the named completed phase, or false.
func (m *Machine) Phase(name string) (PhaseStats, bool) {
	for _, p := range m.done {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStats{}, false
}

// Access simulates one data memory access at virtual address va and
// advances simulated time. Both loads and stores take this path: the
// simulator does not model store buffers, so the cost of a store's
// translation and cache fill equals a load's.
func (m *Machine) Access(va uint64) {
	var cycles uint64

	tr, fault, ok := m.Space.Translate(va)
	if !ok {
		if fault == nil {
			panic(check.Failf("machine: access to unmapped address %#x", va))
		}
		fc := m.Kernel.HandleFault(fault)
		cycles += fc
		m.phase.FaultCycles += fc
		tr, _, ok = m.Space.Translate(va)
		if !ok {
			panic(check.Failf("machine: fault handling did not map the page"))
		}
	}

	// Address translation.
	res := m.TLB.Lookup(va, tr.Size)
	var trCycles uint64
	switch {
	case res.STLBHit:
		trCycles = m.Model.STLBHit
	case res.Walked:
		memLv, pwcLv := m.TLB.WalkCost(va, tr.Size)
		trCycles = m.Model.STLBHit + uint64(pwcLv)*m.Model.WalkLevelPWC
		if m.simPT {
			// Fetch the walked entries through the cache hierarchy:
			// the deepest memLv levels go to memory.
			addrs, _ := m.Space.WalkEntryAddrs(va, tr.Size)
			for i := 0; i < memLv; i++ {
				switch m.Cache.Access(addrs[i]) {
				case cache.HitL1:
					trCycles += m.Model.L1DHit
				case cache.HitLLC:
					trCycles += m.Model.LLCHit
				default:
					trCycles += m.Model.DRAM
				}
			}
		} else {
			trCycles += uint64(memLv) * m.Model.WalkLevel
		}
		m.TLB.AddWalkCycles(trCycles)
		m.TLB.Fill(va, tr.Size)
	}
	cycles += trCycles
	m.phase.TranslationCycles += trCycles

	// Data access at the physical address.
	pa := uint64(tr.Frame)<<memsys.PageShift + (va - tr.BaseVA)
	var dataCycles uint64
	switch m.Cache.Access(pa) {
	case cache.HitL1:
		dataCycles = m.Model.L1DHit
	case cache.HitLLC:
		dataCycles = m.Model.LLCHit
	default:
		dataCycles = m.Model.DRAM
	}
	dataCycles += m.Model.Compute
	cycles += dataCycles
	m.phase.DataCycles += dataCycles

	// Region heat for heat-guided promotion policies.
	tr.VMA.Heat[(va-tr.VMA.Base)>>21]++

	if m.Tracer != nil {
		tag := uint8(0xFF)
		if tr.VMA.StatsTag >= 0 && tr.VMA.StatsTag < 0xFF {
			tag = uint8(tr.VMA.StatsTag)
		}
		m.Tracer.Trace(va, tag)
	}

	// Per-array attribution.
	if tag := tr.VMA.StatsTag; tag >= 0 {
		a := &m.arrays[tag]
		a.Accesses++
		if !res.L1Hit {
			a.L1Misses++
		}
		if res.Walked {
			a.Walks++
		}
	}

	m.cycles += cycles
	m.phase.Cycles += cycles
	m.phase.Accesses++

	m.Kernel.Tick(m.cycles)
	for i := range m.tickers {
		t := &m.tickers[i]
		if m.cycles-t.last >= t.interval {
			t.last = m.cycles
			t.fn(m.cycles)
		}
	}
}

// ticker is a periodic simulated-time callback.
type ticker struct {
	interval uint64
	last     uint64
	fn       func(now uint64)
}

// AddTicker registers fn to run (at most) once per interval simulated
// cycles, driven by Access. Used for background actors such as a
// dynamically churning co-runner.
func (m *Machine) AddTicker(interval uint64, fn func(now uint64)) {
	if interval == 0 {
		interval = 1
	}
	m.tickers = append(m.tickers, ticker{interval: interval, fn: fn})
}

// Touch faults in (and accesses) every page of the byte range
// [va, va+bytes), in ascending order — the simulator's equivalent of an
// initialization loop writing an array sequentially. It charges one
// access per cache line to approximate streaming initialization.
func (m *Machine) Touch(va, bytes uint64) {
	if bytes == 0 {
		return
	}
	end := va + bytes
	for a := va; a < end; a += 1 << cache.LineShift {
		m.Access(a)
	}
}
