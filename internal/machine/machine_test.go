package machine

import (
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/memsys"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

func newTestMachine(t *testing.T, kcfg oskernel.Config) *Machine {
	t.Helper()
	return New(Config{
		MemoryBytes: 64 << 20,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Fast(),
		Kernel:      kcfg,
	})
}

func TestAccessFaultsMapsCharges(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", memsys.HugeSize)
	m.BeginPhase("p")
	m.Access(v.Base + 5)
	if m.Cycles() == 0 {
		t.Fatal("no cycles charged")
	}
	ph := m.FinishPhases()
	var p PhaseStats
	for _, q := range ph {
		if q.Name == "p" {
			p = q
		}
	}
	if p.Accesses != 1 {
		t.Fatalf("phase accesses = %d", p.Accesses)
	}
	if p.FaultCycles == 0 {
		t.Fatal("fault cost not attributed")
	}
	if p.Cycles < p.FaultCycles+p.DataCycles {
		t.Fatal("phase cycle accounting inconsistent")
	}
}

func TestRepeatAccessCheap(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", memsys.HugeSize)
	m.Access(v.Base)
	before := m.Cycles()
	m.Access(v.Base)
	delta := m.Cycles() - before
	fast := cost.Fast()
	if delta != fast.L1DHit+fast.Compute {
		t.Fatalf("hot access cost %d, want %d", delta, fast.L1DHit+fast.Compute)
	}
}

func TestAccessUnmappedPanics(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("wild access did not panic")
		}
	}()
	m.Access(0x1)
}

func TestPhaseIsolation(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", memsys.HugeSize)
	m.BeginPhase("init")
	m.Touch(v.Base, v.Bytes)
	m.BeginPhase("kernel")
	m.Access(v.Base)
	m.FinishPhases()
	ini, ok := m.Phase("init")
	if !ok {
		t.Fatal("init phase missing")
	}
	ker, ok := m.Phase("kernel")
	if !ok {
		t.Fatal("kernel phase missing")
	}
	if ker.FaultCycles != 0 {
		t.Fatal("kernel phase saw faults after full init touch")
	}
	if ini.FaultCycles == 0 {
		t.Fatal("init phase saw no faults")
	}
	wantAccesses := uint64(memsys.HugeSize / 64)
	if ini.Accesses != wantAccesses {
		t.Fatalf("init accesses = %d, want %d", ini.Accesses, wantAccesses)
	}
	if ini.TLB.Lookups != wantAccesses {
		t.Fatalf("init TLB lookups = %d", ini.TLB.Lookups)
	}
}

func TestArrayAttribution(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	a := m.Space.Mmap("a", memsys.HugeSize)
	b := m.Space.Mmap("b", memsys.HugeSize)
	m.RegisterArray(a)
	m.RegisterArray(b)
	m.Access(a.Base)
	m.Access(a.Base + 4096)
	m.Access(b.Base)
	st := m.ArrayStats()
	if st[0].Name != "a" || st[0].Accesses != 2 {
		t.Fatalf("array a stats = %+v", st[0])
	}
	if st[1].Name != "b" || st[1].Accesses != 1 {
		t.Fatalf("array b stats = %+v", st[1])
	}
}

func TestTranslationChargesWalk(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	// 16MB of pages against a ~4MB-reach STLB (and well within the
	// machine's 64MB of memory, so no reclaim interferes).
	v := m.Space.Mmap("a", 8*memsys.HugeSize)
	m.BeginPhase("warm")
	// Touch enough distinct pages to overwhelm both TLB levels, then
	// re-touch: translation cycles must accrue.
	for p := 0; p < v.Pages; p++ {
		m.Access(v.PageVA(p))
	}
	m.BeginPhase("measure")
	for p := 0; p < v.Pages; p++ {
		m.Access(v.PageVA(p))
	}
	m.FinishPhases()
	meas, _ := m.Phase("measure")
	if meas.TLB.STLBMisses == 0 {
		t.Fatal("no walks on a 16MB stream against a 4MB-reach STLB")
	}
	if meas.TranslationCycles == 0 {
		t.Fatal("walks charged no translation cycles")
	}
	if meas.FaultCycles != 0 {
		t.Fatal("re-touch faulted")
	}
}

func TestHugeMappingReducesWalks(t *testing.T) {
	run := func(kcfg oskernel.Config) uint64 {
		m := newTestMachine(t, kcfg)
		v := m.Space.Mmap("a", 16*memsys.HugeSize)
		m.Touch(v.Base, v.Bytes) // fault in
		m.BeginPhase("measure")
		// Strided accesses across pages.
		for rep := 0; rep < 4; rep++ {
			for p := 0; p < v.Pages; p++ {
				m.Access(v.PageVA(p))
			}
		}
		m.FinishPhases()
		ph, _ := m.Phase("measure")
		return ph.TLB.L1Misses
	}
	missBase := run(oskernel.BaselineConfig())
	missHuge := run(oskernel.DefaultConfig())
	if missHuge*4 > missBase {
		t.Fatalf("huge pages did not reduce L1 TLB misses: %d vs %d", missHuge, missBase)
	}
}

func TestAddCycles(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	m.BeginPhase("p")
	m.AddCycles(12345)
	m.FinishPhases()
	p, _ := m.Phase("p")
	if p.Cycles != 12345 {
		t.Fatalf("phase cycles = %d", p.Cycles)
	}
}

func TestTranslationShare(t *testing.T) {
	p := PhaseStats{Cycles: 200, TranslationCycles: 50}
	if p.TranslationShare() != 0.25 {
		t.Fatalf("share = %v", p.TranslationShare())
	}
	var zero PhaseStats
	if zero.TranslationShare() != 0 {
		t.Fatal("zero-phase share not zero")
	}
}

type recordingTracer struct {
	vas  []uint64
	tags []uint8
}

func (r *recordingTracer) Trace(va uint64, tag uint8) {
	r.vas = append(r.vas, va)
	r.tags = append(r.tags, tag)
}

func TestTracerReceivesAccesses(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", memsys.HugeSize)
	m.RegisterArray(v)
	rec := &recordingTracer{}
	m.SetTracer(rec)
	m.Access(v.Base + 100)
	m.Access(v.Base + 5000)
	if len(rec.vas) != 2 || rec.vas[0] != v.Base+100 {
		t.Fatalf("trace = %v", rec.vas)
	}
	if rec.tags[0] != 0 {
		t.Fatalf("tag = %d, want registered array tag 0", rec.tags[0])
	}
	// Untracked VMAs carry the sentinel tag.
	w := m.Space.Mmap("b", memsys.HugeSize)
	m.Access(w.Base)
	if rec.tags[2] != 0xFF {
		t.Fatalf("untracked tag = %d", rec.tags[2])
	}
}

func TestRegionHeatAccumulates(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", 3*memsys.HugeSize)
	for i := 0; i < 5; i++ {
		m.Access(v.Base + memsys.HugeSize + uint64(i)*64) // region 1
	}
	m.Access(v.Base) // region 0
	if v.HeatAt(1) != 5 || v.HeatAt(0) != 1 || v.HeatAt(2) != 0 {
		t.Fatalf("heat = %v", v.HeatCopy()[:3])
	}
}

func TestSimulatedPageTablesChangeWalkCosts(t *testing.T) {
	run := func(simPT bool) (uint64, uint64) {
		m := New(Config{
			MemoryBytes:        64 << 20,
			TLB:                tlb.Scaled(tlb.Haswell(), 16),
			Cache:              cache.Haswell(),
			Cost:               cost.Fast(),
			Kernel:             oskernel.BaselineConfig(),
			SimulatePageTables: simPT,
		})
		v := m.Space.Mmap("a", 8*memsys.HugeSize)
		m.Touch(v.Base, v.Bytes)
		m.BeginPhase("measure")
		for rep := 0; rep < 2; rep++ {
			for p := 0; p < v.Pages; p++ {
				m.Access(v.PageVA(p))
			}
		}
		m.FinishPhases()
		ph, _ := m.Phase("measure")
		return ph.TranslationCycles, ph.TLB.STLBMisses
	}
	constCost, constWalks := run(false)
	simCost, simWalks := run(true)
	if constWalks == 0 || simWalks == 0 {
		t.Fatal("no walks happened; test graph too small")
	}
	if simCost == constCost {
		t.Fatal("simulated page tables did not change walk costs")
	}
	// With the fast model, PT pages of a sequential scan stay cache-hot
	// (512 consecutive PTEs per line-filled PT page), so simulated
	// walks must be cheaper per walk than the fixed cold-walk constant.
	if float64(simCost)/float64(simWalks) >= float64(constCost)/float64(constWalks) {
		t.Fatalf("hot-PT walks (%d/%d) not cheaper than constant model (%d/%d)",
			simCost, simWalks, constCost, constWalks)
	}
}

// --- staged-engine regression tests -----------------------------------

// TestFaultPathCyclesPinned pins the staged engine's fault-path charges:
// with ample free memory the critical-path fault cost is exactly the
// model's minor-fault constant — 4K under THP=never, 2M on an always-on
// first touch — unchanged from the engine that re-translated after every
// fault.
func TestFaultPathCyclesPinned(t *testing.T) {
	fast := cost.Fast()

	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", memsys.HugeSize)
	m.BeginPhase("p")
	m.Access(v.Base)
	m.FinishPhases()
	p, ok := m.Phase("p")
	if !ok {
		t.Fatal("phase missing")
	}
	if p.FaultCycles != fast.MinorFault4K {
		t.Fatalf("4K fault charged %d cycles, want MinorFault4K = %d", p.FaultCycles, fast.MinorFault4K)
	}
	if s := m.Kernel.Stats(); s.Faults4K != 1 || s.FaultsHuge != 0 {
		t.Fatalf("kernel stats = %+v", s)
	}

	m = newTestMachine(t, oskernel.DefaultConfig())
	v = m.Space.Mmap("a", memsys.HugeSize)
	m.BeginPhase("p")
	m.Access(v.Base)
	m.FinishPhases()
	p, _ = m.Phase("p")
	if p.FaultCycles != fast.MinorFault2M {
		t.Fatalf("huge fault charged %d cycles, want MinorFault2M = %d", p.FaultCycles, fast.MinorFault2M)
	}
	if s := m.Kernel.Stats(); s.FaultsHuge != 1 {
		t.Fatalf("kernel stats = %+v", s)
	}
}

// TestAccessFastPathZeroAllocs proves the steady-state Access fast path
// performs zero heap allocations (the contract SL007 guards statically).
func TestAccessFastPathZeroAllocs(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", memsys.HugeSize)
	m.RegisterArray(v)
	m.Touch(v.Base, memsys.HugeSize) // fault everything in first
	const span = 16 << 10
	var off uint64
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			m.Access(v.Base + off)
			off = (off + 64) % span
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state fast path allocates: %v allocs per 512 accesses", avg)
	}
}

// TestTickerCadenceMatchesPerAccessScan replays the pre-event-layer
// dispatch rule — scan every ticker after every access, fire when
// now-last >= interval — and asserts the event layer fires at exactly
// the same cycle counts.
func TestTickerCadenceMatchesPerAccessScan(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", 4*memsys.HugeSize)

	const interval = 1000
	var fires []uint64
	m.AddTicker(interval, func(now uint64) { fires = append(fires, now) })

	var want []uint64
	var last uint64
	x := uint64(1)
	for i := 0; i < 3000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Access(v.Base + x%(4*memsys.HugeSize))
		if c := m.Cycles(); c-last >= interval {
			want = append(want, c)
			last = c
		}
	}
	if len(fires) == 0 {
		t.Fatal("ticker never fired")
	}
	if len(fires) != len(want) {
		t.Fatalf("ticker fired %d times, per-access scan would fire %d", len(fires), len(want))
	}
	for i := range fires {
		if fires[i] != want[i] {
			t.Fatalf("fire %d at cycle %d, per-access scan fires at %d", i, fires[i], want[i])
		}
	}

	// A ticker registered mid-run must be armed immediately: its first
	// due deadline is already in the past, so the next access fires it.
	var late []uint64
	m.AddTicker(interval, func(now uint64) { late = append(late, now) })
	m.Access(v.Base)
	if len(late) != 1 || late[0] != m.Cycles() {
		t.Fatalf("mid-run ticker fires = %v, want one fire at %d", late, m.Cycles())
	}
}

// TestTranslationCacheInvalidatedOnUnmap guards the machine-level
// translation cache: unmapping the VMA must drop the cached entry, so a
// further access panics as an unmapped-address bug instead of silently
// reusing the stale frame.
func TestTranslationCacheInvalidatedOnUnmap(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", memsys.HugeSize)
	m.Access(v.Base) // seeds the translation cache
	m.Space.Munmap(v)
	defer func() {
		if recover() == nil {
			t.Fatal("access after munmap did not panic: stale cached translation")
		}
	}()
	m.Access(v.Base)
}

// TestWideTranslationCacheInvalidatedOnShootdown extends the unmap
// regression to the widened cache: after seeding the primary entry and
// every victim entry with distinct pages, a single mapping change must
// drop them all — a survivor in any way would be a silent stale-frame
// bug the gather engine could hit on its next segment.
func TestWideTranslationCacheInvalidatedOnShootdown(t *testing.T) {
	m := newTestMachine(t, oskernel.BaselineConfig())
	v := m.Space.Mmap("a", (trCacheWays+2)*memsys.PageSize)
	for p := uint64(0); p < trCacheWays+2; p++ {
		m.Access(v.Base + p*memsys.PageSize)
	}
	live := 0
	for i := range m.trWide {
		if m.trWide[i].span != 0 {
			live++
		}
	}
	if live != trCacheWays {
		t.Fatalf("seeded %d victim entries, want all %d", live, trCacheWays)
	}
	m.Space.Munmap(v)
	if m.trSpan != 0 {
		t.Fatal("primary translation-cache entry survived munmap")
	}
	for i := range m.trWide {
		if m.trWide[i].span != 0 {
			t.Fatalf("victim translation-cache entry %d survived munmap", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("access after munmap did not panic: stale victim translation")
		}
	}()
	m.Access(v.Base + memsys.PageSize)
}

// TestWideTranslationCacheShootdownMidGather drives a shootdown through
// a page fault in the middle of an AccessGather batch: the batch's
// footprint exceeds physical memory, so faults past capacity trigger
// reclaim, whose swap-outs fire Space.Shootdown while the gather is
// mid-flight with live translation-cache entries. A wrapper around the
// shootdown hook asserts every entry — primary and victims — is dropped
// at the exact moment each shootdown fires.
func TestWideTranslationCacheShootdownMidGather(t *testing.T) {
	m := New(Config{
		MemoryBytes: 4 << 20,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Fast(),
		Kernel:      oskernel.BaselineConfig(),
	})
	v := m.Space.Mmap("a", 8<<20)
	m.RegisterArray(v)

	fired := 0
	orig := m.Space.Shootdown
	m.Space.Shootdown = func(va uint64, size vm.PageSizeClass) {
		orig(va, size)
		fired++
		if m.trSpan != 0 {
			t.Errorf("shootdown %d left the primary translation-cache entry live", fired)
		}
		for i := range m.trWide {
			if m.trWide[i].span != 0 {
				t.Errorf("shootdown %d left victim translation-cache entry %d live", fired, i)
			}
		}
	}

	// One batch of short same-line runs over twice the machine's memory.
	vas := make([]uint64, 0, 3*2048)
	for p := uint64(0); p < 2048; p++ {
		va := v.Base + p*memsys.PageSize
		vas = append(vas, va, va+8, va+16)
	}
	m.AccessGather(vas)

	if fired == 0 {
		t.Fatal("no shootdown fired mid-gather: reclaim never ran")
	}
	if m.Kernel.Stats().SwapOuts == 0 {
		t.Fatal("expected reclaim swap-outs under memory oversubscription")
	}
}
