package machine

import (
	"math/rand"
	"reflect"
	"testing"

	"graphmem/internal/vm"
)

// replayShadowDiff is replayDiff with the memsys shadow mirror toggled:
// the same script runs on a machine whose physical node carries the
// unpacked reference copy of every frame's metadata, with ShadowCheck
// comparing the packed word against it field by field at the end.
func replayShadowDiff(t *testing.T, dc diffConfig, ops []diffOp, shadow bool) diffSnapshot {
	t.Helper()
	m := New(dc.cfg)
	if shadow {
		m.Mem.EnableShadow()
	}
	if dc.ticker != 0 {
		m.AddTicker(dc.ticker, func(now uint64) {})
	}
	a := m.Space.Mmap("a", 6<<20)
	b := m.Space.Mmap("b", 3<<20)
	a.Madvise(0, 2<<20, vm.AdviceHuge)
	b.Madvise(2<<20, 1<<20, vm.AdviceNoHuge)
	m.RegisterArray(a)
	m.RegisterArray(b)
	vmas := []*vm.VMA{a, b}

	m.BeginPhase("run")
	for _, op := range ops {
		if op.phase {
			m.BeginPhase("next")
		}
		v := vmas[op.vma%len(vmas)]
		va := v.Base + op.off%v.Bytes
		count := op.count
		if op.stride > 0 {
			if fit := (v.End()-va-1)/op.stride + 1; uint64(count) > fit {
				count = int(fit)
			}
		}
		m.AccessRun(va, count, op.stride)
	}

	if shadow {
		if err := m.Mem.ShadowCheck(); err != nil {
			t.Fatalf("%s: packed frame metadata diverged from the unpacked reference: %v", dc.name, err)
		}
	}
	snap := diffSnapshot{
		Cycles: m.Cycles(),
		Phases: m.FinishPhases(),
		Arrays: m.ArrayStats(),
		TLB:    m.TLB.Stats(),
		Cache:  m.Cache.Stats(),
	}
	for _, v := range vmas {
		snap.Heat = append(snap.Heat, v.HeatCopy())
	}
	return snap
}

// TestPackedFrameInfoDifferential is the packed-metadata equivalence
// property test: across the five standard machine configurations, a
// random access script must produce fully DeepEqual statistics whether
// or not the physical node mirrors every frame-metadata write into the
// unpacked reference layout — and the mirror itself must match the
// packed words field by field at the end (ShadowCheck inside the
// shadow replay). Divergence means a packed accessor or setter is
// corrupting a neighboring bit field.
func TestPackedFrameInfoDifferential(t *testing.T) {
	for _, dc := range diffConfigs() {
		t.Run(dc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xF007))
			for round := 0; round < 4; round++ {
				ops := randomOps(rng, 150)
				plain := replayShadowDiff(t, dc, ops, false)
				mirrored := replayShadowDiff(t, dc, ops, true)
				if !reflect.DeepEqual(plain, mirrored) {
					t.Fatalf("round %d: stats diverge with the shadow mirror enabled:\nplain:    %+v\nmirrored: %+v",
						round, plain, mirrored)
				}
			}
		})
	}
}
