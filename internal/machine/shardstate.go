package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

// shardState is the per-shard slice of the machine state vector: every
// field that must stay private to one shard when a sharded run drives
// several machines over disjoint windows of one logical address space
// (DESIGN.md §5c). It is embedded anonymously in Machine so the access
// engine's fast paths read the fields through promotion, exactly as
// before the split; Fork copies it via clone. Region heat is per-shard
// too, but lives in the VMAs (per-chunk heat counters) and forks with
// the address space rather than with this struct.
//
// The grouping is the refactor's contract, not a runtime mechanism: a
// shard is realized as a whole forked Machine, and this struct names
// which of its fields carry the shard-local simulation state (TLB and
// cache hierarchies, the translation cache, phase and per-array
// accounting) as opposed to per-machine infrastructure (memory,
// address space, kernel) and cross-shard configuration (cost model,
// hatches).
type shardState struct {
	TLB   *tlb.Hierarchy
	Cache *cache.Hierarchy

	// Post-TLB translation cache: the primary entry is the page
	// installed by the last translate/fault, keyed by
	// [trBase, trBase+trSpan), and is the only entry the fast path
	// compares against. A hit skips the radix walk in Space.Translate
	// entirely; shootdown() clears every entry whenever any mapping
	// changes. trSpan == 0 means empty (the unsigned compare
	// va-trBase >= trSpan then always misses).
	//
	// trWide is a small VA-tagged victim array behind the primary
	// entry, probed only on a primary miss (access_slow.go). It keeps
	// recently used pages resolvable without a radix walk when an
	// irregular gather alternates between a handful of pages. The cache
	// is functional-only — Translate charges no cycles — so widening it
	// changes no modeled cost, only simulator speed (MODEL.md §1).
	tr       vm.Translation
	trBase   uint64
	trSpan   uint64
	trWide   [trCacheWays]trEntry
	trVictim int

	// Phase and per-array accounting (stats.go).
	phase      PhaseStats
	tlbAtPhase tlb.Stats
	cchAtPhase cache.Stats
	done       []PhaseStats

	arrays []ArrayStats
}

// clone returns a deep copy of the shard state: the TLB and cache
// hierarchies are cloned, the phase history and array counters copied.
// Translation-cache entries are copied verbatim — they carry *VMA
// pointers into the original address space, which Fork remaps after
// attaching the cloned space (it needs the new space; this struct does
// not know it).
func (s *shardState) clone() shardState {
	return shardState{
		TLB:        s.TLB.Clone(),
		Cache:      s.Cache.Clone(),
		tr:         s.tr,
		trBase:     s.trBase,
		trSpan:     s.trSpan,
		trWide:     s.trWide,
		trVictim:   s.trVictim,
		phase:      s.phase,
		tlbAtPhase: s.tlbAtPhase,
		cchAtPhase: s.cchAtPhase,
		done:       append([]PhaseStats(nil), s.done...),
		arrays:     append([]ArrayStats(nil), s.arrays...),
	}
}
