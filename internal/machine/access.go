//simlint:fastpath

package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/memsys"
)

// Access simulates one data memory access at virtual address va and
// advances simulated time. Both loads and stores take this path: the
// simulator does not model store buffers, so the cost of a store's
// translation and cache fill equals a load's.
//
// This is the engine's fast path, executed once per simulated memory
// reference, and it is written to stay branch-lean and allocation-free
// for the common case (mapped page + TLB hit + L1D hit):
//
//   - one unsigned compare against the translation cache replaces the
//     radix walk in Space.Translate;
//   - the TLB probe and the data-cache probe are straight calls whose
//     miss handling lives in access_slow.go;
//   - phase, heat, and per-array accounting are plain field increments;
//   - background actors cost one compare (m.cycles >= m.nextEvent);
//   - observers dispatch only when registered.
//
// The file is tagged //simlint:fastpath: rule SL007 rejects appends, map
// writes, and allocating closure captures here.
func (m *Machine) Access(va uint64) {
	var cycles uint64

	// Translation cache probe. A miss (including the trSpan==0 empty
	// state) refills from the page table, handling any page fault; the
	// refill returns the fault cycles charged to the critical path.
	if va-m.trBase >= m.trSpan {
		cycles = m.refillTranslation(va) //simlint:ignore SL012 fault-path refill allocates only on first touch
	}
	tr := &m.tr

	// Address translation through the TLB hierarchy.
	res := m.TLB.Lookup(va, tr.Size)
	var trCycles uint64
	if !res.L1Hit {
		trCycles = m.translateMiss(va, tr.Size, res) //simlint:ignore SL012 TLB-miss page walk; visitor closure is off the steady-state path
		cycles += trCycles
		m.phase.TranslationCycles += trCycles
	}

	// Data access at the physical address.
	pa := uint64(tr.Frame)<<memsys.PageShift + (va - tr.BaseVA)
	var dataCycles uint64
	lvl := m.Cache.Access(pa)
	switch lvl {
	case cache.HitL1:
		dataCycles = m.Model.L1DHit
	case cache.HitLLC:
		dataCycles = m.Model.LLCHit
	default:
		dataCycles = m.Model.DRAM
	}
	dataCycles += m.Model.Compute
	cycles += dataCycles
	m.phase.DataCycles += dataCycles

	// Zero-alloc accounting hooks (stats.go): region heat for
	// heat-guided promotion policies, then per-array attribution.
	m.accountHeat(va, tr.VMA)
	m.accountArray(tr.VMA, res)

	m.cycles += cycles
	m.phase.Cycles += cycles
	m.phase.Accesses++

	// Dynamically registered observers (tracer among them).
	if len(m.observers) != 0 {
		m.notifyObservers(va, tr, res, lvl, cycles)
	}

	// Event layer: dispatch background actors only when one is due.
	if m.cycles >= m.nextEvent {
		m.runEvents() //simlint:ignore SL012 due-event dispatch; registered tickers own their allocation budget
	}
}
