//simlint:fastpath

package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/memsys"
)

// AccessRun simulates count data accesses starting at va and advancing
// by stride bytes each time — the shape of every streaming scan the
// graph kernels issue (CSR offset pairs, edge-array neighbor runs,
// sequential property sweeps). It is arithmetically identical to
//
//	for ; count > 0; count-- { m.Access(va); va += stride }
//
// in every observable: Cycles, phase stats, heat, per-array attribution,
// TLB/cache counters and LRU state, event dispatch, and traces. The bulk
// engine merely exploits what the scalar loop would rediscover one
// access at a time: consecutive same-page references are L1 TLB hits
// after the first, and consecutive same-line references are L1 data hits
// after the first, so their per-access work reduces to counter
// arithmetic (DESIGN.md §4c).
//
// The run is cut into page segments (one real TLB resolution each) and,
// inside a segment, line batches (one real data-cache probe each, the
// line's remaining accesses charged as guaranteed L1 hits). Segments
// split exactly where the scalar loop would change behaviour:
//
//   - translation-cache miss (page boundary, fault, shootdown): the
//     split access goes through the scalar path;
//   - the nextEvent cycle deadline: the batch is truncated to the access
//     that first reaches the deadline, accumulated accounting is flushed,
//     and events run at the same cycle the scalar loop would run them;
//   - observers registered (tracing): per-access dispatch so traces stay
//     byte-identical. Re-checked after every event dispatch, so a ticker
//     attaching a tracer mid-run degrades the rest of the run; flushing
//     before runEvents means no bulk state is in flight when it does.
func (m *Machine) AccessRun(va uint64, count int, stride uint64) {
	for count > 0 {
		// Per-access dispatch when batching is off or unsound: bulk
		// disabled, degenerate stride, observers registered, or a
		// zero-cost hit model (the event-split division needs cHit > 0).
		if m.noBulk || stride == 0 || len(m.observers) != 0 || m.Model.L1DHit+m.Model.Compute == 0 {
			for ; count > 0; count-- {
				m.Access(va) //simlint:ignore SL012 scalar fallback; Access waives its own fault/event escapes
				va += stride
			}
			return
		}
		// Scalar dispatch for any access the bulk engine cannot batch:
		// a translation-cache miss (unmapped/faulting page, shootdown),
		// a due or stale event deadline (a mode-disabled kernel keeps
		// its deadline in the past so Tick runs per access), or an L1
		// TLB array with no capacity for this page size.
		if va-m.trBase >= m.trSpan || m.cycles >= m.nextEvent || !m.TLB.L1Holds(m.tr.Size) {
			m.Access(va) //simlint:ignore SL012 scalar fallback; Access waives its own fault/event escapes
			va += stride
			count--
			continue
		}
		va, count = m.bulkSegment(va, count, stride) //simlint:ignore SL012 segment body allocates only via waived event dispatch
	}
}

// bulkSegment batches accesses while they stay inside the translation
// cache's current page, returning the updated (va, count). The caller
// established: bulk enabled, no observers, stride > 0, va inside the
// cached page, L1 TLB capacity for its size, and cycles < nextEvent.
func (m *Machine) bulkSegment(va uint64, count int, stride uint64) (uint64, int) {
	// The segment's first access takes the full scalar path: it does
	// the real TLB lookup — installing (or refreshing) L1 residency the
	// rest of the segment relies on — the real data-cache probe, and
	// any due event dispatch.
	m.Access(va) //simlint:ignore SL012 segment head takes the scalar path; escapes waived in Access
	va += stride
	count--
	// Re-establish the batching preconditions: the event dispatch inside
	// Access may have shot down the translation, registered an observer,
	// or left a stale deadline.
	if count == 0 || va-m.trBase >= m.trSpan || m.cycles >= m.nextEvent || len(m.observers) != 0 {
		return va, count
	}

	// From here until the segment ends, every access hits the page's L1
	// TLB entry, stays within the same heat bucket (pages never span the
	// VMA's 2MB regions), and costs cHit cycles on a same-line hit. Real
	// work per iteration is one data-cache probe per line; everything
	// else accumulates into done/data and flushes at the split.
	base, span := m.trBase, m.trSpan
	paDelta := uint64(m.tr.Frame)<<memsys.PageShift - m.tr.BaseVA
	cHit := m.Model.L1DHit + m.Model.Compute
	var done, data uint64
	lineVA := va - stride // last probed address: its line is L1-resident

	for count > 0 && va-base < span {
		if va>>cache.LineShift == lineVA>>cache.LineShift {
			// Same line as the last real probe: guaranteed L1 hits.
			lineEnd := (va | (1<<cache.LineShift - 1)) + 1
			n := (lineEnd-va-1)/stride + 1
			if uint64(count) < n {
				n = uint64(count)
			}
			// Truncate the batch at the event deadline: the t-th hit is
			// the first access at which cycles reaches nextEvent, exactly
			// where the scalar loop would dispatch. The divide only runs
			// when the deadline lands inside this batch
			// (gap ≤ (n−1)·cHit ⇔ ceil(gap/cHit) < n; the ceil == n case
			// was a no-op truncation), keeping the common path
			// division-free.
			gap := m.nextEvent - m.cycles // > 0: loop invariant
			if gap <= (n-1)*cHit {
				n = (gap-1)/cHit + 1
			}
			m.Cache.AccessRepeatL1(va+paDelta, n)
			m.cycles += n * cHit
			done += n
			data += n * cHit
			va += n * stride
			count -= int(n)
			if m.cycles >= m.nextEvent {
				m.flushBulk(done, data)
				m.runEvents() //simlint:ignore SL012 due-event dispatch; registered tickers own their allocation budget
				return va, count
			}
			continue
		}
		// First access on a new line: real data-cache probe (the fill
		// makes the line resident for the batch above). Translation is
		// still a guaranteed L1 TLB hit, so the access costs data only.
		lineVA = va
		var d uint64
		switch m.Cache.Access(va + paDelta) {
		case cache.HitL1:
			d = m.Model.L1DHit
		case cache.HitLLC:
			d = m.Model.LLCHit
		default:
			d = m.Model.DRAM
		}
		d += m.Model.Compute
		m.cycles += d
		done++
		data += d
		va += stride
		count--
		if m.cycles >= m.nextEvent {
			m.flushBulk(done, data)
			m.runEvents() //simlint:ignore SL012 due-event dispatch; registered tickers own their allocation budget
			return va, count
		}
	}
	m.flushBulk(done, data)
	return va, count
}

// flushBulk applies a segment's accumulated accounting — the per-access
// increments the scalar loop interleaves — before anything can observe
// it: always before runEvents (khugepaged reads heat; shootdowns follow
// the refreshes, as they do scalar) and before bulkSegment returns. All
// done accesses were translation L1 hits on the page's entry and data
// hits/probes whose cycles are in data; m.cycles itself was advanced as
// the batches were charged, so only the phase mirror is added here.
func (m *Machine) flushBulk(done, data uint64) {
	if done == 0 {
		return
	}
	tr := &m.tr
	m.TLB.LookupRepeatHit(tr.BaseVA, tr.Size, done)
	v := tr.VMA
	v.AddHeat(int((tr.BaseVA-v.Base)>>21), done)
	if tag := v.StatsTag; tag >= 0 {
		m.arrays[tag].Accesses += done
	}
	m.phase.DataCycles += data
	m.phase.Cycles += data
	m.phase.Accesses += done
}
