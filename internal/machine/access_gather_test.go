package machine

import (
	"math/rand"
	"reflect"
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

// The gather engine's contract mirrors the bulk engine's: AccessGather
// must leave the machine in exactly the state len(vas) scalar Access
// calls would. SetGather(false) routes AccessGather through the scalar
// loop, so a differential run is the same op script replayed on two
// machines that differ only in that switch. The configs, VMA layout,
// and snapshot are shared with access_run_test.go.

// gatherRef is one collected address: a VMA index plus a byte offset
// (reduced mod the VMA size at replay).
type gatherRef struct {
	vma uint8
	off uint64
}

// gatherOp is one scripted step: either an AccessGather batch (refs) or
// an interleaved AccessRun (run) so the two batching engines are
// exercised against each other's translation-cache and TLB state.
type gatherOp struct {
	phase  bool
	run    bool
	vma    int
	off    uint64
	count  int
	stride uint64
	refs   []gatherRef
}

// replayGatherDiff builds a machine for dc, maps the shared two-array
// layout, runs the script, and snapshots the final state. gather
// selects the engine under test.
func replayGatherDiff(dc diffConfig, ops []gatherOp, gather bool) diffSnapshot {
	m := New(dc.cfg)
	m.SetGather(gather)
	if dc.ticker != 0 {
		m.AddTicker(dc.ticker, func(now uint64) {})
	}
	a := m.Space.Mmap("a", 6<<20)
	b := m.Space.Mmap("b", 3<<20)
	a.Madvise(0, 2<<20, vm.AdviceHuge)
	b.Madvise(2<<20, 1<<20, vm.AdviceNoHuge)
	m.RegisterArray(a)
	m.RegisterArray(b)
	vmas := [2]*vm.VMA{a, b}

	buf := make([]uint64, 0, 2048)
	m.BeginPhase("run")
	for _, op := range ops {
		if op.phase {
			m.BeginPhase("next")
		}
		if op.run {
			v := vmas[op.vma%len(vmas)]
			va := v.Base + op.off%v.Bytes
			count := op.count
			if op.stride > 0 {
				if fit := (v.End()-va-1)/op.stride + 1; uint64(count) > fit {
					count = int(fit)
				}
			}
			m.AccessRun(va, count, op.stride)
			continue
		}
		buf = buf[:0]
		for _, r := range op.refs {
			v := vmas[int(r.vma)%len(vmas)]
			buf = append(buf, v.Base+r.off%v.Bytes)
		}
		m.AccessGather(buf)
	}

	snap := diffSnapshot{
		Cycles: m.Cycles(),
		Phases: m.FinishPhases(),
		Arrays: m.ArrayStats(),
		TLB:    m.TLB.Stats(),
		Cache:  m.Cache.Stats(),
	}
	for _, v := range vmas {
		snap.Heat = append(snap.Heat, v.HeatCopy())
	}
	return snap
}

// randomGatherOps generates scripts shaped like real neighbor gathers:
// random page jumps, same-page revisits, line skips, same-line walks,
// and exact repeats, with strided runs interleaved.
func randomGatherOps(rng *rand.Rand, n int) []gatherOp {
	ops := make([]gatherOp, n)
	for i := range ops {
		op := gatherOp{phase: rng.Intn(16) == 0}
		if rng.Intn(4) == 0 {
			op.run = true
			op.vma = rng.Intn(2)
			op.off = rng.Uint64()
			op.count = rng.Intn(2000)
			op.stride = diffStrides[rng.Intn(len(diffStrides))]
		} else {
			k := rng.Intn(400)
			refs := make([]gatherRef, 0, k)
			cur := gatherRef{vma: uint8(rng.Intn(2)), off: rng.Uint64()}
			for len(refs) < k {
				switch rng.Intn(8) {
				case 0: // random jump, possibly to the other array
					cur = gatherRef{vma: uint8(rng.Intn(2)), off: rng.Uint64()}
				case 1: // page skip inside the same array
					cur.off += 4096
				case 2: // new line on the same page
					cur.off += 64
				case 3: // exact repeat (degenerate same-line run)
				default: // same-line walk (sorted neighbor run)
					cur.off += 8
				}
				refs = append(refs, cur)
			}
			op.refs = refs
		}
		ops[i] = op
	}
	return ops
}

// TestAccessGatherMatchesScalar is the differential property test:
// across hardware configs, THP policies, event cadences, faults
// mid-batch, and khugepaged shootdowns, the gather engine must be
// indistinguishable from the scalar loop in every counter it touches.
func TestAccessGatherMatchesScalar(t *testing.T) {
	for _, dc := range diffConfigs() {
		t.Run(dc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x6A7 + int64(len(dc.name))))
			ops := randomGatherOps(rng, 120)
			got := replayGatherDiff(dc, ops, true)
			want := replayGatherDiff(dc, ops, false)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("gather and scalar runs diverged\ngather: %+v\nscalar: %+v", got, want)
			}
		})
	}
}

// FuzzAccessGather feeds arbitrary batch scripts through the
// differential harness: the fuzzer hunts for a batch shape whose gather
// accounting diverges from the scalar loop.
func FuzzAccessGather(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{0xFF, 0x41, 0x00, 0x12, 0x80, 0x02, 0x3F, 0x44, 0xFE, 0x00, 0x01, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		cfgs := diffConfigs()
		dc := cfgs[int(data[0])%len(cfgs)]
		var ops []gatherOp
		var refs []gatherRef
		var cur gatherRef
		flush := func() {
			if len(refs) > 0 {
				ops = append(ops, gatherOp{refs: refs, phase: len(ops)%13 == 7})
				refs = nil
			}
		}
		for i := 1; i+3 <= len(data) && len(ops) < 48; i += 3 {
			switch data[i] % 8 {
			case 0: // interleaved strided run
				flush()
				ops = append(ops, gatherOp{
					run:    true,
					vma:    int(data[i+1]) & 1,
					off:    uint64(data[i+1])<<12 | uint64(data[i+2]),
					count:  int(data[i+2]) << 2,
					stride: diffStrides[int(data[i+1])%len(diffStrides)],
				})
			case 1: // random jump
				cur = gatherRef{vma: data[i+1] & 1, off: uint64(data[i+1])<<16 | uint64(data[i+2])<<8}
				refs = append(refs, cur)
			case 2: // page skip
				cur.off += 4096
				refs = append(refs, cur)
			case 3: // line skip
				cur.off += 64
				refs = append(refs, cur)
			case 4: // exact repeat
				refs = append(refs, cur)
			default: // same-line walk of data[i+2]%16+1 entries
				for j := 0; j <= int(data[i+2]%16); j++ {
					cur.off += 8
					refs = append(refs, cur)
				}
			}
		}
		flush()
		got := replayGatherDiff(dc, ops, true)
		want := replayGatherDiff(dc, ops, false)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("gather and scalar runs diverged on %q\ngather: %+v\nscalar: %+v", dc.name, got, want)
		}
	})
}

// TestAccessGatherZeroAllocs extends the engine's zero-alloc contract
// to the gather path: dispatching a steady-state batch must not
// allocate (the kernels reuse their collection buffer, so the whole
// collect-and-gather cycle stays allocation-free once warm).
func TestAccessGatherZeroAllocs(t *testing.T) {
	m := New(Config{
		MemoryBytes: 64 << 20,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Default(),
		Kernel:      oskernel.DefaultConfig(),
	})
	v := m.Space.Mmap("steady", 4<<20)
	m.RegisterArray(v)
	m.Touch(v.Base, v.Bytes)

	// A neighbor-gather-shaped batch: line jumps with short sorted runs,
	// alternating between a few pages.
	vas := make([]uint64, 0, 1024)
	x := uint64(0x9E3779B97F4A7C15)
	for len(vas) < 1024 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		va := v.Base + x%(v.Bytes-64)&^7
		for j := uint64(0); j <= x>>61 && len(vas) < 1024; j++ {
			vas = append(vas, va+j*8)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		m.AccessGather(vas)
	}); avg != 0 {
		t.Fatalf("AccessGather allocated %.1f times per run; the gather path must be allocation-free", avg)
	}
}
