package machine

import (
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
)

// benchMachine builds a machine with the paper's full-geometry hardware
// and the default THP policy, maps one array, and faults it in so the
// benchmark loop measures steady state rather than first-touch costs.
func benchMachine(b *testing.B, bytes uint64) (*Machine, uint64) {
	b.Helper()
	m := New(Config{
		MemoryBytes: 256 << 20,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Default(),
		Kernel:      oskernel.DefaultConfig(),
	})
	v := m.Space.Mmap("bench", bytes)
	m.RegisterArray(v)
	m.Touch(v.Base, v.Bytes)
	return m, v.Base
}

// BenchmarkAccess is the simulator's per-access floor: every reference
// hits the translation fast path (mapped page, TLB hit) and the L1 data
// cache. This is the number scripts/bench.sh records as ns/access and
// the zero-alloc contract covers.
func BenchmarkAccess(b *testing.B) {
	m, base := benchMachine(b, 8<<20)
	// 16KB working set: fits L1D and one 2MB page, so the loop stays on
	// the TLB-hit + L1-hit path.
	const span = 16 << 10
	b.ReportAllocs()
	b.ResetTimer()
	va := base
	for i := 0; i < b.N; i++ {
		m.Access(va)
		va += 64
		if va >= base+span {
			va = base
		}
	}
}

// BenchmarkAccessRun measures the bulk engine on the edge-scan shape:
// sequential runs of 4-byte entries (16 per cache line) sweeping a 2MB
// region, issued as AccessRun calls the way the kernels stream a CSR
// neighbor range. ns/op is per simulated access, directly comparable to
// BenchmarkAccess; the acceptance bar is ≥3× the scalar throughput at
// 0 allocs/op.
func BenchmarkAccessRun(b *testing.B) {
	m, base := benchMachine(b, 8<<20)
	const span = 2 << 20
	const entry = 4
	const run = 4096 // one AccessRun call covers 16KB of edge entries
	b.ReportAllocs()
	b.ResetTimer()
	va := base
	for i := 0; i < b.N; i += run {
		n := run
		if rem := b.N - i; rem < n {
			n = rem
		}
		m.AccessRun(va, n, entry)
		va += uint64(n) * entry
		if va >= base+span {
			va = base
		}
	}
}

// gatherBenchVAs builds the irregular neighbor-gather-shaped stream the
// gather engine targets: random jumps inside the hot property prefix
// (DBG packs the hub vertices most gather references hit into a small
// window — kept L1-resident here so the benchmark isolates the engine's
// own per-access overhead, exactly as BenchmarkAccess does for the
// scalar floor), each jump followed by a sorted burst of 8-byte entries
// covering up to two cache lines (dense hub clusters give adjacent
// neighbor IDs after degree-based grouping, so a burst is the stream's
// best case; the jump between bursts is its worst). Kernel batches on
// the bench graphs sit between the two, which the differential suite —
// not this benchmark — covers.
func gatherBenchVAs(base uint64) []uint64 {
	const span = 16 << 10
	const n = 1 << 16
	vas := make([]uint64, 0, n+16)
	x := uint64(0x9E3779B97F4A7C15)
	for len(vas) < n {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		va := base + x%(span-128)&^7
		for j := uint64(0); j <= x>>60; j++ {
			vas = append(vas, va+j*8)
		}
	}
	return vas[:n]
}

// benchGather replays the gather-shaped stream in batches the size a
// hub vertex's neighbor list produces. ns/op is per simulated access,
// directly comparable to BenchmarkAccess.
func benchGather(b *testing.B, gather bool) {
	m, base := benchMachine(b, 8<<20)
	m.SetGather(gather)
	vas := gatherBenchVAs(base)
	const batch = 4096
	b.ReportAllocs()
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		if off+n > len(vas) {
			off = 0
		}
		m.AccessGather(vas[off : off+n])
		off += n
	}
}

// BenchmarkAccessGather measures the gather engine on the irregular
// neighbor-gather shape. The acceptance bar is ≥2.5× the scalar
// throughput of the same stream (BenchmarkAccessGatherScalar) at
// 0 allocs/op; scripts/bench.sh records it as ns_per_access_gather.
func BenchmarkAccessGather(b *testing.B) { benchGather(b, true) }

// BenchmarkAccessGatherScalar is the same stream with the gather engine
// disabled — the per-access dispatch baseline the speedup is measured
// against.
func BenchmarkAccessGatherScalar(b *testing.B) { benchGather(b, false) }

// BenchmarkAccessStream measures a streaming pass: sequential lines over
// a footprint far beyond L1, so data misses and periodic TLB refills are
// in the mix (the shape of an initialization loop).
func BenchmarkAccessStream(b *testing.B) {
	m, base := benchMachine(b, 64<<20)
	const span = 64 << 20
	b.ReportAllocs()
	b.ResetTimer()
	va := base
	for i := 0; i < b.N; i++ {
		m.Access(va)
		va += 64
		if va >= base+span {
			va = base
		}
	}
}

// BenchmarkAccessRandom measures the graph-analytics shape: a
// deterministic xorshift stream of irregular references, where walks and
// DRAM fills dominate (the property-array access pattern).
func BenchmarkAccessRandom(b *testing.B) {
	m, base := benchMachine(b, 64<<20)
	const mask = 64<<20 - 1
	b.ReportAllocs()
	b.ResetTimer()
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Access(base + (x&mask)&^63)
	}
}
