package machine

import (
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
)

// benchMachine builds a machine with the paper's full-geometry hardware
// and the default THP policy, maps one array, and faults it in so the
// benchmark loop measures steady state rather than first-touch costs.
func benchMachine(b *testing.B, bytes uint64) (*Machine, uint64) {
	b.Helper()
	m := New(Config{
		MemoryBytes: 256 << 20,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Default(),
		Kernel:      oskernel.DefaultConfig(),
	})
	v := m.Space.Mmap("bench", bytes)
	m.RegisterArray(v)
	m.Touch(v.Base, v.Bytes)
	return m, v.Base
}

// BenchmarkAccess is the simulator's per-access floor: every reference
// hits the translation fast path (mapped page, TLB hit) and the L1 data
// cache. This is the number scripts/bench.sh records as ns/access and
// the zero-alloc contract covers.
func BenchmarkAccess(b *testing.B) {
	m, base := benchMachine(b, 8<<20)
	// 16KB working set: fits L1D and one 2MB page, so the loop stays on
	// the TLB-hit + L1-hit path.
	const span = 16 << 10
	b.ReportAllocs()
	b.ResetTimer()
	va := base
	for i := 0; i < b.N; i++ {
		m.Access(va)
		va += 64
		if va >= base+span {
			va = base
		}
	}
}

// BenchmarkAccessRun measures the bulk engine on the edge-scan shape:
// sequential runs of 4-byte entries (16 per cache line) sweeping a 2MB
// region, issued as AccessRun calls the way the kernels stream a CSR
// neighbor range. ns/op is per simulated access, directly comparable to
// BenchmarkAccess; the acceptance bar is ≥3× the scalar throughput at
// 0 allocs/op.
func BenchmarkAccessRun(b *testing.B) {
	m, base := benchMachine(b, 8<<20)
	const span = 2 << 20
	const entry = 4
	const run = 4096 // one AccessRun call covers 16KB of edge entries
	b.ReportAllocs()
	b.ResetTimer()
	va := base
	for i := 0; i < b.N; i += run {
		n := run
		if rem := b.N - i; rem < n {
			n = rem
		}
		m.AccessRun(va, n, entry)
		va += uint64(n) * entry
		if va >= base+span {
			va = base
		}
	}
}

// BenchmarkAccessStream measures a streaming pass: sequential lines over
// a footprint far beyond L1, so data misses and periodic TLB refills are
// in the mix (the shape of an initialization loop).
func BenchmarkAccessStream(b *testing.B) {
	m, base := benchMachine(b, 64<<20)
	const span = 64 << 20
	b.ReportAllocs()
	b.ResetTimer()
	va := base
	for i := 0; i < b.N; i++ {
		m.Access(va)
		va += 64
		if va >= base+span {
			va = base
		}
	}
}

// BenchmarkAccessRandom measures the graph-analytics shape: a
// deterministic xorshift stream of irregular references, where walks and
// DRAM fills dominate (the property-array access pattern).
func BenchmarkAccessRandom(b *testing.B) {
	m, base := benchMachine(b, 64<<20)
	const mask = 64<<20 - 1
	b.ReportAllocs()
	b.ResetTimer()
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Access(base + (x&mask)&^63)
	}
}
