package machine

import (
	"math/rand"
	"reflect"
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

// The bulk engine's contract is arithmetic identity: AccessRun(va, n, s)
// must leave the machine in exactly the state n scalar Access calls
// would. SetBulk(false) routes AccessRun through the scalar loop, so a
// differential run is the same op script replayed on two machines that
// differ only in that switch.

// diffOp is one scripted step of a differential run.
type diffOp struct {
	vma    int    // which VMA to address
	off    uint64 // byte offset within the VMA
	count  int
	stride uint64
	phase  bool // begin a new phase before the run
}

// diffConfig is one hardware/kernel configuration under test.
type diffConfig struct {
	name   string
	cfg    Config
	ticker uint64 // extra no-op ticker interval, 0 for none
}

func diffConfigs() []diffConfig {
	smallTLB := tlb.Scaled(tlb.Haswell(), 16)
	smallCache := cache.Scaled(cache.Haswell(), 8)

	khuge := oskernel.DefaultConfig()
	khuge.KhugepagedEnabled = true
	khuge.KhugepagedInterval = 5000
	khuge.Mode = oskernel.ModeAlways
	khuge.FaultTimeHuge = false // promotions mid-run force shootdown splits

	heat := khuge
	heat.PromoteByHeat = true // scanner reads heat, so flush order matters

	never := oskernel.DefaultConfig()
	never.Mode = oskernel.ModeNever
	never.KhugepagedEnabled = true
	never.KhugepagedInterval = 4000 // stale deadline: events due every access

	return []diffConfig{
		{name: "default", cfg: Config{MemoryBytes: 64 << 20, TLB: tlb.Haswell(), Cache: cache.Haswell(), Cost: cost.Default(), Kernel: oskernel.DefaultConfig()}},
		{name: "small+khugepaged", cfg: Config{MemoryBytes: 64 << 20, TLB: smallTLB, Cache: smallCache, Cost: cost.Fast(), Kernel: khuge}, ticker: 3000},
		{name: "heat-promoter", cfg: Config{MemoryBytes: 64 << 20, TLB: smallTLB, Cache: smallCache, Cost: cost.Fast(), Kernel: heat}},
		{name: "stale-deadline", cfg: Config{MemoryBytes: 64 << 20, TLB: tlb.Haswell(), Cache: cache.Haswell(), Cost: cost.Fast(), Kernel: never}},
		{name: "simulated-pt", cfg: Config{MemoryBytes: 64 << 20, TLB: smallTLB, Cache: smallCache, Cost: cost.Default(), Kernel: khuge, SimulatePageTables: true}},
	}
}

// diffSnapshot captures every observable the equivalence claim covers.
type diffSnapshot struct {
	Cycles uint64
	Phases []PhaseStats
	Arrays []ArrayStats
	TLB    tlb.Stats
	Cache  cache.Stats
	Heat   [][]uint64
}

// replayDiff builds a machine for dc, maps two arrays, runs the script,
// and snapshots the final state. bulk selects the engine under test.
func replayDiff(dc diffConfig, ops []diffOp, bulk bool) diffSnapshot {
	m := New(dc.cfg)
	m.SetBulk(bulk)
	if dc.ticker != 0 {
		m.AddTicker(dc.ticker, func(now uint64) {})
	}
	a := m.Space.Mmap("a", 6<<20)
	b := m.Space.Mmap("b", 3<<20)
	a.Madvise(0, 2<<20, vm.AdviceHuge)
	b.Madvise(2<<20, 1<<20, vm.AdviceNoHuge)
	m.RegisterArray(a)
	m.RegisterArray(b)
	vmas := []*vm.VMA{a, b}

	m.BeginPhase("run")
	for _, op := range ops {
		if op.phase {
			m.BeginPhase("next")
		}
		v := vmas[op.vma%len(vmas)]
		va := v.Base + op.off%v.Bytes
		count := op.count
		if op.stride > 0 {
			// Clamp the run inside the VMA so it never walks off the map.
			if fit := (v.End()-va-1)/op.stride + 1; uint64(count) > fit {
				count = int(fit)
			}
		}
		m.AccessRun(va, count, op.stride)
	}

	snap := diffSnapshot{
		Cycles: m.Cycles(),
		Phases: m.FinishPhases(),
		Arrays: m.ArrayStats(),
		TLB:    m.TLB.Stats(),
		Cache:  m.Cache.Stats(),
	}
	for _, v := range vmas {
		snap.Heat = append(snap.Heat, v.HeatCopy())
	}
	return snap
}

// diffStrides samples the stream shapes the kernels issue (4B edges, 8B
// offsets, 16/24B properties, 64B lines) plus shapes that stress the
// splitting logic: sub-line, line-crossing, page-crossing, and stride 0.
var diffStrides = []uint64{0, 1, 3, 4, 8, 16, 24, 64, 72, 256, 4096, 4096 + 64, 2 << 20}

func randomOps(rng *rand.Rand, n int) []diffOp {
	ops := make([]diffOp, n)
	for i := range ops {
		ops[i] = diffOp{
			vma:    rng.Intn(2),
			off:    rng.Uint64(),
			count:  rng.Intn(3000),
			stride: diffStrides[rng.Intn(len(diffStrides))],
			phase:  rng.Intn(16) == 0,
		}
	}
	return ops
}

// TestAccessRunMatchesScalar is the differential property test: across
// hardware configs, THP policies, event cadences, faults mid-run, and
// khugepaged shootdowns, the bulk engine must be indistinguishable from
// the scalar loop in every counter it touches.
func TestAccessRunMatchesScalar(t *testing.T) {
	for _, dc := range diffConfigs() {
		t.Run(dc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5EED + int64(len(dc.name))))
			ops := randomOps(rng, 120)
			got := replayDiff(dc, ops, true)
			want := replayDiff(dc, ops, false)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("bulk and scalar runs diverged\nbulk:   %+v\nscalar: %+v", got, want)
			}
		})
	}
}

// FuzzAccessRun feeds arbitrary op scripts through the differential
// harness, in the style of memsys's FuzzAllocFree: the fuzzer hunts for
// a run shape whose bulk accounting diverges from the scalar loop.
func FuzzAccessRun(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0xFF, 0x40, 0x00, 0x10, 0x80, 0x02, 0x3F, 0x41, 0xFE, 0x00, 0x00, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cfgs := diffConfigs()
		dc := cfgs[int(data[0])%len(cfgs)]
		var ops []diffOp
		for i := 1; i+4 <= len(data) && len(ops) < 64; i += 4 {
			ops = append(ops, diffOp{
				vma:    int(data[i]) & 1,
				off:    uint64(data[i])<<16 | uint64(data[i+1])<<8 | uint64(data[i+2]),
				count:  int(data[i+2])<<3 | int(data[i+3])>>5,
				stride: diffStrides[int(data[i+3])%len(diffStrides)],
				phase:  data[i+1]&0x1F == 7,
			})
		}
		got := replayDiff(dc, ops, true)
		want := replayDiff(dc, ops, false)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("bulk and scalar runs diverged on %q\nbulk:   %+v\nscalar: %+v", dc.name, got, want)
		}
	})
}

// TestAccessRunZeroAllocs extends the engine's zero-alloc contract to
// the bulk path: a steady-state run must not allocate.
func TestAccessRunZeroAllocs(t *testing.T) {
	m := New(Config{
		MemoryBytes: 64 << 20,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Default(),
		Kernel:      oskernel.DefaultConfig(),
	})
	v := m.Space.Mmap("steady", 4<<20)
	m.RegisterArray(v)
	m.Touch(v.Base, v.Bytes)
	if avg := testing.AllocsPerRun(100, func() {
		m.AccessRun(v.Base, 1024, 4)
		m.AccessRun(v.Base, 64, 64)
	}); avg != 0 {
		t.Fatalf("AccessRun allocated %.1f times per run; the bulk path must be allocation-free", avg)
	}
}
