package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/check"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

// This file is the access engine's slow path: everything Access only
// does when a probe misses. Page faults and translation-cache refills
// live in refillTranslation; STLB probes, page walks, simulated-PTE
// fetches, and TLB fills live in translateMiss. Keeping these bodies out
// of access.go keeps the fast path small enough for the compiler to lay
// out tightly and makes the rare/common split auditable.

// refillTranslation reloads the machine's primary translation-cache
// entry for va, servicing a page fault if the page is unmapped or
// swapped. It returns the fault cycles charged to the critical path
// (zero when the page was already mapped and only the cache was cold).
//
// Before walking the page table it probes the victim array (trWide): an
// irregular gather alternating between a handful of hot pages misses the
// primary entry on nearly every reference, and the victim hit resolves
// it without the radix walk. The probe is functional-only — a Translate
// success charges no cycles either — so the modeled cost is unchanged.
// On a victim hit the displaced primary entry swaps into the hit slot.
//
// The kernel's HandleFault returns the translation of the mapping it
// installed, so the fault path needs no second radix walk: the returned
// translation seeds the cache directly. Any shootdowns fired while the
// fault was serviced (reclaim, demotion, compaction) happened before
// HandleFault returned — clearing every cache entry, victims included —
// so the seed cannot be stale.
func (m *Machine) refillTranslation(va uint64) uint64 {
	for i := range m.trWide {
		if e := m.trWide[i]; va-e.base < e.span {
			m.trWide[i] = trEntry{base: m.trBase, span: m.trSpan, tr: m.tr}
			m.tr, m.trBase, m.trSpan = e.tr, e.base, e.span
			return 0
		}
	}
	tr, fault, ok := m.Space.Translate(va)
	var fc uint64
	if !ok {
		if fault == nil {
			panic(check.Failf("machine: access to unmapped address %#x", va))
		}
		tr, fc = m.Kernel.HandleFault(fault)
		m.phase.FaultCycles += fc
	}
	m.tr = tr
	m.trBase = tr.BaseVA
	m.trSpan = tr.Size.Bytes()
	m.trWide[m.trVictim] = trEntry{base: m.trBase, span: m.trSpan, tr: tr}
	m.trVictim++
	if m.trVictim == trCacheWays {
		m.trVictim = 0
	}
	return fc
}

// accessEach dispatches every address of a gather batch through the
// scalar Access path — AccessGather's degradation loop. It lives in this
// untagged file because looping scalar Access over a collected VA slice
// is exactly what rule SL009 forbids in fastpath-tagged files; here it
// is the deliberate fallback, not a missed batching opportunity.
func (m *Machine) accessEach(vas []uint64) {
	for _, va := range vas {
		m.Access(va)
	}
}

// translateMiss charges the translation cost beyond an L1 TLB hit: an
// STLB hit, or a full page walk (page-walk-cache-accelerated, with the
// deepest levels either costed by the constant model or fetched through
// the data cache hierarchy when page tables are simulated). Walked
// translations are filled back into the TLB.
func (m *Machine) translateMiss(va uint64, size vm.PageSizeClass, res tlb.Result) uint64 {
	if res.STLBHit {
		return m.Model.STLBHit
	}
	memLv, pwcLv := m.TLB.WalkCost(va, size)
	trCycles := m.Model.STLBHit + uint64(pwcLv)*m.Model.WalkLevelPWC
	if m.simPT {
		// Fetch the walked entries through the cache hierarchy: the
		// deepest memLv levels go to memory.
		addrs, _ := m.Space.WalkEntryAddrs(va, size)
		for i := 0; i < memLv; i++ {
			switch m.Cache.Access(addrs[i]) {
			case cache.HitL1:
				trCycles += m.Model.L1DHit
			case cache.HitLLC:
				trCycles += m.Model.LLCHit
			default:
				trCycles += m.Model.DRAM
			}
		}
	} else {
		trCycles += uint64(memLv) * m.Model.WalkLevel
	}
	m.TLB.AddWalkCycles(trCycles)
	m.TLB.Fill(va, size)
	return trCycles
}
