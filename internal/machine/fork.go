package machine

import (
	"graphmem/internal/check"
	"graphmem/internal/memsys"
	"graphmem/internal/vm"
)

// Forkable reports whether the machine can be forked. Registered
// tickers and observers are closures over state outside the machine (a
// churning co-runner, a supply sampler, a tracer); a deep copy cannot
// capture what they close over, so machines carrying them must be
// re-run from scratch instead of forked. The campaign layer checks
// this predicate and routes such cells down the monolithic path.
func (m *Machine) Forkable() bool {
	return len(m.tickers) == 0 && len(m.observers) == 0
}

// Fork returns an independent deep copy of the full machine state:
// physical memory, address space, kernel policy engine, TLB and cache
// hierarchies, the translation cache, cycle accounting, event
// deadlines, and all phase/array statistics. From the fork point the
// copy and the original evolve as two machines that happened to reach
// the same state — identical access streams produce bit-identical
// cycle counts and statistics on both, and neither can observe the
// other.
//
// remapOwner translates frame owners that live OUTSIDE the machine
// (workload structures such as a pinned memhog or a page cache,
// registered with memsys via Alloc/SetOwner) to their counterparts in
// the fork; it receives the cloned physical node so replacements can
// bind to it. The machine's own address space is remapped internally.
// Pass nil when no external owners exist. An owner neither side can
// translate makes the underlying memsys clone panic: an unaccounted
// owner means the snapshot would be incomplete.
//
// Fork panics on a machine that is not Forkable.
func (m *Machine) Fork(remapOwner func(memsys.Owner, *memsys.Memory) memsys.Owner) *Machine {
	if !m.Forkable() {
		panic(check.Failf("machine: Fork with %d tickers and %d observers registered: closure-captured actors cannot be deep-copied",
			len(m.tickers), len(m.observers)))
	}
	space := m.Space.Clone()
	remap := func(o memsys.Owner, nm *memsys.Memory) memsys.Owner {
		if o == memsys.Owner(m.Space) {
			return space
		}
		if remapOwner != nil {
			return remapOwner(o, nm)
		}
		return nil
	}
	mem := m.Mem.Clone(remap)
	space.AttachMem(mem)
	f := &Machine{
		Mem:        mem,
		Space:      space,
		Kernel:     m.Kernel.Clone(mem, space),
		Model:      m.Model,
		cycles:     m.cycles,
		simPT:      m.simPT,
		noBulk:     m.noBulk,
		noGather:   m.noGather,
		nextEvent:  m.nextEvent,
		tickers:    nil,
		observers:  nil,
		ev:         AccessEvent{}, // scratch buffer, refilled per notify
		shardState: m.shardState.clone(),
	}
	// Translation-cache entries carry *VMA pointers into the original
	// space; live entries are remapped to the cloned VMAs and empty
	// ones cleared (an empty entry may still hold a stale pointer from
	// before the last shootdown — remapping it could even hit a VMA
	// that no longer exists).
	if m.trSpan != 0 {
		f.tr = remapTranslation(m.tr, space)
	}
	for i := range f.trWide {
		if f.trWide[i].span == 0 {
			f.trWide[i] = trEntry{}
		} else {
			f.trWide[i].tr = remapTranslation(f.trWide[i].tr, space)
		}
	}
	space.Shootdown = f.shootdown
	return f
}

// remapTranslation rebinds a cached translation's VMA pointer to the
// cloned address space. Frame numbers and sizes are identical across
// the fork (the physical layout is copied verbatim), so only the
// pointer needs translating.
func remapTranslation(tr vm.Translation, space *vm.AddressSpace) vm.Translation {
	if tr.VMA != nil {
		tr.VMA = space.Counterpart(tr.VMA)
	}
	return tr
}
