package machine

import (
	"unsafe"

	"graphmem/internal/memsys"
	"graphmem/internal/stats"
)

// Footprint assembles the per-subsystem simulator memory report for
// this machine: physical frame metadata, VM mapping tables, region
// heat, TLB/cache model arrays, the machine core itself, and every
// frame owner that can introspect its own cost (workload drivers). Row
// order is fixed, so the rendered report is deterministic.
func (m *Machine) Footprint() stats.Footprint {
	f := stats.Footprint{SimulatedBytes: m.Mem.TotalPages() * memsys.PageSize}

	cur, legacy := m.Mem.FootprintBytes()
	f.Add("memsys/frames", cur, legacy)

	tables, tablesLegacy, heat, heatLegacy := m.Space.FootprintBytes()
	f.Add("vm/tables", tables, tablesLegacy)
	f.Add("vm/heat", heat, heatLegacy)

	hw := m.TLB.FootprintBytes() + m.Cache.FootprintBytes()
	f.Add("tlb+cache", hw, hw)

	// The machine core: the struct itself (which embeds the translation
	// cache arrays) plus its dynamic accounting slices.
	core := uint64(unsafe.Sizeof(*m)) +
		uint64(cap(m.done))*uint64(unsafe.Sizeof(PhaseStats{})) +
		uint64(cap(m.arrays))*uint64(unsafe.Sizeof(ArrayStats{})) +
		uint64(cap(m.observers))*16 +
		uint64(cap(m.tickers))*uint64(unsafe.Sizeof(ticker{}))
	f.Add("machine", core, core)

	// Frame owners outside the machine (memhog, page cache, churner)
	// report themselves. The address space and its VMAs do not
	// implement FootprintReporter — their cost is already the vm rows
	// above — so the type assertion skips them.
	for _, o := range m.Mem.Owners() {
		if r, ok := o.(memsys.FootprintReporter); ok {
			label, cur, legacy := r.FootprintReport()
			f.Add(label, cur, legacy)
		}
	}
	return f
}
