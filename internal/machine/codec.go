package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/ckpt"
	"graphmem/internal/memsys"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

// Checkpoint codec (DESIGN.md §5e). Encode writes the composed state
// vector in an order chosen for Decode's rebuild dependencies, which
// mirror Fork's: the address space is decoded first (it needs nothing),
// then physical memory (whose owner table points back at the space),
// then the space is attached to the node and its frame references
// bounds-checked, then the kernel (which binds to both), and finally
// the per-shard simulation state. The shootdown callback is installed
// last, exactly where Fork installs it.
//
// Machines carrying tickers or observers are not Forkable and not
// serializable either — both guards fail the encoder rather than
// silently dropping an actor.

func encodeTranslation(e *ckpt.Encoder, tr vm.Translation) {
	e.U32(uint32(tr.Frame))
	e.U8(uint8(tr.Size))
	e.U64(tr.BaseVA)
	if tr.VMA != nil {
		e.U64(tr.VMA.Base)
	} else {
		e.U64(0)
	}
}

// decodeTranslation resolves the VMA reference (encoded as the VMA's
// base address, 0 = nil) against the already-decoded space.
func decodeTranslation(d *ckpt.Decoder, space *vm.AddressSpace) vm.Translation {
	var tr vm.Translation
	tr.Frame = memsys.Frame(d.U32())
	tr.Size = vm.PageSizeClass(d.U8())
	tr.BaseVA = d.U64()
	vbase := d.U64()
	if tr.Size > vm.Page2M {
		d.Failf("machine: translation page size class %d unknown", tr.Size)
		return tr
	}
	if vbase != 0 {
		v := space.FindVMA(vbase)
		if v == nil || v.Base != vbase {
			d.Failf("machine: cached translation names no VMA at %#x", vbase)
			return tr
		}
		tr.VMA = v
	}
	return tr
}

// checkTranslation fails the decoder unless a live cached translation
// is one the fast path can consume without bounds checks: the window
// sits inside its VMA (accountHeat indexes region heat from it) and the
// frame sits inside the node.
func checkTranslation(d *ckpt.Decoder, tr vm.Translation, base, span uint64, total uint64) {
	if d.Err() != nil {
		return
	}
	if span != tr.Size.Bytes() || tr.BaseVA != base {
		d.Failf("machine: cached translation window [%#x,+%d) does not match its page class", base, span)
		return
	}
	if tr.VMA == nil || base < tr.VMA.Base || base+span > tr.VMA.End() {
		d.Failf("machine: cached translation window [%#x,+%d) escapes its VMA", base, span)
		return
	}
	frames := span / memsys.PageSize
	if uint64(tr.Frame)%frames != 0 || uint64(tr.Frame)+frames > total {
		d.Failf("machine: cached translation frame %d misaligned or out of range", tr.Frame)
	}
}

func (a *ArrayStats) encode(e *ckpt.Encoder) {
	e.String(a.Name)
	e.U64(a.Accesses)
	e.U64(a.L1Misses)
	e.U64(a.Walks)
}

func (a *ArrayStats) decode(d *ckpt.Decoder) {
	a.Name = d.String()
	a.Accesses = d.U64()
	a.L1Misses = d.U64()
	a.Walks = d.U64()
}

func (p *PhaseStats) encode(e *ckpt.Encoder) {
	e.String(p.Name)
	e.U64(p.Cycles)
	e.U64(p.Accesses)
	e.U64(p.DataCycles)
	e.U64(p.TranslationCycles)
	e.U64(p.FaultCycles)
	p.TLB.Encode(e)
	p.Cache.Encode(e)
}

func (p *PhaseStats) decode(d *ckpt.Decoder) {
	p.Name = d.String()
	p.Cycles = d.U64()
	p.Accesses = d.U64()
	p.DataCycles = d.U64()
	p.TranslationCycles = d.U64()
	p.FaultCycles = d.U64()
	p.TLB.Decode(d)
	p.Cache.Decode(d)
}

func (s *shardState) encode(e *ckpt.Encoder) {
	s.TLB.Encode(e)
	s.Cache.Encode(e)
	encodeTranslation(e, s.tr)
	e.U64(s.trBase)
	e.U64(s.trSpan)
	for i := range s.trWide {
		w := s.trWide[i]
		if w.span == 0 {
			// An empty victim entry may hold a stale translation from
			// before the last shootdown; normalize it away, as Fork does.
			w = trEntry{}
		}
		e.U64(w.base)
		e.U64(w.span)
		encodeTranslation(e, w.tr)
	}
	e.Int(s.trVictim)
	s.phase.encode(e)
	s.tlbAtPhase.Encode(e)
	s.cchAtPhase.Encode(e)
	e.Int(len(s.done))
	for i := range s.done {
		s.done[i].encode(e)
	}
	e.Int(len(s.arrays))
	for i := range s.arrays {
		s.arrays[i].encode(e)
	}
}

func (s *shardState) decode(d *ckpt.Decoder, space *vm.AddressSpace, total uint64) {
	s.TLB = new(tlb.Hierarchy)
	s.TLB.Decode(d)
	s.Cache = new(cache.Hierarchy)
	s.Cache.Decode(d)
	s.tr = decodeTranslation(d, space)
	s.trBase = d.U64()
	s.trSpan = d.U64()
	if s.trSpan != 0 {
		checkTranslation(d, s.tr, s.trBase, s.trSpan, total)
	}
	for i := range s.trWide {
		s.trWide[i].base = d.U64()
		s.trWide[i].span = d.U64()
		s.trWide[i].tr = decodeTranslation(d, space)
		if w := s.trWide[i]; w.span != 0 {
			checkTranslation(d, w.tr, w.base, w.span, total)
		} else if w != (trEntry{}) {
			d.Failf("machine: empty translation victim entry %d carries state", i)
		}
	}
	s.trVictim = d.Int()
	if s.trVictim < 0 || s.trVictim >= trCacheWays {
		d.Failf("machine: translation victim cursor %d out of range", s.trVictim)
	}
	s.phase.decode(d)
	s.tlbAtPhase.Decode(d)
	s.cchAtPhase.Decode(d)
	nDone := d.Len(1 << 20)
	s.done = make([]PhaseStats, nDone)
	for i := range s.done {
		s.done[i].decode(d)
	}
	nArrays := d.Len(1 << 20)
	s.arrays = make([]ArrayStats, nArrays)
	for i := range s.arrays {
		s.arrays[i].decode(d)
	}
}

// Encode serializes the whole machine. owner serializes frame owners
// living outside the machine (workload structures); the machine's own
// address space is tagged internally, mirroring Fork's remap split.
func (m *Machine) Encode(e *ckpt.Encoder, owner func(*ckpt.Encoder, memsys.Owner)) {
	if len(m.tickers) != 0 || len(m.observers) != 0 {
		e.Failf("machine: %d tickers and %d observers registered: closure-captured actors cannot be serialized",
			len(m.tickers), len(m.observers))
		return
	}
	_ = m.ev // scratch buffer, refilled per notify
	e.U64(m.cycles)
	e.Bool(m.simPT)
	e.Bool(m.noBulk)
	e.Bool(m.noGather)
	e.U64(m.nextEvent)
	m.Model.Encode(e)
	m.Space.Encode(e)
	m.Mem.Encode(e, func(e *ckpt.Encoder, o memsys.Owner) {
		if o == memsys.Owner(m.Space) {
			e.U8(ownerSpace)
			return
		}
		e.U8(ownerExternal)
		owner(e, o)
	})
	m.Kernel.Encode(e)
	m.shardState.encode(e)
}

// Owner-table slot tags written by Machine.Encode.
const (
	ownerSpace    = 1 // the machine's own address space
	ownerExternal = 2 // a workload structure; the caller's codec follows
)

// Decode is Encode's inverse, into a fresh receiver. owner reconstructs
// external frame owners against the node under construction. On any
// decoder error the receiver must be discarded.
func (m *Machine) Decode(d *ckpt.Decoder, owner func(*ckpt.Decoder, *memsys.Memory) memsys.Owner) {
	m.cycles = d.U64()
	m.simPT = d.Bool()
	m.noBulk = d.Bool()
	m.noGather = d.Bool()
	m.nextEvent = d.U64()
	m.Model.Decode(d)
	m.Space = new(vm.AddressSpace)
	m.Space.Decode(d)
	if d.Err() != nil {
		return
	}
	m.Mem = new(memsys.Memory)
	m.Mem.Decode(d, func(d *ckpt.Decoder, mem *memsys.Memory) memsys.Owner {
		switch tag := d.U8(); tag {
		case ownerSpace:
			return m.Space
		case ownerExternal:
			return owner(d, mem)
		default:
			d.Failf("machine: owner table slot tag %d unknown", tag)
			return nil
		}
	})
	if d.Err() != nil {
		return
	}
	m.Space.AttachMem(m.Mem)
	m.Space.CheckFrames(d)
	m.Kernel = new(oskernel.Kernel)
	m.Kernel.Decode(d, m.Mem, m.Space)
	m.shardState.decode(d, m.Space, m.Mem.TotalPages())
	if d.Err() != nil {
		return
	}
	// Per-array attribution indexes m.arrays by VMA.StatsTag without a
	// bounds check on the fast path.
	for _, v := range m.Space.VMAs() {
		if v.StatsTag >= len(m.arrays) {
			d.Failf("machine: VMA %q stats tag %d beyond %d registered arrays",
				v.Name, v.StatsTag, len(m.arrays))
			return
		}
	}
	if m.simPT != m.Space.SimPageTables {
		d.Failf("machine: page-table simulation flag disagrees with address space")
		return
	}
	m.tickers = nil
	m.observers = nil
	m.ev = AccessEvent{}
	m.Space.Shootdown = m.shootdown
}
