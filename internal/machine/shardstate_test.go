package machine

import (
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/memsys"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
)

// TestShardFastPathZeroAllocs pins the sharded engine's per-access
// cost: a forked shard machine's steady-state Access, AccessRun, and
// AccessGather paths must stay allocation-free, exactly like the
// original's. The per-shard state vector (shardState) is cloned once
// at fork time; nothing on the access path may reach for the heap, or
// running S shards multiplies a per-access allocation S-fold.
func TestShardFastPathZeroAllocs(t *testing.T) {
	m := New(Config{
		MemoryBytes: 64 << 20,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Default(),
		Kernel:      oskernel.DefaultConfig(),
	})
	v := m.Space.Mmap("steady", 4<<20)
	m.RegisterArray(v)
	m.Touch(v.Base, v.Bytes)

	f := m.Fork(func(memsys.Owner, *memsys.Memory) memsys.Owner { return nil })
	fv := f.Space.FindVMA(v.Base)
	if fv == nil || fv == v {
		t.Fatal("forked space must carry its own clone of the test VMA")
	}
	vas := make([]uint64, 64)
	for i := range vas {
		vas[i] = fv.Base + uint64(i*832)%(2<<20)
	}
	const span = 16 << 10
	var off uint64
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			f.Access(fv.Base + off)
			off = (off + 64) % span
		}
		f.AccessRun(fv.Base, 1024, 4)
		f.AccessGather(vas)
	}); avg != 0 {
		t.Fatalf("forked shard fast path allocated %.1f times per run; the shard-local contract is zero allocs", avg)
	}
}
