package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/tlb"
	"graphmem/internal/vm"
)

// This file is the accounting and observation layer of the access
// engine: phase bookkeeping, the two built-in zero-alloc accounting
// hooks (region heat, per-array attribution), and the observer spine
// that lets trace capture and other per-access consumers compose
// without touching the fast path.

// ArrayStats attributes memory behaviour to one registered array (VMA),
// reproducing the paper's per-data-structure analysis (Fig. 4/5).
type ArrayStats struct {
	Name     string
	Accesses uint64
	L1Misses uint64
	Walks    uint64
}

// PhaseStats aggregates behaviour over one named phase of execution
// (the paper reports initialization and kernel time separately).
type PhaseStats struct {
	Name   string
	Cycles uint64

	Accesses uint64

	DataCycles        uint64 // time in the data cache/DRAM hierarchy
	TranslationCycles uint64 // STLB hits + page walks
	FaultCycles       uint64 // kernel fault handling on the critical path

	TLB   tlb.Stats
	Cache cache.Stats
}

// Add returns the field-wise sum p + o, keeping p's Name. The sharded
// machine engine merges per-shard kernel phases with it; note the
// merged phase's Cycles is then set to the barrier makespan by the
// caller, not this sum (core, DESIGN.md §5c).
func (p PhaseStats) Add(o PhaseStats) PhaseStats {
	return PhaseStats{
		Name:              p.Name,
		Cycles:            p.Cycles + o.Cycles,
		Accesses:          p.Accesses + o.Accesses,
		DataCycles:        p.DataCycles + o.DataCycles,
		TranslationCycles: p.TranslationCycles + o.TranslationCycles,
		FaultCycles:       p.FaultCycles + o.FaultCycles,
		TLB:               p.TLB.Add(o.TLB),
		Cache:             p.Cache.Add(o.Cache),
	}
}

// TranslationShare is the fraction of phase cycles spent translating
// (the paper's Fig. 2 metric, extended with fault time excluded).
func (p PhaseStats) TranslationShare() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return float64(p.TranslationCycles) / float64(p.Cycles)
}

// RegisterArray tags a VMA for per-array attribution and returns its
// stats index.
func (m *Machine) RegisterArray(v *vm.VMA) int {
	v.StatsTag = len(m.arrays)
	m.arrays = append(m.arrays, ArrayStats{Name: v.Name})
	return v.StatsTag
}

// ArrayStats returns a copy of the per-array counters.
func (m *Machine) ArrayStats() []ArrayStats {
	out := make([]ArrayStats, len(m.arrays))
	copy(out, m.arrays)
	return out
}

// BeginPhase closes the current phase and starts a new one.
func (m *Machine) BeginPhase(name string) {
	m.closePhase()
	m.phase = PhaseStats{Name: name}
	m.tlbAtPhase = m.TLB.Stats()
	m.cchAtPhase = m.Cache.Stats()
}

func (m *Machine) closePhase() {
	cur := m.TLB.Stats()
	m.phase.TLB = tlb.Stats{
		Lookups:    cur.Lookups - m.tlbAtPhase.Lookups,
		L1Misses:   cur.L1Misses - m.tlbAtPhase.L1Misses,
		STLBMisses: cur.STLBMisses - m.tlbAtPhase.STLBMisses,
		WalkCycles: cur.WalkCycles - m.tlbAtPhase.WalkCycles,
	}
	cch := m.Cache.Stats()
	m.phase.Cache = cache.Stats{
		Accesses: cch.Accesses - m.cchAtPhase.Accesses,
		L1Misses: cch.L1Misses - m.cchAtPhase.L1Misses,
		LLCMiss:  cch.LLCMiss - m.cchAtPhase.LLCMiss,
	}
	m.done = append(m.done, m.phase)
}

// FinishPhases closes the current phase and returns all completed
// phases in order.
func (m *Machine) FinishPhases() []PhaseStats {
	m.closePhase()
	m.phase = PhaseStats{Name: "after"}
	m.tlbAtPhase = m.TLB.Stats()
	m.cchAtPhase = m.Cache.Stats()
	return m.done
}

// Phase returns the named completed phase, or false.
func (m *Machine) Phase(name string) (PhaseStats, bool) {
	for _, p := range m.done {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStats{}, false
}

// --- built-in accounting hooks ----------------------------------------
//
// Heat and per-array attribution run on every access and feed simulated
// policy (heat-guided promotion) and the paper's per-structure tables,
// so they are part of the engine's zero-alloc contract: both are plain
// field increments, statically compiled into Access rather than
// dispatched through the observer list.

// accountHeat records region heat for heat-guided promotion policies.
// The accessed address just translated through a live mapping, so the
// region's chunk is guaranteed materialized and AddHeat is a plain
// array increment — no allocation, no nil check on the fast path.
func (m *Machine) accountHeat(va uint64, v *vm.VMA) {
	v.AddHeat(int((va-v.Base)>>21), 1)
}

// accountArray attributes the access to its registered array, if any.
func (m *Machine) accountArray(v *vm.VMA, res tlb.Result) {
	if tag := v.StatsTag; tag >= 0 {
		a := &m.arrays[tag]
		a.Accesses++
		if !res.L1Hit {
			a.L1Misses++
		}
		if res.Walked {
			a.Walks++
		}
	}
}

// --- observer spine ---------------------------------------------------

// AccessEvent describes one completed simulated access, delivered to
// registered observers. The pointer handed to OnAccess aliases a buffer
// reused on every access: observers must copy out any fields they keep.
type AccessEvent struct {
	VA     uint64
	VMA    *vm.VMA
	Size   vm.PageSizeClass
	TLB    tlb.Result
	Data   cache.AccessLevel
	Cycles uint64 // total cycles this access charged (incl. fault time)
}

// Observer consumes per-access events. Observers run after all cycle
// and stats accounting for the access, in registration order, and must
// not mutate simulation state.
type Observer interface {
	OnAccess(ev *AccessEvent)
}

// AddObserver appends o to the spine. The fast path pays one emptiness
// check when no observer is registered.
func (m *Machine) AddObserver(o Observer) {
	m.observers = append(m.observers, o)
}

// Tracer receives every access (virtual address and the VMA's StatsTag)
// — the hook trace capture uses.
type Tracer interface{ Trace(va uint64, tag uint8) }

// traceAdapter bridges the Tracer interface onto the observer spine.
type traceAdapter struct{ t Tracer }

func (a traceAdapter) OnAccess(ev *AccessEvent) {
	tag := uint8(0xFF)
	if ev.VMA.StatsTag >= 0 && ev.VMA.StatsTag < 0xFF {
		tag = uint8(ev.VMA.StatsTag)
	}
	a.t.Trace(ev.VA, tag)
}

// SetTracer installs t as the machine's tracer (replacing any previous
// one); nil detaches. The tracer is an ordinary observer on the spine.
func (m *Machine) SetTracer(t Tracer) {
	kept := m.observers[:0]
	for _, o := range m.observers {
		if _, isTrace := o.(traceAdapter); !isTrace {
			kept = append(kept, o)
		}
	}
	m.observers = kept
	if t != nil {
		m.observers = append(m.observers, traceAdapter{t})
	}
}

// notifyObservers fills the machine's reused event buffer and fans it
// out. Kept out of the fast path body so Access only pays for it when
// observers exist.
func (m *Machine) notifyObservers(va uint64, tr *vm.Translation, res tlb.Result, lvl cache.AccessLevel, cycles uint64) {
	m.ev = AccessEvent{
		VA:     va,
		VMA:    tr.VMA,
		Size:   tr.Size,
		TLB:    res,
		Data:   lvl,
		Cycles: cycles,
	}
	for _, o := range m.observers {
		o.OnAccess(&m.ev)
	}
}
