//simlint:fastpath

package machine

import (
	"graphmem/internal/cache"
	"graphmem/internal/memsys"
)

// AccessGather simulates one data memory access per address in vas, in
// slice order — the shape of every irregular, data-dependent stream the
// graph kernels issue (property reads for a vertex's neighbors, frontier
// writes, relaxation scatters). It is arithmetically identical to
//
//	for _, va := range vas { m.Access(va) }
//
// in every observable: Cycles, phase stats, heat, per-array attribution,
// TLB/cache counters and LRU state, event dispatch, and traces. Where
// AccessRun exploits a constant stride, the gather engine exploits the
// locality irregular batches still carry: power-law neighbor lists
// revisit a few hot property pages (amplified by DBG reordering), and
// sorted or near-sorted neighbor runs land on the same cache line. A
// run of same-page references is n−1 guaranteed L1 TLB hits after the
// first, and a run of same-line references is n−1 guaranteed L1 data
// hits after the first, so — exactly as in the bulk engine — their
// per-access work reduces to counter arithmetic (DESIGN.md §4e).
//
// The batch is cut into page segments (addresses batched while they stay
// on the primary translation-cache page; one real TLB resolution each)
// and, inside a segment, line runs (one real data-cache probe per line,
// the consecutive same-line accesses after it charged as guaranteed L1
// hits). Segments split exactly where the scalar loop would change
// behaviour:
//
//   - translation-cache miss (new page, fault, shootdown): the split
//     access goes through the scalar path, which refills the cache —
//     probing the victim array (access_slow.go) before walking — and
//     services any fault at the same cycle the scalar loop would;
//   - the nextEvent cycle deadline: the line run is truncated to the
//     access that first reaches the deadline, accumulated accounting is
//     flushed, and events run at the same cycle the scalar loop would
//     run them;
//   - observers registered (tracing): per-access dispatch so traces stay
//     byte-identical. Re-checked after every event dispatch, so a ticker
//     attaching a tracer mid-batch degrades the rest of the batch;
//     flushing before runEvents means no gather state is in flight when
//     it does.
//
// GRAPHMEM_NO_GATHER=1 or SetGather(false) degrade the whole batch to
// scalar dispatch; the CI gate diffs a campaign run both ways.
func (m *Machine) AccessGather(vas []uint64) {
	i, n := 0, len(vas)
	for i < n {
		// Per-batch dispatch when batching is off or unsound: gather
		// disabled, observers registered, or a zero-cost hit model (the
		// event-split division needs cHit > 0).
		if m.noGather || len(m.observers) != 0 || m.Model.L1DHit+m.Model.Compute == 0 {
			m.accessEach(vas[i:]) //simlint:ignore SL012 per-batch fallback; Access waives its own fault/event escapes
			return
		}
		// Scalar dispatch for any access the gather engine cannot
		// batch: a translation-cache miss (new page, unmapped/faulting
		// page, shootdown), a due or stale event deadline (a
		// mode-disabled kernel keeps its deadline in the past so Tick
		// runs per access), or an L1 TLB array with no capacity for
		// this page size.
		if vas[i]-m.trBase >= m.trSpan || m.cycles >= m.nextEvent || !m.TLB.L1Holds(m.tr.Size) {
			m.Access(vas[i]) //simlint:ignore SL012 scalar fallback; Access waives its own fault/event escapes
			i++
			continue
		}
		i = m.gatherSegment(vas, i) //simlint:ignore SL012 segment body allocates only via waived event dispatch
	}
}

// gatherSegment batches accesses from vas[i:] while they stay inside the
// translation cache's current page, returning the index of the first
// unprocessed address. The caller established: gather enabled, no
// observers, vas[i] inside the cached page, L1 TLB capacity for its
// size, and cycles < nextEvent.
func (m *Machine) gatherSegment(vas []uint64, i int) int {
	// The segment's first access takes the full scalar path: it does
	// the real TLB lookup — installing (or refreshing) L1 residency the
	// rest of the segment relies on — the real data-cache probe, and
	// any due event dispatch.
	m.Access(vas[i]) //simlint:ignore SL012 segment head takes the scalar path; escapes waived in Access
	i++
	n := len(vas)
	// Re-establish the batching preconditions: the event dispatch inside
	// Access may have shot down the translation, registered an observer,
	// or left a stale deadline.
	if i == n || vas[i]-m.trBase >= m.trSpan || m.cycles >= m.nextEvent || len(m.observers) != 0 {
		return i
	}

	// From here until the segment ends, every access hits the page's L1
	// TLB entry, stays within the same heat bucket (pages never span the
	// VMA's 2MB regions), and costs cHit cycles on a same-line hit. Real
	// work per iteration is one data-cache probe per line; everything
	// else accumulates into done/data and flushes at the split.
	base, span := m.trBase, m.trSpan
	paDelta := uint64(m.tr.Frame)<<memsys.PageShift - m.tr.BaseVA
	cHit := m.Model.L1DHit + m.Model.Compute
	// cycles and the event deadline live in locals for the duration of
	// the loop: nothing called from it reads them (the Hierarchy knows
	// nothing of machine time), so they write back only where control
	// leaves — before flushBulk, whose events must see true time.
	cyc, deadline := m.cycles, m.nextEvent
	var done, data uint64
	// The last probed address: its line is L1-resident. Each loop trip
	// charges that line's same-line followers first (a line never spans a
	// page, so same line as an in-span address implies in-span), then does
	// the real probe for the next new line.
	lineVA := vas[i-1]
	line := lineVA >> cache.LineShift

	for {
		if i < n && vas[i]>>cache.LineShift == line {
			// Consecutive addresses on the last probed line: guaranteed
			// L1 hits. Unlike the strided engine the run length is not
			// arithmetic — scan ahead for where the batch leaves the
			// line.
			j := i + 1
			for j < n && vas[j]>>cache.LineShift == line {
				j++
			}
			k := uint64(j - i)
			// Truncate the run at the event deadline: the t-th hit is
			// the first access at which cycles reaches nextEvent,
			// exactly where the scalar loop would dispatch. The divide
			// only runs when the deadline lands inside this run
			// (gap ≤ (k−1)·cHit ⇔ ceil(gap/cHit) < k), keeping the
			// common path division-free.
			gap := deadline - cyc // > 0: loop invariant
			if gap <= (k-1)*cHit {
				k = (gap-1)/cHit + 1
			}
			m.Cache.AccessRepeatL1(lineVA+paDelta, k)
			cyc += k * cHit
			done += k
			data += k * cHit
			i += int(k)
			if cyc >= deadline {
				m.cycles = cyc
				m.flushBulk(done, data)
				m.runEvents() //simlint:ignore SL012 due-event dispatch; registered tickers own their allocation budget
				return i
			}
		}
		if i == n {
			break
		}
		va := vas[i]
		if va-base >= span {
			break
		}
		// First access on a new line: real data-cache probe (the fill
		// makes the line resident for the run above). Translation is
		// still a guaranteed L1 TLB hit, so the access costs data only.
		lineVA = va
		line = va >> cache.LineShift
		var d uint64
		switch m.Cache.Access(va + paDelta) {
		case cache.HitL1:
			d = m.Model.L1DHit
		case cache.HitLLC:
			d = m.Model.LLCHit
		default:
			d = m.Model.DRAM
		}
		d += m.Model.Compute
		cyc += d
		done++
		data += d
		i++
		if cyc >= deadline {
			m.cycles = cyc
			m.flushBulk(done, data)
			m.runEvents() //simlint:ignore SL012 due-event dispatch; registered tickers own their allocation budget
			return i
		}
	}
	m.cycles = cyc
	m.flushBulk(done, data)
	return i
}
