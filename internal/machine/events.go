package machine

// The event layer. Background actors — the kernel's khugepaged cadence
// and registered tickers (churning co-runners, samplers) — each have a
// cycle deadline. armEvents folds them into a single nextEvent value,
// so Access pays one compare per reference and full dispatch runs only
// when something is actually due.
//
// Bit-exactness argument (vs. the pre-event engine, which called
// Kernel.Tick and scanned every ticker on every access): each actor's
// own due-check is unchanged — Tick still guards on now-lastScan <
// interval, a ticker still fires when now-last >= interval — and
// deadlines are exactly the cycles at which those guards first pass
// (lastScan+interval, last+interval). Between deadlines neither engine
// fires anything; at a deadline both dispatch in the same order (kernel
// first, then tickers in registration order) with the same now. A
// kernel whose mode disables scanning keeps a stale deadline in the
// past, so Tick is still invoked per access and still returns early —
// identical to the old engine, and immune to runtime SetMode flips.

// ticker is a periodic simulated-time callback.
type ticker struct {
	interval uint64
	last     uint64
	fn       func(now uint64)
}

// AddTicker registers fn to run (at most) once per interval simulated
// cycles, driven by Access. Used for background actors such as a
// dynamically churning co-runner.
func (m *Machine) AddTicker(interval uint64, fn func(now uint64)) {
	if interval == 0 {
		interval = 1
	}
	m.tickers = append(m.tickers, ticker{interval: interval, fn: fn})
	m.armEvents()
}

// armEvents recomputes nextEvent as the earliest deadline of any
// background actor. ^uint64(0) means nothing is registered (the fast
// path's compare then never fires).
func (m *Machine) armEvents() {
	next := m.Kernel.NextTickAt()
	for i := range m.tickers {
		if d := m.tickers[i].last + m.tickers[i].interval; d < next {
			next = d
		}
	}
	m.nextEvent = next
}

// runEvents dispatches every actor whose deadline has passed and
// re-arms. Called from Access when m.cycles >= m.nextEvent.
func (m *Machine) runEvents() {
	now := m.cycles
	m.Kernel.Tick(now)
	for i := range m.tickers {
		t := &m.tickers[i]
		if now-t.last >= t.interval {
			t.last = now
			t.fn(now)
		}
	}
	m.armEvents()
}
