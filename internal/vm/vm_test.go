package vm

import (
	"testing"
	"testing/quick"

	"graphmem/internal/memsys"
)

func newSpace(t *testing.T) (*AddressSpace, *memsys.Memory) {
	t.Helper()
	mem := memsys.New(64 << 20)
	return NewAddressSpace(mem), mem
}

func TestMmapGeometry(t *testing.T) {
	as, _ := newSpace(t)
	v := as.Mmap("a", 3*memsys.HugeSize+5)
	if v.Base%memsys.HugeSize != 0 {
		t.Fatalf("VMA base %#x not 2MB aligned", v.Base)
	}
	if v.Pages != 3*RegionPages+1 {
		t.Fatalf("pages = %d", v.Pages)
	}
	if v.Regions() != 4 || v.FullRegions() != 3 {
		t.Fatalf("regions = %d/%d, want 4/3", v.Regions(), v.FullRegions())
	}
	w := as.Mmap("b", 123)
	if w.Base < v.End() {
		t.Fatal("VMAs overlap")
	}
	if got := as.FindVMA(v.Base + 42); got != v {
		t.Fatal("FindVMA missed")
	}
	if got := as.FindVMA(w.End()); got != nil {
		t.Fatal("FindVMA matched past the end")
	}
}

func TestMmapZeroPanics(t *testing.T) {
	as, _ := newSpace(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-length mmap did not panic")
		}
	}()
	as.Mmap("z", 0)
}

func TestTranslateFaultThenMap(t *testing.T) {
	as, mem := newSpace(t)
	v := as.Mmap("a", memsys.HugeSize)
	_, fault, ok := as.Translate(v.Base + 4096)
	if ok || fault == nil {
		t.Fatal("unmapped page did not fault")
	}
	if fault.VMA != v || fault.Page != 1 || fault.Swapped {
		t.Fatalf("fault = %+v", fault)
	}
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, 1, f)
	tr, _, ok := as.Translate(v.Base + 4096 + 17)
	if !ok {
		t.Fatal("mapped page faulted")
	}
	if tr.Frame != f || tr.Size != Page4K || tr.BaseVA != v.Base+4096 || tr.VMA != v {
		t.Fatalf("translation = %+v", tr)
	}
}

func TestTranslateOutsideAnyVMA(t *testing.T) {
	as, _ := newSpace(t)
	_, fault, ok := as.Translate(0xdead)
	if ok || fault != nil {
		t.Fatal("expected segfault-style miss with nil fault")
	}
}

func TestHugeMapping(t *testing.T) {
	as, mem := newSpace(t)
	v := as.Mmap("a", 2*memsys.HugeSize)
	hf := mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	as.MapHuge(v, 1, hf)
	va := v.Base + memsys.HugeSize + 12345
	tr, _, ok := as.Translate(va)
	if !ok || tr.Size != Page2M {
		t.Fatalf("translation = %+v ok=%v", tr, ok)
	}
	if tr.BaseVA != v.Base+memsys.HugeSize {
		t.Fatalf("BaseVA = %#x", tr.BaseVA)
	}
	total, huge := v.MappedBytes()
	if total != memsys.HugeSize || huge != memsys.HugeSize {
		t.Fatalf("mapped = %d/%d", total, huge)
	}
	if !v.HugeMapped(1) || v.HugeMapped(0) {
		t.Fatal("HugeMapped wrong")
	}
}

func TestMadviseRounding(t *testing.T) {
	as, _ := newSpace(t)
	v := as.Mmap("a", 4*memsys.HugeSize)
	// Advise a byte range straddling regions 1 and 2: both regions
	// must be covered (outward rounding).
	v.Madvise(memsys.HugeSize+5, memsys.HugeSize, AdviceHuge)
	want := []Advice{AdviceDefault, AdviceHuge, AdviceHuge, AdviceDefault}
	for r, w := range want {
		if v.AdviceAt(r) != w {
			t.Fatalf("region %d advice = %v, want %v", r, v.AdviceAt(r), w)
		}
	}
	v.Madvise(0, v.Bytes, AdviceNoHuge)
	for r := 0; r < v.Regions(); r++ {
		if v.AdviceAt(r) != AdviceNoHuge {
			t.Fatal("full-range madvise incomplete")
		}
	}
}

func TestDemoteHuge(t *testing.T) {
	as, mem := newSpace(t)
	v := as.Mmap("a", memsys.HugeSize)
	hf := mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	as.MapHuge(v, 0, hf)

	var shots []uint64
	as.Shootdown = func(va uint64, size PageSizeClass) { shots = append(shots, va) }
	as.DemoteHuge(v, 0)

	if v.HugeMapped(0) {
		t.Fatal("still huge after demote")
	}
	if v.Present4KInRegion(0) != RegionPages {
		t.Fatalf("present4k = %d", v.Present4KInRegion(0))
	}
	// Every page translates to its constituent frame.
	for p := 0; p < RegionPages; p += 100 {
		tr, _, ok := as.Translate(v.PageVA(p))
		if !ok || tr.Size != Page4K || tr.Frame != hf+memsys.Frame(p) {
			t.Fatalf("page %d: tr=%+v ok=%v", p, tr, ok)
		}
	}
	if len(shots) == 0 {
		t.Fatal("no shootdown on demotion")
	}
	// Constituents are now individually reclaimable.
	dropped, swapped := mem.ReclaimPages(1)
	if dropped+swapped != 1 {
		t.Fatal("demoted constituents not reclaimable")
	}
}

func TestUnmapBaseAndPromotePath(t *testing.T) {
	as, mem := newSpace(t)
	v := as.Mmap("a", memsys.HugeSize)
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, 3, f)
	got := as.UnmapBase(v, 3)
	if got != f {
		t.Fatalf("UnmapBase returned %d, want %d", got, f)
	}
	if v.Present4KInRegion(0) != 0 {
		t.Fatal("present4k not decremented")
	}
	if _, fault, ok := as.Translate(v.PageVA(3)); ok || fault == nil {
		t.Fatal("page still mapped after UnmapBase")
	}
}

func TestCompactionMovesMappingCoherently(t *testing.T) {
	as, mem := newSpace(t)
	v := as.Mmap("a", memsys.HugeSize)
	var shots []uint64
	as.Shootdown = func(va uint64, size PageSizeClass) { shots = append(shots, va) }

	// Map one page per region across memory so compaction must move one.
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, 0, f)
	// Poison all other regions so region 0 (holding f) is the only
	// compaction candidate, with a destination hole in region 1.
	total := memsys.Frame(mem.TotalPages())
	dest := memsys.Frame(memsys.HugePages + 9)
	for fr := memsys.Frame(memsys.HugePages); fr < total; fr++ {
		if fr != dest {
			mem.AllocAt(fr, 0, memsys.Unmovable, nil, 0)
		}
	}
	res := mem.TryCompactHuge()
	if !res.Succeeded {
		t.Fatal("compaction failed")
	}
	tr, _, ok := as.Translate(v.Base)
	if !ok || tr.Frame != dest {
		t.Fatalf("mapping after move: tr=%+v ok=%v want frame %d", tr, ok, dest)
	}
	if len(shots) != 1 || shots[0] != v.Base {
		t.Fatalf("shootdowns = %v", shots)
	}
}

func TestReclaimSwapsOutAndFaultsSwapped(t *testing.T) {
	as, mem := newSpace(t)
	v := as.Mmap("a", memsys.HugeSize)
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, 0, f)
	dropped, swapped := mem.ReclaimPages(1)
	if dropped != 0 || swapped != 1 {
		t.Fatalf("reclaim = (%d,%d)", dropped, swapped)
	}
	if as.SwappedOut != 1 {
		t.Fatalf("SwappedOut = %d", as.SwappedOut)
	}
	_, fault, ok := as.Translate(v.Base)
	if ok || fault == nil || !fault.Swapped {
		t.Fatalf("swapped page fault = %+v ok=%v", fault, ok)
	}
	// Swap-in: map again clears the swap flag.
	nf := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, 0, nf)
	if as.SwappedOut != 0 {
		t.Fatal("swap accounting not cleared on re-map")
	}
}

func TestMunmapFreesEverything(t *testing.T) {
	as, mem := newSpace(t)
	freeBefore := mem.FreePages()
	v := as.Mmap("a", 3*memsys.HugeSize)
	hf := mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	as.MapHuge(v, 0, hf)
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, RegionPages+4, f)
	as.Munmap(v)
	if mem.FreePages() != freeBefore {
		t.Fatalf("leak: free %d != %d", mem.FreePages(), freeBefore)
	}
	if as.FindVMA(v.Base) != nil {
		t.Fatal("dead VMA still findable")
	}
	if err := mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapBaseOverExistingPanics(t *testing.T) {
	as, mem := newSpace(t)
	v := as.Mmap("a", memsys.HugeSize)
	f1 := mem.Alloc(0, memsys.Movable, nil, 0)
	f2 := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, 0, f1)
	defer func() {
		if recover() == nil {
			t.Fatal("double map did not panic")
		}
	}()
	as.MapBase(v, 0, f2)
}

func TestMapHugeRequiresEmptyRegion(t *testing.T) {
	as, mem := newSpace(t)
	v := as.Mmap("a", memsys.HugeSize)
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, 0, f)
	hf := mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("MapHuge over 4K pages did not panic")
		}
	}()
	as.MapHuge(v, 0, hf)
}

// TestQuickTranslationConsistency maps random pages and checks every
// translation agrees with the mapping that was installed.
func TestQuickTranslationConsistency(t *testing.T) {
	f := func(pages []uint16) bool {
		mem := memsys.New(64 << 20)
		as := NewAddressSpace(mem)
		v := as.Mmap("a", 8*memsys.HugeSize)
		installed := make(map[int]memsys.Frame)
		for _, p := range pages {
			pi := int(p) % v.Pages
			if _, dup := installed[pi]; dup {
				continue
			}
			fr := mem.Alloc(0, memsys.Movable, nil, 0)
			if fr == memsys.NoFrame {
				break
			}
			as.MapBase(v, pi, fr)
			installed[pi] = fr
		}
		for pi, fr := range installed {
			tr, _, ok := as.Translate(v.PageVA(pi) + 99)
			if !ok || tr.Frame != fr || tr.Size != Page4K {
				return false
			}
		}
		// Unmapped pages must fault.
		for pi := 0; pi < v.Pages; pi += 37 {
			if _, mapped := installed[pi]; mapped {
				continue
			}
			if _, fault, ok := as.Translate(v.PageVA(pi)); ok || fault == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReclaimSplitsHugeMapping(t *testing.T) {
	mem := memsys.New(64 << 20)
	as := NewAddressSpace(mem)
	v := as.Mmap("a", memsys.HugeSize)
	hf := mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	as.MapHuge(v, 0, hf)
	// Reclaim pressure must split the THP (Linux's deferred split) and
	// then evict the now-ordinary base pages.
	d, s := mem.ReclaimPages(4)
	if as.ReclaimDemotions != 1 {
		t.Fatalf("demotions = %d, want 1", as.ReclaimDemotions)
	}
	if v.HugeMapped(0) {
		t.Fatal("region still huge after reclaim split")
	}
	if d+s != 4 {
		t.Fatalf("reclaimed %d pages, want 4", d+s)
	}
	if as.SwappedOut != uint64(s) {
		t.Fatalf("swap accounting: %d vs %d", as.SwappedOut, s)
	}
}

func TestSimPageTablesAllocation(t *testing.T) {
	mem := memsys.New(64 << 20)
	as := NewAddressSpace(mem)
	as.SimPageTables = true
	before := mem.FreePages()
	v := as.Mmap("a", 4*memsys.HugeSize)
	// PML4 + PDPT + 1 PD + 4 PT pages = 7 pages.
	used := before - mem.FreePages()
	if used != 7 {
		t.Fatalf("page tables used %d frames, want 7", used)
	}
	if as.PageTableBytes != 7*memsys.PageSize {
		t.Fatalf("PageTableBytes = %d", as.PageTableBytes)
	}

	// Walk addresses: distinct per level, inside the allocated frames.
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	as.MapBase(v, 1, f)
	addrs, n := as.WalkEntryAddrs(v.PageVA(1), Page4K)
	if n != 4 {
		t.Fatalf("levels = %d", n)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		pa := addrs[i]
		if seen[pa>>memsys.PageShift] {
			t.Fatalf("two walk levels share a page-table page: %v", addrs)
		}
		seen[pa>>memsys.PageShift] = true
		if !mem.Allocated(memsys.Frame(pa >> memsys.PageShift)) {
			t.Fatalf("walk entry %d at %#x in unallocated frame", i, pa)
		}
	}

	// Huge mappings walk one level less.
	if _, n2 := as.WalkEntryAddrs(v.Base+memsys.HugeSize, Page2M); n2 != 3 {
		t.Fatalf("2M walk levels = %d", n2)
	}

	// Adjacent pages in a region share the PT page, adjacent regions
	// do not.
	a0, _ := as.WalkEntryAddrs(v.PageVA(0), Page4K)
	a1, _ := as.WalkEntryAddrs(v.PageVA(1), Page4K)
	if a0[0]>>memsys.PageShift != a1[0]>>memsys.PageShift {
		t.Fatal("same-region PTEs not on the same PT page")
	}
	b0, _ := as.WalkEntryAddrs(v.PageVA(RegionPages), Page4K)
	if a0[0]>>memsys.PageShift == b0[0]>>memsys.PageShift {
		t.Fatal("different regions share a PT page")
	}

	// Munmap releases PT pages and the mapped frame.
	as.Munmap(v)
	if err := mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSimPageTablesMunmapReleases(t *testing.T) {
	mem := memsys.New(64 << 20)
	as := NewAddressSpace(mem)
	as.SimPageTables = true
	v := as.Mmap("a", 4*memsys.HugeSize)
	after := mem.FreePages()
	as.Munmap(v)
	if got := mem.FreePages() - after; got != 4 {
		t.Fatalf("munmap released %d PT pages, want 4", got)
	}
	if as.PageTableBytes != 3*memsys.PageSize {
		t.Fatalf("PageTableBytes = %d, want roots+pd only", as.PageTableBytes)
	}
}

func TestSimPageTablesOffByDefault(t *testing.T) {
	mem := memsys.New(64 << 20)
	as := NewAddressSpace(mem)
	before := mem.FreePages()
	as.Mmap("a", 4*memsys.HugeSize)
	if mem.FreePages() != before {
		t.Fatal("page tables allocated without SimPageTables")
	}
}
