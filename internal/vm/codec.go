package vm

import (
	"graphmem/internal/ckpt"
	"graphmem/internal/memsys"
)

// Checkpoint codec (DESIGN.md §5e). Serialization follows Clone's
// contract exactly: the same three bindings that do not survive a fork
// do not survive a save — mem (reattached via AttachMem once the
// caller has decoded the physical node), Shootdown (the loaded machine
// installs its own), and lastVMA (a pure lookup accelerator). The
// sparse chunk directories serialize sparsely: nil spans cost nothing
// but their absence from the index list, and materialized chunks write
// their fixed arrays as raw memory.
//
// Decode rebuilds derived state (byID, chunk directories) and
// validates every structural invariant the mapping mutators rely on
// without checking — VMA ordering and cookie budgets, chunk directory
// geometry, present4k counts against the page arrays, the swap-bitmap
// population against SwappedOut, page-table conservation — failing the
// Decoder instead of panicking on hostile images. Frame numbers cannot
// be bounds-checked here (the physical node decodes after the space it
// owns); CheckFrames covers them once memory is attached.

func (pc *pageChunk) encode(e *ckpt.Encoder) {
	e.Raw(ckpt.View(&pc.base))
	e.Raw(ckpt.View(&pc.swap))
}

func (pc *pageChunk) decode(d *ckpt.Decoder) {
	d.Raw(ckpt.View(&pc.base))
	d.Raw(ckpt.View(&pc.swap))
}

func (c *vmaChunk) encode(e *ckpt.Encoder) {
	e.Raw(ckpt.View(&c.advice))
	e.Raw(ckpt.View(&c.huge))
	e.Raw(ckpt.View(&c.present4k))
	e.Raw(ckpt.View(&c.heat))
	n := 0
	for _, pc := range c.pages {
		if pc != nil {
			n++
		}
	}
	e.Int(n)
	for i, pc := range c.pages {
		if pc != nil {
			e.Int(i)
			pc.encode(e)
		}
	}
}

func (c *vmaChunk) decode(d *ckpt.Decoder) {
	d.Raw(ckpt.View(&c.advice))
	d.Raw(ckpt.View(&c.huge))
	d.Raw(ckpt.View(&c.present4k))
	d.Raw(ckpt.View(&c.heat))
	n := d.Len(chunkRegions)
	prev := -1
	for k := 0; k < n; k++ {
		i := d.Int()
		if i <= prev || i >= chunkRegions {
			d.Failf("vm: page chunk index %d out of order or range", i)
			return
		}
		prev = i
		pc := &pageChunk{}
		pc.decode(d)
		c.pages[i] = pc
	}
}

func (v *VMA) encode(e *ckpt.Encoder) {
	e.String(v.Name)
	e.U64(v.Base)
	e.U64(v.Bytes)
	e.Int(v.Pages)
	e.Int(v.StatsTag)
	e.U32(v.id)
	_ = v.space // back-pointer; the decoding space binds itself
	n := 0
	for _, c := range v.chunks {
		if c != nil {
			n++
		}
	}
	e.Int(len(v.chunks))
	e.Int(n)
	for i, c := range v.chunks {
		if c != nil {
			e.Int(i)
			c.encode(e)
		}
	}
	ckpt.EncodeSlice(e, v.ptFrames)
	if v.dead {
		// The live VMA list excludes dead entries by construction.
		e.Failf("vm: dead VMA %q in live list", v.Name)
	}
}

func (v *VMA) decode(d *ckpt.Decoder, space *AddressSpace) {
	v.Name = d.String()
	v.Base = d.U64()
	v.Bytes = d.U64()
	v.Pages = d.Int()
	v.StatsTag = d.Int()
	v.id = d.U32()
	v.space = space
	v.dead = false
	if v.Pages <= 0 || uint64(v.Pages) > cookieIndexMask+1 ||
		v.Bytes == 0 || v.Pages != int((v.Bytes+memsys.PageSize-1)/memsys.PageSize) {
		d.Failf("vm: VMA %q: %d pages / %d bytes out of range", v.Name, v.Pages, v.Bytes)
		return
	}
	if v.Base%memsys.HugeSize != 0 {
		d.Failf("vm: VMA %q base %#x not 2MB aligned", v.Name, v.Base)
		return
	}
	if v.id == 0 || uint64(v.id) > cookieIDMask {
		d.Failf("vm: VMA %q id %d outside the cookie budget", v.Name, v.id)
		return
	}
	nChunks := d.Len(1 << 30)
	regions := (v.Pages + RegionPages - 1) / RegionPages
	if nChunks != (regions+chunkRegions-1)>>chunkShift {
		d.Failf("vm: VMA %q: %d chunk slots for %d regions", v.Name, nChunks, regions)
		return
	}
	v.chunks = make([]*vmaChunk, nChunks)
	n := d.Len(nChunks)
	prev := -1
	for k := 0; k < n; k++ {
		i := d.Int()
		if i <= prev || i >= nChunks {
			d.Failf("vm: VMA %q chunk index %d out of order or range", v.Name, i)
			return
		}
		prev = i
		c := &vmaChunk{}
		c.decode(d)
		v.chunks[i] = c
	}
	v.ptFrames = ckpt.DecodeSlice[memsys.Frame](d)
}

// validate checks the per-region bookkeeping of a decoded VMA and
// returns the number of swap-resident pages it carries.
func (v *VMA) validate(d *ckpt.Decoder) (swapped uint64) {
	if d.Err() != nil {
		return 0
	}
	regions := v.Regions()
	for ci, c := range v.chunks {
		if c == nil {
			continue
		}
		for cr := 0; cr < chunkRegions; cr++ {
			r := ci<<chunkShift + cr
			huge := c.huge[cr] != memsys.NoFrame
			pc := c.pages[cr]
			if r >= regions {
				if huge || pc != nil || c.present4k[cr] != 0 || c.advice[cr] != AdviceDefault || c.heat[cr] != 0 {
					d.Failf("vm: VMA %q has state beyond its %d regions", v.Name, regions)
					return swapped
				}
				continue
			}
			if huge {
				if pc != nil || c.present4k[cr] != 0 {
					d.Failf("vm: VMA %q region %d is huge-mapped but carries 4K state", v.Name, r)
					return swapped
				}
				if (r+1)*RegionPages > v.Pages {
					d.Failf("vm: VMA %q partial tail region %d is huge-mapped", v.Name, r)
					return swapped
				}
				continue
			}
			if pc == nil {
				if c.present4k[cr] != 0 {
					d.Failf("vm: VMA %q region %d counts %d pages with no page state", v.Name, r, c.present4k[cr])
					return swapped
				}
				continue
			}
			lo := r * RegionPages
			var present uint16
			for j := 0; j < RegionPages; j++ {
				mapped := pc.base[j] != memsys.NoFrame
				if lo+j >= v.Pages {
					if mapped || pc.swapped(j) {
						d.Failf("vm: VMA %q has a mapping beyond its %d pages", v.Name, v.Pages)
						return swapped
					}
					continue
				}
				if mapped {
					present++
					if pc.swapped(j) {
						d.Failf("vm: VMA %q page %d both mapped and swapped", v.Name, lo+j)
						return swapped
					}
				} else if pc.swapped(j) {
					swapped++
				}
			}
			if present != c.present4k[cr] {
				d.Failf("vm: VMA %q region %d counts %d pages but %d are mapped", v.Name, r, c.present4k[cr], present)
				return swapped
			}
		}
	}
	return swapped
}

// Encode serializes the address space and every live VMA.
func (as *AddressSpace) Encode(e *ckpt.Encoder) {
	_ = as.mem       // rebound via AttachMem after the physical node decodes
	_ = as.byID      // derived: rebuilt from the VMA list
	_ = as.lastVMA   // lookup accelerator; never serialized
	_ = as.Shootdown // stateless machine binding; the loaded machine installs its own
	e.Int(len(as.vmas))
	for _, v := range as.vmas {
		v.encode(e)
	}
	e.U64(as.nextBase)
	e.U32(as.nextID)
	e.Bool(as.SimPageTables)
	e.U64(as.PageTableBytes)
	e.U32(uint32(as.pml4))
	e.U32(uint32(as.pdpt))
	e.Int(len(as.pds))
	for _, gb := range sortedKeys(as.pds) {
		e.U64(gb)
		e.U32(uint32(as.pds[gb]))
	}
	e.U64(as.SwappedOut)
	e.U64(as.ReclaimDemotions)
}

func sortedKeys(m map[uint64]memsys.Frame) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Decode is Encode's inverse, into a fresh receiver. As after Clone,
// the result has no memory attached, no shootdown callback, and a cold
// lookup cache; the caller attaches memory (AttachMem), then validates
// frame references (CheckFrames), then installs its callback. On any
// decoder error the receiver must be discarded.
func (as *AddressSpace) Decode(d *ckpt.Decoder) {
	as.mem = nil
	as.Shootdown = nil
	as.lastVMA = nil
	nv := d.Len(1 << 20)
	as.vmas = make([]*VMA, 0, nv)
	as.byID = make(map[uint32]*VMA, nv)
	var swapped uint64
	for i := 0; i < nv; i++ {
		v := &VMA{}
		v.decode(d, as)
		if d.Err() != nil {
			return
		}
		if _, dup := as.byID[v.id]; dup {
			d.Failf("vm: duplicate VMA id %d", v.id)
			return
		}
		if len(as.vmas) > 0 && as.vmas[len(as.vmas)-1].End() > v.Base {
			d.Failf("vm: VMA %q overlaps or is out of address order", v.Name)
			return
		}
		swapped += v.validate(d)
		as.vmas = append(as.vmas, v)
		as.byID[v.id] = v
	}
	as.nextBase = d.U64()
	as.nextID = d.U32()
	as.SimPageTables = d.Bool()
	as.PageTableBytes = d.U64()
	as.pml4 = memsys.Frame(d.U32())
	as.pdpt = memsys.Frame(d.U32())
	np := d.Len(d.Remaining() / 12)
	as.pds = make(map[uint64]memsys.Frame, np)
	prev := uint64(0)
	for i := 0; i < np; i++ {
		gb := d.U64()
		if i > 0 && gb <= prev {
			d.Failf("vm: page-directory keys out of order")
			return
		}
		prev = gb
		as.pds[gb] = memsys.Frame(d.U32())
	}
	as.SwappedOut = d.U64()
	as.ReclaimDemotions = d.U64()
	if d.Err() != nil {
		return
	}
	if swapped != as.SwappedOut {
		d.Failf("vm: %d pages on swap but SwappedOut says %d", swapped, as.SwappedOut)
		return
	}
	for _, v := range as.vmas {
		if v.Base >= as.nextBase {
			d.Failf("vm: VMA %q sits at or beyond the next mmap base", v.Name)
			return
		}
		if v.id >= as.nextID {
			d.Failf("vm: VMA %q id %d at or beyond the next id", v.Name, v.id)
			return
		}
	}
	as.validateTables(d)
}

// validateTables checks the simulated page-table bookkeeping of a
// decoded space: presence matches the SimPageTables mode and the byte
// counter conserves against the structures that exist.
func (as *AddressSpace) validateTables(d *ckpt.Decoder) {
	if d.Err() != nil {
		return
	}
	if !as.SimPageTables {
		ptf := 0
		for _, v := range as.vmas {
			ptf += len(v.ptFrames)
		}
		if ptf != 0 || as.pml4 != memsys.NoFrame || as.pdpt != memsys.NoFrame ||
			len(as.pds) != 0 || as.PageTableBytes != 0 {
			d.Failf("vm: page-table state present without SimPageTables")
		}
		return
	}
	pages := uint64(0)
	if as.pml4 != memsys.NoFrame {
		pages = 2 + uint64(len(as.pds))
	} else if as.pdpt != memsys.NoFrame || len(as.pds) != 0 {
		d.Failf("vm: paging structures present without a root table")
		return
	}
	for _, v := range as.vmas {
		if len(v.ptFrames) != v.Regions() {
			d.Failf("vm: VMA %q has %d PT pages for %d regions", v.Name, len(v.ptFrames), v.Regions())
			return
		}
		if len(v.ptFrames) > 0 && as.pml4 == memsys.NoFrame {
			d.Failf("vm: VMA %q has PT pages but no root table", v.Name)
			return
		}
		pages += uint64(len(v.ptFrames))
	}
	if want := pages * memsys.PageSize; want != as.PageTableBytes {
		d.Failf("vm: PageTableBytes %d, structures account for %d", as.PageTableBytes, want)
	}
}

// CheckFrames validates every physical frame number a decoded space
// refers to against the attached memory's frame count. It must run
// after AttachMem; the space's own Decode cannot do it because the
// physical node it is the first owner of decodes after it.
func (as *AddressSpace) CheckFrames(d *ckpt.Decoder) {
	if d.Err() != nil {
		return
	}
	total := as.mem.TotalPages()
	ok := func(f memsys.Frame) bool { return uint64(f) < total }
	okN := func(f memsys.Frame, n int) bool { return uint64(f)+uint64(n) <= total }
	if as.pml4 != memsys.NoFrame && !ok(as.pml4) {
		d.Failf("vm: pml4 frame out of range")
		return
	}
	if as.pdpt != memsys.NoFrame && !ok(as.pdpt) {
		d.Failf("vm: pdpt frame out of range")
		return
	}
	for _, gb := range sortedKeys(as.pds) {
		if !ok(as.pds[gb]) {
			d.Failf("vm: page-directory frame out of range")
			return
		}
	}
	for _, v := range as.vmas {
		for _, f := range v.ptFrames {
			if !ok(f) {
				d.Failf("vm: VMA %q PT frame out of range", v.Name)
				return
			}
		}
		for _, c := range v.chunks {
			if c == nil {
				continue
			}
			for cr := range c.huge {
				if hf := c.huge[cr]; hf != memsys.NoFrame {
					if hf%memsys.HugePages != 0 || !okN(hf, memsys.HugePages) {
						d.Failf("vm: VMA %q huge frame misaligned or out of range", v.Name)
						return
					}
				}
			}
			for _, pc := range c.pages {
				if pc == nil {
					continue
				}
				for _, f := range pc.base {
					if f != memsys.NoFrame && !ok(f) {
						d.Failf("vm: VMA %q base frame out of range", v.Name)
						return
					}
				}
			}
		}
	}
}
