package vm

import (
	"graphmem/internal/check"
	"graphmem/internal/memsys"
)

// Clone returns an independent deep copy of the address space: every
// live VMA with its per-page and per-region mapping arrays, advice,
// swap and heat state, plus the paging-structure bookkeeping. Three
// bindings deliberately do NOT carry over, because they point into the
// machine being forked rather than into the address space itself:
//
//   - mem is left nil: the caller clones the physical node separately
//     (its frame metadata needs an owner remap that requires this clone
//     to exist first) and then calls AttachMem;
//   - Shootdown is left nil: the forked machine installs its own
//     invalidation callback, exactly as machine.New does;
//   - lastVMA is left nil: it is a pure lookup accelerator, and FindVMA
//     returns identical results either way.
func (as *AddressSpace) Clone() *AddressSpace {
	c := &AddressSpace{
		mem:              nil,
		vmas:             make([]*VMA, 0, len(as.vmas)),
		byID:             make(map[uint32]*VMA, len(as.byID)),
		nextBase:         as.nextBase,
		nextID:           as.nextID,
		Shootdown:        nil,
		SimPageTables:    as.SimPageTables,
		PageTableBytes:   as.PageTableBytes,
		pml4:             as.pml4,
		pdpt:             as.pdpt,
		pds:              make(map[uint64]memsys.Frame, len(as.pds)),
		SwappedOut:       as.SwappedOut,
		ReclaimDemotions: as.ReclaimDemotions,
		lastVMA:          nil,
	}
	for key, f := range as.pds {
		c.pds[key] = f
	}
	for _, v := range as.vmas {
		nv := v.clone(c)
		c.vmas = append(c.vmas, nv)
		c.byID[nv.id] = nv
	}
	return c
}

// clone deep-copies one VMA, rebinding its space back-pointer to the
// cloned address space. VMA ids are preserved, which keeps the memsys
// owner cookies (vma id + page/region index) valid across the fork and
// lets Counterpart translate original-machine VMA pointers. The chunk
// directory copies sparsely: nil (untouched) spans stay nil, and each
// materialized chunk — advice, huge/4K mappings, present counts, heat,
// swap bitmaps — is duplicated so the fork shares no mutable state.
func (v *VMA) clone(space *AddressSpace) *VMA {
	chunks := make([]*vmaChunk, len(v.chunks))
	for i, c := range v.chunks {
		if c == nil {
			continue
		}
		nc := &vmaChunk{
			advice:    c.advice,
			huge:      c.huge,
			present4k: c.present4k,
			heat:      c.heat,
		}
		for j, pc := range c.pages {
			if pc != nil {
				npc := *pc
				nc.pages[j] = &npc
			}
		}
		chunks[i] = nc
	}
	return &VMA{
		Name:     v.Name,
		Base:     v.Base,
		Bytes:    v.Bytes,
		Pages:    v.Pages,
		StatsTag: v.StatsTag,
		id:       v.id,
		space:    space,
		chunks:   chunks,
		ptFrames: append([]memsys.Frame(nil), v.ptFrames...),
		dead:     v.dead,
	}
}

// AttachMem binds a cloned address space to its (cloned) physical node.
// Clone leaves the binding empty on purpose; attaching twice, or using
// the space before attaching, is a fork-layer bug.
func (as *AddressSpace) AttachMem(mem *memsys.Memory) {
	if as.mem != nil {
		panic(check.Failf("vm: AttachMem on an address space that already has memory"))
	}
	as.mem = mem
}

// Counterpart returns this space's VMA with the same identity as v,
// which belongs to the space this one was cloned from. Machine-layer
// structures that cache *VMA pointers (translation caches, registered
// stats arrays, workload images) use it to remap themselves after a
// fork. It panics when no counterpart exists: a VMA unmapped on one
// side of the fork cannot be remapped to the other.
func (as *AddressSpace) Counterpart(v *VMA) *VMA {
	nv := as.byID[v.id]
	if nv == nil {
		panic(check.Failf("vm: no counterpart for VMA %q (id %d) in cloned space", v.Name, v.id))
	}
	return nv
}
