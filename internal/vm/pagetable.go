package vm

import (
	"graphmem/internal/check"
	"graphmem/internal/memsys"
)

// Simulated page-table memory (optional fidelity mode).
//
// By default the machine charges a constant cost per radix level on a
// page walk. With AddressSpace.SimPageTables enabled (before any Mmap),
// the paging structures themselves live in simulated physical frames:
// walks fetch entries through the data cache hierarchy (so hot PTEs are
// cheap and cold ones cost DRAM), and page-table pages are unmovable
// kernel allocations that consume — and fragment — physical memory,
// exactly the §4.4 kind of non-movable litter.
//
// The layout mirrors x86-64 4-level paging: one PML4 page and one PDPT
// page per address space (user VAs here live within one 512GB span),
// one PD page per GB of VA touched by a VMA, and one PT page per 2MB
// region of a VMA.

// ensureRootTables allocates the PML4 and PDPT pages.
func (as *AddressSpace) ensureRootTables() {
	if as.pml4 != memsys.NoFrame {
		return
	}
	as.pml4 = as.allocPTFrame("pml4")
	as.pdpt = as.allocPTFrame("pdpt")
}

// allocPTFrame grabs one unmovable frame for paging structures.
func (as *AddressSpace) allocPTFrame(kind string) memsys.Frame {
	f := as.mem.Alloc(0, memsys.Unmovable, nil, 0)
	if f == memsys.NoFrame {
		panic(check.Failf("vm: out of memory allocating %s page table page", kind))
	}
	as.PageTableBytes += memsys.PageSize
	return f
}

// ensurePD returns the PD frame covering the GB containing va.
func (as *AddressSpace) ensurePD(va uint64) memsys.Frame {
	gb := va >> 30
	if f, ok := as.pds[gb]; ok {
		return f
	}
	f := as.allocPTFrame("pd")
	as.pds[gb] = f
	return f
}

// setupVMATables eagerly allocates the paging structures spanning a new
// VMA: its PT page per region plus the PD pages for its GB span. Eager
// allocation matches the simulator's "all data is mmapped before
// interference peaks" workloads and keeps fault paths allocation-free.
func (as *AddressSpace) setupVMATables(v *VMA) {
	if !as.SimPageTables {
		return
	}
	as.ensureRootTables()
	for gb := v.Base >> 30; gb <= (v.End()-1)>>30; gb++ {
		as.ensurePD(gb << 30)
	}
	v.ptFrames = make([]memsys.Frame, v.Regions())
	for r := range v.ptFrames {
		v.ptFrames[r] = as.allocPTFrame("pt")
	}
}

// teardownVMATables releases a VMA's PT pages (PD/PDPT/PML4 pages stay,
// as they do in a real kernel).
func (as *AddressSpace) teardownVMATables(v *VMA) {
	for _, f := range v.ptFrames {
		if f != memsys.NoFrame {
			as.mem.Free(f, 0)
			as.PageTableBytes -= memsys.PageSize
		}
	}
	v.ptFrames = nil
}

// WalkEntryAddrs returns the physical addresses of the paging-structure
// entries a hardware walk for va reads, deepest level first (PTE or
// PDE, then up to the PML4E). Valid only when SimPageTables is enabled
// and va is inside a VMA. n is 4 for 4KB mappings, 3 for 2MB.
func (as *AddressSpace) WalkEntryAddrs(va uint64, size PageSizeClass) (addrs [4]uint64, n int) {
	v := as.FindVMA(va)
	if v == nil || v.ptFrames == nil && size == Page4K {
		panic(check.Failf("vm: WalkEntryAddrs without simulated page tables"))
	}
	idx := func(f memsys.Frame, shift uint) uint64 {
		return uint64(f)<<memsys.PageShift + ((va>>shift)&511)*8
	}
	pd := as.pds[va>>30]
	if size == Page2M {
		addrs[0] = idx(pd, 21)
		addrs[1] = idx(as.pdpt, 30)
		addrs[2] = idx(as.pml4, 39)
		return addrs, 3
	}
	r := int((va - v.Base) >> 21)
	addrs[0] = idx(v.ptFrames[r], 12)
	addrs[1] = idx(pd, 21)
	addrs[2] = idx(as.pdpt, 30)
	addrs[3] = idx(as.pml4, 39)
	return addrs, 4
}
