// Package vm models a process's virtual address space: VMAs created by
// mmap, per-page and per-huge-region mappings into simulated physical
// memory, madvise-based huge page advice, and the bookkeeping needed to
// stay coherent when the physical layer compacts or reclaims frames.
//
// Policy (when to use a huge page, what to do on a fault) lives in
// package oskernel; this package is mechanism only.
package vm

import (
	"sort"

	"graphmem/internal/check"
	"graphmem/internal/memsys"
)

// RegionPages is the number of base pages per huge-page region (512).
const RegionPages = memsys.HugePages

// Advice is the huge page advice attached to a 2MB-aligned region of a
// VMA, mirroring madvise(2).
type Advice uint8

const (
	// AdviceDefault leaves the decision to the system-wide THP mode.
	AdviceDefault Advice = iota
	// AdviceHuge marks the region MADV_HUGEPAGE.
	AdviceHuge
	// AdviceNoHuge marks the region MADV_NOHUGEPAGE.
	AdviceNoHuge
)

// PageSizeClass identifies the translation granularity of a mapping.
type PageSizeClass uint8

const (
	Page4K PageSizeClass = iota
	Page2M
)

// Bytes returns the page size in bytes.
func (c PageSizeClass) Bytes() uint64 {
	if c == Page2M {
		return memsys.HugeSize
	}
	return memsys.PageSize
}

func (c PageSizeClass) String() string {
	if c == Page2M {
		return "2M"
	}
	return "4K"
}

// VMA is one mmap'd region. All fields are managed by AddressSpace.
type VMA struct {
	Name  string
	Base  uint64 // virtual base, always 2MB aligned
	Bytes uint64 // requested length in bytes
	Pages int    // length rounded up to whole 4KB pages

	// StatsTag is an opaque client label (the machine layer indexes
	// per-array counters with it). -1 means untracked.
	StatsTag int

	id     uint32
	space  *AddressSpace
	advice []Advice       // per region
	base   []memsys.Frame // per page; NoFrame when not 4K-mapped
	huge   []memsys.Frame // per region; NoFrame when not huge-mapped
	swap   []bool         // per page: contents are on the swap device

	// present4k[r] counts 4K-mapped pages in region r, maintained so
	// khugepaged's scan is O(regions) instead of O(pages).
	present4k []uint16

	// ptFrames holds the leaf page-table page per region when the
	// address space simulates page-table memory.
	ptFrames []memsys.Frame

	// Heat counts accesses per region, maintained by the machine layer
	// on every access. Heat-guided promotion policies (HawkEye-style)
	// read it; the plain Linux policy ignores it.
	Heat []uint64

	dead bool
}

// Regions returns the number of 2MB regions spanned by the VMA
// (including a trailing partial region, which is never huge-eligible).
func (v *VMA) Regions() int { return (v.Pages + RegionPages - 1) / RegionPages }

// FullRegions returns the number of complete 2MB regions, i.e. the
// huge-page-eligible span.
func (v *VMA) FullRegions() int { return v.Pages / RegionPages }

// End returns the first virtual address past the VMA.
func (v *VMA) End() uint64 { return v.Base + uint64(v.Pages)*memsys.PageSize }

// Madvise applies huge page advice to [offset, offset+length) within the
// VMA. Offsets are rounded outward to region boundaries, as the kernel
// does for MADV_HUGEPAGE eligibility.
func (v *VMA) Madvise(offset, length uint64, adv Advice) {
	if length == 0 {
		return
	}
	first := int(offset / memsys.HugeSize)
	last := int((offset + length - 1) / memsys.HugeSize)
	for r := first; r <= last && r < len(v.advice); r++ {
		v.advice[r] = adv
	}
}

// AdviceAt returns the advice for region r.
func (v *VMA) AdviceAt(r int) Advice { return v.advice[r] }

// HugeMapped reports whether region r is backed by a huge page.
func (v *VMA) HugeMapped(r int) bool { return v.huge[r] != memsys.NoFrame }

// Present4KInRegion returns how many base pages of region r are mapped.
func (v *VMA) Present4KInRegion(r int) int { return int(v.present4k[r]) }

// MappedBytes returns the number of bytes currently backed by physical
// memory, and the subset backed by huge pages.
func (v *VMA) MappedBytes() (total, huge uint64) {
	for r := range v.huge {
		if v.huge[r] != memsys.NoFrame {
			huge += memsys.HugeSize
		}
	}
	total = huge
	for _, c := range v.present4k {
		total += uint64(c) * memsys.PageSize
	}
	return total, huge
}

// PageVA returns the virtual address of page index p.
func (v *VMA) PageVA(p int) uint64 { return v.Base + uint64(p)*memsys.PageSize }

// cookie encoding for memsys owner callbacks: vma id in the high 31
// bits below the huge flag, page-or-region index in the low 32.
const cookieHuge = uint64(1) << 63

func (v *VMA) pageCookie(p int) uint64 {
	return uint64(v.id)<<32 | uint64(uint32(p))
}

func (v *VMA) regionCookie(r int) uint64 {
	return cookieHuge | uint64(v.id)<<32 | uint64(uint32(r))
}

// Translation is the result of a successful page table lookup.
type Translation struct {
	Frame memsys.Frame // frame of the 4K page, or first frame of the huge page
	Size  PageSizeClass
	// BaseVA is the virtual address of the start of the translated
	// page (4KB- or 2MB-aligned), used for TLB tag insertion.
	BaseVA uint64
	// VMA is the region containing the address, returned so callers
	// can attribute statistics without a second lookup.
	VMA *VMA
}

// FaultInfo describes a page fault: the VMA and page index touched, and
// whether the page's contents are on swap.
type FaultInfo struct {
	VMA     *VMA
	Page    int // page index within the VMA
	Swapped bool
}

// ShootdownFunc is invoked whenever a virtual→physical mapping changes
// or disappears, so TLBs can invalidate. va is page-aligned for the
// given size class.
type ShootdownFunc func(va uint64, size PageSizeClass)

// AddressSpace is one simulated process address space.
type AddressSpace struct {
	mem  *memsys.Memory
	vmas []*VMA // sorted by Base, excluding dead
	byID map[uint32]*VMA

	nextBase uint64
	nextID   uint32

	// Shootdown, if set, is called on every unmap/remap event.
	Shootdown ShootdownFunc

	// SimPageTables turns on simulated page-table memory (see
	// pagetable.go). Must be set before the first Mmap.
	SimPageTables bool

	// PageTableBytes is the current paging-structure footprint when
	// SimPageTables is on.
	PageTableBytes uint64

	pml4 memsys.Frame
	pdpt memsys.Frame
	pds  map[uint64]memsys.Frame

	// SwappedOut counts pages currently on the swap device.
	SwappedOut uint64

	// ReclaimDemotions counts huge mappings split by reclaim pressure
	// (the split-THP path of FrameReclaimed).
	ReclaimDemotions uint64

	lastVMA *VMA // single-entry VMA lookup cache
}

// NewAddressSpace creates an empty address space backed by mem.
func NewAddressSpace(mem *memsys.Memory) *AddressSpace {
	return &AddressSpace{
		mem:      mem,
		byID:     make(map[uint32]*VMA),
		nextBase: 0x0000_2000_0000, // arbitrary user-space base, 2MB aligned
		nextID:   1,
		pml4:     memsys.NoFrame,
		pdpt:     memsys.NoFrame,
		pds:      make(map[uint64]memsys.Frame),
	}
}

// Mem exposes the backing physical memory (for policy layers).
func (as *AddressSpace) Mem() *memsys.Memory { return as.mem }

// Mmap creates a new anonymous VMA of the given size. The mapping is
// demand-paged: no physical memory is allocated until pages fault in.
func (as *AddressSpace) Mmap(name string, bytes uint64) *VMA {
	if bytes == 0 {
		panic(check.Failf("vm: zero-length mmap"))
	}
	pages := int((bytes + memsys.PageSize - 1) / memsys.PageSize)
	regions := (pages + RegionPages - 1) / RegionPages
	v := &VMA{
		Name:      name,
		Base:      as.nextBase,
		Bytes:     bytes,
		Pages:     pages,
		StatsTag:  -1,
		id:        as.nextID,
		space:     as,
		advice:    make([]Advice, regions),
		base:      make([]memsys.Frame, pages),
		huge:      make([]memsys.Frame, regions),
		swap:      make([]bool, pages),
		present4k: make([]uint16, regions),
		Heat:      make([]uint64, regions),
	}
	for i := range v.base {
		v.base[i] = memsys.NoFrame
	}
	for i := range v.huge {
		v.huge[i] = memsys.NoFrame
	}
	as.nextID++
	// Leave a guard gap and keep every VMA 2MB aligned.
	span := (uint64(regions) + 1) * memsys.HugeSize
	as.nextBase += span
	as.vmas = append(as.vmas, v)
	as.byID[v.id] = v
	as.setupVMATables(v)
	return v
}

// Munmap destroys a VMA, freeing all backing frames.
func (as *AddressSpace) Munmap(v *VMA) {
	if v.dead {
		panic(check.Failf("vm: munmap of dead VMA"))
	}
	for r, hf := range v.huge {
		if hf != memsys.NoFrame {
			as.mem.Free(hf, memsys.HugeOrder)
			v.huge[r] = memsys.NoFrame
			as.shoot(v.Base+uint64(r)*memsys.HugeSize, Page2M)
		}
	}
	for p, f := range v.base {
		if f != memsys.NoFrame {
			as.mem.Free(f, 0)
			v.base[p] = memsys.NoFrame
			as.shoot(v.PageVA(p), Page4K)
		}
		if v.swap[p] {
			v.swap[p] = false
			as.SwappedOut--
		}
	}
	for r := range v.present4k {
		v.present4k[r] = 0
	}
	as.teardownVMATables(v)
	v.dead = true
	delete(as.byID, v.id)
	for i, u := range as.vmas {
		if u == v {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			break
		}
	}
	if as.lastVMA == v {
		as.lastVMA = nil
	}
}

func (as *AddressSpace) shoot(va uint64, size PageSizeClass) {
	if as.Shootdown != nil {
		as.Shootdown(va, size)
	}
}

// FindVMA returns the VMA containing va, or nil.
func (as *AddressSpace) FindVMA(va uint64) *VMA {
	if v := as.lastVMA; v != nil && va >= v.Base && va < v.End() {
		return v
	}
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End() > va })
	if i < len(as.vmas) && va >= as.vmas[i].Base {
		as.lastVMA = as.vmas[i]
		return as.vmas[i]
	}
	return nil
}

// VMAs returns the live VMAs in address order (shared slice; do not
// mutate).
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Translate walks the page table for va. ok=false with a non-nil fault
// means the page is unmapped or swapped (a fault must be handled);
// ok=false with nil fault means va is not in any VMA (a segfault, which
// the simulator treats as a programming error).
func (as *AddressSpace) Translate(va uint64) (Translation, *FaultInfo, bool) {
	v := as.FindVMA(va)
	if v == nil {
		return Translation{}, nil, false
	}
	p := int((va - v.Base) / memsys.PageSize)
	r := p / RegionPages
	if hf := v.huge[r]; hf != memsys.NoFrame {
		return Translation{
			Frame:  hf,
			Size:   Page2M,
			BaseVA: v.Base + uint64(r)*memsys.HugeSize,
			VMA:    v,
		}, nil, true
	}
	if f := v.base[p]; f != memsys.NoFrame {
		return Translation{Frame: f, Size: Page4K, BaseVA: v.PageVA(p), VMA: v}, nil, true
	}
	return Translation{}, &FaultInfo{VMA: v, Page: p, Swapped: v.swap[p]}, false
}

// --- mapping mutators (used by the kernel policy layer) ---------------

// MapBase installs frame f as the 4K mapping of page p in v. The frame
// must have been allocated by the caller; ownership bookkeeping is wired
// here.
func (as *AddressSpace) MapBase(v *VMA, p int, f memsys.Frame) {
	if v.base[p] != memsys.NoFrame || v.huge[p/RegionPages] != memsys.NoFrame {
		panic(check.Failf("vm: MapBase over existing mapping %s page %d", v.Name, p))
	}
	if v.swap[p] {
		v.swap[p] = false
		as.SwappedOut--
	}
	v.base[p] = f
	v.present4k[p/RegionPages]++
	as.mem.SetOwner(f, as, v.pageCookie(p))
}

// MapHuge installs huge frame hf as the mapping of region r in v. Any
// existing 4K mappings within the region must have been removed first.
func (as *AddressSpace) MapHuge(v *VMA, r int, hf memsys.Frame) {
	if v.huge[r] != memsys.NoFrame {
		panic(check.Failf("vm: MapHuge over existing huge mapping"))
	}
	if v.present4k[r] != 0 {
		panic(check.Failf("vm: MapHuge with 4K pages still present in region"))
	}
	lo, hi := r*RegionPages, (r+1)*RegionPages
	for p := lo; p < hi && p < v.Pages; p++ {
		if v.swap[p] {
			v.swap[p] = false
			as.SwappedOut--
		}
	}
	v.huge[r] = hf
	as.mem.SetOwner(hf, as, v.regionCookie(r))
}

// UnmapBase removes the 4K mapping of page p, returning the frame to the
// caller (NOT freed). Used by promotion.
func (as *AddressSpace) UnmapBase(v *VMA, p int) memsys.Frame {
	f := v.base[p]
	if f == memsys.NoFrame {
		panic(check.Failf("vm: UnmapBase of unmapped page"))
	}
	v.base[p] = memsys.NoFrame
	v.present4k[p/RegionPages]--
	as.shoot(v.PageVA(p), Page4K)
	return f
}

// DemoteHuge splits the huge mapping of region r into 512 base-page
// mappings over the same frames. The physical block is marked split so
// individual pages become reclaimable/movable.
func (as *AddressSpace) DemoteHuge(v *VMA, r int) {
	hf := v.huge[r]
	if hf == memsys.NoFrame {
		panic(check.Failf("vm: DemoteHuge of non-huge region"))
	}
	v.huge[r] = memsys.NoFrame
	as.mem.SplitAllocated(hf, memsys.HugeOrder)
	as.shoot(v.Base+uint64(r)*memsys.HugeSize, Page2M)
	lo := r * RegionPages
	for i := 0; i < RegionPages; i++ {
		p := lo + i
		if p >= v.Pages {
			// Tail frames beyond the VMA (possible only if the VMA
			// length is not region-aligned, which MapHuge forbids for
			// partial regions) — free them defensively.
			as.mem.Free(hf+memsys.Frame(i), 0)
			continue
		}
		v.base[p] = hf + memsys.Frame(i)
		v.present4k[r]++
		as.mem.SetOwner(hf+memsys.Frame(i), as, v.pageCookie(p))
	}
}

// --- memsys.Owner implementation ---------------------------------------

// FrameMoved redirects the mapping that used old to new (compaction).
func (as *AddressSpace) FrameMoved(old, new memsys.Frame, cookie uint64) {
	if cookie&cookieHuge != 0 {
		panic(check.Failf("vm: compaction moved a huge page constituent"))
	}
	v := as.byID[uint32(cookie>>32)]
	if v == nil {
		panic(check.Failf("vm: FrameMoved for unknown VMA"))
	}
	p := int(uint32(cookie))
	if v.base[p] != old {
		panic(check.Failf("vm: FrameMoved mapping mismatch"))
	}
	v.base[p] = new
	as.mem.SetOwner(new, as, cookie)
	as.shoot(v.PageVA(p), Page4K)
}

// FrameReclaimed swaps out the page that used f (reclaim). The contents
// move to the swap device; a later access faults and swaps in. When the
// cookie names a huge mapping, the region is demoted in place — Linux's
// split-THP-under-reclaim — and the eviction itself is refused; the
// freshly-split base pages become ordinary reclaim candidates.
func (as *AddressSpace) FrameReclaimed(f memsys.Frame, cookie uint64) bool {
	if cookie&cookieHuge != 0 {
		v := as.byID[uint32(cookie>>32)&0x7FFFFFFF]
		if v == nil {
			return false
		}
		r := int(uint32(cookie))
		if r >= len(v.huge) || v.huge[r] != f {
			return false // stale
		}
		as.DemoteHuge(v, r)
		as.ReclaimDemotions++
		return false
	}
	v := as.byID[uint32(cookie>>32)]
	if v == nil {
		return false
	}
	p := int(uint32(cookie))
	if v.base[p] != f {
		return false
	}
	v.base[p] = memsys.NoFrame
	v.present4k[p/RegionPages]--
	v.swap[p] = true
	as.SwappedOut++
	as.shoot(v.PageVA(p), Page4K)
	return true
}

var _ memsys.Owner = (*AddressSpace)(nil)
