// Package vm models a process's virtual address space: VMAs created by
// mmap, per-page and per-huge-region mappings into simulated physical
// memory, madvise-based huge page advice, and the bookkeeping needed to
// stay coherent when the physical layer compacts or reclaims frames.
//
// Policy (when to use a huge page, what to do on a fault) lives in
// package oskernel; this package is mechanism only.
package vm

import (
	"sort"

	"graphmem/internal/check"
	"graphmem/internal/memsys"
)

// RegionPages is the number of base pages per huge-page region (512).
const RegionPages = memsys.HugePages

// Advice is the huge page advice attached to a 2MB-aligned region of a
// VMA, mirroring madvise(2).
type Advice uint8

const (
	// AdviceDefault leaves the decision to the system-wide THP mode.
	AdviceDefault Advice = iota
	// AdviceHuge marks the region MADV_HUGEPAGE.
	AdviceHuge
	// AdviceNoHuge marks the region MADV_NOHUGEPAGE.
	AdviceNoHuge
)

// PageSizeClass identifies the translation granularity of a mapping.
type PageSizeClass uint8

const (
	Page4K PageSizeClass = iota
	Page2M
)

// Bytes returns the page size in bytes.
func (c PageSizeClass) Bytes() uint64 {
	if c == Page2M {
		return memsys.HugeSize
	}
	return memsys.PageSize
}

func (c PageSizeClass) String() string {
	if c == Page2M {
		return "2M"
	}
	return "4K"
}

// Sparse VMA state. A paper-geometry VMA spans hundreds of GB, but a
// workload touches only part of it, and regions that went huge need no
// per-page state at all. Per-region and per-page bookkeeping therefore
// live in lazily-materialized chunks: a nil chunk is a span no mapping,
// advice, or swap entry ever touched, and costs one directory pointer.
const (
	// chunkShift/chunkRegions: regions per chunk (512 = 1 GB of VA).
	chunkShift   = 9
	chunkRegions = 1 << chunkShift
	chunkMask    = chunkRegions - 1
)

// vmaChunk holds the per-region state for one GB-aligned group of 512
// regions. Materialized on the first map/advise touching the group.
type vmaChunk struct {
	advice    [chunkRegions]Advice
	huge      [chunkRegions]memsys.Frame // NoFrame when not huge-mapped
	present4k [chunkRegions]uint16       // live 4K mappings per region
	heat      [chunkRegions]uint64       // accesses per region (see AddHeat)
	pages     [chunkRegions]*pageChunk   // per-page state; nil when none
}

// pageChunk holds the per-page state for one region: its 4K mappings
// and a swap bitmap. Materialized on the first 4K map of the region and
// dropped when the region goes huge (huge mappings carry no page state),
// so an all-huge steady state costs ~0 bytes per page.
type pageChunk struct {
	base [RegionPages]memsys.Frame // NoFrame when not 4K-mapped
	swap [RegionPages / 64]uint64  // bitmap: contents are on the swap device
}

func (pc *pageChunk) swapped(i int) bool { return pc.swap[i>>6]&(1<<(i&63)) != 0 }
func (pc *pageChunk) setSwap(i int)      { pc.swap[i>>6] |= 1 << (i & 63) }
func (pc *pageChunk) clearSwap(i int)    { pc.swap[i>>6] &^= 1 << (i & 63) }

// VMA is one mmap'd region. All fields are managed by AddressSpace.
type VMA struct {
	Name  string
	Base  uint64 // virtual base, always 2MB aligned
	Bytes uint64 // requested length in bytes
	Pages int    // length rounded up to whole 4KB pages

	// StatsTag is an opaque client label (the machine layer indexes
	// per-array counters with it). -1 means untracked.
	StatsTag int

	id    uint32
	space *AddressSpace

	// chunks is the sparse per-region/per-page state directory, one
	// entry per GB of VA; nil entries are untouched spans.
	chunks []*vmaChunk

	// ptFrames holds the leaf page-table page per region when the
	// address space simulates page-table memory. Deliberately eager:
	// setupVMATables allocates the whole span at mmap time (see
	// pagetable.go), so fault paths stay allocation-free.
	ptFrames []memsys.Frame

	dead bool
}

// chunkFor returns region r's chunk, or nil if the span is untouched.
func (v *VMA) chunkFor(r int) *vmaChunk { return v.chunks[r>>chunkShift] }

// ensureChunk materializes (if needed) and returns region r's chunk.
func (v *VMA) ensureChunk(r int) *vmaChunk {
	ci := r >> chunkShift
	c := v.chunks[ci]
	if c == nil {
		c = &vmaChunk{}
		for i := range c.huge {
			c.huge[i] = memsys.NoFrame
		}
		v.chunks[ci] = c
	}
	return c
}

// ensurePages materializes (if needed) and returns the page chunk for
// region r within chunk c.
func (v *VMA) ensurePages(c *vmaChunk, r int) *pageChunk {
	pc := c.pages[r&chunkMask]
	if pc == nil {
		pc = &pageChunk{}
		for i := range pc.base {
			pc.base[i] = memsys.NoFrame
		}
		c.pages[r&chunkMask] = pc
	}
	return pc
}

// Regions returns the number of 2MB regions spanned by the VMA
// (including a trailing partial region, which is never huge-eligible).
func (v *VMA) Regions() int { return (v.Pages + RegionPages - 1) / RegionPages }

// FullRegions returns the number of complete 2MB regions, i.e. the
// huge-page-eligible span.
func (v *VMA) FullRegions() int { return v.Pages / RegionPages }

// End returns the first virtual address past the VMA.
func (v *VMA) End() uint64 { return v.Base + uint64(v.Pages)*memsys.PageSize }

// Madvise applies huge page advice to [offset, offset+length) within the
// VMA. Offsets are rounded outward to region boundaries, as the kernel
// does for MADV_HUGEPAGE eligibility.
func (v *VMA) Madvise(offset, length uint64, adv Advice) {
	if length == 0 {
		return
	}
	first := int(offset / memsys.HugeSize)
	last := int((offset + length - 1) / memsys.HugeSize)
	for r := first; r <= last && r < v.Regions(); r++ {
		v.ensureChunk(r).advice[r&chunkMask] = adv
	}
}

// AdviceAt returns the advice for region r.
func (v *VMA) AdviceAt(r int) Advice {
	if c := v.chunkFor(r); c != nil {
		return c.advice[r&chunkMask]
	}
	return AdviceDefault
}

// HugeMapped reports whether region r is backed by a huge page.
func (v *VMA) HugeMapped(r int) bool {
	c := v.chunkFor(r)
	return c != nil && c.huge[r&chunkMask] != memsys.NoFrame
}

// Present4KInRegion returns how many base pages of region r are mapped.
func (v *VMA) Present4KInRegion(r int) int {
	if c := v.chunkFor(r); c != nil {
		return int(c.present4k[r&chunkMask])
	}
	return 0
}

// AddHeat charges n accesses to region r. The machine layer calls this
// on every simulated access, so it must stay allocation-free: the
// caller's address necessarily hit a live mapping, whose installation
// materialized the chunk.
func (v *VMA) AddHeat(r int, n uint64) {
	v.chunks[r>>chunkShift].heat[r&chunkMask] += n
}

// HeatAt returns the access count of region r. Untouched spans are cold.
func (v *VMA) HeatAt(r int) uint64 {
	if c := v.chunkFor(r); c != nil {
		return c.heat[r&chunkMask]
	}
	return 0
}

// HeatCopy returns a dense copy of the per-region heat counters
// (diagnostics and tests; not a hot path).
func (v *VMA) HeatCopy() []uint64 {
	out := make([]uint64, v.Regions())
	for r := range out {
		out[r] = v.HeatAt(r)
	}
	return out
}

// MappedBytes returns the number of bytes currently backed by physical
// memory, and the subset backed by huge pages.
func (v *VMA) MappedBytes() (total, huge uint64) {
	var p4k uint64
	for _, c := range v.chunks {
		if c == nil {
			continue
		}
		for i := range c.huge {
			if c.huge[i] != memsys.NoFrame {
				huge += memsys.HugeSize
			}
			p4k += uint64(c.present4k[i])
		}
	}
	return huge + p4k*memsys.PageSize, huge
}

// PageVA returns the virtual address of page index p.
func (v *VMA) PageVA(p int) uint64 { return v.Base + uint64(p)*memsys.PageSize }

// cookie encoding for memsys owner callbacks. The packed frame word
// gives owners memsys.CookieLimit (48 bits) of mapping id; vm spends it
// as huge flag · 19-bit VMA id · 28-bit page-or-region index, which
// bounds a single VMA at 1 TB (2^28 pages) and a process at ~512K VMAs
// — both far beyond paper geometry. Mmap enforces the bounds loudly.
const (
	cookieIndexBits = 28
	cookieIDBits    = 19
	cookieIDShift   = cookieIndexBits
	cookieHuge      = uint64(1) << (cookieIDShift + cookieIDBits)
	cookieIndexMask = uint64(1)<<cookieIndexBits - 1
	cookieIDMask    = uint64(1)<<cookieIDBits - 1
)

func (v *VMA) pageCookie(p int) uint64 {
	return uint64(v.id)<<cookieIDShift | uint64(p)
}

func (v *VMA) regionCookie(r int) uint64 {
	return cookieHuge | uint64(v.id)<<cookieIDShift | uint64(r)
}

// Translation is the result of a successful page table lookup.
type Translation struct {
	Frame memsys.Frame // frame of the 4K page, or first frame of the huge page
	Size  PageSizeClass
	// BaseVA is the virtual address of the start of the translated
	// page (4KB- or 2MB-aligned), used for TLB tag insertion.
	BaseVA uint64
	// VMA is the region containing the address, returned so callers
	// can attribute statistics without a second lookup.
	VMA *VMA
}

// FaultInfo describes a page fault: the VMA and page index touched, and
// whether the page's contents are on swap.
type FaultInfo struct {
	VMA     *VMA
	Page    int // page index within the VMA
	Swapped bool
}

// ShootdownFunc is invoked whenever a virtual→physical mapping changes
// or disappears, so TLBs can invalidate. va is page-aligned for the
// given size class.
type ShootdownFunc func(va uint64, size PageSizeClass)

// AddressSpace is one simulated process address space.
type AddressSpace struct {
	mem  *memsys.Memory
	vmas []*VMA // sorted by Base, excluding dead
	byID map[uint32]*VMA

	nextBase uint64
	nextID   uint32

	// Shootdown, if set, is called on every unmap/remap event.
	Shootdown ShootdownFunc

	// SimPageTables turns on simulated page-table memory (see
	// pagetable.go). Must be set before the first Mmap.
	SimPageTables bool

	// PageTableBytes is the current paging-structure footprint when
	// SimPageTables is on.
	PageTableBytes uint64

	pml4 memsys.Frame
	pdpt memsys.Frame
	pds  map[uint64]memsys.Frame

	// SwappedOut counts pages currently on the swap device.
	SwappedOut uint64

	// ReclaimDemotions counts huge mappings split by reclaim pressure
	// (the split-THP path of FrameReclaimed).
	ReclaimDemotions uint64

	lastVMA *VMA // single-entry VMA lookup cache
}

// NewAddressSpace creates an empty address space backed by mem.
func NewAddressSpace(mem *memsys.Memory) *AddressSpace {
	return &AddressSpace{
		mem:      mem,
		byID:     make(map[uint32]*VMA),
		nextBase: 0x0000_2000_0000, // arbitrary user-space base, 2MB aligned
		nextID:   1,
		pml4:     memsys.NoFrame,
		pdpt:     memsys.NoFrame,
		pds:      make(map[uint64]memsys.Frame),
	}
}

// Mem exposes the backing physical memory (for policy layers).
func (as *AddressSpace) Mem() *memsys.Memory { return as.mem }

// Mmap creates a new anonymous VMA of the given size. The mapping is
// demand-paged: no physical memory is allocated until pages fault in,
// and no per-page simulator state is allocated until then either — a
// fresh paper-geometry VMA costs one directory pointer per GB.
func (as *AddressSpace) Mmap(name string, bytes uint64) *VMA {
	if bytes == 0 {
		panic(check.Failf("vm: zero-length mmap"))
	}
	pages := int((bytes + memsys.PageSize - 1) / memsys.PageSize)
	if uint64(pages) > cookieIndexMask+1 {
		panic(check.Failf("vm: mmap of %d pages exceeds the %d-bit cookie index budget", pages, cookieIndexBits))
	}
	if uint64(as.nextID) > cookieIDMask {
		panic(check.Failf("vm: VMA id space exhausted (%d-bit cookie id budget)", cookieIDBits))
	}
	regions := (pages + RegionPages - 1) / RegionPages
	v := &VMA{
		Name:     name,
		Base:     as.nextBase,
		Bytes:    bytes,
		Pages:    pages,
		StatsTag: -1,
		id:       as.nextID,
		space:    as,
		chunks:   make([]*vmaChunk, (regions+chunkRegions-1)>>chunkShift),
	}
	as.nextID++
	// Leave a guard gap and keep every VMA 2MB aligned.
	span := (uint64(regions) + 1) * memsys.HugeSize
	as.nextBase += span
	as.vmas = append(as.vmas, v)
	as.byID[v.id] = v
	as.setupVMATables(v)
	return v
}

// Munmap destroys a VMA, freeing all backing frames.
func (as *AddressSpace) Munmap(v *VMA) {
	if v.dead {
		panic(check.Failf("vm: munmap of dead VMA"))
	}
	for ci, c := range v.chunks {
		if c == nil {
			continue
		}
		for i := range c.huge {
			if hf := c.huge[i]; hf != memsys.NoFrame {
				as.mem.Free(hf, memsys.HugeOrder)
				c.huge[i] = memsys.NoFrame
				r := ci<<chunkShift + i
				as.shoot(v.Base+uint64(r)*memsys.HugeSize, Page2M)
			}
		}
	}
	for ci, c := range v.chunks {
		if c == nil {
			continue
		}
		for i, pc := range c.pages {
			if pc == nil {
				continue
			}
			lo := (ci<<chunkShift + i) * RegionPages
			for j := range pc.base {
				if f := pc.base[j]; f != memsys.NoFrame {
					as.mem.Free(f, 0)
					pc.base[j] = memsys.NoFrame
					as.shoot(v.PageVA(lo+j), Page4K)
				}
				if pc.swapped(j) {
					pc.clearSwap(j)
					as.SwappedOut--
				}
			}
			c.pages[i] = nil
		}
		for i := range c.present4k {
			c.present4k[i] = 0
		}
		v.chunks[ci] = nil
	}
	as.teardownVMATables(v)
	v.dead = true
	delete(as.byID, v.id)
	for i, u := range as.vmas {
		if u == v {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			break
		}
	}
	if as.lastVMA == v {
		as.lastVMA = nil
	}
}

func (as *AddressSpace) shoot(va uint64, size PageSizeClass) {
	if as.Shootdown != nil {
		as.Shootdown(va, size)
	}
}

// FindVMA returns the VMA containing va, or nil.
func (as *AddressSpace) FindVMA(va uint64) *VMA {
	if v := as.lastVMA; v != nil && va >= v.Base && va < v.End() {
		return v
	}
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End() > va })
	if i < len(as.vmas) && va >= as.vmas[i].Base {
		as.lastVMA = as.vmas[i]
		return as.vmas[i]
	}
	return nil
}

// VMAs returns the live VMAs in address order (shared slice; do not
// mutate).
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Translate walks the page table for va. ok=false with a non-nil fault
// means the page is unmapped or swapped (a fault must be handled);
// ok=false with nil fault means va is not in any VMA (a segfault, which
// the simulator treats as a programming error).
func (as *AddressSpace) Translate(va uint64) (Translation, *FaultInfo, bool) {
	v := as.FindVMA(va)
	if v == nil {
		return Translation{}, nil, false
	}
	p := int((va - v.Base) / memsys.PageSize)
	r := p / RegionPages
	c := v.chunkFor(r)
	if c == nil {
		return Translation{}, &FaultInfo{VMA: v, Page: p}, false
	}
	cr := r & chunkMask
	if hf := c.huge[cr]; hf != memsys.NoFrame {
		return Translation{
			Frame:  hf,
			Size:   Page2M,
			BaseVA: v.Base + uint64(r)*memsys.HugeSize,
			VMA:    v,
		}, nil, true
	}
	pc := c.pages[cr]
	if pc == nil {
		return Translation{}, &FaultInfo{VMA: v, Page: p}, false
	}
	pi := p & (RegionPages - 1)
	if f := pc.base[pi]; f != memsys.NoFrame {
		return Translation{Frame: f, Size: Page4K, BaseVA: v.PageVA(p), VMA: v}, nil, true
	}
	return Translation{}, &FaultInfo{VMA: v, Page: p, Swapped: pc.swapped(pi)}, false
}

// --- mapping mutators (used by the kernel policy layer) ---------------

// MapBase installs frame f as the 4K mapping of page p in v. The frame
// must have been allocated by the caller; ownership bookkeeping is wired
// here.
func (as *AddressSpace) MapBase(v *VMA, p int, f memsys.Frame) {
	r := p / RegionPages
	c := v.ensureChunk(r)
	cr := r & chunkMask
	pc := v.ensurePages(c, r)
	pi := p & (RegionPages - 1)
	if pc.base[pi] != memsys.NoFrame || c.huge[cr] != memsys.NoFrame {
		panic(check.Failf("vm: MapBase over existing mapping %s page %d", v.Name, p))
	}
	if pc.swapped(pi) {
		pc.clearSwap(pi)
		as.SwappedOut--
	}
	pc.base[pi] = f
	c.present4k[cr]++
	as.mem.SetOwner(f, as, v.pageCookie(p))
}

// MapHuge installs huge frame hf as the mapping of region r in v. Any
// existing 4K mappings within the region must have been removed first.
func (as *AddressSpace) MapHuge(v *VMA, r int, hf memsys.Frame) {
	c := v.ensureChunk(r)
	cr := r & chunkMask
	if c.huge[cr] != memsys.NoFrame {
		panic(check.Failf("vm: MapHuge over existing huge mapping"))
	}
	if c.present4k[cr] != 0 {
		panic(check.Failf("vm: MapHuge with 4K pages still present in region"))
	}
	if pc := c.pages[cr]; pc != nil {
		// The region had 4K history: drop its swap copies (the huge
		// mapping supersedes them) and release the per-page state —
		// huge-mapped regions carry none.
		lo := r * RegionPages
		for i := 0; i < RegionPages && lo+i < v.Pages; i++ {
			if pc.swapped(i) {
				pc.clearSwap(i)
				as.SwappedOut--
			}
		}
		c.pages[cr] = nil
	}
	c.huge[cr] = hf
	as.mem.SetOwner(hf, as, v.regionCookie(r))
}

// UnmapBase removes the 4K mapping of page p, returning the frame to the
// caller (NOT freed). Used by promotion.
func (as *AddressSpace) UnmapBase(v *VMA, p int) memsys.Frame {
	r := p / RegionPages
	c := v.chunkFor(r)
	var pc *pageChunk
	if c != nil {
		pc = c.pages[r&chunkMask]
	}
	pi := p & (RegionPages - 1)
	if pc == nil || pc.base[pi] == memsys.NoFrame {
		panic(check.Failf("vm: UnmapBase of unmapped page"))
	}
	f := pc.base[pi]
	pc.base[pi] = memsys.NoFrame
	c.present4k[r&chunkMask]--
	as.shoot(v.PageVA(p), Page4K)
	return f
}

// DemoteHuge splits the huge mapping of region r into 512 base-page
// mappings over the same frames. The physical block is marked split so
// individual pages become reclaimable/movable.
func (as *AddressSpace) DemoteHuge(v *VMA, r int) {
	c := v.chunkFor(r)
	cr := r & chunkMask
	if c == nil || c.huge[cr] == memsys.NoFrame {
		panic(check.Failf("vm: DemoteHuge of non-huge region"))
	}
	hf := c.huge[cr]
	c.huge[cr] = memsys.NoFrame
	as.mem.SplitAllocated(hf, memsys.HugeOrder)
	as.shoot(v.Base+uint64(r)*memsys.HugeSize, Page2M)
	pc := v.ensurePages(c, r)
	lo := r * RegionPages
	for i := 0; i < RegionPages; i++ {
		p := lo + i
		if p >= v.Pages {
			// Tail frames beyond the VMA (possible only if the VMA
			// length is not region-aligned, which MapHuge forbids for
			// partial regions) — free them defensively.
			as.mem.Free(hf+memsys.Frame(i), 0)
			continue
		}
		pc.base[i] = hf + memsys.Frame(i)
		c.present4k[cr]++
		as.mem.SetOwner(hf+memsys.Frame(i), as, v.pageCookie(p))
	}
}

// --- memsys.Owner implementation ---------------------------------------

// FrameMoved redirects the mapping that used old to new (compaction).
func (as *AddressSpace) FrameMoved(old, new memsys.Frame, cookie uint64) {
	if cookie&cookieHuge != 0 {
		panic(check.Failf("vm: compaction moved a huge page constituent"))
	}
	v := as.byID[uint32(cookie>>cookieIDShift)&uint32(cookieIDMask)]
	if v == nil {
		panic(check.Failf("vm: FrameMoved for unknown VMA"))
	}
	p := int(cookie & cookieIndexMask)
	r := p / RegionPages
	c := v.chunkFor(r)
	var pc *pageChunk
	if c != nil {
		pc = c.pages[r&chunkMask]
	}
	pi := p & (RegionPages - 1)
	if pc == nil || pc.base[pi] != old {
		panic(check.Failf("vm: FrameMoved mapping mismatch"))
	}
	pc.base[pi] = new
	as.mem.SetOwner(new, as, cookie)
	as.shoot(v.PageVA(p), Page4K)
}

// FrameReclaimed swaps out the page that used f (reclaim). The contents
// move to the swap device; a later access faults and swaps in. When the
// cookie names a huge mapping, the region is demoted in place — Linux's
// split-THP-under-reclaim — and the eviction itself is refused; the
// freshly-split base pages become ordinary reclaim candidates.
func (as *AddressSpace) FrameReclaimed(f memsys.Frame, cookie uint64) bool {
	if cookie&cookieHuge != 0 {
		v := as.byID[uint32(cookie>>cookieIDShift)&uint32(cookieIDMask)]
		if v == nil {
			return false
		}
		r := int(cookie & cookieIndexMask)
		if r >= v.Regions() {
			return false // stale
		}
		c := v.chunkFor(r)
		if c == nil || c.huge[r&chunkMask] != f {
			return false // stale
		}
		as.DemoteHuge(v, r)
		as.ReclaimDemotions++
		return false
	}
	v := as.byID[uint32(cookie>>cookieIDShift)&uint32(cookieIDMask)]
	if v == nil {
		return false
	}
	p := int(cookie & cookieIndexMask)
	r := p / RegionPages
	c := v.chunkFor(r)
	var pc *pageChunk
	if c != nil {
		pc = c.pages[r&chunkMask]
	}
	pi := p & (RegionPages - 1)
	if pc == nil || pc.base[pi] != f {
		return false
	}
	pc.base[pi] = memsys.NoFrame
	c.present4k[r&chunkMask]--
	pc.setSwap(pi)
	as.SwappedOut++
	as.shoot(v.PageVA(p), Page4K)
	return true
}

var _ memsys.Owner = (*AddressSpace)(nil)
