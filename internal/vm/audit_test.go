package vm

import (
	"testing"

	"graphmem/internal/memsys"
)

// TestCheckInvariantsCleanAfterOps runs the full mapping lifecycle —
// mmap, 4K faults, huge mapping, demotion, reclaim-driven swap, swap-in,
// munmap — auditing after every step.
func TestCheckInvariantsCleanAfterOps(t *testing.T) {
	mem := memsys.New(64 << 20)
	as := NewAddressSpace(mem)
	as.SimPageTables = true

	audit := func(step string) {
		t.Helper()
		if err := as.CheckInvariants(); err != nil {
			t.Fatalf("audit failed after %s: %v", step, err)
		}
	}
	audit("creation")

	v := as.Mmap("a", 3*memsys.HugeSize)
	w := as.Mmap("b", memsys.HugeSize/2)
	audit("mmap")

	for p := 0; p < 10; p++ {
		as.MapBase(v, p, mem.Alloc(0, memsys.Movable, nil, 0))
	}
	as.MapBase(w, 3, mem.Alloc(0, memsys.Movable, nil, 0))
	audit("4K faults")

	hf := mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	as.MapHuge(v, 1, hf)
	audit("huge map")

	as.DemoteHuge(v, 1)
	audit("demotion")

	if _, swapped := mem.ReclaimPages(4); swapped == 0 {
		t.Fatal("reclaim swapped nothing; swap path not exercised")
	}
	audit("reclaim/swap-out")

	// Swap one page back in (the fault handler's re-map path).
	for p := 0; p < v.Pages; p++ {
		r := p / RegionPages
		c := v.chunkFor(r)
		if c == nil {
			continue
		}
		pc := c.pages[r&chunkMask]
		if pc != nil && pc.swapped(p&(RegionPages-1)) {
			as.MapBase(v, p, mem.Alloc(0, memsys.Movable, nil, 0))
			break
		}
	}
	audit("swap-in")

	as.Munmap(w)
	audit("munmap")
	if err := mem.CheckInvariants(); err != nil {
		t.Fatalf("physical layer audit failed: %v", err)
	}
}

// The seeded-corruption tests plant one specific bookkeeping
// inconsistency each and require CheckInvariants to reject it.

func corruptibleSpace(t *testing.T) (*AddressSpace, *memsys.Memory, *VMA) {
	t.Helper()
	mem := memsys.New(64 << 20)
	as := NewAddressSpace(mem)
	as.SimPageTables = true
	v := as.Mmap("a", 2*memsys.HugeSize)
	as.MapBase(v, 0, mem.Alloc(0, memsys.Movable, nil, 0))
	if err := as.CheckInvariants(); err != nil {
		t.Fatalf("baseline not clean: %v", err)
	}
	return as, mem, v
}

func TestCheckInvariantsDetectsPresent4KDrift(t *testing.T) {
	as, _, v := corruptibleSpace(t)
	v.ensureChunk(0).present4k[0] = 7 // one page is actually mapped
	if err := as.CheckInvariants(); err == nil {
		t.Fatal("present4k drift not detected")
	}
}

func TestCheckInvariantsDetectsMappingToFreeFrame(t *testing.T) {
	as, mem, v := corruptibleSpace(t)
	mem.Free(v.chunkFor(0).pages[0].base[0], 0) // frame freed behind the mapping's back
	if err := as.CheckInvariants(); err == nil {
		t.Fatal("mapping to a free frame not detected")
	}
}

func TestCheckInvariantsDetectsMappedAndSwapped(t *testing.T) {
	as, _, v := corruptibleSpace(t)
	v.chunkFor(0).pages[0].setSwap(0)
	as.SwappedOut++
	if err := as.CheckInvariants(); err == nil {
		t.Fatal("page both mapped and swapped not detected")
	}
}

func TestCheckInvariantsDetectsSwapCounterDrift(t *testing.T) {
	as, _, _ := corruptibleSpace(t)
	as.SwappedOut = 42 // no page carries a swap flag
	if err := as.CheckInvariants(); err == nil {
		t.Fatal("SwappedOut drift not detected")
	}
}

func TestCheckInvariantsDetectsHugeWith4KOverlap(t *testing.T) {
	as, mem, v := corruptibleSpace(t)
	// Region 1 is empty: install a huge mapping, then corrupt a 4K slot
	// underneath it without going through MapBase's guards.
	hf := mem.Alloc(memsys.HugeOrder, memsys.Movable, nil, 0)
	as.MapHuge(v, 1, hf)
	f := mem.Alloc(0, memsys.Movable, nil, 0)
	c := v.chunkFor(1)
	v.ensurePages(c, 1).base[0] = f
	c.present4k[1]++
	if err := as.CheckInvariants(); err == nil {
		t.Fatal("huge mapping overlapping 4K mappings not detected")
	}
}

func TestCheckInvariantsDetectsPageTableLeak(t *testing.T) {
	as, _, _ := corruptibleSpace(t)
	as.PageTableBytes += memsys.PageSize // phantom paging-structure page
	if err := as.CheckInvariants(); err == nil {
		t.Fatal("PageTableBytes drift not detected")
	}
}
