package vm

import "unsafe"

// FootprintBytes reports the simulator-side bytes backing this address
// space's mapping state, split into tables (chunk directories,
// materialized region chunks minus their heat counters, per-page chunks,
// leaf page-table frame lists, PD map) and heat (the per-region access
// counters), each paired with what the legacy dense-array representation
// would have cost: per page 4 B base + 1 B swap, per region 1 B advice +
// 4 B huge + 2 B present4k + 8 B heat, regardless of how much of the VMA
// was ever touched. The stats.Footprint report renders the pairs.
func (as *AddressSpace) FootprintBytes() (tables, tablesLegacy, heat, heatLegacy uint64) {
	const (
		chunkBytes     = uint64(unsafe.Sizeof(vmaChunk{}))
		pageChunkBytes = uint64(unsafe.Sizeof(pageChunk{}))
		heatBytes      = uint64(unsafe.Sizeof([chunkRegions]uint64{}))
		ptrBytes       = uint64(unsafe.Sizeof((*vmaChunk)(nil)))
	)
	for _, v := range as.vmas {
		tables += uint64(len(v.chunks)) * ptrBytes
		for _, c := range v.chunks {
			if c == nil {
				continue
			}
			tables += chunkBytes - heatBytes
			heat += heatBytes
			for _, pc := range c.pages {
				if pc != nil {
					tables += pageChunkBytes
				}
			}
		}
		ptB := uint64(len(v.ptFrames)) * 4
		tables += ptB
		regions, pages := uint64(v.Regions()), uint64(v.Pages)
		tablesLegacy += regions*7 + pages*5 + ptB
		heatLegacy += regions * 8
	}
	pdB := uint64(len(as.pds)) * 16
	tables += pdB
	tablesLegacy += pdB
	return tables, tablesLegacy, heat, heatLegacy
}
