package vm

import (
	"fmt"

	"graphmem/internal/memsys"
)

// CheckInvariants validates the address space's mapping bookkeeping and
// returns an error describing the first violation. The simcheck runtime
// sanitizer (check.Audit) calls it at policy-decision boundaries; tests
// call it after operation sequences.
//
// Checked:
//
//   - the VMA list is sorted by base, non-overlapping, and agrees with
//     the byID index;
//   - per region: present4k equals the number of live 4K mappings, and
//     a huge-mapped region has no 4K mappings or swap entries;
//   - every mapped frame is allocated in the physical layer, and no
//     page is simultaneously mapped and swapped;
//   - the global SwappedOut counter matches the per-page swap flags;
//   - with SimPageTables: every live VMA has one leaf page-table frame
//     per region, and PageTableBytes matches the page-table page count
//     (PML4 + PDPT + PDs + leaf PTs) — the "leaf count matches
//     mapped-page accounting" conservation the fidelity mode relies on.
func (as *AddressSpace) CheckInvariants() error {
	var swapped uint64
	var ptPages uint64
	var prevEnd uint64
	for i, v := range as.vmas {
		if v.dead {
			return fmt.Errorf("vma %s: dead but still listed", v.Name)
		}
		if as.byID[v.id] != v {
			return fmt.Errorf("vma %s: byID[%d] does not point back to it", v.Name, v.id)
		}
		if i > 0 && v.Base < prevEnd {
			return fmt.Errorf("vma %s: base %#x overlaps previous end %#x", v.Name, v.Base, prevEnd)
		}
		prevEnd = v.End()
		if v.Base%memsys.HugeSize != 0 {
			return fmt.Errorf("vma %s: base %#x not 2MB aligned", v.Name, v.Base)
		}
		if err := as.checkVMA(v); err != nil {
			return fmt.Errorf("vma %s: %v", v.Name, err)
		}
		for _, s := range v.swap {
			if s {
				swapped++
			}
		}
		if as.SimPageTables {
			if len(v.ptFrames) != v.Regions() {
				return fmt.Errorf("vma %s: %d leaf page-table frames for %d regions",
					v.Name, len(v.ptFrames), v.Regions())
			}
			for r, f := range v.ptFrames {
				if f == memsys.NoFrame {
					return fmt.Errorf("vma %s: region %d has no leaf page-table frame", v.Name, r)
				}
				if !as.mem.Allocated(f) {
					return fmt.Errorf("vma %s: leaf page-table frame %d (region %d) not allocated", v.Name, f, r)
				}
				ptPages++
			}
		}
	}
	if len(as.byID) != len(as.vmas) {
		return fmt.Errorf("byID holds %d entries but %d VMAs are live", len(as.byID), len(as.vmas))
	}
	if swapped != as.SwappedOut {
		return fmt.Errorf("SwappedOut=%d but per-page flags count %d", as.SwappedOut, swapped)
	}
	if as.SimPageTables && as.pml4 != memsys.NoFrame {
		ptPages += 2 // PML4 + PDPT
		ptPages += uint64(len(as.pds))
		if want := ptPages * memsys.PageSize; want != as.PageTableBytes {
			return fmt.Errorf("PageTableBytes=%d but %d paging-structure pages are live (want %d)",
				as.PageTableBytes, ptPages, want)
		}
	}
	return nil
}

// checkVMA validates one VMA's per-page and per-region accounting.
func (as *AddressSpace) checkVMA(v *VMA) error {
	for r := 0; r < v.Regions(); r++ {
		lo, hi := r*RegionPages, (r+1)*RegionPages
		if hi > v.Pages {
			hi = v.Pages
		}
		mapped4k := 0
		for p := lo; p < hi; p++ {
			f := v.base[p]
			if f != memsys.NoFrame {
				mapped4k++
				if !as.mem.Allocated(f) {
					return fmt.Errorf("page %d mapped to free frame %d", p, f)
				}
				if v.swap[p] {
					return fmt.Errorf("page %d both mapped and swapped", p)
				}
			}
		}
		if int(v.present4k[r]) != mapped4k {
			return fmt.Errorf("region %d: present4k=%d but %d pages mapped", r, v.present4k[r], mapped4k)
		}
		if hf := v.huge[r]; hf != memsys.NoFrame {
			if mapped4k != 0 {
				return fmt.Errorf("region %d: huge-mapped with %d 4K pages present", r, mapped4k)
			}
			if !as.mem.Allocated(hf) {
				return fmt.Errorf("region %d: huge-mapped to free frame %d", r, hf)
			}
			for p := lo; p < hi; p++ {
				if v.swap[p] {
					return fmt.Errorf("region %d: huge-mapped but page %d flagged swapped", r, p)
				}
			}
		}
	}
	return nil
}
