package vm

import (
	"fmt"
	"math/bits"

	"graphmem/internal/memsys"
)

// CheckInvariants validates the address space's mapping bookkeeping and
// returns an error describing the first violation. The simcheck runtime
// sanitizer (check.Audit) calls it at policy-decision boundaries; tests
// call it after operation sequences.
//
// Checked:
//
//   - the VMA list is sorted by base, non-overlapping, and agrees with
//     the byID index;
//   - per region: present4k equals the number of live 4K mappings, a
//     huge-mapped region has no 4K mappings, swap entries, or retained
//     page chunk, and a nil chunk really is untouched (implied: nothing
//     mapped or swapped there);
//   - every mapped frame is allocated in the physical layer, and no
//     page is simultaneously mapped and swapped;
//   - the global SwappedOut counter matches the per-page swap bitmaps;
//   - with SimPageTables: every live VMA has one leaf page-table frame
//     per region, and PageTableBytes matches the page-table page count
//     (PML4 + PDPT + PDs + leaf PTs) — the "leaf count matches
//     mapped-page accounting" conservation the fidelity mode relies on.
func (as *AddressSpace) CheckInvariants() error {
	var swapped uint64
	var ptPages uint64
	var prevEnd uint64
	for i, v := range as.vmas {
		if v.dead {
			return fmt.Errorf("vma %s: dead but still listed", v.Name)
		}
		if as.byID[v.id] != v {
			return fmt.Errorf("vma %s: byID[%d] does not point back to it", v.Name, v.id)
		}
		if i > 0 && v.Base < prevEnd {
			return fmt.Errorf("vma %s: base %#x overlaps previous end %#x", v.Name, v.Base, prevEnd)
		}
		prevEnd = v.End()
		if v.Base%memsys.HugeSize != 0 {
			return fmt.Errorf("vma %s: base %#x not 2MB aligned", v.Name, v.Base)
		}
		if err := as.checkVMA(v); err != nil {
			return fmt.Errorf("vma %s: %v", v.Name, err)
		}
		for _, c := range v.chunks {
			if c == nil {
				continue
			}
			for _, pc := range c.pages {
				if pc == nil {
					continue
				}
				for _, w := range pc.swap {
					swapped += uint64(bits.OnesCount64(w))
				}
			}
		}
		if as.SimPageTables {
			if len(v.ptFrames) != v.Regions() {
				return fmt.Errorf("vma %s: %d leaf page-table frames for %d regions",
					v.Name, len(v.ptFrames), v.Regions())
			}
			for r, f := range v.ptFrames {
				if f == memsys.NoFrame {
					return fmt.Errorf("vma %s: region %d has no leaf page-table frame", v.Name, r)
				}
				if !as.mem.Allocated(f) {
					return fmt.Errorf("vma %s: leaf page-table frame %d (region %d) not allocated", v.Name, f, r)
				}
				ptPages++
			}
		}
	}
	if len(as.byID) != len(as.vmas) {
		return fmt.Errorf("byID holds %d entries but %d VMAs are live", len(as.byID), len(as.vmas))
	}
	if swapped != as.SwappedOut {
		return fmt.Errorf("SwappedOut=%d but per-page flags count %d", as.SwappedOut, swapped)
	}
	if as.SimPageTables && as.pml4 != memsys.NoFrame {
		ptPages += 2 // PML4 + PDPT
		ptPages += uint64(len(as.pds))
		if want := ptPages * memsys.PageSize; want != as.PageTableBytes {
			return fmt.Errorf("PageTableBytes=%d but %d paging-structure pages are live (want %d)",
				as.PageTableBytes, ptPages, want)
		}
	}
	return nil
}

// checkVMA validates one VMA's per-page and per-region accounting. A nil
// chunk means an untouched GB span: by construction nothing can be
// mapped, advised, hot, or swapped there, so it passes vacuously.
func (as *AddressSpace) checkVMA(v *VMA) error {
	if want := (v.Regions() + chunkRegions - 1) >> chunkShift; len(v.chunks) != want {
		return fmt.Errorf("chunk directory has %d entries for %d regions (want %d)",
			len(v.chunks), v.Regions(), want)
	}
	for r := 0; r < v.Regions(); r++ {
		c := v.chunkFor(r)
		if c == nil {
			continue
		}
		cr := r & chunkMask
		lo, hi := r*RegionPages, (r+1)*RegionPages
		if hi > v.Pages {
			hi = v.Pages
		}
		pc := c.pages[cr]
		mapped4k := 0
		if pc != nil {
			for p := lo; p < hi; p++ {
				pi := p & (RegionPages - 1)
				f := pc.base[pi]
				if f != memsys.NoFrame {
					mapped4k++
					if !as.mem.Allocated(f) {
						return fmt.Errorf("page %d mapped to free frame %d", p, f)
					}
					if pc.swapped(pi) {
						return fmt.Errorf("page %d both mapped and swapped", p)
					}
				}
			}
			for p := hi; p < (r+1)*RegionPages; p++ {
				pi := p & (RegionPages - 1)
				if pc.base[pi] != memsys.NoFrame || pc.swapped(pi) {
					return fmt.Errorf("region %d: page state past the VMA end (page %d)", r, p)
				}
			}
		}
		if int(c.present4k[cr]) != mapped4k {
			return fmt.Errorf("region %d: present4k=%d but %d pages mapped", r, c.present4k[cr], mapped4k)
		}
		if hf := c.huge[cr]; hf != memsys.NoFrame {
			if mapped4k != 0 {
				return fmt.Errorf("region %d: huge-mapped with %d 4K pages present", r, mapped4k)
			}
			if pc != nil {
				return fmt.Errorf("region %d: huge-mapped but retains a page chunk", r)
			}
			if !as.mem.Allocated(hf) {
				return fmt.Errorf("region %d: huge-mapped to free frame %d", r, hf)
			}
		}
	}
	// Chunk-directory tail entries past the last region must be absent
	// or empty; region indices past Regions() are unreachable via the
	// public API, so any state there is a chunk-bookkeeping bug.
	for r := v.Regions(); r < len(v.chunks)<<chunkShift; r++ {
		c := v.chunkFor(r)
		if c == nil {
			r |= chunkMask // skip to the next chunk
			continue
		}
		cr := r & chunkMask
		if c.huge[cr] != memsys.NoFrame || c.present4k[cr] != 0 || c.pages[cr] != nil {
			return fmt.Errorf("region %d: state past the last region", r)
		}
	}
	return nil
}
