// Package ckpt is the persistent checkpoint container and codec layer
// (DESIGN.md §5e): a versioned, checksummed on-disk format plus the
// Encoder/Decoder primitives every subsystem's Encode/Decode methods
// are written against.
//
// The container is deliberately dumb. A file is
//
//	magic[8] version[u32] endian[u8] keyLen[u32] key[keyLen]
//	payload[...]
//	payloadLen[u64] crc32c[u32]
//
// where the payload is whatever the encode callback wrote, the trailer
// records its exact length and CRC-32C, and the key is the cell's
// initKey — the full identity of the staged state. Load verifies
// magic, version, endianness, key, length, and checksum before a
// single payload byte reaches a Decoder, so subsystem decoders only
// ever face complete, bit-exact images; their own validation exists to
// reject images that are internally inconsistent (a hostile or
// version-skewed writer), never to patch up torn reads.
//
// Scalars are little-endian; bulk slices are raw host memory (that is
// what makes save/load near-memcpy). The endian marker byte rejects
// cross-endian loads instead of translating them: a checkpoint is a
// cache keyed by initKey, not an interchange format, and a mismatch
// simply falls back to fresh staging.
//
// Determinism contract (MODEL.md §7): Encode must be a pure function
// of simulation state — iterate maps in sorted key order, never encode
// pointers, scratch buffers, or host addresses — so that identical
// initKeys produce byte-identical images and a loaded image forks into
// machines byte-identical to freshly staged ones.
package ckpt

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"unsafe"
)

// Version is the container format version. Any change to any
// subsystem's Encode layout must bump it: Load rejects other versions,
// which is what invalidates every stale store entry at once (content
// addressing handles spec changes; the version handles format
// changes).
const Version = 1

var magic = [8]byte{'G', 'M', 'C', 'K', 'P', 'T', '0', '\n'}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64 and
// arm64, which matters at multi-GB image sizes).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostEndian is 0 on little-endian hosts, 1 on big-endian ones.
var hostEndian = func() byte {
	x := uint16(1)
	if *(*byte)(unsafe.Pointer(&x)) == 1 {
		return 0
	}
	return 1
}()

// maxKeyLen bounds the key field so a corrupt header cannot demand an
// absurd allocation before the checksum is ever consulted.
const maxKeyLen = 64 << 10

// Path returns the store path for a checkpoint key: the hex SHA-256 of
// the key under dir. Content addressing by hash keeps arbitrarily long
// initKeys (they spell out the whole spec) out of filenames while
// keeping the mapping collision-free in practice.
func Path(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:])+".ckpt")
}

// Save writes a complete container to w: header, the payload produced
// by encode, and the length+CRC trailer. It returns the total bytes
// written. Any Encoder error (I/O or a codec's Failf) aborts the save.
func Save(w io.Writer, key string, encode func(*Encoder)) (int64, error) {
	if len(key) > maxKeyLen {
		return 0, fmt.Errorf("ckpt: key is %d bytes, limit %d", len(key), maxKeyLen)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr bytes.Buffer
	hdr.Write(magic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], Version)
	hdr.Write(u32[:])
	hdr.WriteByte(hostEndian)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(key)))
	hdr.Write(u32[:])
	hdr.WriteString(key)
	if _, err := bw.Write(hdr.Bytes()); err != nil {
		return 0, err
	}
	e := &Encoder{w: bw, crc: crc32.New(castagnoli)}
	encode(e)
	if e.err != nil {
		return 0, e.err
	}
	var tr [12]byte
	binary.LittleEndian.PutUint64(tr[:8], e.n)
	binary.LittleEndian.PutUint32(tr[8:], e.crc.Sum32())
	if _, err := bw.Write(tr[:]); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(hdr.Len()) + int64(e.n) + int64(len(tr)), nil
}

// Load reads a complete container from r, verifies magic, version,
// endianness, key, payload length, and CRC, and returns a Decoder
// positioned at the start of the payload. Nothing is decoded until
// every integrity check has passed; any failure returns an error and
// no Decoder.
func Load(r io.Reader, wantKey string) (*Decoder, error) {
	var fixed [17]byte // magic + version + endian + keyLen
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("ckpt: short header: %w", err)
	}
	if !bytes.Equal(fixed[:8], magic[:]) {
		return nil, fmt.Errorf("ckpt: bad magic %q", fixed[:8])
	}
	if v := binary.LittleEndian.Uint32(fixed[8:12]); v != Version {
		return nil, fmt.Errorf("ckpt: format version %d, want %d", v, Version)
	}
	if fixed[12] != hostEndian {
		return nil, fmt.Errorf("ckpt: image written on a different-endian host")
	}
	keyLen := binary.LittleEndian.Uint32(fixed[13:17])
	if keyLen > maxKeyLen {
		return nil, fmt.Errorf("ckpt: key length %d exceeds limit %d", keyLen, maxKeyLen)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(r, key); err != nil {
		return nil, fmt.Errorf("ckpt: short key: %w", err)
	}
	if string(key) != wantKey {
		return nil, fmt.Errorf("ckpt: image key %q does not match %q", key, wantKey)
	}
	rest, err := readRest(r, int64(len(fixed))+int64(keyLen))
	if err != nil {
		return nil, err
	}
	if len(rest) < 12 {
		return nil, fmt.Errorf("ckpt: truncated trailer (%d bytes after key)", len(rest))
	}
	payload := rest[:len(rest)-12]
	wantLen := binary.LittleEndian.Uint64(rest[len(rest)-12:])
	wantCRC := binary.LittleEndian.Uint32(rest[len(rest)-4:])
	if wantLen != uint64(len(payload)) {
		return nil, fmt.Errorf("ckpt: payload is %d bytes, trailer says %d", len(payload), wantLen)
	}
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("ckpt: payload CRC %08x, trailer says %08x", got, wantCRC)
	}
	return &Decoder{buf: payload}, nil
}

// readRest slurps everything after the header, presizing the buffer
// when r can report its total size (an *os.File can), so multi-GB
// loads do one allocation instead of log-many regrows.
func readRest(r io.Reader, consumed int64) ([]byte, error) {
	var buf bytes.Buffer
	if s, ok := r.(interface{ Stat() (fs.FileInfo, error) }); ok {
		if fi, err := s.Stat(); err == nil && fi.Size() > consumed {
			buf.Grow(int(fi.Size() - consumed))
		}
	}
	if _, err := io.Copy(&buf, r); err != nil {
		return nil, fmt.Errorf("ckpt: reading payload: %w", err)
	}
	return buf.Bytes(), nil
}

// Encoder serializes simulation state into a container payload. All
// methods are no-ops after the first error (I/O failure or Failf), so
// codecs can encode straight through and let Save report the sticky
// error once.
type Encoder struct {
	w   io.Writer
	crc hash.Hash32
	n   uint64
	err error
}

// Err returns the sticky error, if any.
func (e *Encoder) Err() error { return e.err }

// Failf records a codec-level error (state that must not be
// serialized, like a live ticker), aborting the save.
func (e *Encoder) Failf(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

func (e *Encoder) write(b []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(b); err != nil {
		e.err = err
		return
	}
	e.crc.Write(b)
	e.n += uint64(len(b))
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.write([]byte{v}) }

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.write(b[:])
}

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.write(b[:])
}

// Int writes a signed int as its 64-bit two's complement.
func (e *Encoder) Int(v int) { e.U64(uint64(int64(v))) }

// Bool writes a bool as one byte, 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.write([]byte(s))
}

// Raw writes b with no length prefix: the peer Decoder must know the
// exact size (a fixed array via View, or a slice whose length was
// encoded separately).
func (e *Encoder) Raw(b []byte) { e.write(b) }

// Decoder reads a verified container payload back. All reads are
// bounds-checked against the payload and all methods are no-ops
// (returning zero values) after the first error, so a corrupt or
// hostile image can never panic a codec or index past the buffer —
// the fuzzer in internal/core holds this to account.
type Decoder struct {
	buf []byte
	off int
	err error
}

// Err returns the sticky error, if any.
func (d *Decoder) Err() error { return d.err }

// Failf records a codec-level validation error (an image whose decoded
// state is internally inconsistent), aborting the load.
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: offset %d: "+format, append([]any{d.off}, args...)...)
	}
}

// Remaining reports how many payload bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish errors unless the payload was consumed exactly: leftover
// bytes mean the image and the decoders disagree about the format.
func (d *Decoder) Finish() error {
	if d.err == nil && d.Remaining() != 0 {
		d.Failf("%d trailing bytes after decode", d.Remaining())
	}
	return d.err
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.Failf("need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a signed int written by Encoder.Int.
func (d *Decoder) Int() int { return int(int64(d.U64())) }

// Bool reads a bool, rejecting any encoding other than 0 or 1.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Failf("bool byte is neither 0 nor 1")
		return false
	}
}

// Len reads a length and rejects values above max, so a corrupt
// length field can never force an allocation larger than the payload
// that claims to contain the data.
func (d *Decoder) Len(max int) int {
	v := d.U64()
	if d.err != nil {
		return 0
	}
	if max < 0 {
		max = 0
	}
	if v > uint64(max) {
		d.Failf("length %d exceeds bound %d", v, max)
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Len(d.Remaining())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Raw fills dst exactly; the peer of Encoder.Raw.
func (d *Decoder) Raw(dst []byte) {
	b := d.take(len(dst))
	if b == nil {
		return
	}
	copy(dst, b)
}

// View returns the raw bytes of *p. It is how codecs hand fixed-size
// arrays of pointer-free scalars ([512]uint64 heat counters, [8]uint64
// swap bitmaps) to Raw without a copy on encode. T must contain no
// pointers and no compiler-inserted padding.
func View[T any](p *T) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(p)), unsafe.Sizeof(*p))
}

// SliceView returns the raw bytes backing s (nil when s is empty).
// Same contract as View: pointer-free, padding-free element types.
func SliceView[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), uintptr(len(s))*unsafe.Sizeof(s[0]))
}

// EncodeSlice writes a length-prefixed slice of pointer-free scalars
// as raw host memory — the near-memcpy path for the big flat arrays
// (frame metadata, page tables, free bitmaps).
func EncodeSlice[T any](e *Encoder, s []T) {
	e.U64(uint64(len(s)))
	e.Raw(SliceView(s))
}

// DecodeSlice reads a slice written by EncodeSlice, bounding the
// length by the bytes actually remaining before allocating.
func DecodeSlice[T any](d *Decoder) []T {
	esz := int(unsafe.Sizeof(*new(T)))
	n := d.Len(d.Remaining() / esz)
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]T, n)
	d.Raw(SliceView(s))
	return s
}
