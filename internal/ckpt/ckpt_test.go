package ckpt

import (
	"bytes"
	"strings"
	"testing"
)

// encodeSample writes one of every primitive the codec offers.
func encodeSample(e *Encoder) {
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(1 << 40)
	e.Int(-42)
	e.Bool(true)
	e.Bool(false)
	e.String("graphmem")
	e.Raw([]byte{1, 2, 3})
	EncodeSlice(e, []uint64{5, 6, 7})
	EncodeSlice(e, []uint32(nil))
}

func decodeSample(t *testing.T, d *Decoder) {
	t.Helper()
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != 1<<40 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.Int(); v != -42 {
		t.Errorf("Int = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool pair mismatch")
	}
	if v := d.String(); v != "graphmem" {
		t.Errorf("String = %q", v)
	}
	var raw [3]byte
	d.Raw(raw[:])
	if raw != [3]byte{1, 2, 3} {
		t.Errorf("Raw = %v", raw)
	}
	if s := DecodeSlice[uint64](d); len(s) != 3 || s[0] != 5 || s[2] != 7 {
		t.Errorf("DecodeSlice = %v", s)
	}
	if s := DecodeSlice[uint32](d); s != nil {
		t.Errorf("empty DecodeSlice = %v", s)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func saveSample(t *testing.T, key string) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := Save(&buf, key, encodeSample)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Save reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	img := saveSample(t, "cell-key")
	d, err := Load(bytes.NewReader(img), "cell-key")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	decodeSample(t, d)
}

func TestSaveIsDeterministic(t *testing.T) {
	if !bytes.Equal(saveSample(t, "k"), saveSample(t, "k")) {
		t.Fatal("two saves of identical state differ")
	}
}

func TestKeyMismatch(t *testing.T) {
	img := saveSample(t, "cell-key")
	if _, err := Load(bytes.NewReader(img), "other-key"); err == nil {
		t.Fatal("Load accepted a mismatched key")
	}
}

// TestEveryTruncationErrors cuts the image at every possible length:
// no prefix may load.
func TestEveryTruncationErrors(t *testing.T) {
	img := saveSample(t, "k")
	for n := 0; n < len(img); n++ {
		if _, err := Load(bytes.NewReader(img[:n]), "k"); err == nil {
			t.Fatalf("Load accepted a %d/%d-byte truncation", n, len(img))
		}
	}
}

// TestEveryBitFlipErrors flips each bit of the image in turn: header
// fields are validated, the payload is checksummed, and the trailer
// must agree with both, so every single-bit corruption must be caught.
func TestEveryBitFlipErrors(t *testing.T) {
	img := saveSample(t, "k")
	for i := range img {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(img)
			mut[i] ^= 1 << bit
			if _, err := Load(bytes.NewReader(mut), "k"); err == nil {
				t.Fatalf("Load accepted a flip of byte %d bit %d", i, bit)
			}
		}
	}
}

func TestDecoderBoundsAndValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Save(&buf, "k", func(e *Encoder) {
		e.U8(2)        // invalid bool
		e.U64(1 << 50) // absurd length
	}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	d, err := Load(bytes.NewReader(buf.Bytes()), "k")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	d.Bool()
	if d.Err() == nil {
		t.Fatal("Bool accepted byte 2")
	}

	d, _ = Load(bytes.NewReader(buf.Bytes()), "k")
	d.U8()
	if n := d.Len(4); n != 0 || d.Err() == nil {
		t.Fatalf("Len returned %d for an over-bound length (err %v)", n, d.Err())
	}
	// After the sticky error, everything is a zero-value no-op.
	if v := d.U64(); v != 0 {
		t.Fatalf("post-error U64 = %d", v)
	}
	if s := DecodeSlice[uint64](d); s != nil {
		t.Fatalf("post-error DecodeSlice = %v", s)
	}
}

func TestEncoderFailf(t *testing.T) {
	var buf bytes.Buffer
	_, err := Save(&buf, "k", func(e *Encoder) {
		e.U64(1)
		e.Failf("live ticker %q", "churn")
		e.U64(2) // must be a no-op
	})
	if err == nil || !strings.Contains(err.Error(), "live ticker") {
		t.Fatalf("Save error = %v", err)
	}
}

func TestPath(t *testing.T) {
	p1, p2 := Path("/store", "a"), Path("/store", "b")
	if p1 == p2 {
		t.Fatal("distinct keys map to the same path")
	}
	if !strings.HasPrefix(p1, "/store/") || !strings.HasSuffix(p1, ".ckpt") {
		t.Fatalf("Path = %q", p1)
	}
	if Path("/store", "a") != p1 {
		t.Fatal("Path is not deterministic")
	}
}
