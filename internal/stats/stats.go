// Package stats provides the small numeric and formatting helpers the
// experiment harness uses to turn run results into the paper's tables:
// speedup ratios, geometric means, and aligned text/CSV/markdown tables.
//
// Everything here is value-oriented and free of package-level state, and
// a Table renders (String, Markdown, CSV) purely from its rows in
// insertion order. That is one leg of the campaign determinism argument:
// tables built from memoized run results format identically no matter
// how many workers produced those results or in what order they
// finished. A Table under construction is not safe for concurrent
// AddRow; the experiment harness only builds tables in its sequential
// render phase.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Speedup returns base/x — how many times faster x is than base when
// both are cycle (or time) counts.
func Speedup(base, x uint64) float64 {
	if x == 0 {
		return 0
	}
	return float64(base) / float64(x)
}

// Geomean returns the geometric mean of xs (0 for empty or non-positive
// input, which would otherwise be undefined).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// F formats a float with the given precision, trimming to a compact
// representation for tables.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a ratio in [0,1] as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}

// MB formats a byte count in mebibytes.
func MB(b uint64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}

// Table is a simple titled grid that renders as aligned text, CSV, or
// GitHub-flavoured markdown.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned monospaced text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Markdown renders the table as a GitHub table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no escaping beyond
// what the harness's plain-identifier cells need).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ",") + "\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ",") + "\n")
	}
	return b.String()
}
