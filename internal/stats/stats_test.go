package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	if Speedup(200, 100) != 2 {
		t.Fatal("speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v", got)
	}
	if Geomean(nil) != 0 || Geomean([]float64{1, -1}) != 0 {
		t.Fatal("degenerate inputs not handled")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Fatalf("minmax = %v,%v", lo, hi)
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Fatal("empty minmax")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatal("F wrong")
	}
	if Pct(0.5) != "50.0%" {
		t.Fatal("Pct wrong")
	}
	if MB(1<<20) != "1.0MB" {
		t.Fatal("MB wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.AddRow("x", "y")
	tb.AddRow("longer") // short row padded
	tb.Note = "hello"
	s := tb.String()
	for _, want := range []string{"== demo ==", "a", "bb", "longer", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("text rendering missing %q in:\n%s", want, s)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "### demo") {
		t.Fatalf("markdown rendering wrong:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv rendering wrong:\n%s", csv)
	}
}

// TestQuickGeomeanBounds: the geometric mean of positive values lies
// within [min, max].
func TestQuickGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		g := Geomean(xs)
		lo, hi := MinMax(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
