package stats

import "fmt"

// Footprint is the simulator-side memory introspection report: how many
// host bytes each subsystem spends representing the simulated machine,
// paired with what the pre-compaction (dense-array) representation
// would have cost for the same state. It is the first brick of the
// service-mode MEMORY USAGE endpoint: expdriver -footprint prints it,
// the fullscale CI gate asserts on its Reduction, and bench.sh records
// its totals.
//
// Rows are appended in a fixed subsystem order by the machine layer, so
// the rendered table is deterministic.
type Footprint struct {
	// SimulatedBytes is the size of the simulated physical node.
	SimulatedBytes uint64
	Rows           []FootprintRow
}

// FootprintRow is one subsystem's cost: Bytes under the current
// representation, Legacy under the pre-compaction one.
type FootprintRow struct {
	Subsystem string
	Bytes     uint64
	Legacy    uint64
}

// Add appends one subsystem row.
func (f *Footprint) Add(subsystem string, bytes, legacy uint64) {
	f.Rows = append(f.Rows, FootprintRow{Subsystem: subsystem, Bytes: bytes, Legacy: legacy})
}

// TotalBytes sums the current representation across subsystems.
func (f *Footprint) TotalBytes() uint64 {
	var t uint64
	for _, r := range f.Rows {
		t += r.Bytes
	}
	return t
}

// LegacyBytes sums the pre-compaction representation across subsystems.
func (f *Footprint) LegacyBytes() uint64 {
	var t uint64
	for _, r := range f.Rows {
		t += r.Legacy
	}
	return t
}

// Reduction returns LegacyBytes/TotalBytes — how many times smaller the
// current representation is (0 when the current total is 0).
func (f *Footprint) Reduction() float64 {
	cur := f.TotalBytes()
	if cur == 0 {
		return 0
	}
	return float64(f.LegacyBytes()) / float64(cur)
}

// BytesPerSimGB returns current simulator bytes per simulated GB.
func (f *Footprint) BytesPerSimGB() float64 {
	if f.SimulatedBytes == 0 {
		return 0
	}
	return float64(f.TotalBytes()) / (float64(f.SimulatedBytes) / float64(1<<30))
}

// Table renders the report as an aligned text table with per-subsystem
// rows and a totals row.
func (f *Footprint) Table() *Table {
	t := NewTable(
		fmt.Sprintf("simulator footprint (%s simulated)", fmtBytes(f.SimulatedBytes)),
		"subsystem", "bytes", "legacy", "reduction")
	for _, r := range f.Rows {
		red := "-"
		if r.Bytes > 0 {
			red = fmt.Sprintf("%.2fx", float64(r.Legacy)/float64(r.Bytes))
		}
		t.AddRow(r.Subsystem, fmtBytes(r.Bytes), fmtBytes(r.Legacy), red)
	}
	t.AddRow("total", fmtBytes(f.TotalBytes()), fmtBytes(f.LegacyBytes()),
		fmt.Sprintf("%.2fx", f.Reduction()))
	return t
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
