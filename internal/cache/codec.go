package cache

import "graphmem/internal/ckpt"

// Checkpoint codec (DESIGN.md §5e). Tags, LRU stamps, the clock, and
// each level's memoized last-touched way are serialized verbatim —
// AccessRepeatL1's bulk fast path reads last directly, so a loaded
// cache must resume mid-stream exactly where the staged one stopped.
// Decode validates geometry against the decoded Config with newLevel's
// rules, failing the Decoder instead of panicking on hostile images.

func (c *LevelConfig) encode(e *ckpt.Encoder) {
	e.Int(c.Bytes)
	e.Int(c.Ways)
}

func (c *LevelConfig) decode(d *ckpt.Decoder) {
	c.Bytes = d.Int()
	c.Ways = d.Int()
	if c.Bytes < 0 || c.Bytes > 1<<40 || c.Ways < 0 || c.Ways > 1<<20 {
		d.Failf("cache: level config %d bytes / %d ways out of range", c.Bytes, c.Ways)
	}
}

func (c *Config) encode(e *ckpt.Encoder) {
	e.String(c.Name)
	c.L1D.encode(e)
	c.LLC.encode(e)
}

func (c *Config) decode(d *ckpt.Decoder) {
	c.Name = d.String()
	c.L1D.decode(d)
	c.LLC.decode(d)
}

func (s *Stats) Encode(e *ckpt.Encoder) {
	e.U64(s.Accesses)
	e.U64(s.L1Misses)
	e.U64(s.LLCMiss)
}

func (s *Stats) Decode(d *ckpt.Decoder) {
	s.Accesses = d.U64()
	s.L1Misses = d.U64()
	s.LLCMiss = d.U64()
}

func (l *level) encode(e *ckpt.Encoder) {
	e.U64(l.setsMask)
	e.Int(l.ways)
	ckpt.EncodeSlice(e, l.tags)
	ckpt.EncodeSlice(e, l.stamp)
	e.U32(l.clock)
	e.Int(l.last)
}

func (l *level) decode(d *ckpt.Decoder) {
	l.setsMask = d.U64()
	l.ways = d.Int()
	l.tags = ckpt.DecodeSlice[uint64](d)
	l.stamp = ckpt.DecodeSlice[uint32](d)
	l.clock = d.U32()
	l.last = d.Int()
}

// checkGeometry fails the decoder unless l has exactly the shape
// newLevel(c) would build, plus a resident line count (degenerate
// zero-line levels never exist in a staged machine) and an in-bounds
// last index (AccessRepeatL1 dereferences it unchecked).
func (l *level) checkGeometry(d *ckpt.Decoder, c LevelConfig, name string) {
	if d.Err() != nil {
		return
	}
	lines := c.Bytes >> LineShift
	if c.Ways <= 0 || lines%c.Ways != 0 {
		d.Failf("cache: %s: %d lines not divisible by %d ways", name, lines, c.Ways)
		return
	}
	sets := lines / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		d.Failf("cache: %s: set count %d not a positive power of two", name, sets)
		return
	}
	if l.ways != c.Ways || l.setsMask != uint64(sets-1) ||
		len(l.tags) != lines || len(l.stamp) != lines {
		d.Failf("cache: %s: array shape does not match config (%d bytes, %d ways)",
			name, c.Bytes, c.Ways)
		return
	}
	if l.last < 0 || l.last >= len(l.tags) {
		d.Failf("cache: %s: last-way index %d out of range [0,%d)", name, l.last, len(l.tags))
	}
}

// Encode serializes the hierarchy: config, both levels, counters.
func (h *Hierarchy) Encode(e *ckpt.Encoder) {
	h.cfg.encode(e)
	h.l1.encode(e)
	h.llc.encode(e)
	h.stats.Encode(e)
}

// Decode is Encode's inverse, into a fresh receiver. On any decoder
// error the receiver must be discarded.
func (h *Hierarchy) Decode(d *ckpt.Decoder) {
	h.cfg.decode(d)
	h.l1 = new(level)
	h.l1.decode(d)
	h.llc = new(level)
	h.llc.decode(d)
	h.stats.Decode(d)
	h.l1.checkGeometry(d, h.cfg.L1D, "l1")
	h.llc.checkGeometry(d, h.cfg.LLC, "llc")
}
