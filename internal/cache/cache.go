// Package cache models the data-side cache hierarchy with two
// set-associative levels (L1D and LLC) of 64-byte lines, physically
// indexed. The model exists to keep relative performance honest: the
// paper notes that degree-based reordering improves on-chip locality as
// well as TLB behaviour, and both effects must be present for the
// headline ratios to have the right shape.
package cache

import (
	"fmt"

	"graphmem/internal/check"
)

// LineShift is log2 of the cache line size (64B lines).
const LineShift = 6

// LevelConfig sizes one cache level.
type LevelConfig struct {
	Bytes int
	Ways  int
}

// Config describes the data cache hierarchy.
type Config struct {
	Name string
	L1D  LevelConfig
	LLC  LevelConfig
}

// Haswell returns a per-core view of the paper machine's data caches:
// 32KB 8-way L1D and a 2.5MB LLC slice. (We model a single-threaded run,
// so one core's LLC slice share is the capacity that matters; the paper
// pins the application to one socket.)
func Haswell() Config {
	return Config{
		Name: "haswell",
		L1D:  LevelConfig{Bytes: 32 << 10, Ways: 8},
		LLC:  LevelConfig{Bytes: 2560 << 10, Ways: 20},
	}
}

// Scaled divides capacities by div, preserving line size and clamping to
// one set.
func Scaled(c Config, div int) Config {
	sc := func(l LevelConfig) LevelConfig {
		b := l.Bytes / div
		if b < 64*l.Ways {
			b = 64 * l.Ways
		}
		// Round the set count down to a power of two (line size and
		// associativity are preserved).
		sets := b / (64 * l.Ways)
		for sets&(sets-1) != 0 {
			sets &= sets - 1
		}
		return LevelConfig{Bytes: sets * 64 * l.Ways, Ways: l.Ways}
	}
	return Config{Name: fmt.Sprintf("%s/%d", c.Name, div), L1D: sc(c.L1D), LLC: sc(c.LLC)}
}

// Stats counts hierarchy activity.
type Stats struct {
	Accesses uint64
	L1Misses uint64
	LLCMiss  uint64 // DRAM accesses
}

// L1MissRate returns L1 misses / accesses.
func (s Stats) L1MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Accesses)
}

// LLCMissRate returns DRAM accesses / accesses.
func (s Stats) LLCMissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LLCMiss) / float64(s.Accesses)
}

type level struct {
	setsMask uint64
	ways     int
	tags     []uint64
	stamp    []uint32
	clock    uint32
}

func newLevel(c LevelConfig) *level {
	lines := c.Bytes >> LineShift
	if lines%c.Ways != 0 {
		panic(check.Failf("cache: %d lines not divisible by %d ways", lines, c.Ways))
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		panic(check.Failf("cache: set count %d not a power of two", sets))
	}
	return &level{
		setsMask: uint64(sets - 1),
		ways:     c.Ways,
		tags:     make([]uint64, lines),
		stamp:    make([]uint32, lines),
	}
}

func (l *level) access(line uint64) bool {
	tag := line + 1
	base := int(line&l.setsMask) * l.ways
	victim, oldest := base, uint32(0xFFFFFFFF)
	for w := 0; w < l.ways; w++ {
		i := base + w
		if l.tags[i] == tag {
			l.clock++
			l.stamp[i] = l.clock
			return true
		}
		if l.tags[i] == 0 {
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if l.stamp[i] < oldest {
			victim, oldest = i, l.stamp[i]
		}
	}
	l.clock++
	l.tags[victim] = tag
	l.stamp[victim] = l.clock
	return false
}

// repeatHit refreshes line's LRU state as n consecutive hitting accesses
// would: the clock advances by n and the line's stamp lands on the final
// clock value, with no other way touched. Returns false when the line is
// not resident (the caller's residency guarantee was broken).
func (l *level) repeatHit(line, n uint64) bool {
	tag := line + 1
	base := int(line&l.setsMask) * l.ways
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == tag {
			l.clock += uint32(n)
			l.stamp[base+w] = l.clock
			return true
		}
	}
	return false
}

func (l *level) reset() {
	for i := range l.tags {
		l.tags[i] = 0
		l.stamp[i] = 0
	}
	l.clock = 0
}

// Hierarchy is a live two-level data cache.
type Hierarchy struct {
	cfg   Config
	l1    *level
	llc   *level
	stats Stats
}

// New builds a hierarchy.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{cfg: cfg, l1: newLevel(cfg.L1D), llc: newLevel(cfg.LLC)}
}

// Config returns the configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes counters, keeping cache contents.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Reset clears contents and counters.
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.llc.reset()
	h.stats = Stats{}
}

// AccessLevel tells the caller which level satisfied an access.
type AccessLevel uint8

const (
	HitL1 AccessLevel = iota
	HitLLC
	HitDRAM
)

// AccessRepeatL1 charges n data accesses to physical address pa that are
// known to hit the L1: the line was touched by an immediately preceding
// Access and nothing can have evicted it since (every fill makes the line
// most-recently-used in its set). Counters and L1 LRU state advance
// exactly as n Access calls returning HitL1 would; the LLC is untouched,
// as it is on any L1 hit. It panics when the line is not resident,
// because that means a bulk caller's same-line guarantee does not hold.
func (h *Hierarchy) AccessRepeatL1(pa, n uint64) {
	h.stats.Accesses += n
	if !h.l1.repeatHit(pa>>LineShift, n) {
		panic(check.Failf("cache: bulk repeat hit on non-resident line pa=%#x", pa))
	}
}

// Access simulates a data access to physical address pa and reports
// which level served it. Fills are performed along the way (inclusive).
func (h *Hierarchy) Access(pa uint64) AccessLevel {
	h.stats.Accesses++
	line := pa >> LineShift
	if h.l1.access(line) {
		return HitL1
	}
	h.stats.L1Misses++
	if h.llc.access(line) {
		return HitLLC
	}
	h.stats.LLCMiss++
	return HitDRAM
}
