// Package cache models the data-side cache hierarchy with two
// set-associative levels (L1D and LLC) of 64-byte lines, physically
// indexed. The model exists to keep relative performance honest: the
// paper notes that degree-based reordering improves on-chip locality as
// well as TLB behaviour, and both effects must be present for the
// headline ratios to have the right shape.
package cache

import (
	"fmt"

	"graphmem/internal/check"
)

// LineShift is log2 of the cache line size (64B lines).
const LineShift = 6

// LevelConfig sizes one cache level.
type LevelConfig struct {
	Bytes int
	Ways  int
}

// Config describes the data cache hierarchy.
type Config struct {
	Name string
	L1D  LevelConfig
	LLC  LevelConfig
}

// Haswell returns a per-core view of the paper machine's data caches:
// 32KB 8-way L1D and a 2.5MB LLC slice. (We model a single-threaded run,
// so one core's LLC slice share is the capacity that matters; the paper
// pins the application to one socket.)
func Haswell() Config {
	return Config{
		Name: "haswell",
		L1D:  LevelConfig{Bytes: 32 << 10, Ways: 8},
		LLC:  LevelConfig{Bytes: 2560 << 10, Ways: 20},
	}
}

// Scaled divides capacities by div, preserving line size and clamping to
// one set.
func Scaled(c Config, div int) Config {
	sc := func(l LevelConfig) LevelConfig {
		b := l.Bytes / div
		if b < 64*l.Ways {
			b = 64 * l.Ways
		}
		// Round the set count down to a power of two (line size and
		// associativity are preserved).
		sets := b / (64 * l.Ways)
		for sets&(sets-1) != 0 {
			sets &= sets - 1
		}
		return LevelConfig{Bytes: sets * 64 * l.Ways, Ways: l.Ways}
	}
	return Config{Name: fmt.Sprintf("%s/%d", c.Name, div), L1D: sc(c.L1D), LLC: sc(c.LLC)}
}

// Stats counts hierarchy activity.
type Stats struct {
	Accesses uint64
	L1Misses uint64
	LLCMiss  uint64 // DRAM accesses
}

// Add returns the field-wise sum s + o (the sharded machine engine's
// per-shard merge).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Accesses: s.Accesses + o.Accesses,
		L1Misses: s.L1Misses + o.L1Misses,
		LLCMiss:  s.LLCMiss + o.LLCMiss,
	}
}

// L1MissRate returns L1 misses / accesses.
func (s Stats) L1MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Accesses)
}

// LLCMissRate returns DRAM accesses / accesses.
func (s Stats) LLCMissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.LLCMiss) / float64(s.Accesses)
}

type level struct {
	setsMask uint64
	ways     int
	tags     []uint64
	stamp    []uint32
	clock    uint32
	last     int // way index touched by the most recent access (hit or fill)
}

func newLevel(c LevelConfig) *level {
	lines := c.Bytes >> LineShift
	if lines%c.Ways != 0 {
		panic(check.Failf("cache: %d lines not divisible by %d ways", lines, c.Ways))
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		panic(check.Failf("cache: set count %d not a power of two", sets))
	}
	return &level{
		setsMask: uint64(sets - 1),
		ways:     c.Ways,
		tags:     make([]uint64, lines),
		stamp:    make([]uint32, lines),
	}
}

func (l *level) access(line uint64) bool {
	tag := line + 1
	base := int(line&l.setsMask) * l.ways
	// Branchless hit scan: irregular (gather-shaped) streams hit a
	// different way on nearly every probe, so an early-exit loop pays a
	// branch mispredict per probe — the conditional select below
	// compiles to a CMOV and keeps the hit path flat. The victim scan
	// runs only on a miss, with the original selection logic (first
	// empty way, else lowest stamp, earliest index breaking ties).
	hit := -1
	for w := 0; w < l.ways; w++ {
		i := base + w
		if l.tags[i] == tag {
			hit = i
		}
	}
	if hit >= 0 {
		l.clock++
		l.stamp[hit] = l.clock
		l.last = hit
		return true
	}
	victim, oldest := base, uint32(0xFFFFFFFF)
	for w := 0; w < l.ways; w++ {
		i := base + w
		if l.tags[i] == 0 {
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if l.stamp[i] < oldest {
			victim, oldest = i, l.stamp[i]
		}
	}
	l.clock++
	l.tags[victim] = tag
	l.stamp[victim] = l.clock
	l.last = victim
	return false
}

func (l *level) reset() {
	for i := range l.tags {
		l.tags[i] = 0
		l.stamp[i] = 0
	}
	l.clock = 0
	l.last = 0
}

// Hierarchy is a live two-level data cache.
type Hierarchy struct {
	cfg   Config
	l1    *level
	llc   *level
	stats Stats
}

// New builds a hierarchy.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{cfg: cfg, l1: newLevel(cfg.L1D), llc: newLevel(cfg.LLC)}
}

// Config returns the configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes counters, keeping cache contents.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Reset clears contents and counters.
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.llc.reset()
	h.stats = Stats{}
}

// AccessLevel tells the caller which level satisfied an access.
type AccessLevel uint8

const (
	HitL1 AccessLevel = iota
	HitLLC
	HitDRAM
)

// AccessRepeatL1 charges n data accesses to physical address pa that are
// known to hit the L1: pa's line is the line the immediately preceding
// Access touched (hit or fill — either way the access left it
// most-recently-used in its set, and its way memoized in last), and no
// other hierarchy call has intervened. Counters and L1 LRU state advance
// exactly as n Access calls returning HitL1 would; the LLC is untouched,
// as it is on any L1 hit. The contract is verified under -tags simcheck,
// where a violation — a bulk caller charging a line its preceding probe
// did not touch — panics; normal builds trust the caller so the body
// stays under the inlining budget (a Failf call alone exceeds it), and
// the engines' differential suites enforce the same guarantee end to
// end.
func (h *Hierarchy) AccessRepeatL1(pa, n uint64) {
	h.stats.Accesses += n
	l := h.l1
	w := l.last
	if check.Enabled && l.tags[w] != pa>>LineShift+1 {
		panic(check.Failf("cache: bulk repeat hit on line %#x, but the preceding access touched line %#x",
			pa>>LineShift, l.tags[w]-1))
	}
	l.clock += uint32(n)
	l.stamp[w] = l.clock
}

// Access simulates a data access to physical address pa and reports
// which level served it. Fills are performed along the way (inclusive).
func (h *Hierarchy) Access(pa uint64) AccessLevel {
	h.stats.Accesses++
	line := pa >> LineShift
	if h.l1.access(line) {
		return HitL1
	}
	h.stats.L1Misses++
	if h.llc.access(line) {
		return HitLLC
	}
	h.stats.LLCMiss++
	return HitDRAM
}

// FootprintBytes reports the simulator-side bytes backing the cache
// hierarchy's tag and LRU arrays, for the stats.Footprint report. The
// representation predates the frame-metadata compaction and is
// unchanged by it.
func (h *Hierarchy) FootprintBytes() uint64 {
	var b uint64
	for _, l := range []*level{h.l1, h.llc} {
		if l != nil {
			b += uint64(len(l.tags))*8 + uint64(len(l.stamp))*4
		}
	}
	return b
}
