package cache

// Clone returns an independent deep copy of the hierarchy: same
// configuration, same resident lines, same LRU clocks and stamps (the
// level's memoized last-touched way included, which AccessRepeatL1's
// bulk contract depends on), same counters. A forked machine replays
// data-cache behaviour bit-exactly from the clone point.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		cfg:   h.cfg,
		l1:    h.l1.clone(),
		llc:   h.llc.clone(),
		stats: h.stats,
	}
}

// clone deep-copies one cache level, tag array and replacement state
// included.
func (l *level) clone() *level {
	return &level{
		setsMask: l.setsMask,
		ways:     l.ways,
		tags:     append([]uint64(nil), l.tags...),
		stamp:    append([]uint32(nil), l.stamp...),
		clock:    l.clock,
		last:     l.last,
	}
}
