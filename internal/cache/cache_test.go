package cache

import (
	"testing"
	"testing/quick"
)

func TestHaswellBuilds(t *testing.T) {
	h := New(Haswell())
	if h.Config().L1D.Bytes != 32<<10 {
		t.Fatalf("L1D = %d", h.Config().L1D.Bytes)
	}
}

func TestScaledClamps(t *testing.T) {
	for _, div := range []int{1, 2, 10, 1000000} {
		New(Scaled(Haswell(), div)) // must not panic
	}
}

func TestMissThenHits(t *testing.T) {
	h := New(Haswell())
	if lvl := h.Access(0x1000); lvl != HitDRAM {
		t.Fatalf("cold access = %v", lvl)
	}
	if lvl := h.Access(0x1000 + 63); lvl != HitL1 {
		t.Fatalf("same-line access = %v", lvl)
	}
	if lvl := h.Access(0x1000 + 64); lvl != HitDRAM {
		t.Fatalf("next-line access = %v", lvl)
	}
	s := h.Stats()
	if s.Accesses != 3 || s.L1Misses != 2 || s.LLCMiss != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestL1EvictionToLLC(t *testing.T) {
	cfg := Haswell()
	h := New(cfg)
	// Stream 4x the L1 capacity, then re-touch the start: L1 must miss
	// but the LLC (2.5MB) still holds it.
	lines := 4 * cfg.L1D.Bytes / 64
	for i := 0; i < lines; i++ {
		h.Access(uint64(i) * 64)
	}
	if lvl := h.Access(0); lvl != HitLLC {
		t.Fatalf("re-touch after L1 overflow = %v, want LLC hit", lvl)
	}
}

func TestLLCEvictionToDRAM(t *testing.T) {
	cfg := Scaled(Haswell(), 16)
	h := New(cfg)
	lines := 4 * cfg.LLC.Bytes / 64
	for i := 0; i < lines; i++ {
		h.Access(uint64(i) * 64)
	}
	if lvl := h.Access(0); lvl != HitDRAM {
		t.Fatalf("re-touch after LLC overflow = %v, want DRAM", lvl)
	}
}

func TestResetStats(t *testing.T) {
	h := New(Haswell())
	h.Access(0)
	h.ResetStats()
	if h.Stats().Accesses != 0 {
		t.Fatal("stats survived ResetStats")
	}
	if lvl := h.Access(0); lvl != HitL1 {
		t.Fatal("contents did not survive ResetStats")
	}
	h.Reset()
	if lvl := h.Access(0); lvl == HitL1 {
		t.Fatal("contents survived Reset")
	}
}

func TestMissRates(t *testing.T) {
	s := Stats{Accesses: 200, L1Misses: 50, LLCMiss: 20}
	if s.L1MissRate() != 0.25 || s.LLCMissRate() != 0.1 {
		t.Fatalf("rates = %v/%v", s.L1MissRate(), s.LLCMissRate())
	}
}

// TestQuickSecondAccessNeverDRAM: touching an address twice in a row
// must hit L1 the second time.
func TestQuickSecondAccessNeverDRAM(t *testing.T) {
	h := New(Haswell())
	f := func(pa uint64) bool {
		h.Access(pa)
		return h.Access(pa) == HitL1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatsMonotone: L1 misses bound LLC misses.
func TestQuickStatsMonotone(t *testing.T) {
	f := func(addrs []uint32) bool {
		h := New(Scaled(Haswell(), 8))
		for _, a := range addrs {
			h.Access(uint64(a))
		}
		s := h.Stats()
		return s.LLCMiss <= s.L1Misses && s.L1Misses <= s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
