// Package trace captures and analyzes memory access traces from the
// simulator. A trace is the raw material behind every claim in the
// paper: the reuse-distance profile of property-array accesses at page
// granularity explains the TLB miss rates of Fig. 3, and the page-size
// dependence of those distances explains why huge pages help.
//
// The package provides a compact binary trace format (writer/reader)
// and an exact LRU reuse-distance analysis (Mattson's stack algorithm
// implemented with a Fenwick tree, O(n log n)) from which miss rates of
// arbitrarily-sized fully-associative TLBs can be read off directly:
// a fully-associative LRU structure of S entries misses exactly the
// accesses whose reuse distance exceeds S.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Event is one recorded memory access.
type Event struct {
	VA  uint64
	Tag uint8 // client label, e.g. the array's StatsTag
}

var traceMagic = [4]byte{'G', 'M', 'T', '1'}

// Writer streams events to an io.Writer in GMT1 format.
type Writer struct {
	bw  *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes the header and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Trace records one access; it implements the machine layer's Tracer
// hook. Errors are sticky and surfaced by Close.
func (w *Writer) Trace(va uint64, tag uint8) {
	if w.err != nil {
		return
	}
	var buf [9]byte
	binary.LittleEndian.PutUint64(buf[:8], va)
	buf[8] = tag
	if _, err := w.bw.Write(buf[:]); err != nil {
		w.err = err
		return
	}
	w.n++
}

// Events returns how many events were recorded.
func (w *Writer) Events() uint64 { return w.n }

// Close flushes and reports any deferred error.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader iterates a GMT1 stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader validates the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != traceMagic {
		return nil, errors.New("trace: bad magic (not a GMT1 file)")
	}
	return &Reader{br: br}, nil
}

// Next returns the next event or io.EOF.
func (r *Reader) Next() (Event, error) {
	var buf [9]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Event{}, errors.New("trace: truncated event")
		}
		return Event{}, err
	}
	return Event{VA: binary.LittleEndian.Uint64(buf[:8]), Tag: buf[8]}, nil
}

// ForEach applies fn to every remaining event.
func (r *Reader) ForEach(fn func(Event)) error {
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		fn(e)
	}
}

// --- reuse distance analysis -------------------------------------------

// fenwick is a binary indexed tree over access timestamps.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum of [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Histogram is a reuse-distance distribution at some granularity. Bin i
// counts accesses with LRU stack distance exactly i (number of distinct
// other blocks touched since the previous access to the same block).
// Cold (first-touch) accesses are counted separately.
type Histogram struct {
	Cold     uint64
	Dist     []uint64 // truncated at MaxTracked; longer distances spill into Overflow
	Overflow uint64
	Total    uint64
}

// MaxTracked bounds the histogram's explicit bins; distances beyond it
// land in Overflow (they miss in any realistic TLB anyway).
const MaxTracked = 1 << 16

// MissRate returns the miss rate of a fully-associative LRU structure
// with the given capacity, per Mattson's inclusion property: an access
// hits iff its reuse distance is strictly less than the capacity.
func (h *Histogram) MissRate(capacity int) float64 {
	if h.Total == 0 {
		return 0
	}
	misses := h.Cold + h.Overflow
	if capacity > len(h.Dist) {
		capacity = len(h.Dist)
	}
	for d := capacity; d < len(h.Dist); d++ {
		misses += h.Dist[d]
	}
	return float64(misses) / float64(h.Total)
}

// DistinctBlocks returns how many unique blocks the trace touched.
func (h *Histogram) DistinctBlocks() uint64 { return h.Cold }

// ReuseDistances computes the page-granularity reuse-distance histogram
// of a VA stream, where each access is mapped to its block by dropping
// granularityShift low bits (12 for 4KB pages, 21 for 2MB pages). The
// filter, if non-zero-length, restricts the analysis to events whose
// Tag is in the set.
func ReuseDistances(events []Event, granularityShift uint, filter ...uint8) *Histogram {
	allowed := func(uint8) bool { return true }
	if len(filter) > 0 {
		set := make(map[uint8]bool, len(filter))
		for _, t := range filter {
			set[t] = true
		}
		allowed = func(t uint8) bool { return set[t] }
	}

	h := &Histogram{Dist: make([]uint64, MaxTracked)}
	lastSeen := make(map[uint64]int) // block → timestamp of last access
	ft := newFenwick(len(events) + 1)
	t := 0
	for _, e := range events {
		if !allowed(e.Tag) {
			continue
		}
		block := e.VA >> granularityShift
		if prev, seen := lastSeen[block]; seen {
			// Distance = number of distinct blocks accessed in
			// (prev, now) = live markers after prev.
			d := ft.sum(t) - ft.sum(prev)
			ft.add(prev, -1)
			if d < len(h.Dist) {
				h.Dist[d]++
			} else {
				h.Overflow++
			}
		} else {
			h.Cold++
		}
		ft.add(t, 1)
		lastSeen[block] = t
		t++
		h.Total++
	}
	return h
}
