package trace_test

import (
	"reflect"
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/machine"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/trace"
)

// TestTracerAttachMidGather is TestTracerAttachMidBulkRun's analogue for
// the gather engine: a ticker attaches the tracer in the middle of a
// long AccessGather batch, and from that access on the trace must be
// byte-identical to the scalar engine's. The gather engine flushes its
// accumulated segment state before every event dispatch and re-checks
// for observers afterwards, so the attach sees no in-flight state and
// the remaining batch degrades to per-access dispatch.
func TestTracerAttachMidGather(t *testing.T) {
	const attachAt = 200_000 // cycles: mid-way through the batch below

	// A neighbor-gather-shaped address vector: deterministic jumps
	// between lines of a 4MB array, each followed by a short sorted
	// same-line run.
	const batch = 1 << 17
	vas := make([]uint64, 0, batch)
	x := uint64(0x9E3779B97F4A7C15)
	for len(vas) < batch {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		off := x % (4<<20 - 64) &^ 7
		for j := uint64(0); j <= x>>61 && len(vas) < batch; j++ {
			vas = append(vas, off+j*8)
		}
	}

	run := func(gather bool) ([]trace.Event, uint64) {
		m := machine.New(machine.Config{
			MemoryBytes: 64 << 20,
			TLB:         tlb.Haswell(),
			Cache:       cache.Haswell(),
			Cost:        cost.Default(),
			Kernel:      oskernel.DefaultConfig(),
		})
		m.SetGather(gather)
		v := m.Space.Mmap("arr", 4<<20)
		m.RegisterArray(v)
		m.Touch(v.Base, v.Bytes)

		abs := make([]uint64, len(vas))
		for i, off := range vas {
			abs[i] = v.Base + off
		}

		col := &collector{}
		attached := false
		m.AddTicker(attachAt, func(now uint64) {
			if !attached {
				attached = true
				m.SetTracer(col)
			}
		})
		m.AccessGather(abs)
		return col.events, m.Cycles()
	}

	gatherEvents, gatherCycles := run(true)
	scalarEvents, scalarCycles := run(false)

	if gatherCycles != scalarCycles {
		t.Fatalf("cycles diverged: gather %d, scalar %d", gatherCycles, scalarCycles)
	}
	if len(gatherEvents) == 0 {
		t.Fatal("tracer never attached: the ticker did not fire mid-batch")
	}
	if len(gatherEvents) >= batch {
		t.Fatalf("tracer saw all %d accesses: attach was not mid-batch", len(gatherEvents))
	}
	if !reflect.DeepEqual(gatherEvents, scalarEvents) {
		t.Fatalf("traces diverged: gather %d events, scalar %d events; first gather %+v, first scalar %+v",
			len(gatherEvents), len(scalarEvents), gatherEvents[0], scalarEvents[0])
	}
}
