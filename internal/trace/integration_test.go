package trace_test

import (
	"testing"

	"graphmem/internal/analytics"
	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/gen"
	"graphmem/internal/machine"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/trace"
)

// collector keeps events in memory.
type collector struct{ events []trace.Event }

func (c *collector) Trace(va uint64, tag uint8) {
	c.events = append(c.events, trace.Event{VA: va, Tag: tag})
}

// TestReusePredictionMatchesTLBSimulation cross-validates the two
// independent models: the analytic fully-associative-LRU miss rate from
// exact reuse distances must approximate the set-associative TLB
// simulator's measured miss rate on the same BFS access stream. (They
// cannot agree exactly — associativity conflicts and the L1/STLB split
// differ — but they must tell the same story.)
func TestReusePredictionMatchesTLBSimulation(t *testing.T) {
	g := gen.Generate(gen.Kron25, gen.ScaleBench, false)
	cfg := tlb.Scaled(tlb.Haswell(), 16) // STLB=64 entries: real pressure at bench scale
	m := machine.New(machine.Config{
		MemoryBytes: 256 << 20,
		TLB:         cfg,
		Cache:       cache.Haswell(),
		Cost:        cost.Fast(),
		Kernel:      oskernel.BaselineConfig(),
	})
	img, err := analytics.NewImage(m, g, analytics.BFS)
	if err != nil {
		t.Fatal(err)
	}
	img.Init(analytics.Natural)

	col := &collector{}
	m.SetTracer(col)
	m.BeginPhase("kernel-measured")
	img.Run(analytics.DefaultRunOptions(g))
	m.SetTracer(nil)
	m.FinishPhases()

	ph, ok := m.Phase("kernel")
	if !ok {
		t.Fatal("kernel phase missing")
	}
	measured := ph.TLB.STLBMissRate()
	if measured < 0.005 {
		t.Skipf("too little TLB pressure to compare (miss=%v)", measured)
	}

	h := trace.ReuseDistances(col.events, 12)
	predicted := h.MissRate(cfg.STLB.Entries)

	ratio := predicted / measured
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("models disagree: predicted %.4f vs measured %.4f (ratio %.2f)",
			predicted, measured, ratio)
	}
}
