package trace_test

import (
	"reflect"
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/cost"
	"graphmem/internal/machine"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/trace"
)

// TestTracerAttachMidBulkRun is the regression test for observer
// registration racing an in-flight bulk segment: a ticker attaches the
// tracer in the middle of a long AccessRun, and from that access on the
// trace must be byte-identical to the scalar engine's. The bulk engine
// flushes its accumulated segment state before every event dispatch and
// re-checks for observers afterwards, so the attach sees no in-flight
// state and the remaining accesses dispatch per access.
func TestTracerAttachMidBulkRun(t *testing.T) {
	const attachAt = 200_000 // cycles: mid-way through the bulk run below

	run := func(bulk bool) ([]trace.Event, uint64) {
		m := machine.New(machine.Config{
			MemoryBytes: 64 << 20,
			TLB:         tlb.Haswell(),
			Cache:       cache.Haswell(),
			Cost:        cost.Default(),
			Kernel:      oskernel.DefaultConfig(),
		})
		m.SetBulk(bulk)
		v := m.Space.Mmap("arr", 4<<20)
		m.RegisterArray(v)
		m.Touch(v.Base, v.Bytes)

		col := &collector{}
		attached := false
		m.AddTicker(attachAt, func(now uint64) {
			if !attached {
				attached = true
				m.SetTracer(col)
			}
		})
		m.AccessRun(v.Base, 1<<19, 4) // one long sequential stream
		return col.events, m.Cycles()
	}

	bulkEvents, bulkCycles := run(true)
	scalarEvents, scalarCycles := run(false)

	if bulkCycles != scalarCycles {
		t.Fatalf("cycles diverged: bulk %d, scalar %d", bulkCycles, scalarCycles)
	}
	if len(bulkEvents) == 0 {
		t.Fatal("tracer never attached: the ticker did not fire mid-run")
	}
	if len(bulkEvents) >= 1<<19 {
		t.Fatalf("tracer saw all %d accesses: attach was not mid-run", len(bulkEvents))
	}
	if !reflect.DeepEqual(bulkEvents, scalarEvents) {
		t.Fatalf("traces diverged: bulk %d events, scalar %d events; first bulk %+v, first scalar %+v",
			len(bulkEvents), len(scalarEvents), bulkEvents[0], scalarEvents[0])
	}
}
