package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader hardens the GMT1 parser against arbitrary input.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	w.Trace(0xABC000, 3)
	w.Trace(0xDEF000, 1)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:5])
	f.Add([]byte("GMT1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			_, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // reported, fine
			}
		}
	})
}
