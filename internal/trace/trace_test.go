package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{{0x1000, 1}, {0x2fff, 2}, {0xdeadbeef000, 255}}
	for _, e := range events {
		w.Trace(e.VA, e.Tag)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 3 {
		t.Fatalf("events = %d", w.Events())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := r.ForEach(func(e Event) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Trace(1, 1)
	w.Close()
	truncated := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatal("truncated event not detected")
	}
}

// evs builds page-granularity events from page numbers.
func evs(pages ...uint64) []Event {
	out := make([]Event, len(pages))
	for i, p := range pages {
		out[i] = Event{VA: p << 12}
	}
	return out
}

func TestReuseDistanceKnownSequence(t *testing.T) {
	// Access pattern: A B C A  → A's reuse distance is 2 (B, C).
	h := ReuseDistances(evs(1, 2, 3, 1), 12)
	if h.Cold != 3 {
		t.Fatalf("cold = %d", h.Cold)
	}
	if h.Dist[2] != 1 {
		t.Fatalf("dist[2] = %d; histogram %v", h.Dist[2], h.Dist[:4])
	}
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
}

func TestReuseDistanceImmediateReuse(t *testing.T) {
	h := ReuseDistances(evs(7, 7, 7), 12)
	if h.Cold != 1 || h.Dist[0] != 2 {
		t.Fatalf("cold=%d dist0=%d", h.Cold, h.Dist[0])
	}
}

func TestReuseDistanceSameDistanceTwice(t *testing.T) {
	// A B A B: both reuses have distance 1.
	h := ReuseDistances(evs(1, 2, 1, 2), 12)
	if h.Dist[1] != 2 {
		t.Fatalf("dist[1] = %d", h.Dist[1])
	}
}

func TestMissRateSemantics(t *testing.T) {
	// Cyclic pattern over 4 pages, repeated: distances are all 3.
	seq := []uint64{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}
	h := ReuseDistances(evs(seq...), 12)
	// Capacity 4 holds the whole set: only cold misses.
	if got, want := h.MissRate(4), 4.0/12; math.Abs(got-want) > 1e-12 {
		t.Fatalf("miss@4 = %v, want %v", got, want)
	}
	// Capacity 3 thrashes completely (LRU on a cyclic scan).
	if got := h.MissRate(3); got != 1 {
		t.Fatalf("miss@3 = %v, want 1", got)
	}
}

func TestGranularityChangesDistances(t *testing.T) {
	// Two 4KB pages inside one 2MB region: at 2MB granularity the
	// second access is a reuse at distance 0, at 4KB it is cold.
	events := []Event{{VA: 0x0}, {VA: 0x1000}}
	h4k := ReuseDistances(events, 12)
	h2m := ReuseDistances(events, 21)
	if h4k.Cold != 2 {
		t.Fatalf("4k cold = %d", h4k.Cold)
	}
	if h2m.Cold != 1 || h2m.Dist[0] != 1 {
		t.Fatalf("2m: cold=%d dist0=%d", h2m.Cold, h2m.Dist[0])
	}
}

func TestTagFilter(t *testing.T) {
	events := []Event{{0x1000, 1}, {0x1000, 2}, {0x1000, 1}}
	h := ReuseDistances(events, 12, 1)
	if h.Total != 2 || h.Cold != 1 || h.Dist[0] != 1 {
		t.Fatalf("filtered histogram wrong: %+v", h)
	}
}

// TestQuickDistinctBlocksMatchesColdCount: cold misses equal the number
// of unique blocks for any trace.
func TestQuickDistinctBlocksMatchesColdCount(t *testing.T) {
	f := func(pages []uint16) bool {
		events := make([]Event, len(pages))
		uniq := make(map[uint16]bool)
		for i, p := range pages {
			events[i] = Event{VA: uint64(p) << 12}
			uniq[p] = true
		}
		h := ReuseDistances(events, 12)
		return h.Cold == uint64(len(uniq)) && h.Total == uint64(len(events))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMissRateMonotone: larger capacity never raises the miss rate.
func TestQuickMissRateMonotone(t *testing.T) {
	f := func(pages []uint8) bool {
		events := make([]Event, len(pages))
		for i, p := range pages {
			events[i] = Event{VA: uint64(p) << 12}
		}
		h := ReuseDistances(events, 12)
		prev := 1.1
		for _, c := range []int{1, 2, 4, 8, 16, 32, 64, 256} {
			m := h.MissRate(c)
			if m > prev+1e-12 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMissRateAgreesWithDirectLRU cross-checks the Mattson histogram
// against a brute-force fully-associative LRU simulation.
func TestMissRateAgreesWithDirectLRU(t *testing.T) {
	// Deterministic pseudo-random page stream.
	state := uint64(99)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % 64
	}
	var pages []uint64
	for i := 0; i < 4000; i++ {
		pages = append(pages, next())
	}
	h := ReuseDistances(evs(pages...), 12)

	for _, capacity := range []int{4, 16, 48} {
		misses := 0
		var lru []uint64 // front = most recent
		for _, p := range pages {
			found := -1
			for i, q := range lru {
				if q == p {
					found = i
					break
				}
			}
			if found < 0 {
				misses++
				lru = append([]uint64{p}, lru...)
				if len(lru) > capacity {
					lru = lru[:capacity]
				}
			} else {
				lru = append(lru[:found], lru[found+1:]...)
				lru = append([]uint64{p}, lru...)
			}
		}
		want := float64(misses) / float64(len(pages))
		got := h.MissRate(capacity)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("capacity %d: Mattson %v != direct %v", capacity, got, want)
		}
	}
}

func TestMissRateCapacityAboveTracked(t *testing.T) {
	h := ReuseDistances(evs(1, 2, 1), 12)
	// Any capacity beyond the tracked range behaves like infinity:
	// only cold misses remain.
	if got := h.MissRate(MaxTracked * 4); got != 2.0/3 {
		t.Fatalf("miss at huge capacity = %v", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := ReuseDistances(nil, 12)
	if h.MissRate(8) != 0 || h.Total != 0 {
		t.Fatal("empty trace histogram not zero")
	}
}
