package trace_test

import (
	"fmt"

	"graphmem/internal/trace"
)

// ExampleReuseDistances shows how reuse distances predict TLB behaviour:
// a cyclic scan over 4 pages hits in any LRU structure with ≥4 entries
// and thrashes completely below that.
func ExampleReuseDistances() {
	var events []trace.Event
	for rep := 0; rep < 3; rep++ {
		for page := uint64(0); page < 4; page++ {
			events = append(events, trace.Event{VA: page << 12})
		}
	}
	h := trace.ReuseDistances(events, 12)
	fmt.Printf("miss rate with 4 TLB entries: %.2f\n", h.MissRate(4))
	fmt.Printf("miss rate with 3 TLB entries: %.2f\n", h.MissRate(3))
	// Output:
	// miss rate with 4 TLB entries: 0.33
	// miss rate with 3 TLB entries: 1.00
}
