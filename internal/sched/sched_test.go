package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var n atomic.Int64
		const tasks = 100
		for i := 0; i < tasks; i++ {
			p.Go(func(int) { n.Add(1) })
		}
		p.Wait()
		if n.Load() != tasks {
			t.Errorf("workers=%d: ran %d tasks, want %d", workers, n.Load(), tasks)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
		s := p.Stats()
		if s.Completed != tasks || s.Queued != 0 || s.Active != 0 {
			t.Errorf("workers=%d: stats after barrier = %+v", workers, s)
		}
		p.Close()
	}
}

func TestPoolWorkerIndexInRange(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	var bad atomic.Int64
	for i := 0; i < 64; i++ {
		p.Go(func(w int) {
			if w < 0 || w >= workers {
				bad.Add(1)
			}
		})
	}
	p.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d tasks saw a worker index outside [0,%d)", bad.Load(), workers)
	}
}

func TestPoolWaitIsBarrierAndReusable(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var phase1 atomic.Int64
	for i := 0; i < 10; i++ {
		p.Go(func(int) { phase1.Add(1) })
	}
	p.Wait()
	if phase1.Load() != 10 {
		t.Fatalf("Wait returned with %d/10 phase-1 tasks done", phase1.Load())
	}
	// Pool stays usable after a barrier.
	var phase2 atomic.Int64
	p.Go(func(int) { phase2.Add(1) })
	p.Wait()
	if phase2.Load() != 1 {
		t.Fatalf("phase-2 task did not run")
	}
}

func TestPoolGoAfterClosePanics(t *testing.T) {
	p := NewPool(1)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Error("Go on a closed pool did not panic")
		}
	}()
	p.Go(func(int) {})
}

func TestPoolMinimumOneWorker(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Errorf("Workers() = %d, want 1", p.Workers())
	}
	done := false
	p.Go(func(int) { done = true })
	p.Wait()
	if !done {
		t.Error("task did not run on the minimum pool")
	}
}

func TestCacheMemoizes(t *testing.T) {
	var c Cache[string, *int]
	computes := 0
	get := func(k string) *int {
		return c.Get(k, func() *int { computes++; v := len(k); return &v })
	}
	a1, a2, b := get("a"), get("a"), get("bb")
	if computes != 2 {
		t.Errorf("computes = %d, want 2", computes)
	}
	if a1 != a2 {
		t.Error("repeated Get returned a different pointer")
	}
	if *b != 2 {
		t.Errorf("*b = %d, want 2", *b)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
	if v, ok := c.Peek("a"); !ok || v != a1 {
		t.Error("Peek missed a resolved entry")
	}
	if _, ok := c.Peek("zzz"); ok {
		t.Error("Peek invented an entry")
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Error(err)
	}
}

// TestCacheSingleComputeUnderContention hammers one key from many
// goroutines: compute must run exactly once and every requester must see
// the identical pointer. Run with -race this is the core promise-cache
// soundness test.
func TestCacheSingleComputeUnderContention(t *testing.T) {
	var c Cache[int, *int]
	var computes atomic.Int64
	const goroutines = 32
	results := make([]*int, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			results[i] = c.Get(7, func() *int {
				computes.Add(1)
				v := 42
				return &v
			})
		}(i)
	}
	start.Done()
	done.Wait()
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", computes.Load())
	}
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw a different pointer", i)
		}
	}
	s := c.Stats()
	if s.Entries != 1 || s.Resolved != 1 || s.Hits != goroutines-1 {
		t.Errorf("stats = %+v, want 1 entry, 1 resolved, %d hits", s, goroutines-1)
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Error(err)
	}
}

// TestCacheRecursiveGet mirrors the graph cache's pattern: computing one
// key requests another key from inside compute.
func TestCacheRecursiveGet(t *testing.T) {
	var c Cache[int, int]
	var fib func(n int) int
	fib = func(n int) int {
		return c.Get(n, func() int {
			if n < 2 {
				return n
			}
			return fib(n-1) + fib(n-2)
		})
	}
	if got := fib(10); got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
	if c.Len() != 11 {
		t.Errorf("Len() = %d, want 11", c.Len())
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Error(err)
	}
}

// TestCacheOnPool drives the cache from pool workers the way a campaign
// does: many tasks, few keys, every value pointer must agree per key.
func TestCacheOnPool(t *testing.T) {
	var c Cache[int, *int]
	p := NewPool(4)
	defer p.Close()
	const tasks, keys = 200, 5
	results := make([]*int, tasks)
	for i := 0; i < tasks; i++ {
		p.Go(func(int) {
			k := i % keys
			results[i] = c.Get(k, func() *int { v := k * k; return &v })
		})
	}
	p.Wait()
	for i := 0; i < tasks; i++ {
		if results[i] != results[i%keys] {
			t.Fatalf("task %d saw a different pointer for key %d", i, i%keys)
		}
		if *results[i] != (i%keys)*(i%keys) {
			t.Fatalf("task %d saw value %d", i, *results[i])
		}
	}
	if c.Len() != keys {
		t.Errorf("Len() = %d, want %d", c.Len(), keys)
	}
	if err := c.CheckInvariants(true); err != nil {
		t.Error(err)
	}
}
