// Package sched is the deterministic parallel campaign scheduler: a
// fixed-size worker pool plus a concurrency-safe promise cache, the two
// pieces that let the experiment harness execute independent simulation
// cells (app × dataset × reorder × policy × environment) concurrently
// without touching the simulator's determinism contract.
//
// The design splits "what runs" from "what is reported":
//
//   - Each simulation cell owns its machine.Machine and is a pure
//     function of its RunSpec, so cells may execute in any order, on
//     any worker, and the cycle counts they produce are identical to a
//     single-threaded run. Nothing in this package is allowed to feed
//     scheduling state (worker ids, completion order, queue depth) back
//     into a simulation.
//
//   - Shared memoization goes through Cache, a promise cache: the first
//     requester of a key installs a promise and computes the value in
//     its own goroutine; later requesters block on that same promise
//     and receive the identical pointer. Computing in the requester's
//     goroutine (instead of enqueueing onto the pool) is what makes the
//     promise protocol deadlock-free: a worker blocked on a promise is
//     always waiting on another *running* goroutine, never on queue
//     capacity.
//
//   - Result consumption (table rendering) stays sequential and ordered
//     by the experiment registry, so campaign output is byte-identical
//     for every worker count.
//
// Under `-tags simcheck` the pool and cache self-audit through
// check.Audit: task conservation (submitted = queued + active +
// completed), worker-count bounds, and promise-resolution accounting.
// See DESIGN.md §5 for the campaign protocol built on top.
package sched

import (
	"fmt"
	"sync"

	"graphmem/internal/check"
)

// Pool runs submitted tasks on a fixed set of worker goroutines. Tasks
// receive their worker's index (0..Workers-1) — for operator-facing
// progress lines only; feeding it into simulation state would break the
// determinism-under-parallelism guarantee (simlint guards the cache
// side of that contract as SL006).
//
// Submission never blocks: tasks queue without bound, which is safe
// because the campaign frontier is finite and declared up front. A Pool
// must be finished with Close; Wait may be called any number of times
// between submissions as a barrier.
type Pool struct {
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func(worker int)
	closed bool

	// Task conservation counters, guarded by mu:
	// submitted == len(queue) + active + completed at all times.
	submitted int
	active    int
	completed int

	inflight sync.WaitGroup // open (queued or running) tasks
	exited   sync.WaitGroup // worker goroutines
}

// NewPool starts a pool with the given number of workers (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.exited.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Go submits one task. It panics if the pool is already closed.
func (p *Pool) Go(fn func(worker int)) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic(check.Failf("sched: Go on closed pool"))
	}
	p.submitted++
	p.inflight.Add(1)
	p.queue = append(p.queue, fn)
	p.cond.Signal()
	p.mu.Unlock()
}

// RunN submits fn(0) … fn(n-1) as n tasks and waits for all of them —
// one bulk-synchronous step, the shape of the sharded machine engine's
// phase barriers (core). fn receives the task index i, not the worker
// index: which worker runs which task is scheduling state and must not
// leak into simulation.
func (p *Pool) RunN(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		i := i
		p.Go(func(int) { fn(i) })
	}
	p.Wait()
}

// Wait blocks until every task submitted so far has completed, then
// audits the pool's conservation invariants (under -tags simcheck). The
// pool remains usable for further submissions.
func (p *Pool) Wait() {
	p.inflight.Wait()
	check.Audit("sched.pool", p.CheckInvariants)
}

// Close waits for all tasks, shuts the workers down, and audits. After
// Close, Go panics.
func (p *Pool) Close() {
	p.inflight.Wait()
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.exited.Wait()
	check.Audit("sched.pool", p.CheckInvariants)
}

func (p *Pool) worker(id int) {
	defer p.exited.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		fn := p.queue[0]
		p.queue = p.queue[1:]
		p.active++
		p.mu.Unlock()

		fn(id)

		p.mu.Lock()
		p.active--
		p.completed++
		p.mu.Unlock()
		p.inflight.Done()
	}
}

// PoolStats is a snapshot of the pool's task accounting.
type PoolStats struct {
	Workers   int
	Submitted int
	Queued    int
	Active    int
	Completed int
}

// Stats returns a consistent snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Workers:   p.workers,
		Submitted: p.submitted,
		Queued:    len(p.queue),
		Active:    p.active,
		Completed: p.completed,
	}
}

// CheckInvariants verifies task conservation: every submitted task is
// queued, active, or completed; active stays within the worker count.
// It is the audit body invoked by Wait and Close under -tags simcheck,
// and is exported so tests can call it directly.
func (p *Pool) CheckInvariants() error {
	s := p.Stats()
	if s.Active < 0 || s.Active > s.Workers {
		return fmt.Errorf("active workers %d outside [0,%d]", s.Active, s.Workers)
	}
	if s.Queued+s.Active+s.Completed != s.Submitted {
		return fmt.Errorf("task conservation: queued %d + active %d + completed %d != submitted %d",
			s.Queued, s.Active, s.Completed, s.Submitted)
	}
	return nil
}

// Cache is a concurrency-safe promise cache keyed by K. The first Get
// for a key installs a promise and runs compute in the calling
// goroutine; concurrent Gets for the same key block until that compute
// returns and then observe the identical value. A key is computed at
// most once for the cache's lifetime — the concurrent generalization of
// the plain-map memoization the experiment suite used when campaigns
// were single-threaded.
//
// The zero value is ready to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*promise[V]

	// Request accounting, guarded by mu: misses is the number of
	// promises installed (== computes started), hits the number of Gets
	// that found an existing promise, and waits the subset of hits that
	// arrived before the promise resolved (true promise-protocol
	// blocking, the case the -race tests hammer).
	misses int
	hits   int
	waits  int
}

type promise[V any] struct {
	once     sync.Once
	val      V
	resolved bool // written inside once, read after Do returns or under Cache.mu
}

// Get returns the cached value for k, computing it via compute if this
// is the first request. compute runs exactly once per key; concurrent
// requesters block until it returns. compute may itself call Get with a
// *different* key (the graph cache recurses from a reordered variant to
// its base graph); a same-key reentrant Get would deadlock, as any
// self-dependent memoization must.
func (c *Cache[K, V]) Get(k K, compute func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*promise[V])
	}
	pr, ok := c.m[k]
	if ok {
		c.hits++
		if !pr.resolved {
			c.waits++
		}
	} else {
		pr = &promise[V]{}
		c.m[k] = pr
		c.misses++
	}
	c.mu.Unlock()

	pr.once.Do(func() {
		pr.val = compute()
		c.mu.Lock()
		pr.resolved = true
		c.mu.Unlock()
	})
	return pr.val
}

// Peek returns the value for k only if it has already been computed.
func (c *Cache[K, V]) Peek(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	pr, ok := c.m[k]
	if !ok || !pr.resolved {
		return zero, false
	}
	return pr.val, true
}

// Len reports the number of resolved entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var prs []*promise[V]
	for _, pr := range c.m {
		prs = append(prs, pr)
	}
	n := 0
	for _, pr := range prs {
		if pr.resolved {
			n++
		}
	}
	return n
}

// CacheStats is a snapshot of the cache's request accounting.
type CacheStats struct {
	Entries  int // promises installed
	Resolved int // promises whose compute has returned
	Hits     int // Gets that found an existing promise
	Waits    int // hits that blocked on an unresolved promise
}

// Stats returns a consistent snapshot of the cache's counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var prs []*promise[V]
	for _, pr := range c.m {
		prs = append(prs, pr)
	}
	s := CacheStats{Entries: len(prs), Hits: c.hits, Waits: c.waits}
	for _, pr := range prs {
		if pr.resolved {
			s.Resolved++
		}
	}
	return s
}

// CheckInvariants verifies the promise accounting: installed promises
// match recorded misses, and waits never exceed hits. With quiesced set
// (no Get in flight — the state at a campaign barrier), every installed
// promise must also be resolved: an unresolved promise with no computer
// would block every future requester forever.
func (c *Cache[K, V]) CheckInvariants(quiesced bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) != c.misses {
		return fmt.Errorf("promise conservation: %d entries != %d misses", len(c.m), c.misses)
	}
	if c.waits > c.hits {
		return fmt.Errorf("waits %d > hits %d", c.waits, c.hits)
	}
	if quiesced {
		var prs []*promise[V]
		for _, pr := range c.m {
			prs = append(prs, pr)
		}
		for _, pr := range prs {
			if !pr.resolved {
				return fmt.Errorf("quiesced cache holds an unresolved promise")
			}
		}
	}
	return nil
}
