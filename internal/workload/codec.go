package workload

import (
	"sort"

	"graphmem/internal/ckpt"
	"graphmem/internal/memsys"
)

// Checkpoint codec (DESIGN.md §5e). Only the two interference sources a
// snapshot-safe machine can carry are serializable: Memhog (static pin
// set) and PageCache (resident file pages). A Churner mutates memory
// between accesses, which is exactly what core.SnapshotSafe forbids, so
// it has no codec — a machine holding one is never staged for the
// store in the first place.
//
// Both decoders validate the pin/resident sets against the node they
// are handed: frames in range, runs sorted+disjoint, counters
// consistent. The frames themselves were already decoded (with owner
// refs pointing at these owners' table slots) by memsys.

// Encode serializes the pin set. The mem binding is supplied by the
// caller on decode.
func (h *Memhog) Encode(e *ckpt.Encoder) {
	_ = h.mem // binding; the loaded hog is handed its decoded node
	ckpt.EncodeSlice(e, h.runs)
	e.Int(h.pages)
}

// Decode is Encode's inverse, into a fresh receiver bound to the
// caller's decoded node. On any decoder error the receiver must be
// discarded.
func (h *Memhog) Decode(d *ckpt.Decoder, mem *memsys.Memory) {
	h.mem = mem
	h.runs = ckpt.DecodeSlice[pinRun](d)
	h.pages = d.Int()
	if d.Err() != nil {
		return
	}
	// remove/insert binary-search over sorted, disjoint, non-touching
	// maximal runs; anything else corrupts the pin set silently.
	total := mem.TotalPages()
	var sum uint64
	prevEnd := uint64(0)
	for i, r := range h.runs {
		end := uint64(r.start) + uint64(r.n)
		if r.n == 0 || (i > 0 && uint64(r.start) <= prevEnd) || end > total {
			d.Failf("workload: memhog run [%d,+%d) empty, out of order, or out of range", r.start, r.n)
			return
		}
		prevEnd = end
		sum += uint64(r.n)
	}
	if sum != uint64(h.pages) || h.pages < 0 {
		d.Failf("workload: memhog page counter %d but runs hold %d pages", h.pages, sum)
	}
}

// Encode serializes the resident set in ascending frame order (the map
// itself has no stable order).
func (pc *PageCache) Encode(e *ckpt.Encoder) {
	_ = pc.mem // binding; the loaded cache is handed its decoded node
	frames := make([]memsys.Frame, 0, len(pc.frames))
	for f := range pc.frames {
		frames = append(frames, f)
	}
	sort.Slice(frames, func(a, b int) bool { return frames[a] < frames[b] })
	ckpt.EncodeSlice(e, frames)
}

// Decode is Encode's inverse, into a fresh receiver bound to the
// caller's decoded node. On any decoder error the receiver must be
// discarded.
func (pc *PageCache) Decode(d *ckpt.Decoder, mem *memsys.Memory) {
	pc.mem = mem
	frames := ckpt.DecodeSlice[memsys.Frame](d)
	if d.Err() != nil {
		return
	}
	total := mem.TotalPages()
	pc.frames = make(map[memsys.Frame]struct{}, len(frames))
	for i, f := range frames {
		if uint64(f) >= total || (i > 0 && f <= frames[i-1]) {
			d.Failf("workload: page cache frame %d out of order or out of range", f)
			return
		}
		pc.frames[f] = struct{}{}
	}
}
