// Package workload recreates the paper's experiment environments: the
// memhog utility that constrains free memory (§4.3.1), the frag utility
// that poisons 2MB regions with non-movable pages (§4.4.1), the ambient
// fragmentation of a long-running system, and the page-cache
// interference of naive data loading (§4.3).
//
// Each helper mutates only the memsys.Memory it is handed, and placement
// decisions come from deterministic hashes of the caller's seed — never
// from shared or global state. Concurrent campaign cells therefore
// build identical hostile environments from identical parameters, even
// though every cell ages and fragments its own private machine.
package workload

import (
	"sort"

	"graphmem/internal/check"
	"graphmem/internal/memsys"
)

// AgeSystem emulates a host that has been up for a while: kernel
// (non-movable) 4KB allocations end up scattered across physical memory,
// so a fraction of all 2MB regions can never be coalesced into huge
// pages — the paper's "fragmentation arises from non-movable pages for
// memory directly used by the kernel ... which typically worsens over
// time". poisonFraction selects the fraction of regions receiving one
// unmovable page; placement inside each region is a deterministic hash.
// Returns the number of regions poisoned.
func AgeSystem(mem *memsys.Memory, poisonFraction float64, seed uint64) int {
	if poisonFraction <= 0 {
		return 0
	}
	if poisonFraction > 1 {
		poisonFraction = 1
	}
	regions := mem.TotalPages() / memsys.HugePages
	// Stratified placement: poisons land at a fixed stride with a
	// seed-derived phase, so every window of memory sees the same
	// density. (Pure Bernoulli sampling clumps badly at the few-hundred
	// region scale of a simulated node, which would make the free tail
	// left by memhog see anywhere between 0% and 3× the intended
	// non-movable density depending on the seed.)
	stride := uint64(1/poisonFraction + 0.5)
	if stride < 1 {
		stride = 1
	}
	phase := mix64(seed) % stride
	poisoned := 0
	for r := uint64(0); r < regions; r++ {
		if r%stride != phase {
			continue
		}
		h := mix64(r ^ seed)
		// Place one unmovable page at a hashed offset inside region r —
		// the residue of a kernel allocation that landed there long
		// ago and will never move.
		base := memsys.Frame(r * memsys.HugePages)
		keep := memsys.Frame((h >> 32) % memsys.HugePages)
		if mem.AllocAt(base+keep, 0, memsys.Unmovable, nil, 0) {
			poisoned++
		}
	}
	return poisoned
}

// mix64 is the SplitMix64 finalizer, used as a deterministic hash.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Memhog pins bytes of memory, like the paper's `memhog ... | mlock`
// combination: the pages cannot be reclaimed or swapped, but compaction
// may still migrate them. It allocates from the bottom of memory up
// (page-at-a-time like the real program's sequential touch), so the
// remaining free memory is whatever the aged system left at the top.
//
// The pin set is stored as sorted, disjoint, maximal runs of contiguous
// frames rather than one entry per page: a hog pinning most of a node
// holds a handful of runs (the gaps are AgeSystem's litter), so the
// bookkeeping is a few dozen bytes where a dense frame list would cost
// 4 B for every pinned page — at paper scale, hundreds of megabytes.
// The frame cookie is the frame's own number, which is what lets
// FrameMoved verify membership without a per-page index.
type Memhog struct {
	mem   *memsys.Memory
	runs  []pinRun
	pages int
}

// pinRun is one maximal run of contiguous pinned frames,
// [start, start+n).
type pinRun struct {
	start memsys.Frame
	n     uint32
}

// FrameMoved implements memsys.Owner: compaction may migrate mlocked
// pages, and the hog must track where its memory went.
func (h *Memhog) FrameMoved(old, new memsys.Frame, cookie uint64) {
	if cookie != uint64(old) || !h.remove(old) {
		panic(check.Failf("workload: memhog frame bookkeeping out of sync"))
	}
	h.insert(new)
	// Compaction carried the old frame's cookie over to the new frame;
	// re-key it to the new frame number so the next move verifies.
	// (Re-registering a Pinned frame does not make it reclaimable.)
	h.mem.SetOwner(new, h, uint64(new))
}

// remove deletes frame f from the run set, splitting a run if f is
// interior. Reports whether f was actually pinned.
func (h *Memhog) remove(f memsys.Frame) bool {
	i := sort.Search(len(h.runs), func(i int) bool {
		return h.runs[i].start+memsys.Frame(h.runs[i].n) > f
	})
	if i == len(h.runs) || f < h.runs[i].start {
		return false
	}
	r := &h.runs[i]
	switch {
	case r.n == 1:
		h.runs = append(h.runs[:i], h.runs[i+1:]...)
	case f == r.start:
		r.start++
		r.n--
	case f == r.start+memsys.Frame(r.n)-1:
		r.n--
	default:
		tail := pinRun{start: f + 1, n: uint32(r.start+memsys.Frame(r.n)-f) - 1}
		r.n = uint32(f - r.start)
		h.runs = append(h.runs, pinRun{})
		copy(h.runs[i+2:], h.runs[i+1:])
		h.runs[i+1] = tail
	}
	h.pages--
	return true
}

// insert adds frame f to the run set, coalescing with adjacent runs.
func (h *Memhog) insert(f memsys.Frame) {
	i := sort.Search(len(h.runs), func(i int) bool { return h.runs[i].start > f })
	joinPrev := i > 0 && h.runs[i-1].start+memsys.Frame(h.runs[i-1].n) == f
	joinNext := i < len(h.runs) && h.runs[i].start == f+1
	switch {
	case joinPrev && joinNext:
		h.runs[i-1].n += 1 + h.runs[i].n
		h.runs = append(h.runs[:i], h.runs[i+1:]...)
	case joinPrev:
		h.runs[i-1].n++
	case joinNext:
		h.runs[i].start--
		h.runs[i].n++
	default:
		h.runs = append(h.runs, pinRun{})
		copy(h.runs[i+1:], h.runs[i:])
		h.runs[i] = pinRun{start: f, n: 1}
	}
	h.pages++
}

// FrameReclaimed implements memsys.Owner: mlocked memory is never
// reclaimed.
func (h *Memhog) FrameReclaimed(f memsys.Frame, cookie uint64) bool { return false }

var _ memsys.Owner = (*Memhog)(nil)
var _ memsys.FootprintReporter = (*Memhog)(nil)

// NewMemhog starts a memhog holding the given footprint. Frames are
// taken in ascending physical address order — the footprint a process
// gets when it sequentially touches a mostly-idle machine — so the
// remaining free memory is the top of the node, complete with whatever
// non-movable litter AgeSystem scattered there. (Letting the buddy
// allocator choose would have memhog soak up every aged fragment first
// and hand the application an artificially pristine tail.) It panics if
// memory cannot satisfy the request — a mis-sized experiment.
func NewMemhog(mem *memsys.Memory, bytes uint64) *Memhog {
	pages := int(bytes / memsys.PageSize)
	h := &Memhog{mem: mem}
	total := memsys.Frame(mem.TotalPages())
	for f := memsys.Frame(0); h.pages < pages && f < total; f++ {
		if !mem.AllocAt(f, 0, memsys.Pinned, h, uint64(f)) {
			continue
		}
		// Ascending scan: the new frame either extends the last run or
		// starts a new one past a skipped (occupied) gap.
		if n := len(h.runs); n > 0 && h.runs[n-1].start+memsys.Frame(h.runs[n-1].n) == f {
			h.runs[n-1].n++
		} else {
			h.runs = append(h.runs, pinRun{start: f, n: 1})
		}
		h.pages++
	}
	if h.pages < pages {
		panic(check.Failf("workload: memhog pinned only %d/%d pages", h.pages, pages))
	}
	return h
}

// PinnedBytes returns the held footprint.
func (h *Memhog) PinnedBytes() uint64 {
	return uint64(h.pages) * memsys.PageSize
}

// Release frees everything the memhog holds, in ascending frame order.
func (h *Memhog) Release() {
	for _, r := range h.runs {
		for i := memsys.Frame(0); i < memsys.Frame(r.n); i++ {
			h.mem.Free(r.start+i, 0)
		}
	}
	h.runs = h.runs[:0]
	h.pages = 0
}

// FootprintReport implements memsys.FootprintReporter: the run set's
// cost versus the dense per-page frame list it replaced.
func (h *Memhog) FootprintReport() (string, uint64, uint64) {
	return "workload/memhog", uint64(len(h.runs)) * 8, uint64(h.pages) * 4
}

// Fragment reproduces the paper's frag utility: allocate 2MB unmovable
// blocks until `level` (0..1) of the currently-available memory is
// held, split each block into 512 4KB pages, then free pages 2–512 so
// only the first 4KB of every region stays allocated (non-movable).
// The result: `level` of the available memory has no contiguous 2MB
// region. Returns the number of regions fragmented.
func Fragment(mem *memsys.Memory, level float64) int {
	if level <= 0 {
		return 0
	}
	if level > 1 {
		level = 1
	}
	target := uint64(level * float64(mem.FreePages()))
	var taken uint64
	var blocks []memsys.Frame
	for taken+memsys.HugePages <= target {
		f := mem.Alloc(memsys.HugeOrder, memsys.Unmovable, nil, 0)
		if f == memsys.NoFrame {
			break
		}
		blocks = append(blocks, f)
		taken += memsys.HugePages
	}
	for _, f := range blocks {
		mem.SplitAllocated(f, memsys.HugeOrder)
		for i := memsys.Frame(1); i < memsys.HugePages; i++ {
			mem.Free(f+i, 0)
		}
	}
	return len(blocks)
}

// PageCache models the single-use page cache the paper warns about: when
// graph files are read without direct I/O or remote-node tmpfs, the OS
// caches the file contents locally, consuming free memory exactly when
// the application needs it for huge pages. The cached pages are
// reclaimable (dropped on demand), but Linux's fault path will not stall
// to reclaim them for non-madvised THP faults — so they silently
// suppress huge page allocation.
type PageCache struct {
	mem    *memsys.Memory
	frames map[memsys.Frame]struct{}
}

// NewPageCache creates an empty cache on mem.
func NewPageCache(mem *memsys.Memory) *PageCache {
	return &PageCache{mem: mem, frames: make(map[memsys.Frame]struct{})}
}

// Fill caches bytes of file data (e.g. the CSR files during loading),
// stopping early if memory runs out. Returns bytes actually cached.
func (pc *PageCache) Fill(bytes uint64) uint64 {
	pages := int(bytes / memsys.PageSize)
	for i := 0; i < pages; i++ {
		f := pc.mem.Alloc(0, memsys.Reclaimable, pc, 0)
		if f == memsys.NoFrame {
			return uint64(i) * memsys.PageSize
		}
		pc.frames[f] = struct{}{}
	}
	return uint64(pages) * memsys.PageSize
}

// Drop explicitly releases the whole cache (the paper's
// /proc/sys/vm/drop_caches, or the effect of tmpfs on the remote node).
// Frames are freed in ascending address order: freeing straight out of
// the map would release them in Go's randomized iteration order, which
// leaves identical buddy state but nondeterministic allocator hint
// positions and Free-call ordering (simlint SL003).
func (pc *PageCache) Drop() {
	frames := make([]memsys.Frame, 0, len(pc.frames))
	for f := range pc.frames {
		frames = append(frames, f)
	}
	sort.Slice(frames, func(a, b int) bool { return frames[a] < frames[b] })
	for _, f := range frames {
		pc.mem.Free(f, 0)
	}
	pc.frames = make(map[memsys.Frame]struct{})
}

// ResidentBytes returns the cache's current footprint.
func (pc *PageCache) ResidentBytes() uint64 {
	return uint64(len(pc.frames)) * memsys.PageSize
}

// FrameMoved implements memsys.Owner; page cache pages are not movable
// in this model, so it must never fire.
func (pc *PageCache) FrameMoved(old, new memsys.Frame, cookie uint64) {
	panic(check.Failf("workload: page cache frame moved"))
}

// FrameReclaimed implements memsys.Owner: cache pages are always
// droppable.
func (pc *PageCache) FrameReclaimed(f memsys.Frame, cookie uint64) bool {
	if _, ok := pc.frames[f]; !ok {
		return false
	}
	delete(pc.frames, f)
	return true
}

// FootprintReport implements memsys.FootprintReporter. The resident-set
// map is the same representation before and after the frame-metadata
// compaction, so current and legacy cost coincide (a rough 16 B per
// entry for key plus bucket overhead).
func (pc *PageCache) FootprintReport() (string, uint64, uint64) {
	b := uint64(len(pc.frames)) * 16
	return "workload/pagecache", b, b
}

var _ memsys.Owner = (*PageCache)(nil)
var _ memsys.FootprintReporter = (*PageCache)(nil)

// Churner models a co-running application whose anonymous footprint
// oscillates over time — the dynamic memory pressure the paper notes is
// common in datacenters but approximates with static memhog levels
// (§4.3.1). Each Step grows the footprint by StepPages until MaxBytes,
// then shrinks it back to zero, and repeats. Its pages are movable
// (compaction may shuffle them) but belong to another process, so the
// graph application cannot reclaim them.
type Churner struct {
	mem       *memsys.Memory
	MaxBytes  uint64
	StepPages int

	frames  []memsys.Frame
	growing bool

	// Grows / Shrinks count completed phase transitions.
	Grows, Shrinks uint64
}

// FrameMoved implements memsys.Owner: compaction may migrate the
// churner's anonymous pages.
func (c *Churner) FrameMoved(old, new memsys.Frame, cookie uint64) {
	i := int(cookie)
	if i >= len(c.frames) || c.frames[i] != old {
		panic(check.Failf("workload: churner frame bookkeeping out of sync"))
	}
	c.frames[i] = new
}

// FrameReclaimed implements memsys.Owner: the co-runner's memory is hot
// (it would immediately fault it back), so eviction is vetoed.
func (c *Churner) FrameReclaimed(f memsys.Frame, cookie uint64) bool { return false }

// FootprintReport implements memsys.FootprintReporter; the churner's
// frame list is unchanged by the compaction, so both costs coincide.
func (c *Churner) FootprintReport() (string, uint64, uint64) {
	b := uint64(cap(c.frames)) * 4
	return "workload/churner", b, b
}

var _ memsys.Owner = (*Churner)(nil)
var _ memsys.FootprintReporter = (*Churner)(nil)

// NewChurner creates an idle churner (zero footprint, about to grow).
func NewChurner(mem *memsys.Memory, maxBytes uint64, stepPages int) *Churner {
	if stepPages <= 0 {
		stepPages = 256
	}
	return &Churner{mem: mem, MaxBytes: maxBytes, StepPages: stepPages, growing: true}
}

// Step advances the oscillation by one increment. Allocation failures
// flip it into the shrinking phase early (a real co-runner would stall
// or get OOM-throttled; either way it stops taking memory).
func (c *Churner) Step() {
	if c.growing {
		for i := 0; i < c.StepPages; i++ {
			if uint64(len(c.frames))*memsys.PageSize >= c.MaxBytes {
				c.growing = false
				c.Grows++
				return
			}
			f := c.mem.Alloc(0, memsys.Movable, c, uint64(len(c.frames)))
			if f == memsys.NoFrame {
				c.growing = false
				c.Grows++
				return
			}
			c.frames = append(c.frames, f)
		}
		return
	}
	for i := 0; i < c.StepPages; i++ {
		if len(c.frames) == 0 {
			c.growing = true
			c.Shrinks++
			return
		}
		f := c.frames[len(c.frames)-1]
		c.frames = c.frames[:len(c.frames)-1]
		c.mem.Free(f, 0)
	}
}

// ResidentBytes returns the churner's current footprint.
func (c *Churner) ResidentBytes() uint64 {
	return uint64(len(c.frames)) * memsys.PageSize
}

// Release frees everything (end of the co-runner).
func (c *Churner) Release() {
	for _, f := range c.frames {
		c.mem.Free(f, 0)
	}
	c.frames = c.frames[:0]
}
