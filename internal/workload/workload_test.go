package workload

import (
	"math"
	"testing"

	"graphmem/internal/memsys"
)

const nodeBytes = 128 << 20 // 64 regions

func TestAgeSystemDensity(t *testing.T) {
	mem := memsys.New(nodeBytes)
	regions := int(mem.TotalPages() / memsys.HugePages)
	got := AgeSystem(mem, 0.125, 42)
	want := regions / 8
	if got < want-1 || got > want+1 {
		t.Fatalf("poisoned %d regions, want ~%d", got, want)
	}
	// Each poison consumes exactly one page.
	if free := mem.FreePages(); free != mem.TotalPages()-uint64(got) {
		t.Fatalf("free = %d", free)
	}
	if int(mem.FreeHugeBlocks()) != regions-got {
		t.Fatalf("huge blocks = %d, want %d", mem.FreeHugeBlocks(), regions-got)
	}
}

func TestAgeSystemStratified(t *testing.T) {
	mem := memsys.New(nodeBytes)
	AgeSystem(mem, 0.25, 1)
	// Every quarter of memory must carry close to a quarter of the
	// poisons: count unmovable frames per quarter.
	quarters := make([]int, 4)
	qsize := memsys.Frame(mem.TotalPages() / 4)
	mem.ForEachAllocated(func(f memsys.Frame, mt memsys.MigrateType) {
		quarters[f/qsize]++
	})
	for i, q := range quarters {
		if math.Abs(float64(q)-4) > 1.5 {
			t.Fatalf("quarter %d has %d poisons, want ~4 (stratification broken: %v)", i, q, quarters)
		}
	}
}

func TestAgeSystemZeroAndClamp(t *testing.T) {
	mem := memsys.New(nodeBytes)
	if AgeSystem(mem, 0, 0) != 0 {
		t.Fatal("zero fraction poisoned something")
	}
	if got := AgeSystem(mem, 5, 0); got != int(mem.TotalPages()/memsys.HugePages) {
		t.Fatalf("clamped fraction poisoned %d", got)
	}
}

func TestMemhogAscendingAndPinned(t *testing.T) {
	mem := memsys.New(nodeBytes)
	h := NewMemhog(mem, 32<<20)
	if h.PinnedBytes() != 32<<20 {
		t.Fatalf("pinned %d", h.PinnedBytes())
	}
	// Lowest 8192 frames must be the hog's.
	for f := memsys.Frame(0); f < 8192; f++ {
		if !mem.Allocated(f) || mem.MigrateTypeOf(f) != memsys.Pinned {
			t.Fatalf("frame %d not pinned", f)
		}
	}
	// Pinned memory is not reclaimable.
	if d, s := mem.ReclaimPages(10); d+s != 0 {
		t.Fatal("pinned pages reclaimed")
	}
	h.Release()
	if mem.FreePages() != mem.TotalPages() {
		t.Fatal("release leaked")
	}
	if err := mem.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMemhogSkipsOccupiedFrames(t *testing.T) {
	mem := memsys.New(nodeBytes)
	AgeSystem(mem, 0.25, 7)
	before := mem.FreePages()
	NewMemhog(mem, 16<<20)
	if mem.FreePages() != before-4096 {
		t.Fatal("memhog accounting wrong in aged memory")
	}
}

func TestMemhogPanicsWhenOversized(t *testing.T) {
	mem := memsys.New(nodeBytes)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized memhog did not panic")
		}
	}()
	NewMemhog(mem, nodeBytes*2)
}

func TestFragmentLevels(t *testing.T) {
	for _, level := range []float64{0.25, 0.5, 0.75} {
		mem := memsys.New(nodeBytes)
		freeBefore := mem.FreePages()
		n := Fragment(mem, level)
		wantBlocks := int(level * float64(freeBefore) / memsys.HugePages)
		if n < wantBlocks-1 || n > wantBlocks {
			t.Fatalf("level %v: fragmented %d blocks, want ~%d", level, n, wantBlocks)
		}
		// One page per fragmented region stays allocated.
		if mem.FreePages() != freeBefore-uint64(n) {
			t.Fatalf("level %v: free = %d", level, mem.FreePages())
		}
		// Fragmented regions host no huge block.
		if int(mem.FreeHugeBlocks()) != int(freeBefore/memsys.HugePages)-n {
			t.Fatalf("level %v: %d huge blocks remain", level, mem.FreeHugeBlocks())
		}
		// The damage is permanent: compaction cannot fix it.
		if res := mem.TryCompactHuge(); res.Succeeded && level == 1 {
			t.Fatal("compaction fixed unmovable fragmentation")
		}
	}
}

func TestFragmentZero(t *testing.T) {
	mem := memsys.New(nodeBytes)
	if Fragment(mem, 0) != 0 {
		t.Fatal("zero level fragmented")
	}
}

func TestPageCacheFillAndDrop(t *testing.T) {
	mem := memsys.New(nodeBytes)
	pc := NewPageCache(mem)
	got := pc.Fill(8 << 20)
	if got != 8<<20 || pc.ResidentBytes() != 8<<20 {
		t.Fatalf("fill = %d resident = %d", got, pc.ResidentBytes())
	}
	pc.Drop()
	if pc.ResidentBytes() != 0 || mem.FreePages() != mem.TotalPages() {
		t.Fatal("drop incomplete")
	}
}

func TestPageCacheReclaimable(t *testing.T) {
	mem := memsys.New(nodeBytes)
	pc := NewPageCache(mem)
	pc.Fill(4 << 20)
	dropped, swapped := mem.ReclaimPages(100)
	if dropped != 100 || swapped != 0 {
		t.Fatalf("reclaim = (%d,%d)", dropped, swapped)
	}
	if pc.ResidentBytes() != 4<<20-100*memsys.PageSize {
		t.Fatalf("resident = %d", pc.ResidentBytes())
	}
}

func TestPageCacheFillStopsAtOOM(t *testing.T) {
	mem := memsys.New(nodeBytes)
	NewMemhog(mem, nodeBytes-4<<20)
	pc := NewPageCache(mem)
	got := pc.Fill(16 << 20)
	if got != 4<<20 {
		t.Fatalf("fill returned %d, want the 4MB that was free", got)
	}
}

// TestPressureScenario is the integration check for the paper's §4
// environment: after aging + memhog, the free tail carries the ambient
// poison density, so the huge page supply is a (1-f) fraction of the
// slack — the mechanism behind the three pressure phases.
func TestPressureScenario(t *testing.T) {
	mem := memsys.New(nodeBytes)
	AgeSystem(mem, 0.125, 3)
	wss := uint64(32 << 20)
	delta := uint64(4 << 20)
	hog := mem.FreePages()*memsys.PageSize - wss - delta
	NewMemhog(mem, hog)

	free := mem.FreePages() * memsys.PageSize
	if free != wss+delta {
		t.Fatalf("free = %dMB, want WSS+delta", free>>20)
	}
	// Huge supply ≈ (1-0.125) × free regions.
	supply := float64(mem.FreeHugeBlocks()) * memsys.HugeSize
	want := 0.875 * float64(free)
	if supply < want*0.85 || supply > want*1.15 {
		t.Fatalf("huge supply %dMB, want ≈%dMB", uint64(supply)>>20, uint64(want)>>20)
	}
}

func TestAgeSystemSeedChangesPlacementNotDensity(t *testing.T) {
	count := func(seed uint64) (int, []memsys.Frame) {
		mem := memsys.New(nodeBytes)
		n := AgeSystem(mem, 0.25, seed)
		var frames []memsys.Frame
		mem.ForEachAllocated(func(f memsys.Frame, mt memsys.MigrateType) {
			frames = append(frames, f)
		})
		return n, frames
	}
	n1, f1 := count(1)
	n2, f2 := count(2)
	if n1 != n2 {
		t.Fatalf("density varies with seed: %d vs %d", n1, n2)
	}
	same := true
	for i := range f1 {
		if i >= len(f2) || f1[i] != f2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical poison placement")
	}
}

func TestChurnerOscillates(t *testing.T) {
	mem := memsys.New(nodeBytes)
	c := NewChurner(mem, 8<<20, 512)
	peak := uint64(0)
	for i := 0; i < 100; i++ {
		c.Step()
		if r := c.ResidentBytes(); r > peak {
			peak = r
		}
	}
	if peak != 8<<20 {
		t.Fatalf("peak = %dMB, want 8MB", peak>>20)
	}
	if c.Grows == 0 || c.Shrinks == 0 {
		t.Fatalf("no oscillation: grows=%d shrinks=%d", c.Grows, c.Shrinks)
	}
	c.Release()
	if mem.FreePages() != mem.TotalPages() {
		t.Fatal("release leaked")
	}
}

func TestChurnerBacksOffAtOOM(t *testing.T) {
	mem := memsys.New(nodeBytes)
	NewMemhog(mem, nodeBytes-2<<20)
	c := NewChurner(mem, 64<<20, 4096)
	for i := 0; i < 10; i++ {
		c.Step() // must not panic when memory runs out
	}
	if c.ResidentBytes() > 2<<20 {
		t.Fatal("churner exceeded available memory")
	}
}
