package workload

import "graphmem/internal/memsys"

// Clone returns a copy of the memhog bound to a cloned physical node,
// for machine forks: the pin-run set is deep-copied so compaction on
// either side of the fork updates only its own hog's bookkeeping. The
// caller passes this clone as the owner remap target for the original
// hog (see memsys.Memory.Clone).
func (h *Memhog) Clone(mem *memsys.Memory) *Memhog {
	return &Memhog{
		mem:   mem,
		runs:  append([]pinRun(nil), h.runs...),
		pages: h.pages,
	}
}

// Clone returns a copy of the page cache bound to a cloned physical
// node, for machine forks: the resident-frame set is deep-copied so
// reclaim on either side of the fork drops only its own cache's
// entries.
func (pc *PageCache) Clone(mem *memsys.Memory) *PageCache {
	c := &PageCache{
		mem:    mem,
		frames: make(map[memsys.Frame]struct{}, len(pc.frames)),
	}
	for f := range pc.frames {
		c.frames[f] = struct{}{}
	}
	return c
}
