package reorder

import (
	"reflect"
	"testing"
	"testing/quick"

	"graphmem/internal/gen"
	"graphmem/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Generate(gen.Kron25, gen.ScaleTest, false)
}

func isBijection(perm []uint32) bool {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if int(p) >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

func TestIdentity(t *testing.T) {
	g := testGraph(t)
	perm, c := Compute(g, Identity, 0)
	for i, p := range perm {
		if int(p) != i {
			t.Fatal("identity permutation is not identity")
		}
	}
	if c.VertexTraversals != 0 || c.EdgeTraversals != 0 {
		t.Fatal("identity charged preprocessing cost")
	}
}

func TestAllMethodsAreBijections(t *testing.T) {
	g := testGraph(t)
	for _, m := range []Method{Identity, DBG, FullSort, Random} {
		perm, _ := Compute(g, m, 42)
		if !isBijection(perm) {
			t.Fatalf("%s: not a bijection", m)
		}
	}
}

func TestDBGBinsAreDegreeOrdered(t *testing.T) {
	g := testGraph(t)
	perm, c := Compute(g, DBG, 0)
	if c.EdgeTraversals == 0 || c.VertexTraversals == 0 {
		t.Fatal("DBG reported no traversal cost")
	}
	in := g.InDegrees()
	d := g.AvgDegree()

	// Reconstruct each vertex's bin and check that new IDs are grouped
	// by bin: every vertex in a hotter bin precedes every vertex in a
	// colder bin.
	binOf := func(deg uint32) int {
		for i, f := range DBGBinFactors {
			th := uint32(f * d)
			if deg >= th && (th > 0 || i == len(DBGBinFactors)-1) {
				return i
			}
		}
		return len(DBGBinFactors) - 1
	}
	maxNew := make([]int, len(DBGBinFactors))
	minNew := make([]int, len(DBGBinFactors))
	for i := range minNew {
		minNew[i] = g.N
		maxNew[i] = -1
	}
	for v := 0; v < g.N; v++ {
		b := binOf(in[v])
		if int(perm[v]) < minNew[b] {
			minNew[b] = int(perm[v])
		}
		if int(perm[v]) > maxNew[b] {
			maxNew[b] = int(perm[v])
		}
	}
	last := -1
	for b := range DBGBinFactors {
		if maxNew[b] == -1 {
			continue // empty bin
		}
		if minNew[b] <= last {
			t.Fatalf("bin %d overlaps with a hotter bin", b)
		}
		last = maxNew[b]
	}
}

func TestDBGStableWithinBin(t *testing.T) {
	// A graph where all vertices land in the same bin: the permutation
	// must preserve their order (stability).
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	}
	g, err := graph.FromEdges(4, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	perm, _ := Compute(g, DBG, 0)
	for i, p := range perm {
		if int(p) != i {
			t.Fatalf("uniform-degree DBG not stable: %v", perm)
		}
	}
}

func TestFullSortDescending(t *testing.T) {
	g := testGraph(t)
	perm, _ := Compute(g, FullSort, 0)
	in := g.InDegrees()
	byNew := make([]uint32, g.N)
	for v, p := range perm {
		byNew[p] = in[v]
	}
	for i := 1; i < len(byNew); i++ {
		if byNew[i] > byNew[i-1] {
			t.Fatalf("degrees not descending at %d: %d > %d", i, byNew[i], byNew[i-1])
		}
	}
}

func TestHotPrefixCoverageImproves(t *testing.T) {
	g := testGraph(t) // Kronecker: hubs scattered
	before := HotPrefixCoverage(g, 0.1)
	dbg, _ := Apply(g, DBG, 0)
	after := HotPrefixCoverage(dbg, 0.1)
	if after <= before {
		t.Fatalf("DBG did not concentrate hot data: %.3f -> %.3f", before, after)
	}
	sorted, _ := Apply(g, FullSort, 0)
	best := HotPrefixCoverage(sorted, 0.1)
	if best < after-0.02 {
		t.Fatalf("full sort (%.3f) worse than DBG (%.3f)", best, after)
	}
}

func TestHotPrefixCoverageBounds(t *testing.T) {
	g := testGraph(t)
	if HotPrefixCoverage(g, 0) != 0 || HotPrefixCoverage(g, 1) != 1 {
		t.Fatal("coverage bounds wrong")
	}
	if HotPrefixCoverage(g, 2) != 1 || HotPrefixCoverage(g, -1) != 0 {
		t.Fatal("coverage clamping wrong")
	}
}

func TestApplyPreservesAlgorithmicStructure(t *testing.T) {
	g := testGraph(t)
	ng, c := Apply(g, DBG, 0)
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != g.NumEdges() || ng.N != g.N {
		t.Fatal("Apply changed graph size")
	}
	if c.EdgeTraversals < g.NumEdges() {
		t.Fatal("Apply did not account for the relabel traversal")
	}
	// Degree multiset must be preserved.
	degCount := func(g *graph.Graph) map[int]int {
		m := make(map[int]int)
		for v := 0; v < g.N; v++ {
			m[g.OutDegree(uint32(v))]++
		}
		return m
	}
	if !reflect.DeepEqual(degCount(g), degCount(ng)) {
		t.Fatal("degree multiset changed")
	}
}

func TestRandomSeedVariation(t *testing.T) {
	g := testGraph(t)
	a, _ := Compute(g, Random, 1)
	b, _ := Compute(g, Random, 2)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds gave identical random permutations")
	}
	c, _ := Compute(g, Random, 1)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("same seed gave different random permutations")
	}
}

func TestUnknownMethodPanics(t *testing.T) {
	g := testGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method did not panic")
		}
	}()
	Compute(g, Method("nope"), 0)
}

// TestQuickDBGPermutationValid: DBG yields a bijection on arbitrary
// small graphs.
func TestQuickDBGPermutationValid(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 64
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{Src: uint32(raw[i]) % n, Dst: uint32(raw[i+1]) % n})
		}
		g, err := graph.FromEdges(n, edges, false)
		if err != nil {
			return false
		}
		perm, _ := Compute(g, DBG, 0)
		return isBijection(perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionContract: cuts are monotone, start at 0, end at N, have
// exactly s+1 entries, and are a pure function of (graph, s).
func TestPartitionContract(t *testing.T) {
	g := testGraph(t)
	for _, s := range []int{1, 2, 4, 8, 64} {
		cuts, c := Partition(g, s)
		if len(cuts) != s+1 {
			t.Fatalf("s=%d: %d cuts, want %d", s, len(cuts), s+1)
		}
		if cuts[0] != 0 || int(cuts[s]) != g.N {
			t.Fatalf("s=%d: cuts span [%d,%d], want [0,%d]", s, cuts[0], cuts[s], g.N)
		}
		for i := 0; i < s; i++ {
			if cuts[i+1] < cuts[i] {
				t.Fatalf("s=%d: cuts not monotone at %d: %v", s, i, cuts)
			}
		}
		if c.VertexTraversals != g.N || c.EdgeTraversals != 0 {
			t.Fatalf("s=%d: cost %+v, want one vertex scan", s, c)
		}
		again, _ := Partition(g, s)
		if !reflect.DeepEqual(cuts, again) {
			t.Fatalf("s=%d: Partition is not deterministic", s)
		}
	}
}

// TestPartitionBalance: on the standard test graph no shard's work
// share (1 + out-degree per vertex) may exceed twice the fair share —
// the owner-computes scatter load the cuts are sized for.
func TestPartitionBalance(t *testing.T) {
	g := testGraph(t)
	const s = 4
	cuts, _ := Partition(g, s)
	total := uint64(g.N + g.NumEdges())
	for sh := 0; sh < s; sh++ {
		var work uint64
		for v := cuts[sh]; v < cuts[sh+1]; v++ {
			work += 1 + uint64(g.OutDegree(v))
		}
		if work > 2*total/s {
			t.Fatalf("shard %d holds %d of %d work units (> 2x fair share)", sh, work, total)
		}
	}
}

// TestPartitionSmall: shard counts at and beyond the vertex count are
// valid — trailing shards come out empty — and s<=1 is the trivial
// one-window partition.
func TestPartitionSmall(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	cuts, _ := Partition(g, 8)
	if len(cuts) != 9 || cuts[0] != 0 || cuts[8] != 3 {
		t.Fatalf("8-way cuts over 3 vertices: %v", cuts)
	}
	covered := 0
	for i := 0; i < 8; i++ {
		covered += int(cuts[i+1] - cuts[i])
	}
	if covered != 3 {
		t.Fatalf("windows cover %d vertices, want 3", covered)
	}
	if cuts, _ := Partition(g, 1); !reflect.DeepEqual(cuts, []uint32{0, 3}) {
		t.Fatalf("1-way cuts: %v", cuts)
	}
	if cuts, _ := Partition(g, 0); !reflect.DeepEqual(cuts, []uint32{0, 3}) {
		t.Fatalf("0-way cuts: %v", cuts)
	}
}
