// Package reorder implements the vertex reordering techniques of §5 of
// the paper, principally Degree-Based Grouping (DBG, Faldu et al.,
// IISWC'19): a lightweight coarse sort that bins vertices by access
// frequency so the hot set occupies a dense prefix of the property
// array — the prerequisite for covering it with a handful of huge pages.
package reorder

import (
	"sort"

	"graphmem/internal/check"
	"graphmem/internal/graph"
)

// Method names a reordering technique.
type Method string

const (
	// Identity leaves vertex IDs untouched (the "original" datasets).
	Identity Method = "orig"
	// DBG is Degree-Based Grouping with the paper's 8 bins.
	DBG Method = "dbg"
	// FullSort is a complete descending sort by degree; finer than DBG
	// but destroys structure and costs O(N log N).
	FullSort Method = "sort"
	// Random scatters vertices uniformly; the adversarial control.
	Random Method = "rand"
)

// DBGBinFactors are the minimum-degree multipliers (of the average
// degree d) for the 8 DBG bins, hottest first: 32d, 16d, 8d, 4d, 2d, d,
// d/2, and 0.
var DBGBinFactors = []float64{32, 16, 8, 4, 2, 1, 0.5, 0}

// Permutation computes newID = perm[oldID] for the chosen method, based
// on the in-degree of each vertex (the property-array access frequency
// in push-based kernels).
//
// Cost returns alongside the permutation the number of vertex-array and
// edge-array traversal elements the preprocessing touched, so callers
// can charge preprocessing time the way the paper accounts for it
// (three O(N) traversals plus the O(M) in-degree count).
type Cost struct {
	VertexTraversals int // elements visited across vertex-indexed passes
	EdgeTraversals   int // elements visited across edge-indexed passes
}

// Compute returns the permutation for method m over graph g.
func Compute(g *graph.Graph, m Method, seed uint64) ([]uint32, Cost) {
	switch m {
	case Identity:
		p := make([]uint32, g.N)
		for i := range p {
			p[i] = uint32(i)
		}
		return p, Cost{}
	case DBG:
		return dbg(g)
	case FullSort:
		return fullSort(g)
	case Random:
		return randomPerm(g.N, seed), Cost{VertexTraversals: g.N}
	default:
		panic(check.Failf("reorder: unknown method %s", m))
	}
}

// dbg implements Degree-Based Grouping. Traversal 1 computes degrees
// (O(M) edge pass), traversal 2 assigns each vertex to a bin (O(N)),
// traversal 3 emits new IDs bin by bin in stable order (O(N)).
func dbg(g *graph.Graph) ([]uint32, Cost) {
	in := g.InDegrees() // traversal 1
	d := g.AvgDegree()

	thresholds := make([]uint32, len(DBGBinFactors))
	for i, f := range DBGBinFactors {
		thresholds[i] = uint32(f * d)
	}

	// Traversal 2: bin assignment. Vertices within a bin keep their
	// relative order (the paper notes intra-bin order does not matter;
	// stability keeps the result deterministic and preserves whatever
	// community structure the original ordering had).
	binOf := make([]uint8, g.N)
	counts := make([]int, len(thresholds))
	for v := 0; v < g.N; v++ {
		b := len(thresholds) - 1
		for i, t := range thresholds {
			if in[v] >= t && (t > 0 || i == len(thresholds)-1) {
				b = i
				break
			}
		}
		binOf[v] = uint8(b)
		counts[b]++
	}

	// Traversal 3: prefix-sum the bins and assign new IDs.
	next := make([]uint32, len(counts))
	acc := uint32(0)
	for b, c := range counts {
		next[b] = acc
		acc += uint32(c)
	}
	perm := make([]uint32, g.N)
	for v := 0; v < g.N; v++ {
		b := binOf[v]
		perm[v] = next[b]
		next[b]++
	}
	return perm, Cost{VertexTraversals: 2 * g.N, EdgeTraversals: g.NumEdges()}
}

// fullSort orders vertices by strictly descending in-degree (stable).
func fullSort(g *graph.Graph) ([]uint32, Cost) {
	in := g.InDegrees()
	order := make([]uint32, g.N)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return in[order[a]] > in[order[b]] })
	perm := make([]uint32, g.N)
	for newID, old := range order {
		perm[old] = uint32(newID)
	}
	return perm, Cost{VertexTraversals: 2 * g.N, EdgeTraversals: g.NumEdges()}
}

// randomPerm is a seeded Fisher–Yates permutation (SplitMix64 core,
// duplicated from package gen to keep the packages independent).
func randomPerm(n int, seed uint64) []uint32 {
	state := seed + 0x9E3779B97F4A7C15
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Apply relabels g with the method's permutation and returns the new
// graph plus the preprocessing cost.
func Apply(g *graph.Graph, m Method, seed uint64) (*graph.Graph, Cost) {
	perm, c := Compute(g, m, seed)
	ng, err := g.Relabel(perm)
	if err != nil {
		panic(check.Failf("reorder: computed permutation invalid: %v", err))
	}
	// Relabeling itself is the third paper traversal (re-emitting IDs):
	// one vertex pass plus one edge pass.
	c.VertexTraversals += g.N
	c.EdgeTraversals += g.NumEdges()
	return ng, c
}

// Partition splits g's vertex range into s contiguous windows balanced
// by scatter work (1 + out-degree per vertex: every vertex is popped
// once per appearance on a worklist and then scans its out-edges), for
// the sharded machine engine's owner-computes decomposition. It returns
// s+1 ascending cuts — shard i owns vertices [cuts[i], cuts[i+1]) —
// plus the preprocessing cost of the single degree scan that sized the
// windows. Cuts are a pure function of the graph and s: deterministic,
// seed-free. Shards beyond the vertex count come out empty (cuts
// repeat g.N), so any s is valid on any graph; s ≤ 1 yields the
// trivial one-window partition.
func Partition(g *graph.Graph, s int) ([]uint32, Cost) {
	if s < 1 {
		s = 1
	}
	cuts := make([]uint32, s+1)
	total := uint64(g.N) + uint64(g.NumEdges())
	var acc uint64
	sh := 1
	for v := 0; v < g.N && sh < s; v++ {
		acc += 1 + uint64(g.OutDegree(uint32(v)))
		// Cut after v once this shard holds its fair share of the
		// remaining work (ceil division keeps later shards from
		// starving on skewed prefixes).
		// (a whale vertex can satisfy several boundaries at once,
		// leaving the windows between them empty).
		for sh < s && acc*uint64(s) >= total*uint64(sh) {
			cuts[sh] = uint32(v + 1)
			sh++
		}
	}
	for ; sh <= s; sh++ {
		cuts[sh] = uint32(g.N)
	}
	return cuts, Cost{VertexTraversals: g.N}
}

// HotPrefixCoverage reports what fraction of all property-array accesses
// (in-edges) target the first `frac` of vertex IDs — the quantity that
// determines how much of the TLB-miss mass a selective huge page prefix
// can capture.
func HotPrefixCoverage(g *graph.Graph, frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return 1
	}
	in := g.InDegrees()
	cut := int(frac * float64(g.N))
	var pre, all uint64
	for v, d := range in {
		all += uint64(d)
		if v < cut {
			pre += uint64(d)
		}
	}
	if all == 0 {
		return 0
	}
	return float64(pre) / float64(all)
}
