// Package memsys simulates the physical memory of one NUMA node: a frame
// array managed by a binary buddy allocator with Linux-like migrate
// types, plus the compaction and reclaim primitives the THP policy layer
// builds on.
//
// The simulation is deterministic: allocation always returns the
// lowest-addressed suitable block, so identical call sequences produce
// identical physical layouts (and therefore identical fragmentation
// behaviour) across runs.
package memsys

import (
	"fmt"
	"math/bits"
	"unsafe"

	"graphmem/internal/check"
)

// Fundamental geometry. The simulator uses x86-64 sizes throughout.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB base page

	// HugeOrder is the buddy order of a 2MB huge page (512 base pages).
	HugeOrder = 9
	HugePages = 1 << HugeOrder
	HugeSize  = PageSize * HugePages

	// MaxOrder is the largest buddy block order tracked, matching
	// Linux's MAX_ORDER of 10 (4MB blocks).
	MaxOrder = 10
)

// MigrateType classifies a frame's mobility, mirroring the kernel's
// migratetype machinery. It determines whether compaction may move the
// frame and whether reclaim may evict it.
type MigrateType uint8

const (
	// Movable pages back application anonymous memory; compaction may
	// migrate them and reclaim may swap them out.
	Movable MigrateType = iota
	// Unmovable pages are kernel allocations that can neither move nor
	// be reclaimed. They are the durable source of fragmentation.
	Unmovable
	// Reclaimable pages (page cache) cannot move but can be dropped.
	Reclaimable
	// Pinned pages are mlocked user memory: movable by compaction but
	// never reclaimed or swapped (the paper's memhog+mlock).
	Pinned
)

func (m MigrateType) String() string {
	switch m {
	case Movable:
		return "movable"
	case Unmovable:
		return "unmovable"
	case Reclaimable:
		return "reclaimable"
	case Pinned:
		return "pinned"
	}
	return fmt.Sprintf("MigrateType(%d)", uint8(m))
}

// Frame is an index into the node's physical frame array.
type Frame uint32

// NoFrame is the sentinel for "no frame".
const NoFrame = Frame(^uint32(0))

// Owner receives callbacks when the memory system moves or evicts frames
// that belong to it. The virtual-memory layer implements this to keep
// page tables coherent with compaction and reclaim.
type Owner interface {
	// FrameMoved tells the owner that the contents of old now live in
	// new; the owner must redirect its mapping. cookie is the value
	// passed at allocation time.
	FrameMoved(old, new Frame, cookie uint64)
	// FrameReclaimed tells the owner that the frame was evicted (page
	// cache drop or swap-out). The owner must unmap it. Returns true
	// if the frame may actually be freed; false vetoes the eviction.
	FrameReclaimed(f Frame, cookie uint64) bool
}

// FootprintReporter is optionally implemented by owners (workload
// drivers) that can report their simulator-side footprint for the
// stats.Footprint per-subsystem breakdown. label names the row, cur is
// the bytes the current representation costs, legacy what the
// pre-compaction (PR 9) representation would have cost.
type FootprintReporter interface {
	FootprintReport() (label string, cur, legacy uint64)
}

// ownerRef is an index into Memory.owners; ref 0 is the nil owner. A
// node hosts a handful of distinct owners (one address space, a memhog,
// perhaps a page cache) spread across millions of frames, so frames
// store this small interned handle instead of the two-word interface.
// That keeps frameInfo pointer-free, which is what makes Clone a flat
// memmove (no per-frame GC write barriers) with owner remapping done
// once per table entry instead of once per frame — the property the
// sharded engine's fork-per-shard bring-up depends on.
type ownerRef uint16

// frameInfo packs the per-frame metadata into a single 64-bit word so a
// paper-geometry node (100+ GB, tens of millions of frames) costs
// 8 B/frame of simulator memory instead of 16:
//
//	bits  0..47  cookie (48-bit owner mapping id; see CookieLimit)
//	bits 48..51  blockOrder (0..MaxOrder)
//	bits 52..53  mtype
//	bit  54      allocated
//	bits 55..63  owner ref (interned; up to maxOwnerRefs owners)
//
// The zero value is a free frame. The word stays pointer-free, so Clone
// still copies the array with one flat memmove.
type frameInfo struct{ w uint64 }

// Compile-time budget assertion: the array length underflows (negative
// constant) if frameInfo ever outgrows 8 bytes.
var _ [8 - unsafe.Sizeof(frameInfo{})]byte

const (
	fiCookieBits = 48
	fiOrderShift = 48
	fiOrderMask  = uint64(0xF) << fiOrderShift
	fiMtypeShift = 52
	fiMtypeMask  = uint64(0x3) << fiMtypeShift
	fiAllocBit   = uint64(1) << 54
	fiOwnerShift = 55
	fiOwnerMask  = uint64(maxOwnerRefs-1) << fiOwnerShift

	// maxOwnerRefs bounds the interned owner table: frameInfo keeps
	// 64-55 = 9 bits for the owner ref.
	maxOwnerRefs = 1 << (64 - fiOwnerShift)
)

// CookieLimit is the exclusive upper bound on owner cookies: a cookie
// shares the packed frame word with the allocation metadata, so owners
// get 48 bits of mapping id. The VM layer's encoding (19-bit VMA id ·
// 28-bit page index · huge flag) fits a 1 TB VMA with room to spare.
const CookieLimit = uint64(1) << fiCookieBits

// packFrame builds the metadata word for one allocated frame.
func packFrame(order int, mtype MigrateType, owner ownerRef, cookie uint64) frameInfo {
	return frameInfo{fiAllocBit |
		cookie |
		uint64(order)<<fiOrderShift |
		uint64(mtype)<<fiMtypeShift |
		uint64(owner)<<fiOwnerShift}
}

func (fi frameInfo) allocated() bool    { return fi.w&fiAllocBit != 0 }
func (fi frameInfo) blockOrder() uint8  { return uint8(fi.w >> fiOrderShift & 0xF) }
func (fi frameInfo) mtype() MigrateType { return MigrateType(fi.w >> fiMtypeShift & 0x3) }
func (fi frameInfo) owner() ownerRef    { return ownerRef(fi.w >> fiOwnerShift) }
func (fi frameInfo) cookie() uint64     { return fi.w & (CookieLimit - 1) }

func (fi *frameInfo) setBlockOrder(order uint8) {
	fi.w = fi.w&^fiOrderMask | uint64(order)<<fiOrderShift
}

func (fi *frameInfo) setMtype(mt MigrateType) {
	fi.w = fi.w&^fiMtypeMask | uint64(mt)<<fiMtypeShift
}

func (fi *frameInfo) setOwnerCookie(owner ownerRef, cookie uint64) {
	fi.w = fi.w&^((CookieLimit-1)|fiOwnerMask) |
		cookie | uint64(owner)<<fiOwnerShift
}

// checkCookie rejects cookies that do not fit the packed budget. Owners
// choose their own cookie encodings, so this is a contract check at the
// allocation/retarget boundary rather than silent truncation.
func checkCookie(cookie uint64) {
	if cookie >= CookieLimit {
		panic(check.Failf("memsys: cookie %#x exceeds the %d-bit packed budget", cookie, fiCookieBits))
	}
}

// frameShadow is the reference unpacked frame layout (the pre-packing
// representation). When shadow mirroring is enabled — tests only — every
// metadata write is mirrored here so a differential harness can assert
// the packed encode/decode agrees with plain field stores across whole
// workloads.
type frameShadow struct {
	allocated  bool
	blockOrder uint8
	mtype      MigrateType
	owner      ownerRef
	cookie     uint64
}

// Stats counts allocator activity since construction.
type Stats struct {
	Allocs4K        uint64
	AllocsHuge      uint64
	FailedHuge      uint64
	Frees           uint64
	PagesCompacted  uint64 // pages migrated by compaction
	PagesReclaimed  uint64
	CompactionRuns  uint64
	CompactionFails uint64
}

// Memory models one NUMA node's physical memory.
type Memory struct {
	nframes Frame
	frames  []frameInfo

	// shadow, when non-nil, mirrors every frame-metadata write in the
	// unpacked reference layout (EnableShadow; test-only differential
	// harness). All mutation flows through the helpers below, so the
	// mirror stays exact without touching the read paths.
	shadow []frameShadow

	// freeBits[o] marks block-start frames of free order-o blocks.
	freeBits [MaxOrder + 1][]uint64
	// freeCount[o] is the number of free blocks of exactly order o.
	freeCount [MaxOrder + 1]uint32
	// hint[o] is a search start position (word index) for order o.
	hint [MaxOrder + 1]uint32

	freePages uint64

	// Reclaim candidate FIFOs, one for page cache (Reclaimable) and
	// one for anonymous memory (Movable). Frames are enqueued when
	// they become owned and validated lazily on dequeue, so reclaim is
	// amortized O(pages reclaimed) instead of O(total frames), and the
	// eviction order approximates FIFO/LRU the way kswapd's inactive
	// list does. Entries may be stale or duplicated; dequeue filters.
	reclaimQ [2]frameQueue

	// allocByType counts allocated frames per migrate type, maintained
	// on every transition so the simcheck audit can verify conservation
	// against a full scan (no frame leaks or double-counts across
	// alloc/free/compaction/reclaim).
	allocByType [4]uint64

	// owners interns every distinct Owner ever registered; entry 0 is
	// nil. frameInfo.owner indexes this table (see ownerRef). The table
	// never shrinks — an owner that freed all its frames keeps its slot
	// — which is fine: a machine sees only a few distinct owners over
	// its whole life.
	owners []Owner

	stats Stats
}

// frameQueue is a simple FIFO of frame numbers with amortized O(1)
// operations.
type frameQueue struct {
	items []Frame
	head  int
}

func (q *frameQueue) push(f Frame) { q.items = append(q.items, f) }

func (q *frameQueue) pop() (Frame, bool) {
	if q.head >= len(q.items) {
		q.items = q.items[:0]
		q.head = 0
		return 0, false
	}
	f := q.items[q.head]
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return f, true
}

func (q *frameQueue) len() int { return len(q.items) - q.head }

// ownerRefFor interns an owner, returning its table index. The table
// stays tiny (an address space, a memhog, a page cache…), so a linear
// scan with two-word interface compares beats any map — and allocates
// nothing once the owner is known.
func (m *Memory) ownerRefFor(o Owner) ownerRef {
	if o == nil {
		return 0
	}
	for i := 1; i < len(m.owners); i++ {
		if m.owners[i] == o {
			return ownerRef(i)
		}
	}
	if len(m.owners) == 0 {
		m.owners = append(m.owners, nil)
	}
	if len(m.owners) >= maxOwnerRefs {
		panic(check.Failf("memsys: more than %d distinct frame owners", maxOwnerRefs-1))
	}
	m.owners = append(m.owners, o)
	return ownerRef(len(m.owners) - 1)
}

// ownerAt resolves an interned owner handle; ref 0 is nil.
func (m *Memory) ownerAt(r ownerRef) Owner {
	if r == 0 {
		return nil
	}
	return m.owners[r]
}

// Owners returns the interned owner table minus the nil slot, in
// interning order (deterministic). Intended for introspection such as
// the footprint report, not hot paths; the slice is a copy.
func (m *Memory) Owners() []Owner {
	if len(m.owners) <= 1 {
		return nil
	}
	return append([]Owner(nil), m.owners[1:]...)
}

// queueIndexFor returns which reclaim queue (if any) a frame with the
// given type/owner belongs to.
func queueIndexFor(mt MigrateType, owner Owner) int {
	if owner == nil {
		return -1
	}
	switch mt {
	case Reclaimable:
		return 0
	case Movable:
		return 1
	}
	return -1
}

// enqueueReclaim registers an owned frame as a reclaim candidate.
func (m *Memory) enqueueReclaim(f Frame, mt MigrateType, owner Owner) {
	if qi := queueIndexFor(mt, owner); qi >= 0 {
		m.reclaimQ[qi].push(f)
	}
}

// New constructs a node with totalBytes of physical memory. totalBytes is
// rounded down to a whole number of max-order blocks so the buddy
// structure starts fully coalesced.
func New(totalBytes uint64) *Memory {
	blockBytes := uint64(PageSize) << MaxOrder
	totalBytes -= totalBytes % blockBytes
	if totalBytes == 0 {
		panic(check.Failf("memsys: memory smaller than one max-order block"))
	}
	n := Frame(totalBytes / PageSize)
	m := &Memory{
		nframes: n,
		frames:  make([]frameInfo, n),
	}
	words := (uint32(n) + 63) / 64
	for o := 0; o <= MaxOrder; o++ {
		m.freeBits[o] = make([]uint64, words)
	}
	for f := Frame(0); f < n; f += 1 << MaxOrder {
		m.setFree(f, MaxOrder)
	}
	m.freePages = uint64(n)
	return m
}

// TotalPages returns the number of physical frames on the node.
func (m *Memory) TotalPages() uint64 { return uint64(m.nframes) }

// FreePages returns the number of free frames.
func (m *Memory) FreePages() uint64 { return m.freePages }

// Stats returns a copy of the allocator counters.
func (m *Memory) Stats() Stats { return m.stats }

// --- metadata write helpers ------------------------------------------

// setFrames stamps npages consecutive frames as constituents of one
// allocated block. Every bulk metadata write funnels through here so the
// optional shadow mirror stays exact.
func (m *Memory) setFrames(f, npages Frame, order int, mtype MigrateType, ref ownerRef, cookie uint64) {
	fi := packFrame(order, mtype, ref, cookie)
	for i := Frame(0); i < npages; i++ {
		m.frames[f+i] = fi
	}
	if m.shadow != nil {
		s := frameShadow{allocated: true, blockOrder: uint8(order), mtype: mtype, owner: ref, cookie: cookie}
		for i := Frame(0); i < npages; i++ {
			m.shadow[f+i] = s
		}
	}
}

// clearFrames zeroes the metadata of npages consecutive frames with a
// single range clear (the zero word is a free frame), replacing the
// per-frame stores the free/evacuate/reclaim paths used to do.
func (m *Memory) clearFrames(f, npages Frame) {
	clear(m.frames[f : f+npages])
	if m.shadow != nil {
		clear(m.shadow[f : f+npages])
	}
}

// EnableShadow starts mirroring every frame-metadata write into a
// reference unpacked store, seeded from the current decoded state. Tests
// use this as a differential oracle for the packed representation; it is
// never enabled on the simulation path (it doubles frame-metadata
// memory).
func (m *Memory) EnableShadow() {
	m.shadow = make([]frameShadow, m.nframes)
	for f := Frame(0); f < m.nframes; f++ {
		fi := m.frames[f]
		if fi.w == 0 {
			continue
		}
		m.shadow[f] = frameShadow{fi.allocated(), fi.blockOrder(), fi.mtype(), fi.owner(), fi.cookie()}
	}
}

// ShadowCheck compares every frame's decoded packed metadata against the
// shadow reference store, returning the first mismatch. It is an error
// to call it without EnableShadow.
func (m *Memory) ShadowCheck() error {
	if m.shadow == nil {
		return fmt.Errorf("memsys: ShadowCheck without EnableShadow")
	}
	return m.shadowCheck()
}

func (m *Memory) shadowCheck() error {
	for f := Frame(0); f < m.nframes; f++ {
		fi := m.frames[f]
		got := frameShadow{fi.allocated(), fi.blockOrder(), fi.mtype(), fi.owner(), fi.cookie()}
		if got != m.shadow[f] {
			return fmt.Errorf("frame %d: packed decodes to %+v but shadow reference says %+v", f, got, m.shadow[f])
		}
	}
	return nil
}

// --- bitset helpers -------------------------------------------------

func (m *Memory) setFree(f Frame, order int) {
	m.freeBits[order][f/64] |= 1 << (f % 64)
	m.freeCount[order]++
}

func (m *Memory) clearFree(f Frame, order int) {
	m.freeBits[order][f/64] &^= 1 << (f % 64)
	m.freeCount[order]--
}

func (m *Memory) isFree(f Frame, order int) bool {
	return m.freeBits[order][f/64]&(1<<(f%64)) != 0
}

// lowestFree returns the lowest-addressed free block of the given order,
// or NoFrame. The per-order hint makes repeated allocation amortized
// cheap without sacrificing determinism.
func (m *Memory) lowestFree(order int) Frame {
	if m.freeCount[order] == 0 {
		return NoFrame
	}
	words := m.freeBits[order]
	start := m.hint[order]
	if start >= uint32(len(words)) {
		start = 0
	}
	// Scan from the hint to the end, then wrap. Because frees can land
	// below the hint this is a full circular scan in the worst case.
	for pass := 0; pass < 2; pass++ {
		lo, hi := start, uint32(len(words))
		if pass == 1 {
			lo, hi = 0, start
		}
		for w := lo; w < hi; w++ {
			if words[w] != 0 {
				m.hint[order] = w
				return Frame(w*64 + uint32(bits.TrailingZeros64(words[w])))
			}
		}
	}
	return NoFrame
}

// --- allocation ------------------------------------------------------

// Alloc allocates a 2^order-page block of the given migrate type. owner
// and cookie identify the mapping for compaction/reclaim callbacks and
// may be nil/0 for untracked memory (e.g. kernel allocations). It
// returns the first frame of the block, or NoFrame if no block of
// sufficient order is free (the caller decides whether to compact,
// reclaim, or fall back).
func (m *Memory) Alloc(order int, mtype MigrateType, owner Owner, cookie uint64) Frame {
	if order < 0 || order > MaxOrder {
		panic(check.Failf("memsys: bad order %d", order))
	}
	checkCookie(cookie)
	f := m.allocBlock(order)
	if f == NoFrame {
		if order >= HugeOrder {
			m.stats.FailedHuge++
		}
		return NoFrame
	}
	npages := Frame(1) << order
	ref := m.ownerRefFor(owner)
	m.setFrames(f, npages, order, mtype, ref, cookie)
	if order < HugeOrder {
		for i := Frame(0); i < npages; i++ {
			m.enqueueReclaim(f+i, mtype, owner)
		}
	}
	m.allocByType[mtype] += uint64(npages)
	m.freePages -= uint64(npages)
	if order >= HugeOrder {
		m.stats.AllocsHuge++
	} else {
		m.stats.Allocs4K++
	}
	return f
}

// AllocAt allocates the specific 2^order block starting at frame f, if
// that exact range is currently free (possibly inside a larger free
// block, which is split). Returns false if any part is allocated. Used
// to place allocations at chosen physical addresses, e.g. scattering
// non-movable "kernel" pages when modelling an aged system.
func (m *Memory) AllocAt(f Frame, order int, mtype MigrateType, owner Owner, cookie uint64) bool {
	if f%(1<<order) != 0 || f+(1<<order) > m.nframes {
		return false
	}
	checkCookie(cookie)
	// Find the free block containing f.
	found := -1
	var start Frame
	for o := order; o <= MaxOrder; o++ {
		aligned := f &^ (Frame(1)<<o - 1)
		if m.isFree(aligned, o) {
			found, start = o, aligned
			break
		}
	}
	if found < 0 {
		return false
	}
	m.clearFree(start, found)
	// Split down, keeping the half that contains f.
	for o := found; o > order; {
		o--
		half := start + Frame(1)<<o
		if f >= half {
			m.setFree(start, o)
			start = half
		} else {
			m.setFree(half, o)
		}
	}
	npages := Frame(1) << order
	ref := m.ownerRefFor(owner)
	m.setFrames(f, npages, order, mtype, ref, cookie)
	if order < HugeOrder {
		for i := Frame(0); i < npages; i++ {
			m.enqueueReclaim(f+i, mtype, owner)
		}
	}
	m.allocByType[mtype] += uint64(npages)
	m.freePages -= uint64(npages)
	if order >= HugeOrder {
		m.stats.AllocsHuge++
	} else {
		m.stats.Allocs4K++
	}
	return true
}

// allocBlock finds and removes a free block of at least the given order,
// splitting larger blocks as needed, and returns its first frame.
func (m *Memory) allocBlock(order int) Frame {
	for o := order; o <= MaxOrder; o++ {
		f := m.lowestFree(o)
		if f == NoFrame {
			continue
		}
		m.clearFree(f, o)
		// Split down to the requested order, freeing upper halves.
		for o > order {
			o--
			m.setFree(f+Frame(1)<<o, o)
		}
		return f
	}
	return NoFrame
}

// Free releases a 2^order-page block previously returned by Alloc. The
// block is coalesced with free buddies up to MaxOrder.
func (m *Memory) Free(f Frame, order int) {
	npages := Frame(1) << order
	if f+npages > m.nframes {
		panic(check.Failf("memsys: free out of range"))
	}
	for i := Frame(0); i < npages; i++ {
		fi := m.frames[f+i]
		if !fi.allocated() {
			panic(check.Failf("memsys: double free of frame %d", f+i))
		}
		m.allocByType[fi.mtype()]--
	}
	m.clearFrames(f, npages)
	m.freePages += uint64(npages)
	m.stats.Frees++
	m.freeBlock(f, order)
}

func (m *Memory) freeBlock(f Frame, order int) {
	for order < MaxOrder {
		buddy := f ^ (Frame(1) << order)
		if buddy >= m.nframes || !m.isFree(buddy, order) {
			break
		}
		m.clearFree(buddy, order)
		if buddy < f {
			f = buddy
		}
		order++
	}
	m.setFree(f, order)
}

// SplitAllocated rewrites the metadata of an allocated 2^order block so
// that each constituent page becomes an independent order-0 allocation.
// This is how huge page demotion and the frag utility's page splitting
// are modelled: the frames stay allocated but may now be freed, moved,
// or reclaimed one page at a time.
func (m *Memory) SplitAllocated(f Frame, order int) {
	npages := Frame(1) << order
	for i := Frame(0); i < npages; i++ {
		fi := &m.frames[f+i]
		if !fi.allocated() {
			panic(check.Failf("memsys: SplitAllocated on free frame"))
		}
		fi.setBlockOrder(0)
	}
	if m.shadow != nil {
		for i := Frame(0); i < npages; i++ {
			m.shadow[f+i].blockOrder = 0
		}
	}
}

// SetOwner updates the owner callback and cookie for one frame. The VM
// layer uses this when it remaps a frame (e.g. after promotion).
func (m *Memory) SetOwner(f Frame, owner Owner, cookie uint64) {
	fi := &m.frames[f]
	if !fi.allocated() {
		panic(check.Failf("memsys: SetOwner on free frame"))
	}
	checkCookie(cookie)
	ref := m.ownerRefFor(owner)
	fi.setOwnerCookie(ref, cookie)
	if m.shadow != nil {
		m.shadow[f].owner = ref
		m.shadow[f].cookie = cookie
	}
	// Huge-block head frames are enqueued too: when reclaim selects
	// one, the owner responds by demoting the mapping (Linux's
	// split-THP-under-reclaim), which turns the constituents into
	// ordinary candidates.
	m.enqueueReclaim(f, fi.mtype(), owner)
}

// SetMigrateType changes the migrate type of one allocated frame.
func (m *Memory) SetMigrateType(f Frame, mt MigrateType) {
	fi := &m.frames[f]
	if !fi.allocated() {
		panic(check.Failf("memsys: SetMigrateType on free frame"))
	}
	m.allocByType[fi.mtype()]--
	m.allocByType[mt]++
	fi.setMtype(mt)
	if m.shadow != nil {
		m.shadow[f].mtype = mt
	}
}

// MigrateTypeOf reports the migrate type of an allocated frame.
func (m *Memory) MigrateTypeOf(f Frame) MigrateType { return m.frames[f].mtype() }

// Allocated reports whether frame f is currently allocated.
func (m *Memory) Allocated(f Frame) bool { return m.frames[f].allocated() }

// --- fragmentation metrics -------------------------------------------

// FreeHugeBlocks returns how many order>=HugeOrder free blocks exist,
// i.e. how many huge pages could be allocated right now without any
// compaction or reclaim.
func (m *Memory) FreeHugeBlocks() uint64 {
	var n uint64
	for o := HugeOrder; o <= MaxOrder; o++ {
		n += uint64(m.freeCount[o]) << (o - HugeOrder)
	}
	return n
}

// FragmentationIndex returns the fraction of free memory that is NOT
// part of a huge-page-sized free block, in [0,1]. This matches the
// paper's definition of fragmentation level: the percentage of available
// memory in which no contiguous 2MB region exists.
func (m *Memory) FragmentationIndex() float64 {
	if m.freePages == 0 {
		return 0
	}
	inHuge := m.FreeHugeBlocks() * HugePages
	return 1 - float64(inHuge)/float64(m.freePages)
}

// FootprintBytes reports the simulator-side bytes backing this node's
// physical-memory metadata (cur), alongside what the pre-packing
// representation would have cost (legacy: 16 B/frame, same bitset and
// queue overheads), for the stats.Footprint report. Shadow mirroring is
// test-only and deliberately excluded.
func (m *Memory) FootprintBytes() (cur, legacy uint64) {
	var bitsBytes uint64
	for o := 0; o <= MaxOrder; o++ {
		bitsBytes += uint64(len(m.freeBits[o])) * 8
	}
	qBytes := uint64(cap(m.reclaimQ[0].items)+cap(m.reclaimQ[1].items)) * 4
	ownBytes := uint64(len(m.owners)) * 16
	fixed := bitsBytes + qBytes + ownBytes
	n := uint64(m.nframes)
	return n*uint64(unsafe.Sizeof(frameInfo{})) + fixed, n*16 + fixed
}

// --- compaction -------------------------------------------------------

// CompactionResult reports what one compaction attempt did.
type CompactionResult struct {
	Succeeded bool
	Migrated  int   // pages moved
	Block     Frame // first frame of the created huge block, if Succeeded
}

// TryCompactHuge attempts to create one free huge-page-sized block by
// migrating movable pages out of the most nearly-free 2MB-aligned
// region, mimicking the kernel's compaction scanner. On success the
// resulting block is left FREE (the caller allocates it). The number of
// migrated pages is returned so the caller can charge cycle costs.
//
// The scan is deterministic: regions are considered in ascending address
// order and the candidate needing the fewest migrations wins (ties go to
// the lower address).
func (m *Memory) TryCompactHuge() CompactionResult {
	m.stats.CompactionRuns++
	best := NoFrame
	bestCost := HugePages + 1
	for base := Frame(0); base < m.nframes; base += HugePages {
		cost, ok := m.regionCompactionCost(base)
		if ok && cost < bestCost {
			best, bestCost = base, cost
			if cost == 0 {
				break
			}
		}
	}
	if best == NoFrame {
		m.stats.CompactionFails++
		return CompactionResult{}
	}
	migrated, ok := m.evacuateRegion(best)
	if !ok {
		m.stats.CompactionFails++
		return CompactionResult{Migrated: migrated}
	}
	m.stats.PagesCompacted += uint64(migrated)
	return CompactionResult{Succeeded: true, Migrated: migrated, Block: best}
}

// regionCompactionCost returns how many pages must be migrated to empty
// the 2MB region starting at base, and whether emptying is possible at
// all (false if any page is unmovable/reclaimable/pinned-unmovable).
func (m *Memory) regionCompactionCost(base Frame) (int, bool) {
	cost := 0
	for i := Frame(0); i < HugePages; i++ {
		fi := m.frames[base+i]
		if !fi.allocated() {
			continue
		}
		if fi.blockOrder() >= HugeOrder {
			// A live huge page occupies this region; nothing to gain.
			return 0, false
		}
		switch fi.mtype() {
		case Movable, Pinned:
			cost++
		default:
			return 0, false
		}
	}
	if cost == HugePages {
		// Fully allocated; evacuating it buys nothing unless we have
		// 512 free pages elsewhere, and the kernel would not pick it.
		return 0, false
	}
	return cost, true
}

// evacuateRegion migrates every movable page out of the 2MB region at
// base to free frames outside the region, then returns the region to the
// free lists as one huge block. Migration destinations are order-0
// allocations, which is how the kernel's migration allocator behaves
// under pressure.
func (m *Memory) evacuateRegion(base Frame) (migrated int, ok bool) {
	for i := Frame(0); i < HugePages; i++ {
		f := base + i
		fi := m.frames[f]
		if !fi.allocated() {
			continue
		}
		dst := m.allocOutside(base)
		if dst == NoFrame {
			return migrated, false // out of destination memory mid-compaction
		}
		// Move metadata, notify owner, free the source frame.
		m.setFrames(dst, 1, 0, fi.mtype(), fi.owner(), fi.cookie())
		owner := m.ownerAt(fi.owner())
		m.enqueueReclaim(dst, fi.mtype(), owner)
		m.freePages-- // dst leaves the free pool
		if owner != nil {
			owner.FrameMoved(f, dst, fi.cookie())
		}
		m.clearFrames(f, 1)
		m.freePages++
		m.freeBlock(f, 0)
		migrated++
	}
	return migrated, true
}

// allocOutside grabs one free frame that is not inside the 2MB region at
// base. It deliberately does not split huge free blocks if any smaller
// block exists, preserving contiguity like the kernel's fallback order.
func (m *Memory) allocOutside(base Frame) Frame {
	for o := 0; o <= MaxOrder; o++ {
		f := m.lowestFree(o)
		if f == NoFrame {
			continue
		}
		if f >= base && f < base+HugePages {
			// The lowest free block lives inside the region being
			// evacuated; look for the next one at this order.
			f = m.lowestFreeExcluding(o, base)
			if f == NoFrame {
				continue
			}
		}
		m.clearFree(f, o)
		for o > 0 {
			o--
			m.setFree(f+Frame(1)<<o, o)
		}
		// The frame is off the free lists but metadata and freePages
		// accounting are the caller's responsibility.
		return f
	}
	return NoFrame
}

// lowestFreeExcluding is lowestFree but skips blocks inside the 2MB
// region at base.
func (m *Memory) lowestFreeExcluding(order int, base Frame) Frame {
	words := m.freeBits[order]
	for w := 0; w < len(words); w++ {
		word := words[w]
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			f := Frame(w*64 + bit)
			if f < base || f >= base+HugePages {
				return f
			}
			word &^= 1 << bit
		}
	}
	return NoFrame
}

// --- reclaim ----------------------------------------------------------

// ReclaimPages tries to evict up to want reclaimable or swappable frames
// (page cache first, then movable anonymous memory via owner callbacks),
// in ascending address order. It returns the number of page-cache frames
// dropped (cheap) and anonymous frames swapped out (expensive I/O)
// separately so the caller can charge the right costs. Pinned and
// unmovable frames are never touched.
func (m *Memory) ReclaimPages(want int) (dropped, swapped int) {
	if want <= 0 {
		return 0, 0
	}
	// Iterate the two passes while they make progress: splitting a huge
	// mapping frees nothing itself but enqueues 512 fresh candidates,
	// which the next round harvests. Progress is either pages freed or
	// queue growth (a split happened); anything else is a dead end.
	prevQ := -1
	for dropped+swapped < want {
		// Pass 1: page cache (no I/O on the simulated critical path;
		// the data was a clean copy of file contents).
		d := m.reclaimPass(Reclaimable, want-dropped-swapped)
		dropped += d
		var s int
		if dropped+swapped < want {
			// Pass 2: anonymous movable memory (swap-out, owner may
			// veto or split-and-requeue).
			s = m.reclaimPass(Movable, want-dropped-swapped)
			swapped += s
		}
		if d == 0 && s == 0 {
			qlen := m.reclaimQ[0].len() + m.reclaimQ[1].len()
			if qlen == prevQ {
				break // no reclaims and no splits: truly stuck
			}
			prevQ = qlen
		}
	}
	m.stats.PagesReclaimed += uint64(dropped + swapped)
	return dropped, swapped
}

func (m *Memory) reclaimPass(mt MigrateType, want int) int {
	qi := 0
	if mt == Movable {
		qi = 1
	}
	q := &m.reclaimQ[qi]
	got := 0
	// Each pop either reclaims a page, discards a stale entry, or
	// rotates a vetoed page to the back; the pop budget guarantees the
	// pass visits each current entry at most once.
	budget := q.len()
	for got < want && budget > 0 {
		budget--
		f, ok := q.pop()
		if !ok {
			break
		}
		fi := m.frames[f]
		if !fi.allocated() || fi.mtype() != mt || fi.owner() == 0 {
			continue // stale entry
		}
		if !m.ownerAt(fi.owner()).FrameReclaimed(f, fi.cookie()) {
			// Vetoed outright, or a huge mapping that the owner
			// demoted in place (its constituents are now queued):
			// rotate to the back like an inactive-list page.
			q.push(f)
			continue
		}
		// Re-read: the owner's callback may have split the block.
		fi = m.frames[f]
		if fi.blockOrder() >= HugeOrder {
			panic(check.Failf("memsys: owner approved freeing a huge block constituent"))
		}
		m.allocByType[fi.mtype()]--
		m.clearFrames(f, 1)
		m.freePages++
		m.freeBlock(f, 0)
		got++
	}
	return got
}

// ForEachAllocated visits every allocated frame in address order. It is
// intended for diagnostics and tests, not hot paths.
func (m *Memory) ForEachAllocated(fn func(f Frame, mt MigrateType)) {
	for f := Frame(0); f < m.nframes; f++ {
		if m.frames[f].allocated() {
			fn(f, m.frames[f].mtype())
		}
	}
}

// CheckInvariants validates internal consistency and returns an error
// describing the first violation. Tests call this after operation
// sequences, and the simcheck runtime sanitizer (check.Audit) calls it
// at policy-decision boundaries. Beyond free accounting and
// bitset/metadata agreement it verifies three structural properties:
//
//   - free lists are disjoint: no frame is covered by two free blocks;
//   - buddies are coalesced: no two same-order buddy blocks are both
//     free (Free merges eagerly, so such a pair means a missed merge);
//   - per-migratetype conservation: the incrementally-maintained
//     allocByType counters match a full scan of frame metadata.
//
// When the shadow mirror is enabled the packed metadata is additionally
// diffed against the unpacked reference store.
func (m *Memory) CheckInvariants() error {
	// coverage marks frames claimed by some free block during the scan,
	// to detect overlapping free blocks.
	coverage := make([]uint64, (uint32(m.nframes)+63)/64)
	covered := func(f Frame) bool { return coverage[f/64]&(1<<(f%64)) != 0 }
	cover := func(f Frame) { coverage[f/64] |= 1 << (f % 64) }

	var freeFromBits uint64
	for o := 0; o <= MaxOrder; o++ {
		var count uint32
		for w, word := range m.freeBits[o] {
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				word &^= 1 << bit
				f := Frame(w*64 + bit)
				count++
				if f%(1<<o) != 0 {
					return fmt.Errorf("order-%d free block at unaligned frame %d", o, f)
				}
				if o < MaxOrder {
					buddy := f ^ (Frame(1) << o)
					if buddy < m.nframes && m.isFree(buddy, o) {
						return fmt.Errorf("uncoalesced buddies: order-%d blocks %d and %d both free", o, f, buddy)
					}
				}
				for i := Frame(0); i < 1<<o; i++ {
					if f+i >= m.nframes {
						return fmt.Errorf("free block %d order %d exceeds memory", f, o)
					}
					if m.frames[f+i].allocated() {
						return fmt.Errorf("frame %d allocated but inside free block %d order %d", f+i, f, o)
					}
					if covered(f + i) {
						return fmt.Errorf("frame %d covered by two free blocks (second: block %d order %d)", f+i, f, o)
					}
					cover(f + i)
				}
			}
		}
		if count != m.freeCount[o] {
			return fmt.Errorf("order %d: freeCount=%d but bitset has %d", o, m.freeCount[o], count)
		}
		freeFromBits += uint64(count) << o
	}
	if freeFromBits != m.freePages {
		return fmt.Errorf("freePages=%d but bitsets say %d", m.freePages, freeFromBits)
	}
	var allocated uint64
	var byType [4]uint64
	for f := Frame(0); f < m.nframes; f++ {
		if m.frames[f].allocated() {
			allocated++
			byType[m.frames[f].mtype()]++
		} else if !covered(f) {
			return fmt.Errorf("frame %d neither allocated nor inside any free block", f)
		}
	}
	if allocated+m.freePages != uint64(m.nframes) {
		return fmt.Errorf("allocated %d + free %d != total %d", allocated, m.freePages, m.nframes)
	}
	for mt, n := range byType {
		if n != m.allocByType[mt] {
			return fmt.Errorf("migratetype %s: counter says %d frames but scan found %d",
				MigrateType(mt), m.allocByType[mt], n)
		}
	}
	if m.shadow != nil {
		if err := m.shadowCheck(); err != nil {
			return err
		}
	}
	return nil
}
