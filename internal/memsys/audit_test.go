package memsys

import (
	"strings"
	"testing"
)

// The seeded-corruption tests plant one specific structural violation
// each and require CheckInvariants to reject it with a message naming
// the right defect. (The clean path is covered throughout memsys_test
// and by FuzzAllocFree.)

func TestAuditDetectsConservationDrift(t *testing.T) {
	m := New(16 << 20)
	if m.Alloc(0, Movable, nil, 0) == NoFrame {
		t.Fatal("alloc failed")
	}
	m.allocByType[Movable]++ // counter drifts from frame metadata
	err := m.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "migratetype") {
		t.Fatalf("conservation drift not detected: %v", err)
	}
}

func TestAuditDetectsOverlappingFreeBlocks(t *testing.T) {
	m := New(16 << 20)
	// Frame 0 is inside the free max-order block at 0; marking it free
	// at order 0 as well makes two free blocks claim it.
	m.setFree(0, 0)
	m.freePages++ // keep the page accounting consistent so only the overlap trips
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("overlapping free blocks not detected")
	}
}

func TestAuditDetectsUncoalescedBuddies(t *testing.T) {
	m := New(16 << 20)
	// Replace one max-order free block with its two halves — exactly
	// the state Free's eager merging must never leave behind.
	m.clearFree(0, MaxOrder)
	m.setFree(0, MaxOrder-1)
	m.setFree(1<<(MaxOrder-1), MaxOrder-1)
	err := m.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "uncoalesced") {
		t.Fatalf("uncoalesced buddies not detected: %v", err)
	}
}

func TestAuditDetectsAllocatedInsideFreeBlock(t *testing.T) {
	m := New(16 << 20)
	f := m.Alloc(0, Unmovable, nil, 0)
	if f == NoFrame {
		t.Fatal("alloc failed")
	}
	m.setFree(f, 0) // free bit raised under a live allocation
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("allocated frame inside free block not detected")
	}
}

func TestAuditDetectsFreePageDrift(t *testing.T) {
	m := New(16 << 20)
	m.freePages--
	err := m.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "freePages") {
		t.Fatalf("freePages drift not detected: %v", err)
	}
}
