package memsys

import (
	"testing"
	"testing/quick"
)

const testMem = 64 << 20 // 64MB = 16384 frames = 32 regions

func newTestMem(t *testing.T) *Memory {
	t.Helper()
	return New(testMem)
}

func TestNewGeometry(t *testing.T) {
	m := newTestMem(t)
	if got := m.TotalPages(); got != testMem/PageSize {
		t.Fatalf("TotalPages = %d, want %d", got, testMem/PageSize)
	}
	if m.FreePages() != m.TotalPages() {
		t.Fatalf("fresh memory not fully free: %d/%d", m.FreePages(), m.TotalPages())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.FragmentationIndex() != 0 {
		t.Fatalf("fresh memory fragmented: %v", m.FragmentationIndex())
	}
}

func TestNewRoundsDown(t *testing.T) {
	m := New(uint64(PageSize)<<MaxOrder + 12345)
	if m.TotalPages() != 1<<MaxOrder {
		t.Fatalf("TotalPages = %d, want %d", m.TotalPages(), 1<<MaxOrder)
	}
}

func TestNewPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with sub-block memory did not panic")
		}
	}()
	New(PageSize)
}

func TestAllocFreeRoundTrip(t *testing.T) {
	m := newTestMem(t)
	f := m.Alloc(0, Movable, nil, 0)
	if f == NoFrame {
		t.Fatal("alloc failed on empty memory")
	}
	if !m.Allocated(f) {
		t.Fatal("frame not marked allocated")
	}
	if m.FreePages() != m.TotalPages()-1 {
		t.Fatalf("free pages = %d", m.FreePages())
	}
	m.Free(f, 0)
	if m.FreePages() != m.TotalPages() {
		t.Fatal("free did not restore count")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full coalescing: a huge alloc must succeed everywhere again.
	if m.FreeHugeBlocks() != m.TotalPages()/HugePages {
		t.Fatalf("coalescing failed: %d huge blocks", m.FreeHugeBlocks())
	}
}

func TestAllocDeterministicLowestFirst(t *testing.T) {
	m := newTestMem(t)
	a := m.Alloc(0, Movable, nil, 0)
	b := m.Alloc(0, Movable, nil, 0)
	if a != 0 || b != 1 {
		t.Fatalf("allocation not lowest-first: got %d, %d", a, b)
	}
	m.Free(a, 0)
	c := m.Alloc(0, Movable, nil, 0)
	if c != 0 {
		t.Fatalf("freed lowest frame not reused: got %d", c)
	}
}

func TestHugeAllocAligned(t *testing.T) {
	m := newTestMem(t)
	// Misalign the low memory with a single 4K page first.
	m.Alloc(0, Movable, nil, 0)
	h := m.Alloc(HugeOrder, Movable, nil, 0)
	if h == NoFrame {
		t.Fatal("huge alloc failed")
	}
	if h%HugePages != 0 {
		t.Fatalf("huge block misaligned at frame %d", h)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := newTestMem(t)
	f := m.Alloc(0, Movable, nil, 0)
	m.Free(f, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free(f, 0)
}

func TestExhaustion(t *testing.T) {
	m := New(4 << 20) // 1024 frames
	var got int
	for {
		if m.Alloc(0, Movable, nil, 0) == NoFrame {
			break
		}
		got++
	}
	if uint64(got) != m.TotalPages() {
		t.Fatalf("allocated %d of %d frames before failure", got, m.TotalPages())
	}
	if m.FreePages() != 0 {
		t.Fatalf("free pages %d after exhaustion", m.FreePages())
	}
}

func TestAllocAt(t *testing.T) {
	m := newTestMem(t)
	if !m.AllocAt(777, 0, Unmovable, nil, 0) {
		t.Fatal("AllocAt on free frame failed")
	}
	if m.AllocAt(777, 0, Unmovable, nil, 0) {
		t.Fatal("AllocAt on allocated frame succeeded")
	}
	if m.MigrateTypeOf(777) != Unmovable {
		t.Fatal("migrate type not recorded")
	}
	// The region containing frame 777 can no longer host a huge page.
	region := Frame(777 / HugePages * HugePages)
	if m.AllocAt(region, HugeOrder, Movable, nil, 0) {
		t.Fatal("huge AllocAt over occupied region succeeded")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.Free(777, 0)
	if !m.AllocAt(region, HugeOrder, Movable, nil, 0) {
		t.Fatal("huge AllocAt after free failed")
	}
}

func TestAllocAtRejectsMisaligned(t *testing.T) {
	m := newTestMem(t)
	if m.AllocAt(3, HugeOrder, Movable, nil, 0) {
		t.Fatal("misaligned huge AllocAt succeeded")
	}
}

func TestSplitAllocatedEnablesPageFrees(t *testing.T) {
	m := newTestMem(t)
	h := m.Alloc(HugeOrder, Unmovable, nil, 0)
	m.SplitAllocated(h, HugeOrder)
	for i := Frame(1); i < HugePages; i++ {
		m.Free(h+i, 0)
	}
	if m.FreePages() != m.TotalPages()-1 {
		t.Fatalf("free pages = %d", m.FreePages())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// First page of the region still pins it: no huge block there.
	if m.AllocAt(h, HugeOrder, Movable, nil, 0) {
		t.Fatal("region with retained page allocated as huge")
	}
}

func TestFragmentationIndex(t *testing.T) {
	m := newTestMem(t)
	// Pin the first page of every region: no free 2MB blocks remain.
	for f := Frame(0); f < Frame(m.TotalPages()); f += HugePages {
		if !m.AllocAt(f, 0, Unmovable, nil, 0) {
			t.Fatal("AllocAt failed")
		}
	}
	if m.FreeHugeBlocks() != 0 {
		t.Fatalf("huge blocks remain: %d", m.FreeHugeBlocks())
	}
	if got := m.FragmentationIndex(); got != 1 {
		t.Fatalf("fragmentation index = %v, want 1", got)
	}
}

// trackingOwner records moves and accepts reclaims.
type trackingOwner struct {
	moves    map[Frame]Frame
	reclaims []Frame
	veto     bool
}

func newTrackingOwner() *trackingOwner {
	return &trackingOwner{moves: make(map[Frame]Frame)}
}

func (o *trackingOwner) FrameMoved(old, new Frame, cookie uint64) {
	o.moves[old] = new
}

func (o *trackingOwner) FrameReclaimed(f Frame, cookie uint64) bool {
	if o.veto {
		return false
	}
	o.reclaims = append(o.reclaims, f)
	return true
}

func TestCompactionCreatesHugeBlock(t *testing.T) {
	m := newTestMem(t)
	o := newTrackingOwner()
	// Scatter one movable page in every region so no huge block exists.
	var pages []Frame
	for f := Frame(0); f < Frame(m.TotalPages()); f += HugePages {
		if !m.AllocAt(f+5, 0, Movable, o, 0) {
			t.Fatal("AllocAt failed")
		}
		pages = append(pages, f+5)
	}
	if m.FreeHugeBlocks() != 0 {
		t.Fatal("setup failed: huge blocks remain")
	}
	res := m.TryCompactHuge()
	if !res.Succeeded {
		t.Fatal("compaction failed on all-movable fragmentation")
	}
	if res.Migrated != 1 {
		t.Fatalf("migrated %d pages, want 1", res.Migrated)
	}
	if len(o.moves) != 1 {
		t.Fatalf("owner saw %d moves, want 1", len(o.moves))
	}
	if m.FreeHugeBlocks() == 0 {
		t.Fatal("no huge block after successful compaction")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = pages
}

func TestCompactionSkipsUnmovable(t *testing.T) {
	m := newTestMem(t)
	for f := Frame(0); f < Frame(m.TotalPages()); f += HugePages {
		if !m.AllocAt(f+5, 0, Unmovable, nil, 0) {
			t.Fatal("AllocAt failed")
		}
	}
	res := m.TryCompactHuge()
	if res.Succeeded {
		t.Fatal("compaction succeeded despite unmovable pages everywhere")
	}
}

func TestCompactionSkipsHugeBlocks(t *testing.T) {
	m := newTestMem(t)
	o := newTrackingOwner()
	// Region 0: one movable page (the only evacuable candidate).
	// Region 1: a live huge page — compaction must not tear it apart.
	// Remaining regions: unmovable fill, except one free destination
	// page in region 2.
	if !m.AllocAt(5, 0, Movable, o, 0) {
		t.Fatal("AllocAt failed")
	}
	if !m.AllocAt(HugePages, HugeOrder, Movable, o, 1) {
		t.Fatal("huge AllocAt failed")
	}
	total := Frame(m.TotalPages())
	dest := Frame(2*HugePages + 7)
	for f := Frame(2 * HugePages); f < total; f++ {
		if f == dest {
			continue
		}
		if !m.AllocAt(f, 0, Unmovable, nil, 0) {
			t.Fatal("fill AllocAt failed")
		}
	}
	res := m.TryCompactHuge()
	if !res.Succeeded || res.Block != 0 {
		t.Fatalf("compaction result %+v, want success at region 0", res)
	}
	if len(o.moves) != 1 {
		t.Fatalf("moves = %d, want 1 (huge pages must not be torn apart)", len(o.moves))
	}
	if to, ok := o.moves[5]; !ok || to != dest {
		t.Fatalf("moves = %v, want 5→%d", o.moves, dest)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReclaimOrder(t *testing.T) {
	m := newTestMem(t)
	cache := newTrackingOwner()
	anon := newTrackingOwner()
	cf := m.Alloc(0, Reclaimable, cache, 0)
	af := m.Alloc(0, Movable, anon, 0)
	dropped, swapped := m.ReclaimPages(1)
	if dropped != 1 || swapped != 0 {
		t.Fatalf("reclaim = (%d,%d), want page cache first", dropped, swapped)
	}
	if len(cache.reclaims) != 1 || cache.reclaims[0] != cf {
		t.Fatal("page cache frame not reclaimed")
	}
	dropped, swapped = m.ReclaimPages(1)
	if dropped != 0 || swapped != 1 {
		t.Fatalf("reclaim = (%d,%d), want anonymous swap second", dropped, swapped)
	}
	if len(anon.reclaims) != 1 || anon.reclaims[0] != af {
		t.Fatal("anonymous frame not swapped")
	}
}

func TestReclaimRespectsVetoAndPinned(t *testing.T) {
	m := newTestMem(t)
	veto := newTrackingOwner()
	veto.veto = true
	m.Alloc(0, Movable, veto, 0)
	m.Alloc(0, Pinned, nil, 0)
	m.Alloc(0, Unmovable, nil, 0)
	dropped, swapped := m.ReclaimPages(3)
	if dropped != 0 || swapped != 0 {
		t.Fatalf("reclaim = (%d,%d), want nothing reclaimable", dropped, swapped)
	}
}

func TestStatsCounters(t *testing.T) {
	m := newTestMem(t)
	m.Alloc(0, Movable, nil, 0)
	m.Alloc(HugeOrder, Movable, nil, 0)
	s := m.Stats()
	if s.Allocs4K != 1 || s.AllocsHuge != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestQuickAllocFreeInvariants drives random alloc/free sequences and
// checks the allocator's internal consistency after each batch.
func TestQuickAllocFreeInvariants(t *testing.T) {
	type op struct {
		Alloc bool
		Order uint8
		Pick  uint16
	}
	f := func(ops []op) bool {
		m := New(16 << 20) // 4096 frames
		type block struct {
			f     Frame
			order int
		}
		var live []block
		for _, o := range ops {
			if o.Alloc || len(live) == 0 {
				order := int(o.Order) % (MaxOrder + 1)
				fr := m.Alloc(order, Movable, nil, 0)
				if fr != NoFrame {
					live = append(live, block{fr, order})
				}
			} else {
				i := int(o.Pick) % len(live)
				m.Free(live[i].f, live[i].order)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllocAtInvariants drives random targeted allocations.
func TestQuickAllocAtInvariants(t *testing.T) {
	f := func(targets []uint16) bool {
		m := New(16 << 20)
		total := Frame(m.TotalPages())
		for _, tg := range targets {
			m.AllocAt(Frame(tg)%total, 0, Unmovable, nil, 0)
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionPreservesInvariants(t *testing.T) {
	m := newTestMem(t)
	o := newTrackingOwner()
	// Random-ish scatter of movable pages, then repeated compaction.
	for f := Frame(0); f < Frame(m.TotalPages()); f += 97 {
		m.AllocAt(f, 0, Movable, o, 0)
	}
	for i := 0; i < 8; i++ {
		m.TryCompactHuge()
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after compaction %d: %v", i, err)
		}
	}
}
