package memsys

import (
	"testing"
	"unsafe"
)

// TestFrameInfoSize is the runtime twin of the compile-time array
// assertion in memsys.go and the hook the CI step greps for: frame
// metadata must cost at most 8 bytes per frame, pointer-free, or a
// paper-geometry node's metadata array doubles.
func TestFrameInfoSize(t *testing.T) {
	if s := unsafe.Sizeof(frameInfo{}); s > 8 {
		t.Fatalf("frameInfo is %d bytes, budget is 8", s)
	}
	var fi frameInfo
	if fi.allocated() || fi.blockOrder() != 0 || fi.owner() != 0 || fi.cookie() != 0 {
		t.Fatal("zero frameInfo does not decode as a free frame")
	}
}

// TestFrameInfoPackRoundTrip drives the packed encode/decode through
// every field boundary value.
func TestFrameInfoPackRoundTrip(t *testing.T) {
	orders := []int{0, 1, HugeOrder, MaxOrder}
	mtypes := []MigrateType{Movable, Unmovable, Reclaimable, Pinned}
	owners := []ownerRef{0, 1, maxOwnerRefs - 1}
	cookies := []uint64{0, 1, CookieLimit - 1}
	for _, o := range orders {
		for _, mt := range mtypes {
			for _, ref := range owners {
				for _, ck := range cookies {
					fi := packFrame(o, mt, ref, ck)
					if !fi.allocated() {
						t.Fatalf("packFrame(%d,%d,%d,%d) not allocated", o, mt, ref, ck)
					}
					if fi.blockOrder() != uint8(o) || fi.mtype() != mt || fi.owner() != ref || fi.cookie() != ck {
						t.Fatalf("round trip (%d,%d,%d,%d) → (%d,%d,%d,%d)",
							o, mt, ref, ck, fi.blockOrder(), fi.mtype(), fi.owner(), fi.cookie())
					}
				}
			}
		}
	}
}

// TestFrameInfoSettersIndependent checks that each in-place setter
// touches only its own field.
func TestFrameInfoSettersIndependent(t *testing.T) {
	fi := packFrame(HugeOrder, Reclaimable, 3, 0xDEADBEEF)
	fi.setBlockOrder(0)
	if fi.mtype() != Reclaimable || fi.owner() != 3 || fi.cookie() != 0xDEADBEEF || !fi.allocated() {
		t.Fatal("setBlockOrder disturbed another field")
	}
	fi.setMtype(Pinned)
	if fi.blockOrder() != 0 || fi.owner() != 3 || fi.cookie() != 0xDEADBEEF {
		t.Fatal("setMtype disturbed another field")
	}
	fi.setOwnerCookie(maxOwnerRefs-1, CookieLimit-1)
	if fi.blockOrder() != 0 || fi.mtype() != Pinned || !fi.allocated() {
		t.Fatal("setOwnerCookie disturbed another field")
	}
	if fi.owner() != maxOwnerRefs-1 || fi.cookie() != CookieLimit-1 {
		t.Fatal("setOwnerCookie did not land")
	}
}

// FuzzFrameInfoPack fuzzes the packed encode/decode round trip over the
// full field domains (inputs are masked into range, mirroring what
// checkCookie and the allocator entry points enforce).
func FuzzFrameInfoPack(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(0), uint64(0))
	f.Add(uint8(MaxOrder), uint8(Pinned), uint16(maxOwnerRefs-1), CookieLimit-1)
	f.Add(uint8(3), uint8(2), uint16(7), uint64(1)<<40)
	f.Fuzz(func(t *testing.T, order, mt uint8, ref uint16, cookie uint64) {
		o := int(order) % (MaxOrder + 1)
		m := MigrateType(mt % 4)
		r := ownerRef(ref) % maxOwnerRefs
		ck := cookie % CookieLimit
		fi := packFrame(o, m, r, ck)
		if !fi.allocated() || fi.blockOrder() != uint8(o) || fi.mtype() != m || fi.owner() != r || fi.cookie() != ck {
			t.Fatalf("round trip (%d,%d,%d,%d) → (alloc=%v,%d,%d,%d,%d)",
				o, m, r, ck, fi.allocated(), fi.blockOrder(), fi.mtype(), fi.owner(), fi.cookie())
		}
	})
}
