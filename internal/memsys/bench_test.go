package memsys

import "testing"

func BenchmarkAllocFree4K(b *testing.B) {
	m := New(256 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := m.Alloc(0, Movable, nil, 0)
		if f == NoFrame {
			b.Fatal("oom")
		}
		m.Free(f, 0)
	}
}

func BenchmarkAllocFreeHuge(b *testing.B) {
	m := New(256 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := m.Alloc(HugeOrder, Movable, nil, 0)
		if f == NoFrame {
			b.Fatal("oom")
		}
		m.Free(f, HugeOrder)
	}
}

func BenchmarkFillThenDrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(64 << 20)
		var frames []Frame
		for {
			f := m.Alloc(0, Movable, nil, 0)
			if f == NoFrame {
				break
			}
			frames = append(frames, f)
		}
		for _, f := range frames {
			m.Free(f, 0)
		}
	}
}

func BenchmarkCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := New(64 << 20)
		o := newTrackingOwner()
		for f := Frame(0); f < Frame(m.TotalPages()); f += HugePages {
			m.AllocAt(f+1, 0, Movable, o, 0)
		}
		b.StartTimer()
		if res := m.TryCompactHuge(); !res.Succeeded {
			b.Fatal("compaction failed")
		}
	}
}
