package memsys

import "graphmem/internal/check"

// Clone returns an independent deep copy of the node: frame metadata,
// buddy bitsets and counters, reclaim queues, and allocator stats. The
// clone shares nothing mutable with the original, so allocations,
// compaction, and reclaim on one are invisible to the other.
//
// Frame metadata refers to owners (address spaces, page caches,
// workload hogs) through the interned owner table, and those owners
// belong to the ORIGINAL machine. Leaving the table in place would make
// compaction and reclaim on the clone mutate the original's page tables
// — the classic fork-aliasing bug. The caller therefore supplies remap,
// which must translate every distinct owner it ever registered to that
// owner's counterpart in the forked machine; remap receives the clone
// under construction, since replacement owners are typically bound to
// it. Clone panics if remap returns nil for a table entry: an owner the
// fork layer cannot account for means the snapshot is incomplete, and a
// loud failure beats silent cross-fork corruption.
//
// Because frames hold only the small interned handle (see ownerRef),
// the frame array copies as one flat pointer-free memmove and remap
// runs once per distinct owner, not once per frame — this is the hot
// half of a fork, and shard bring-up clones the prepared machine once
// per extra shard.
func (m *Memory) Clone(remap func(old Owner, clone *Memory) Owner) *Memory {
	c := &Memory{
		nframes:     m.nframes,
		frames:      append([]frameInfo(nil), m.frames...),
		freeCount:   m.freeCount,
		hint:        m.hint,
		freePages:   m.freePages,
		allocByType: m.allocByType,
		owners:      append([]Owner(nil), m.owners...),
		stats:       m.stats,
	}
	if m.shadow != nil {
		// Test-only differential mirror: keep it coherent on the clone
		// too, so shadow-enabled forks stay checkable.
		c.shadow = append([]frameShadow(nil), m.shadow...)
	}
	for o := range m.freeBits {
		c.freeBits[o] = append([]uint64(nil), m.freeBits[o]...)
	}
	for qi := range m.reclaimQ {
		c.reclaimQ[qi] = m.reclaimQ[qi].clone()
	}
	for i := 1; i < len(c.owners); i++ {
		nw := remap(c.owners[i], c)
		if nw == nil {
			panic(check.Failf("memsys: Clone remap returned nil for owner %d (%T): snapshot incomplete", i, c.owners[i]))
		}
		c.owners[i] = nw
	}
	return c
}

// clone deep-copies one reclaim FIFO, preserving candidate order.
func (q *frameQueue) clone() frameQueue {
	return frameQueue{
		items: append([]Frame(nil), q.items...),
		head:  q.head,
	}
}
