package memsys

import (
	"testing"

	"graphmem/internal/check"
)

// fuzzOwner is the shadow bookkeeping for tracked order-0 movable
// allocations: compaction moves them (FrameMoved) and reclaim may swap
// them out (FrameReclaimed), and the shadow must stay coherent through
// both, exactly like the VM layer's mapping tables.
type fuzzOwner struct {
	t       *testing.T
	entries []fuzzEntry
}

type fuzzEntry struct {
	frame Frame
	live  bool
}

func (o *fuzzOwner) FrameMoved(old, new Frame, cookie uint64) {
	e := &o.entries[cookie]
	if !e.live || e.frame != old {
		o.t.Fatalf("FrameMoved(%d→%d, cookie %d): shadow has {frame %d, live %v}",
			old, new, cookie, e.frame, e.live)
	}
	e.frame = new
}

func (o *fuzzOwner) FrameReclaimed(f Frame, cookie uint64) bool {
	e := &o.entries[cookie]
	if !e.live || e.frame != f {
		return false // stale queue entry
	}
	if (uint64(f)+cookie)%3 == 0 {
		return false // veto: page is "hot"
	}
	e.live = false
	return true
}

// FuzzAllocFree replays arbitrary Alloc/Free/split/compaction/reclaim
// sequences against the buddy allocator and audits the full invariant
// set (free-list disjointness, buddy coalescing, per-migratetype frame
// conservation) every few operations. Run it with -tags simcheck to
// also exercise the check.Audit path.
func FuzzAllocFree(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 7, 3, 0, 4, 8, 5})
	f.Add([]byte{1, 1, 1, 4, 4, 4})
	f.Add([]byte{0, 0, 0, 0, 8, 8, 8, 8, 7, 7})
	f.Add([]byte{2, 0xF2, 6, 5, 2, 0x32, 6, 9, 3})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := New(16 << 20) // 4096 frames
		// Mirror every metadata write into the unpacked reference
		// layout: each audit below then also cross-checks the packed
		// words field by field (shadowCheck via CheckInvariants).
		m.EnableShadow()
		owner := &fuzzOwner{t: t}
		var huge []Frame // movable huge blocks, nil owner: immune to move/reclaim
		type ublock struct {
			frame Frame
			order int
		}
		var unmov []ublock

		audit := func(step int) {
			t.Helper()
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", step, err)
			}
			check.Audit("memsys", m.CheckInvariants)
		}

		for i := 0; i < len(data); i++ {
			op := data[i] % 10
			arg := 0
			if i+1 < len(data) {
				arg = int(data[i+1])
			}
			switch op {
			case 0: // tracked order-0 movable alloc
				fr := m.Alloc(0, Movable, owner, uint64(len(owner.entries)))
				if fr != NoFrame {
					owner.entries = append(owner.entries, fuzzEntry{frame: fr, live: true})
				}
			case 1: // movable huge block, nil owner
				fr := m.Alloc(HugeOrder, Movable, nil, 0)
				if fr != NoFrame {
					huge = append(huge, fr)
				}
			case 2: // unmovable block, any order up to huge
				order := arg % (HugeOrder + 1)
				fr := m.Alloc(order, Unmovable, nil, 0)
				if fr != NoFrame {
					unmov = append(unmov, ublock{fr, order})
				}
			case 3: // free a tracked page (unless reclaim already took it)
				if len(owner.entries) == 0 {
					continue
				}
				e := &owner.entries[arg%len(owner.entries)]
				if e.live {
					m.Free(e.frame, 0)
					e.live = false
				}
			case 4: // free a huge block
				if len(huge) == 0 {
					continue
				}
				j := arg % len(huge)
				m.Free(huge[j], HugeOrder)
				huge[j] = huge[len(huge)-1]
				huge = huge[:len(huge)-1]
			case 5: // free an unmovable block
				if len(unmov) == 0 {
					continue
				}
				j := arg % len(unmov)
				m.Free(unmov[j].frame, unmov[j].order)
				unmov[j] = unmov[len(unmov)-1]
				unmov = unmov[:len(unmov)-1]
			case 6: // split an unmovable huge block, keep only its head page
				for j := range unmov {
					if unmov[j].order != HugeOrder {
						continue
					}
					m.SplitAllocated(unmov[j].frame, HugeOrder)
					for k := Frame(1); k < HugePages; k++ {
						m.Free(unmov[j].frame+k, 0)
					}
					unmov[j].order = 0
					break
				}
			case 7:
				m.TryCompactHuge()
			case 8:
				m.ReclaimPages(1 + arg%64)
			case 9: // pin/unpin a tracked page (compaction still moves it)
				if len(owner.entries) == 0 {
					continue
				}
				j := arg % len(owner.entries)
				e := owner.entries[j]
				if !e.live {
					continue
				}
				if m.MigrateTypeOf(e.frame) == Movable {
					m.SetMigrateType(e.frame, Pinned)
				} else {
					m.SetMigrateType(e.frame, Movable)
				}
			}
			if i%16 == 0 {
				audit(i)
			}
		}
		audit(len(data))

		// Shadow state must agree with the allocator before teardown.
		for j, e := range owner.entries {
			if e.live && !m.Allocated(e.frame) {
				t.Fatalf("tracked entry %d: frame %d live in shadow but free in allocator", j, e.frame)
			}
		}

		// Tear down; all memory must return, fully coalesced.
		for j := range owner.entries {
			if owner.entries[j].live {
				m.Free(owner.entries[j].frame, 0)
			}
		}
		for _, fr := range huge {
			m.Free(fr, HugeOrder)
		}
		for _, b := range unmov {
			m.Free(b.frame, b.order)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("after teardown: %v", err)
		}
		if m.FreePages() != m.TotalPages() {
			t.Fatalf("leak: %d of %d pages free after teardown", m.FreePages(), m.TotalPages())
		}
	})
}
