package memsys

import (
	"math/bits"

	"graphmem/internal/ckpt"
)

// Checkpoint codec (DESIGN.md §5e). The frame-metadata array is
// pointer-free 8-byte words (PR 9), so the bulk of a node serializes
// as one raw slice write — the near-memcpy path the persistent store
// depends on. Owners are the one indirection: frames hold interned
// ownerRefs into the owners table, and the table entries live outside
// this package (an address space, a memhog, a page cache), so Encode
// and Decode take a callback that serializes each distinct owner in
// slot order — exactly the once-per-owner remapping contract Clone
// has, transplanted to disk. Slot order is load-bearing: every
// frame word carries its owner's table index.
//
// Decode validates everything a hostile image could use to reach an
// out-of-bounds access on the simulation path — array geometry against
// nframes, free-bitmap population against the free counters, per-frame
// owner refs and block orders, reclaim-queue bounds — and fails the
// Decoder instead of panicking. Deeper conservation auditing stays
// where it lives today, in the simcheck build's audits.

func (s *Stats) encode(e *ckpt.Encoder) {
	e.U64(s.Allocs4K)
	e.U64(s.AllocsHuge)
	e.U64(s.FailedHuge)
	e.U64(s.Frees)
	e.U64(s.PagesCompacted)
	e.U64(s.PagesReclaimed)
	e.U64(s.CompactionRuns)
	e.U64(s.CompactionFails)
}

func (s *Stats) decode(d *ckpt.Decoder) {
	s.Allocs4K = d.U64()
	s.AllocsHuge = d.U64()
	s.FailedHuge = d.U64()
	s.Frees = d.U64()
	s.PagesCompacted = d.U64()
	s.PagesReclaimed = d.U64()
	s.CompactionRuns = d.U64()
	s.CompactionFails = d.U64()
}

func (q *frameQueue) encode(e *ckpt.Encoder) {
	ckpt.EncodeSlice(e, q.items)
	e.Int(q.head)
}

func (q *frameQueue) decode(d *ckpt.Decoder, nframes Frame) {
	q.items = ckpt.DecodeSlice[Frame](d)
	q.head = d.Int()
	if q.head < 0 || q.head > len(q.items) {
		d.Failf("memsys: reclaim queue head %d out of range [0,%d]", q.head, len(q.items))
		return
	}
	for _, f := range q.items {
		if f >= nframes {
			d.Failf("memsys: reclaim queue entry %d beyond %d frames", f, nframes)
			return
		}
	}
}

// Encode serializes the node. owner is invoked once per interned owner
// table slot (slot 0, the nil owner, is skipped) in slot order.
func (m *Memory) Encode(e *ckpt.Encoder, owner func(*ckpt.Encoder, Owner)) {
	e.U32(uint32(m.nframes))
	ckpt.EncodeSlice(e, m.frames)
	if m.shadow != nil {
		// Test-only differential mirror; a machine staged for
		// checkpointing never carries one.
		e.Failf("memsys: shadow mirroring enabled; refusing to serialize")
	}
	for o := range m.freeBits {
		ckpt.EncodeSlice(e, m.freeBits[o])
	}
	e.Raw(ckpt.View(&m.freeCount))
	e.Raw(ckpt.View(&m.hint))
	e.U64(m.freePages)
	for qi := range m.reclaimQ {
		m.reclaimQ[qi].encode(e)
	}
	e.Raw(ckpt.View(&m.allocByType))
	e.Int(len(m.owners))
	for i, o := range m.owners {
		if i == 0 {
			if o != nil {
				e.Failf("memsys: owner slot 0 is %T, want nil", o)
			}
			continue
		}
		owner(e, o)
	}
	m.stats.encode(e)
}

// Decode is Encode's inverse, into a fresh receiver. owner is invoked
// once per non-nil owner table slot in slot order and must return the
// reconstructed owner bound to the Memory under construction (it may
// record state against m, whose frame metadata is already decoded); a
// nil return fails the load. On any decoder error the receiver must be
// discarded.
func (m *Memory) Decode(d *ckpt.Decoder, owner func(*ckpt.Decoder, *Memory) Owner) {
	m.nframes = Frame(d.U32())
	m.frames = ckpt.DecodeSlice[frameInfo](d)
	m.shadow = nil // never serialized; EnableShadow can reseed it
	for o := range m.freeBits {
		m.freeBits[o] = ckpt.DecodeSlice[uint64](d)
	}
	d.Raw(ckpt.View(&m.freeCount))
	d.Raw(ckpt.View(&m.hint))
	m.freePages = d.U64()
	for qi := range m.reclaimQ {
		m.reclaimQ[qi].decode(d, m.nframes)
	}
	d.Raw(ckpt.View(&m.allocByType))
	nOwners := d.Len(maxOwnerRefs)
	m.owners = nil
	if nOwners > 0 {
		m.owners = make([]Owner, 1, nOwners)
		for i := 1; i < nOwners; i++ {
			o := owner(d, m)
			if o == nil {
				if d.Err() == nil {
					d.Failf("memsys: owner slot %d reconstructed as nil", i)
				}
				return
			}
			m.owners = append(m.owners, o)
		}
	}
	m.stats.decode(d)
	m.validate(d)
}

// validate fails the decoder unless the decoded node is structurally
// sound: every index the allocator dereferences unchecked must be in
// bounds, and the cheap conservation invariants must hold.
func (m *Memory) validate(d *ckpt.Decoder) {
	if d.Err() != nil {
		return
	}
	if uint64(len(m.frames)) != uint64(m.nframes) {
		d.Failf("memsys: %d frame words for %d frames", len(m.frames), m.nframes)
		return
	}
	words := int((uint32(m.nframes) + 63) / 64)
	var freeByCount uint64
	for o := range m.freeBits {
		if len(m.freeBits[o]) != words {
			d.Failf("memsys: order-%d bitmap has %d words, want %d", o, len(m.freeBits[o]), words)
			return
		}
		var pop uint32
		for w, bitsWord := range m.freeBits[o] {
			pop += uint32(bits.OnesCount64(bitsWord))
			for bw := bitsWord; bw != 0; bw &= bw - 1 {
				f := Frame(w*64 + bits.TrailingZeros64(bw))
				if f%(1<<o) != 0 || uint64(f)+1<<o > uint64(m.nframes) {
					d.Failf("memsys: free order-%d block at frame %d misaligned or out of range", o, f)
					return
				}
			}
		}
		if pop != m.freeCount[o] {
			d.Failf("memsys: order-%d free count %d but bitmap has %d blocks", o, m.freeCount[o], pop)
			return
		}
		freeByCount += uint64(m.freeCount[o]) << o
	}
	if freeByCount != m.freePages {
		d.Failf("memsys: free pages %d but free blocks sum to %d", m.freePages, freeByCount)
		return
	}
	var byType [4]uint64
	for _, fi := range m.frames {
		if !fi.allocated() {
			if fi.w != 0 {
				d.Failf("memsys: non-zero metadata on unallocated frame")
				return
			}
			continue
		}
		if int(fi.blockOrder()) > MaxOrder {
			d.Failf("memsys: frame block order %d beyond MaxOrder", fi.blockOrder())
			return
		}
		if r := fi.owner(); r != 0 && int(r) >= len(m.owners) {
			d.Failf("memsys: frame owner ref %d beyond %d-entry table", r, len(m.owners))
			return
		}
		byType[fi.mtype()]++
	}
	if byType != m.allocByType {
		d.Failf("memsys: per-type allocation counters %v do not match frame scan %v", m.allocByType, byType)
		return
	}
	if alloc := byType[0] + byType[1] + byType[2] + byType[3]; alloc+m.freePages != uint64(m.nframes) {
		d.Failf("memsys: %d allocated + %d free != %d frames", alloc, m.freePages, m.nframes)
	}
}
