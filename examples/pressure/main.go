// Pressure: reproduce the paper's §4.3.1 finding that Linux's THP
// policy loses its gains as free memory shrinks, that allocation order
// decides who gets the remaining huge pages, and that oversubscription
// falls off a swap cliff for every policy.
//
//	go run ./examples/pressure
package main

import (
	"fmt"
	"log"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
)

func main() {
	// Big enough that the working set spans dozens of 2MB regions —
	// huge page competition needs room to play out. Takes ~1 minute.
	g := gen.PowerLaw(gen.PowerLawConfig{
		N: 1 << 21, AvgDegree: 5, Alpha: 0.75,
		HubsClustered: true, Seed: 7,
	})
	wss := analytics.WSSBytes(analytics.BFS, g)
	fmt.Printf("Twitter-like graph: %d vertices, %d edges, WSS %.1fMB\n\n",
		g.N, g.NumEdges(), float64(wss)/(1<<20))

	run := func(policy core.Policy, order analytics.AllocOrder, env core.Environment) uint64 {
		r, err := core.Run(core.RunSpec{
			Graph: g, App: analytics.BFS,
			Reorder: reorder.Identity, Order: order,
			Policy: policy, Env: env,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r.TotalCycles
	}

	base := run(core.Base4K(), analytics.Natural, core.FreshBoot())
	fmt.Printf("baseline (4KB pages, fresh boot): %d cycles\n\n", base)
	fmt.Printf("%-22s %12s %12s %12s\n", "free memory beyond WSS", "thp-natural", "thp-optimized",
		"4k")
	fmt.Printf("%-22s %12s %12s %12s\n", "", "(prop last)", "(prop first)", "")

	// Slack levels as fractions of the working set, from oversubscribed
	// to plentiful (the paper sweeps −0.5GB…+3GB on 16GB working sets).
	for _, f := range []float64{-0.03, 0, 0.05, 0.1, 0.2} {
		delta := int64(f * float64(wss))
		env := core.Pressured(delta)
		nat := run(core.THPAlways(), analytics.Natural, env)
		opt := run(core.THPAlways(), analytics.PropFirst, env)
		p4k := run(core.Base4K(), analytics.Natural, env)
		fmt.Printf("%+20.0fMB %11.2fx %11.2fx %11.2fx\n",
			float64(delta)/(1<<20),
			float64(base)/float64(nat),
			float64(base)/float64(opt),
			float64(base)/float64(p4k))
	}
	fmt.Println("\nReading the table: with plenty of slack every THP row wins; as slack")
	fmt.Println("shrinks the natural allocation order starves the property array of huge")
	fmt.Println("pages while property-first stays near ideal; below zero slack, swap I/O")
	fmt.Println("dominates all policies — the paper's three pressure phases.")
}
