// Quickstart: run BFS on a Kronecker graph under 4KB pages and under
// Linux's transparent huge page policy on the simulated machine, and
// compare runtimes and TLB behaviour — the paper's Fig. 1 in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
)

func main() {
	// A full-scale Kronecker network (1M vertices): the property array
	// spans several 2MB regions and far exceeds the 4KB TLB reach, so
	// the demo shows the paper's Fig. 1 contrast on the real Haswell
	// TLB geometry. Takes ~20 seconds.
	g := gen.Generate(gen.Kron25, gen.ScaleFull, false)
	fmt.Printf("Kronecker graph: %d vertices, %d edges, %.1fMB working set\n\n",
		g.N, g.NumEdges(), float64(analytics.WSSBytes(analytics.BFS, g))/(1<<20))

	run := func(policy core.Policy) *core.RunResult {
		r, err := core.Run(core.RunSpec{
			Graph:   g,
			App:     analytics.BFS,
			Reorder: reorder.Identity,
			Order:   analytics.Natural,
			Policy:  policy,
			Env:     core.FreshBoot(), // all memory free and contiguous
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run(core.Base4K())
	thp := run(core.THPAlways())

	fmt.Printf("%-14s %14s %12s %12s %10s\n",
		"policy", "total cycles", "dtlb miss", "walk rate", "huge mem")
	for _, r := range []*core.RunResult{base, thp} {
		fmt.Printf("%-14s %14d %11.2f%% %11.2f%% %9.1fM\n",
			r.Spec.Policy.Name, r.TotalCycles,
			100*r.Kernel.TLB.DTLBMissRate(),
			100*r.Kernel.TLB.STLBMissRate(),
			float64(r.TotalHugeBytes)/(1<<20))
	}
	fmt.Printf("\nTHP speedup over 4KB pages: %.2fx\n",
		float64(base.TotalCycles)/float64(thp.TotalCycles))
	fmt.Println("\n(Results verify: both runs computed identical BFS hop counts:",
		equal(base.Output.Hops, thp.Output.Hops), ")")
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
