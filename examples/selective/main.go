// Selective: the paper's §5 strategy end to end — Degree-Based Grouping
// coalesces hot vertices into a dense prefix of the property array, and
// madvise(MADV_HUGEPAGE) over just that prefix recovers most of the
// unbounded-THP performance with a tiny huge page budget, even on a
// fragmented, memory-constrained machine.
//
//	go run ./examples/selective
package main

import (
	"fmt"
	"log"

	"graphmem/internal/analytics"
	"graphmem/internal/core"
	"graphmem/internal/gen"
	"graphmem/internal/reorder"
)

func main() {
	// Scattered hubs (Kronecker-style) over a property array spanning
	// several 2MB regions: the configuration where DBG + selective THP
	// shines. Takes ~20 seconds.
	g := gen.PowerLaw(gen.PowerLawConfig{
		N: 1 << 21, AvgDegree: 5, Alpha: 0.8,
		HubsClustered: false, Seed: 3,
	})
	wss := analytics.WSSBytes(analytics.BFS, g)

	// Step 1 — the access skew DBG exploits: Kronecker hubs are
	// scattered across the ID space until reordering groups them.
	dbg, cost := reorder.Apply(g, reorder.DBG, 1)
	fmt.Printf("power-law graph: %d vertices, %d edges\n", g.N, g.NumEdges())
	fmt.Printf("hot 10%% of property entries receive: %.1f%% of accesses originally, "+
		"%.1f%% after DBG\n", 100*reorder.HotPrefixCoverage(g, 0.1),
		100*reorder.HotPrefixCoverage(dbg, 0.1))
	fmt.Printf("DBG cost: %d vertex + %d edge traversal elements\n\n",
		cost.VertexTraversals, cost.EdgeTraversals)

	// Step 2 — a hostile environment: an aged machine, memhog leaving
	// only a sliver of slack, and half the available memory poisoned by
	// non-movable pages.
	env := core.Fragmented(int64(wss/8), 0.5)

	run := func(name string, p core.Policy, method reorder.Method) uint64 {
		r, err := core.Run(core.RunSpec{
			Graph: g, App: analytics.BFS,
			Reorder: method, Order: analytics.Natural,
			Policy: p, Env: env,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %14d cycles   huge=%6.1fMB (%.2f%% of footprint)\n",
			name, r.TotalCycles, float64(r.TotalHugeBytes)/(1<<20),
			100*r.HugeShareOfFootprint())
		return r.TotalCycles
	}

	fmt.Println("BFS under pressure + 50% fragmentation:")
	base := run("4KB pages", core.Base4K(), reorder.Identity)
	linux := run("Linux THP (system-wide)", core.THPAlways(), reorder.Identity)
	s20 := run("DBG + selective 20%", core.SelectiveTHP(0.2), reorder.DBG)
	s100 := run("DBG + selective 100%", core.SelectiveTHP(1.0), reorder.DBG)

	fmt.Println()
	fmt.Printf("selective 20%% vs 4KB pages:  %.2fx\n", float64(base)/float64(s20))
	fmt.Printf("selective 20%% vs Linux THP:  %.2fx\n", float64(linux)/float64(s20))
	fmt.Printf("selective 100%% vs 4KB pages: %.2fx\n", float64(base)/float64(s100))
	fmt.Println("\nThe programmer-guided prefix gets near-ideal performance out of a")
	fmt.Println("few huge pages that Linux's policy would have spent on the edge array.")
}
