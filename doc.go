// Package graphmem is a simulation-based reproduction of "The
// Implications of Page Size Management on Graph Analytics" (IISWC 2022):
// a deterministic model of physical memory, virtual memory, TLBs, and
// Linux's transparent huge page policy, driven by instrumented graph
// analytics workloads.
//
// The root package carries only the benchmark suite (bench_test.go),
// which regenerates every table and figure of the paper's evaluation.
// The library lives under internal/; cmd/ holds the executables and
// examples/ the runnable walkthroughs. See README.md and DESIGN.md.
package graphmem
