// Command tracetool records and analyzes memory access traces from the
// simulated workloads. The analysis explains the paper's TLB results
// from first principles: it computes exact LRU reuse distances of the
// trace at 4KB and 2MB granularity and reads off the miss rate any
// fully-associative TLB capacity would see — showing directly why 2MB
// translations tame the property array.
//
// Usage:
//
//	tracetool record -app bfs -dataset wiki -scale test -o bfs.gmt
//	tracetool analyze bfs.gmt
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"graphmem/internal/analytics"
	"graphmem/internal/cache"
	"graphmem/internal/cli"
	"graphmem/internal/cost"
	"graphmem/internal/machine"
	"graphmem/internal/oskernel"
	"graphmem/internal/tlb"
	"graphmem/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracetool record -app <bfs|sssp|pr|cc> -dataset <kr25|twit|web|wiki> [-scale test|bench|full] -o FILE
  tracetool analyze FILE`)
	os.Exit(2)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "bfs", "workload")
	dataset := fs.String("dataset", "wiki", "dataset")
	scale := fs.String("scale", "test", "scale (traces grow large: test/bench recommended)")
	out := fs.String("o", "", "output trace file")
	_ = fs.Parse(args)
	if *out == "" {
		return errors.New("record: -o is required")
	}

	a, err := cli.ParseApp(*app)
	if err != nil {
		return err
	}
	sc, err := cli.ParseScale(*scale)
	if err != nil {
		return err
	}
	ds, err := cli.ParseDataset(*dataset)
	if err != nil {
		return err
	}
	gr, err := cli.LoadGraph("", ds, sc, a == analytics.SSSP)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}

	memBytes := 4 * analytics.WSSBytes(a, gr)
	if memBytes < 64<<20 {
		memBytes = 64 << 20
	}
	m := machine.New(machine.Config{
		MemoryBytes: memBytes,
		TLB:         tlb.Haswell(),
		Cache:       cache.Haswell(),
		Cost:        cost.Default(),
		Kernel:      oskernel.BaselineConfig(),
	})
	img, err := analytics.NewImage(m, gr, a)
	if err != nil {
		return err
	}
	img.Init(analytics.Natural)
	m.SetTracer(w) // record only the kernel phase
	img.Run(analytics.DefaultRunOptions(gr))
	m.SetTracer(nil)
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d kernel-phase accesses to %s\n", w.Events(), *out)
	fmt.Println("array tags:")
	for i, st := range m.ArrayStats() {
		fmt.Printf("  tag %d = %s\n", i, st.Name)
	}
	return nil
}

func cmdAnalyze(args []string) error {
	if len(args) != 1 {
		return errors.New("analyze: exactly one trace file expected")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var events []trace.Event
	if err := r.ForEach(func(e trace.Event) { events = append(events, e) }); err != nil {
		return err
	}
	fmt.Printf("trace: %d accesses\n\n", len(events))

	h4k := trace.ReuseDistances(events, 12)
	h2m := trace.ReuseDistances(events, 21)

	fmt.Printf("%-28s %10s %10s\n", "", "4KB pages", "2MB pages")
	fmt.Printf("%-28s %10d %10d\n", "distinct pages touched",
		h4k.DistinctBlocks(), h2m.DistinctBlocks())
	rows := []struct {
		name string
		cap  int
	}{
		{"L1 DTLB (64 entries)", 64},
		{"L1 DTLB 2M (32 entries)", 32},
		{"STLB (1024 entries)", 1024},
		{"4x STLB (4096 entries)", 4096},
	}
	for _, row := range rows {
		fmt.Printf("%-28s %9.2f%% %9.2f%%\n", "est. miss, "+row.name,
			100*h4k.MissRate(row.cap), 100*h2m.MissRate(row.cap))
	}

	// Per-tag contribution at the STLB capacity that matters.
	fmt.Printf("\nper-array 4KB reuse profile (misses at 1024-entry TLB):\n")
	tags := map[uint8]bool{}
	for _, e := range events {
		tags[e.Tag] = true
	}
	for tag := 0; tag < 256; tag++ {
		if !tags[uint8(tag)] {
			continue
		}
		ht := trace.ReuseDistances(events, 12, uint8(tag))
		fmt.Printf("  tag %-3d accesses=%-12d miss=%6.2f%%\n",
			tag, ht.Total, 100*ht.MissRate(1024))
	}
	return nil
}
