package main

import (
	"encoding/json"
	"testing"
)

func mergeString(t *testing.T, in string, args ...string) string {
	t.Helper()
	order, values, err := decodeObject([]byte(in))
	if err != nil {
		t.Fatalf("decodeObject: %v", err)
	}
	for _, arg := range args {
		key, val := arg, ""
		for i := 0; i < len(arg); i++ {
			if arg[i] == '=' {
				key, val = arg[:i], arg[i+1:]
				break
			}
		}
		if _, exists := values[key]; !exists {
			order = append(order, key)
		}
		values[key] = encodeValue(val)
	}
	out, err := encodeObject(order, values)
	if err != nil {
		t.Fatalf("encodeObject: %v", err)
	}
	return string(out)
}

func TestMergePreservesUnknownKeysAndOrder(t *testing.T) {
	in := "{\n  \"a\": 1,\n  \"mystery\": {\"kept\": true},\n  \"b\": \"old\"\n}\n"
	got := mergeString(t, in, "b=new", "c=3")
	want := "{\n  \"a\": 1,\n  \"mystery\": {\n    \"kept\": true\n  },\n  \"b\": \"new\",\n  \"c\": 3\n}\n"
	if got != want {
		t.Errorf("merge output:\n%s\nwant:\n%s", got, want)
	}
}

func TestMergeFromEmpty(t *testing.T) {
	got := mergeString(t, "", "x=1.5", "y=hello world")
	want := "{\n  \"x\": 1.5,\n  \"y\": \"hello world\"\n}\n"
	if got != want {
		t.Errorf("merge output:\n%s\nwant:\n%s", got, want)
	}
}

func TestEncodeValueTypes(t *testing.T) {
	cases := []struct{ in, want string }{
		{"3.14", "3.14"},                     // number stays a number
		{"true", "true"},                     // boolean
		{"null", "null"},                     // null
		{`"quoted"`, `"quoted"`},             // already-JSON string
		{"go test ./...", `"go test ./..."`}, // free text becomes a string
		{"", `""`},                           // empty value is an empty string
		{"{\"k\":1}", "{\"k\":1}"},           // nested object passes through
	}
	for _, tc := range cases {
		got := string(encodeValue(tc.in))
		if got != tc.want {
			t.Errorf("encodeValue(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestDecodeRejectsNonObject(t *testing.T) {
	if _, _, err := decodeObject([]byte("[1,2]")); err == nil {
		t.Error("decodeObject accepted a top-level array")
	}
}

func TestOutputIsValidJSON(t *testing.T) {
	out := mergeString(t, "", "campaign=expdriver -scale bench", "campaign_wall_seconds=5")
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if m["campaign_wall_seconds"] != float64(5) {
		t.Errorf("campaign_wall_seconds = %v, want 5", m["campaign_wall_seconds"])
	}
}
