// benchjson merges key=value pairs into a flat JSON object file,
// preserving the order of existing keys and appending new ones — so
// scripts/bench.sh can update the benchmark figures it measures without
// rewriting (or dropping) keys another tool or an older script version
// recorded. The file's history stays a readable diff: an updated key
// changes one line in place.
//
// Usage:
//
//	benchjson -file BENCH_access.json ns_per_access=18.98 campaign="expdriver ..."
//
// Each value is parsed as JSON (numbers, booleans, null, quoted
// strings, even nested objects); anything that does not parse becomes a
// JSON string, so shell callers never need to quote twice. A missing
// file starts as an empty object. Output is the object with two-space
// indentation, one key per line.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	file := flag.String("file", "", "JSON object file to update in place")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchjson -file FILE key=value ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *file == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(*file)
	if err != nil && !os.IsNotExist(err) {
		fatal("read %s: %v", *file, err)
	}
	order, values, err := decodeObject(data)
	if err != nil {
		fatal("parse %s: %v", *file, err)
	}

	for _, arg := range flag.Args() {
		key, val, ok := strings.Cut(arg, "=")
		if !ok || key == "" {
			fatal("argument %q is not key=value", arg)
		}
		if _, exists := values[key]; !exists {
			order = append(order, key)
		}
		values[key] = encodeValue(val)
	}

	out, err := encodeObject(order, values)
	if err != nil {
		fatal("encode: %v", err)
	}
	if err := os.WriteFile(*file, out, 0o644); err != nil {
		fatal("write %s: %v", *file, err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// decodeObject parses a flat JSON object into its key order and raw
// values. Empty input is an empty object. Duplicate keys keep the last
// value at the first key's position, matching encoding/json semantics
// while preserving placement.
func decodeObject(data []byte) ([]string, map[string]json.RawMessage, error) {
	values := map[string]json.RawMessage{}
	if len(data) == 0 {
		return nil, values, nil
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	tok, err := dec.Token()
	if err != nil {
		return nil, nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, nil, fmt.Errorf("top-level value is not an object")
	}
	var order []string
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, nil, err
		}
		key := tok.(string) // after '{', a syntactically valid key is a string
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, nil, err
		}
		if _, exists := values[key]; !exists {
			order = append(order, key)
		}
		values[key] = raw
	}
	if _, err := dec.Token(); err != nil { // consume '}'
		return nil, nil, err
	}
	return order, values, nil
}

// encodeValue interprets a command-line value as JSON when it parses as
// a single complete value, and as a string otherwise.
func encodeValue(val string) json.RawMessage {
	var raw json.RawMessage
	if err := json.Unmarshal([]byte(val), &raw); err == nil {
		return raw
	}
	quoted, _ := json.Marshal(val) // strings always marshal
	return quoted
}

// encodeObject renders the object with keys in order, two-space indent.
func encodeObject(order []string, values map[string]json.RawMessage) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString("{\n")
	for i, key := range order {
		name, _ := json.Marshal(key)
		var val bytes.Buffer
		if err := json.Indent(&val, values[key], "  ", "  "); err != nil {
			return nil, fmt.Errorf("key %q: %w", key, err)
		}
		fmt.Fprintf(&b, "  %s: %s", name, val.String())
		if i < len(order)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return b.Bytes(), nil
}
