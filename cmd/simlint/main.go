// Command simlint runs the project's determinism lint rules (SL001…
// SL015, see internal/lint) over the module.
//
// Usage:
//
//	go run ./cmd/simlint ./...        # whole module (CI invocation)
//	go run ./cmd/simlint ./internal/memsys
//	go run ./cmd/simlint -rules       # list the rule table
//	go run ./cmd/simlint -json ./...  # one JSON diagnostic per line
//	go run ./cmd/simlint -why SL010:core.Run
//
// A path ending in /... is linted recursively; otherwise the single
// package in the directory is linted. -why explains an interprocedural
// rule's facts for every loaded function matching the pattern, printing
// the call chain to each reachable fact. Exit status: 0 clean, 1
// findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"graphmem/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic fixes the -json field order; the file path is
// module-root-relative with forward slashes so output is stable across
// checkouts.
type jsonDiagnostic struct {
	Rule string `json:"rule"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listRules := fs.Bool("rules", false, "print the rule table and exit")
	verbose := fs.Bool("v", false, "print each package as it is linted")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic")
	why := fs.String("why", "", "explain an interprocedural rule for a function: SLxxx:func")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Fprintf(stdout, "%s %-14s %s\n", r.ID, r.Name, r.Doc)
		}
		return 0
	}

	target := "./..."
	if fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	recursive := false
	if strings.HasSuffix(target, "...") {
		recursive = true
		target = strings.TrimSuffix(strings.TrimSuffix(target, "..."), "/")
		if target == "" || target == "." {
			target = "."
		}
	}
	dir, err := filepath.Abs(target)
	if err != nil {
		return fatal(stderr, err)
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return fatal(stderr, err)
	}
	r := lint.NewRunner(root)

	if *why != "" {
		return explain(r, root, *why, stdout, stderr)
	}

	var diags []lint.Diagnostic
	if recursive {
		diags, err = r.LintTree(dir)
	} else {
		rel, rerr := filepath.Rel(root, dir)
		if rerr != nil {
			return fatal(stderr, rerr)
		}
		importPath := lint.ModulePath
		if rel != "." {
			importPath = lint.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if *verbose {
			fmt.Fprintf(stderr, "simlint: %s\n", importPath)
		}
		diags, err = r.LintDir(importPath, dir)
	}
	if err != nil {
		return fatal(stderr, err)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, d := range diags {
			jd := jsonDiagnostic{
				Rule: d.Rule, File: rootRel(root, d.Pos.Filename),
				Line: d.Pos.Line, Col: d.Pos.Column, Msg: d.Msg,
			}
			if err := enc.Encode(jd); err != nil {
				return fatal(stderr, err)
			}
		}
	} else {
		cwd, _ := os.Getwd()
		for _, d := range diags {
			if cwd != "" {
				if rel, rerr := filepath.Rel(cwd, d.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
					d.Pos.Filename = rel
				}
			}
			fmt.Fprintln(stdout, d)
		}
	}
	if *verbose {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// explain drives `-why SLxxx:func`: load (type-check) the whole module
// so the facts engine sees every call chain, then render the chains.
func explain(r *lint.Runner, root, query string, stdout, stderr io.Writer) int {
	ruleID, pattern, ok := strings.Cut(query, ":")
	if !ok || pattern == "" {
		return fatal(stderr, fmt.Errorf("-why wants SLxxx:func, e.g. -why SL010:core.Run"))
	}
	if err := r.LoadTree(root); err != nil {
		return fatal(stderr, err)
	}
	lines, err := r.Explain(ruleID, pattern)
	if err != nil {
		return fatal(stderr, err)
	}
	for _, line := range lines {
		fmt.Fprintln(stdout, line)
	}
	return 0
}

// rootRel renders filename relative to the module root, with forward
// slashes, falling back to the absolute path outside the module.
func rootRel(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("simlint: no go.mod above %s", dir)
		}
		d = parent
	}
}

func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "simlint:", err)
	return 2
}
