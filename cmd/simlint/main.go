// Command simlint runs the project's determinism lint rules (SL001…
// SL008, see internal/lint) over the module.
//
// Usage:
//
//	go run ./cmd/simlint ./...        # whole module (CI invocation)
//	go run ./cmd/simlint ./internal/memsys
//	go run ./cmd/simlint -rules       # list the rule table
//
// A path ending in /... is linted recursively; otherwise the single
// package in the directory is linted. Exit status: 0 clean, 1 findings,
// 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"graphmem/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "print the rule table and exit")
	verbose := flag.Bool("v", false, "print each package as it is linted")
	flag.Parse()

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Printf("%s %-12s %s\n", r.ID, r.Name, r.Doc)
		}
		return
	}

	target := "./..."
	if flag.NArg() > 0 {
		target = flag.Arg(0)
	}
	recursive := false
	if strings.HasSuffix(target, "...") {
		recursive = true
		target = strings.TrimSuffix(strings.TrimSuffix(target, "..."), "/")
		if target == "" || target == "." {
			target = "."
		}
	}
	dir, err := filepath.Abs(target)
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fatal(err)
	}

	r := lint.NewRunner(root)
	var diags []lint.Diagnostic
	if recursive {
		diags, err = r.LintTree(dir)
	} else {
		rel, rerr := filepath.Rel(root, dir)
		if rerr != nil {
			fatal(rerr)
		}
		importPath := lint.ModulePath
		if rel != "." {
			importPath = lint.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "simlint: %s\n", importPath)
		}
		diags, err = r.LintDir(importPath, dir)
	}
	if err != nil {
		fatal(err)
	}

	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, rerr := filepath.Rel(cwd, d.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("simlint: no go.mod above %s", dir)
		}
		d = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(2)
}
