package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONOutput pins the -json mode against a golden file: one object
// per line, stable field order, module-root-relative slash paths.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", filepath.Join("..", "..", "internal", "lint", "testdata", "sl001")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings); stderr:\n%s", code, stderr.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "sl001.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stdout.String(), string(golden); got != want {
		t.Errorf("-json output mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestCleanDirExitsZero lints the clean fixture: no output, status 0.
func TestCleanDirExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{filepath.Join("..", "..", "internal", "lint", "testdata", "clean")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s stderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean lint produced output:\n%s", stdout.String())
	}
}

// TestRulesListing checks the table includes the interprocedural rules.
func TestRulesListing(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, id := range []string{"SL000", "SL001", "SL010", "SL011", "SL012", "SL013", "SL014", "SL015"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-rules output missing %s", id)
		}
	}
}

// TestWhyBadQuery rejects malformed -why queries with status 2 before
// doing any expensive loading.
func TestWhyBadQuery(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-why", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "SLxxx:func") {
		t.Errorf("stderr missing usage hint:\n%s", stderr.String())
	}
}

// TestWhyExplainsChain runs the full explainer over the module: the
// chain for SL012 facts of the machine's event dispatcher must name an
// allocation source.
func TestWhyExplainsChain(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-why", "SL012:(*Machine).runEvents", filepath.Join("..", "..")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "machine.(*Machine).runEvents") || !strings.Contains(out, "allocation:") {
		t.Errorf("-why output missing the allocation chain:\n%s", out)
	}
}
