// Command advisor turns a graph into concrete huge page guidance: which
// 2MB regions of the property array deserve MADV_HUGEPAGE under a given
// huge page budget, what fraction of the irregular accesses that plan
// captures, and whether degree-based reordering is worth running first.
// It is the programmer-facing distillation of the paper's §5.
//
// Usage:
//
//	advisor -dataset kr25 -scale full -app bfs -budget-mb 8
//	advisor -file twit.gmg -coverage 0.8
package main

import (
	"flag"
	"fmt"
	"os"

	"graphmem/internal/analytics"
	"graphmem/internal/cli"
	"graphmem/internal/memsys"
	"graphmem/internal/profile"
	"graphmem/internal/reorder"
)

func main() {
	dataset := flag.String("dataset", "kr25", "dataset: kr25, twit, web, wiki")
	file := flag.String("file", "", "GMG1 graph file (overrides -dataset)")
	scale := flag.String("scale", "full", "generated dataset scale")
	app := flag.String("app", "bfs", "workload: bfs, sssp, pr, cc")
	budgetMB := flag.Int("budget-mb", 0, "huge page budget in MB (2MB granularity)")
	coverage := flag.Float64("coverage", 0, "alternatively: target access coverage (0,1]")
	flag.Parse()

	a, err := cli.ParseApp(*app)
	if err != nil {
		fmt.Fprintf(os.Stderr, "advisor: %v\n", err)
		os.Exit(2)
	}
	sc, err := cli.ParseScale(*scale)
	if err != nil && *file == "" {
		fmt.Fprintf(os.Stderr, "advisor: %v\n", err)
		os.Exit(2)
	}
	ds, err := cli.ParseDataset(*dataset)
	if err != nil && *file == "" {
		fmt.Fprintf(os.Stderr, "advisor: %v\n", err)
		os.Exit(2)
	}
	g, err := cli.LoadGraph(*file, ds, sc, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "advisor: %v\n", err)
		os.Exit(1)
	}
	if *budgetMB <= 0 && (*coverage <= 0 || *coverage > 1) {
		fmt.Fprintln(os.Stderr, "advisor: provide -budget-mb or -coverage")
		os.Exit(2)
	}

	entry := analytics.PropEntryBytes(a)
	prof := profile.New(g, entry)

	fmt.Printf("graph: %d vertices, %d edges; property array %.1fMB in %d regions\n",
		g.N, g.NumEdges(), float64(uint64(g.N)*entry)/(1<<20), prof.Regions)
	fmt.Printf("access skew: gini=%.3f (0=uniform, 1=concentrated)\n\n", prof.Gini())

	var plan profile.Plan
	if *budgetMB > 0 {
		plan = prof.PlanBudget(uint64(*budgetMB) << 20)
		fmt.Printf("plan for a %dMB huge page budget:\n", *budgetMB)
	} else {
		plan = prof.PlanCoverage(*coverage)
		fmt.Printf("plan for %.0f%% access coverage:\n", *coverage*100)
	}
	fmt.Printf("  regions: %d of %d (%.1fMB of huge pages)\n",
		len(plan.Regions), prof.Regions, float64(len(plan.Regions)*memsys.HugeSize)/(1<<20))
	fmt.Printf("  captures: %.1f%% of estimated property-array accesses\n\n", plan.Coverage*100)

	// Would DBG improve things? Re-plan on the reordered graph.
	dbg, _ := reorder.Apply(g, reorder.DBG, 1)
	dbgProf := profile.New(dbg, entry)
	var dbgPlan profile.Plan
	if *budgetMB > 0 {
		dbgPlan = dbgProf.PlanBudget(uint64(*budgetMB) << 20)
	} else {
		dbgPlan = dbgProf.PlanCoverage(*coverage)
	}
	fmt.Printf("with DBG preprocessing first:\n")
	fmt.Printf("  same budget would capture %.1f%% using %d regions (prefix-contiguous)\n\n",
		dbgPlan.Coverage*100, len(dbgPlan.Regions))

	fmt.Println("suggested calls (after mmap of the property array at `prop`):")
	if contiguousPrefix(plan.Regions) {
		fmt.Printf("  madvise(prop, %d, MADV_HUGEPAGE);\n", len(plan.Regions)*memsys.HugeSize)
	} else {
		for _, r := range plan.Regions {
			fmt.Printf("  madvise(prop + %#x, 0x200000, MADV_HUGEPAGE);\n", r*memsys.HugeSize)
		}
		fmt.Println("  // hot regions are scattered: run DBG reordering first to make")
		fmt.Println("  // the plan a single prefix, or use the calls above as-is")
	}
}

func contiguousPrefix(regions []int) bool {
	for i, r := range regions {
		if r != i {
			return false
		}
	}
	return len(regions) > 0
}
