// Command graphmem runs one graph workload under one page-size
// management configuration on the simulated machine and prints the
// paper-style report: runtime (cycles) per phase, TLB miss rates, page
// fault and huge page statistics.
//
// Usage examples:
//
//	graphmem -app bfs -dataset kr25 -policy thp
//	graphmem -app sssp -dataset twit -policy selective -sel 0.2 -reorder dbg -pressure 0.5
//	graphmem -app pr -dataset web -policy 4k -frag 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"graphmem/internal/analytics"
	"graphmem/internal/cli"
	"graphmem/internal/core"
)

func main() {
	app := flag.String("app", "bfs", "workload: bfs, sssp, pr, cc, or bc")
	dataset := flag.String("dataset", "kr25", "dataset: kr25, twit, web, wiki")
	file := flag.String("file", "", "load a GMG1 graph file instead of generating a dataset")
	scale := flag.String("scale", "full", "generated dataset scale: full, bench, test")
	policy := flag.String("policy", "4k", "page policy: 4k, thp, madvise-prop, selective, auto, ingens, hawkeye")
	sel := flag.Float64("sel", 0.2, "property-array fraction for -policy selective")
	method := flag.String("reorder", "orig", "vertex reordering: orig, dbg, sort, rand")
	order := flag.String("order", "natural", "allocation order: natural or prop-first")
	pressureGB := flag.Float64("pressure", -1, "memory pressure: free slack beyond WSS in paper-GB (negative disables memhog)")
	frag := flag.Float64("frag", 0, "fragmentation level of available memory, 0..1")
	aged := flag.Float64("aged", core.AgedFractionDefault, "ambient non-movable poison fraction when pressured")
	prIters := flag.Int("pr-iters", 5, "PageRank iteration cap")
	flag.Parse()

	spec, err := buildSpec(*app, *dataset, *file, *scale, *policy, *sel, *method, *order,
		*pressureGB, *frag, *aged, *prIters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphmem: %v\n", err)
		os.Exit(2)
	}

	r, err := core.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphmem: %v\n", err)
		os.Exit(1)
	}
	report(r)
}

func buildSpec(app, dataset, file, scale, policy string, sel float64,
	method, order string, pressureGB, frag, aged float64, prIters int) (core.RunSpec, error) {

	var spec core.RunSpec

	var err error
	if spec.App, err = cli.ParseApp(app); err != nil {
		return spec, err
	}
	sc, err := cli.ParseScale(scale)
	if err != nil && file == "" {
		return spec, err
	}
	dsv, err := cli.ParseDataset(dataset)
	if err != nil && file == "" {
		return spec, err
	}
	if spec.Graph, err = cli.LoadGraph(file, dsv, sc, spec.App == analytics.SSSP); err != nil {
		return spec, err
	}
	if spec.App == analytics.SSSP && !spec.Graph.Weighted() {
		return spec, fmt.Errorf("sssp needs a weighted graph; %s has no weights", file)
	}
	if spec.Policy, err = cli.ParsePolicy(policy, sel, spec.App, spec.Graph); err != nil {
		return spec, err
	}
	if spec.Reorder, err = cli.ParseReorder(method); err != nil {
		return spec, err
	}
	if spec.Order, err = cli.ParseOrder(order); err != nil {
		return spec, err
	}

	if pressureGB < 0 && frag == 0 {
		spec.Env = core.FreshBoot()
	} else {
		delta := core.NoPressure
		if pressureGB >= 0 {
			// Interpret paper-GB against a 16GB nominal paper working
			// set (the exp package scales per-dataset via Table 2).
			wssSim := float64(analytics.WSSBytes(spec.App, spec.Graph))
			delta = int64(pressureGB * (1 << 30) * wssSim / (16 * (1 << 30)))
		}
		spec.Env = core.Environment{
			AgedFraction:  aged,
			PressureDelta: delta,
			FragLevel:     frag,
		}
	}

	spec.Run = analytics.DefaultRunOptions(spec.Graph)
	spec.Run.PRMaxIters = prIters
	return spec, nil
}

func report(r *core.RunResult) {
	fmt.Printf("graph: N=%d M=%d wss=%.1fMB machine=%.0fMB\n",
		r.Spec.Graph.N, r.Spec.Graph.NumEdges(),
		float64(r.WSSBytes)/(1<<20), float64(r.MemoryBytes)/(1<<20))
	fmt.Printf("policy=%s reorder=%s order=%s\n",
		r.Spec.Policy.Name, r.Spec.Reorder, r.Spec.Order)
	fmt.Println()
	fmt.Printf("total cycles:        %d\n", r.TotalCycles)
	fmt.Printf("  preprocessing:     %d\n", r.PreprocessCycles)
	fmt.Printf("  initialization:    %d\n", r.InitCycles)
	fmt.Printf("  kernel:            %d\n", r.KernelCycles)
	fmt.Println()
	k := r.Kernel
	fmt.Printf("kernel TLB:          dtlb-miss=%.2f%% stlb-miss=%.2f%% translation-share=%.1f%%\n",
		100*k.TLB.DTLBMissRate(), 100*k.TLB.STLBMissRate(), 100*k.TranslationShare())
	fmt.Printf("kernel cache:        l1-miss=%.2f%% llc-miss(DRAM)=%.2f%%\n",
		100*k.Cache.L1MissRate(), 100*k.Cache.LLCMissRate())
	fmt.Println()
	fmt.Printf("page faults:         4k=%d huge=%d fallbacks=%d\n",
		r.OS.Faults4K, r.OS.FaultsHuge, r.OS.HugeFallbacks)
	fmt.Printf("memory management:   compactions=%d migrated=%d promotions=%d demotions=%d\n",
		r.OS.CompactionRuns, r.OS.PagesMigrated, r.OS.Promotions, r.OS.Demotions)
	fmt.Printf("swap:                in=%d out=%d\n", r.OS.SwapIns, r.OS.SwapOuts)
	fmt.Printf("huge page usage:     total=%.1fMB prop=%.1fMB share-of-footprint=%.2f%%\n",
		float64(r.TotalHugeBytes)/(1<<20), float64(r.PropHugeBytes)/(1<<20),
		100*r.HugeShareOfFootprint())
	fmt.Println()
	fmt.Println("per-array (kernel+init):")
	for _, a := range r.Arrays {
		fmt.Printf("  %-10s accesses=%-12d l1tlb-misses=%-10d walks=%d\n",
			a.Name, a.Accesses, a.L1Misses, a.Walks)
	}
	switch {
	case r.Output.Hops != nil:
		fmt.Printf("\nresult: %d vertices reached\n", countReached(r.Output.Hops))
	case r.Output.Dist != nil:
		fmt.Printf("\nresult: %d vertices reached\n", countReached(r.Output.Dist))
	case r.Output.Ranks != nil:
		fmt.Printf("\nresult: PageRank converged after %d iterations\n", r.Output.Iterations)
	case r.Output.Centrality != nil:
		best, bestV := 0.0, 0
		for v, c := range r.Output.Centrality {
			if c > best {
				best, bestV = c, v
			}
		}
		fmt.Printf("\nresult: most-central vertex %d (score %.1f)\n", bestV, best)
	case r.Output.Labels != nil:
		comps := map[int64]struct{}{}
		for _, l := range r.Output.Labels {
			comps[l] = struct{}{}
		}
		fmt.Printf("\nresult: %d connected components\n", len(comps))
	}
}

func countReached(xs []int64) int {
	n := 0
	for _, x := range xs {
		if x >= 0 {
			n++
		}
	}
	return n
}
