package main

import (
	"os"
	"strings"
	"testing"
)

func readFixture(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestParseResults(t *testing.T) {
	tables := parseResults(readFixture(t, "results.txt"))
	if len(tables) != 2 {
		t.Fatalf("parsed %d sections, want 2: %v", len(tables), tables)
	}
	if !strings.Contains(tables["fig1"], "1.412") {
		t.Errorf("fig1 section missing table body: %q", tables["fig1"])
	}
	if !strings.HasSuffix(tables["fig2"], "\n") {
		t.Errorf("section body should be newline-terminated: %q", tables["fig2"])
	}
}

// TestSpliceFixture exercises both marker forms: fig1 is a bracketed
// pair whose stale body gets replaced, fig2 a legacy bare marker that
// expands into the bracketed form.
func TestSpliceFixture(t *testing.T) {
	tables := parseResults(readFixture(t, "results.txt"))
	got, changed, err := splice(readFixture(t, "doc.md"), tables)
	if err != nil {
		t.Fatal(err)
	}
	if want := readFixture(t, "want.md"); got != want {
		t.Errorf("spliced doc mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if len(changed) != 2 {
		t.Errorf("changed = %v, want [fig1 fig2]", changed)
	}
}

// TestSpliceIdempotent: re-splicing the up-to-date doc changes nothing
// and reports no changed blocks — the property -check relies on.
func TestSpliceIdempotent(t *testing.T) {
	tables := parseResults(readFixture(t, "results.txt"))
	want := readFixture(t, "want.md")
	got, changed, err := splice(want, tables)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("re-splice altered an up-to-date doc:\n%s", got)
	}
	if len(changed) != 0 {
		t.Errorf("re-splice reported changed blocks: %v", changed)
	}
}

func TestSpliceUnmatchedMarkers(t *testing.T) {
	tables := parseResults(readFixture(t, "results.txt"))

	cases := []struct {
		name string
		doc  string
		want []string // substrings the error must mention
	}{
		{"unknown id", "<!-- TABLE:fig99 -->\n", []string{"fig99", "no section"}},
		{"stray end", "prose\n<!-- /TABLE:fig1 -->\n", []string{"/TABLE:fig1", "without begin"}},
		{"mismatched pair", "<!-- TABLE:fig1 -->\nx\n<!-- /TABLE:fig2 -->\n", []string{"/TABLE:fig2", "closing"}},
		{"several", "<!-- TABLE:fig98 -->\n<!-- TABLE:fig99 -->\n", []string{"fig98", "fig99"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := splice(tc.doc, tables)
			if err == nil {
				t.Fatal("splice accepted a doc with unmatched markers")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

// TestSpliceDetectsStaleBlock: a block whose content differs from the
// results file is reported in changed, which is what -check turns into
// a non-zero exit.
func TestSpliceDetectsStaleBlock(t *testing.T) {
	tables := parseResults(readFixture(t, "results.txt"))
	doc := "<!-- TABLE:fig1 -->\n```\nold\n```\n<!-- /TABLE:fig1 -->\n"
	_, changed, err := splice(doc, tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != "fig1" {
		t.Errorf("changed = %v, want [fig1]", changed)
	}
}
